(** A C type system with layout computation.

    Substitutes for the DWARF type information GDB reads from [vmlinux]:
    every simulated kernel structure is registered here with C layout rules
    (natural alignment, padding, bitfield packing), so that the debugger
    side can compute [sizeof] / [offsetof] / member addresses exactly as
    GDB does. *)

(** Integer kinds, by C-ish name. *)
type ikind = { ik_name : string; ik_size : int; ik_signed : bool }

(** A (possibly composite) C type. Composites are referred to by name and
    resolved through a {!registry}. *)
type t =
  | Void
  | Bool
  | Int of ikind
  | Ptr of t
  | Array of t * int
  | Func of string  (** a function type; only meaningful behind [Ptr] *)
  | Named of string  (** a registered struct/union/enum, by name *)

(** {1 Common integer kinds} *)

val char : t
val uchar : t
val short : t
val ushort : t
val int : t
val uint : t
val long : t
val ulong : t
val llong : t
val u8 : t
val u16 : t
val u32 : t
val u64 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t
val size_t : t
val voidp : t
val charp : t
val fptr : string -> t
(** [fptr name] is a pointer to a function type displayed as [name]. *)

(** {1 Composite definitions} *)

(** Field specification used when defining a struct or union. *)
type field_spec =
  | F of string * t  (** ordinary field, offset computed by layout *)
  | Fbits of string * t * int  (** bitfield of given width, packed C-style *)
  | Fat of string * t * int  (** field at an explicit byte offset (overlay) *)

(** A laid-out field. For a bitfield, [bit] is [(bit_offset, width)] within
    the storage unit starting at [offset]. *)
type field = { fname : string; ftyp : t; foffset : int; fbit : (int * int) option }

type composite_kind = Struct_kind | Union_kind | Enum_kind

type registry

val create_registry : unit -> registry

val define_struct : registry -> string -> field_spec list -> unit
(** Define (or redefine) a struct with C layout rules.
    @raise Invalid_argument on duplicate field names. *)

val define_union : registry -> string -> field_spec list -> unit
(** Define a union: all fields at offset 0, size = max field size. *)

val define_enum : registry -> string -> (string * int) list -> unit
(** Define an enum (4 bytes) with named constants. *)

val is_defined : registry -> string -> bool
val kind_of : registry -> string -> composite_kind
val composite_names : registry -> string list

(** {1 Layout queries} *)

val sizeof : registry -> t -> int
(** @raise Invalid_argument for [Void], bare [Func], or undefined names. *)

val alignof : registry -> t -> int

val fields : registry -> string -> field list
(** Fields of a registered struct or union, in declaration order. *)

val field : registry -> string -> string -> field
(** [field reg comp name]. @raise Not_found if absent. *)

val field_opt : registry -> string -> string -> field option

val offsetof : registry -> string -> string -> int
(** [offsetof reg comp path] resolves a dot-separated [path]
    (e.g. ["se.run_node"]) through nested composites. *)

val enum_values : registry -> string -> (string * int) list
val enum_name_of : registry -> string -> int -> string option
val enum_value_of : registry -> string -> string -> int option

val lookup_enum_const : registry -> string -> (string * int) option
(** Find an enum constant by name across all enums; returns (enum, value). *)

(** {1 Type utilities} *)

val is_integer : t -> bool
val is_pointer : t -> bool
val strip : registry -> t -> t
(** Resolve a [Named] enum to its underlying integer type; other types are
    returned unchanged. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
