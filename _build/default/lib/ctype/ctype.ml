type ikind = { ik_name : string; ik_size : int; ik_signed : bool }

type t =
  | Void
  | Bool
  | Int of ikind
  | Ptr of t
  | Array of t * int
  | Func of string
  | Named of string

let mk name size signed = Int { ik_name = name; ik_size = size; ik_signed = signed }
let char = mk "char" 1 true
let uchar = mk "unsigned char" 1 false
let short = mk "short" 2 true
let ushort = mk "unsigned short" 2 false
let int = mk "int" 4 true
let uint = mk "unsigned int" 4 false
let long = mk "long" 8 true
let ulong = mk "unsigned long" 8 false
let llong = mk "long long" 8 true
let u8 = mk "u8" 1 false
let u16 = mk "u16" 2 false
let u32 = mk "u32" 4 false
let u64 = mk "u64" 8 false
let i8 = mk "s8" 1 true
let i16 = mk "s16" 2 true
let i32 = mk "s32" 4 true
let i64 = mk "s64" 8 true
let size_t = mk "size_t" 8 false
let voidp = Ptr Void
let charp = Ptr char
let fptr name = Ptr (Func name)

type field_spec = F of string * t | Fbits of string * t * int | Fat of string * t * int
type field = { fname : string; ftyp : t; foffset : int; fbit : (int * int) option }
type composite_kind = Struct_kind | Union_kind | Enum_kind

type composite = {
  ckind : composite_kind;
  cfields : field list;  (* empty for enums *)
  cconsts : (string * int) list;  (* empty for structs/unions *)
  csize : int;
  calign : int;
}

type registry = {
  comps : (string, composite) Hashtbl.t;
  mutable names_rev : string list;
}

let create_registry () = { comps = Hashtbl.create 128; names_rev = [] }

let composite reg name =
  match Hashtbl.find_opt reg.comps name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Ctype: undefined composite %S" name)

let rec sizeof reg = function
  | Void -> invalid_arg "Ctype.sizeof: void"
  | Bool -> 1
  | Int ik -> ik.ik_size
  | Ptr _ -> 8
  | Array (elt, n) -> n * sizeof reg elt
  | Func _ -> invalid_arg "Ctype.sizeof: bare function type"
  | Named n -> (composite reg n).csize

let rec alignof reg = function
  | Void -> 1
  | Bool -> 1
  | Int ik -> ik.ik_size
  | Ptr _ -> 8
  | Array (elt, _) -> alignof reg elt
  | Func _ -> 1
  | Named n -> (composite reg n).calign

let align_up x a = (x + a - 1) / a * a

(* C-style struct layout with bitfield packing: consecutive bitfields share
   a storage unit while they fit; a plain field or a unit overflow starts a
   new aligned storage unit. *)
let layout_struct reg specs =
  let check_dup seen n =
    if List.mem n seen then invalid_arg (Printf.sprintf "Ctype: duplicate field %S" n)
  in
  let rec go specs seen off bit_off fields =
    (* [off] is the next free byte; [bit_off] is Some (unit_off, unit_size,
       used_bits) while inside a bitfield storage unit. *)
    match specs with
    | [] ->
        let off = match bit_off with Some (u, sz, _) -> max off (u + sz) | None -> off in
        (List.rev fields, off)
    | F (n, t) :: rest ->
        check_dup seen n;
        let off = match bit_off with Some (u, sz, _) -> max off (u + sz) | None -> off in
        let o = align_up off (alignof reg t) in
        go rest (n :: seen) (o + sizeof reg t) None
          ({ fname = n; ftyp = t; foffset = o; fbit = None } :: fields)
    | Fbits (n, t, w) :: rest ->
        check_dup seen n;
        let tsz = sizeof reg t in
        let unit_off, used =
          match bit_off with
          | Some (u, sz, used) when sz = tsz && used + w <= 8 * sz -> (u, used)
          | Some (u, sz, _) ->
              let off = max off (u + sz) in
              (align_up off (alignof reg t), 0)
          | None -> (align_up off (alignof reg t), 0)
        in
        go rest (n :: seen) off
          (Some (unit_off, tsz, used + w))
          ({ fname = n; ftyp = t; foffset = unit_off; fbit = Some (used, w) } :: fields)
    | Fat (n, t, o) :: rest ->
        check_dup seen n;
        let off = max off (o + sizeof reg t) in
        go rest (n :: seen) off None
          ({ fname = n; ftyp = t; foffset = o; fbit = None } :: fields)
  in
  go specs [] 0 None []

let register reg name c =
  if not (Hashtbl.mem reg.comps name) then reg.names_rev <- name :: reg.names_rev;
  Hashtbl.replace reg.comps name c

let define_struct reg name specs =
  let fields, raw_size = layout_struct reg specs in
  let align = List.fold_left (fun a f -> max a (alignof reg f.ftyp)) 1 fields in
  let size = max 1 (align_up raw_size align) in
  register reg name { ckind = Struct_kind; cfields = fields; cconsts = []; csize = size; calign = align }

let define_union reg name specs =
  let to_field = function
    | F (n, t) | Fat (n, t, _) -> { fname = n; ftyp = t; foffset = 0; fbit = None }
    | Fbits (n, t, w) -> { fname = n; ftyp = t; foffset = 0; fbit = Some (0, w) }
  in
  let fields = List.map to_field specs in
  let align = List.fold_left (fun a f -> max a (alignof reg f.ftyp)) 1 fields in
  let size = List.fold_left (fun a f -> max a (sizeof reg f.ftyp)) 1 fields in
  register reg name
    { ckind = Union_kind; cfields = fields; cconsts = []; csize = align_up size align; calign = align }

let define_enum reg name consts =
  register reg name { ckind = Enum_kind; cfields = []; cconsts = consts; csize = 4; calign = 4 }

let is_defined reg name = Hashtbl.mem reg.comps name
let kind_of reg name = (composite reg name).ckind
let composite_names reg = List.rev reg.names_rev
let fields reg name = (composite reg name).cfields

let field_opt reg name fname =
  List.find_opt (fun f -> f.fname = fname) (composite reg name).cfields

let field reg name fname =
  match field_opt reg name fname with
  | Some f -> f
  | None -> raise Not_found

let offsetof reg name path =
  let parts = String.split_on_char '.' path in
  let rec go comp parts acc =
    match parts with
    | [] -> acc
    | p :: rest -> (
        let f = try field reg comp p with Not_found ->
          invalid_arg (Printf.sprintf "Ctype.offsetof: no field %S in %S" p comp)
        in
        match (rest, f.ftyp) with
        | [], _ -> acc + f.foffset
        | _, Named inner -> go inner rest (acc + f.foffset)
        | _, _ -> invalid_arg (Printf.sprintf "Ctype.offsetof: %S is not composite" p))
  in
  go name parts 0

let enum_values reg name = (composite reg name).cconsts

let enum_name_of reg name v =
  List.find_opt (fun (_, x) -> x = v) (enum_values reg name) |> Option.map fst

let enum_value_of reg name n = List.assoc_opt n (enum_values reg name)

let lookup_enum_const reg const =
  let found = ref None in
  Hashtbl.iter
    (fun ename c ->
      if c.ckind = Enum_kind && !found = None then
        match List.assoc_opt const c.cconsts with
        | Some v -> found := Some (ename, v)
        | None -> ())
    reg.comps;
  !found

let is_integer = function Int _ | Bool -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false

let strip reg = function
  | Named n when (composite reg n).ckind = Enum_kind -> uint
  | t -> t

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Bool -> Format.pp_print_string ppf "bool"
  | Int ik -> Format.pp_print_string ppf ik.ik_name
  | Ptr (Func name) -> Format.fprintf ppf "%s (*)()" name
  | Ptr t -> Format.fprintf ppf "%a *" pp t
  | Array (t, n) -> Format.fprintf ppf "%a[%d]" pp t n
  | Func name -> Format.fprintf ppf "%s ()" name
  | Named n -> Format.pp_print_string ppf n

let to_string t = Format.asprintf "%a" pp t
