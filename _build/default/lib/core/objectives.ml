(** The ten debugging objectives of Table 3 (§5.2): natural-language
    descriptions fed to *vchat*, each tied to the figure whose plot it
    refines and to a check that the synthesized ViewQL had the intended
    effect. *)

type expect = {
  exp_attr : string;  (** attribute the program must set *)
  exp_type : string;  (** on boxes of this type *)
  exp_min : int;  (** at least this many boxes affected *)
}

type objective = {
  fig : string;  (** Table 2 figure the objective applies to *)
  text : string;  (** the natural-language description *)
  expects : expect list;
}

let all : objective list =
  [ { fig = "3-4";
      text =
        "Display view \"show_children\" of all tasks, and shrink tasks that have no \
         address space";
      expects =
        [ { exp_attr = "view"; exp_type = "task_struct"; exp_min = 5 };
          { exp_attr = "collapsed"; exp_type = "task_struct"; exp_min = 5 } ] };
    { fig = "3-6";
      text = "Shrink all pid hash table entries whose nr != 2";
      expects = [ { exp_attr = "collapsed"; exp_type = "upid"; exp_min = 5 } ] };
    { fig = "4-5";
      text = "Shrink irq descriptors whose action is not configured";
      expects = [ { exp_attr = "collapsed"; exp_type = "irq_desc"; exp_min = 4 } ] };
    { fig = "7-1";
      text = "Display view \"sched\" of all processes, and display the red-black tree top-down";
      expects =
        [ { exp_attr = "view"; exp_type = "task_struct"; exp_min = 3 };
          { exp_attr = "direction"; exp_type = "RBTree"; exp_min = 1 } ] };
    { fig = "9-2";
      text =
        "Display view \"show_mt\" of mm_struct, collapse the slots of all maple_nodes, and \
         shrink all writable vm_area_structs";
      expects =
        [ { exp_attr = "view"; exp_type = "mm_struct"; exp_min = 1 };
          { exp_attr = "collapsed"; exp_type = "vm_area_struct"; exp_min = 3 } ] };
    { fig = "11-1";
      text = "Shrink all sigactions whose handler is not configured";
      expects = [ { exp_attr = "collapsed"; exp_type = "k_sigaction"; exp_min = 30 } ] };
    { fig = "14-3";
      text =
        "Display the superblock list vertically, and collapse superblocks that are not \
         connected to any block device";
      expects =
        [ { exp_attr = "direction"; exp_type = "List"; exp_min = 1 };
          { exp_attr = "collapsed"; exp_type = "super_block"; exp_min = 1 } ] };
    { fig = "15-1";
      text = "Shrink the slots of all xa_nodes in the extremely large page list";
      expects = [ { exp_attr = "collapsed"; exp_type = "Array"; exp_min = 1 } ] };
    { fig = "16-2";
      text = "Shrink all files whose nrpages == 0";
      expects = [ { exp_attr = "collapsed"; exp_type = "file"; exp_min = 0 } ] };
    { fig = "socketconn";
      text = "Shrink sockets whose write buffer and receive buffer are both empty";
      expects = [ { exp_attr = "collapsed"; exp_type = "sock"; exp_min = 1 } ] } ]
