(** The ViewCL script library: one self-contained program per figure of
    Table 2 (the ULK "revival" experiment, §5.1) plus the two CVE case
    studies (§5.3). As in the paper, code shared between plots is counted
    repeatedly — each program carries its own Box definitions.

    Scripts may reference the integer macro [target_pid], set by the
    session to the pid under inspection. *)

(** How much the underlying kernel structure changed between Linux 2.6.11
    (the ULK edition) and 6.1 — the Δ column of Table 2. *)
type delta =
  | Negligible  (** ○ *)
  | Variables  (** ◔ some variables or fields changed *)
  | Relations  (** ◑ fields, data structures or object relations changed *)
  | Significant  (** ● underlying data structure replaced *)

let delta_glyph = function
  | Negligible -> "o"
  | Variables -> "*"
  | Relations -> "**"
  | Significant -> "***"

type script = {
  id : int;
  fig : string;  (** ULK figure number, or a name for the added figures *)
  descr : string;
  delta : delta;
  source : string;
}

(* ------------------------------------------------------------------ *)

let fig_3_4_process_tree =
  {|// ULK Fig 3-4: the process parenthood tree
define PTask as Box<task_struct> {
  :default [
    Text pid, comm
    Text<raw_ptr> mm
    Container children: @kids
  ]
  :default => :show_children [
    Text<string> state: ${task_state(@this)}
  ]
} where {
  kids = List(${&@this->children}).forEach |node| {
    yield PTask<task_struct.sibling>(@node)
  }
}
plot PTask(${&init_task})
|}

let fig_3_6_pid_hash =
  {|// ULK Fig 3-6: the PID hash table
define Upid as Box<upid> [
  Text nr
  Text<string> comm: ${pid_task(container_of(@this, "pid", "numbers"))->comm}
]
hash = Array(${pid_hash}).forEach |head| {
  bucket = HList(@head).forEach |node| {
    yield Upid<upid.pid_chain>(@node)
  }
  yield @bucket
}
plot @hash
|}

let fig_4_5_irq =
  {|// ULK Fig 4-5: IRQ descriptors and their action chains
define IrqAction as Box<irqaction> [
  Text<string> name
  Text irq
  Text<fptr> handler
  Link next -> @nxt
] where {
  nxt = switch ${@this->next != NULL} {
    case ${true}: IrqAction(${@this->next})
    otherwise: NULL
  }
}
define IrqDesc as Box<irq_desc> [
  Text irq: irq_data.irq
  Text<string> chip: ${@this->irq_data.chip != NULL ? @this->irq_data.chip->name : "none"}
  Text<fptr> handle_irq
  Text depth
  Link action -> @act
] where {
  act = switch ${@this->action != NULL} {
    case ${true}: IrqAction(${@this->action})
    otherwise: NULL
  }
}
descs = Array(${irq_desc}).forEach |d| {
  yield IrqDesc(${&@d})
}
plot @descs
|}

let fig_6_1_timers =
  {|// ULK Fig 6-1: dynamic timers in the per-CPU timer wheel
define Timer as Box<timer_list> [
  Text expires
  Text<fptr> function
  Text<u32:x> flags
]
define TimerBase as Box<timer_base> [
  Text clk
  Text<emoji:lock> lock: lock.locked
  Container wheel: @buckets
] where {
  buckets = Array(${@this->vectors}).forEach |head| {
    bucket = HList(${&@head}).forEach |node| {
      yield Timer<timer_list.entry>(@node)
    }
    yield @bucket
  }
}
plot TimerBase(${per_cpu_timer_base(0)})
|}

let fig_7_1_runqueue =
  {|// ULK Fig 7-1 (updated): the CFS runqueue red-black tree
define SchedTask as Box<task_struct> {
  :default [
    Text pid, comm
  ]
  :default => :sched [
    Text prio
    Text se.vruntime
    Text se.on_rq
  ]
}
define CfsRq as Box<cfs_rq> [
  Text nr_running
  Text min_vruntime
  Container tasks_timeline: @tree
] where {
  tree = RBTree(${&@this->tasks_timeline}).forEach |node| {
    yield SchedTask<task_struct.se.run_node>(@node)
  }
}
define Rq as Box<rq> [
  Text cpu, nr_running
  Text<string> curr: ${cpu_curr(@this->cpu)->comm}
  Text<emoji:lock> lock: __lock.locked
  Link cfs -> @cfs
] where {
  cfs = CfsRq(${&@this->cfs})
}
plot Rq(${cpu_rq(0)})
|}

let fig_8_2_buddy =
  {|// ULK Fig 8-2: the buddy system and its free page blocks
define BuddyPage as Box<page> [
  Text pfn: ${page_to_pfn(@this)}
  Text order: private
  Text<flag:page_flags> flags
]
define FreeArea as Box<free_area> [
  Text nr_free
  Container free_list: @pages
] where {
  pages = List(${&@this->free_list}).forEach |node| {
    yield BuddyPage<page.lru>(@node)
  }
}
define Zone as Box<zone> [
  Text<string> name
  Text spanned_pages
  Container free_area: @areas
] where {
  areas = Array(${@this->free_area}).forEach |fa| {
    yield FreeArea(${&@fa})
  }
}
plot Zone(${&node_zones})
|}

let fig_8_4_slab =
  {|// ULK Fig 8-4: kmem caches and the slab allocator
define Slab as Box<slab> [
  Text inuse, objects, frozen
  Text<raw_ptr> freelist
]
define KmemCache as Box<kmem_cache> [
  Text<string> name
  Text object_size, size, align
  Text nr_slabs: nr_slabs.counter
  Container partial: @p
  Container full: @f
] where {
  p = List(${&@this->partial}).forEach |n| { yield Slab<slab.slab_list>(@n) }
  f = List(${&@this->full}).forEach |n| { yield Slab<slab.slab_list>(@n) }
}
caches = List(${&slab_caches}).forEach |n| {
  yield KmemCache<kmem_cache.list>(@n)
}
plot @caches
|}

let fig_9_2_address_space =
  {|// ULK Fig 9-2 (updated): a process address space over the maple tree
define FileRef as Box<file> [
  Text<string> path: ${@this->f_path.dentry->d_iname}
]
define VMArea as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
  Text<flag:vm_flags> vm_flags
  Text<bool> is_writable: ${is_writable(@this)}
  Text<string> backing: ${vma_name(@this)}
  Link vm_file -> @f
] where {
  f = switch ${@this->vm_file != NULL} {
    case ${true}: FileRef(${@this->vm_file})
    otherwise: NULL
  }
}
define MapleNode as Box<maple_node> [
  Text<enum:maple_type> node_type: ${mte_node_type(@this)}
  Text<bool> leaf: ${mte_is_leaf(@this)}
  Container slots: @slots
] where {
  node = ${mte_to_node(@this)}
  slots = switch ${mte_node_type(@this)} {
    case ${maple_leaf_64}, ${maple_range_64}:
      Array(${@node->mr64.slot}).forEach |item| {
        yield switch ${@item != NULL} {
          case ${true}: VMArea(@item)
          otherwise: NULL
        }
      }
    case ${maple_arange_64}:
      Array(${@node->ma64.slot}).forEach |item| {
        yield switch ${@item != NULL} {
          case ${true}: MapleNode(@item)
          otherwise: NULL
        }
      }
    otherwise: NULL
  }
}
define MapleTree as Box<maple_tree> [
  Text<u32:x> ma_flags
  Link ma_root -> @root
] where {
  root = switch ${xa_is_node(@this->ma_root)} {
    case ${true}: MapleNode(${@this->ma_root})
    case ${false}: switch ${@this->ma_root != NULL} {
      case ${true}: VMArea(${@this->ma_root})
      otherwise: NULL
    }
  }
}
define MMStruct as Box<mm_struct> {
  :default [
    Text<u64:x> mmap_base, start_code, start_stack, brk
    Text map_count
    Text mm_count: mm_count.counter
    Text<emoji:lock> mmap_lock: mmap_lock.locked
    Link mm_mt -> @mt
  ]
  :default => :show_mt [
    Text<u64:x> task_size
  ]
  :default => :show_addrspace [
    Container mm_as: @as_list
  ]
} where {
  mt = MapleTree(${&@this->mm_mt})
  as_list = Array.selectFrom(@mt, VMArea)
}
define Task9 as Box<task_struct> [
  Text pid, comm
  Link mm -> @m
] where {
  m = MMStruct(${@this->mm})
}
plot Task9(${task_of_pid(target_pid)})
|}

let fig_11_1_signals =
  {|// ULK Fig 11-1: data structures for signal handling
define SigAction as Box<k_sigaction> [
  Text<fptr> handler: sa.sa_handler
  Text<u64:x> flags: sa.sa_flags
  Text<u64:x> mask: sa.sa_mask.sig
]
define SigQueue as Box<sigqueue> [
  Text si_signo, si_pid, si_code
]
define SigPendingBox as Box<sigpending> [
  Text<u64:x> signal: signal.sig
  Container queue: @q
] where {
  q = List(${&@this->list}).forEach |n| { yield SigQueue<sigqueue.list>(@n) }
}
define SigHand as Box<sighand_struct> [
  Text count: count.refs.counter
  Container action: @acts
] where {
  acts = Array(${@this->action}).forEach |a| { yield SigAction(${&@a}) }
}
define SignalStruct as Box<signal_struct> [
  Text nr_threads
  Text live: live.counter
  Container shared_pending: @sp
] where {
  sp = SigPendingBox(${&@this->shared_pending})
}
define Task11 as Box<task_struct> [
  Text pid, comm
  Text<u64:x> blocked: blocked.sig
  Link signal -> @sg
  Link sighand -> @sh
  Container pending: @pd
] where {
  sg = SignalStruct(${@this->signal})
  sh = SigHand(${@this->sighand})
  pd = SigPendingBox(${&@this->pending})
}
plot Task11(${task_of_pid(target_pid)})
|}

let fig_12_3_fd_array =
  {|// ULK Fig 12-3: the fd array of a process
define File12 as Box<file> [
  Text<string> path: ${@this->f_path.dentry->d_iname}
  Text f_count: f_count.counter
  Text<u32:x> f_flags
]
define FdTable as Box<fdtable> [
  Text max_fds
  Container fd: @files
] where {
  files = Array(${@this->fd}, ${8}).forEach |f| {
    yield switch ${@f != NULL} {
      case ${true}: File12(@f)
      otherwise: NULL
    }
  }
}
define FilesStruct as Box<files_struct> [
  Text count: count.counter
  Text next_fd
  Link fdt -> @t
] where {
  t = FdTable(${@this->fdt})
}
plot FilesStruct(${task_of_pid(target_pid)->files})
|}

let fig_13_3_kobject =
  {|// ULK Fig 13-3: device drivers and the kobject hierarchy
define KObject as Box<kobject> [
  Text<string> name
  Text refcount: kref.refcount.refs.counter
  Link parent -> @p
] where {
  p = switch ${@this->parent != NULL} {
    case ${true}: KObject(${@this->parent})
    otherwise: NULL
  }
}
define KSet as Box<kset> [
  Container members: @m
] where {
  m = List(${&@this->list}).forEach |n| {
    yield KObject<kobject.entry>(@n)
  }
}
plot KSet(${&devices_kset})
|}

let fig_14_3_block =
  {|// ULK Fig 14-3: block device descriptors behind the superblock list
define Gendisk as Box<gendisk> [
  Text<string> disk_name
  Text major, first_minor, minors
]
define BlockDevice as Box<block_device> [
  Text<u32:x> bd_dev
  Link bd_disk -> @d
] where {
  d = switch ${@this->bd_disk != NULL} {
    case ${true}: Gendisk(${@this->bd_disk})
    otherwise: NULL
  }
}
define SuperBlock as Box<super_block> [
  Text<string> s_id
  Text s_blocksize
  Text<string> fstype: ${@this->s_type->name}
  Link s_bdev -> @b
] where {
  b = switch ${@this->s_bdev != NULL} {
    case ${true}: BlockDevice(${@this->s_bdev})
    otherwise: NULL
  }
}
sbs = List(${&super_blocks}).forEach |n| {
  yield SuperBlock<super_block.s_list>(@n)
}
plot @sbs
|}

let fig_15_1_page_cache =
  {|// ULK Fig 15-1 (updated): the XArray managing the page cache
define PageBox as Box<page> [
  Text index
  Text<flag:page_flags> flags
  Text refcount: _refcount.counter
  Text<string> content: ${page_content(@this)}
]
define XaNode as Box<xa_node> [
  Text shift, count
  Container slots: @s
] where {
  s = Array(${@this->slots}).forEach |e| {
    yield switch ${@e != NULL} {
      case ${true}: switch ${xa_is_node(@e)} {
        case ${true}: XaNode(${xa_to_node(@e)})
        case ${false}: PageBox(@e)
      }
      otherwise: NULL
    }
  }
}
define AddressSpace as Box<address_space> [
  Text nrpages
  Link xa_head -> @root
] where {
  head = ${@this->i_pages.xa_head}
  root = switch ${xa_is_node(@head)} {
    case ${true}: XaNode(${xa_to_node(@head)})
    case ${false}: switch ${@head != NULL} {
      case ${true}: PageBox(@head)
      otherwise: NULL
    }
  }
}
define File15 as Box<file> [
  Text<string> path: ${@this->f_path.dentry->d_iname}
  Link f_mapping -> @m
] where {
  m = AddressSpace(${@this->f_mapping})
}
plot File15(${data_file(task_of_pid(target_pid))})
|}

let fig_16_2_file_mapping =
  {|// ULK Fig 16-2: memory-mapped files, from VMA to page cache
define Page16 as Box<page> [
  Text index
  Text<flag:page_flags> flags
]
define AddressSpace16 as Box<address_space> [
  Text nrpages
  Container pages: @pgs
] where {
  pgs = XArray(${&@this->i_pages}).forEach |e| {
    yield Page16(@e)
  }
}
define File16 as Box<file> [
  Text<string> path: ${@this->f_path.dentry->d_iname}
  Text nrpages: f_mapping.nrpages
  Link f_mapping -> @m
] where {
  m = AddressSpace16(${@this->f_mapping})
}
define VMA16 as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
  Text vm_pgoff
  Link vm_file -> @f
] where {
  f = switch ${@this->vm_file != NULL} {
    case ${true}: File16(${@this->vm_file})
    otherwise: NULL
  }
}
vmas = MapleEntries(${&task_of_pid(target_pid)->mm->mm_mt}).forEach |e| {
  yield VMA16(@e)
}
plot @vmas
|}

let fig_17_1_anon_rmap =
  {|// ULK Fig 17-1 (updated): the reverse map of anonymous memory
define VMA17 as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
  Text<string> backing: ${vma_name(@this)}
]
define AnonVmaChain as Box<anon_vma_chain> [
  Link vma -> @v
] where {
  v = VMA17(${@this->vma})
}
define AnonVma as Box<anon_vma> [
  Text refcount: refcount.counter
  Text num_active_vmas
  Container rb_root: @chains
] where {
  chains = RBTree(${&@this->rb_root}).forEach |node| {
    yield AnonVmaChain<anon_vma_chain.rb>(@node)
  }
}
avs = MapleEntries(${&task_of_pid(target_pid)->mm->mm_mt}).forEach |e| {
  yield switch ${((vm_area_struct *)@e)->anon_vma != NULL} {
    case ${true}: AnonVma(${((vm_area_struct *)@e)->anon_vma})
    otherwise: NULL
  }
}
plot @avs
|}

let fig_17_6_swap =
  {|// ULK Fig 17-6: swap area descriptors
define SwapInfo as Box<swap_info_struct> [
  Text type, prio
  Text pages, max, inuse_pages
  Text<u64:x> flags
  Text<string> backing: ${@this->swap_file != NULL ? @this->swap_file->f_path.dentry->d_iname : "none"}
]
areas = Array(${swap_info}).forEach |si| {
  yield switch ${@si != NULL} {
    case ${true}: SwapInfo(@si)
    otherwise: NULL
  }
}
plot @areas
|}

let fig_19_ipc =
  {|// ULK Fig 19-1/19-2 (merged): System V IPC semaphores and queues
define Sem as Box<sem> [
  Text semval, sempid
]
define SemArray as Box<sem_array> [
  Text id: sem_perm.id
  Text<u32:x> key: sem_perm.key
  Text sem_nsems
  Container sems: @ss
] where {
  n = ${@this->sem_nsems}
  ss = Array(${@this->sems}, @n).forEach |s| { yield Sem(${&@s}) }
}
define MsgMsg as Box<msg_msg> [
  Text m_type, m_ts
]
define MsgQueue as Box<msg_queue> [
  Text id: q_perm.id
  Text<u32:x> key: q_perm.key
  Text q_qnum, q_cbytes, q_qbytes
  Container q_messages: @ms
] where {
  ms = List(${&@this->q_messages}).forEach |n| {
    yield MsgMsg<msg_msg.m_list>(@n)
  }
}
sems = XArray(${&ipc_namespace.ids[0].ipcs_idr.idr_rt}).forEach |e| {
  yield SemArray(@e)
}
msgs = XArray(${&ipc_namespace.ids[1].ipcs_idr.idr_rt}).forEach |e| {
  yield MsgQueue(@e)
}
ipc = Range(${0}, ${2}).forEach |i| {
  yield switch @i { case ${0}: @sems otherwise: @msgs }
}
plot @ipc
|}

let fig_workqueue =
  {|// Added figure (paper Fig 6): the heterogeneous work list of mm_percpu_wq
define VmstatWork as Box<vmstat_work_s> [
  Text cpu, interval
  Text<fptr> func: work.work.func
]
define LruDrainWork as Box<lru_drain_work_s> [
  Text cpu
  Text<fptr> func: work.func
]
define CompactWork as Box<mm_compact_work_s> [
  Text order
  Text<fptr> func: work.func
  Text<string> zone: ${@this->zone->name}
]
define WorkerPool as Box<worker_pool> [
  Text cpu, id, nr_workers
  Container worklist: @items
] where {
  items = List(${&@this->worklist}).forEach |n| {
    work = ${container_of(@n, "work_struct", "entry")}
    yield switch ${func_name(@work->func)} {
      case ${"vmstat_update"}: VmstatWork<vmstat_work_s.work.work.entry>(@n)
      case ${"lru_add_drain_per_cpu"}: LruDrainWork<lru_drain_work_s.work.entry>(@n)
      otherwise: CompactWork<mm_compact_work_s.work.entry>(@n)
    }
  }
}
plot WorkerPool(${per_cpu_worker_pool(0)})
|}

let fig_proc2vfs =
  {|// Added figure: from a process to the VFS
define Inode20 as Box<inode> [
  Text i_ino, i_size
  Text<string> sb: ${@this->i_sb != NULL ? @this->i_sb->s_id : "anon"}
]
define Dentry20 as Box<dentry> [
  Text<string> name: ${@this->d_iname}
  Link d_inode -> @i
] where {
  i = switch ${@this->d_inode != NULL} {
    case ${true}: Inode20(${@this->d_inode})
    otherwise: NULL
  }
}
define File20 as Box<file> [
  Text f_count: f_count.counter
  Link dentry -> @d
] where {
  d = Dentry20(${@this->f_path.dentry})
}
define Task20 as Box<task_struct> [
  Text pid, comm
  Container open_files: @ofs
] where {
  ofs = Array(${@this->files->fdt->fd}, ${8}).forEach |f| {
    yield switch ${@f != NULL} {
      case ${true}: File20(@f)
      otherwise: NULL
    }
  }
}
plot Task20(${task_of_pid(target_pid)})
|}

let fig_socket =
  {|// Added figure: a live socket connection from the fd table
define SkBuff as Box<sk_buff> [
  Text len, data_len
]
define Sock as Box<sock> [
  Text<u16:d> lport: skc_num
  Text<u16:d> rport: skc_dport
  Text<u32:x> daddr: skc_daddr
  Text skc_state
  Text rqlen: sk_receive_queue.qlen
  Text wqlen: sk_write_queue.qlen
  Container receive_queue: @rq
  Container write_queue: @wq
] where {
  rq = List(${&@this->sk_receive_queue}).forEach |n| { yield SkBuff<sk_buff.next>(@n) }
  wq = List(${&@this->sk_write_queue}).forEach |n| { yield SkBuff<sk_buff.next>(@n) }
}
define SocketBox as Box<socket> [
  Text<enum:socket_state> state
  Text type
  Link sk -> @s
] where {
  s = Sock(${@this->sk})
}
define TaskSock as Box<task_struct> [
  Text pid, comm
  Container sockets: @socks
] where {
  socks = Array(${@this->files->fdt->fd}, ${8}).forEach |f| {
    yield switch ${@f != NULL} {
      case ${true}: switch ${func_name(@f->f_op)} {
        case ${"socket_file_ops"}: SocketBox(${sock_of_file(@f)})
        otherwise: NULL
      }
      otherwise: NULL
    }
  }
}
plot TaskSock(${task_of_pid(target_pid)})
|}

(* ------------------------------------------------------------------ *)
(* CVE case studies *)

let cve_stackrot =
  {|// CVE-2023-3269 (StackRot): maple tree + the RCU waiting list
define VMAsr as Box<vm_area_struct> [
  Text<u64:x> vm_start, vm_end
  Text<bool> is_writable: ${is_writable(@this)}
]
define MapleNodeSR as Box<maple_node> [
  Text<enum:maple_type> node_type: ${mte_node_type(@this)}
  Text<bool> dead: ${ma_is_dead(mte_to_node(@this))}
  Container slots: @slots
] where {
  node = ${mte_to_node(@this)}
  slots = switch ${mte_node_type(@this)} {
    case ${maple_leaf_64}, ${maple_range_64}:
      Array(${@node->mr64.slot}).forEach |item| {
        yield switch ${@item != NULL} {
          case ${true}: VMAsr(@item)
          otherwise: NULL
        }
      }
    otherwise:
      Array(${@node->ma64.slot}).forEach |item| {
        yield switch ${@item != NULL} {
          case ${true}: MapleNodeSR(@item)
          otherwise: NULL
        }
      }
  }
}
define MapleTreeSR as Box<maple_tree> [
  Link ma_root -> @root
] where {
  root = switch ${xa_is_node(@this->ma_root)} {
    case ${true}: MapleNodeSR(${@this->ma_root})
    otherwise: NULL
  }
}
define RcuHead as Box<callback_head> [
  Text<fptr> func
  Text<bool> node_dead: ${ma_is_dead(@this)}
  Link next -> @n
] where {
  n = switch ${@this->next != NULL} {
    case ${true}: RcuHead(${@this->next})
    otherwise: NULL
  }
}
define RcuData as Box<rcu_data> [
  Text cpu, gp_seq
  Link cblist -> @h
] where {
  h = switch ${@this->cblist != NULL} {
    case ${true}: RcuHead(${@this->cblist})
    otherwise: NULL
  }
}
plot MapleTreeSR(${&task_of_pid(target_pid)->mm->mm_mt})
plot RcuData(${per_cpu_rcu_data(0)})
|}

let cve_dirtypipe =
  {|// CVE-2022-0847 (Dirty Pipe): page caches of files and pipes
define PageDP as Box<page> [
  Text index
  Text refcount: _refcount.counter
  Text<flag:page_flags> flags
  Text<string> content: ${page_content(@this)}
]
define PipeBuffer as Box<pipe_buffer> [
  Text offset, len
  Text<flag:pipe_buf_flags> flags
  Text<fptr> ops
  Link page -> @p
] where {
  p = switch ${@this->page != NULL} {
    case ${true}: PageDP(${@this->page})
    otherwise: NULL
  }
}
define PipeInfo as Box<pipe_inode_info> [
  Text head, tail, ring_size
  Container bufs: @bs
] where {
  n = ${@this->ring_size}
  bufs0 = ${@this->bufs}
  bs = Range(${0}, @n).forEach |i| {
    yield PipeBuffer(${&@bufs0[@i]})
  }
}
define ASpace as Box<address_space> [
  Text nrpages
  Container pages: @pgs
] where {
  pgs = XArray(${&@this->i_pages}).forEach |e| { yield PageDP(@e) }
}
define FileDP as Box<file> [
  Text<string> path: ${@this->f_path.dentry->d_iname}
  Link pagecache -> @m
] where {
  m = switch ${func_name(@this->f_op) == "pipefifo_fops"} {
    case ${true}: NULL
    otherwise: ASpace(${@this->f_mapping})
  }
}
define TaskDP as Box<task_struct> [
  Text pid, comm
  Container files: @fs
  Container pipes: @ps
] where {
  fs = Array(${@this->files->fdt->fd}, ${16}).forEach |f| {
    yield switch ${@f != NULL} {
      case ${true}: FileDP(@f)
      otherwise: NULL
    }
  }
  ps = Array(${@this->files->fdt->fd}, ${16}).forEach |f| {
    yield switch ${@f != NULL} {
      case ${true}: switch ${i_pipe_of(@f) != NULL} {
        case ${true}: PipeInfo(${i_pipe_of(@f)})
        otherwise: NULL
      }
      otherwise: NULL
    }
  }
}
plot TaskDP(${task_of_pid(target_pid)})
|}

(* ------------------------------------------------------------------ *)

let table2 : script list =
  [ { id = 1; fig = "3-4"; descr = "process parenthood tree"; delta = Negligible;
      source = fig_3_4_process_tree };
    { id = 2; fig = "3-6"; descr = "PID hash tables"; delta = Variables; source = fig_3_6_pid_hash };
    { id = 3; fig = "4-5"; descr = "IRQ descriptors"; delta = Relations; source = fig_4_5_irq };
    { id = 4; fig = "6-1"; descr = "dynamic timers"; delta = Relations; source = fig_6_1_timers };
    { id = 5; fig = "7-1"; descr = "runqueue of CFS scheduler"; delta = Significant;
      source = fig_7_1_runqueue };
    { id = 6; fig = "8-2"; descr = "buddy system and pages"; delta = Variables;
      source = fig_8_2_buddy };
    { id = 7; fig = "8-4"; descr = "kmem cache and slab allocator"; delta = Significant;
      source = fig_8_4_slab };
    { id = 8; fig = "9-2"; descr = "process address space"; delta = Significant;
      source = fig_9_2_address_space };
    { id = 9; fig = "11-1"; descr = "components for signal handling"; delta = Negligible;
      source = fig_11_1_signals };
    { id = 10; fig = "12-3"; descr = "the fd array"; delta = Relations;
      source = fig_12_3_fd_array };
    { id = 11; fig = "13-3"; descr = "device driver and kobject"; delta = Variables;
      source = fig_13_3_kobject };
    { id = 12; fig = "14-3"; descr = "block device descriptors"; delta = Variables;
      source = fig_14_3_block };
    { id = 13; fig = "15-1"; descr = "the radix tree managing page cache"; delta = Significant;
      source = fig_15_1_page_cache };
    { id = 14; fig = "16-2"; descr = "file memory mapping"; delta = Variables;
      source = fig_16_2_file_mapping };
    { id = 15; fig = "17-1"; descr = "reverse map of anonymous pages"; delta = Relations;
      source = fig_17_1_anon_rmap };
    { id = 16; fig = "17-6"; descr = "swap area descriptors"; delta = Negligible;
      source = fig_17_6_swap };
    { id = 17; fig = "19-1/2"; descr = "IPC semaphore and message queues"; delta = Significant;
      source = fig_19_ipc };
    { id = 18; fig = "workqueue"; descr = "work queue (heterogeneous list)"; delta = Significant;
      source = fig_workqueue };
    { id = 19; fig = "proc2vfs"; descr = "from process to VFS"; delta = Negligible;
      source = fig_proc2vfs };
    { id = 20; fig = "socketconn"; descr = "socket connection"; delta = Variables;
      source = fig_socket } ]

let find fig = List.find_opt (fun s -> s.fig = fig) table2

let loc s = Viewcl.loc_of s.source
