(** Visualinux — the framework façade (paper §4).

    A {!session} binds a booted simulated kernel, the debugger target, and
    the pane manager, and exposes the three v-commands:

    - {!vplot}: evaluate a ViewCL program, open the result in a pane;
    - {!vctrl}: pane control — apply ViewQL, split, focus, persist;
    - {!vchat}: natural language -> ViewQL -> apply. *)

module Scripts = Scripts
module Objectives = Objectives

type session = {
  kernel : Kstate.t;
  target : Target.t;
  panel : Panel.t;
  cfg : Viewcl.config;
  mutable target_pid : int;
}

(** The EMOJI decorator instances of Table 1: stateful-value glyphs. *)
let emojis =
  [ ("lock", fun v -> if v <> 0 then "[LOCKED]" else "[unlocked]");
    ("onrq", fun v -> if v <> 0 then "[on-rq]" else "[off-rq]");
    ("dead", fun v -> if v <> 0 then "[DEAD]" else "[live]") ]

let config () = { Viewcl.flags = Ktypes.flag_tables; emojis }

(** Attach to a booted kernel. [target_pid] (default: the first user
    process) is exposed to ViewCL scripts as a macro. *)
let attach ?target_pid kernel =
  let target = Khelpers.attach kernel in
  let pid =
    match target_pid with
    | Some p -> p
    | None -> (
        (* Prefer a user-space group leader with a populated fd table (the
           workload's first worker); fall back to any user leader. *)
        let ctx = kernel.Kstate.ctx in
        let user t =
          Kcontext.r64 ctx t "task_struct" "mm" <> 0
          && Ktask.pid ctx t > 1
          && Kcontext.r64 ctx t "task_struct" "group_leader" = t
        in
        let fd_count t =
          match Kcontext.r64 ctx t "task_struct" "files" with
          | 0 -> 0
          | files -> List.length (Kvfs.open_fds kernel.Kstate.vfs files)
        in
        let users = List.filter user (Kstate.all_tasks kernel) in
        match List.find_opt (fun t -> fd_count t >= 4) users with
        | Some t -> Ktask.pid ctx t
        | None -> ( match users with t :: _ -> Ktask.pid ctx t | [] -> 1))
  in
  Target.add_macro target "target_pid" pid;
  { kernel; target; panel = Panel.create (); cfg = config (); target_pid = pid }

let set_target_pid s pid =
  s.target_pid <- pid;
  Target.add_macro s.target "target_pid" pid

(* ------------------------------------------------------------------ *)
(* v-commands *)

(** Statistics of one extraction, for the Table 4 experiment. *)
type plot_stats = {
  boxes : int;
  bytes : int;  (** total sizeof of plotted kernel objects *)
  reads : int;  (** target read operations during extraction *)
  read_bytes : int;
  wall_ms : float;  (** actual OCaml wall-clock extraction time *)
}

(** vplot: evaluate ViewCL source, open a primary pane with the plot. *)
let vplot s ?(title = "plot") src =
  Target.reset_stats s.target;
  let t0 = Unix.gettimeofday () in
  let res = Viewcl.run ~cfg:s.cfg s.target src in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let st = Target.stats s.target in
  Vgraph.set_title res.Viewcl.graph title;
  let pane = Panel.open_primary s.panel ~program:src res.Viewcl.graph in
  let stats =
    { boxes = Vgraph.box_count res.Viewcl.graph; bytes = Vgraph.total_bytes res.Viewcl.graph;
      reads = st.Target.reads; read_bytes = st.Target.bytes; wall_ms }
  in
  (pane, res, stats)

(** vctrl subcommands. *)
type vctrl =
  | Apply of { pane : Panel.pane_id; viewql : string }
  | Split of { pane : Panel.pane_id; dir : [ `Horizontal | `Vertical ]; program : string }
  | Focus of { addr : int }
  | Select of { pane : Panel.pane_id; boxes : Vgraph.box_id list }
  | Close of { pane : Panel.pane_id }

type vctrl_result =
  | Updated of int
  | Opened of Panel.pane_id
  | Found of (Panel.pane_id * Vgraph.box_id) list
  | Closed

let vctrl s cmd =
  match cmd with
  | Apply { pane; viewql } -> Updated (Panel.refine s.panel ~at:pane viewql)
  | Split { pane; dir; program } ->
      let res = Viewcl.run ~cfg:s.cfg s.target program in
      let p = Panel.split s.panel ~dir ~at:pane ~program res.Viewcl.graph in
      Opened p.Panel.pid
  | Focus { addr } -> Found (Panel.focus s.panel ~addr)
  | Select { pane; boxes } ->
      let p = Panel.select s.panel ~from:pane boxes in
      Opened p.Panel.pid
  | Close { pane } ->
      Panel.close s.panel pane;
      Closed

(** vchat: natural language -> ViewQL (via the deterministic synthesizer
    or a plugged-in LLM) -> applied to the pane. Returns the synthesized
    program and the number of boxes updated. *)
let vchat s ?llm ~pane text =
  let program = Vchat.synthesize ?llm text in
  let updated = Panel.refine s.panel ~at:pane program in
  (program, updated)

(* ------------------------------------------------------------------ *)
(* Session persistence: save pane programs + refinement histories and
   replay them against a (possibly different) kernel state — "persisting
   the state of panes and plots for reuse across debugging sessions". *)

let save_session s = Panel.to_json s.panel

(** The replayable essence of a session: primary pane programs with their
    refinement histories. *)
let session_programs s = Panel.saved_programs s.panel

(** Replay saved programs into [s] (typically a fresh session on a new
    kernel): re-extracts each plot and re-applies its ViewQL history. *)
let replay s programs =
  List.map
    (fun (program, history) ->
      let pane, res, _ = vplot s program in
      List.iter (fun ql -> ignore (Panel.refine s.panel ~at:pane.Panel.pid ql)) history;
      (pane, res))
    programs

(* ------------------------------------------------------------------ *)
(* Naive ViewCL synthesis (paper §4: "vplot ... can also synthesize naive
   ViewCL code for trivial debugging objectives"): generate a Box showing
   every scalar field of a registered struct, from the type registry. *)

let synthesize_viewcl reg ~typ ~expr =
  if not (Ctype.is_defined reg typ) then
    invalid_arg (Printf.sprintf "vplot_auto: unknown type %S" typ);
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "define Auto_%s as Box<%s> [\n" typ typ);
  List.iter
    (fun f ->
      let name = f.Ctype.fname in
      match f.Ctype.ftyp with
      | Ctype.Int _ | Ctype.Bool -> Buffer.add_string buf (Printf.sprintf "  Text %s\n" name)
      | Ctype.Array (Ctype.Int { Ctype.ik_size = 1; _ }, _) ->
          Buffer.add_string buf (Printf.sprintf "  Text<string> %s\n" name)
      | Ctype.Ptr (Ctype.Func _) ->
          Buffer.add_string buf (Printf.sprintf "  Text<fptr> %s\n" name)
      | Ctype.Ptr _ -> Buffer.add_string buf (Printf.sprintf "  Text<raw_ptr> %s\n" name)
      | Ctype.Named n when Ctype.is_defined reg n && Ctype.kind_of reg n = Ctype.Enum_kind ->
          Buffer.add_string buf (Printf.sprintf "  Text<enum:%s> %s\n" n name)
      | Ctype.Named _ | Ctype.Array _ | Ctype.Void | Ctype.Func _ ->
          (* embedded aggregates are beyond a naive plot *)
          ())
    (Ctype.fields reg typ);
  Buffer.add_string buf "]\n";
  Buffer.add_string buf (Printf.sprintf "plot Auto_%s(${%s})\n" typ expr);
  Buffer.contents buf

(** vplot with synthesized ViewCL: plot the struct [typ] object denoted by
    the C expression [expr], showing all its scalar fields. *)
let vplot_auto s ~typ ~expr =
  let src = synthesize_viewcl (Target.types s.target) ~typ ~expr in
  vplot s ~title:(Printf.sprintf "auto: %s" typ) src

(* ------------------------------------------------------------------ *)
(* Convenience: run a Table 2 figure end to end. *)

let plot_figure s (sc : Scripts.script) =
  let title = Printf.sprintf "ULK Fig %s: %s" sc.Scripts.fig sc.Scripts.descr in
  vplot s ~title sc.Scripts.source
