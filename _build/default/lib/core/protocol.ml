(** The GDB-extension <-> visualizer message protocol (paper §4.2).

    In the paper, v-commands executed inside GDB push HTTP POST requests
    to the TypeScript front-end: *vplot* carries extracted object graphs,
    *vctrl* carries ViewQL programs or pane operations. We reproduce that
    decoupling as a typed message layer with JSON encode/decode and a
    dispatcher that drives a {!Visualinux.session} — so a real transport
    (socket, pipe, file) can be slotted in without touching either side. *)

type request =
  | Plot of { title : string; program : string }
      (** vplot: evaluate ViewCL [program], open a pane *)
  | Apply of { pane : int; viewql : string }  (** vctrl: apply a ViewQL program *)
  | Split of { pane : int; dir : [ `Horizontal | `Vertical ]; program : string }
  | Focus of { addr : int }
  | Close of { pane : int }
  | Chat of { pane : int; text : string }  (** vchat *)
  | Get_pane of { pane : int }  (** fetch a pane's graph for (re)rendering *)

type response =
  | Pane_opened of { pane : int; graph : string }  (** graph as JSON *)
  | Updated of { count : int; graph : string }
  | Found of (int * int) list  (** (pane, box) hits *)
  | Closed
  | Synthesized of { viewql : string; count : int; graph : string }
  | Pane_graph of { graph : string }
  | Error of string

(* ------------------------------------------------------------------ *)
(* Encoding *)

let dir_to_string = function `Horizontal -> "horizontal" | `Vertical -> "vertical"

let encode_request r =
  let open Json in
  let obj = function
    | Plot { title; program } ->
        Obj [ ("cmd", String "vplot"); ("title", String title); ("program", String program) ]
    | Apply { pane; viewql } ->
        Obj [ ("cmd", String "vctrl"); ("op", String "apply"); ("pane", Int pane);
              ("viewql", String viewql) ]
    | Split { pane; dir; program } ->
        Obj [ ("cmd", String "vctrl"); ("op", String "split"); ("pane", Int pane);
              ("dir", String (dir_to_string dir)); ("program", String program) ]
    | Focus { addr } ->
        Obj [ ("cmd", String "vctrl"); ("op", String "focus"); ("addr", Int addr) ]
    | Close { pane } ->
        Obj [ ("cmd", String "vctrl"); ("op", String "close"); ("pane", Int pane) ]
    | Chat { pane; text } ->
        Obj [ ("cmd", String "vchat"); ("pane", Int pane); ("text", String text) ]
    | Get_pane { pane } -> Obj [ ("cmd", String "get_pane"); ("pane", Int pane) ]
  in
  Json.to_string (obj r)

let decode_request s =
  let open Json in
  let j = parse s in
  let str k = to_str (member_exn k j) in
  let int k = to_int (member_exn k j) in
  match str "cmd" with
  | "vplot" -> Plot { title = str "title"; program = str "program" }
  | "vchat" -> Chat { pane = int "pane"; text = str "text" }
  | "get_pane" -> Get_pane { pane = int "pane" }
  | "vctrl" -> (
      match str "op" with
      | "apply" -> Apply { pane = int "pane"; viewql = str "viewql" }
      | "split" ->
          Split
            { pane = int "pane";
              dir = (if str "dir" = "vertical" then `Vertical else `Horizontal);
              program = str "program" }
      | "focus" -> Focus { addr = int "addr" }
      | "close" -> Close { pane = int "pane" }
      | op -> fail "unknown vctrl op %S" op)
  | cmd -> fail "unknown command %S" cmd

let encode_response r =
  let open Json in
  let obj = function
    | Pane_opened { pane; graph } ->
        Obj [ ("status", String "pane_opened"); ("pane", Int pane);
              ("graph", Json.parse graph) ]
    | Updated { count; graph } ->
        Obj [ ("status", String "updated"); ("count", Int count); ("graph", Json.parse graph) ]
    | Found hits ->
        Obj
          [ ("status", String "found");
            ( "hits",
              List (List.map (fun (p, b) -> Obj [ ("pane", Int p); ("box", Int b) ]) hits) ) ]
    | Closed -> Obj [ ("status", String "closed") ]
    | Synthesized { viewql; count; graph } ->
        Obj [ ("status", String "synthesized"); ("viewql", String viewql); ("count", Int count);
              ("graph", Json.parse graph) ]
    | Pane_graph { graph } -> Obj [ ("status", String "graph"); ("graph", Json.parse graph) ]
    | Error m -> Obj [ ("status", String "error"); ("message", String m) ]
  in
  Json.to_string (obj r)

let decode_response s =
  let open Json in
  let j = parse s in
  let graph () = Json.to_string (member_exn "graph" j) in
  match to_str (member_exn "status" j) with
  | "pane_opened" -> Pane_opened { pane = to_int (member_exn "pane" j); graph = graph () }
  | "updated" -> Updated { count = to_int (member_exn "count" j); graph = graph () }
  | "found" ->
      Found
        (List.map
           (fun h -> (to_int (member_exn "pane" h), to_int (member_exn "box" h)))
           (to_list (member_exn "hits" j)))
  | "closed" -> Closed
  | "synthesized" ->
      Synthesized
        { viewql = to_str (member_exn "viewql" j); count = to_int (member_exn "count" j);
          graph = graph () }
  | "graph" -> Pane_graph { graph = graph () }
  | "error" -> Error (to_str (member_exn "message" j))
  | st -> fail "unknown status %S" st

(* ------------------------------------------------------------------ *)
(* Server side: dispatch a request against a session *)

let pane_graph s pane = Vgraph.to_json (Panel.pane s.Visualinux.panel pane).Panel.graph

let dispatch s req =
  try
    match req with
    | Plot { title; program } ->
        let pane, res, _ = Visualinux.vplot s ~title program in
        Pane_opened { pane = pane.Panel.pid; graph = Vgraph.to_json res.Viewcl.graph }
    | Apply { pane; viewql } ->
        let n = Panel.refine s.Visualinux.panel ~at:pane viewql in
        Updated { count = n; graph = pane_graph s pane }
    | Split { pane; dir; program } -> (
        match Visualinux.vctrl s (Visualinux.Split { pane; dir; program }) with
        | Visualinux.Opened pid -> Pane_opened { pane = pid; graph = pane_graph s pid }
        | _ -> Error "split failed")
    | Focus { addr } -> (
        match Visualinux.vctrl s (Visualinux.Focus { addr }) with
        | Visualinux.Found hits -> Found hits
        | _ -> Error "focus failed")
    | Close { pane } ->
        Panel.close s.Visualinux.panel pane;
        Closed
    | Chat { pane; text } ->
        let viewql, count = Visualinux.vchat s ~pane text in
        Synthesized { viewql; count; graph = pane_graph s pane }
    | Get_pane { pane } -> Pane_graph { graph = pane_graph s pane }
  with
  | Viewcl.Error m | Viewql.Error m -> Error m
  | Vchat.Cannot_synthesize _ -> Error "cannot synthesize a ViewQL program"
  | Invalid_argument m -> Error m

(** The full wire round trip: JSON request in, JSON response out. *)
let handle s json = encode_response (dispatch s (decode_request json))
