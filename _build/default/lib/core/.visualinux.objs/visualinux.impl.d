lib/core/visualinux.ml: Buffer Ctype Kcontext Khelpers Kstate Ktask Ktypes Kvfs List Objectives Panel Printf Scripts Target Unix Vchat Vgraph Viewcl
