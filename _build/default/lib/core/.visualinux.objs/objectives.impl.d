lib/core/objectives.ml:
