lib/core/protocol.ml: Json List Panel Vchat Vgraph Viewcl Viewql Visualinux
