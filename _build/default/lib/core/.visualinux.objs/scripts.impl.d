lib/core/scripts.ml: List Viewcl
