(** ViewCL lexer. [${...}] escapes are captured raw (brace-balanced) and
    handed to {!Cexpr} later; [@name] references and [:view] names are
    single tokens; [//] comments run to end of line. *)

type token =
  | Id of string
  | View_name of string  (** [:default] *)
  | Ref of string  (** [@this], [@node] *)
  | Cexpr of string  (** raw contents of [${...}] *)
  | Int of int
  | Str of string
  | Punct of string
  | Eof

let pp_token = function
  | Id s -> Printf.sprintf "identifier %S" s
  | View_name s -> Printf.sprintf "view :%s" s
  | Ref s -> Printf.sprintf "@%s" s
  | Cexpr s -> Printf.sprintf "${%s}" s
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Punct p -> Printf.sprintf "%S" p
  | Eof -> "end of input"

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_id_char c = is_id_start c || is_digit c

(** Tokenize; raises {!Ast.Error} with a line number on bad input. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '$' && peek 1 = Some '{' then begin
      (* Capture raw C expression, balancing braces. *)
      let j = ref (!i + 2) in
      let depth = ref 1 in
      let buf = Buffer.create 32 in
      while !j < n && !depth > 0 do
        (match src.[!j] with
        | '{' -> incr depth; Buffer.add_char buf '{'
        | '}' -> decr depth; if !depth > 0 then Buffer.add_char buf '}'
        | '\n' -> incr line; Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        incr j
      done;
      if !depth > 0 then Ast.fail "line %d: unterminated ${...}" !line;
      push (Cexpr (Buffer.contents buf));
      i := !j
    end
    else if c = '@' then begin
      let j = ref (!i + 1) in
      while !j < n && is_id_char src.[!j] do incr j done;
      if !j = !i + 1 then Ast.fail "line %d: bare '@'" !line;
      push (Ref (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j
    end
    else if c = ':' && (match peek 1 with Some c -> is_id_start c | None -> false)
            (* ':' directly followed by an identifier is a view name only in
               positions where the parser expects one; we lex it as a view
               token and let the parser reinterpret when needed. *)
    then begin
      let j = ref (!i + 1) in
      while !j < n && is_id_char src.[!j] do incr j done;
      push (View_name (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then j := !i + 2;
      while
        !j < n
        && (is_digit src.[!j]
           || (hex && ((src.[!j] >= 'a' && src.[!j] <= 'f') || (src.[!j] >= 'A' && src.[!j] <= 'F'))))
      do incr j done;
      (match int_of_string_opt (String.sub src !i (!j - !i)) with
      | Some v -> push (Int v)
      | None -> Ast.fail "line %d: bad integer" !line);
      i := !j
    end
    else if is_id_start c then begin
      let j = ref (!i + 1) in
      while !j < n && is_id_char src.[!j] do incr j done;
      push (Id (String.sub src !i (!j - !i)));
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 8 in
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then Ast.fail "line %d: unterminated string" !line;
      push (Str (Buffer.contents buf));
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" | "=>" ->
          push (Punct two);
          i := !i + 2
      | _ ->
          (match c with
          | '{' | '}' | '[' | ']' | '(' | ')' | '<' | '>' | ',' | ':' | '=' | '.' | '|' ->
              push (Punct (String.make 1 c))
          | c -> Ast.fail "line %d: unexpected character %C" !line c);
          incr i
    end
  done;
  push Eof;
  List.rev !toks
