(** Recursive-descent parser for ViewCL. *)

open Ast

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.Eof, 0) | t :: _ -> t
let tok st = fst (peek st)
let line st = snd (peek st)
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st p =
  match tok st with
  | Lexer.Punct q when q = p -> advance st
  | t -> fail "line %d: expected %S, got %s" (line st) p (Lexer.pp_token t)

let expect_id st =
  match tok st with
  | Lexer.Id s -> advance st; s
  | t -> fail "line %d: expected identifier, got %s" (line st) (Lexer.pp_token t)

let expect_kw st kw =
  match tok st with
  | Lexer.Id s when s = kw -> advance st
  | t -> fail "line %d: expected %S, got %s" (line st) kw (Lexer.pp_token t)

(* A dot-path: ident (. ident)* — also allows [n] to become path steps?
   Paths stay simple; indexing needs ${...}. *)
let parse_path st first =
  let buf = Buffer.create 16 in
  Buffer.add_string buf first;
  let rec go () =
    if tok st = Lexer.Punct "." then begin
      advance st;
      Buffer.add_char buf '.';
      Buffer.add_string buf (expect_id st);
      go ()
    end
  in
  go ();
  Buffer.contents buf

(* Decorator contents: everything between < and >, e.g. u64:x, enum:foo. *)
let parse_decorator st =
  (* at '<' *)
  advance st;
  let parts = ref [] in
  let rec go () =
    match tok st with
    | Lexer.Punct ">" -> advance st
    | Lexer.Id s ->
        advance st;
        parts := s :: !parts;
        go ()
    | Lexer.View_name s ->
        (* ':x' lexed as a view token inside <u64:x>. *)
        advance st;
        parts := s :: !parts;
        go ()
    | Lexer.Punct ":" -> advance st; go ()
    | Lexer.Int n -> advance st; parts := string_of_int n :: !parts; go ()
    | t -> fail "line %d: bad decorator token %s" (line st) (Lexer.pp_token t)
  in
  go ();
  List.rev !parts

let container_ctors = [ "List"; "HList"; "RBTree"; "Array"; "XArray"; "MapleEntries"; "Range" ]

let rec parse_expr st =
  let e = parse_primary st in
  parse_postfix st e

and parse_postfix st e =
  match tok st with
  | Lexer.Punct "." -> (
      advance st;
      let meth = expect_id st in
      match meth with
      | "forEach" ->
          expect st "|";
          let var = expect_id st in
          expect st "|";
          expect st "{";
          let body = parse_stmts st in
          expect st "}";
          parse_postfix st (For_each { src = e; var; body })
      | m -> fail "line %d: unknown method %S" (line st) m)
  | _ -> e

and parse_stmts st =
  let rec go acc =
    match tok st with
    | Lexer.Punct "}" -> List.rev acc
    | Lexer.Id "yield" ->
        advance st;
        let e = parse_expr st in
        go (Yield e :: acc)
    | Lexer.Id name when (match st.toks with _ :: (Lexer.Punct "=", _) :: _ -> true | _ -> false) ->
        advance st;
        advance st;
        let e = parse_expr st in
        go (Bind (name, e) :: acc)
    | t -> fail "line %d: expected binding or yield, got %s" (line st) (Lexer.pp_token t)
  in
  go []

and parse_primary st =
  match tok st with
  | Lexer.Cexpr s -> advance st; Cexpr s
  | Lexer.Ref name -> advance st; Ref name
  | Lexer.Int n -> advance st; Int_lit n
  | Lexer.Str s -> advance st; Str_lit s
  | Lexer.Id "NULL" -> advance st; Null_lit
  | Lexer.Id "switch" ->
      advance st;
      let scrutinee = parse_expr st in
      expect st "{";
      let cases = ref [] and otherwise = ref None in
      let rec go () =
        match tok st with
        | Lexer.Punct "}" -> advance st
        | Lexer.Id "case" ->
            advance st;
            let rec labels acc =
              let l = parse_expr st in
              match tok st with
              | Lexer.Punct "," -> advance st; labels (l :: acc)
              | Lexer.Punct ":" -> advance st; List.rev (l :: acc)
              | t -> fail "line %d: expected ',' or ':' after case label, got %s" (line st)
                       (Lexer.pp_token t)
            in
            let ls = labels [] in
            let body = parse_expr st in
            cases := (ls, body) :: !cases;
            go ()
        | Lexer.Id "otherwise" ->
            advance st;
            expect st ":";
            otherwise := Some (parse_expr st);
            go ()
        | t -> fail "line %d: expected case/otherwise, got %s" (line st) (Lexer.pp_token t)
      in
      go ();
      Switch { scrutinee; cases = List.rev !cases; otherwise = !otherwise }
  | Lexer.Id "Box" ->
      (* Anonymous box: Box [ items ] (where { bindings })? *)
      advance st;
      expect st "[";
      let items = parse_items st in
      expect st "]";
      let where = parse_where_opt st in
      Anon_box { items; where }
  | Lexer.Id name -> (
      advance st;
      match tok st with
      | Lexer.Punct "<" ->
          (* Construct with anchor: Task<task_struct.se.run_node>(@node) *)
          advance st;
          let first = expect_id st in
          let anchor = parse_path st first in
          expect st ">";
          expect st "(";
          let args = parse_args st in
          Apply { name; anchor = Some anchor; args }
      | Lexer.Punct "(" ->
          advance st;
          let args = parse_args st in
          Apply { name; anchor = None; args }
      | Lexer.Punct "." when (match st.toks with _ :: (Lexer.Id m, _) :: _ -> m <> "forEach" | _ -> false) ->
          advance st;
          let meth = expect_id st in
          expect st "(";
          let args = parse_args st in
          Method { recv = name; meth; args }
      | _ -> fail "line %d: expected '(' or '<' after %S" (line st) name)
  | t -> fail "line %d: unexpected %s in expression" (line st) (Lexer.pp_token t)

and parse_args st =
  (* after '(' *)
  if tok st = Lexer.Punct ")" then (advance st; [])
  else
    let rec go acc =
      let a =
        (* Bare identifiers as arguments name box definitions
           (Array.selectFrom(@x, VMArea)). *)
        match (tok st, st.toks) with
        | Lexer.Id name, _ :: (Lexer.Punct ("," | ")"), _) :: _ when name <> "NULL" ->
            advance st;
            Str_lit name
        | _ -> parse_expr st
      in
      match tok st with
      | Lexer.Punct "," -> advance st; go (a :: acc)
      | Lexer.Punct ")" -> advance st; List.rev (a :: acc)
      | t -> fail "line %d: expected ',' or ')', got %s" (line st) (Lexer.pp_token t)
    in
    go []

and parse_items st =
  let rec go acc =
    match tok st with
    | Lexer.Punct "]" -> List.rev acc
    | Lexer.Id "Text" ->
        advance st;
        let dec = if tok st = Lexer.Punct "<" then Some (parse_decorator st) else None in
        (* Either: Text a, b, c   or   Text label: <path|expr> *)
        let first = expect_id st in
        if tok st = Lexer.Punct ":" then begin
          advance st;
          let source =
            match tok st with
            | Lexer.Cexpr _ | Lexer.Ref _ | Lexer.Id "switch" -> Texpr (parse_expr st)
            | Lexer.Id p ->
                advance st;
                Path (parse_path st p)
            | t -> fail "line %d: expected path or expression, got %s" (line st) (Lexer.pp_token t)
          in
          go (I_text { dec; specs = [ { label = first; source } ] } :: acc)
        end
        else begin
          let specs = ref [ { label = first; source = Path (parse_path st first) } ] in
          (* first may itself continue as a path *)
          (match !specs with
          | [ { label; source = Path p } ] when p <> label ->
              specs := [ { label = p; source = Path p } ]
          | _ -> ());
          while tok st = Lexer.Punct "," do
            advance st;
            let p0 = expect_id st in
            let p = parse_path st p0 in
            specs := { label = p; source = Path p } :: !specs
          done;
          go (I_text { dec; specs = List.rev !specs } :: acc)
        end
    | Lexer.Id "Link" ->
        advance st;
        let label = expect_id st in
        let label = parse_path st label in
        expect st "->";
        let target = parse_expr st in
        go (I_link { label; target } :: acc)
    | Lexer.Id "Container" ->
        advance st;
        let label = expect_id st in
        expect st ":";
        let target = parse_expr st in
        go (I_container { label; target } :: acc)
    | t -> fail "line %d: expected item (Text/Link/Container), got %s" (line st) (Lexer.pp_token t)
  in
  go []

and parse_where_opt st =
  match tok st with
  | Lexer.Id "where" ->
      advance st;
      expect st "{";
      let rec go acc =
        match tok st with
        | Lexer.Punct "}" -> advance st; List.rev acc
        | Lexer.Id name ->
            advance st;
            expect st "=";
            let e = parse_expr st in
            go ((name, e) :: acc)
        | t -> fail "line %d: expected binding in where, got %s" (line st) (Lexer.pp_token t)
      in
      go []
  | _ -> []

(* define NAME as Box<ctype> ( [items] | { :views } ) (where {..})? *)
let parse_define st =
  expect_kw st "define";
  let bname = expect_id st in
  expect_kw st "as";
  expect_kw st "Box";
  expect st "<";
  let bctype = expect_id st in
  expect st ">";
  match tok st with
  | Lexer.Punct "[" ->
      advance st;
      let items = parse_items st in
      expect st "]";
      let bwhere = parse_where_opt st in
      Define
        { bname; bctype; bwhere;
          bviews = [ { vname = "default"; vparent = None; vitems = items; vwhere = [] } ] }
  | Lexer.Punct "{" ->
      advance st;
      let views = ref [] in
      let rec go () =
        match tok st with
        | Lexer.Punct "}" -> advance st
        | Lexer.View_name v1 -> (
            advance st;
            match tok st with
            | Lexer.Punct "=>" ->
                advance st;
                let v2 =
                  match tok st with
                  | Lexer.View_name v -> advance st; v
                  | t -> fail "line %d: expected view name after '=>', got %s" (line st)
                           (Lexer.pp_token t)
                in
                expect st "[";
                let items = parse_items st in
                expect st "]";
                let vwhere = parse_where_opt st in
                views := { vname = v2; vparent = Some v1; vitems = items; vwhere } :: !views;
                go ()
            | Lexer.Punct "[" ->
                advance st;
                let items = parse_items st in
                expect st "]";
                let vwhere = parse_where_opt st in
                views := { vname = v1; vparent = None; vitems = items; vwhere } :: !views;
                go ()
            | t -> fail "line %d: expected '[' or '=>', got %s" (line st) (Lexer.pp_token t))
        | t -> fail "line %d: expected view declaration, got %s" (line st) (Lexer.pp_token t)
      in
      go ();
      let bwhere = parse_where_opt st in
      Define { bname; bctype; bviews = List.rev !views; bwhere }
  | t -> fail "line %d: expected '[' or '{' in define, got %s" (line st) (Lexer.pp_token t)

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    match tok st with
    | Lexer.Eof -> List.rev acc
    | Lexer.Id "define" -> go (parse_define st :: acc)
    | Lexer.Id "plot" ->
        advance st;
        let e = parse_expr st in
        go (Plot e :: acc)
    | Lexer.Id name when (match st.toks with _ :: (Lexer.Punct "=", _) :: _ -> true | _ -> false) ->
        advance st;
        advance st;
        let e = parse_expr st in
        go (Top_bind (name, e) :: acc)
    | t -> fail "line %d: expected define/binding/plot, got %s" (line st) (Lexer.pp_token t)
  in
  go []
