lib/viewcl/lexer.ml: Ast Buffer List Printf String
