lib/viewcl/viewcl.ml: Ast Interp Lexer List Parser String Vgraph
