lib/viewcl/ast.ml: Printf
