lib/viewcl/viewcl.mli: Ast Interp Lexer Parser Target Vgraph
