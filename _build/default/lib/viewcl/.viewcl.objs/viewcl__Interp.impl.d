lib/viewcl/interp.ml: Ast Cexpr Char Ctype Hashtbl List Printf String Target Vgraph
