lib/viewcl/parser.ml: Ast Buffer Lexer List
