(** Abstract syntax of ViewCL (§2.2, Fig. 3 of the paper). *)

type decorator = string list
(** e.g. [["u64"; "x"]], [["enum"; "maple_type"]], [["flag"; "vm_flags"]] *)

type expr =
  | Cexpr of string  (** [${...}] — a C expression over the target *)
  | Ref of string  (** [@name]; [@this] is ["this"] *)
  | Apply of { name : string; anchor : string option; args : expr list }
      (** box construction or container constructor:
          [Task<task_struct.se.run_node>(@node)], [RBTree(@root)] *)
  | Method of { recv : string; meth : string; args : expr list }
      (** [Array.selectFrom(@mm_mt, VMArea)] *)
  | For_each of { src : expr; var : string; body : stmt list }
      (** [expr.forEach |x| { ... yield ... }] *)
  | Switch of { scrutinee : expr; cases : (expr list * expr) list; otherwise : expr option }
  | Anon_box of { items : item list; where : binding list }
      (** [Box [ ... ] where { ... }] *)
  | Null_lit
  | Int_lit of int
  | Str_lit of string

and stmt = Bind of binding | Yield of expr
and binding = string * expr

and item =
  | I_text of { dec : decorator option; specs : text_spec list }
  | I_link of { label : string; target : expr }
  | I_container of { label : string; target : expr }

and text_spec = { label : string; source : texpr }

and texpr =
  | Path of string  (** a dot-path from [@this]: [se.vruntime], [parent.pid] *)
  | Texpr of expr

type viewdecl = {
  vname : string;
  vparent : string option;  (** [:default => :sched] — parent view name *)
  vitems : item list;
  vwhere : binding list;
}

type boxdef = { bname : string; bctype : string; bviews : viewdecl list; bwhere : binding list }

type toplevel = Define of boxdef | Top_bind of binding | Plot of expr

type program = toplevel list

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
