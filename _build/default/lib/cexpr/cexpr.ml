type unop = Neg | Not | Bnot | Deref | Addr

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor

type expr =
  | Int_lit of int
  | Str_lit of string
  | Char_lit of char
  | Ident of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr
  | Cast of Ctype.t * expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Call of string * expr list
  | Member of expr * string
  | Arrow of expr * string
  | Index of expr * expr

exception Parse_error of string
exception Eval_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let eval_fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | TInt of int
  | TStr of string
  | TChar of char
  | TId of string
  | TPunct of string
  | TEof

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '@'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then j := !i + 2;
      while
        !j < n
        && (is_digit src.[!j]
           || (hex && ((src.[!j] >= 'a' && src.[!j] <= 'f') || (src.[!j] >= 'A' && src.[!j] <= 'F')))
           || src.[!j] = 'u' || src.[!j] = 'U' || src.[!j] = 'l' || src.[!j] = 'L')
      do
        incr j
      done;
      let lit = String.sub src !i (!j - !i) in
      let lit =
        let rec strip s =
          let l = String.length s in
          if l > 0 && (let c = s.[l - 1] in c = 'u' || c = 'U' || c = 'l' || c = 'L') then
            strip (String.sub s 0 (l - 1))
          else s
        in
        strip lit
      in
      (match int_of_string_opt lit with
      | Some v -> push (TInt v)
      | None -> parse_fail "bad integer literal %S" lit);
      i := !j
    end
    else if is_id_start c then begin
      let j = ref (!i + 1) in
      while !j < n && is_id_char src.[!j] do incr j done;
      push (TId (String.sub src !i (!j - !i)));
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 8 in
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\\' && !j + 1 < n then begin
          (match src.[!j + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '0' -> Buffer.add_char buf '\000'
          | c -> Buffer.add_char buf c);
          j := !j + 2
        end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      if !j >= n then parse_fail "unterminated string literal";
      push (TStr (Buffer.contents buf));
      i := !j + 1
    end
    else if c = '\'' then begin
      if !i + 2 < n && src.[!i + 1] = '\\' && src.[!i + 3] = '\'' then begin
        let ch =
          match src.[!i + 2] with
          | 'n' -> '\n' | 't' -> '\t' | '0' -> '\000' | c -> c
        in
        push (TChar ch);
        i := !i + 4
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        push (TChar src.[!i + 1]);
        i := !i + 3
      end
      else parse_fail "bad char literal"
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" | "<<" | ">>" | "<=" | ">=" | "==" | "!=" | "&&" | "||" ->
          push (TPunct two);
          i := !i + 2
      | _ ->
          (match c with
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '!' | '<' | '>' | '(' | ')'
          | '[' | ']' | '.' | ',' | '?' | ':' ->
              push (TPunct (String.make 1 c))
          | c -> parse_fail "unexpected character %C" c);
          incr i
    end
  done;
  push TEof;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent) *)

type pstate = { reg : Ctype.registry; mutable toks : token list }

let peek_tok ps = match ps.toks with [] -> TEof | t :: _ -> t
let peek2_tok ps = match ps.toks with _ :: t :: _ -> t | _ -> TEof
let advance ps = match ps.toks with [] -> () | _ :: r -> ps.toks <- r

let expect ps p =
  match peek_tok ps with
  | TPunct q when q = p -> advance ps
  | t ->
      parse_fail "expected %S, got %s" p
        (match t with
        | TPunct q -> Printf.sprintf "%S" q
        | TId s -> Printf.sprintf "identifier %S" s
        | TInt v -> Printf.sprintf "int %d" v
        | TStr s -> Printf.sprintf "string %S" s
        | TChar c -> Printf.sprintf "char %C" c
        | TEof -> "end of input")

let base_type_names =
  [ ("void", Ctype.Void); ("bool", Ctype.Bool); ("char", Ctype.char); ("short", Ctype.short);
    ("int", Ctype.int); ("long", Ctype.long); ("u8", Ctype.u8); ("u16", Ctype.u16);
    ("u32", Ctype.u32); ("u64", Ctype.u64); ("s8", Ctype.i8); ("s16", Ctype.i16);
    ("s32", Ctype.i32); ("s64", Ctype.i64); ("size_t", Ctype.size_t) ]

(* Try to parse a type name at the current position: [struct foo], plain
   base names, [unsigned int], registered composite names — followed by any
   number of [*]. Returns None (without consuming) if this is not a type. *)
let try_parse_type ps =
  let starts_type = function
    | TId ("struct" | "union" | "enum" | "unsigned" | "signed") -> true
    | TId name ->
        List.mem_assoc name base_type_names || Ctype.is_defined ps.reg name
    | _ -> false
  in
  if not (starts_type (peek_tok ps)) then None
  else begin
    let base =
      match peek_tok ps with
      | TId ("struct" | "union" | "enum") -> (
          advance ps;
          match peek_tok ps with
          | TId name ->
              advance ps;
              Ctype.Named name
          | _ -> parse_fail "expected tag name after struct/union/enum")
      | TId "unsigned" -> (
          advance ps;
          match peek_tok ps with
          | TId "char" -> advance ps; Ctype.uchar
          | TId "short" -> advance ps; Ctype.ushort
          | TId "int" -> advance ps; Ctype.uint
          | TId "long" -> advance ps; Ctype.ulong
          | _ -> Ctype.uint)
      | TId "signed" -> (
          advance ps;
          match peek_tok ps with
          | TId "char" -> advance ps; Ctype.char
          | TId "int" -> advance ps; Ctype.int
          | TId "long" -> advance ps; Ctype.long
          | _ -> Ctype.int)
      | TId name when List.mem_assoc name base_type_names ->
          advance ps;
          let t = List.assoc name base_type_names in
          (* "long long" *)
          if name = "long" && peek_tok ps = TId "long" then (advance ps; Ctype.llong) else t
      | TId name ->
          advance ps;
          Ctype.Named name
      | _ -> assert false
    in
    let rec stars t =
      match peek_tok ps with
      | TPunct "*" ->
          advance ps;
          stars (Ctype.Ptr t)
      | _ -> t
    in
    Some (stars base)
  end

let rec parse_expr ps = parse_ternary ps

and parse_ternary ps =
  let c = parse_binary ps 0 in
  match peek_tok ps with
  | TPunct "?" ->
      advance ps;
      let t = parse_expr ps in
      expect ps ":";
      let e = parse_ternary ps in
      Ternary (c, t, e)
  | _ -> c

and binop_table =
  (* (token, op, precedence); higher binds tighter *)
  [ ("||", Lor, 1); ("&&", Land, 2); ("|", Bor, 3); ("^", Bxor, 4); ("&", Band, 5);
    ("==", Eq, 6); ("!=", Ne, 6); ("<", Lt, 7); (">", Gt, 7); ("<=", Le, 7); (">=", Ge, 7);
    ("<<", Shl, 8); (">>", Shr, 8); ("+", Add, 9); ("-", Sub, 9);
    ("*", Mul, 10); ("/", Div, 10); ("%", Mod, 10) ]

and parse_binary ps min_prec =
  let lhs = parse_unary ps in
  let rec loop lhs =
    match peek_tok ps with
    | TPunct p -> (
        match List.find_opt (fun (q, _, prec) -> q = p && prec >= min_prec) binop_table with
        | Some (_, op, prec) ->
            advance ps;
            let rhs = parse_binary ps (prec + 1) in
            loop (Binary (op, lhs, rhs))
        | None -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary ps =
  match peek_tok ps with
  | TPunct "-" -> advance ps; Unary (Neg, parse_unary ps)
  | TPunct "+" -> advance ps; parse_unary ps
  | TPunct "!" -> advance ps; Unary (Not, parse_unary ps)
  | TPunct "~" -> advance ps; Unary (Bnot, parse_unary ps)
  | TPunct "*" -> advance ps; Unary (Deref, parse_unary ps)
  | TPunct "&" -> advance ps; Unary (Addr, parse_unary ps)
  | TId "sizeof" -> (
      advance ps;
      expect ps "(";
      match try_parse_type ps with
      | Some t ->
          expect ps ")";
          Sizeof_type t
      | None ->
          let e = parse_expr ps in
          expect ps ")";
          Sizeof_expr e)
  | TPunct "(" -> (
      (* Either a cast or a parenthesized expression. *)
      let saved = ps.toks in
      advance ps;
      match try_parse_type ps with
      | Some t when peek_tok ps = TPunct ")" ->
          advance ps;
          Cast (t, parse_unary ps)
      | _ ->
          ps.toks <- saved;
          parse_postfix ps)
  | _ -> parse_postfix ps

and parse_postfix ps =
  let e = parse_primary ps in
  let rec loop e =
    match peek_tok ps with
    | TPunct "." -> (
        advance ps;
        match peek_tok ps with
        | TId f ->
            advance ps;
            loop (Member (e, f))
        | _ -> parse_fail "expected field name after '.'")
    | TPunct "->" -> (
        advance ps;
        match peek_tok ps with
        | TId f ->
            advance ps;
            loop (Arrow (e, f))
        | _ -> parse_fail "expected field name after '->'")
    | TPunct "[" ->
        advance ps;
        let idx = parse_expr ps in
        expect ps "]";
        loop (Index (e, idx))
    | _ -> e
  in
  loop e

and parse_primary ps =
  match peek_tok ps with
  | TInt v -> advance ps; Int_lit v
  | TStr s -> advance ps; Str_lit s
  | TChar c -> advance ps; Char_lit c
  | TId name when peek2_tok ps = TPunct "(" ->
      advance ps;
      advance ps;
      let rec args acc =
        if peek_tok ps = TPunct ")" then (advance ps; List.rev acc)
        else
          let a = parse_expr ps in
          match peek_tok ps with
          | TPunct "," -> advance ps; args (a :: acc)
          | TPunct ")" -> advance ps; List.rev (a :: acc)
          | _ -> parse_fail "expected ',' or ')' in call arguments"
      in
      Call (name, args [])
  | TId name -> advance ps; Ident name
  | TPunct "(" ->
      advance ps;
      let e = parse_expr ps in
      expect ps ")";
      e
  | TEof -> parse_fail "unexpected end of expression"
  | TPunct p -> parse_fail "unexpected %S" p

let parse reg src =
  let ps = { reg; toks = tokenize src } in
  let e = parse_expr ps in
  (match peek_tok ps with
  | TEof -> ()
  | _ -> parse_fail "trailing tokens in %S" src);
  e

(* ------------------------------------------------------------------ *)
(* Evaluator *)

type env = string -> Target.value option

let empty_env _ = None

let pointee_size tgt t =
  match t with
  | Ctype.Ptr Ctype.Void | Ctype.Ptr (Ctype.Func _) -> 1
  | Ctype.Ptr inner -> Ctype.sizeof (Target.types tgt) inner
  | _ -> 1

let rec eval ?(env = empty_env) tgt e =
  let ev e = eval ~env tgt e in
  let as_i e = Target.as_int tgt (ev e) in
  match e with
  | Int_lit v -> Target.int_value v
  | Str_lit s -> Target.str_value s
  | Char_lit c -> { Target.typ = Ctype.char; loc = Target.Rval (Char.code c) }
  | Ident name -> (
      match env name with
      | Some v -> v
      | None -> (
          match Target.lookup_symbol tgt name with
          | Some v -> v
          | None -> (
              match name with
              | "true" -> Target.bool_value true
              | "false" -> Target.bool_value false
              | _ -> eval_fail "unknown identifier %S" name)))
  | Unary (Neg, e) -> Target.int_value (-as_i e)
  | Unary (Not, e) -> Target.bool_value (not (Target.truthy tgt (ev e)))
  | Unary (Bnot, e) -> Target.int_value (lnot (as_i e))
  | Unary (Deref, e) -> Target.deref tgt (ev e)
  | Unary (Addr, e) ->
      let v = ev e in
      { Target.typ = Ctype.Ptr v.Target.typ; loc = Target.Rval (Target.addr_of v) }
  | Binary (op, a, b) -> eval_binary ~env tgt op a b
  | Ternary (c, t, e) -> if Target.truthy tgt (ev c) then ev t else ev e
  | Cast (t, e) -> Target.cast tgt t (ev e)
  | Sizeof_type t -> Target.int_value (Ctype.sizeof (Target.types tgt) t)
  | Sizeof_expr e -> Target.int_value (Ctype.sizeof (Target.types tgt) (ev e).Target.typ)
  | Call (name, args) -> (
      match Target.lookup_helper tgt name with
      | Some h -> h tgt (List.map ev args)
      | None -> eval_fail "unknown function %S" name)
  | Member (e, f) -> Target.member tgt (ev e) f
  | Arrow (e, f) -> Target.member tgt (ev e) f
  | Index (e, i) -> Target.index tgt (ev e) (as_i i)

and eval_binary ~env tgt op a b =
  let ev e = eval ~env tgt e in
  match op with
  | Land -> Target.bool_value (Target.truthy tgt (ev a) && Target.truthy tgt (ev b))
  | Lor -> Target.bool_value (Target.truthy tgt (ev a) || Target.truthy tgt (ev b))
  | _ -> (
      let va = ev a and vb = ev b in
      let ia () = Target.as_int tgt va and ib () = Target.as_int tgt vb in
      let bool_ b = Target.bool_value b in
      match op with
      | Eq -> (
          (* String equality is meaningful for helper results. *)
          match (va.Target.loc, vb.Target.loc) with
          | Target.Rstr x, Target.Rstr y -> bool_ (x = y)
          | _ -> bool_ (ia () = ib ()))
      | Ne -> (
          match (va.Target.loc, vb.Target.loc) with
          | Target.Rstr x, Target.Rstr y -> bool_ (x <> y)
          | _ -> bool_ (ia () <> ib ()))
      | Lt -> bool_ (ia () < ib ())
      | Gt -> bool_ (ia () > ib ())
      | Le -> bool_ (ia () <= ib ())
      | Ge -> bool_ (ia () >= ib ())
      | Add ->
          if Ctype.is_pointer va.Target.typ then
            { va with loc = Target.Rval (ia () + (ib () * pointee_size tgt va.Target.typ)) }
          else if Ctype.is_pointer vb.Target.typ then
            { vb with loc = Target.Rval (ib () + (ia () * pointee_size tgt vb.Target.typ)) }
          else Target.int_value (ia () + ib ())
      | Sub ->
          if Ctype.is_pointer va.Target.typ && Ctype.is_pointer vb.Target.typ then
            Target.int_value ((ia () - ib ()) / pointee_size tgt va.Target.typ)
          else if Ctype.is_pointer va.Target.typ then
            { va with loc = Target.Rval (ia () - (ib () * pointee_size tgt va.Target.typ)) }
          else Target.int_value (ia () - ib ())
      | Mul -> Target.int_value (ia () * ib ())
      | Div ->
          let d = ib () in
          if d = 0 then eval_fail "division by zero" else Target.int_value (ia () / d)
      | Mod ->
          let d = ib () in
          if d = 0 then eval_fail "modulo by zero" else Target.int_value (ia () mod d)
      | Shl -> Target.int_value (ia () lsl ib ())
      | Shr -> Target.int_value (ia () lsr ib ())
      | Band -> Target.int_value (ia () land ib ())
      | Bor -> Target.int_value (ia () lor ib ())
      | Bxor -> Target.int_value (ia () lxor ib ())
      | Land | Lor -> assert false)

(* Public entry point: surface target-layer failures (bad member, deref of
   non-pointer, ...) uniformly as Eval_error. *)
let eval ?env tgt e =
  try eval ?env tgt e with Invalid_argument m -> raise (Eval_error m)

let eval_string ?env tgt src = eval ?env tgt (parse (Target.types tgt) src)

(* ------------------------------------------------------------------ *)
(* Printer *)

let unop_str = function Neg -> "-" | Not -> "!" | Bnot -> "~" | Deref -> "*" | Addr -> "&"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let rec pp ppf = function
  | Int_lit v -> Format.pp_print_int ppf v
  | Str_lit s -> Format.fprintf ppf "%S" s
  | Char_lit c -> Format.fprintf ppf "%C" c
  | Ident s -> Format.pp_print_string ppf s
  | Unary (op, e) -> Format.fprintf ppf "%s(%a)" (unop_str op) pp e
  | Binary (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Ternary (c, t, e) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp t pp e
  | Cast (t, e) -> Format.fprintf ppf "((%s)%a)" (Ctype.to_string t) pp e
  | Sizeof_type t -> Format.fprintf ppf "sizeof(%s)" (Ctype.to_string t)
  | Sizeof_expr e -> Format.fprintf ppf "sizeof(%a)" pp e
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
        args
  | Member (e, f) -> Format.fprintf ppf "%a.%s" pp e f
  | Arrow (e, f) -> Format.fprintf ppf "%a->%s" pp e f
  | Index (e, i) -> Format.fprintf ppf "%a[%a]" pp e pp i

let to_string e = Format.asprintf "%a" pp e
