(** C expressions over a {!Target}.

    ViewCL's [${...}] escapes embed arbitrary C expressions that GDB would
    evaluate against the inferior; this module provides the equivalent:
    a lexer, parser, and evaluator for a rich C expression subset —
    arithmetic, bit and logical operators, comparisons, shifts, ternary,
    casts, [sizeof], address-of / dereference, member access ([.]/[->]),
    array subscripts, and calls to registered helper functions.

    Identifiers of the form [@name] are ViewCL-scope references; they are
    resolved through the caller-supplied environment before symbols. *)

(** Abstract syntax. *)
type unop = Neg | Not | Bnot | Deref | Addr

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor

type expr =
  | Int_lit of int
  | Str_lit of string
  | Char_lit of char
  | Ident of string  (** includes [@name] ViewCL references *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr
  | Cast of Ctype.t * expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Call of string * expr list
  | Member of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Index of expr * expr

exception Parse_error of string
exception Eval_error of string

val parse : Ctype.registry -> string -> expr
(** Parse an expression. The registry is consulted to recognize type names
    in casts and [sizeof]. @raise Parse_error on malformed input. *)

type env = string -> Target.value option
(** Resolution for [@name] references and local bindings; consulted before
    target symbols. *)

val empty_env : env

val eval : ?env:env -> Target.t -> expr -> Target.value
(** Evaluate. Pointer arithmetic is scaled by pointee size, comparisons
    yield 0/1, [&&]/[||] short-circuit. @raise Eval_error on failure. *)

val eval_string : ?env:env -> Target.t -> string -> Target.value
(** [parse] + [eval]. *)

val pp : Format.formatter -> expr -> unit
(** Print an expression as (parenthesized) C. *)

val to_string : expr -> string
