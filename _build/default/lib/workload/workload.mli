(** The paper's evaluation workload (§5.4): five processes, each with two
    extra threads, repeatedly performing IPC and mapping/unmapping files
    and anonymous pages — plus population of every other subsystem that
    Table 2 visualizes (IRQs, timers, workqueues, swap, devices, sockets,
    pipes, signals), so all figures have realistic content.

    Deterministic: a seeded xorshift PRNG drives all choices, so plots,
    tests and benchmarks are reproducible. *)

type t

val create : ?seed:int -> Kstate.t -> t

val populate_system : t -> unit
(** Kernel threads, IRQs, timers, workqueues, swap areas, devices, and
    the shared IPC objects. *)

val spawn_processes : t -> Kmem.addr
(** systemd (pid 1) plus the 5 x (leader + 2 threads) worker population;
    returns the systemd task. *)

val step : t -> unit
(** One iteration of per-process activity: file opens + mmaps, anonymous
    mapping churn, semaphore and message-queue traffic. *)

val populate_userspace : t -> unit
(** Pipes, sockets and signal traffic on the first workers (used by the
    pipe/socket/signal figures). *)

val simulate_time : t -> unit
(** Scheduler ticks (vruntime divergence + preemptions), timer-wheel
    processing, heap page faults, and one worker thread exiting as a
    zombie — so plots show varied, realistic task states. *)

val run : ?iters:int -> t -> unit
(** The full standard workload: {!populate_system}, {!spawn_processes},
    [iters] (default 3) {!step}s, {!populate_userspace},
    {!simulate_time}. *)

val leaders : t -> Kmem.addr list
(** The five worker group leaders, in spawn order. *)

val rand : t -> int -> int
(** The workload's deterministic PRNG (exposed for tests). *)
