(** Interactive HTML rendering — the stand-in for the paper's TypeScript
    browser front-end. *)

val esc : string -> string
(** HTML-escape text content. *)

val html : Vgraph.t -> string
(** A single self-contained HTML page: one card per visible box arranged
    in BFS-depth columns, inline collapse toggles, anchor links between
    boxes. No external assets. *)
