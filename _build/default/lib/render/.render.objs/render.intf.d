lib/render/render.mli: Vgraph
