lib/render/render.ml: Buffer Hashtbl List Option Printf Queue String Vgraph
