lib/render/render_html.ml: Buffer Hashtbl List Option Printf Queue String Vgraph
