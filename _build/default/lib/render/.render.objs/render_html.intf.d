lib/render/render_html.mli: Vgraph
