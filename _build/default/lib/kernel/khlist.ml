(** Kernel hash-list ([struct hlist_head] / [hlist_node]) on raw memory,
    used by the PID hash table and timer wheel buckets. *)

open Kcontext

type addr = Kmem.addr

let first ctx h = r64 ctx h "hlist_head" "first"
let node_next ctx n = r64 ctx n "hlist_node" "next"

let init_head ctx h = w64 ctx h "hlist_head" "first" 0

let add_head ctx h node =
  let f = first ctx h in
  w64 ctx node "hlist_node" "next" f;
  if f <> 0 then w64 ctx f "hlist_node" "pprev" (node + off ctx "hlist_node" "next");
  w64 ctx h "hlist_head" "first" node;
  w64 ctx node "hlist_node" "pprev" (h + off ctx "hlist_head" "first")

let del ctx node =
  let n = node_next ctx node and pprev = r64 ctx node "hlist_node" "pprev" in
  if pprev <> 0 then Kmem.write_u64 ctx.mem pprev n;
  if n <> 0 then w64 ctx n "hlist_node" "pprev" pprev;
  w64 ctx node "hlist_node" "next" 0;
  w64 ctx node "hlist_node" "pprev" 0

let nodes ctx h =
  let rec go n acc = if n = 0 then List.rev acc else go (node_next ctx n) (n :: acc) in
  go (first ctx h) []

let containers ctx h comp field =
  let o = off ctx comp field in
  List.map (fun n -> n - o) (nodes ctx h)

let length ctx h = List.length (nodes ctx h)
