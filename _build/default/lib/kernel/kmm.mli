(** Process address spaces (ULK Fig 9-2): [mm_struct] with its maple tree
    of [vm_area_struct]s — the structure at the center of the paper's
    motivating example and both CVE case studies. *)

type addr = Kmem.addr

type t
(** Holds the write-side shadows of all maple trees, keyed by tree
    address. *)

val create : Kcontext.t -> t

val mm_alloc : t -> addr
(** A fresh mm_struct with an empty maple tree and default bases. *)

val tree_of : t -> addr -> Kmaple.tree
(** The shadow maple tree of an mm. @raise Invalid_argument if unknown. *)

val vma_alloc :
  t -> addr -> start:int -> end_:int -> flags:int -> file:addr -> pgoff:int -> addr
(** Allocate (but not insert) a VMA covering [start, end_). *)

val insert_vma : ?free_node:(addr -> unit) -> t -> addr -> addr -> unit
(** Store a VMA into the address space over its page range. [free_node]
    receives retired maple nodes — hook {!Kstate.ma_free_rcu} here to
    reproduce StackRot. *)

val mmap :
  ?free_node:(addr -> unit) ->
  t -> addr -> start:int -> len:int -> flags:int -> file:addr -> pgoff:int -> addr
(** Allocate + insert; returns the VMA. *)

val munmap : ?free_node:(addr -> unit) -> t -> addr -> addr -> unit
(** Remove a VMA's whole range and free the VMA object. *)

val vmas : t -> addr -> addr list
(** VMAs in address order (write-side shadow). *)

val read_vmas : t -> addr -> addr list
(** VMAs read back from the real maple-tree nodes (debugger view). *)

val find_vma : t -> addr -> int -> addr
(** mas_walk: the VMA containing a virtual address, or 0. *)

val is_writable : Kcontext.t -> addr -> bool

(** {1 Faults and the reverse map} *)

val page_mapping_anon : int
(** The kernel's PAGE_MAPPING_ANON low bit of [page->mapping]. *)

val handle_anon_fault : t -> Kbuddy.t -> addr -> va:int -> addr
(** Anonymous page fault at [va]: allocates a frame, tags
    [page->mapping] with the VMA's anon_vma | PAGE_MAPPING_ANON.
    Returns 0 (segfault) when no VMA covers [va]. *)

val rmap_walk : t -> addr -> addr list
(** Reverse map: the VMAs mapping an anonymous page (ULK Fig 17-1). *)

(** {1 mmap_lock (for lock visualization)} *)

val mmap_read_lock : Kcontext.t -> addr -> cpu:int -> unit
val mmap_read_unlock : Kcontext.t -> addr -> unit
