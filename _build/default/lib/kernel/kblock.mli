(** Block devices (ULK Fig 14-3): [gendisk]s and their [block_device]
    descriptors. *)

type addr = Kmem.addr

val mkdev : int -> int -> int
(** Pack (major, minor) into a dev_t. *)

val add_disk : Kcontext.t -> Kvfs.t -> name:string -> major:int -> minor:int -> addr * addr
(** A disk with a whole-disk block_device (and its bdev inode); returns
    (gendisk, block_device). *)
