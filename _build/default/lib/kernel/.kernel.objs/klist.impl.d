lib/kernel/klist.ml: Kcontext Kmem List
