lib/kernel/kfuncs.ml: Hashtbl Kmem Option Printf
