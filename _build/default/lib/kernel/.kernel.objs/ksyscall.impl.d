lib/kernel/ksyscall.ml: Hashtbl Kanon Kcontext Klist Kmem Kmm Knet Kpagecache Kpipe Ksched Ksignal Kstate Ktask Ktypes Kvfs List Printf
