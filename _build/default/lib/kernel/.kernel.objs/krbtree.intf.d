lib/kernel/krbtree.mli: Kcontext Kmem
