lib/kernel/kpagecache.ml: Kbuddy Kcontext Kmem Ktypes Kxarray List
