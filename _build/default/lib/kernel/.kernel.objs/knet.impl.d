lib/kernel/knet.ml: Kcontext Kfuncs Kmem Kvfs List
