lib/kernel/krcu.mli: Kcontext Kfuncs Kmem
