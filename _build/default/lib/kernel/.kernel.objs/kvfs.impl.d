lib/kernel/kvfs.ml: Kcontext Klist Kmem Ktypes Kxarray List String
