lib/kernel/kirq.mli: Kcontext Kfuncs Kmem
