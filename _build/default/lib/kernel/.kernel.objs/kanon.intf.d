lib/kernel/kanon.mli: Kcontext Kmem
