lib/kernel/khlist.ml: Kcontext Kmem List
