lib/kernel/kxarray.mli: Kcontext Kmem
