lib/kernel/kworkqueue.ml: Array Kcontext Kfuncs Klist Kmem List
