lib/kernel/klist.mli: Kcontext Kmem
