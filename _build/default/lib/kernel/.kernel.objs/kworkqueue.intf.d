lib/kernel/kworkqueue.mli: Kcontext Kfuncs Kmem
