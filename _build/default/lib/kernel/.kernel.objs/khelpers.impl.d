lib/kernel/khelpers.ml: Array Ctype Kbuddy Kcontext Kfuncs Kipc Kirq Kmaple Kmem Kpid Krcu Ksignal Kslab Kstate Kswap Ktimer Ktypes Kvfs Kworkqueue Kxarray List Option Printf Target
