lib/kernel/kpid.ml: Kcontext Khlist Kmem Ktypes Kxarray List Option
