lib/kernel/kbuddy.mli: Hashtbl Kcontext Kmem
