lib/kernel/krcu.ml: Array Kcontext Kfuncs Kmem List
