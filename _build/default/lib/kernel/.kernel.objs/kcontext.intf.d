lib/kernel/kcontext.mli: Ctype Hashtbl Kmem
