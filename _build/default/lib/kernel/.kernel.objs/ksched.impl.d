lib/kernel/ksched.ml: Kcontext Kmem Krbtree List
