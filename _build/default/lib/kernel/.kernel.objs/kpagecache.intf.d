lib/kernel/kpagecache.mli: Kbuddy Kcontext Kmem
