lib/kernel/ksignal.ml: Kcontext Kfuncs Klist Kmem
