lib/kernel/ktimer.mli: Kcontext Kfuncs Kmem
