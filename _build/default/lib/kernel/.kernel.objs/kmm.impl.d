lib/kernel/kmm.ml: Hashtbl Kanon Kbuddy Kcontext Klist Kmaple Kmem Ktypes List
