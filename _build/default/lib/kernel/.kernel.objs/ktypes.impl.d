lib/kernel/ktypes.ml: Ctype
