lib/kernel/kstate.ml: Hashtbl Kblock Kbuddy Kcontext Kfuncs Kipc Kirq Kmem Kmm Kobj Kpid Krcu Ksched Ksignal Kslab Kswap Ktask Ktimer Ktypes Kvfs Kworkqueue List Printf
