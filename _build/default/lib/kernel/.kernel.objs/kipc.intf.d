lib/kernel/kipc.mli: Kcontext Kmem
