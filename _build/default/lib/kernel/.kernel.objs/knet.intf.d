lib/kernel/knet.mli: Kcontext Kfuncs Kmem Kvfs
