lib/kernel/kvfs.mli: Kcontext Kmem
