lib/kernel/kobj.mli: Kcontext Kfuncs Kmem
