lib/kernel/kxarray.ml: Kcontext Kmem Ktypes List
