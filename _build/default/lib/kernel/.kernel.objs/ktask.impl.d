lib/kernel/ktask.ml: Kcontext Klist Kmem Ktypes List
