lib/kernel/ksched.mli: Kcontext Kmem
