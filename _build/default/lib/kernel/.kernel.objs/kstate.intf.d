lib/kernel/kstate.mli: Hashtbl Kbuddy Kcontext Kfuncs Kipc Kirq Kmem Kmm Kpid Krcu Kslab Kswap Ktimer Kvfs Kworkqueue
