lib/kernel/kanon.ml: Kcontext Klist Kmem Krbtree List
