lib/kernel/kmaple.ml: Kcontext Kmem Ktypes List Option
