lib/kernel/kswap.ml: Kcontext Kmem Ktypes List
