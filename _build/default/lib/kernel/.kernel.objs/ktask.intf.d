lib/kernel/ktask.mli: Kcontext Kmem
