lib/kernel/kipc.ml: Array Kcontext Klist Kmem Kxarray
