lib/kernel/kbuddy.ml: Hashtbl Kcontext Klist Kmem Ktypes
