lib/kernel/krbtree.ml: Kcontext Kmem List
