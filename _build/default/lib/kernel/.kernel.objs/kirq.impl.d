lib/kernel/kirq.ml: Kcontext Kfuncs Kmem Ktypes List
