lib/kernel/kcontext.ml: Ctype Hashtbl Kmem Ktypes Printf String
