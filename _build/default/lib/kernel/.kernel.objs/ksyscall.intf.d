lib/kernel/ksyscall.mli: Kmem Kstate
