lib/kernel/kobj.ml: Kcontext Kfuncs Klist Kmem
