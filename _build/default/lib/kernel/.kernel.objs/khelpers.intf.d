lib/kernel/khelpers.mli: Kstate Target
