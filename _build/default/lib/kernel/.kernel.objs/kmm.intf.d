lib/kernel/kmm.mli: Kbuddy Kcontext Kmaple Kmem
