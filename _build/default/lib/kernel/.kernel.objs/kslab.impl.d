lib/kernel/kslab.ml: Hashtbl Kbuddy Kcontext Klist Kmem Ktypes List
