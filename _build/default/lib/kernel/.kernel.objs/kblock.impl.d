lib/kernel/kblock.ml: Kcontext Kmem Kvfs
