lib/kernel/kmaple.mli: Kcontext Kmem
