lib/kernel/kswap.mli: Kcontext Kmem
