lib/kernel/kblock.mli: Kcontext Kmem Kvfs
