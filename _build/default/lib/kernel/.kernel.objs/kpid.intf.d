lib/kernel/kpid.mli: Kcontext Kmem
