lib/kernel/ktimer.ml: Array Kcontext Kfuncs Khlist Kmem Ktypes List
