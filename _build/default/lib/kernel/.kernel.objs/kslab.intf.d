lib/kernel/kslab.mli: Hashtbl Kbuddy Kcontext Kmem
