lib/kernel/ksignal.mli: Kcontext Kfuncs Kmem
