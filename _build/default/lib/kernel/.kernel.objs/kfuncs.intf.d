lib/kernel/kfuncs.mli: Kmem
