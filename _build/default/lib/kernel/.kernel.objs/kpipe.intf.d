lib/kernel/kpipe.mli: Kbuddy Kcontext Kfuncs Kmem Kvfs
