lib/kernel/kpipe.ml: Kbuddy Kcontext Kfuncs Kmem Ktypes Kvfs Kxarray List String
