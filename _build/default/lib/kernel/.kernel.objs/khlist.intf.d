lib/kernel/khlist.mli: Kcontext Kmem
