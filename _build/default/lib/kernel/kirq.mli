(** IRQ descriptors (ULK Fig 4-5): the [irq_desc] table with chips and
    chained [irqaction]s (shared interrupts). *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  descs : addr;  (** array of irq_desc[NR_IRQS] *)
}

val create : Kcontext.t -> Kfuncs.t -> t

val desc : t -> int -> addr
(** The descriptor of an irq number. *)

val set_chip : t -> irq:int -> chip_name:string -> addr

val request_irq : t -> irq:int -> name:string -> handler:string -> addr
(** Append an irqaction to the descriptor's chain (shared-IRQ style);
    returns the action. *)

val actions : t -> irq:int -> addr list
(** The action chain, in registration order. *)
