(** Struct, union and enum layouts of the simulated Linux 6.1 kernel.

    Field subsets are chosen to cover everything the paper's ViewCL
    programs touch (Tables 2-4, Figures 4-7): identifiers, links between
    objects, embedded containers, bitfields and compacted data. Layouts
    follow C rules via {!Ctype}, so [container_of] and pointer arithmetic
    behave exactly as on a real kernel. *)

open Ctype

let ptr name = Ptr (Named name)
let lh = Named "list_head"

(* Tunables (also registered as macros for C expressions). *)
let nr_cpus = 2
let page_size = 4096
let page_shift = 12
let comm_len = 16
let pidhash_bits = 4
let pidhash_sz = 1 lsl pidhash_bits
let maple_range64_slots = 16
let maple_arange64_slots = 10
let xa_chunk_shift = 6
let xa_chunk_size = 1 lsl xa_chunk_shift
let pipe_def_buffers = 16
let nsig = 64
let nr_irqs = 16
let max_order = 11
let timer_wheel_size = 64
let max_swapfiles = 4
let fdtable_size = 64

(* vm_flags *)
let vm_read = 0x1
let vm_write = 0x2
let vm_exec = 0x4
let vm_shared = 0x8
let vm_growsdown = 0x100

(* pipe_buffer flags *)
let pipe_buf_flag_lru = 0x01
let pipe_buf_flag_atomic = 0x02
let pipe_buf_flag_gift = 0x04
let pipe_buf_flag_packet = 0x08
let pipe_buf_flag_can_merge = 0x10

(* page flags (bit numbers) *)
let pg_locked = 0
let pg_dirty = 4
let pg_lru = 5
let pg_slab = 9
let pg_buddy = 10
let pg_swapcache = 16

(* task state bits *)
let task_running = 0x0000
let task_interruptible = 0x0001
let task_uninterruptible = 0x0002
let task_stopped = 0x0004
let exit_zombie = 0x0020
let task_idle = 0x0402

let define_all reg =
  (* ------------------------------------------------------------ *)
  (* Generic containers and kernel primitives *)
  define_struct reg "list_head" [ F ("next", ptr "list_head"); F ("prev", ptr "list_head") ];
  define_struct reg "hlist_head" [ F ("first", ptr "hlist_node") ];
  define_struct reg "hlist_node"
    [ F ("next", ptr "hlist_node"); F ("pprev", Ptr (ptr "hlist_node")) ];
  define_struct reg "rb_node"
    [ F ("__rb_parent_color", ulong); F ("rb_right", ptr "rb_node"); F ("rb_left", ptr "rb_node") ];
  define_struct reg "rb_root" [ F ("rb_node", ptr "rb_node") ];
  define_struct reg "rb_root_cached"
    [ F ("rb_root", Named "rb_root"); F ("rb_leftmost", ptr "rb_node") ];
  define_struct reg "atomic_t" [ F ("counter", int) ];
  define_struct reg "atomic64_t" [ F ("counter", i64) ];
  define_struct reg "refcount_t" [ F ("refs", Named "atomic_t") ];
  define_struct reg "spinlock_t" [ F ("locked", uint); F ("owner_cpu", int) ];
  define_struct reg "qstr" [ F ("hash_len", u64); F ("name", charp) ];

  (* ------------------------------------------------------------ *)
  (* XArray (also backs the radix-tree page cache and IDR) *)
  define_struct reg "xarray"
    [ F ("xa_lock", Named "spinlock_t"); F ("xa_flags", uint); F ("xa_head", voidp) ];
  define_struct reg "xa_node"
    [ F ("shift", u8); F ("offset", u8); F ("count", u8); F ("nr_values", u8);
      F ("parent", ptr "xa_node"); F ("array", ptr "xarray");
      F ("slots", Array (voidp, xa_chunk_size)) ];
  define_struct reg "idr"
    [ F ("idr_rt", Named "xarray"); F ("idr_base", uint); F ("idr_next", uint) ];

  (* ------------------------------------------------------------ *)
  (* Maple tree (Linux 6.1 VMA container) *)
  define_enum reg "maple_type"
    [ ("maple_dense", 0); ("maple_leaf_64", 1); ("maple_range_64", 2); ("maple_arange_64", 3) ];
  define_struct reg "maple_tree"
    [ F ("ma_lock", Named "spinlock_t"); F ("ma_flags", uint); F ("ma_root", voidp) ];
  define_struct reg "maple_metadata" [ F ("end", u8); F ("gap", u8) ];
  define_struct reg "maple_range_64"
    [ F ("parent", voidp);
      F ("pivot", Array (ulong, maple_range64_slots - 1));
      F ("slot", Array (voidp, maple_range64_slots)) ];
  define_struct reg "maple_arange_64"
    [ F ("parent", voidp);
      F ("pivot", Array (ulong, maple_arange64_slots - 1));
      F ("slot", Array (voidp, maple_arange64_slots));
      F ("gap", Array (ulong, maple_arange64_slots));
      F ("meta", Named "maple_metadata") ];
  (* As in the kernel, [maple_node] is a union overlay: [mr64] and [ma64]
     each begin with the shared [parent] pointer. 256 bytes, and nodes are
     allocated 256-aligned so encoded pointers can carry the node type in
     their low bits. *)
  define_struct reg "maple_node"
    [ Fat ("parent", voidp, 0);
      Fat ("mr64", Named "maple_range_64", 0);
      Fat ("ma64", Named "maple_arange_64", 0) ];

  (* ------------------------------------------------------------ *)
  (* RCU *)
  define_struct reg "callback_head" [ F ("next", ptr "callback_head"); F ("func", fptr "rcu_callback") ];
  define_struct reg "rcu_data"
    [ F ("cblist", ptr "callback_head"); F ("cbtail", ptr "callback_head");
      F ("gp_seq", ulong); F ("cpu", int) ];
  define_struct reg "rcu_state" [ F ("gp_seq", ulong); F ("name", charp) ];

  (* ------------------------------------------------------------ *)
  (* Scheduler *)
  define_struct reg "load_weight" [ F ("weight", ulong); F ("inv_weight", u32) ];
  define_struct reg "sched_entity"
    [ F ("load", Named "load_weight"); F ("run_node", Named "rb_node");
      F ("group_node", lh); F ("on_rq", uint); F ("exec_start", u64);
      F ("sum_exec_runtime", u64); F ("vruntime", u64); F ("prev_sum_exec_runtime", u64) ];
  define_struct reg "cfs_rq"
    [ F ("load", Named "load_weight"); F ("nr_running", uint); F ("h_nr_running", uint);
      F ("min_vruntime", u64); F ("tasks_timeline", Named "rb_root_cached");
      F ("curr", ptr "sched_entity") ];
  define_struct reg "rq"
    [ F ("__lock", Named "spinlock_t"); F ("nr_running", uint); F ("cpu", int);
      F ("cfs", Named "cfs_rq"); F ("curr", ptr "task_struct"); F ("idle", ptr "task_struct");
      F ("clock", u64) ];

  (* ------------------------------------------------------------ *)
  (* Signals *)
  define_struct reg "sigset_t" [ F ("sig", ulong) ];
  define_struct reg "sigpending" [ F ("list", lh); F ("signal", Named "sigset_t") ];
  define_struct reg "sigqueue"
    [ F ("list", lh); F ("flags", int); F ("si_signo", int); F ("si_code", int);
      F ("si_pid", int) ];
  define_struct reg "sigaction"
    [ F ("sa_handler", fptr "sighandler"); F ("sa_flags", ulong); F ("sa_mask", Named "sigset_t") ];
  define_struct reg "k_sigaction" [ F ("sa", Named "sigaction") ];
  define_struct reg "sighand_struct"
    [ F ("count", Named "refcount_t"); F ("action", Array (Named "k_sigaction", nsig));
      F ("siglock", Named "spinlock_t") ];
  define_struct reg "signal_struct"
    [ F ("sigcnt", Named "refcount_t"); F ("live", Named "atomic_t"); F ("nr_threads", int);
      F ("shared_pending", Named "sigpending"); F ("group_exit_code", int);
      F ("pids", Array (ptr "pid", 4)) ];

  (* ------------------------------------------------------------ *)
  (* PIDs: both the classic hash table (ULK Fig 3-6) and struct pid *)
  define_enum reg "pid_type"
    [ ("PIDTYPE_PID", 0); ("PIDTYPE_TGID", 1); ("PIDTYPE_PGID", 2); ("PIDTYPE_SID", 3) ];
  define_struct reg "upid"
    [ F ("nr", int); F ("ns", ptr "pid_namespace"); F ("pid_chain", Named "hlist_node") ];
  define_struct reg "pid"
    [ F ("count", Named "refcount_t"); F ("level", uint);
      F ("tasks", Array (Named "hlist_head", 4)); F ("numbers", Array (Named "upid", 1)) ];
  define_struct reg "pid_namespace"
    [ F ("idr", Named "idr"); F ("pid_allocated", uint); F ("level", uint);
      F ("parent", ptr "pid_namespace") ];

  (* ------------------------------------------------------------ *)
  (* Memory management *)
  define_struct reg "maple_tree_mm" [];
  define_struct reg "mm_struct"
    [ F ("mm_mt", Named "maple_tree"); F ("pgd", ulong); F ("mm_users", Named "atomic_t");
      F ("mm_count", Named "atomic_t"); F ("map_count", int);
      F ("mmap_base", ulong); F ("task_size", ulong); F ("total_vm", ulong);
      F ("start_code", ulong); F ("end_code", ulong); F ("start_data", ulong);
      F ("end_data", ulong); F ("start_brk", ulong); F ("brk", ulong);
      F ("start_stack", ulong); F ("arg_start", ulong); F ("arg_end", ulong);
      F ("env_start", ulong); F ("env_end", ulong);
      F ("mmap_lock", Named "spinlock_t") ];
  define_struct reg "vm_area_struct"
    [ F ("vm_start", ulong); F ("vm_end", ulong); F ("vm_mm", ptr "mm_struct");
      F ("vm_page_prot", ulong); F ("vm_flags", ulong);
      F ("anon_vma_chain", lh); F ("anon_vma", ptr "anon_vma");
      F ("vm_ops", fptr "vm_operations_struct"); F ("vm_pgoff", ulong);
      F ("vm_file", ptr "file"); F ("vm_private_data", voidp) ];
  define_struct reg "anon_vma"
    [ F ("root", ptr "anon_vma"); F ("refcount", Named "atomic_t");
      F ("num_children", ulong); F ("num_active_vmas", ulong);
      F ("parent", ptr "anon_vma"); F ("rb_root", Named "rb_root_cached") ];
  define_struct reg "anon_vma_chain"
    [ F ("vma", ptr "vm_area_struct"); F ("anon_vma", ptr "anon_vma");
      F ("same_vma", lh); F ("rb", Named "rb_node");
      F ("rb_subtree_last", ulong) ];

  (* Pages, buddy allocator, slab *)
  define_struct reg "page"
    [ F ("flags", ulong); F ("lru", lh); F ("mapping", ptr "address_space");
      F ("index", ulong); F ("private", ulong); F ("_refcount", Named "atomic_t");
      F ("_mapcount", Named "atomic_t") ];
  define_struct reg "free_area" [ F ("free_list", lh); F ("nr_free", ulong) ];
  define_struct reg "zone"
    [ F ("name", charp); F ("managed_pages", Named "atomic64_t");
      F ("zone_start_pfn", ulong); F ("spanned_pages", ulong);
      F ("lock", Named "spinlock_t"); F ("free_area", Array (Named "free_area", max_order)) ];
  define_struct reg "kmem_cache"
    [ F ("name", charp); F ("object_size", uint); F ("size", uint); F ("align", uint);
      F ("flags", ulong); F ("list", lh);
      F ("partial", lh); F ("full", lh); F ("nr_slabs", Named "atomic_t") ];
  define_struct reg "slab"
    [ F ("slab_list", lh); F ("slab_cache", ptr "kmem_cache"); F ("freelist", voidp);
      Fbits ("inuse", u32, 16); Fbits ("objects", u32, 15); Fbits ("frozen", u32, 1) ];

  (* Swap *)
  define_struct reg "swap_info_struct"
    [ F ("lock", Named "spinlock_t"); F ("flags", ulong); F ("prio", short);
      F ("type", int); F ("max", ulong); F ("swap_map", Ptr uchar); F ("pages", ulong);
      F ("inuse_pages", ulong); F ("swap_file", ptr "file"); F ("bdev", ptr "block_device") ];

  (* ------------------------------------------------------------ *)
  (* VFS *)
  define_struct reg "file_system_type"
    [ F ("name", charp); F ("fs_flags", int); F ("next", ptr "file_system_type") ];
  define_struct reg "super_block"
    [ F ("s_list", lh); F ("s_dev", u32); F ("s_blocksize", ulong);
      F ("s_type", ptr "file_system_type"); F ("s_magic", ulong);
      F ("s_root", ptr "dentry"); F ("s_bdev", ptr "block_device");
      F ("s_inodes", lh); F ("s_id", Array (char, 32)) ];
  define_struct reg "address_space"
    [ F ("host", ptr "inode"); F ("i_pages", Named "xarray"); F ("nrpages", ulong);
      F ("a_ops", fptr "address_space_operations") ];
  define_struct reg "inode"
    [ F ("i_mode", ushort); F ("i_ino", ulong); F ("i_size", i64); F ("i_nlink", uint);
      F ("i_sb", ptr "super_block"); F ("i_mapping", ptr "address_space");
      F ("i_data", Named "address_space"); F ("i_count", Named "atomic_t");
      F ("i_sb_list", lh); F ("i_pipe", ptr "pipe_inode_info") ];
  define_struct reg "dentry"
    [ F ("d_parent", ptr "dentry"); F ("d_name", Named "qstr"); F ("d_inode", ptr "inode");
      F ("d_iname", Array (char, 32)); F ("d_sb", ptr "super_block");
      F ("d_child", lh); F ("d_subdirs", lh) ];
  define_struct reg "path" [ F ("mnt", voidp); F ("dentry", ptr "dentry") ];
  define_struct reg "file"
    [ F ("f_path", Named "path"); F ("f_inode", ptr "inode");
      F ("f_op", fptr "file_operations"); F ("f_count", Named "atomic64_t");
      F ("f_flags", uint); F ("f_mode", uint); F ("f_pos", i64);
      F ("f_mapping", ptr "address_space"); F ("private_data", voidp) ];
  define_struct reg "fdtable"
    [ F ("max_fds", uint); F ("fd", Ptr (ptr "file")); F ("open_fds", Ptr ulong);
      F ("full_fds_bits", Ptr ulong) ];
  define_struct reg "files_struct"
    [ F ("count", Named "atomic_t"); F ("fdt", ptr "fdtable");
      F ("fdtab", Named "fdtable"); F ("next_fd", uint) ];

  (* Block devices *)
  define_struct reg "gendisk"
    [ F ("major", int); F ("first_minor", int); F ("minors", int);
      F ("disk_name", Array (char, 32)); F ("part0", ptr "block_device") ];
  define_struct reg "block_device"
    [ F ("bd_dev", u32); F ("bd_inode", ptr "inode"); F ("bd_super", ptr "super_block");
      F ("bd_disk", ptr "gendisk"); F ("bd_openers", Named "atomic_t") ];

  (* Pipes *)
  define_struct reg "pipe_buffer"
    [ F ("page", ptr "page"); F ("offset", uint); F ("len", uint);
      F ("ops", fptr "pipe_buf_operations"); F ("flags", uint); F ("private", ulong) ];
  define_struct reg "pipe_inode_info"
    [ F ("mutex", Named "spinlock_t"); F ("head", uint); F ("tail", uint);
      F ("max_usage", uint); F ("ring_size", uint); F ("readers", uint);
      F ("writers", uint); F ("files", uint); F ("bufs", ptr "pipe_buffer");
      F ("user", voidp) ];

  (* ------------------------------------------------------------ *)
  (* IRQs and timers *)
  define_struct reg "irq_chip" [ F ("name", charp) ];
  define_struct reg "irq_data"
    [ F ("irq", uint); F ("hwirq", ulong); F ("chip", ptr "irq_chip") ];
  define_struct reg "irqaction"
    [ F ("handler", fptr "irq_handler"); F ("dev_id", voidp); F ("next", ptr "irqaction");
      F ("irq", uint); F ("flags", ulong); F ("name", charp) ];
  define_struct reg "irq_desc"
    [ F ("irq_data", Named "irq_data"); F ("handle_irq", fptr "irq_flow_handler");
      F ("action", ptr "irqaction"); F ("depth", uint); F ("irq_count", uint);
      F ("name", charp) ];
  define_struct reg "timer_list"
    [ F ("entry", Named "hlist_node"); F ("expires", ulong);
      F ("function", fptr "timer_fn"); F ("flags", u32) ];
  define_struct reg "timer_base"
    [ F ("lock", Named "spinlock_t"); F ("running_timer", ptr "timer_list");
      F ("clk", ulong); F ("vectors", Array (Named "hlist_head", timer_wheel_size)) ];

  (* ------------------------------------------------------------ *)
  (* Workqueues *)
  define_struct reg "work_struct"
    [ F ("data", ulong); F ("entry", lh); F ("func", fptr "work_func") ];
  define_struct reg "delayed_work"
    [ F ("work", Named "work_struct"); F ("timer", Named "timer_list");
      F ("wq", ptr "workqueue_struct"); F ("cpu", int) ];
  define_struct reg "worker_pool"
    [ F ("lock", Named "spinlock_t"); F ("cpu", int); F ("id", int);
      F ("worklist", lh); F ("nr_workers", int); F ("nr_idle", int) ];
  define_struct reg "pool_workqueue"
    [ F ("pool", ptr "worker_pool"); F ("wq", ptr "workqueue_struct");
      F ("refcnt", int); F ("nr_active", int); F ("inactive_works", lh);
      F ("pwqs_node", lh) ];
  define_struct reg "workqueue_struct"
    [ F ("pwqs", lh); F ("list", lh); F ("flags", uint); F ("name", Array (char, 24)) ];

  (* Concrete work containers (heterogeneous list demo, paper Fig. 6) *)
  define_struct reg "vmstat_work_s"
    [ F ("work", Named "delayed_work"); F ("cpu", int); F ("interval", int) ];
  define_struct reg "lru_drain_work_s" [ F ("work", Named "work_struct"); F ("cpu", int) ];
  define_struct reg "mm_compact_work_s"
    [ F ("work", Named "work_struct"); F ("zone", ptr "zone"); F ("order", int) ];

  (* ------------------------------------------------------------ *)
  (* IPC *)
  define_struct reg "kern_ipc_perm"
    [ F ("deleted", Bool); F ("id", int); F ("key", int); F ("uid", uint); F ("gid", uint);
      F ("mode", ushort); F ("seq", ulong) ];
  define_struct reg "sem"
    [ F ("semval", int); F ("sempid", int); F ("pending_alter", lh); F ("pending_const", lh) ];
  define_struct reg "sem_array"
    [ F ("sem_perm", Named "kern_ipc_perm"); F ("sem_ctime", i64); F ("sem_nsems", ulong);
      F ("sems", ptr "sem"); F ("pending_alter", lh); F ("list_id", lh) ];
  define_struct reg "msg_msg"
    [ F ("m_list", lh); F ("m_type", long); F ("m_ts", size_t); F ("next", voidp) ];
  define_struct reg "msg_queue"
    [ F ("q_perm", Named "kern_ipc_perm"); F ("q_stime", i64); F ("q_rtime", i64);
      F ("q_cbytes", ulong); F ("q_qnum", ulong); F ("q_qbytes", ulong);
      F ("q_messages", lh); F ("q_receivers", lh); F ("q_senders", lh) ];
  define_struct reg "ipc_ids"
    [ F ("in_use", int); F ("seq", ushort); F ("ipcs_idr", Named "idr");
      F ("max_idx", int) ];
  define_struct reg "ipc_namespace"
    [ F ("ids", Array (Named "ipc_ids", 3)) ];

  (* ------------------------------------------------------------ *)
  (* Networking *)
  define_enum reg "socket_state"
    [ ("SS_FREE", 0); ("SS_UNCONNECTED", 1); ("SS_CONNECTING", 2); ("SS_CONNECTED", 3);
      ("SS_DISCONNECTING", 4) ];
  define_struct reg "sk_buff"
    [ F ("next", ptr "sk_buff"); F ("prev", ptr "sk_buff"); F ("len", uint);
      F ("data_len", uint); F ("protocol", u16); F ("head", voidp); F ("data", voidp) ];
  define_struct reg "sk_buff_head"
    [ F ("next", ptr "sk_buff"); F ("prev", ptr "sk_buff"); F ("qlen", u32);
      F ("lock", Named "spinlock_t") ];
  define_struct reg "sock"
    [ F ("skc_daddr", u32); F ("skc_rcv_saddr", u32); F ("skc_dport", u16);
      F ("skc_num", u16); F ("skc_family", ushort); F ("skc_state", uchar);
      F ("sk_receive_queue", Named "sk_buff_head"); F ("sk_write_queue", Named "sk_buff_head");
      F ("sk_rcvbuf", int); F ("sk_sndbuf", int); F ("sk_socket", ptr "socket") ];
  define_struct reg "socket"
    [ F ("state", Named "socket_state"); F ("type", short); F ("flags", ulong);
      F ("file", ptr "file"); F ("sk", ptr "sock"); F ("ops", fptr "proto_ops") ];

  (* ------------------------------------------------------------ *)
  (* Device model *)
  define_struct reg "kref" [ F ("refcount", Named "refcount_t") ];
  define_struct reg "kobject"
    [ F ("name", charp); F ("entry", lh); F ("parent", ptr "kobject");
      F ("kset", ptr "kset"); F ("ktype", fptr "kobj_type"); F ("kref", Named "kref") ];
  define_struct reg "kset"
    [ F ("list", lh); F ("list_lock", Named "spinlock_t"); F ("kobj", Named "kobject") ];
  define_struct reg "bus_type" [ F ("name", charp) ];
  define_struct reg "device_driver"
    [ F ("name", charp); F ("bus", ptr "bus_type"); F ("probe", fptr "probe_fn") ];
  define_struct reg "device"
    [ F ("kobj", Named "kobject"); F ("parent", ptr "device");
      F ("driver", ptr "device_driver"); F ("bus", ptr "bus_type");
      F ("devt", u32) ];

  (* ------------------------------------------------------------ *)
  (* The task_struct itself (last: it references most of the above) *)
  define_struct reg "task_struct"
    [ F ("__state", uint); F ("flags", uint); F ("on_cpu", int); F ("cpu", int);
      F ("prio", int); F ("static_prio", int); F ("normal_prio", int);
      F ("se", Named "sched_entity"); F ("policy", uint);
      F ("tasks", lh); F ("pushable_tasks", lh);
      F ("mm", ptr "mm_struct"); F ("active_mm", ptr "mm_struct");
      F ("exit_state", int); F ("exit_code", int);
      F ("pid", int); F ("tgid", int);
      F ("real_parent", ptr "task_struct"); F ("parent", ptr "task_struct");
      F ("children", lh); F ("sibling", lh);
      F ("group_leader", ptr "task_struct"); F ("thread_group", lh);
      F ("thread_pid", ptr "pid");
      F ("utime", u64); F ("stime", u64); F ("start_time", u64);
      F ("comm", Array (char, comm_len));
      F ("fs", voidp); F ("files", ptr "files_struct");
      F ("signal", ptr "signal_struct"); F ("sighand", ptr "sighand_struct");
      F ("pending", Named "sigpending"); F ("blocked", Named "sigset_t") ];
  ()

(* Macro-like constants visible to C expressions. *)
let macros =
  [ ("NR_CPUS", nr_cpus); ("PAGE_SIZE", page_size); ("PAGE_SHIFT", page_shift);
    ("PIDHASH_SZ", pidhash_sz); ("MAPLE_RANGE64_SLOTS", maple_range64_slots);
    ("MAPLE_ARANGE64_SLOTS", maple_arange64_slots); ("XA_CHUNK_SIZE", xa_chunk_size);
    ("PIPE_DEF_BUFFERS", pipe_def_buffers); ("NSIG", nsig); ("NR_IRQS", nr_irqs);
    ("MAX_ORDER", max_order); ("MAX_SWAPFILES", max_swapfiles);
    ("VM_READ", vm_read); ("VM_WRITE", vm_write); ("VM_EXEC", vm_exec);
    ("VM_SHARED", vm_shared); ("VM_GROWSDOWN", vm_growsdown);
    ("PIPE_BUF_FLAG_LRU", pipe_buf_flag_lru); ("PIPE_BUF_FLAG_ATOMIC", pipe_buf_flag_atomic);
    ("PIPE_BUF_FLAG_GIFT", pipe_buf_flag_gift); ("PIPE_BUF_FLAG_PACKET", pipe_buf_flag_packet);
    ("PIPE_BUF_FLAG_CAN_MERGE", pipe_buf_flag_can_merge);
    ("PG_locked", pg_locked); ("PG_dirty", pg_dirty); ("PG_lru", pg_lru);
    ("PG_slab", pg_slab); ("PG_buddy", pg_buddy); ("PG_swapcache", pg_swapcache);
    ("TASK_RUNNING", task_running); ("TASK_INTERRUPTIBLE", task_interruptible);
    ("TASK_UNINTERRUPTIBLE", task_uninterruptible); ("TASK_STOPPED", task_stopped);
    ("EXIT_ZOMBIE", exit_zombie); ("TASK_IDLE", task_idle);
    ("NULL", 0) ]

(* Bit-flag tables used by the Flag text decorator. *)
let flag_tables =
  [ ( "vm_flags",
      [ (vm_read, "VM_READ"); (vm_write, "VM_WRITE"); (vm_exec, "VM_EXEC");
        (vm_shared, "VM_SHARED"); (vm_growsdown, "VM_GROWSDOWN") ] );
    ( "pipe_buf_flags",
      [ (pipe_buf_flag_lru, "LRU"); (pipe_buf_flag_atomic, "ATOMIC");
        (pipe_buf_flag_gift, "GIFT"); (pipe_buf_flag_packet, "PACKET");
        (pipe_buf_flag_can_merge, "CAN_MERGE") ] );
    ( "page_flags",
      [ (1 lsl pg_locked, "PG_locked"); (1 lsl pg_dirty, "PG_dirty");
        (1 lsl pg_lru, "PG_lru"); (1 lsl pg_slab, "PG_slab");
        (1 lsl pg_buddy, "PG_buddy"); (1 lsl pg_swapcache, "PG_swapcache") ] );
    ( "task_state",
      [ (task_interruptible, "TASK_INTERRUPTIBLE");
        (task_uninterruptible, "TASK_UNINTERRUPTIBLE"); (task_stopped, "TASK_STOPPED");
        (exit_zombie, "EXIT_ZOMBIE") ] ) ]
