(** Task creation and the process tree (ULK Fig 3-4).

    Builds [task_struct]s with the same linkage as the kernel: parenthood
    through [children]/[sibling] list heads, the global [tasks] list
    anchored at the init task, and thread groups sharing [mm], [files],
    [signal] and [sighand] with their leader. Higher-level lifecycle
    (pids, scheduling, VM images) is composed by {!Ksyscall}. *)

type addr = Kmem.addr

(** Creation parameters; zero address fields mean "none". *)
type spec = {
  pid : int;
  comm : string;
  parent : addr;  (** 0 for the init task *)
  group_leader : addr;  (** 0 = self (new thread-group leader) *)
  mm : addr;  (** 0 for kernel threads *)
  files : addr;
  signal : addr;
  sighand : addr;
  cpu : int;
  prio : int;
  kthread : bool;
}

val default_spec : spec

val create : Kcontext.t -> tasks_head:addr -> spec -> addr
(** Allocate and link a task_struct. [tasks_head] is the global task-list
    anchor (pass 0 for boot-time tasks kept off the list). *)

val init_lists : Kcontext.t -> addr -> unit
(** Initialize the embedded list heads of a raw task_struct. *)

val pid : Kcontext.t -> addr -> int
val comm : Kcontext.t -> addr -> string
val set_state : Kcontext.t -> addr -> int -> unit

val children : Kcontext.t -> addr -> addr list
(** Direct children, in creation order. *)

val all_tasks : Kcontext.t -> tasks_head:addr -> addr list
(** Tasks on the global list (anchor's own task excluded). *)

val threads : Kcontext.t -> addr -> addr list
(** A thread group, leader first. *)
