(** System V IPC (ULK Fig 19-1/19-2): a namespace holding semaphore sets
    and message queues in XArray-backed IDRs, as Linux 6.1 does. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  ns : addr;  (** the ipc_namespace *)
  mutable next_id : int array;
}

val ipc_sem_ids : int
val ipc_msg_ids : int

val create : Kcontext.t -> t

val ids_addr : t -> int -> addr
(** The [ipc_ids] of a class (sem/msg/shm). *)

val semget : t -> key:int -> nsems:int -> addr
(** A semaphore set registered in the IDR; returns the sem_array. *)

val semop : t -> addr -> idx:int -> delta:int -> pid:int -> unit
(** Adjust one semaphore's value (clamped at 0) and record sempid. *)

val msgget : t -> key:int -> qbytes:int -> addr

val msgsnd : t -> addr -> mtype:int -> size:int -> addr
(** Enqueue a message; updates q_qnum/q_cbytes. Returns the msg_msg. *)

val msgrcv : t -> addr -> int option
(** Dequeue FIFO; returns the message size, [None] when empty. *)

val messages : t -> addr -> addr list
