(** Read-copy-update machinery.

    Implements the deferred-free protocol at the heart of CVE-2023-3269:
    [call_rcu] queues a [callback_head] (embedded in the dying object) on
    a per-CPU callback list *in simulated memory* — so the RCU waiting
    list is a real data structure a ViewCL program can plot — and
    [run_grace_period] later invokes the callbacks, actually freeing the
    memory. A reader that held a pointer across the grace period then
    takes a use-after-free fault recorded by {!Kmem}. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  rcu_data : addr array;  (** per-CPU [struct rcu_data] *)
  rcu_state : addr;
  mutable gp_seq : int;
}

let create ctx funcs ~ncpus =
  let rcu_data =
    Array.init ncpus (fun cpu ->
        let rd = alloc ctx "rcu_data" in
        w32 ctx rd "rcu_data" "cpu" cpu;
        w64 ctx rd "rcu_data" "gp_seq" 0;
        rd)
  in
  let rcu_state = alloc ctx "rcu_state" in
  w64 ctx rcu_state "rcu_state" "name" (cstring ctx "rcu_sched");
  { ctx; funcs; rcu_data; rcu_state; gp_seq = 0 }

(** Queue [head] (a [callback_head] embedded in the dying object) to run
    [func_name] after the next grace period, on [cpu]'s callback list. *)
let call_rcu t ?(cpu = 0) head func_name =
  let ctx = t.ctx in
  let fn = Kfuncs.register t.funcs func_name in
  w64 ctx head "callback_head" "next" 0;
  w64 ctx head "callback_head" "func" fn;
  let rd = t.rcu_data.(cpu) in
  let tail = r64 ctx rd "rcu_data" "cbtail" in
  if tail = 0 then w64 ctx rd "rcu_data" "cblist" head
  else w64 ctx tail "callback_head" "next" head;
  w64 ctx rd "rcu_data" "cbtail" head

(** Pending callbacks of [cpu], in queue order. *)
let pending t ?(cpu = 0) () =
  let ctx = t.ctx in
  let rec go h acc =
    if h = 0 then List.rev acc else go (r64 ctx h "callback_head" "next") (h :: acc)
  in
  go (r64 ctx t.rcu_data.(cpu) "rcu_data" "cblist") []

(** Advance one grace period: every queued callback runs (rcu_do_batch). *)
let run_grace_period t =
  t.gp_seq <- t.gp_seq + 1;
  let ctx = t.ctx in
  w64 ctx t.rcu_state "rcu_state" "gp_seq" t.gp_seq;
  Array.iter
    (fun rd ->
      let rec drain h =
        if h <> 0 then begin
          let next = r64 ctx h "callback_head" "next" in
          let fn = r64 ctx h "callback_head" "func" in
          Kfuncs.invoke t.funcs fn h;
          drain next
        end
      in
      let head = r64 ctx rd "rcu_data" "cblist" in
      w64 ctx rd "rcu_data" "cblist" 0;
      w64 ctx rd "rcu_data" "cbtail" 0;
      w64 ctx rd "rcu_data" "gp_seq" t.gp_seq;
      drain head)
    t.rcu_data

let synchronize = run_grace_period
