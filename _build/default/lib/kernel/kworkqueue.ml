(** Workqueues (paper Fig. 6 and ULK row #19): heterogeneous work lists
    built from [work_struct]s embedded in different container types,
    dispatched through their [func] pointers — the canonical
    [container_of] + polymorphism case ViewCL must handle. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  workqueues : addr;  (** global list of workqueue_structs *)
  pools : addr array;  (** per-CPU worker_pool *)
}

let create ctx funcs ~ncpus =
  let workqueues = alloc ctx "list_head" in
  Klist.init ctx workqueues;
  let pools =
    Array.init ncpus (fun cpu ->
        let p = alloc ctx "worker_pool" in
        w32 ctx p "worker_pool" "cpu" cpu;
        w32 ctx p "worker_pool" "id" cpu;
        w32 ctx p "worker_pool" "nr_workers" 2;
        Klist.init ctx (fld ctx p "worker_pool" "worklist");
        p)
  in
  { ctx; funcs; workqueues; pools }

(** alloc_workqueue: one pool_workqueue per CPU. *)
let alloc_workqueue t name =
  let ctx = t.ctx in
  let wq = alloc ctx "workqueue_struct" in
  wstr ctx wq "workqueue_struct" "name" ~field_size:24 name;
  Klist.init ctx (fld ctx wq "workqueue_struct" "pwqs");
  Array.iter
    (fun pool ->
      let pwq = alloc ctx "pool_workqueue" in
      w64 ctx pwq "pool_workqueue" "pool" pool;
      w64 ctx pwq "pool_workqueue" "wq" wq;
      w32 ctx pwq "pool_workqueue" "refcnt" 1;
      Klist.init ctx (fld ctx pwq "pool_workqueue" "inactive_works");
      Klist.add_tail ctx (fld ctx wq "workqueue_struct" "pwqs")
        (fld ctx pwq "pool_workqueue" "pwqs_node"))
    t.pools;
  Klist.add_tail ctx t.workqueues (fld ctx wq "workqueue_struct" "list");
  wq

(** Initialize the [work_struct] at [work] with a named handler. *)
let init_work t work func_name =
  let ctx = t.ctx in
  w64 ctx work "work_struct" "data" 0;
  Klist.init ctx (fld ctx work "work_struct" "entry");
  w64 ctx work "work_struct" "func" (Kfuncs.register t.funcs func_name)

(** queue_work on [cpu]'s pool. *)
let queue_work t ~cpu work =
  Klist.add_tail t.ctx (fld t.ctx t.pools.(cpu) "worker_pool" "worklist")
    (fld t.ctx work "work_struct" "entry")

(** The pending work_structs of [cpu]'s pool, in order. *)
let pending t ~cpu =
  Klist.containers t.ctx (fld t.ctx t.pools.(cpu) "worker_pool" "worklist") "work_struct" "entry"

(** Drain [cpu]'s pool as a worker would: unlink each work item and
    invoke its function (with the work_struct address) when an
    implementation is registered. Returns the processed work items. *)
let process_works t ~cpu =
  let ctx = t.ctx in
  let works = pending t ~cpu in
  List.iter
    (fun w ->
      Klist.del ctx (fld ctx w "work_struct" "entry");
      let fn = r64 ctx w "work_struct" "func" in
      match Kfuncs.impl_of t.funcs fn with
      | Some impl -> impl w
      | None -> ())
    works;
  works

(** Convenience constructors for the three heterogeneous work containers
    used by the mm_percpu_wq demo. *)
let new_vmstat_work t ~cpu ~interval =
  let w = alloc t.ctx "vmstat_work_s" in
  w32 t.ctx w "vmstat_work_s" "cpu" cpu;
  w32 t.ctx w "vmstat_work_s" "interval" interval;
  init_work t (fld t.ctx w "vmstat_work_s" "work.work") "vmstat_update";
  w

let new_lru_drain_work t ~cpu =
  let w = alloc t.ctx "lru_drain_work_s" in
  w32 t.ctx w "lru_drain_work_s" "cpu" cpu;
  init_work t (fld t.ctx w "lru_drain_work_s" "work") "lru_add_drain_per_cpu";
  w

let new_compact_work t ~zone ~order =
  let w = alloc t.ctx "mm_compact_work_s" in
  w64 t.ctx w "mm_compact_work_s" "zone" zone;
  w32 t.ctx w "mm_compact_work_s" "order" order;
  init_work t (fld t.ctx w "mm_compact_work_s" "work") "compact_zone_work";
  w
