(** Read-copy-update machinery.

    Implements the deferred-free protocol at the heart of CVE-2023-3269
    (StackRot): {!call_rcu} queues a [callback_head] (embedded in the
    dying object) on a per-CPU callback list {e in simulated memory} — so
    the RCU waiting list is a real data structure a ViewCL program can
    plot — and {!run_grace_period} later invokes the callbacks, actually
    freeing the memory. A reader that held a pointer across the grace
    period then takes a use-after-free fault recorded by {!Kmem}. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  rcu_data : addr array;  (** per-CPU [struct rcu_data] *)
  rcu_state : addr;
  mutable gp_seq : int;
}

val create : Kcontext.t -> Kfuncs.t -> ncpus:int -> t

val call_rcu : t -> ?cpu:int -> addr -> string -> unit
(** [call_rcu rcu head func_name] queues [head] (a [callback_head]
    embedded in the dying object) to run [func_name] after the next grace
    period, appending to [cpu]'s (default 0) callback list. *)

val pending : t -> ?cpu:int -> unit -> addr list
(** Queued callback heads of a CPU, in queue order. *)

val run_grace_period : t -> unit
(** Advance one grace period: every queued callback runs (rcu_do_batch),
    on every CPU, in queue order. *)

val synchronize : t -> unit
(** Alias of {!run_grace_period} (synchronize_rcu semantics here). *)
