(** Task creation and the process tree (ULK Fig 3-4).

    Builds [task_struct]s with the same linkage as the kernel: parenthood
    through [children]/[sibling] list heads, the global [tasks] list
    anchored at the init task, thread groups sharing [mm], [files],
    [signal] and [sighand] with their leader. *)

open Kcontext

type addr = Kmem.addr

let init_lists ctx task =
  List.iter
    (fun f -> Klist.init ctx (fld ctx task "task_struct" f))
    [ "tasks"; "pushable_tasks"; "children"; "sibling"; "thread_group"; "se.group_node";
      "pending.list" ]

type spec = {
  pid : int;
  comm : string;
  parent : addr;  (** 0 for the init task *)
  group_leader : addr;  (** 0 = self (new thread-group leader) *)
  mm : addr;  (** 0 for kernel threads *)
  files : addr;
  signal : addr;
  sighand : addr;
  cpu : int;
  prio : int;
  kthread : bool;
}

let default_spec =
  { pid = 0; comm = "task"; parent = 0; group_leader = 0; mm = 0; files = 0; signal = 0;
    sighand = 0; cpu = 0; prio = 120; kthread = false }

(** Create a task_struct; [tasks_head] is the global task list anchor
    (init_task.tasks). *)
let create ctx ~tasks_head spec =
  let task = alloc ctx "task_struct" in
  init_lists ctx task;
  w32 ctx task "task_struct" "pid" spec.pid;
  wstr ctx task "task_struct" "comm" ~field_size:Ktypes.comm_len spec.comm;
  w32 ctx task "task_struct" "__state" Ktypes.task_running;
  w32 ctx task "task_struct" "prio" spec.prio;
  w32 ctx task "task_struct" "static_prio" spec.prio;
  w32 ctx task "task_struct" "normal_prio" spec.prio;
  w32 ctx task "task_struct" "cpu" spec.cpu;
  w64 ctx task "task_struct" "mm" spec.mm;
  w64 ctx task "task_struct" "active_mm" spec.mm;
  w64 ctx task "task_struct" "files" spec.files;
  w64 ctx task "task_struct" "signal" spec.signal;
  w64 ctx task "task_struct" "sighand" spec.sighand;
  if spec.kthread then w32 ctx task "task_struct" "flags" 0x00200000 (* PF_KTHREAD *);
  let leader = if spec.group_leader = 0 then task else spec.group_leader in
  w64 ctx task "task_struct" "group_leader" leader;
  w32 ctx task "task_struct" "tgid"
    (if leader = task then spec.pid else r32 ctx leader "task_struct" "pid");
  let parent = if spec.parent = 0 then task else spec.parent in
  w64 ctx task "task_struct" "parent" parent;
  w64 ctx task "task_struct" "real_parent" parent;
  if spec.parent <> 0 then
    Klist.add_tail ctx
      (fld ctx spec.parent "task_struct" "children")
      (fld ctx task "task_struct" "sibling");
  if leader <> task then begin
    Klist.add_tail ctx
      (fld ctx leader "task_struct" "thread_group")
      (fld ctx task "task_struct" "thread_group");
    let sg = r64 ctx task "task_struct" "signal" in
    if sg <> 0 then w32 ctx sg "signal_struct" "nr_threads" (Klist.length ctx (fld ctx leader "task_struct" "thread_group") + 1)
  end;
  if tasks_head <> 0 then
    Klist.add_tail ctx tasks_head (fld ctx task "task_struct" "tasks");
  task

let pid ctx task = ri32 ctx task "task_struct" "pid"
let comm ctx task = rstr ctx task "task_struct" "comm"
let set_state ctx task st = w32 ctx task "task_struct" "__state" st

(** Children in creation order. *)
let children ctx task =
  Klist.containers ctx (fld ctx task "task_struct" "children") "task_struct" "sibling"

(** Every task on the global list, init excluded. *)
let all_tasks ctx ~tasks_head =
  Klist.containers ctx tasks_head "task_struct" "tasks"

(** Threads of a group, leader first. *)
let threads ctx leader =
  leader
  :: Klist.containers ctx (fld ctx leader "task_struct" "thread_group") "task_struct"
       "thread_group"
