(** The buddy page allocator (ULK Fig 8-2).

    A [mem_map] array of [struct page] covers a simulated DRAM zone; free
    blocks sit on per-order [free_area] lists linked through [page.lru].
    Orders split on allocation and buddies coalesce on free. Page payloads
    live in a separate data region addressable via {!page_address}. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  zone : addr;  (** the [struct zone] *)
  mem_map : addr;  (** base of the page-struct array *)
  data_base : addr;  (** base of page payloads *)
  npages : int;
  page_size : int;
  free_orders : (int, int) Hashtbl.t;
}

val create : Kcontext.t -> npages:int -> t
(** Carve [npages] frames into max-order free blocks. *)

val pfn_to_page : t -> int -> addr
val page_to_pfn : t -> addr -> int

val page_address : t -> addr -> addr
(** The payload address of a page (what the kernel calls page_address). *)

val alloc_pages : t -> int -> addr
(** Allocate a 2{^order} block, splitting larger blocks as needed;
    returns the head page. @raise Failure when the zone is exhausted. *)

val free_pages : t -> addr -> int -> unit
(** Free a 2{^order} block, coalescing with free buddies. *)

val alloc_page : t -> addr
val free_page : t -> addr -> unit

val nr_free : t -> int -> int
(** Free blocks at one order ([free_area\[order\].nr_free]). *)

val total_free_pages : t -> int
