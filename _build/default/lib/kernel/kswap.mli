(** Swap area descriptors (ULK Fig 17-6): the [swap_info] pointer array
    and [swap_info_struct]s with their usage maps. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  swap_info : addr;  (** array of MAX_SWAPFILES pointers *)
  mutable nr : int;
}

val swp_used : int
val swp_writeok : int

val create : Kcontext.t -> t

val swapon : t -> file:addr -> bdev:addr -> pages:int -> prio:int -> used:int -> addr
(** Activate a swap area of [pages] slots backed by [file]; [used] slots
    are pre-marked in the swap_map. @raise Failure when the table is
    full. *)

val areas : t -> addr list
