(** The slab allocator (ULK Fig 8-4): [kmem_cache]s carving objects out of
    buddy pages, with partial/full slab lists and in-page freelists. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  buddy : Kbuddy.t;
  slab_caches : addr;  (** global list_head of all caches *)
  slab_bases : (addr, addr) Hashtbl.t;  (** slab struct -> payload base *)
}

let create ctx buddy =
  let slab_caches = alloc ctx "list_head" in
  Klist.init ctx slab_caches;
  { ctx; buddy; slab_caches; slab_bases = Hashtbl.create 32 }

let cache_create t name ~object_size =
  let ctx = t.ctx in
  let c = alloc ctx "kmem_cache" in
  w64 ctx c "kmem_cache" "name" (cstring ctx name);
  w32 ctx c "kmem_cache" "object_size" object_size;
  let size = max 16 ((object_size + 15) land lnot 15) in
  w32 ctx c "kmem_cache" "size" size;
  w32 ctx c "kmem_cache" "align" 16;
  Klist.init ctx (fld ctx c "kmem_cache" "partial");
  Klist.init ctx (fld ctx c "kmem_cache" "full");
  Klist.add_tail ctx t.slab_caches (fld ctx c "kmem_cache" "list");
  c

let slab_objects t cache =
  let size = r32 t.ctx cache "kmem_cache" "size" in
  Ktypes.page_size / size

(* Pack the slab's inuse/objects/frozen bitfield word. *)
let write_slab_counts ctx slab ~inuse ~objects ~frozen =
  let word = (inuse land 0xffff) lor ((objects land 0x7fff) lsl 16) lor ((frozen land 1) lsl 31) in
  w32 ctx slab "slab" "inuse" word
(* NB: the three fields share one u32 storage unit at the same offset; we
   write the packed word through the first field's offset. *)

let slab_inuse ctx slab = r32 ctx slab "slab" "inuse" land 0xffff
let slab_objcount ctx slab = (r32 ctx slab "slab" "inuse" lsr 16) land 0x7fff

let new_slab t cache =
  let ctx = t.ctx in
  let page = Kbuddy.alloc_page t.buddy in
  let base = Kbuddy.page_address t.buddy page in
  let size = r32 ctx cache "kmem_cache" "size" in
  let nobj = slab_objects t cache in
  let slab = alloc ctx "slab" in
  w64 ctx slab "slab" "slab_cache" cache;
  (* Free objects are chained through their first word. *)
  for i = 0 to nobj - 1 do
    let o = base + (i * size) in
    Kmem.write_u64 ctx.mem o (if i = nobj - 1 then 0 else o + size)
  done;
  w64 ctx slab "slab" "freelist" base;
  Hashtbl.replace t.slab_bases slab base;
  write_slab_counts ctx slab ~inuse:0 ~objects:nobj ~frozen:0;
  (* The page remembers its slab via [private]; flag it PG_slab. *)
  w64 ctx page "page" "private" slab;
  let f = r64 ctx page "page" "flags" in
  w64 ctx page "page" "flags" (f lor (1 lsl Ktypes.pg_slab));
  Klist.add_tail ctx (fld ctx cache "kmem_cache" "partial") (fld ctx slab "slab" "slab_list");
  w32 ctx (fld ctx cache "kmem_cache" "nr_slabs") "atomic_t" "counter"
    (r32 ctx (fld ctx cache "kmem_cache" "nr_slabs") "atomic_t" "counter" + 1);
  slab

let cache_alloc t cache =
  let ctx = t.ctx in
  let partial = fld ctx cache "kmem_cache" "partial" in
  let slab =
    match Klist.containers ctx partial "slab" "slab_list" with
    | s :: _ -> s
    | [] -> new_slab t cache
  in
  let obj = r64 ctx slab "slab" "freelist" in
  assert (obj <> 0);
  let next_free = Kmem.read_u64 ctx.mem obj in
  w64 ctx slab "slab" "freelist" next_free;
  let inuse = slab_inuse ctx slab + 1 and objects = slab_objcount ctx slab in
  write_slab_counts ctx slab ~inuse ~objects ~frozen:0;
  if inuse = objects then begin
    Klist.del ctx (fld ctx slab "slab" "slab_list");
    Klist.add_tail ctx (fld ctx cache "kmem_cache" "full") (fld ctx slab "slab" "slab_list")
  end;
  (* Scrub the freelist link out of the returned object. *)
  Kmem.write_u64 ctx.mem obj 0;
  obj

(* Locate the slab owning [obj]: the one whose page payload contains it. *)
let slab_of t cache obj =
  let ctx = t.ctx in
  let candidates =
    Klist.containers ctx (fld ctx cache "kmem_cache" "partial") "slab" "slab_list"
    @ Klist.containers ctx (fld ctx cache "kmem_cache" "full") "slab" "slab_list"
  in
  List.find_opt
    (fun slab ->
      match Hashtbl.find_opt t.slab_bases slab with
      | Some base -> obj >= base && obj < base + Ktypes.page_size
      | None -> false)
    candidates

let cache_free t cache obj =
  match slab_of t cache obj with
  | None -> invalid_arg "Kslab.cache_free: object not in cache"
  | Some slab ->
      let ctx = t.ctx in
      let fl = r64 ctx slab "slab" "freelist" in
      Kmem.write_u64 ctx.mem obj fl;
      w64 ctx slab "slab" "freelist" obj;
      let inuse = slab_inuse ctx slab - 1 and objects = slab_objcount ctx slab in
      write_slab_counts ctx slab ~inuse ~objects ~frozen:0;
      if inuse = objects - 1 then begin
        Klist.del ctx (fld ctx slab "slab" "slab_list");
        Klist.add_tail ctx (fld ctx cache "kmem_cache" "partial") (fld ctx slab "slab" "slab_list")
      end

let caches t = Klist.containers t.ctx t.slab_caches "kmem_cache" "list"
