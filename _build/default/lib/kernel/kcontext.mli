(** Shared context for the simulated kernel: memory + type registry, plus
    terse field accessors used by all subsystem builders.

    Field offsets are memoized per (composite, path), since builders touch
    the same fields millions of times under the evaluation workload. *)

type addr = Kmem.addr

type t = {
  mem : Kmem.t;
  reg : Ctype.registry;
  off_cache : (string * string, int) Hashtbl.t;
  strings : (string, addr) Hashtbl.t;
}

val create : unit -> t
(** Fresh memory with all kernel types ({!Ktypes.define_all}) registered. *)

val off : t -> string -> string -> int
(** Memoized [offsetof]: [off ctx "task_struct" "se.vruntime"]. *)

val sizeof : t -> string -> int
(** [sizeof ctx "task_struct"]. *)

val alloc : ?align:int -> t -> string -> addr
(** Allocate one object of a registered composite, tagged with its name. *)

val alloc_n : t -> string -> int -> addr
(** Allocate an array of [n] objects (one allocation). *)

val alloc_raw : t -> string -> int -> addr
(** Allocate [size] raw bytes with a diagnostic tag. *)

val free : t -> addr -> unit

(** {1 Typed field accessors}

    [r64 ctx a "task_struct" "se.vruntime"] reads the field at the path's
    offset from base address [a]; [w*] are the matching writers. *)

val r8 : t -> addr -> string -> string -> int
val r16 : t -> addr -> string -> string -> int
val r32 : t -> addr -> string -> string -> int
val r64 : t -> addr -> string -> string -> int
val ri32 : t -> addr -> string -> string -> int
(** Sign-extended 32-bit read (for [int] fields like [pid]). *)

val w8 : t -> addr -> string -> string -> int -> unit
val w16 : t -> addr -> string -> string -> int -> unit
val w32 : t -> addr -> string -> string -> int -> unit
val w64 : t -> addr -> string -> string -> int -> unit

val wstr : t -> addr -> string -> string -> ?field_size:int -> string -> unit
(** Write a NUL-terminated string into a char-array field. *)

val rstr : t -> addr -> string -> string -> string
(** Read a NUL-terminated string from a char-array field. *)

val fld : t -> addr -> string -> string -> addr
(** Address of an embedded member: [fld ctx task "task_struct" "children"]. *)

val cstring : t -> string -> addr
(** Intern a C string in target memory (for [charp] fields); repeated
    interning of the same string returns the same address. *)
