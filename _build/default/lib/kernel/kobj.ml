(** The device model (ULK Fig 13-3): kobjects, ksets, devices, drivers
    and buses. *)

open Kcontext

type addr = Kmem.addr

let kobject_init ctx kobj ~name ~parent ~kset =
  w64 ctx kobj "kobject" "name" (cstring ctx name);
  w64 ctx kobj "kobject" "parent" parent;
  w64 ctx kobj "kobject" "kset" kset;
  w32 ctx (fld ctx kobj "kobject" "kref") "kref" "refcount.refs.counter" 1;
  Klist.init ctx (fld ctx kobj "kobject" "entry")

let new_kset ctx ~name ~parent =
  let ks = alloc ctx "kset" in
  Klist.init ctx (fld ctx ks "kset" "list");
  kobject_init ctx (fld ctx ks "kset" "kobj") ~name ~parent ~kset:0;
  ks

let new_kobject ctx ~name ~parent ~kset =
  let ko = alloc ctx "kobject" in
  kobject_init ctx ko ~name ~parent ~kset;
  if kset <> 0 then begin
    Klist.del ctx (fld ctx ko "kobject" "entry");
    Klist.add_tail ctx (fld ctx kset "kset" "list") (fld ctx ko "kobject" "entry")
  end;
  ko

let new_bus ctx ~name =
  let bus = alloc ctx "bus_type" in
  w64 ctx bus "bus_type" "name" (cstring ctx name);
  bus

let new_driver ctx funcs ~name ~bus =
  let drv = alloc ctx "device_driver" in
  w64 ctx drv "device_driver" "name" (cstring ctx name);
  w64 ctx drv "device_driver" "bus" bus;
  w64 ctx drv "device_driver" "probe" (Kfuncs.register funcs (name ^ "_probe"));
  drv

let new_device ctx ~name ~parent ~bus ~driver ~kset =
  let dev = alloc ctx "device" in
  kobject_init ctx (fld ctx dev "device" "kobj") ~name
    ~parent:(if parent = 0 then 0 else fld ctx parent "device" "kobj")
    ~kset;
  if kset <> 0 then begin
    Klist.del ctx (fld ctx dev "device" "kobj.entry");
    Klist.add_tail ctx (fld ctx kset "kset" "list") (fld ctx dev "device" "kobj.entry")
  end;
  w64 ctx dev "device" "parent" parent;
  w64 ctx dev "device" "bus" bus;
  w64 ctx dev "device" "driver" driver;
  dev

let kset_members ctx kset =
  Klist.containers ctx (fld ctx kset "kset" "list") "kobject" "entry"
