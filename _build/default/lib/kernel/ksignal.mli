(** Signal delivery structures (ULK Fig 11-1): shared [signal_struct],
    [sighand_struct] action tables, and pending queues. *)

type addr = Kmem.addr

val sig_dfl : int
val sig_ign : int

val new_sighand : Kcontext.t -> Kfuncs.t -> addr
(** A sighand_struct with all 64 actions at SIG_DFL. *)

val new_signal : Kcontext.t -> addr
(** A signal_struct for a fresh thread group (1 live thread). *)

val action_addr : Kcontext.t -> addr -> int -> addr
(** Address of the [k_sigaction] for a signal number (1-based). *)

val set_action :
  Kcontext.t -> Kfuncs.t -> addr -> signo:int ->
  handler:[ `Default | `Ignore | `Handler of string ] -> flags:int -> unit
(** Install a handler, as sigaction(2); named handlers become function
    symbols in the simulated text section. *)

val handler_of : Kcontext.t -> addr -> int -> int
(** The handler value (0 = SIG_DFL, 1 = SIG_IGN, else a text address). *)

val send_signal : Kcontext.t -> addr -> signo:int -> from_pid:int -> unit
(** Queue a signal on a [sigpending] (task-private or shared): allocates
    a sigqueue and sets the sigset bit. *)

val pending_signals : Kcontext.t -> addr -> addr list
(** The queued sigqueues of a sigpending. *)
