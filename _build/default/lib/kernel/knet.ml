(** Sockets (the paper's added "socket connection" figure, Table 2 #21):
    [socket]/[sock] pairs with send/receive [sk_buff] queues. *)

open Kcontext

type addr = Kmem.addr

let af_inet = 2
let sock_stream = 1
let tcp_established = 1

let skb_queue_init ctx q =
  (* sk_buff_head doubles as a sk_buff for linkage: next/prev point back
     to the head itself when empty, as in the kernel. *)
  w64 ctx q "sk_buff_head" "next" q;
  w64 ctx q "sk_buff_head" "prev" q;
  w32 ctx q "sk_buff_head" "qlen" 0

(** Create a connected socket; returns (socket, sock, file). *)
let socket ctx vfs funcs ~laddr ~lport ~raddr ~rport =
  let sk = alloc ctx "sock" in
  w32 ctx sk "sock" "skc_rcv_saddr" laddr;
  w16 ctx sk "sock" "skc_num" lport;
  w32 ctx sk "sock" "skc_daddr" raddr;
  w16 ctx sk "sock" "skc_dport" rport;
  w16 ctx sk "sock" "skc_family" af_inet;
  w8 ctx sk "sock" "skc_state" tcp_established;
  w32 ctx sk "sock" "sk_sndbuf" 16384;
  w32 ctx sk "sock" "sk_rcvbuf" 131072;
  skb_queue_init ctx (fld ctx sk "sock" "sk_receive_queue");
  skb_queue_init ctx (fld ctx sk "sock" "sk_write_queue");
  let so = alloc ctx "socket" in
  w32 ctx so "socket" "state" 3 (* SS_CONNECTED *);
  w16 ctx so "socket" "type" sock_stream;
  w64 ctx so "socket" "sk" sk;
  w64 ctx so "socket" "ops" (Kfuncs.register funcs "inet_stream_ops");
  w64 ctx sk "sock" "sk_socket" so;
  let ino = Kvfs.new_inode vfs 0 ~mode:0o140777 ~size:0 in
  let d = Kvfs.new_dentry vfs ~parent:0 ~name:"socket:" ~inode:ino ~sb:0 in
  let f = Kvfs.open_dentry vfs d ~flags:0 in
  w64 ctx f "file" "private_data" so;
  w64 ctx f "file" "f_op" (Kfuncs.register funcs "socket_file_ops");
  w64 ctx so "socket" "file" f;
  (so, sk, f)

(** Append an skb of [len] payload bytes to queue [q]. *)
let skb_queue_tail ctx q ~len =
  let skb = alloc ctx "sk_buff" in
  w32 ctx skb "sk_buff" "len" len;
  let data = alloc_raw ctx "skb_data" (max len 64) in
  w64 ctx skb "sk_buff" "head" data;
  w64 ctx skb "sk_buff" "data" data;
  let prev = r64 ctx q "sk_buff_head" "prev" in
  w64 ctx skb "sk_buff" "next" q;
  w64 ctx skb "sk_buff" "prev" prev;
  w64 ctx prev "sk_buff" "next" skb;
  w64 ctx q "sk_buff_head" "prev" skb;
  w32 ctx q "sk_buff_head" "qlen" (r32 ctx q "sk_buff_head" "qlen" + 1);
  skb

let queue_skbs ctx q =
  let rec go s acc = if s = q then List.rev acc else go (r64 ctx s "sk_buff" "next") (s :: acc) in
  go (r64 ctx q "sk_buff_head" "next") []
