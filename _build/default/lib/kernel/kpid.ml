(** PID bookkeeping: the classic PID hash table (ULK Fig 3-6) plus
    [struct pid] / [upid] and the namespace IDR of modern kernels. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  pid_hash : addr;  (** array of hlist_head[PIDHASH_SZ] *)
  init_pid_ns : addr;
}

let hash_sz = Ktypes.pidhash_sz

(* 32-bit golden-ratio hash, as hash_32. *)
let pid_hashfn nr = (nr * 0x9e370001) lsr 16 land (hash_sz - 1)

let create ctx =
  let pid_hash = alloc_n ctx "hlist_head" hash_sz in
  for i = 0 to hash_sz - 1 do
    Khlist.init_head ctx (pid_hash + (i * sizeof ctx "hlist_head"))
  done;
  let init_pid_ns = alloc ctx "pid_namespace" in
  w32 ctx init_pid_ns "pid_namespace" "level" 0;
  Kxarray.init ctx (fld ctx init_pid_ns "pid_namespace" "idr.idr_rt");
  { ctx; pid_hash; init_pid_ns }

let bucket t i = t.pid_hash + (i * sizeof t.ctx "hlist_head")

(** Allocate a [struct pid] for number [nr]: hashes the embedded [upid]
    into the PID hash table and stores it in the namespace IDR. *)
let alloc_pid t nr =
  let ctx = t.ctx in
  let pid = alloc ctx "pid" in
  w32 ctx (fld ctx pid "pid" "count") "refcount_t" "refs.counter" 1;
  w32 ctx pid "pid" "level" 0;
  let upid = fld ctx pid "pid" "numbers" in
  w32 ctx upid "upid" "nr" nr;
  w64 ctx upid "upid" "ns" t.init_pid_ns;
  Khlist.add_head ctx (bucket t (pid_hashfn nr)) (fld ctx upid "upid" "pid_chain");
  Kxarray.store ctx (fld ctx t.init_pid_ns "pid_namespace" "idr.idr_rt") nr pid;
  let count = r32 ctx t.init_pid_ns "pid_namespace" "pid_allocated" in
  w32 ctx t.init_pid_ns "pid_namespace" "pid_allocated" (count + 1);
  pid

(** Find a [struct pid] by number through the hash table (read path). *)
let find_pid t nr =
  let ctx = t.ctx in
  let upids = Khlist.containers ctx (bucket t (pid_hashfn nr)) "upid" "pid_chain" in
  List.find_opt (fun u -> r32 ctx u "upid" "nr" = nr) upids
  |> Option.map (fun u -> u - off ctx "pid" "numbers")

let bucket_pids t i =
  List.map
    (fun u -> u - off t.ctx "pid" "numbers")
    (Khlist.containers t.ctx (bucket t i) "upid" "pid_chain")
