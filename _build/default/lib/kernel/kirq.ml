(** IRQ descriptors (ULK Fig 4-5): the [irq_desc] table with chips and
    chained [irqaction]s. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  descs : addr;  (** array of irq_desc[NR_IRQS] *)
}

let create ctx funcs =
  let descs = alloc_n ctx "irq_desc" Ktypes.nr_irqs in
  let t = { ctx; funcs; descs } in
  for irq = 0 to Ktypes.nr_irqs - 1 do
    let d = descs + (irq * sizeof ctx "irq_desc") in
    w32 ctx d "irq_desc" "irq_data.irq" irq;
    w64 ctx d "irq_desc" "irq_data.hwirq" irq;
    w64 ctx d "irq_desc" "handle_irq" (Kfuncs.register funcs "handle_edge_irq");
    w32 ctx d "irq_desc" "depth" 1
  done;
  t

let desc t irq = t.descs + (irq * sizeof t.ctx "irq_desc")

let set_chip t ~irq ~chip_name =
  let ctx = t.ctx in
  let chip = alloc ctx "irq_chip" in
  w64 ctx chip "irq_chip" "name" (cstring ctx chip_name);
  w64 ctx (desc t irq) "irq_desc" "irq_data.chip" chip;
  chip

(** request_irq: append an irqaction to the descriptor's chain. *)
let request_irq t ~irq ~name ~handler =
  let ctx = t.ctx in
  let d = desc t irq in
  let act = alloc ctx "irqaction" in
  w64 ctx act "irqaction" "handler" (Kfuncs.register t.funcs handler);
  w32 ctx act "irqaction" "irq" irq;
  w64 ctx act "irqaction" "name" (cstring ctx name);
  let rec chain_tail a = if a = 0 then 0 else
    let n = r64 ctx a "irqaction" "next" in
    if n = 0 then a else chain_tail n
  in
  (match chain_tail (r64 ctx d "irq_desc" "action") with
  | 0 -> w64 ctx d "irq_desc" "action" act
  | tail -> w64 ctx tail "irqaction" "next" act);
  w32 ctx d "irq_desc" "depth" 0;
  act

let actions t ~irq =
  let ctx = t.ctx in
  let rec go a acc = if a = 0 then List.rev acc else go (r64 ctx a "irqaction" "next") (a :: acc) in
  go (r64 ctx (desc t irq) "irq_desc" "action") []
