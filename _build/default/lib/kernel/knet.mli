(** Sockets (the paper's added "socket connection" figure): [socket] /
    [sock] pairs with send/receive [sk_buff] queues. *)

type addr = Kmem.addr

val af_inet : int
val sock_stream : int
val tcp_established : int

val socket :
  Kcontext.t -> Kvfs.t -> Kfuncs.t ->
  laddr:int -> lport:int -> raddr:int -> rport:int -> addr * addr * addr
(** A connected stream socket: (socket, sock, file). The file's
    [private_data] points at the socket, its [f_op] at
    [socket_file_ops]. *)

val skb_queue_init : Kcontext.t -> addr -> unit

val skb_queue_tail : Kcontext.t -> addr -> len:int -> addr
(** Append an sk_buff with [len] payload bytes; maintains qlen and the
    circular next/prev links. *)

val queue_skbs : Kcontext.t -> addr -> addr list
(** The buffers of a queue, head to tail. *)
