(** Reverse mapping of anonymous pages (ULK Fig 17-1): [anon_vma]s with
    their interval trees of [anon_vma_chain]s. *)

type addr = Kmem.addr

val prepare : Kcontext.t -> addr -> addr
(** anon_vma_prepare: give a VMA an anon_vma (idempotent); creates the
    first chain and inserts it into the interval tree. Returns the
    anon_vma. *)

val clone_into : Kcontext.t -> anon_vma:addr -> addr -> addr
(** Link another VMA (e.g. after fork) into an existing anon_vma via a
    fresh chain; returns the anon_vma_chain. *)

val vmas_of : Kcontext.t -> addr -> addr list
(** All VMAs mapped under an anon_vma, via its interval tree — the rmap
    walk. *)
