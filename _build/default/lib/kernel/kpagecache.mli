(** The page cache (ULK Fig 15-1): an [address_space] whose [i_pages]
    XArray maps file page indices to [struct page]s from the buddy
    allocator. *)

type addr = Kmem.addr

val find_or_create_page :
  Kcontext.t -> Kbuddy.t -> addr -> int -> ?data:string -> unit -> addr
(** Get-or-create the cache page of [mapping] at an index, filling its
    payload with [data] when given; bumps [nrpages] on creation. *)

val populate : Kcontext.t -> Kbuddy.t -> addr -> npages:int -> fill:(int -> string) -> addr list
(** Readahead-style population of the first [npages] pages. *)

val lookup : Kcontext.t -> addr -> int -> addr
(** find_get_page: 0 when absent. *)

val pages : Kcontext.t -> addr -> addr list
(** All cached pages of a mapping, in index order. *)

val mark_dirty : Kcontext.t -> addr -> unit
