(** Syscall-level façade over the simulated kernel — what the evaluation
    workload and the CVE reproductions drive.

    All operations mutate real simulated memory through the subsystem
    modules, so their effects are visible to the debugger side exactly as
    on a live kernel. *)

type addr = Kmem.addr

(** {1 Address-space layout constants (process image)} *)

val code_base : int
val data_base : int
val heap_base : int
val lib_base : int
val stack_top : int

(** {1 Processes and threads} *)

val spawn_process : Kstate.t -> parent:addr -> comm:string -> cpu:int -> addr
(** fork + exec: a new process with the standard VM image (code/rodata/
    data from its executable, heap, libc mappings, grows-down stack), an
    fd table with stdin/out/err, fresh signal structures; registered in
    the pid tables and enqueued on [cpu]'s CFS runqueue. *)

val spawn_thread : Kstate.t -> leader:addr -> comm:string -> cpu:int -> addr
(** pthread_create: shares the leader's mm, files, signal and sighand. *)

val spawn_kthread : Kstate.t -> comm:string -> cpu:int -> addr
(** A kernel thread (no mm, PF_KTHREAD). *)

val files_of : Kstate.t -> addr -> addr
val mm_of : Kstate.t -> addr -> addr

val binary_file : Kstate.t -> string -> addr
(** Get-or-create a shared binary in the rootfs (with cached pages). *)

(** {1 Files and memory} *)

val openat : Kstate.t -> addr -> name:string -> size:int -> int * addr
(** open(2): creates the file under / with populated page cache; returns
    (fd, file). *)

val mmap_file : Kstate.t -> addr -> file:addr -> start:int -> npages:int -> writable:bool -> addr
val mmap_anon : Kstate.t -> addr -> start:int -> npages:int -> writable:bool -> addr
(** Anonymous mapping; prepares the reverse map (anon_vma). *)

val munmap : Kstate.t -> addr -> addr -> unit

(** {1 Pipes, splice, sockets} *)

val pipe : Kstate.t -> addr -> addr * int * int
(** pipe(2): returns (pipe_inode_info, read_fd, write_fd). *)

val write_pipe : Kstate.t -> addr -> string -> unit
(** Ordinary pipe write: allocates a page, sets CAN_MERGE (as anon pipe
    buffers do). *)

val splice : Kstate.t -> file:addr -> pipe:addr -> index:int -> len:int -> buggy:bool -> addr
(** splice(2) file->pipe, zero-copy: the pipe buffer references the
    page-cache page itself. With [buggy:true] the buffer's [flags] word is
    left uninitialized — CVE-2022-0847. Returns the pipe_buffer. *)

val socket : Kstate.t -> addr -> lport:int -> rport:int -> backlog_skbs:int -> addr * addr * int
(** A connected TCP socket installed in the task's fd table; returns
    (socket, sock, fd). [backlog_skbs] pre-queues receive buffers. *)

(** {1 Process lifecycle} *)

val exit_task : Kstate.t -> addr -> code:int -> unit
(** exit(2): dequeue from the runqueue, turn the task into a zombie
    (EXIT_ZOMBIE, visible to [task_state]), reparent its children to
    init, and queue SIGCHLD to the parent. *)

val reap_task : Kstate.t -> addr -> unit
(** wait(2)/release_task: unlink a zombie from the process tree and the
    global task list and free its task_struct.
    @raise Invalid_argument if the task is not a zombie. *)

(** {1 Signals} *)

val kill : Kstate.t -> target:addr -> signo:int -> from:addr -> unit

val sigaction :
  Kstate.t -> addr -> signo:int -> handler:[ `Default | `Ignore | `Handler of string ] -> unit
