(** Dynamic timers (ULK Fig 6-1): per-CPU timer wheels whose buckets are
    hlists of [timer_list]s. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  bases : addr array;  (** per-CPU [timer_base] *)
  mutable jiffies : int;
}

val wheel_size : int

val create : Kcontext.t -> Kfuncs.t -> ncpus:int -> t

val add_timer : t -> cpu:int -> delta:int -> string -> addr
(** Arm a timer [delta] jiffies in the future, running the named
    function; returns the timer_list. *)

val pending : t -> cpu:int -> addr list
(** Armed timers of a CPU's wheel. *)

val bucket : t -> cpu:int -> int -> addr
(** Address of wheel bucket [i]. *)

val advance : t -> int -> unit
(** Advance jiffies without firing anything. *)

val run_timers : t -> int -> addr list
(** Advance by [n] jiffies and fire every expired timer on every CPU in
    expiry order, invoking registered implementations; returns the fired
    timers. *)
