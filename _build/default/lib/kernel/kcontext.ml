(** Shared context for the simulated kernel: memory + type registry, plus
    terse field accessors used by all subsystem builders.

    Field offsets are memoized per (composite, path) since builders touch
    the same fields millions of times under the evaluation workload. *)

type addr = Kmem.addr

type t = {
  mem : Kmem.t;
  reg : Ctype.registry;
  off_cache : (string * string, int) Hashtbl.t;
  strings : (string, addr) Hashtbl.t;
}

let create () =
  let reg = Ctype.create_registry () in
  Ktypes.define_all reg;
  { mem = Kmem.create (); reg; off_cache = Hashtbl.create 512; strings = Hashtbl.create 64 }

let off ctx comp path =
  match Hashtbl.find_opt ctx.off_cache (comp, path) with
  | Some o -> o
  | None ->
      let o = Ctype.offsetof ctx.reg comp path in
      Hashtbl.add ctx.off_cache (comp, path) o;
      o

let sizeof ctx name = Ctype.sizeof ctx.reg (Ctype.Named name)

let alloc ?align ctx name = Kmem.alloc ctx.mem ?align ~tag:name (sizeof ctx name)

let alloc_n ctx name n =
  Kmem.alloc ctx.mem ~tag:(Printf.sprintf "%s[%d]" name n) (n * sizeof ctx name)

let alloc_raw ctx tag size = Kmem.alloc ctx.mem ~tag size
let free ctx a = Kmem.free ctx.mem a

(* Typed field accessors: [r64 ctx a "task_struct" "se.vruntime"]. *)
let r8 ctx a comp path = Kmem.read_u8 ctx.mem (a + off ctx comp path)
let r16 ctx a comp path = Kmem.read_u16 ctx.mem (a + off ctx comp path)
let r32 ctx a comp path = Kmem.read_u32 ctx.mem (a + off ctx comp path)
let r64 ctx a comp path = Kmem.read_u64 ctx.mem (a + off ctx comp path)
let ri32 ctx a comp path = Kmem.read_i32 ctx.mem (a + off ctx comp path)
let w8 ctx a comp path v = Kmem.write_u8 ctx.mem (a + off ctx comp path) v
let w16 ctx a comp path v = Kmem.write_u16 ctx.mem (a + off ctx comp path) v
let w32 ctx a comp path v = Kmem.write_u32 ctx.mem (a + off ctx comp path) v
let w64 ctx a comp path v = Kmem.write_u64 ctx.mem (a + off ctx comp path) v

let wstr ctx a comp path ?field_size s =
  Kmem.write_cstring ctx.mem (a + off ctx comp path) ?field_size s

let rstr ctx a comp path = Kmem.read_cstring ctx.mem (a + off ctx comp path)

(* Address of an embedded member, e.g. the [children] list_head inside a
   task_struct. *)
let fld ctx a comp path = a + off ctx comp path

(* Interned C strings (object names etc.) so that charp fields point at
   real target memory. *)
let cstring ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some a -> a
  | None ->
      let a = Kmem.alloc ctx.mem ~tag:"char[]" (String.length s + 1) in
      Kmem.write_cstring ctx.mem a s;
      Hashtbl.add ctx.strings s a;
      a
