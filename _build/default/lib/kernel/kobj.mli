(** The device model (ULK Fig 13-3): kobjects, ksets, devices, drivers
    and buses. *)

type addr = Kmem.addr

val kobject_init : Kcontext.t -> addr -> name:string -> parent:addr -> kset:addr -> unit

val new_kset : Kcontext.t -> name:string -> parent:addr -> addr
val new_kobject : Kcontext.t -> name:string -> parent:addr -> kset:addr -> addr
(** Registered on the kset's member list when [kset] is non-zero. *)

val new_bus : Kcontext.t -> name:string -> addr
val new_driver : Kcontext.t -> Kfuncs.t -> name:string -> bus:addr -> addr
(** Gets a [<name>_probe] function symbol. *)

val new_device :
  Kcontext.t -> name:string -> parent:addr -> bus:addr -> driver:addr -> kset:addr -> addr
(** A device whose embedded kobject parents to the parent device's
    kobject. *)

val kset_members : Kcontext.t -> addr -> addr list
