(** The XArray ([struct xarray]) on raw simulated memory.

    This is the Linux 6.1 successor of the radix tree; it backs the page
    cache (ULK Fig 15-1) and the IDR used by IPC and PID namespaces.
    Internal node pointers are tagged with low bits [10b] exactly as the
    kernel's [xa_mk_node]; leaf entries are untagged object pointers. *)

open Kcontext

type addr = Kmem.addr

let chunk_shift = Ktypes.xa_chunk_shift
let chunk_size = Ktypes.xa_chunk_size
let chunk_mask = chunk_size - 1

(* Entry tagging, as in xarray.h *)
let node_tag = 2
let is_node e = e land 3 = node_tag && e > 4096
let to_node e = e land lnot 3
let mk_node n = n lor node_tag

let head ctx xa = r64 ctx xa "xarray" "xa_head"
let set_head ctx xa v = w64 ctx xa "xarray" "xa_head" v

let init ctx xa = set_head ctx xa 0

let node_shift ctx n = r8 ctx n "xa_node" "shift"
let node_count ctx n = r8 ctx n "xa_node" "count"

let slot_addr ctx n i = fld ctx n "xa_node" "slots" + (8 * i)
let slot ctx n i = Kmem.read_u64 ctx.mem (slot_addr ctx n i)
let set_slot ctx n i v = Kmem.write_u64 ctx.mem (slot_addr ctx n i) v

let alloc_node ctx xa ~shift ~parent ~offset =
  let n = alloc ctx "xa_node" in
  w8 ctx n "xa_node" "shift" shift;
  w8 ctx n "xa_node" "offset" offset;
  w64 ctx n "xa_node" "parent" parent;
  w64 ctx n "xa_node" "array" xa;
  n

(* Maximum index representable under the current head. *)
let max_index ctx xa =
  match head ctx xa with
  | 0 -> -1
  | e when not (is_node e) -> 0
  | e ->
      let shift = node_shift ctx (to_node e) in
      (1 lsl (shift + chunk_shift)) - 1

(* Grow the tree until [index] fits. *)
let rec expand ctx xa index =
  if index > max_index ctx xa then begin
    let old = head ctx xa in
    if old = 0 then begin
      (* Empty: create a node tall enough directly. *)
      let rec need_shift s = if index <= (1 lsl (s + chunk_shift)) - 1 then s else need_shift (s + chunk_shift) in
      let n = alloc_node ctx xa ~shift:(need_shift 0) ~parent:0 ~offset:0 in
      set_head ctx xa (mk_node n)
    end
    else begin
      let old_shift = if is_node old then node_shift ctx (to_node old) + chunk_shift else 0 in
      let n = alloc_node ctx xa ~shift:old_shift ~parent:0 ~offset:0 in
      set_slot ctx n 0 old;
      w8 ctx n "xa_node" "count" 1;
      if is_node old then w64 ctx (to_node old) "xa_node" "parent" n;
      set_head ctx xa (mk_node n)
    end;
    expand ctx xa index
  end

let store ctx xa index value =
  if index = 0 && head ctx xa = 0 && value <> 0 then set_head ctx xa value
  else begin
    (* A direct entry at index 0 must be pushed down into a node first. *)
    (match head ctx xa with
    | 0 -> ()
    | e when not (is_node e) ->
        let n = alloc_node ctx xa ~shift:0 ~parent:0 ~offset:0 in
        set_slot ctx n 0 e;
        w8 ctx n "xa_node" "count" 1;
        set_head ctx xa (mk_node n)
    | _ -> ());
    expand ctx xa index;
    let rec descend node =
      let shift = node_shift ctx node in
      let i = (index lsr shift) land chunk_mask in
      if shift = 0 then begin
        let old = slot ctx node i in
        set_slot ctx node i value;
        let c = node_count ctx node in
        let c = if old = 0 && value <> 0 then c + 1 else if old <> 0 && value = 0 then c - 1 else c in
        w8 ctx node "xa_node" "count" c
      end
      else begin
        let child = slot ctx node i in
        let child_node =
          if is_node child then to_node child
          else begin
            let n = alloc_node ctx xa ~shift:(shift - chunk_shift) ~parent:node ~offset:i in
            set_slot ctx node i (mk_node n);
            w8 ctx node "xa_node" "count" (node_count ctx node + 1);
            n
          end
        in
        descend child_node
      end
    in
    match head ctx xa with
    | e when is_node e -> descend (to_node e)
    | _ -> if value <> 0 then set_head ctx xa value
  end

let load ctx xa index =
  let rec descend node =
    let shift = node_shift ctx node in
    let i = (index lsr shift) land chunk_mask in
    let child = slot ctx node i in
    if shift = 0 then child
    else if is_node child then descend (to_node child)
    else 0
  in
  match head ctx xa with
  | 0 -> 0
  | e when not (is_node e) -> if index = 0 then e else 0
  | e -> if index > max_index ctx xa then 0 else descend (to_node e)

(** All (index, entry) pairs in index order. *)
let entries ctx xa =
  let acc = ref [] in
  let rec walk e base =
    if e <> 0 then
      if not (is_node e) then acc := (base, e) :: !acc
      else begin
        let node = to_node e in
        let shift = node_shift ctx node in
        for i = 0 to chunk_size - 1 do
          let child = slot ctx node i in
          if child <> 0 then
            if shift = 0 then acc := (base + i, child) :: !acc
            else walk child (base + (i lsl shift))
        done
      end
  in
  walk (head ctx xa) 0;
  List.rev !acc

let count ctx xa = List.length (entries ctx xa)
