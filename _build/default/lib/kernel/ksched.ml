(** The CFS scheduler (ULK Fig 7-1): per-CPU runqueues whose
    [tasks_timeline] is a cached red-black tree of [sched_entity]s ordered
    by virtual runtime, exactly the structure the paper's first ViewCL
    example plots. *)

open Kcontext

type addr = Kmem.addr

let init_rq ctx rq ~cpu ~idle =
  w32 ctx rq "rq" "cpu" cpu;
  w32 ctx rq "rq" "nr_running" 0;
  w64 ctx rq "rq" "curr" idle;
  w64 ctx rq "rq" "idle" idle;
  w64 ctx rq "rq" "cfs.min_vruntime" 0;
  w64 ctx rq "rq" "cfs.tasks_timeline.rb_root.rb_node" 0;
  w64 ctx rq "rq" "cfs.tasks_timeline.rb_leftmost" 0

let se_of ctx task = fld ctx task "task_struct" "se"
let task_of ctx se = se - off ctx "task_struct" "se"

let vruntime_of_node ctx node =
  let se = node - off ctx "sched_entity" "run_node" in
  r64 ctx se "sched_entity" "vruntime"

(** Place [task] on [rq]'s CFS timeline with the given virtual runtime. *)
let enqueue_task ctx rq task ~vruntime =
  let se = se_of ctx task in
  w64 ctx se "sched_entity" "vruntime" vruntime;
  w32 ctx se "sched_entity" "on_rq" 1;
  w64 ctx se "sched_entity" "load.weight" 1024;
  let croot = fld ctx rq "rq" "cfs.tasks_timeline" in
  let less a b = vruntime_of_node ctx a < vruntime_of_node ctx b in
  Krbtree.insert_cached ctx croot ~less (fld ctx se "sched_entity" "run_node");
  w32 ctx rq "rq" "cfs.nr_running" (r32 ctx rq "rq" "cfs.nr_running" + 1);
  w32 ctx rq "rq" "cfs.h_nr_running" (r32 ctx rq "rq" "cfs.h_nr_running" + 1);
  w32 ctx rq "rq" "nr_running" (r32 ctx rq "rq" "nr_running" + 1);
  let minv = r64 ctx rq "rq" "cfs.min_vruntime" in
  if vruntime < minv || r32 ctx rq "rq" "cfs.nr_running" = 1 then
    w64 ctx rq "rq" "cfs.min_vruntime" vruntime

let dequeue_task ctx rq task =
  let se = se_of ctx task in
  w32 ctx se "sched_entity" "on_rq" 0;
  let croot = fld ctx rq "rq" "cfs.tasks_timeline" in
  Krbtree.erase_cached ctx croot (fld ctx se "sched_entity" "run_node");
  w32 ctx rq "rq" "cfs.nr_running" (r32 ctx rq "rq" "cfs.nr_running" - 1);
  w32 ctx rq "rq" "cfs.h_nr_running" (r32 ctx rq "rq" "cfs.h_nr_running" - 1);
  w32 ctx rq "rq" "nr_running" (r32 ctx rq "rq" "nr_running" - 1)

(** Leftmost entity = next task to run. *)
let pick_next ctx rq =
  let lm = r64 ctx rq "rq" "cfs.tasks_timeline.rb_leftmost" in
  if lm = 0 then 0 else task_of ctx (lm - off ctx "sched_entity" "run_node")

(** Make [task] the running task on [rq] (dequeues it, as CFS does). *)
let set_curr ctx rq task =
  w64 ctx rq "rq" "curr" task;
  w64 ctx rq "rq" "cfs.curr" (se_of ctx task);
  w32 ctx task "task_struct" "on_cpu" 1

(** One scheduler tick on [rq]: charge the running task [delta] ns of
    virtual runtime and preempt it when it is no longer leftmost —
    re-enqueueing it and switching to the new leftmost task. Returns the
    task now running. *)
let task_tick ctx rq ~delta =
  let curr = r64 ctx rq "rq" "curr" in
  let idle = r64 ctx rq "rq" "idle" in
  if curr = 0 || curr = idle then begin
    (* idle: just try to pick someone *)
    let lm = r64 ctx rq "rq" "cfs.tasks_timeline.rb_leftmost" in
    if lm = 0 then curr
    else begin
      let next = task_of ctx (lm - off ctx "sched_entity" "run_node") in
      dequeue_task ctx rq next;
      set_curr ctx rq next;
      next
    end
  end
  else begin
    let se = se_of ctx curr in
    let v = r64 ctx se "sched_entity" "vruntime" + delta in
    w64 ctx se "sched_entity" "vruntime" v;
    w64 ctx se "sched_entity" "sum_exec_runtime" (r64 ctx se "sched_entity" "sum_exec_runtime" + delta);
    let lm = r64 ctx rq "rq" "cfs.tasks_timeline.rb_leftmost" in
    if lm = 0 then curr
    else begin
      let leftmost_v = vruntime_of_node ctx lm in
      if leftmost_v < v then begin
        (* preempt: curr back on the timeline, leftmost becomes curr *)
        let next = task_of ctx (lm - off ctx "sched_entity" "run_node") in
        dequeue_task ctx rq next;
        w32 ctx curr "task_struct" "on_cpu" 0;
        enqueue_task ctx rq curr ~vruntime:v;
        set_curr ctx rq next;
        next
      end
      else curr
    end
  end

(** Migrate a queued task to another runqueue (as load balancing or
    sched_setaffinity would): dequeue, retag the task's cpu, enqueue on
    the destination preserving its virtual runtime. *)
let migrate_task ctx ~src ~dst task =
  let se = se_of ctx task in
  let v = r64 ctx se "sched_entity" "vruntime" in
  if r32 ctx se "sched_entity" "on_rq" <> 0 then dequeue_task ctx src task;
  w32 ctx task "task_struct" "cpu" (r32 ctx dst "rq" "cpu");
  enqueue_task ctx dst task ~vruntime:v

(** Tasks on the timeline in vruntime order. *)
let queued_tasks ctx rq =
  let croot = fld ctx rq "rq" "cfs.tasks_timeline" in
  Krbtree.containers ctx (Krbtree.cached_root ctx croot) "sched_entity" "run_node"
  |> List.map (task_of ctx)
