(** Simulated kernel text: function-pointer values.

    Kernel objects carry function pointers (work handlers, pipe buffer
    ops, signal handlers, RCU callbacks ...). We give every named kernel
    function a unique fake text address so that (a) function-pointer
    fields contain realistic values, (b) the FunPtr text decorator can
    resolve them back to names like GDB does with symbols, and (c) RCU can
    dispatch callbacks to OCaml implementations. *)

type addr = Kmem.addr

let text_base = 0x2000_0000_0000

type t = {
  by_addr : (addr, string) Hashtbl.t;
  by_name : (string, addr) Hashtbl.t;
  impls : (addr, addr -> unit) Hashtbl.t;  (** callback impl: arg = object address *)
  mutable cursor : addr;
}

let create () =
  { by_addr = Hashtbl.create 64; by_name = Hashtbl.create 64; impls = Hashtbl.create 16;
    cursor = text_base }

(** Register (or look up) a function symbol; returns its text address. *)
let register t name =
  match Hashtbl.find_opt t.by_name name with
  | Some a -> a
  | None ->
      let a = t.cursor in
      t.cursor <- t.cursor + 16;
      Hashtbl.add t.by_name name a;
      Hashtbl.add t.by_addr a name;
      a

(** Register a function with an executable OCaml body (for RCU callbacks,
    timer functions, work functions). *)
let register_impl t name impl =
  let a = register t name in
  Hashtbl.replace t.impls a impl;
  a

let name_of t a = Hashtbl.find_opt t.by_addr a
let addr_of t name = Hashtbl.find_opt t.by_name name
let impl_of t a = Hashtbl.find_opt t.impls a

let invoke t fn_addr arg =
  match impl_of t fn_addr with
  | Some impl -> impl arg
  | None ->
      invalid_arg
        (Printf.sprintf "Kfuncs.invoke: %s has no implementation"
           (Option.value (name_of t fn_addr) ~default:(Printf.sprintf "0x%x" fn_addr)))
