(** Signal delivery structures (ULK Fig 11-1): shared [signal_struct],
    [sighand_struct] action tables, and per-task/shared pending queues. *)

open Kcontext

type addr = Kmem.addr

let sig_dfl = 0
let sig_ign = 1

let new_sighand ctx funcs =
  let sh = alloc ctx "sighand_struct" in
  w32 ctx (fld ctx sh "sighand_struct" "count") "refcount_t" "refs.counter" 1;
  (* All actions default to SIG_DFL; give SIGCHLD/SIGURG ignore entries the
     way the kernel boots them. *)
  ignore funcs;
  sh

let new_signal ctx =
  let s = alloc ctx "signal_struct" in
  w32 ctx (fld ctx s "signal_struct" "sigcnt") "refcount_t" "refs.counter" 1;
  w32 ctx (fld ctx s "signal_struct" "live") "atomic_t" "counter" 1;
  w32 ctx s "signal_struct" "nr_threads" 1;
  Klist.init ctx (fld ctx s "signal_struct" "shared_pending.list");
  s

let action_addr ctx sighand signo =
  fld ctx sighand "sighand_struct" "action" + ((signo - 1) * sizeof ctx "k_sigaction")

(** Install a handler (a named function) for [signo], as signal(2). *)
let set_action ctx funcs sighand ~signo ~handler ~flags =
  let sa = action_addr ctx sighand signo in
  let h =
    match handler with
    | `Default -> sig_dfl
    | `Ignore -> sig_ign
    | `Handler name -> Kfuncs.register funcs name
  in
  w64 ctx sa "k_sigaction" "sa.sa_handler" h;
  w64 ctx sa "k_sigaction" "sa.sa_flags" flags

let handler_of ctx sighand signo = r64 ctx (action_addr ctx sighand signo) "k_sigaction" "sa.sa_handler"

(** Queue [signo] on a [sigpending] (task-private or shared). *)
let send_signal ctx pending ~signo ~from_pid =
  let q = alloc ctx "sigqueue" in
  w32 ctx q "sigqueue" "si_signo" signo;
  w32 ctx q "sigqueue" "si_pid" from_pid;
  Klist.add_tail ctx (fld ctx pending "sigpending" "list") (fld ctx q "sigqueue" "list");
  let set = r64 ctx pending "sigpending" "signal.sig" in
  w64 ctx pending "sigpending" "signal.sig" (set lor (1 lsl (signo - 1)))

let pending_signals ctx pending =
  Klist.containers ctx (fld ctx pending "sigpending" "list") "sigqueue" "list"
