(** Pipes and the splice zero-copy path (CVE-2022-0847, "Dirty Pipe").

    A [pipe_inode_info] owns a ring of [pipe_buffer]s referencing pages.
    [splice_from_file] attaches a *page-cache page* to a pipe buffer
    without copying — and, when [~buggy:true], reproduces the Dirty Pipe
    flaw: [copy_page_to_iter_pipe] leaves the buffer [flags] field
    uninitialized, so a stale [PIPE_BUF_FLAG_CAN_MERGE] makes the shared
    page writable through the pipe. *)

open Kcontext

type addr = Kmem.addr

(** Create a pipe: returns (pipe, read_file, write_file) — an anonymous
    inode carrying [i_pipe], opened twice. *)
let create ctx vfs funcs =
  let pipe = alloc ctx "pipe_inode_info" in
  let nbufs = Ktypes.pipe_def_buffers in
  w32 ctx pipe "pipe_inode_info" "ring_size" nbufs;
  w32 ctx pipe "pipe_inode_info" "max_usage" nbufs;
  w32 ctx pipe "pipe_inode_info" "readers" 1;
  w32 ctx pipe "pipe_inode_info" "writers" 1;
  let bufs = alloc_n ctx "pipe_buffer" nbufs in
  w64 ctx pipe "pipe_inode_info" "bufs" bufs;
  let ino = Kvfs.new_inode vfs 0 ~mode:0o10600 ~size:0 in
  w64 ctx ino "inode" "i_pipe" pipe;
  let d = Kvfs.new_dentry vfs ~parent:0 ~name:"pipe:" ~inode:ino ~sb:0 in
  let rf = Kvfs.open_dentry vfs d ~flags:0 in
  let wf = Kvfs.open_dentry vfs d ~flags:1 in
  let fops = Kfuncs.register funcs "pipefifo_fops" in
  w64 ctx rf "file" "f_op" fops;
  w64 ctx wf "file" "f_op" fops;
  w64 ctx rf "file" "private_data" pipe;
  w64 ctx wf "file" "private_data" pipe;
  (pipe, rf, wf)

let buf_addr ctx pipe i =
  let bufs = r64 ctx pipe "pipe_inode_info" "bufs" in
  let ring = r32 ctx pipe "pipe_inode_info" "ring_size" in
  bufs + ((i mod ring) * sizeof ctx "pipe_buffer")

(** Write [data] into the pipe through a freshly allocated page (the
    normal pipe_write path: flags = CAN_MERGE for anon pipe pages). *)
let write ctx buddy funcs pipe data =
  let head = r32 ctx pipe "pipe_inode_info" "head" in
  let page = Kbuddy.alloc_page buddy in
  Kmem.write_bytes ctx.mem (Kbuddy.page_address buddy page) data;
  let buf = buf_addr ctx pipe head in
  w64 ctx buf "pipe_buffer" "page" page;
  w32 ctx buf "pipe_buffer" "offset" 0;
  w32 ctx buf "pipe_buffer" "len" (String.length data);
  w64 ctx buf "pipe_buffer" "ops" (Kfuncs.register funcs "anon_pipe_buf_ops");
  w32 ctx buf "pipe_buffer" "flags" Ktypes.pipe_buf_flag_can_merge;
  w32 ctx pipe "pipe_inode_info" "head" (head + 1);
  buf

(** Zero-copy splice of page [index] of [mapping] into the pipe. With
    [~buggy:true] the flags field is left as-is (Dirty Pipe); otherwise it
    is cleared, as the upstream fix does. *)
let splice_from_mapping ctx funcs pipe ~mapping ~index ~len ~buggy =
  let page = Kxarray.load ctx (fld ctx mapping "address_space" "i_pages") index in
  if page = 0 then invalid_arg "Kpipe.splice_from_mapping: page not cached";
  let head = r32 ctx pipe "pipe_inode_info" "head" in
  let buf = buf_addr ctx pipe head in
  w64 ctx buf "pipe_buffer" "page" page;
  w32 ctx buf "pipe_buffer" "offset" 0;
  w32 ctx buf "pipe_buffer" "len" len;
  w64 ctx buf "pipe_buffer" "ops" (Kfuncs.register funcs "page_cache_pipe_buf_ops");
  if not buggy then w32 ctx buf "pipe_buffer" "flags" 0;
  (* buggy: flags retain whatever the slot held before — the bug. *)
  let refs = fld ctx page "page" "_refcount" in
  w32 ctx refs "atomic_t" "counter" (r32 ctx refs "atomic_t" "counter" + 1);
  w32 ctx pipe "pipe_inode_info" "head" (head + 1);
  buf

(** Consume the buffer at the tail (pipe_read). As in the kernel, the
    retired ring slot is NOT scrubbed — its stale [flags] word is exactly
    what the Dirty Pipe bug later inherits. Returns the consumed length,
    or [None] when empty. *)
let read ctx pipe =
  let head = r32 ctx pipe "pipe_inode_info" "head" in
  let tail = r32 ctx pipe "pipe_inode_info" "tail" in
  if tail >= head then None
  else begin
    let buf = buf_addr ctx pipe tail in
    let len = r32 ctx buf "pipe_buffer" "len" in
    w32 ctx pipe "pipe_inode_info" "tail" (tail + 1);
    Some len
  end

(** Occupied buffers, tail..head order. *)
let buffers ctx pipe =
  let head = r32 ctx pipe "pipe_inode_info" "head" in
  let tail = r32 ctx pipe "pipe_inode_info" "tail" in
  List.init (head - tail) (fun i -> buf_addr ctx pipe (tail + i))

(** A pipe write that merges into the last buffer when CAN_MERGE is set —
    the action that corrupts the page cache in the exploit. Returns the
    page written through. *)
let write_merge ctx pipe data =
  match List.rev (buffers ctx pipe) with
  | [] -> invalid_arg "Kpipe.write_merge: empty pipe"
  | buf :: _ ->
      let flags = r32 ctx buf "pipe_buffer" "flags" in
      if flags land Ktypes.pipe_buf_flag_can_merge = 0 then None
      else begin
        let page = r64 ctx buf "pipe_buffer" "page" in
        let len = r32 ctx buf "pipe_buffer" "len" in
        w32 ctx buf "pipe_buffer" "len" (len + String.length data);
        Some (page, len, data)
      end
