(** The CFS scheduler (ULK Fig 7-1): per-CPU runqueues whose
    [tasks_timeline] is a cached red-black tree of [sched_entity]s
    ordered by virtual runtime — the structure of the paper's first
    ViewCL example. *)

type addr = Kmem.addr

val init_rq : Kcontext.t -> addr -> cpu:int -> idle:addr -> unit

val se_of : Kcontext.t -> addr -> addr
(** A task's embedded sched_entity. *)

val task_of : Kcontext.t -> addr -> addr
(** container_of(se, task_struct, se). *)

val enqueue_task : Kcontext.t -> addr -> addr -> vruntime:int -> unit
(** Place a task on the timeline and update nr_running/min_vruntime. *)

val dequeue_task : Kcontext.t -> addr -> addr -> unit

val pick_next : Kcontext.t -> addr -> addr
(** The leftmost (smallest-vruntime) task, 0 when idle. *)

val set_curr : Kcontext.t -> addr -> addr -> unit
(** Make a task the running one ([rq->curr], [cfs->curr], [on_cpu]). *)

val task_tick : Kcontext.t -> addr -> delta:int -> addr
(** One scheduler tick: charge the running task [delta] ns of vruntime
    and preempt when it is no longer leftmost (re-enqueueing it and
    switching to the new leftmost). Returns the task now running. *)

val migrate_task : Kcontext.t -> src:addr -> dst:addr -> addr -> unit
(** Move a queued task to another runqueue, preserving its vruntime. *)

val queued_tasks : Kcontext.t -> addr -> addr list
(** Timeline contents in vruntime order. *)
