(** The slab allocator (ULK Fig 8-4): [kmem_cache]s carving objects out
    of buddy pages, with partial/full slab lists and in-page freelists
    chained through the first word of each free object (SLUB-style). *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  buddy : Kbuddy.t;
  slab_caches : addr;  (** global list_head of all caches *)
  slab_bases : (addr, addr) Hashtbl.t;  (** slab struct -> payload base *)
}

val create : Kcontext.t -> Kbuddy.t -> t

val cache_create : t -> string -> object_size:int -> addr
(** kmem_cache_create: registers the cache on the global list. *)

val cache_alloc : t -> addr -> addr
(** kmem_cache_alloc: pops the freelist of a partial slab, allocating a
    new slab page when none; moves filled slabs to the full list. *)

val cache_free : t -> addr -> addr -> unit
(** kmem_cache_free: pushes the object back and moves full slabs back to
    partial. @raise Invalid_argument when the object isn't from the
    cache. *)

val caches : t -> addr list
(** All registered caches, in creation order. *)

val slab_inuse : Kcontext.t -> addr -> int
(** The [inuse] bitfield of a slab (shares a u32 with objects/frozen). *)

val slab_objcount : Kcontext.t -> addr -> int
val slab_objects : t -> addr -> int
(** Objects per slab page for a cache. *)
