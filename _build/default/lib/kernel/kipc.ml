(** System V IPC (ULK Fig 19-1/19-2): namespaces holding semaphore and
    message queue descriptors in IDRs (XArray-backed, as in Linux 6.1). *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  ns : addr;  (** ipc_namespace *)
  mutable next_id : int array;  (** per-class id counters: sem, msg, shm *)
}

let ipc_sem_ids = 0
let ipc_msg_ids = 1

let create ctx =
  let ns = alloc ctx "ipc_namespace" in
  for i = 0 to 2 do
    let ids = fld ctx ns "ipc_namespace" "ids" + (i * sizeof ctx "ipc_ids") in
    Kxarray.init ctx (fld ctx ids "ipc_ids" "ipcs_idr.idr_rt");
    w32 ctx ids "ipc_ids" "max_idx" (-1)
  done;
  { ctx; ns; next_id = [| 0; 0; 0 |] }

let ids_addr t cls = fld t.ctx t.ns "ipc_namespace" "ids" + (cls * sizeof t.ctx "ipc_ids")

(* Both sem_array and msg_queue embed their kern_ipc_perm at offset 0, so
   the perm fields can be written through the kern_ipc_perm layout. *)
let register t cls obj ~key =
  let ctx = t.ctx in
  let id = t.next_id.(cls) in
  t.next_id.(cls) <- id + 1;
  w32 ctx obj "kern_ipc_perm" "id" id;
  w32 ctx obj "kern_ipc_perm" "key" key;
  w16 ctx obj "kern_ipc_perm" "mode" 0o600;
  let ids = ids_addr t cls in
  Kxarray.store ctx (fld ctx ids "ipc_ids" "ipcs_idr.idr_rt") id obj;
  w32 ctx ids "ipc_ids" "in_use" (r32 ctx ids "ipc_ids" "in_use" + 1);
  w32 ctx ids "ipc_ids" "max_idx" (max id (r32 ctx ids "ipc_ids" "max_idx"));
  id

(** semget: a semaphore set of [nsems] semaphores. *)
let semget t ~key ~nsems =
  let ctx = t.ctx in
  let sma = alloc ctx "sem_array" in
  w64 ctx sma "sem_array" "sem_nsems" nsems;
  let sems = alloc_n ctx "sem" nsems in
  for i = 0 to nsems - 1 do
    let s = sems + (i * sizeof ctx "sem") in
    Klist.init ctx (fld ctx s "sem" "pending_alter");
    Klist.init ctx (fld ctx s "sem" "pending_const")
  done;
  w64 ctx sma "sem_array" "sems" sems;
  Klist.init ctx (fld ctx sma "sem_array" "pending_alter");
  let id = register t ipc_sem_ids sma ~key in
  ignore id;
  sma

let semop t sma ~idx ~delta ~pid =
  let ctx = t.ctx in
  let sems = r64 ctx sma "sem_array" "sems" in
  let s = sems + (idx * sizeof ctx "sem") in
  w32 ctx s "sem" "semval" (max 0 (ri32 ctx s "sem" "semval" + delta));
  w32 ctx s "sem" "sempid" pid

(** msgget: a message queue. *)
let msgget t ~key ~qbytes =
  let ctx = t.ctx in
  let q = alloc ctx "msg_queue" in
  w64 ctx q "msg_queue" "q_qbytes" qbytes;
  Klist.init ctx (fld ctx q "msg_queue" "q_messages");
  Klist.init ctx (fld ctx q "msg_queue" "q_receivers");
  Klist.init ctx (fld ctx q "msg_queue" "q_senders");
  let id = register t ipc_msg_ids q ~key in
  ignore id;
  q

(** msgsnd: enqueue a message of [size] bytes and type [mtype]. *)
let msgsnd t q ~mtype ~size =
  let ctx = t.ctx in
  let m = alloc ctx "msg_msg" in
  w64 ctx m "msg_msg" "m_type" mtype;
  w64 ctx m "msg_msg" "m_ts" size;
  Klist.add_tail ctx (fld ctx q "msg_queue" "q_messages") (fld ctx m "msg_msg" "m_list");
  w64 ctx q "msg_queue" "q_qnum" (r64 ctx q "msg_queue" "q_qnum" + 1);
  w64 ctx q "msg_queue" "q_cbytes" (r64 ctx q "msg_queue" "q_cbytes" + size);
  m

let msgrcv t q =
  let ctx = t.ctx in
  match Klist.containers ctx (fld ctx q "msg_queue" "q_messages") "msg_msg" "m_list" with
  | [] -> None
  | m :: _ ->
      Klist.del ctx (fld ctx m "msg_msg" "m_list");
      w64 ctx q "msg_queue" "q_qnum" (r64 ctx q "msg_queue" "q_qnum" - 1);
      let sz = r64 ctx m "msg_msg" "m_ts" in
      w64 ctx q "msg_queue" "q_cbytes" (max 0 (r64 ctx q "msg_queue" "q_cbytes" - sz));
      free ctx m;
      Some sz

let messages t q =
  Klist.containers t.ctx (fld t.ctx q "msg_queue" "q_messages") "msg_msg" "m_list"
