(** PID bookkeeping: the classic PID hash table (ULK Fig 3-6) plus
    [struct pid]/[upid] and the namespace IDR of modern kernels. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  pid_hash : addr;  (** array of hlist_head[PIDHASH_SZ] *)
  init_pid_ns : addr;
}

val hash_sz : int

val pid_hashfn : int -> int
(** The bucket of a pid number (golden-ratio hash). *)

val create : Kcontext.t -> t

val alloc_pid : t -> int -> addr
(** Allocate a [struct pid] for a number: hashes the embedded [upid] into
    the table and stores the pid in the namespace IDR. *)

val find_pid : t -> int -> addr option
(** Resolve a number through the hash table (the read path). *)

val bucket : t -> int -> addr
(** Address of hash bucket [i]. *)

val bucket_pids : t -> int -> addr list
(** The [struct pid]s chained in bucket [i]. *)
