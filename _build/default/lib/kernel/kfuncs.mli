(** Simulated kernel text: function-pointer values.

    Kernel objects carry function pointers (work handlers, pipe buffer
    ops, signal handlers, RCU callbacks, ...). Every named kernel function
    gets a unique fake text address so that (a) function-pointer fields
    contain realistic values, (b) the [FunPtr] text decorator can resolve
    them back to names — as GDB does with symbols — and (c) RCU / timers /
    workqueues can dispatch callbacks to OCaml implementations. *)

type addr = Kmem.addr

val text_base : addr
(** Base of the fake text section (distinct from data addresses). *)

type t

val create : unit -> t

val register : t -> string -> addr
(** Get-or-assign the text address of a function symbol. *)

val register_impl : t -> string -> (addr -> unit) -> addr
(** Register a function with an executable OCaml body; the argument passed
    at invocation time is the object address (callback_head, timer_list,
    work_struct, ...). *)

val name_of : t -> addr -> string option
val addr_of : t -> string -> addr option
val impl_of : t -> addr -> (addr -> unit) option

val invoke : t -> addr -> addr -> unit
(** Call the implementation behind a text address.
    @raise Invalid_argument when no implementation is registered. *)
