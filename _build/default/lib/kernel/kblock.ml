(** Block devices (ULK Fig 14-3): [gendisk]s and their [block_device]
    descriptors. *)

open Kcontext

type addr = Kmem.addr

let mkdev major minor = (major lsl 20) lor minor

(** Create a disk with one whole-disk block_device. *)
let add_disk ctx vfs ~name ~major ~minor =
  let disk = alloc ctx "gendisk" in
  w32 ctx disk "gendisk" "major" major;
  w32 ctx disk "gendisk" "first_minor" minor;
  w32 ctx disk "gendisk" "minors" 16;
  wstr ctx disk "gendisk" "disk_name" ~field_size:32 name;
  let bdev = alloc ctx "block_device" in
  w32 ctx bdev "block_device" "bd_dev" (mkdev major minor);
  w64 ctx bdev "block_device" "bd_disk" disk;
  let ino = Kvfs.new_inode vfs 0 ~mode:0o60600 ~size:0 in
  w64 ctx bdev "block_device" "bd_inode" ino;
  w64 ctx disk "gendisk" "part0" bdev;
  (disk, bdev)
