(** Syscall-level façade over the simulated kernel: what the evaluation
    workload (and the CVE reproductions) drive. *)

open Kcontext

type addr = Kmem.addr

let page = Ktypes.page_size

(* Canonical layout for a fresh process image. *)
let code_base = 0x0000_0000_0040_0000
let data_base = 0x0000_0000_0060_0000
let heap_base = 0x0000_0000_0061_0000
let lib_base = 0x0000_7f00_0000_0000
let stack_top = 0x0000_7fff_ffff_f000
let stack_pages = 33

(** Build the standard VM image of a process: code/rodata/data from its
    executable file, heap, libc mappings and a grows-down stack. *)
let build_mm (k : Kstate.t) ~exe_file ~libc_file =
  let mm = Kmm.mm_alloc k.mm in
  let ctx = k.ctx in
  let map ~start ~npages ~flags ~file ~pgoff =
    Kmm.mmap k.mm mm ~start ~len:(npages * page) ~flags ~file ~pgoff
  in
  let ( -- ) a b = a lor b in
  let r = Ktypes.vm_read and w = Ktypes.vm_write and x = Ktypes.vm_exec in
  ignore (map ~start:code_base ~npages:1 ~flags:(r -- x) ~file:exe_file ~pgoff:0);
  ignore (map ~start:(code_base + page) ~npages:1 ~flags:r ~file:exe_file ~pgoff:1);
  ignore (map ~start:data_base ~npages:1 ~flags:(r -- w) ~file:exe_file ~pgoff:2);
  let heap = map ~start:heap_base ~npages:4 ~flags:(r -- w) ~file:0 ~pgoff:0 in
  ignore (Kanon.prepare ctx heap);
  ignore (map ~start:lib_base ~npages:4 ~flags:(r -- x) ~file:libc_file ~pgoff:0);
  ignore (map ~start:(lib_base + (4 * page)) ~npages:2 ~flags:r ~file:libc_file ~pgoff:4);
  ignore (map ~start:(lib_base + (6 * page)) ~npages:2 ~flags:(r -- w) ~file:libc_file ~pgoff:6);
  let stack =
    map ~start:(stack_top - (stack_pages * page)) ~npages:stack_pages
      ~flags:(r -- w -- Ktypes.vm_growsdown) ~file:0 ~pgoff:0
  in
  ignore (Kanon.prepare ctx stack);
  w64 ctx mm "mm_struct" "start_code" code_base;
  w64 ctx mm "mm_struct" "end_code" (code_base + page);
  w64 ctx mm "mm_struct" "start_data" data_base;
  w64 ctx mm "mm_struct" "end_data" (data_base + page);
  w64 ctx mm "mm_struct" "start_brk" heap_base;
  w64 ctx mm "mm_struct" "brk" (heap_base + (4 * page));
  w64 ctx mm "mm_struct" "start_stack" stack_top;
  mm

(* Shared binaries live in the rootfs; created on first use. *)
let binary_file (k : Kstate.t) name =
  match Hashtbl.find_opt k.named name with
  | Some f -> f
  | None ->
      let d = Kvfs.create_file k.vfs ~dir:k.root_dentry ~name ~size:(8 * page) in
      let f = Kvfs.open_dentry k.vfs d ~flags:0 in
      (* Cache a few pages so file-mapping figures have page-cache content. *)
      let mapping = Kmem.read_u64 k.ctx.mem (f + off k.ctx "file" "f_mapping") in
      ignore
        (Kpagecache.populate k.ctx k.buddy mapping ~npages:3 ~fill:(fun i ->
             Printf.sprintf "%s:page%d" name i));
      Hashtbl.replace k.named name f;
      f

(** fork + exec: a new process with its own address space, fd table,
    signal structures; enqueued on [cpu]'s CFS runqueue. *)
let spawn_process (k : Kstate.t) ~parent ~comm ~cpu =
  let ctx = k.ctx in
  let exe = binary_file k comm in
  let libc = binary_file k "libc.so.6" in
  let mm = build_mm k ~exe_file:exe ~libc_file:libc in
  let files = Kvfs.new_files_struct k.vfs in
  (* fds 0,1,2: the console file. *)
  let console = binary_file k "console" in
  for _ = 0 to 2 do
    ignore (Kvfs.install_fd k.vfs files console)
  done;
  let signal = Ksignal.new_signal ctx in
  let sighand = Ksignal.new_sighand ctx k.funcs in
  let task =
    Ktask.create ctx ~tasks_head:k.tasks_head
      { Ktask.default_spec with pid = Kstate.alloc_pid_nr k; comm; parent; mm; files; signal;
        sighand; cpu }
  in
  ignore (Kstate.attach_pid k task);
  Ksched.enqueue_task ctx (Kstate.rq_of k cpu) task ~vruntime:(Kstate.next_vruntime k);
  task

(** pthread_create: a thread sharing the leader's mm/files/signal. *)
let spawn_thread (k : Kstate.t) ~leader ~comm ~cpu =
  let ctx = k.ctx in
  let task =
    Ktask.create ctx ~tasks_head:k.tasks_head
      { Ktask.default_spec with pid = Kstate.alloc_pid_nr k; comm; parent = leader;
        group_leader = leader; mm = r64 ctx leader "task_struct" "mm";
        files = r64 ctx leader "task_struct" "files";
        signal = r64 ctx leader "task_struct" "signal";
        sighand = r64 ctx leader "task_struct" "sighand"; cpu }
  in
  ignore (Kstate.attach_pid k task);
  Ksched.enqueue_task ctx (Kstate.rq_of k cpu) task ~vruntime:(Kstate.next_vruntime k);
  task

(** kthread_create. *)
let spawn_kthread (k : Kstate.t) ~comm ~cpu =
  let ctx = k.ctx in
  let task =
    Ktask.create ctx ~tasks_head:k.tasks_head
      { Ktask.default_spec with pid = Kstate.alloc_pid_nr k; comm; parent = k.init_task;
        signal = r64 ctx k.init_task "task_struct" "signal";
        sighand = r64 ctx k.init_task "task_struct" "sighand"; cpu; kthread = true }
  in
  ignore (Kstate.attach_pid k task);
  Ksched.enqueue_task ctx (Kstate.rq_of k cpu) task ~vruntime:(Kstate.next_vruntime k);
  task

let files_of (k : Kstate.t) task = r64 k.ctx task "task_struct" "files"
let mm_of (k : Kstate.t) task = r64 k.ctx task "task_struct" "mm"

(** open(2): create the file in the rootfs if needed, with cached pages. *)
let openat (k : Kstate.t) task ~name ~size =
  let d = Kvfs.create_file k.vfs ~dir:k.root_dentry ~name ~size in
  let f = Kvfs.open_dentry k.vfs d ~flags:2 in
  let mapping = Kmem.read_u64 k.ctx.mem (f + off k.ctx "file" "f_mapping") in
  let npages = max 1 ((size + page - 1) / page) in
  ignore
    (Kpagecache.populate k.ctx k.buddy mapping ~npages ~fill:(fun i ->
         Printf.sprintf "%s:data%d" name i));
  let fd = Kvfs.install_fd k.vfs (files_of k task) f in
  (fd, f)

(** mmap(2) of an open file. *)
let mmap_file (k : Kstate.t) task ~file ~start ~npages ~writable =
  let flags = Ktypes.vm_read lor if writable then Ktypes.vm_write else 0 in
  Kmm.mmap k.mm (mm_of k task) ~start ~len:(npages * page) ~flags ~file ~pgoff:0

(** Anonymous mmap; prepares reverse mapping. *)
let mmap_anon (k : Kstate.t) task ~start ~npages ~writable =
  let flags = Ktypes.vm_read lor if writable then Ktypes.vm_write else 0 in
  let vma = Kmm.mmap k.mm (mm_of k task) ~start ~len:(npages * page) ~flags ~file:0 ~pgoff:0 in
  ignore (Kanon.prepare k.ctx vma);
  vma

let munmap (k : Kstate.t) task vma = Kmm.munmap k.mm (mm_of k task) vma

(** pipe(2): returns (pipe, read_fd, write_fd). *)
let pipe (k : Kstate.t) task =
  let p, rf, wf = Kpipe.create k.ctx k.vfs k.funcs in
  let files = files_of k task in
  let rfd = Kvfs.install_fd k.vfs files rf in
  let wfd = Kvfs.install_fd k.vfs files wf in
  (p, rfd, wfd)

let write_pipe (k : Kstate.t) pipe data = ignore (Kpipe.write k.ctx k.buddy k.funcs pipe data)

(** splice(2) file->pipe, zero copy. [buggy] reproduces CVE-2022-0847. *)
let splice (k : Kstate.t) ~file ~pipe ~index ~len ~buggy =
  let mapping = Kmem.read_u64 k.ctx.mem (file + off k.ctx "file" "f_mapping") in
  Kpipe.splice_from_mapping k.ctx k.funcs pipe ~mapping ~index ~len ~buggy

(** socket(2)+connect(2): a connected TCP socket installed in the task. *)
let socket (k : Kstate.t) task ~lport ~rport ~backlog_skbs =
  let so, sk, f =
    Knet.socket k.ctx k.vfs k.funcs ~laddr:0x7f000001 ~lport ~raddr:0x0a000002 ~rport
  in
  let fd = Kvfs.install_fd k.vfs (files_of k task) f in
  for i = 1 to backlog_skbs do
    ignore (Knet.skb_queue_tail k.ctx (fld k.ctx sk "sock" "sk_receive_queue") ~len:(i * 100))
  done;
  (so, sk, fd)

(** exit(2): the task becomes a zombie — off the runqueue, children
    reparented to init, exit code recorded — until its parent reaps it. *)
let exit_task (k : Kstate.t) task ~code =
  let ctx = k.ctx in
  if r32 ctx task "task_struct" "se.on_rq" <> 0 then
    Ksched.dequeue_task ctx (Kstate.task_rq k task) task;
  w32 ctx task "task_struct" "__state" 0;
  w32 ctx task "task_struct" "exit_state" Ktypes.exit_zombie;
  w32 ctx task "task_struct" "exit_code" code;
  w32 ctx task "task_struct" "on_cpu" 0;
  (* reparent children to init (no subreaper in this simulation) *)
  List.iter
    (fun child ->
      w64 ctx child "task_struct" "parent" k.init_task;
      w64 ctx child "task_struct" "real_parent" k.init_task;
      Klist.del ctx (fld ctx child "task_struct" "sibling");
      Klist.add_tail ctx
        (fld ctx k.init_task "task_struct" "children")
        (fld ctx child "task_struct" "sibling"))
    (Ktask.children ctx task);
  (* a thread-group member also leaves its group accounting *)
  let sg = r64 ctx task "task_struct" "signal" in
  if sg <> 0 then begin
    let live = fld ctx sg "signal_struct" "live" in
    w32 ctx live "atomic_t" "counter" (max 0 (r32 ctx live "atomic_t" "counter" - 1))
  end;
  (* notify the parent the classic way *)
  let parent = r64 ctx task "task_struct" "parent" in
  if parent <> 0 && parent <> task then
    Ksignal.send_signal ctx
      (fld ctx parent "task_struct" "pending")
      ~signo:17 (* SIGCHLD *) ~from_pid:(Ktask.pid ctx task)

(** wait(2)/release_task: reap a zombie — unlink it from the process tree
    and the global task list and free the task_struct. *)
let reap_task (k : Kstate.t) task =
  let ctx = k.ctx in
  if r32 ctx task "task_struct" "exit_state" land Ktypes.exit_zombie = 0 then
    invalid_arg "Ksyscall.reap_task: not a zombie";
  Klist.del ctx (fld ctx task "task_struct" "sibling");
  Klist.del ctx (fld ctx task "task_struct" "tasks");
  (let tg = fld ctx task "task_struct" "thread_group" in
   if Klist.next ctx tg <> 0 && not (Klist.is_empty ctx tg) then Klist.del ctx tg);
  free ctx task

let kill (k : Kstate.t) ~target ~signo ~from =
  Ksignal.send_signal k.ctx
    (fld k.ctx target "task_struct" "pending")
    ~signo ~from_pid:(Ktask.pid k.ctx from)

let sigaction (k : Kstate.t) task ~signo ~handler =
  Ksignal.set_action k.ctx k.funcs
    (r64 k.ctx task "task_struct" "sighand")
    ~signo ~handler ~flags:0
