(** Swap area descriptors (ULK Fig 17-6): the [swap_info] pointer array
    and [swap_info_struct]s with their usage maps. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  swap_info : addr;  (** array of MAX_SWAPFILES pointers *)
  mutable nr : int;
}

let create ctx =
  let swap_info = alloc_raw ctx "swap_info[]" (8 * Ktypes.max_swapfiles) in
  { ctx; swap_info; nr = 0 }

let swp_used = 1
let swp_writeok = 2

(** swapon: activate a swap area of [pages] pages backed by [file]. *)
let swapon t ~file ~bdev ~pages ~prio ~used =
  let ctx = t.ctx in
  if t.nr >= Ktypes.max_swapfiles then failwith "Kswap.swapon: table full";
  let si = alloc ctx "swap_info_struct" in
  w64 ctx si "swap_info_struct" "flags" (swp_used lor swp_writeok);
  w16 ctx si "swap_info_struct" "prio" prio;
  w32 ctx si "swap_info_struct" "type" t.nr;
  w64 ctx si "swap_info_struct" "max" pages;
  w64 ctx si "swap_info_struct" "pages" (pages - 1);
  w64 ctx si "swap_info_struct" "inuse_pages" used;
  w64 ctx si "swap_info_struct" "swap_file" file;
  w64 ctx si "swap_info_struct" "bdev" bdev;
  let map = alloc_raw ctx "swap_map" pages in
  (* Mark the first [used] slots as having one user each. *)
  for i = 1 to min used (pages - 1) do
    Kmem.write_u8 ctx.mem (map + i) 1
  done;
  w64 ctx si "swap_info_struct" "swap_map" map;
  Kmem.write_u64 ctx.mem (t.swap_info + (8 * t.nr)) si;
  t.nr <- t.nr + 1;
  si

let areas t =
  List.init t.nr (fun i -> Kmem.read_u64 t.ctx.mem (t.swap_info + (8 * i)))
