(** Kernel circular doubly-linked lists ([struct list_head]) operating on
    raw simulated memory. Nodes are embedded in enclosing objects and
    recovered with [container_of], exactly as in the kernel. *)

type addr = Kmem.addr

val next : Kcontext.t -> addr -> addr
val prev : Kcontext.t -> addr -> addr

val init : Kcontext.t -> addr -> unit
(** INIT_LIST_HEAD: a head pointing at itself. *)

val is_empty : Kcontext.t -> addr -> bool

val add : Kcontext.t -> addr -> addr -> unit
(** [add ctx head node] — push front (list_add). *)

val add_tail : Kcontext.t -> addr -> addr -> unit
(** list_add_tail. *)

val del : Kcontext.t -> addr -> unit
(** Unlink a node and poison its links (list_del). *)

val nodes : Kcontext.t -> addr -> addr list
(** Member nodes in list order, head excluded. *)

val length : Kcontext.t -> addr -> int

val containers : Kcontext.t -> addr -> string -> string -> addr list
(** [containers ctx head comp field] — the enclosing objects:
    [container_of(node, comp, field)] for each node. *)

val iter : Kcontext.t -> addr -> (addr -> unit) -> unit
