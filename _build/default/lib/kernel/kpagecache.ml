(** The page cache (ULK Fig 15-1): an [address_space] whose [i_pages]
    XArray maps file page indices to [struct page]s from the buddy
    allocator. *)

open Kcontext

type addr = Kmem.addr

(** Get-or-create the cache page of [mapping] at [index]; fills it with
    [data] when given. *)
let find_or_create_page ctx buddy mapping index ?data () =
  let xa = fld ctx mapping "address_space" "i_pages" in
  match Kxarray.load ctx xa index with
  | 0 ->
      let page = Kbuddy.alloc_page buddy in
      w64 ctx page "page" "mapping" mapping;
      w64 ctx page "page" "index" index;
      let f = r64 ctx page "page" "flags" in
      w64 ctx page "page" "flags" (f lor (1 lsl Ktypes.pg_lru));
      Kxarray.store ctx xa index page;
      w64 ctx mapping "address_space" "nrpages" (r64 ctx mapping "address_space" "nrpages" + 1);
      (match data with
      | Some s -> Kmem.write_bytes ctx.mem (Kbuddy.page_address buddy page) s
      | None -> ());
      page
  | page -> page

(** Populate the first [npages] pages of a file's mapping (simulating
    readahead of file contents). *)
let populate ctx buddy mapping ~npages ~fill =
  List.init npages (fun i -> find_or_create_page ctx buddy mapping i ~data:(fill i) ())

let lookup ctx mapping index =
  Kxarray.load ctx (fld ctx mapping "address_space" "i_pages") index

let pages ctx mapping =
  List.map snd (Kxarray.entries ctx (fld ctx mapping "address_space" "i_pages"))

let mark_dirty ctx page =
  let f = r64 ctx page "page" "flags" in
  w64 ctx page "page" "flags" (f lor (1 lsl Ktypes.pg_dirty))
