(** Reverse mapping of anonymous pages (ULK Fig 17-1): [anon_vma] objects
    with their interval trees of [anon_vma_chain]s. *)

open Kcontext

type addr = Kmem.addr

(** Give [vma] an anon_vma (as anon_vma_prepare on first anonymous fault). *)
let prepare ctx vma =
  let existing = r64 ctx vma "vm_area_struct" "anon_vma" in
  if existing <> 0 then existing
  else begin
    let av = alloc ctx "anon_vma" in
    w64 ctx av "anon_vma" "root" av;
    w32 ctx (fld ctx av "anon_vma" "refcount") "atomic_t" "counter" 1;
    w64 ctx av "anon_vma" "num_active_vmas" 1;
    let avc = alloc ctx "anon_vma_chain" in
    w64 ctx avc "anon_vma_chain" "vma" vma;
    w64 ctx avc "anon_vma_chain" "anon_vma" av;
    Klist.add_tail ctx
      (fld ctx vma "vm_area_struct" "anon_vma_chain")
      (fld ctx avc "anon_vma_chain" "same_vma");
    let less a b =
      let vma_of n = r64 ctx (n - off ctx "anon_vma_chain" "rb") "anon_vma_chain" "vma" in
      let start v = r64 ctx v "vm_area_struct" "vm_start" in
      start (vma_of a) < start (vma_of b)
    in
    Krbtree.insert_cached ctx (fld ctx av "anon_vma" "rb_root") ~less
      (fld ctx avc "anon_vma_chain" "rb");
    w64 ctx vma "vm_area_struct" "anon_vma" av;
    av
  end

(** Link a child VMA (e.g. after fork) into an existing anon_vma. *)
let clone_into ctx ~anon_vma vma =
  let avc = alloc ctx "anon_vma_chain" in
  w64 ctx avc "anon_vma_chain" "vma" vma;
  w64 ctx avc "anon_vma_chain" "anon_vma" anon_vma;
  Klist.add_tail ctx
    (fld ctx vma "vm_area_struct" "anon_vma_chain")
    (fld ctx avc "anon_vma_chain" "same_vma");
  let less a b =
    let vma_of n = r64 ctx (n - off ctx "anon_vma_chain" "rb") "anon_vma_chain" "vma" in
    let start v = r64 ctx v "vm_area_struct" "vm_start" in
    start (vma_of a) < start (vma_of b)
  in
  Krbtree.insert_cached ctx (fld ctx anon_vma "anon_vma" "rb_root") ~less
    (fld ctx avc "anon_vma_chain" "rb");
  w64 ctx vma "vm_area_struct" "anon_vma" anon_vma;
  let n = r64 ctx anon_vma "anon_vma" "num_active_vmas" in
  w64 ctx anon_vma "anon_vma" "num_active_vmas" (n + 1);
  avc

(** All VMAs mapped under an anon_vma, via its interval tree. *)
let vmas_of ctx anon_vma =
  Krbtree.containers ctx
    (Krbtree.cached_root ctx (fld ctx anon_vma "anon_vma" "rb_root"))
    "anon_vma_chain" "rb"
  |> List.map (fun avc -> r64 ctx avc "anon_vma_chain" "vma")
