(** Kernel circular doubly-linked lists ([struct list_head]) operating on
    raw simulated memory. Nodes are embedded in enclosing objects and
    recovered with [container_of], as in the real kernel. *)

open Kcontext

type addr = Kmem.addr

let next ctx l = r64 ctx l "list_head" "next"
let prev ctx l = r64 ctx l "list_head" "prev"
let set_next ctx l v = w64 ctx l "list_head" "next" v
let set_prev ctx l v = w64 ctx l "list_head" "prev" v

let init ctx l =
  set_next ctx l l;
  set_prev ctx l l

let is_empty ctx l = next ctx l = l

let insert_between ctx node p n =
  set_next ctx p node;
  set_prev ctx node p;
  set_next ctx node n;
  set_prev ctx n node

let add ctx head node = insert_between ctx node head (next ctx head)
let add_tail ctx head node = insert_between ctx node (prev ctx head) head

let del ctx node =
  let p = prev ctx node and n = next ctx node in
  set_next ctx p n;
  set_prev ctx n p;
  (* LIST_POISON-style: a deleted node no longer points into the list. *)
  set_next ctx node 0;
  set_prev ctx node 0

(** All member nodes of [head], head excluded, in list order. *)
let nodes ctx head =
  let rec go n acc =
    if n = head || n = 0 then List.rev acc else go (next ctx n) (n :: acc)
  in
  go (next ctx head) []

let length ctx head = List.length (nodes ctx head)

(** Containers of the nodes of [head]: [container_of(node, comp, field)]. *)
let containers ctx head comp field =
  let o = off ctx comp field in
  List.map (fun n -> n - o) (nodes ctx head)

let iter ctx head f = List.iter f (nodes ctx head)
