(** Dynamic timers (ULK Fig 6-1): per-CPU timer wheels whose buckets are
    hlists of [timer_list]s. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  bases : addr array;  (** per-CPU [timer_base] *)
  mutable jiffies : int;
}

let wheel_size = Ktypes.timer_wheel_size

let create ctx funcs ~ncpus =
  let bases =
    Array.init ncpus (fun _ ->
        let b = alloc ctx "timer_base" in
        w64 ctx b "timer_base" "clk" 0;
        for i = 0 to wheel_size - 1 do
          Khlist.init_head ctx (fld ctx b "timer_base" "vectors" + (i * sizeof ctx "hlist_head"))
        done;
        b)
  in
  { ctx; funcs; bases; jiffies = 0 }

let bucket t ~cpu i =
  fld t.ctx t.bases.(cpu) "timer_base" "vectors" + (i * sizeof t.ctx "hlist_head")

(** Arm a timer [delta] jiffies in the future running [func_name]. *)
let add_timer t ~cpu ~delta func_name =
  let ctx = t.ctx in
  let tm = alloc ctx "timer_list" in
  let expires = t.jiffies + delta in
  w64 ctx tm "timer_list" "expires" expires;
  w64 ctx tm "timer_list" "function" (Kfuncs.register t.funcs func_name);
  w32 ctx tm "timer_list" "flags" cpu;
  Khlist.add_head ctx (bucket t ~cpu (expires mod wheel_size)) (fld ctx tm "timer_list" "entry");
  tm

(** Timers pending in [cpu]'s wheel, bucket by bucket. *)
let pending t ~cpu =
  List.concat
    (List.init wheel_size (fun i ->
         Khlist.containers t.ctx (bucket t ~cpu i) "timer_list" "entry"))

let advance t n = t.jiffies <- t.jiffies + n

(** Advance time by [n] jiffies and fire every expired timer on every
    CPU, in expiry order: each timer is unlinked from its wheel bucket
    and its function invoked (with the timer address, as the kernel does
    since 4.15) when an implementation is registered; unimplemented
    functions just expire silently. Returns the fired timers. *)
let run_timers t n =
  let ctx = t.ctx in
  t.jiffies <- t.jiffies + n;
  let fired = ref [] in
  Array.iteri
    (fun cpu base ->
      w64 ctx base "timer_base" "clk" t.jiffies;
      let expired =
        List.filter
          (fun tm -> r64 ctx tm "timer_list" "expires" <= t.jiffies)
          (pending t ~cpu)
      in
      let in_order =
        List.sort (fun a b -> compare (r64 ctx a "timer_list" "expires") (r64 ctx b "timer_list" "expires")) expired
      in
      List.iter
        (fun tm ->
          w64 ctx base "timer_base" "running_timer" tm;
          Khlist.del ctx (fld ctx tm "timer_list" "entry");
          let fn = r64 ctx tm "timer_list" "function" in
          (match Kfuncs.impl_of t.funcs fn with
          | Some impl -> impl tm
          | None -> ());
          w64 ctx base "timer_base" "running_timer" 0;
          fired := tm :: !fired)
        in_order)
    t.bases;
  List.rev !fired
