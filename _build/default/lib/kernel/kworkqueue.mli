(** Workqueues (paper Fig 6 and Table 2 row 18): heterogeneous work lists
    built from [work_struct]s embedded in different container types,
    dispatched through their [func] pointers — the canonical
    [container_of] + polymorphism case ViewCL must handle. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  workqueues : addr;  (** global list of workqueue_structs *)
  pools : addr array;  (** per-CPU worker_pool *)
}

val create : Kcontext.t -> Kfuncs.t -> ncpus:int -> t

val alloc_workqueue : t -> string -> addr
(** alloc_workqueue: one pool_workqueue per CPU. *)

val init_work : t -> addr -> string -> unit
(** INIT_WORK with a named handler. *)

val queue_work : t -> cpu:int -> addr -> unit
(** Append a work_struct to a CPU pool's worklist. *)

val pending : t -> cpu:int -> addr list
(** Pending work_structs of a pool, in order. *)

val process_works : t -> cpu:int -> addr list
(** Drain a pool as a worker would, invoking registered implementations;
    returns the processed items. *)

(** {1 The heterogeneous mm_percpu_wq containers (paper Fig 6)} *)

val new_vmstat_work : t -> cpu:int -> interval:int -> addr
val new_lru_drain_work : t -> cpu:int -> addr
val new_compact_work : t -> zone:addr -> order:int -> addr
