(** Kernel hash-lists ([struct hlist_head] / [hlist_node]) on raw memory,
    used by the PID hash table and the timer wheel buckets. *)

type addr = Kmem.addr

val first : Kcontext.t -> addr -> addr
val node_next : Kcontext.t -> addr -> addr

val init_head : Kcontext.t -> addr -> unit

val add_head : Kcontext.t -> addr -> addr -> unit
(** hlist_add_head: push a node, maintaining the pprev back-links. *)

val del : Kcontext.t -> addr -> unit
(** hlist_del: unlink via pprev and clear the node's links. *)

val nodes : Kcontext.t -> addr -> addr list
val length : Kcontext.t -> addr -> int

val containers : Kcontext.t -> addr -> string -> string -> addr list
(** Enclosing objects of each node, via [container_of]. *)
