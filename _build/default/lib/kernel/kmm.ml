(** Process address spaces (ULK Fig 9-2): [mm_struct] with its maple tree
    of [vm_area_struct]s, the structure at the center of the paper's
    motivating example and both CVE case studies. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  (* Shadow maple trees, keyed by the address of the mm's maple_tree. *)
  trees : (addr, Kmaple.tree) Hashtbl.t;
}

let create ctx = { ctx; trees = Hashtbl.create 16 }

let tree_of t mm =
  let mt = fld t.ctx mm "mm_struct" "mm_mt" in
  match Hashtbl.find_opt t.trees mt with
  | Some tree -> tree
  | None -> invalid_arg "Kmm: unknown mm"

let mm_alloc t =
  let ctx = t.ctx in
  let mm = alloc ctx "mm_struct" in
  let mt = fld ctx mm "mm_struct" "mm_mt" in
  Hashtbl.replace t.trees mt (Kmaple.create ctx mt);
  w32 ctx (fld ctx mm "mm_struct" "mm_users") "atomic_t" "counter" 1;
  w32 ctx (fld ctx mm "mm_struct" "mm_count") "atomic_t" "counter" 1;
  w64 ctx mm "mm_struct" "task_size" 0x7fff_ffff_f000;
  w64 ctx mm "mm_struct" "mmap_base" 0x7fff_f7ff_f000;
  mm

(** Create a VMA covering [start, end_) (end exclusive, page aligned). *)
let vma_alloc t mm ~start ~end_ ~flags ~file ~pgoff =
  let ctx = t.ctx in
  let vma = alloc ctx "vm_area_struct" in
  w64 ctx vma "vm_area_struct" "vm_start" start;
  w64 ctx vma "vm_area_struct" "vm_end" end_;
  w64 ctx vma "vm_area_struct" "vm_mm" mm;
  w64 ctx vma "vm_area_struct" "vm_flags" flags;
  w64 ctx vma "vm_area_struct" "vm_file" file;
  w64 ctx vma "vm_area_struct" "vm_pgoff" pgoff;
  Klist.init ctx (fld ctx vma "vm_area_struct" "anon_vma_chain");
  vma

(** Insert a VMA into the address space: stores it in the maple tree over
    its page range. [free_node] receives retired maple nodes (hook RCU
    deferral here for the StackRot scenario). *)
let insert_vma ?free_node t mm vma =
  let ctx = t.ctx in
  let tree = tree_of t mm in
  let start = r64 ctx vma "vm_area_struct" "vm_start" in
  let end_ = r64 ctx vma "vm_area_struct" "vm_end" in
  Kmaple.store_range ?free:free_node tree ~lo:start ~hi:(end_ - 1) vma;
  w32 ctx mm "mm_struct" "map_count" (List.length (Kmaple.entries tree));
  let tv = r64 ctx mm "mm_struct" "total_vm" in
  w64 ctx mm "mm_struct" "total_vm" (tv + ((end_ - start) / Ktypes.page_size))

(** mmap: allocate and insert. Returns the VMA. *)
let mmap ?free_node t mm ~start ~len ~flags ~file ~pgoff =
  let end_ = start + len in
  let vma = vma_alloc t mm ~start ~end_ ~flags ~file ~pgoff in
  insert_vma ?free_node t mm vma;
  vma

(** munmap the whole range of [vma]; the VMA object is freed. *)
let munmap ?free_node t mm vma =
  let ctx = t.ctx in
  let tree = tree_of t mm in
  let start = r64 ctx vma "vm_area_struct" "vm_start" in
  let end_ = r64 ctx vma "vm_area_struct" "vm_end" in
  Kmaple.erase_range ?free:free_node tree ~lo:start ~hi:(end_ - 1);
  w32 ctx mm "mm_struct" "map_count" (List.length (Kmaple.entries tree));
  free ctx vma

(** VMAs in address order (shadow view, write side). *)
let vmas t mm = List.map (fun (_, _, v) -> v) (Kmaple.entries (tree_of t mm))

(** VMAs read back from the real maple tree nodes (debugger view). *)
let read_vmas t mm =
  Kmaple.read_entries t.ctx (fld t.ctx mm "mm_struct" "mm_mt")
  |> List.map (fun (_, _, v) -> v)

let find_vma t mm va = Kmaple.walk t.ctx (fld t.ctx mm "mm_struct" "mm_mt") va

let is_writable ctx vma = r64 ctx vma "vm_area_struct" "vm_flags" land Ktypes.vm_write <> 0

(** Handle an anonymous page fault at [va]: allocate a page frame, mark
    it mapped (refcount/_mapcount, page->mapping pointing at the VMA's
    anon_vma with the kernel's PAGE_MAPPING_ANON low bit), and charge the
    mm. Returns the page, or 0 when no VMA covers [va] (a "segfault"). *)
let page_mapping_anon = 0x1

let handle_anon_fault t buddy mm ~va =
  let ctx = t.ctx in
  let vma = find_vma t mm va in
  if vma = 0 then 0
  else begin
    let anon_vma = Kanon.prepare ctx vma in
    let page = Kbuddy.alloc_page buddy in
    w32 ctx (fld ctx page "page" "_refcount") "atomic_t" "counter" 1;
    w32 ctx (fld ctx page "page" "_mapcount") "atomic_t" "counter" 0;
    w64 ctx page "page" "mapping" (anon_vma lor page_mapping_anon);
    w64 ctx page "page" "index" (va / Ktypes.page_size);
    page
  end

(** Resolve an anonymous page back to its VMAs — the reverse map walk of
    ULK Fig 17-1 (folio_get_anon_vma + rmap traversal). *)
let rmap_walk t page =
  let ctx = t.ctx in
  let mapping = r64 ctx page "page" "mapping" in
  if mapping land page_mapping_anon = 0 then []
  else Kanon.vmas_of ctx (mapping land lnot page_mapping_anon)

(* Read/write-lock state of mmap_lock, for lock visualization. *)
let mmap_read_lock ctx mm ~cpu =
  w32 ctx mm "mm_struct" "mmap_lock.locked" (r32 ctx mm "mm_struct" "mmap_lock.locked" + 1);
  w32 ctx mm "mm_struct" "mmap_lock.owner_cpu" cpu

let mmap_read_unlock ctx mm =
  w32 ctx mm "mm_struct" "mmap_lock.locked" (max 0 (r32 ctx mm "mm_struct" "mmap_lock.locked" - 1))
