(** The buddy page allocator (ULK Fig 8-2).

    A [mem_map] array of [struct page] covers a simulated DRAM zone; free
    pages sit on per-order [free_area] lists linked through [page.lru].
    Orders split on allocation and buddies coalesce on free, so plots of
    the zone show realistic free-list populations. Page payloads live in a
    separate data region addressable via {!page_address}. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  zone : addr;
  mem_map : addr;  (** base of the page array *)
  data_base : addr;  (** base of page payloads *)
  npages : int;
  page_size : int;
  (* allocation state per pfn: order if it heads a free block *)
  free_orders : (int, int) Hashtbl.t;
}

let page_struct_size ctx = sizeof ctx "page"

let pfn_to_page t pfn = t.mem_map + (pfn * page_struct_size t.ctx)
let page_to_pfn t page = (page - t.mem_map) / page_struct_size t.ctx
let page_address t page = t.data_base + (page_to_pfn t page * t.page_size)

let free_area_addr t order =
  fld t.ctx t.zone "zone" "free_area" + (order * sizeof t.ctx "free_area")

let nr_free t order = r64 t.ctx (free_area_addr t order) "free_area" "nr_free"

let set_nr_free t order v = w64 t.ctx (free_area_addr t order) "free_area" "nr_free" v

let free_list t order = fld t.ctx (free_area_addr t order) "free_area" "free_list"

let set_buddy_flag ctx page on =
  let f = r64 ctx page "page" "flags" in
  let bit = 1 lsl Ktypes.pg_buddy in
  w64 ctx page "page" "flags" (if on then f lor bit else f land lnot bit)

let add_free t page order =
  Klist.add t.ctx (free_list t order) (fld t.ctx page "page" "lru");
  w64 t.ctx page "page" "private" order;
  set_buddy_flag t.ctx page true;
  set_nr_free t order (nr_free t order + 1);
  Hashtbl.replace t.free_orders (page_to_pfn t page) order

let del_free t page order =
  Klist.del t.ctx (fld t.ctx page "page" "lru");
  set_buddy_flag t.ctx page false;
  w64 t.ctx page "page" "private" 0;
  set_nr_free t order (nr_free t order - 1);
  Hashtbl.remove t.free_orders (page_to_pfn t page)

let create ctx ~npages =
  let page_size = Ktypes.page_size in
  let zone = alloc ctx "zone" in
  w64 ctx zone "zone" "name" (cstring ctx "Normal");
  w64 ctx zone "zone" "zone_start_pfn" 0;
  w64 ctx zone "zone" "spanned_pages" npages;
  w64 ctx (fld ctx zone "zone" "managed_pages") "atomic64_t" "counter" npages;
  let mem_map = alloc_n ctx "page" npages in
  let data_base = alloc_raw ctx "page_data" (npages * page_size) in
  let t = { ctx; zone; mem_map; data_base; npages; page_size; free_orders = Hashtbl.create 64 } in
  for order = 0 to Ktypes.max_order - 1 do
    Klist.init ctx (free_list t order)
  done;
  (* Seed: carve the zone into max-order blocks. *)
  let max_block = 1 lsl (Ktypes.max_order - 1) in
  let pfn = ref 0 in
  while !pfn + max_block <= npages do
    add_free t (pfn_to_page t !pfn) (Ktypes.max_order - 1);
    pfn := !pfn + max_block
  done;
  let rec seed_rest pfn order =
    if order >= 0 then
      if pfn + (1 lsl order) <= npages then begin
        add_free t (pfn_to_page t pfn) order;
        seed_rest (pfn + (1 lsl order)) order
      end
      else seed_rest pfn (order - 1)
  in
  seed_rest !pfn (Ktypes.max_order - 2);
  t

(** Allocate a 2^order block; returns the head page. *)
let alloc_pages t order =
  let rec find o =
    if o >= Ktypes.max_order then failwith "Kbuddy.alloc_pages: out of memory"
    else if Klist.is_empty t.ctx (free_list t o) then find (o + 1)
    else o
  in
  let o = find order in
  let lru = Klist.next t.ctx (free_list t o) in
  let page = lru - off t.ctx "page" "lru" in
  del_free t page o;
  (* Split down to the requested order, putting upper halves back. *)
  let rec split o =
    if o > order then begin
      let o = o - 1 in
      let buddy = pfn_to_page t (page_to_pfn t page + (1 lsl o)) in
      add_free t buddy o;
      split o
    end
  in
  split o;
  w32 t.ctx (fld t.ctx page "page" "_refcount") "atomic_t" "counter" 1;
  page

(** Free a 2^order block, coalescing with free buddies. *)
let free_pages t page order =
  w32 t.ctx (fld t.ctx page "page" "_refcount") "atomic_t" "counter" 0;
  let rec coalesce pfn order =
    if order >= Ktypes.max_order - 1 then add_free t (pfn_to_page t pfn) order
    else begin
      let buddy_pfn = pfn lxor (1 lsl order) in
      match Hashtbl.find_opt t.free_orders buddy_pfn with
      | Some o when o = order && buddy_pfn + (1 lsl order) <= t.npages ->
          del_free t (pfn_to_page t buddy_pfn) order;
          coalesce (min pfn buddy_pfn) (order + 1)
      | _ -> add_free t (pfn_to_page t pfn) order
    end
  in
  coalesce (page_to_pfn t page) order

let alloc_page t = alloc_pages t 0
let free_page t page = free_pages t page 0

let total_free_pages t =
  let total = ref 0 in
  for o = 0 to Ktypes.max_order - 1 do
    total := !total + (nr_free t o * (1 lsl o))
  done;
  !total
