(** Debugger-side bindings: create a {!Target} over a booted kernel with
    all symbols, macro constants and helper functions registered — the
    equivalent of Visualinux's ~500 lines of GDB scripts that expose
    static-inline kernel functions to ViewCL.

    Registered symbols include [init_task], [runqueues], [pid_hash],
    [super_blocks], [workqueues], [slab_caches], [node_zones], [mem_map],
    [swap_info], [irq_desc], [ipc_namespace], [rcu_state] and
    [devices_kset]; helper functions include [cpu_rq], [cpu_curr],
    [task_state], [task_of_pid], [pid_task], the maple-tree decoders
    ([mte_to_node], [mte_node_type], [mte_is_leaf], [mas_walk],
    [ma_is_dead]), the XArray decoders ([xa_is_node], [xa_to_node]),
    page helpers ([page_to_pfn], [pfn_to_page], [page_address],
    [page_content]), VFS helpers ([fd_file], [data_file], [i_pipe_of],
    [sock_of_file]), [func_name], [spin_is_locked], [container_of] and
    [sighand_action]. *)

val attach : Kstate.t -> Target.t

val obj_addr : Target.t -> Target.value -> int
(** GDB-style decay: an aggregate lvalue's own address; a pointer's or
    integer's contents. *)

val task_state_string : int -> int -> string
(** Render (__state, exit_state) the way [ps] would. *)
