(** The XArray ([struct xarray]) on raw simulated memory.

    Linux 6.1's successor of the radix tree; backs the page cache (ULK
    Fig 15-1) and the IDR used by IPC and PID namespaces. Internal node
    pointers are tagged with low bits [10b] exactly as the kernel's
    [xa_mk_node]; entries are untagged object pointers. *)

type addr = Kmem.addr

val chunk_shift : int
val chunk_size : int  (** 64 slots per node *)

(** {1 Entry tagging (xarray.h)} *)

val is_node : int -> bool
val to_node : int -> addr
val mk_node : addr -> int

(** {1 Operations} *)

val init : Kcontext.t -> addr -> unit
(** Initialize the [xarray] struct at the given address. *)

val store : Kcontext.t -> addr -> int -> int -> unit
(** [store ctx xa index entry] — xa_store: grows the tree as needed;
    storing 0 erases. A single entry at index 0 is stored directly in
    [xa_head] without a node, as in the kernel. *)

val load : Kcontext.t -> addr -> int -> int
(** xa_load: 0 when absent. *)

val entries : Kcontext.t -> addr -> (int * int) list
(** All (index, entry) pairs in index order. *)

val count : Kcontext.t -> addr -> int

(** {1 Node access (for visualization and tests)} *)

val node_shift : Kcontext.t -> addr -> int
val node_count : Kcontext.t -> addr -> int
val slot : Kcontext.t -> addr -> int -> int
val head : Kcontext.t -> addr -> int
