(** Pipes and the splice zero-copy path (CVE-2022-0847, "Dirty Pipe").

    A [pipe_inode_info] owns a 16-slot ring of [pipe_buffer]s referencing
    pages. {!splice_from_mapping} attaches a {e page-cache page} to a
    buffer without copying — and, when [~buggy:true], reproduces the
    Dirty Pipe flaw: the buffer's [flags] word is left uninitialized, so
    a stale [PIPE_BUF_FLAG_CAN_MERGE] makes the shared page writable
    through the pipe. *)

type addr = Kmem.addr

val create : Kcontext.t -> Kvfs.t -> Kfuncs.t -> addr * addr * addr
(** A pipe: (pipe_inode_info, read file, write file) — an anonymous inode
    carrying [i_pipe], opened twice with [pipefifo_fops]. *)

val buf_addr : Kcontext.t -> addr -> int -> addr
(** The ring slot of logical index [i] ([i mod ring_size]). *)

val write : Kcontext.t -> Kbuddy.t -> Kfuncs.t -> addr -> string -> addr
(** pipe_write: fresh page + CAN_MERGE flags (as anon pipe pages have);
    returns the buffer. *)

val read : Kcontext.t -> addr -> int option
(** pipe_read: consume the tail buffer. The retired ring slot is NOT
    scrubbed — its stale flags are what the bug later inherits. Returns
    the consumed length, [None] when empty. *)

val splice_from_mapping :
  Kcontext.t -> Kfuncs.t -> addr -> mapping:addr -> index:int -> len:int -> buggy:bool -> addr
(** Zero-copy splice of a page-cache page into the pipe. [buggy] leaves
    [flags] as-is (the CVE); otherwise they are cleared, as the fix does.
    @raise Invalid_argument when the page is not cached. *)

val buffers : Kcontext.t -> addr -> addr list
(** Occupied buffers, tail..head order. *)

val write_merge : Kcontext.t -> addr -> string -> (addr * int * string) option
(** A pipe write that merges into the last buffer when CAN_MERGE is set —
    the action that corrupts the page cache in the exploit. Returns
    (page, offset, data) to apply, or [None] when merging is refused. *)
