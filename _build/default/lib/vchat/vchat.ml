(** Natural-language to ViewQL synthesis (the paper's *vchat* command).

    The paper uses DeepSeek-V2 with an in-context-learning prompt; we
    substitute a deterministic rule-based synthesizer over the same
    vocabulary so that the Table 3 experiment is reproducible offline.
    The prompt template the paper would send to an LLM is kept in
    {!prompt_template} for documentation parity, and an [llm] callback can
    be plugged in to use a real model instead of the rules. *)

let prompt_template =
  {|A kernel object graph is extracted from a running Linux kernel.
The vertices are denoted by Box (objects), and the edges are Links (pointers).
- Each box has a type and members, and may have the following attributes:
  view (string), trimmed (bool), collapsed (bool), direction (string).
- Each member is either a text (a named scalar value) or a link to another box.
A domain-specific language ViewQL, whose syntax is similar to SQL database
query languages, can be applied to the kernel object graph.
The ViewQL only has two types of statements:
- name = SELECT <type>[.field] FROM <*|set|REACHABLE(set)> [AS alias] [WHERE cond]
- UPDATE <set-expression> WITH attr: value
Set expressions support difference (\), intersection (&) and UNION.
Here are some examples:
Example 1: select all cfs_rq boxes and change their views to sched_tree.
  a = SELECT cfs_rq FROM *
  UPDATE a WITH view: sched_tree
Example 2: collapse all tasks that have no address space.
  a = SELECT task_struct FROM * WHERE mm == NULL
  UPDATE a WITH collapsed: true
I intend to {{desc}}. Synthesize a ViewQL program.|}

let prompt_for desc =
  Str.global_replace (Str.regexp_string "{{desc}}") desc prompt_template

(* ------------------------------------------------------------------ *)
(* Vocabulary *)

(* Kernel type names and their informal aliases. *)
let type_aliases =
  [ ("task", "task_struct"); ("tasks", "task_struct"); ("process", "task_struct");
    ("processes", "task_struct"); ("task_struct", "task_struct");
    ("task_structs", "task_struct");
    ("vma", "vm_area_struct"); ("vmas", "vm_area_struct");
    ("vm_area_struct", "vm_area_struct"); ("vm_area_structs", "vm_area_struct");
    ("memory area", "vm_area_struct"); ("memory areas", "vm_area_struct");
    ("maple_node", "maple_node"); ("maple_nodes", "maple_node");
    ("superblock", "super_block"); ("superblocks", "super_block");
    ("super_block", "super_block");
    ("socket", "sock"); ("sockets", "sock");
    ("page", "page"); ("pages", "page");
    ("pid hash table entry", "upid"); ("pid hash table entries", "upid");
    ("irq descriptor", "irq_desc"); ("irq descriptors", "irq_desc");
    ("irq_desc", "irq_desc");
    ("sigaction", "k_sigaction"); ("sigactions", "k_sigaction");
    ("file", "file"); ("files", "file");
    ("mm_struct", "mm_struct"); ("list", "List"); ("lists", "List");
    ("superblock list", "List"); ("super_block list", "List");
    ("red-black tree", "RBTree"); ("rbtree", "RBTree");
    ("xa_node", "xa_node"); ("xa_nodes", "xa_node");
    ("pipe", "pipe_inode_info"); ("pipes", "pipe_inode_info") ]

(* Field-name aliases appearing in natural descriptions. *)
let field_aliases =
  [ ("address space", "mm"); ("memory mapping", "mm"); ("mm", "mm");
    ("action", "action"); ("block device", "s_bdev"); ("s_bdev", "s_bdev");
    ("write buffer", "wqlen"); ("receive buffer", "rqlen");
    ("handler", "handler"); ("file", "vm_file"); ("pid", "pid"); ("ppid", "ppid");
    ("address", "addr") ]

exception Cannot_synthesize of string

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* Word-boundary match: "pages" must not match inside "nrpages". *)
let contains_word hay needle =
  let lh = String.length hay and ln = String.length needle in
  let is_word c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' in
  let rec go i =
    if i + ln > lh then false
    else if
      String.sub hay i ln = needle
      && (i = 0 || not (is_word hay.[i - 1]))
      && (i + ln = lh || not (is_word hay.[i + ln]))
    then true
    else go (i + 1)
  in
  ln > 0 && go 0

let lower = String.lowercase_ascii

(* Find the first (longest) alias mentioned in the description. *)
let find_alias table desc =
  let cands = List.filter (fun (a, _) -> contains_word desc (lower a)) table in
  match List.sort (fun (a, _) (b, _) -> compare (String.length b) (String.length a)) cands with
  | (a, t) :: _ -> Some (a, t)
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Clause analysis *)

type action = Collapse | Trim | Set_view of string | Set_direction of string

let re_view = Str.regexp "view[ :]+\"?\\([A-Za-z_][A-Za-z0-9_]*\\)\"?"
let re_show_view = Str.regexp "\"?\\([A-Za-z_][A-Za-z0-9_]*\\)\"?[ ]+view"
let re_hex = Str.regexp "0x[0-9a-fA-F]+"
let re_number = Str.regexp "\\b\\([0-9]+\\)\\b"
let re_field_eq = Str.regexp "\\([a-z_][a-z0-9_]*\\) *\\(==\\|!=\\|is not\\|is\\) *\\([A-Za-z0-9_]+\\)"

let detect_action desc =
  if contains desc "collapse" || contains desc "shrink" then Some Collapse
  else if contains desc "trim" || contains desc "invisible" || contains desc "hide"
          || contains desc "remove" then Some Trim
  else if contains desc "vertical" || contains desc "top-down" then
    Some (Set_direction "vertical")
  else if contains desc "horizontal" then Some (Set_direction "horizontal")
  else if Str.string_match (Str.regexp ".*display") desc 0 || contains desc "view" then
    (* display view "x" / with the x view *)
    try
      ignore (Str.search_forward re_view desc 0);
      Some (Set_view (Str.matched_group 1 desc))
    with Not_found -> (
      try
        ignore (Str.search_forward re_show_view desc 0);
        Some (Set_view (Str.matched_group 1 desc))
      with Not_found -> None)
  else None

(* Detect a WHERE condition from the clause text. *)
let detect_cond desc =
  let neg = contains desc "not " || contains desc "no " || contains desc "without"
            || contains desc "empty" || contains desc "n't" in
  (* "address is not 0x..." *)
  let hex =
    try
      ignore (Str.search_forward re_hex desc 0);
      Some (Str.matched_string desc)
    with Not_found -> None
  in
  match hex with
  | Some h when contains desc "address" || contains desc "whose address" ->
      Some (Printf.sprintf "addr %s %s" (if neg then "!=" else "==") h)
  | _ -> (
      (* explicit field comparisons, e.g. "pid == 2", "action is not
         configured" *)
      try
        ignore (Str.search_forward re_field_eq desc 0);
        let f = Str.matched_group 1 desc and op = Str.matched_group 2 desc in
        let v = Str.matched_group 3 desc in
        let explicit = op = "==" || op = "!=" in
        let op = match op with "is" -> "==" | "is not" -> "!=" | o -> o in
        (* "configured"/"set" mean non-NULL: "is not configured" = NULL. *)
        let op, v =
          match lower v with
          | "configured" | "set" -> ((if op = "==" then "!=" else "=="), "NULL")
          | "null" | "nil" | "empty" -> (op, "NULL")
          | _ -> (op, v)
        in
        if explicit || v = "NULL"
           || List.mem f (List.map snd field_aliases)
           || f = "pid" || f = "ppid" then
          Some (Printf.sprintf "%s %s %s" f op v)
        else raise Not_found
      with Not_found -> (
        match find_alias field_aliases desc with
        | Some (_, "wqlen") when contains desc "both" && contains desc "empty" ->
            Some "wqlen == 0 AND rqlen == 0"
        | Some (alias, field) ->
            let mentions_null =
              contains desc "no " || contains desc "non-null" || contains desc "not null"
              || contains desc "null" || contains desc "not configured"
              || contains desc "non-configured" || contains desc "not connected"
              || contains desc "has no" || contains desc "have no"
            in
            ignore alias;
            if not mentions_null then None
            else if contains desc "non-null" || contains desc "not null" then
              Some (Printf.sprintf "%s != NULL" field)
            else Some (Printf.sprintf "%s == NULL" field)
        | None -> (
            (* "that have no memory mapping" handled above; pid lists *)
            if contains desc "writable" then
              Some
                (if contains desc "not writable" || contains desc "non-writable" then
                   "is_writable != true"
                 else "is_writable == true")
            else
              try
                ignore (Str.search_forward re_number desc 0);
                let n = Str.matched_group 1 desc in
                if contains desc "pid" then
                  Some (Printf.sprintf "pid == %s OR ppid == %s" n n)
                else None
              with Not_found -> None)))

(* Split the description into independent clauses. *)
let clauses desc =
  Str.split (Str.regexp "\\(, and \\|; \\| and \\|, \\)") desc

let attr_of_action = function
  | Collapse -> ("collapsed", "true")
  | Trim -> ("trimmed", "true")
  | Set_view v -> ("view", v)
  | Set_direction d -> ("direction", d)

(** Synthesize a ViewQL program from a natural-language [desc]. The
    optional [llm] callback (desc -> program) takes precedence, modelling
    a real model behind the same interface. *)
let synthesize ?llm desc =
  match llm with
  | Some f -> f desc
  | None ->
      let stmts = ref [] in
      let var = ref 0 in
      let emit ?field ty cond action =
        incr var;
        let name = Printf.sprintf "s%d" !var in
        let what = match field with Some f -> ty ^ "." ^ f | None -> ty in
        let sel =
          match cond with
          | Some c -> Printf.sprintf "%s = SELECT %s FROM * WHERE %s" name what c
          | None -> Printf.sprintf "%s = SELECT %s FROM *" name what
        in
        let attr, v = attr_of_action action in
        stmts := Printf.sprintf "UPDATE %s WITH %s: %s" name attr v :: sel :: !stmts
      in
      (* "the <field> of <type>" projects onto a member's target boxes. *)
      let re_projection = Str.regexp "the \\([a-z_][a-z0-9_]*\\) of" in
      (* A clause may carry only the subject ("find all X whose ...") with
         the action in the next one ("... and collapse them"). *)
      let pending = ref None in
      List.iter
        (fun clause ->
          let clause = lower (String.trim clause) in
          if clause = "" then ()
          else begin
            let action = detect_action clause in
            let subject =
              match find_alias type_aliases clause with
              | Some (_, ty) ->
                  let field =
                    try
                      ignore (Str.search_forward re_projection clause 0);
                      Some (Str.matched_group 1 clause)
                    with Not_found -> None
                  in
                  let cond = if field = None then detect_cond clause else None in
                  Some (ty, field, cond)
              | None -> None
            in
            match (action, subject) with
            | Some action, Some (ty, field, cond) ->
                emit ?field ty cond action;
                pending := Some (ty, field, cond)
            | Some action, None -> (
                (* anaphora: "... and collapse them" *)
                match !pending with
                | Some (ty, field, cond) -> emit ?field ty cond action
                | None -> ())
            | None, Some subj -> pending := Some subj
            | None, None -> ()
          end)
        (clauses (lower desc));
      if !stmts = [] then raise (Cannot_synthesize desc);
      String.concat "\n" (List.rev !stmts)
