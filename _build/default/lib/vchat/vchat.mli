(** Natural-language to ViewQL synthesis — the *vchat* command (paper
    §2.4, §4.2).

    The paper prompts DeepSeek-V2 with a ViewQL description plus
    in-context examples; we substitute a deterministic rule-based
    synthesizer over the same vocabulary so the Table 3 experiment runs
    offline and reproducibly. A real model can be plugged in through the
    [llm] callback of {!synthesize}. *)

val prompt_template : string
(** The paper's §4.2 prompt skeleton (kept for documentation parity). *)

val prompt_for : string -> string
(** Instantiate {!prompt_template} with a user description. *)

exception Cannot_synthesize of string
(** Raised when no actionable clause is recognized. *)

val synthesize : ?llm:(string -> string) -> string -> string
(** [synthesize desc] returns a ViewQL program for the natural-language
    request [desc]. Understands the Table 3 vocabulary: display/shrink/
    collapse/trim/hide actions, type aliases ("tasks", "memory areas",
    "superblocks", ...), view and direction phrases, NULL-ness conditions
    ("that have no address space", "not configured"), explicit
    comparisons ("pid == 2"), address pinning ("whose address is not
    0x..."), member projection ("the slots of all maple_nodes") and
    clause-to-clause anaphora ("..., and collapse them").

    When [llm] is given it is called instead of the rules (modelling a
    hosted model behind the same interface).
    @raise Cannot_synthesize when nothing actionable is found. *)
