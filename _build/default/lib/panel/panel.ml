(** The pane-based interactive debugger front-end (paper §2.4, Fig. 2).

    Panes form a tree built by horizontal/vertical splits (an idea the
    paper borrows from tmux). A *primary* pane displays a ViewCL-extracted
    object graph, refinable with ViewQL; a *secondary* pane displays a
    set of boxes picked from another pane. The cross-pane [focus]
    operation finds an object in every displayed graph at once. *)

type pane_id = int

type kind =
  | Primary of { program : string }  (** ViewCL source that produced the graph *)
  | Secondary of { source : pane_id; picked : Vgraph.box_id list }

type pane = {
  pid : pane_id;
  kind : kind;
  graph : Vgraph.t;
  session : Viewql.session;  (** named ViewQL sets persist per pane *)
  mutable history : string list;  (** ViewQL programs applied, oldest first *)
}

type layout =
  | Leaf of pane_id
  | Hsplit of layout * layout  (** side by side *)
  | Vsplit of layout * layout  (** stacked *)

type t = {
  panes : (pane_id, pane) Hashtbl.t;
  mutable layout : layout option;
  mutable next_id : int;
}

let create () = { panes = Hashtbl.create 8; layout = None; next_id = 1 }

let pane t id =
  match Hashtbl.find_opt t.panes id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Panel: no pane %d" id)

let pane_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.panes [] |> List.sort compare

let fresh t kind graph =
  let id = t.next_id in
  t.next_id <- id + 1;
  let p = { pid = id; kind; graph; session = Viewql.make_session graph; history = [] } in
  Hashtbl.replace t.panes id p;
  p

(* Replace [Leaf old] in the layout with [mk (Leaf old) (Leaf new)]. *)
let rec splice layout old mk fresh_leaf =
  match layout with
  | Leaf id when id = old -> mk (Leaf id) fresh_leaf
  | Leaf id -> Leaf id
  | Hsplit (a, b) -> Hsplit (splice a old mk fresh_leaf, splice b old mk fresh_leaf)
  | Vsplit (a, b) -> Vsplit (splice a old mk fresh_leaf, splice b old mk fresh_leaf)

(** Open the first primary pane. *)
let open_primary t ~program graph =
  let p = fresh t (Primary { program }) graph in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (Hsplit (l, Leaf p.pid)));
  p

(** Split an existing pane, placing a new primary pane next to it. *)
let split t ~dir ~at ~program graph =
  ignore (pane t at);
  let p = fresh t (Primary { program }) graph in
  let mk a b = match dir with `Horizontal -> Hsplit (a, b) | `Vertical -> Vsplit (a, b) in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (splice l at mk (Leaf p.pid)));
  p

(** Select boxes from [src] into a new secondary pane (shares the graph:
    the secondary pane is a focused window onto the same object graph,
    with everything else trimmed in its own rendering set). *)
let select t ~from:src ids =
  let sp = pane t src in
  let p = fresh t (Secondary { source = src; picked = ids }) sp.graph in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (splice l src (fun a b -> Vsplit (a, b)) (Leaf p.pid)));
  p

(** Refine a pane by a ViewQL program; returns #boxes updated. *)
let refine t ~at src =
  let p = pane t at in
  let n = Viewql.exec p.session src in
  p.history <- p.history @ [ src ];
  n

(** Cross-pane focus: find the object at [addr] in every pane. *)
let focus t ~addr =
  List.concat_map
    (fun id ->
      let p = pane t id in
      List.filter_map
        (fun b -> if b.Vgraph.addr = addr && addr <> 0 then Some (id, b.Vgraph.id) else None)
        (Vgraph.boxes p.graph))
    (pane_ids t)

let close t id =
  Hashtbl.remove t.panes id;
  let rec prune = function
    | Leaf x when x = id -> None
    | Leaf x -> Some (Leaf x)
    | Hsplit (a, b) -> join (prune a) (prune b) (fun a b -> Hsplit (a, b))
    | Vsplit (a, b) -> join (prune a) (prune b) (fun a b -> Vsplit (a, b))
  and join a b mk =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (mk a b)
  in
  t.layout <- Option.join (Option.map prune t.layout)

(* ------------------------------------------------------------------ *)
(* Persistence: serialize programs + refinement history, so a debugging
   session's views can be re-created against a (new) kernel state. *)

let rec layout_to_json = function
  | Leaf id -> Printf.sprintf "{\"leaf\":%d}" id
  | Hsplit (a, b) -> Printf.sprintf "{\"h\":[%s,%s]}" (layout_to_json a) (layout_to_json b)
  | Vsplit (a, b) -> Printf.sprintf "{\"v\":[%s,%s]}" (layout_to_json a) (layout_to_json b)

let pane_to_json p =
  let kind =
    match p.kind with
    | Primary { program } -> Printf.sprintf "\"program\":\"%s\"" (Vgraph.json_escape program)
    | Secondary { source; picked } ->
        Printf.sprintf "\"source\":%d,\"picked\":[%s]" source
          (String.concat "," (List.map string_of_int picked))
  in
  Printf.sprintf "{\"id\":%d,%s,\"history\":[%s]}" p.pid kind
    (String.concat "," (List.map (fun h -> Printf.sprintf "\"%s\"" (Vgraph.json_escape h)) p.history))

let to_json t =
  Printf.sprintf "{\"layout\":%s,\"panes\":[%s]}"
    (match t.layout with Some l -> layout_to_json l | None -> "null")
    (String.concat "," (List.map (fun id -> pane_to_json (pane t id)) (pane_ids t)))

(** Recover the replayable (program, history) pairs from a session JSON
    produced by {!to_json}. *)
let programs_of_json json =
  let j = Json.parse json in
  match Json.member "panes" j with
  | Some (Json.List panes) ->
      List.filter_map
        (fun p ->
          match Json.member "program" p with
          | Some (Json.String program) ->
              let history =
                match Json.member "history" p with
                | Some (Json.List hs) ->
                    List.filter_map (function Json.String h -> Some h | _ -> None) hs
                | _ -> []
              in
              Some (program, history)
          | _ -> None)
        panes
  | _ -> []

(** The (program, history) pairs of all primary panes — enough to replay a
    session against a fresh target. *)
let saved_programs t =
  List.filter_map
    (fun id ->
      let p = pane t id in
      match p.kind with
      | Primary { program } -> Some (program, p.history)
      | Secondary _ -> None)
    (pane_ids t)
