(** ViewQL — the View Query Language (paper §2.3).

    An SQL-like language over an extracted {!Vgraph.t}, deliberately
    limited (no nested queries) so it stays synthesizable from natural
    language:

    {v
    name = SELECT <type>[.field] FROM <source> [AS alias] [WHERE cond]
    UPDATE <set-expression> WITH attr: value [, attr: value]*
    v}

    - [source] is [*] (all boxes), a named set, [REACHABLE(set)] (link
      closure) or [IS_INSIDE(set)] (containment closure).
    - [type.field] / [type->field] project onto the boxes referenced by
      item [field] of each selected box.
    - conditions compare recorded member values ([pid == 2], [mm != NULL],
      [is_writable == true]) with [AND]/[OR]; an [AS] alias (or the type
      name itself) compares the box's own address.
    - set expressions combine named sets with [\ ] (difference), [&] /
      [INTERSECT], and [|] / [UNION].
    - attributes: [view], [trimmed], [collapsed], [shrinked] (alias of
      collapsed), [direction]; anything else lands in [attrs.extra]. *)

exception Error of string

(** {1 Abstract syntax} *)

type value = Vint of int | Vstr of string | Vbool of bool | Vnull
type cmp = Eq | Ne | Lt | Gt | Le | Ge

type cond = Cmp of string * cmp * value | And of cond * cond | Or of cond * cond

type set_expr =
  | Named of string
  | Diff of set_expr * set_expr
  | Inter of set_expr * set_expr
  | Union of set_expr * set_expr

type source =
  | All
  | From_set of set_expr
  | Reachable of set_expr
  | Is_inside of set_expr

type select_spec = {
  bind : string;
  sel_type : string;
  sel_field : string option;
  src : source;
  alias : string option;
  where : cond option;
}

type stmt =
  | Select of select_spec
  | Update of { target : set_expr; attrs : (string * string) list }

type program = stmt list

val parse : string -> program
(** @raise Error on malformed input. [//] and [--] comments allowed. *)

(** {1 Execution} *)

type session
(** Holds the named result sets of previous SELECTs, so follow-up
    programs can refine earlier selections interactively. *)

val make_session : Vgraph.t -> session
val eval_set : session -> set_expr -> Vgraph.box_id list
val select_boxes : session -> select_spec -> Vgraph.box_id list

val exec_program : session -> program -> int
(** Execute; returns the number of box updates applied. *)

val exec : session -> string -> int
(** [parse] + {!exec_program}. *)

val run : Vgraph.t -> string -> session * int
(** One-shot: fresh session, execute, return it for later refinement. *)
