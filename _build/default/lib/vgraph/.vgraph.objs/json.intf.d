lib/vgraph/json.mli:
