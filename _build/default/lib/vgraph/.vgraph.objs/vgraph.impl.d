lib/vgraph/vgraph.ml: Buffer Char Hashtbl List Printf String
