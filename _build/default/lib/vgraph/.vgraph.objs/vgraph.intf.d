lib/vgraph/vgraph.mli: Hashtbl
