lib/vgraph/json.ml: Buffer Char Float List Printf String
