(** A small JSON implementation (parser + printer).

    Used for pane-session persistence and the GDB-extension/visualizer
    message protocol. Supports the full JSON grammar except surrogate
    pairs in \u escapes; numbers are parsed as OCaml floats with an
    integer fast path. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.17g" f
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | List l -> Printf.sprintf "[%s]" (String.concat "," (List.map to_string l))
  | Obj kvs ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (to_string v)) kvs))

(* ------------------------------------------------------------------ *)
(* Parser *)

type pstate = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail "expected %C at offset %d, got %C" c st.pos d
  | None -> fail "expected %C at end of input" c

let parse_string_body st =
  (* [pos] is just after the opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            if st.pos + 4 >= String.length st.src then fail "bad \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code = int_of_string ("0x" ^ hex) in
            (* encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            st.pos <- st.pos + 5;
            go ()
        | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 1; go ()
        | None -> fail "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' ->
      st.pos <- st.pos + 1;
      String (parse_string_body st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (st.pos <- st.pos + 1; Obj [])
      else begin
        let rec members acc =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; members ((k, v) :: acc)
          | Some '}' -> st.pos <- st.pos + 1; List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (st.pos <- st.pos + 1; List [])
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; elements (v :: acc)
          | Some ']' -> st.pos <- st.pos + 1; List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        List (elements [])
      end
  | Some 't' ->
      if String.length st.src - st.pos >= 4 && String.sub st.src st.pos 4 = "true" then begin
        st.pos <- st.pos + 4;
        Bool true
      end
      else fail "bad literal at offset %d" st.pos
  | Some 'f' ->
      if String.length st.src - st.pos >= 5 && String.sub st.src st.pos 5 = "false" then begin
        st.pos <- st.pos + 5;
        Bool false
      end
      else fail "bad literal at offset %d" st.pos
  | Some 'n' ->
      if String.length st.src - st.pos >= 4 && String.sub st.src st.pos 4 = "null" then begin
        st.pos <- st.pos + 4;
        Null
      end
      else fail "bad literal at offset %d" st.pos
  | Some _ ->
      let start = st.pos in
      while
        st.pos < String.length st.src
        && match st.src.[st.pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false
      do
        st.pos <- st.pos + 1
      done;
      if st.pos = start then fail "unexpected character at offset %d" start;
      let lit = String.sub st.src start (st.pos - start) in
      (match int_of_string_opt lit with
      | Some n -> Int n
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number %S" lit))

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail "trailing input at offset %d" st.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let member_exn key j =
  match member key j with
  | Some v -> v
  | None -> fail "missing member %S" key

let to_int = function Int n -> n | Float f -> int_of_float f | _ -> fail "expected int"
let to_str = function String s -> s | _ -> fail "expected string"
let to_list = function List l -> l | _ -> fail "expected list"
let to_bool = function Bool b -> b | _ -> fail "expected bool"
