(** A small JSON implementation (parser + printer), used for pane-session
    persistence and the GDB-extension/visualizer protocol. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Parse_error} with a formatted message. *)

val to_string : t -> string
(** Compact serialization; strings are escaped per RFC 8259. *)

val parse : string -> t
(** @raise Parse_error on malformed input or trailing characters. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects too. *)

val member_exn : string -> t -> t
(** @raise Parse_error when absent. *)

val to_int : t -> int
(** Accepts [Int] and integral [Float]. @raise Parse_error otherwise. *)

val to_str : t -> string
val to_list : t -> t list
val to_bool : t -> bool
