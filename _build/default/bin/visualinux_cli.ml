(* The visualinux command-line front-end.

   Boots the simulated kernel, runs the evaluation workload, and executes
   v-commands — either one-shot via subcommands or interactively via a
   GDB-style prompt.

   Examples:
     visualinux figures                 # list the Table 2 script library
     visualinux plot 7-1                # render a figure as ASCII
     visualinux plot 9-2 --format dot   # ... or Graphviz/SVG/JSON
     visualinux chat 7-1 "display view \"sched\" of all processes"
     visualinux query 3-4 'a = SELECT task_struct FROM * WHERE pid > 5
                           UPDATE a WITH collapsed: true'
     visualinux repl                    # interactive session
*)

open Cmdliner

let boot_session seed iters =
  let kernel = Kstate.boot () in
  let w = Workload.create ~seed kernel in
  Workload.run ~iters w;
  Visualinux.attach kernel

(* common options *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")

let iters_arg =
  Arg.(value & opt int 3 & info [ "iters" ] ~docv:"N" ~doc:"Workload iterations.")

let format_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("ascii", `Ascii); ("dot", `Dot); ("svg", `Svg); ("json", `Json);
             ("html", `Html) ])
        `Ascii
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format: ascii, dot, svg, json or html.")

let render fmt graph =
  match fmt with
  | `Ascii -> Render.ascii graph
  | `Dot -> Render.dot graph
  | `Svg -> Render.svg graph
  | `Json -> Vgraph.to_json graph
  | `Html -> Render_html.html graph

let fig_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIG" ~doc:"Figure id from the script library (e.g. 7-1, 9-2, socketconn).")

let find_script fig =
  match Scripts.find fig with
  | Some sc -> Ok sc
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown figure %S; try one of: %s" fig
             (String.concat ", " (List.map (fun s -> s.Scripts.fig) Scripts.table2))))

(* ------------------------------------------------------------------ *)
(* figures *)

let figures_cmd =
  let doc = "List the ViewCL script library (the Table 2 figures)." in
  let run () =
    Printf.printf "%-12s %-45s %4s %s\n" "id" "description" "LoC" "delta";
    List.iter
      (fun (sc : Scripts.script) ->
        Printf.printf "%-12s %-45s %4d %s\n" sc.Scripts.fig sc.Scripts.descr (Scripts.loc sc)
          (Scripts.delta_glyph sc.Scripts.delta))
      Scripts.table2
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* plot *)

let plot_cmd =
  let doc = "Evaluate a library ViewCL program (vplot) and render the result." in
  let run seed iters fmt fig =
    match find_script fig with
    | Error e -> Error e
    | Ok sc ->
        let s = boot_session seed iters in
        let _, res, stats = Visualinux.plot_figure s sc in
        print_string (render fmt res.Viewcl.graph);
        Printf.eprintf "[%d boxes, %d target reads, %.2f ms]\n" stats.Visualinux.boxes
          stats.Visualinux.reads stats.Visualinux.wall_ms;
        Ok ()
  in
  Cmd.v
    (Cmd.info "plot" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg))

(* ------------------------------------------------------------------ *)
(* plot-file: run a user-supplied .vcl program *)

let plot_file_cmd =
  let doc = "Evaluate a ViewCL program from a file (vplot)." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"ViewCL source file.")
  in
  let run seed iters fmt file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let s = boot_session seed iters in
    match Visualinux.vplot s ~title:file src with
    | _, res, _ ->
        print_string (render fmt res.Viewcl.graph);
        Ok ()
    | exception Viewcl.Error m -> Error (`Msg m)
  in
  Cmd.v
    (Cmd.info "plot-file" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ file_arg))

(* ------------------------------------------------------------------ *)
(* query: plot a figure then apply ViewQL (vctrl) *)

let query_cmd =
  let doc = "Plot a figure, then apply a ViewQL program to it (vctrl)." in
  let ql_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VIEWQL" ~doc:"ViewQL program.")
  in
  let run seed iters fmt fig ql =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vctrl s (Visualinux.Apply { pane = pane.Panel.pid; viewql = ql }) with
        | Visualinux.Updated n ->
            Printf.eprintf "[%d boxes updated]\n" n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | _ -> Error (`Msg "unexpected vctrl result")
        | exception Viewql.Error m -> Error (`Msg m))
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ ql_arg))

(* ------------------------------------------------------------------ *)
(* chat: plot a figure then refine with natural language (vchat) *)

let chat_cmd =
  let doc = "Plot a figure, then refine it with a natural-language request (vchat)." in
  let nl_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"TEXT" ~doc:"Natural-language refinement.")
  in
  let run seed iters fmt fig text =
    match find_script fig with
    | Error e -> Error e
    | Ok sc -> (
        let s = boot_session seed iters in
        let pane, res, _ = Visualinux.plot_figure s sc in
        match Visualinux.vchat s ~pane:pane.Panel.pid text with
        | prog, n ->
            Printf.eprintf "synthesized ViewQL:\n%s\n[%d boxes updated]\n" prog n;
            print_string (render fmt res.Viewcl.graph);
            Ok ()
        | exception Vchat.Cannot_synthesize _ ->
            Error (`Msg "could not synthesize a ViewQL program from that description"))
  in
  Cmd.v
    (Cmd.info "chat" ~doc)
    Term.(term_result (const run $ seed_arg $ iters_arg $ format_arg $ fig_arg $ nl_arg))

(* ------------------------------------------------------------------ *)
(* repl *)

let repl_help =
  {|v-commands:
  vplot <fig>            plot a library figure into a new pane
  vplot auto <type> <C-expr>
                         synthesize a trivial ViewCL program for a struct
  vctrl ql <pane> <viewql ...>    apply ViewQL to a pane
  vctrl focus <hex-addr>          find an object in all panes
  vctrl close <pane>              close a pane
  vchat <pane> <text>    natural language -> ViewQL -> apply
  show <pane> [ascii|dot|svg|json]
  panes                  list panes
  figures                list library figures
  save <file> / quit|exit
|}

let repl_cmd =
  let doc = "Interactive session (a poor man's GDB prompt with v-commands)." in
  let run seed iters =
    let s = boot_session seed iters in
    Printf.printf "visualinux interactive session — %d tasks live. Type 'help'.\n"
      (List.length (Kstate.all_tasks s.Visualinux.kernel));
    let panes : (int, Vgraph.t) Hashtbl.t = Hashtbl.create 8 in
    let rec loop () =
      print_string "(visualinux) ";
      match input_line stdin with
      | exception End_of_file -> ()
      | line -> (
          let words =
            String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
          in
          (try
             match words with
             | [] -> ()
             | [ "quit" ] | [ "exit" ] -> raise Exit
             | [ "help" ] -> print_string repl_help
             | [ "figures" ] ->
                 List.iter
                   (fun sc -> Printf.printf "  %-12s %s\n" sc.Scripts.fig sc.Scripts.descr)
                   Scripts.table2
             | [ "panes" ] ->
                 List.iter
                   (fun id ->
                     let p = Panel.pane s.Visualinux.panel id in
                     Printf.printf "  pane %d: %s (%d boxes)\n" id
                       (match p.Panel.kind with
                       | Panel.Primary _ -> "primary"
                       | Panel.Secondary _ -> "secondary")
                       (Vgraph.box_count p.Panel.graph))
                   (Panel.pane_ids s.Visualinux.panel)
             | "vplot" :: "auto" :: ty :: rest ->
                 let expr = String.concat " " rest in
                 let pane, res, _ = Visualinux.vplot_auto s ~typ:ty ~expr in
                 Hashtbl.replace panes pane.Panel.pid res.Viewcl.graph;
                 Printf.printf "pane %d: %d boxes\n" pane.Panel.pid
                   (Vgraph.box_count res.Viewcl.graph)
             | [ "vplot"; fig ] -> (
                 match Scripts.find fig with
                 | None -> Printf.printf "unknown figure %s\n" fig
                 | Some sc ->
                     let pane, res, stats = Visualinux.plot_figure s sc in
                     Hashtbl.replace panes pane.Panel.pid res.Viewcl.graph;
                     Printf.printf "pane %d: %d boxes, %d reads\n" pane.Panel.pid
                       stats.Visualinux.boxes stats.Visualinux.reads)
             | "vctrl" :: "ql" :: pane :: rest ->
                 let n =
                   Panel.refine s.Visualinux.panel ~at:(int_of_string pane)
                     (String.concat " " rest)
                 in
                 Printf.printf "%d boxes updated\n" n
             | [ "vctrl"; "focus"; addr ] ->
                 let hits = Panel.focus s.Visualinux.panel ~addr:(int_of_string addr) in
                 List.iter
                   (fun (pid, bid) -> Printf.printf "  pane %d: box #%d\n" pid bid)
                   hits;
                 if hits = [] then print_endline "  (not found)"
             | [ "vctrl"; "close"; pane ] ->
                 Panel.close s.Visualinux.panel (int_of_string pane);
                 print_endline "closed"
             | "vchat" :: pane :: rest ->
                 let prog, n =
                   Visualinux.vchat s ~pane:(int_of_string pane) (String.concat " " rest)
                 in
                 Printf.printf "%s\n%d boxes updated\n" prog n
             | [ "show"; pane ] | [ "show"; pane; "ascii" ] ->
                 let p = Panel.pane s.Visualinux.panel (int_of_string pane) in
                 let roots =
                   match p.Panel.kind with
                   | Panel.Secondary { picked; _ } -> Some picked
                   | Panel.Primary _ -> None
                 in
                 print_string (Render.ascii ?roots p.Panel.graph)
             | [ "show"; pane; "dot" ] ->
                 print_string (Render.dot (Panel.pane s.Visualinux.panel (int_of_string pane)).Panel.graph)
             | [ "show"; pane; "svg" ] ->
                 print_string (Render.svg (Panel.pane s.Visualinux.panel (int_of_string pane)).Panel.graph)
             | [ "show"; pane; "json" ] ->
                 print_string (Vgraph.to_json (Panel.pane s.Visualinux.panel (int_of_string pane)).Panel.graph)
             | [ "save"; file ] ->
                 let oc = open_out file in
                 output_string oc (Panel.to_json s.Visualinux.panel);
                 close_out oc;
                 Printf.printf "session saved to %s\n" file
             | w :: _ -> Printf.printf "unknown command %S (try 'help')\n" w
           with
          | Exit -> raise Exit
          | Viewcl.Error m | Viewql.Error m -> Printf.printf "error: %s\n" m
          | Vchat.Cannot_synthesize _ -> print_endline "error: cannot synthesize ViewQL"
          | Failure m -> Printf.printf "error: %s\n" m
          | Invalid_argument m -> Printf.printf "error: %s\n" m
          | Not_found -> print_endline "error: not found");
          loop ())
    in
    (try loop () with Exit -> ());
    print_endline "bye."
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ seed_arg $ iters_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "Visualinux-style visual debugging of a simulated Linux kernel" in
  let info = Cmd.info "visualinux" ~version:"1.0.0" ~doc in
  Cmd.group info [ figures_cmd; plot_cmd; plot_file_cmd; query_cmd; chat_cmd; repl_cmd ]

let () = exit (Cmd.eval main_cmd)
