(* Paper §5.1: "reviving" Understanding the Linux Kernel.

   Renders every Table 2 figure from the live simulated kernel state.
   Pass a figure id (e.g. "7-1") to render just that one, or "--dot" to
   also write Graphviz files.

   Run with: dune exec examples/ulk_gallery.exe [-- <fig>] [-- --dot] *)

let () =
  let args = Array.to_list Sys.argv in
  let want_dot = List.mem "--dot" args in
  let only = List.find_opt (fun a -> Scripts.find a <> None) (List.tl args) in

  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  let s = Visualinux.attach kernel in

  let render (sc : Scripts.script) =
    let _, res, stats = Visualinux.plot_figure s sc in
    Printf.printf "\n############ ULK Fig %s — %s (%d LoC, %d boxes, Δ %s) ############\n\n"
      sc.Scripts.fig sc.Scripts.descr (Scripts.loc sc) stats.Visualinux.boxes
      (Scripts.delta_glyph sc.Scripts.delta);
    print_string (Render.ascii res.Viewcl.graph);
    if want_dot then begin
      let name = Printf.sprintf "ulk_%s.dot" (String.map (function '/' -> '_' | c -> c) sc.Scripts.fig) in
      let oc = open_out name in
      output_string oc (Render.dot res.Viewcl.graph);
      close_out oc;
      Printf.printf "(wrote %s)\n" name
    end
  in
  match only with
  | Some fig -> render (Option.get (Scripts.find fig))
  | None -> List.iter render Scripts.table2
