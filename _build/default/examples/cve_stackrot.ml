(* Paper §3.2 / §5.3: CVE-2023-3269 (StackRot).

   A CPU holding mm_read_lock stores into the maple tree; the retired
   nodes are freed *after* an RCU grace period, but a concurrent reader on
   another CPU still holds pointers into the old tree — a use-after-free.

   This example drives the full scenario on the simulated kernel and uses
   Visualinux at each step, exactly as the paper narrates: plot the tree,
   watch the dying nodes appear on the RCU waiting list, pin the fetched
   node with a natural-language instruction, and catch the UAF.

   Run with: dune exec examples/cve_stackrot.exe *)

let () =
  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  let s = Visualinux.attach kernel in
  let ctx = kernel.Kstate.ctx in
  let target = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let mm = Ksyscall.mm_of kernel target in
  let mt = Kcontext.fld ctx mm "mm_struct" "mm_mt" in

  print_endline "== CVE-2023-3269 (StackRot) ==\n";
  print_endline "[CPU#1] mm_read_lock(); find_vma_prev() -> mas_walk() fetches node pointers";
  Kmm.mmap_read_lock ctx mm ~cpu:1;
  let fetched = Kmaple.read_nodes ctx mt in
  let fetched_root = List.hd fetched in
  Printf.printf "         reader holds %d maple node pointers (root: 0x%x)\n\n"
    (List.length fetched) fetched_root;

  print_endline "[CPU#0] mm_read_lock(); expand_stack() -> mas_store_prealloc()";
  let stack = Kmaple.entries (Kmm.tree_of kernel.Kstate.mm mm) |> List.rev |> List.hd in
  let lo, hi, stack_vma = stack in
  (* grow the stack downwards by one page: rewrites the tree *)
  let new_lo = lo - Ktypes.page_size in
  Kcontext.w64 ctx stack_vma "vm_area_struct" "vm_start" new_lo;
  Kmaple.store_range
    ~free:(Kstate.ma_free_rcu kernel)
    (Kmm.tree_of kernel.Kstate.mm mm)
    ~lo:new_lo ~hi stack_vma;
  Printf.printf "         stack grew to [0x%x, 0x%x]; old nodes queued via ma_free_rcu()\n\n"
    new_lo hi;

  (* Plot: the maple tree AND the RCU waiting list holding the dying
     nodes (still readable — the grace period hasn't elapsed). *)
  let pane, res, _ = Visualinux.vplot s ~title:"StackRot" Scripts.cve_stackrot in
  Printf.printf "RCU callbacks pending: %d (all nodes still live)\n\n"
    (List.length (Krcu.pending kernel.Kstate.rcu ()));

  (* The paper's natural-language pin: collapse everything except the
     node the reader fetched. *)
  let nl =
    Printf.sprintf
      "Find me all vm_area_struct whose address is not 0x%x, and collapse them"
      stack_vma
  in
  Printf.printf "vchat> %s\n" nl;
  let ql, n = Visualinux.vchat s ~pane:pane.Panel.pid nl in
  Printf.printf "synthesized:\n%s\n(%d boxes collapsed)\n\n" ql n;
  print_string (Render.ascii res.Viewcl.graph);

  print_endline "\n[CPU#0] mm_read_unlock(); ... RCU grace period elapses ...";
  print_endline "         rcu_do_batch() -> mt_free_rcu() -> kmem_cache_free()";
  Krcu.run_grace_period kernel.Kstate.rcu;
  Kmem.clear_faults ctx.Kcontext.mem;

  print_endline "\n[CPU#1] mas_prev() dereferences the stale node:";
  ignore (Kcontext.r64 ctx fetched_root "maple_node" "parent");
  List.iter
    (fun f -> Format.printf "         !!! %a@." Kmem.pp_fault f)
    (Kmem.faults ctx.Kcontext.mem);
  Kmm.mmap_read_unlock ctx mm;

  (* Re-plot: the RCU list has drained and the old nodes now read as
     dead — this is the "corrupted state" view the paper shows. *)
  print_endline "\n--- after the grace period: stale nodes are poisoned ---\n";
  let _, res2, _ = Visualinux.vplot s ~title:"StackRot (after GP)" Scripts.cve_stackrot in
  ignore res2;
  Printf.printf "reader-held node live? %b  (use-after-free confirmed: %b)\n"
    (Kmem.is_live ctx.Kcontext.mem fetched_root)
    (Kmem.faults ctx.Kcontext.mem <> [])
