(* Quickstart: boot a simulated kernel, run the evaluation workload,
   write your first ViewCL program, refine it with ViewQL (typed and via
   natural language), and explore with panes — the paper's introduction
   example, end to end.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Boot the simulated Linux kernel and populate it. *)
  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  Printf.printf "Booted: %d tasks, %d live kernel objects\n\n"
    (List.length (Kstate.all_tasks kernel))
    (Kmem.live_count kernel.Kstate.ctx.Kcontext.mem);

  (* 2. Attach the debugger (this is "GDB" + the Visualinux extension). *)
  let s = Visualinux.attach kernel in

  (* 3. The paper's Section 1 ViewCL program: plot the CFS run queue of
     the first processor, with tasks recovered from their embedded
     rb_nodes via container_of. *)
  let program =
    {|
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: parent.pid
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]

root = ${&cpu_rq(0)->cfs.tasks_timeline}

sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}

plot @sched_tree
|}
  in
  let pane, result, stats = Visualinux.vplot s ~title:"CFS run queue (CPU 0)" program in
  Printf.printf "vplot extracted %d boxes with %d target reads\n\n" stats.Visualinux.boxes
    stats.Visualinux.reads;
  print_string (Render.ascii result.Viewcl.graph);

  (* 4. The paper's ViewQL example: focus on process #2 and its direct
     children by collapsing every other task. *)
  print_endline "\n--- after ViewQL: focus on pid 2 and its children ---\n";
  let viewql =
    {|
task_all = SELECT task_struct FROM *
task_2 = SELECT task_struct FROM task_all WHERE pid == 2 OR ppid == 2
UPDATE task_all \ task_2 WITH collapsed: true
|}
  in
  let updated = Panel.refine s.Visualinux.panel ~at:pane.Panel.pid viewql in
  Printf.printf "(%d boxes collapsed)\n\n" updated;
  print_string (Render.ascii result.Viewcl.graph);

  (* 5. Or just say it in natural language (vchat). *)
  print_endline "\n--- vchat: \"display view \\\"default\\\" of all tasks\" ---";
  let synthesized, n =
    Visualinux.vchat s ~pane:pane.Panel.pid "display view \"default\" of all tasks"
  in
  Printf.printf "synthesized ViewQL:\n%s\n(%d boxes updated)\n" synthesized n;

  (* 6. Panes: split to a second view and search an object in all panes. *)
  let fig34 = Option.get (Scripts.find "3-4") in
  (match
     Visualinux.vctrl s
       (Visualinux.Split
          { pane = pane.Panel.pid; dir = `Horizontal; program = fig34.Scripts.source })
   with
  | Visualinux.Opened pid -> Printf.printf "\nopened pane %d with the process tree\n" pid
  | _ -> ());
  let target = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  (match Visualinux.vctrl s (Visualinux.Focus { addr = target }) with
  | Visualinux.Found hits ->
      Printf.printf "focus: task %d found in %d panes (the paper's Fig 2 workflow)\n"
        s.Visualinux.target_pid (List.length hits)
  | _ -> ());

  (* 7. Session state can be persisted and replayed. *)
  Printf.printf "\nsession: %d primary panes persisted (%d bytes of JSON)\n"
    (List.length (Panel.saved_programs s.Visualinux.panel))
    (String.length (Panel.to_json s.Visualinux.panel))
