examples/cve_stackrot.ml: Format Kcontext Kmaple Kmem Kmm Krcu Kstate Ksyscall Ktypes List Option Panel Printf Render Scripts Viewcl Visualinux Workload
