examples/ulk_gallery.ml: Array Kstate List Option Printf Render Scripts String Sys Viewcl Visualinux Workload
