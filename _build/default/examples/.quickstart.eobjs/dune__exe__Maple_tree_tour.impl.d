examples/maple_tree_tour.ml: Kcontext Kmaple Kmm Kstate Ksyscall List Option Panel Printf Render Scripts String Viewcl Visualinux Workload
