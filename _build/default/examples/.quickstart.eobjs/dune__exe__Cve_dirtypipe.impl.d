examples/cve_dirtypipe.ml: Kbuddy Kcontext Kmem Kpagecache Kpipe Kstate Ksyscall Ktypes List Option Panel Printf Render Scripts Vgraph Viewcl Visualinux Workload
