examples/cve_stackrot.mli:
