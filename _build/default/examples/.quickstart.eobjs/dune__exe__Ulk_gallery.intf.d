examples/ulk_gallery.mli:
