examples/frontend_protocol.mli:
