examples/frontend_protocol.ml: Json Kstate List Option Printf Protocol Scripts String Visualinux Workload
