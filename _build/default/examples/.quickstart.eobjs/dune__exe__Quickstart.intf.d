examples/quickstart.mli:
