examples/cve_dirtypipe.mli:
