examples/quickstart.ml: Kcontext Kmem Kstate List Option Panel Printf Render Scripts String Viewcl Visualinux Workload
