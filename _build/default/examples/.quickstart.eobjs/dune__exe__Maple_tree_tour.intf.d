examples/maple_tree_tour.mli:
