(* Paper §3.1: live visualization of an under-documented data structure.

   The maple tree replaced the VMA red-black tree in Linux 6.1. This
   example plots the maple tree of a process address space exactly as the
   paper's Figure 3/4 does — unwrapping encoded node pointers, switching
   on node types, and finally distilling the tree into a pmap-like flat
   list — then uses ViewQL to collapse slot lists and hide writable areas.

   Run with: dune exec examples/maple_tree_tour.exe *)

let () =
  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  let s = Visualinux.attach kernel in
  let ctx = kernel.Kstate.ctx in

  let target = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in
  let mm = Ksyscall.mm_of kernel target in
  let mt = Kcontext.fld ctx mm "mm_struct" "mm_mt" in
  Printf.printf "inspecting pid %d: %d VMAs, maple tree height %d\n\n"
    s.Visualinux.target_pid
    (List.length (Kmm.read_vmas kernel.Kstate.mm mm))
    (Kmaple.read_height ctx mt);

  (* The Fig-9-2 script contains the full MapleTree/MapleNode/VMArea
     definitions (~75 LoC, the paper reports ~70). *)
  let sc = Option.get (Scripts.find "9-2") in
  Printf.printf "ViewCL program: %d LoC\n" (Scripts.loc sc);
  let pane, res, stats = Visualinux.plot_figure s sc in
  Printf.printf "extracted %d boxes (%d bytes of kernel objects)\n\n" stats.Visualinux.boxes
    stats.Visualinux.bytes;

  (* Show the maple tree view. *)
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt");
  print_string (Render.ascii res.Viewcl.graph);

  (* The paper's §3.1 ViewQL: collapse the big slot lists and trim all
     writable memory areas, leaving the read-only ones (Figure 4). *)
  print_endline "\n--- ViewQL: collapse slots, trim writable VMAs (Figure 4) ---\n";
  let ql =
    {|
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable_vmas WITH trimmed: true
|}
  in
  ignore (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid ql);
  print_string (Render.ascii res.Viewcl.graph);

  (* Distill (paper §3.2): the address-space view is a flat, pmap-like
     ordered list produced by Array.selectFrom. *)
  print_endline "\n--- distilled: the :show_addrspace view (maple tree flattened) ---\n";
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       {|m = SELECT mm_struct FROM *
UPDATE m WITH view: show_addrspace
w = SELECT vm_area_struct FROM *
UPDATE w WITH trimmed: false, collapsed: false|});
  print_string (Render.ascii res.Viewcl.graph);

  (* Also write the figure out as Graphviz and SVG. *)
  let dot = Render.dot res.Viewcl.graph in
  let svg = Render.svg res.Viewcl.graph in
  let oc = open_out "maple_tree.dot" in
  output_string oc dot;
  close_out oc;
  let oc = open_out "maple_tree.svg" in
  output_string oc svg;
  close_out oc;
  Printf.printf "\nwrote maple_tree.dot (%d bytes) and maple_tree.svg (%d bytes)\n"
    (String.length dot) (String.length svg)
