(* The GDB-extension <-> visualizer protocol (paper §4.2).

   In the paper the v-commands running inside GDB push HTTP POSTs to the
   TypeScript front-end. This example shows the same decoupling on our
   typed message layer: a "front-end" that only ever sees JSON strings
   drives the debugger session — plotting, refining with ViewQL, asking
   in natural language, and re-rendering from the wire-format graphs.

   Run with: dune exec examples/frontend_protocol.exe *)

let () =
  (* The debugger side: a booted kernel behind a session. *)
  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  let session = Visualinux.attach kernel in

  (* The "wire": every interaction is a JSON request + JSON response. *)
  let post json =
    Printf.printf ">> POST %s\n"
      (if String.length json > 96 then String.sub json 0 93 ^ "..." else json);
    let resp = Protocol.handle session json in
    Printf.printf "<< %s\n\n"
      (if String.length resp > 96 then String.sub resp 0 93 ^ "..." else resp);
    Protocol.decode_response resp
  in

  (* 1. vplot: the front-end requests the CFS runqueue figure. *)
  let fig = Option.get (Scripts.find "7-1") in
  let pane, graph_json =
    match post (Protocol.encode_request (Protocol.Plot { title = "runqueue"; program = fig.Scripts.source })) with
    | Protocol.Pane_opened { pane; graph } -> (pane, graph)
    | _ -> failwith "vplot failed"
  in
  let boxes j = List.length (Json.to_list (Json.member_exn "boxes" (Json.parse j))) in
  Printf.printf "front-end received pane %d with %d boxes\n\n" pane (boxes graph_json);

  (* 2. vctrl: a ViewQL refinement over the wire. *)
  (match
     post
       (Protocol.encode_request
          (Protocol.Apply
             { pane;
               viewql = "a = SELECT task_struct FROM * WHERE pid > 5\nUPDATE a WITH collapsed: true" }))
   with
  | Protocol.Updated { count; _ } -> Printf.printf "front-end: %d boxes updated\n\n" count
  | _ -> failwith "vctrl failed");

  (* 3. vchat: natural language over the wire. *)
  (match
     post (Protocol.encode_request (Protocol.Chat { pane; text = "display view \"sched\" of all tasks" }))
   with
  | Protocol.Synthesized { viewql; count; _ } ->
      Printf.printf "front-end: server synthesized\n%s\n(%d boxes updated)\n\n" viewql count
  | _ -> failwith "vchat failed");

  (* 4. The front-end re-fetches and renders from the wire format alone. *)
  match post (Protocol.encode_request (Protocol.Get_pane { pane })) with
  | Protocol.Pane_graph { graph } ->
      let j = Json.parse graph in
      let boxes = Json.to_list (Json.member_exn "boxes" j) in
      let collapsed =
        List.filter
          (fun b ->
            Json.to_bool (Json.member_exn "collapsed" (Json.member_exn "attrs" b)))
          boxes
      in
      Printf.printf "front-end rendering: %d boxes, %d collapsed, %d sched-view\n"
        (List.length boxes) (List.length collapsed)
        (List.length
           (List.filter
              (fun b -> Json.to_str (Json.member_exn "view" (Json.member_exn "attrs" b)) = "sched")
              boxes))
  | _ -> failwith "get_pane failed"
