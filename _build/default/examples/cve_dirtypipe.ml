(* Paper §5.3: CVE-2022-0847 (Dirty Pipe).

   splice() attaches a page-cache page to a pipe buffer without copying,
   but copy_page_to_iter_pipe() forgets to initialize the buffer's flags.
   A stale PIPE_BUF_FLAG_CAN_MERGE then lets an ordinary pipe write merge
   into — i.e. overwrite — the shared page cache page, corrupting the file.

   This example reproduces the exploit on the simulated kernel and then
   reproduces the paper's Figure 7: plot the page caches of all files and
   pipes of the victim task, and use ViewQL to trim every page except the
   ones shared between a file and a pipe.

   Run with: dune exec examples/cve_dirtypipe.exe *)

let () =
  let kernel = Kstate.boot () in
  let workload = Workload.create kernel in
  Workload.run workload;
  let s = Visualinux.attach kernel in
  let ctx = kernel.Kstate.ctx in
  let task = Option.get (Kstate.find_task kernel s.Visualinux.target_pid) in

  print_endline "== CVE-2022-0847 (Dirty Pipe) ==\n";

  (* The victim file, read-only for the attacker. *)
  let _, file = Ksyscall.openat kernel task ~name:"test.txt" ~size:4096 in
  let mapping = Kcontext.r64 ctx file "file" "f_mapping" in
  let page = Kpagecache.lookup ctx mapping 0 in
  let pa = Kbuddy.page_address kernel.Kstate.buddy page in
  Printf.printf "victim file test.txt, cached page content: %S\n\n"
    (Kmem.read_cstring ctx.Kcontext.mem pa);

  (* Step 1: fill and drain the pipe ring so every slot keeps a stale
     CAN_MERGE flag from ordinary writes. *)
  let pipe, _, _ = Ksyscall.pipe kernel task in
  for i = 1 to 16 do
    Ksyscall.write_pipe kernel pipe (Printf.sprintf "fill%d" i);
    ignore (Kpipe.read ctx pipe)
  done;
  print_endline "step 1: pipe ring filled and drained (flags left dirty in all 16 slots)";

  (* Step 2: splice the file into the pipe — zero-copy, flags NOT
     initialized (the bug). *)
  let buf = Ksyscall.splice kernel ~file ~pipe ~index:0 ~len:1 ~buggy:true in
  let flags = Kcontext.r32 ctx buf "pipe_buffer" "flags" in
  Printf.printf "step 2: splice(file -> pipe): buffer flags = 0x%x (CAN_MERGE=%b) !\n" flags
    (flags land Ktypes.pipe_buf_flag_can_merge <> 0);

  (* Step 3: write to the pipe — the kernel merges into the page-cache
     page because CAN_MERGE is set. *)
  (match Kpipe.write_merge ctx pipe "PWNED" with
  | Some (pg, off, data) ->
      Kmem.write_bytes ctx.Kcontext.mem (Kbuddy.page_address kernel.Kstate.buddy pg + off) data;
      Printf.printf "step 3: pipe write merged into the shared page at offset %d\n" off
  | None -> print_endline "step 3: no merge (kernel is patched)");
  Printf.printf "\nfile content is now corrupted: %S\n\n" (Kmem.read_cstring ctx.Kcontext.mem pa);

  (* Now debug it with Visualinux: ~60 LoC of ViewCL plot files, pipes,
     and their pages from the fd table (the paper's Figure 7 source). *)
  let pane, res, stats = Visualinux.vplot s ~title:"Dirty Pipe" Scripts.cve_dirtypipe in
  Printf.printf "plotted %d boxes (%d pages) from the task's fd table\n"
    stats.Visualinux.boxes
    (List.length (Vgraph.of_type res.Viewcl.graph "page"));

  (* The paper's ViewQL: keep only pages shared between a file and a
     pipe. Exactly one page must survive — the corrupted one. *)
  let ql =
    {|
file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
UPDATE pipe_pgs \ file_pgs WITH trimmed: true
|}
  in
  let trimmed = Panel.refine s.Visualinux.panel ~at:pane.Panel.pid ql in
  Printf.printf "ViewQL trimmed %d pipe-only pages\n\n" trimmed;

  (* Verify figure 7's claim: the shared page survives and its buffer
     shows the poisonous flag. *)
  let survivors =
    List.filter
      (fun (b : Vgraph.box) -> not b.Vgraph.attrs.Vgraph.trimmed && b.Vgraph.addr = page)
      (Vgraph.of_type res.Viewcl.graph "page")
  in
  Printf.printf "shared page visible in the plot: %b\n" (survivors <> []);
  (* focus on the pipe subgraph for the final rendering *)
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       {|junk = SELECT pipe_buffer FROM * WHERE flags == 0
UPDATE junk WITH collapsed: true
fs = SELECT file FROM *
UPDATE fs WITH collapsed: true|});
  print_string (Render.ascii res.Viewcl.graph)
