(* Unit tests for the debugger target layer. *)

let mk () =
  let reg = Ctype.create_registry () in
  Ctype.define_struct reg "inner" [ Ctype.F ("v", Ctype.int) ];
  Ctype.define_struct reg "obj"
    [ Ctype.F ("n", Ctype.int);
      Ctype.Fbits ("lo", Ctype.u32, 4);
      Ctype.Fbits ("hi", Ctype.u32, 12);
      Ctype.F ("inner", Ctype.Named "inner");
      Ctype.F ("p", Ctype.Ptr (Ctype.Named "obj"));
      Ctype.F ("arr", Ctype.Array (Ctype.u16, 4));
      Ctype.F ("s", Ctype.Array (Ctype.char, 8)) ];
  let mem = Kmem.create () in
  let tgt = Target.create mem reg in
  (tgt, mem, reg)

let test_member_and_bitfields () =
  let tgt, mem, reg = mk () in
  let a = Kmem.alloc mem ~tag:"obj" (Ctype.sizeof reg (Ctype.Named "obj")) in
  Kmem.write_u32 mem a 7;
  (* bitfield storage unit at offset 4: lo=0xA, hi=0x123 *)
  Kmem.write_u32 mem (a + 4) ((0x123 lsl 4) lor 0xa);
  let o = Target.obj (Ctype.Named "obj") a in
  Alcotest.(check int) "n" 7 (Target.as_int tgt (Target.member tgt o "n"));
  Alcotest.(check int) "lo" 0xa (Target.as_int tgt (Target.member tgt o "lo"));
  Alcotest.(check int) "hi" 0x123 (Target.as_int tgt (Target.member tgt o "hi"))

let test_member_path_flatten () =
  let tgt, mem, reg = mk () in
  let a = Kmem.alloc mem ~tag:"obj" (Ctype.sizeof reg (Ctype.Named "obj")) in
  let b = Kmem.alloc mem ~tag:"obj" (Ctype.sizeof reg (Ctype.Named "obj")) in
  let off_p = Ctype.offsetof reg "obj" "p" in
  let off_iv = Ctype.offsetof reg "obj" "inner.v" in
  Kmem.write_u64 mem (a + off_p) b;
  Kmem.write_u32 mem (b + off_iv) 55;
  let o = Target.obj (Ctype.Named "obj") a in
  (* flatten through the pointer: p.inner.v *)
  Alcotest.(check int) "flattened" 55 (Target.as_int tgt (Target.member_path tgt o "p.inner.v"))

let test_index_array () =
  let tgt, mem, reg = mk () in
  let a = Kmem.alloc mem ~tag:"obj" (Ctype.sizeof reg (Ctype.Named "obj")) in
  let off_arr = Ctype.offsetof reg "obj" "arr" in
  Kmem.write_u16 mem (a + off_arr + 4) 0x1234;
  let arr = Target.member tgt (Target.obj (Ctype.Named "obj") a) "arr" in
  Alcotest.(check int) "arr[2]" 0x1234 (Target.as_int tgt (Target.index tgt arr 2))

let test_container_of () =
  let tgt, mem, reg = mk () in
  let a = Kmem.alloc mem ~tag:"obj" (Ctype.sizeof reg (Ctype.Named "obj")) in
  let off_inner = Ctype.offsetof reg "obj" "inner" in
  let v = Target.container_of tgt (a + off_inner) "obj" "inner" in
  Alcotest.(check int) "container base" a (Target.addr_of v)

let test_casts () =
  let tgt, _, _ = mk () in
  let v = Target.int_value 0x1ff in
  Alcotest.(check int) "to u8" 0xff (Target.as_int tgt (Target.cast tgt Ctype.uchar v));
  Alcotest.(check int) "to s8" (-1) (Target.as_int tgt (Target.cast tgt Ctype.char v));
  Alcotest.(check int) "to bool" 1 (Target.as_int tgt (Target.cast tgt Ctype.Bool v));
  let p = Target.cast tgt (Ctype.Ptr (Ctype.Named "obj")) (Target.int_value 0x1000) in
  Alcotest.(check bool) "is pointer" true (Ctype.is_pointer p.Target.typ)

let test_symbol_resolution_order () =
  let tgt, _, _ = mk () in
  Target.add_macro tgt "X" 1;
  Target.add_symbol tgt "X" (Target.int_value 2);
  (match Target.lookup_symbol tgt "X" with
  | Some v -> Alcotest.(check int) "symbol wins over macro" 2 (Target.as_int tgt v)
  | None -> Alcotest.fail "no symbol");
  Alcotest.(check bool) "missing" true (Target.lookup_symbol tgt "nope" = None)

let test_truthy_and_strings () =
  let tgt, mem, _ = mk () in
  Alcotest.(check bool) "zero falsy" false (Target.truthy tgt (Target.int_value 0));
  Alcotest.(check bool) "nonzero truthy" true (Target.truthy tgt (Target.int_value 3));
  Alcotest.(check bool) "str truthy" true (Target.truthy tgt (Target.str_value "x"));
  let a = Kmem.alloc mem ~tag:"s" 8 in
  Kmem.write_cstring mem a "hey";
  Alcotest.(check string) "charp" "hey" (Target.as_string tgt (Target.ptr_to Ctype.char a))

let test_stats_and_profiles () =
  let tgt, mem, _ = mk () in
  let a = Kmem.alloc mem ~tag:"x" 16 in
  Target.reset_stats tgt;
  ignore (Kmem.read_u64 mem a);
  ignore (Kmem.read_u32 mem a);
  let st = Target.stats tgt in
  Alcotest.(check int) "reads" 2 st.Target.reads;
  Alcotest.(check int) "bytes" 12 st.Target.bytes;
  let q = Target.simulated_ms Target.qemu_local st in
  let k = Target.simulated_ms Target.kgdb_rpi400 st in
  Alcotest.(check bool) "kgdb slower" true (k > q *. 10.);
  Alcotest.(check bool) "positive" true (q > 0.)

let test_deref_errors () =
  let tgt, _, _ = mk () in
  (match Target.deref tgt (Target.int_value 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deref of int should fail");
  match Target.addr_of (Target.int_value 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "addr_of immediate should fail"

let suite =
  [ Alcotest.test_case "member + bitfields" `Quick test_member_and_bitfields;
    Alcotest.test_case "member_path flatten" `Quick test_member_path_flatten;
    Alcotest.test_case "array indexing" `Quick test_index_array;
    Alcotest.test_case "container_of" `Quick test_container_of;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "symbol resolution order" `Quick test_symbol_resolution_order;
    Alcotest.test_case "truthy + strings" `Quick test_truthy_and_strings;
    Alcotest.test_case "stats + latency profiles" `Quick test_stats_and_profiles;
    Alcotest.test_case "error cases" `Quick test_deref_errors ]
