(* Unit + property tests for the simulated kernel subsystems. *)

let boot () =
  let k = Kstate.boot () in
  (k, k.Kstate.ctx)

(* ------------------------------------------------------------------ *)

let test_boot_basics () =
  let k, ctx = boot () in
  Alcotest.(check string) "init comm" "swapper/0" (Ktask.comm ctx k.Kstate.init_task);
  Alcotest.(check int) "init pid" 0 (Ktask.pid ctx k.Kstate.init_task);
  Alcotest.(check int) "two superblocks" 2 (List.length (Kvfs.superblocks k.Kstate.vfs));
  Alcotest.(check bool) "slab caches registered" true
    (List.length (Kslab.caches k.Kstate.slab) >= 9)

let test_process_tree () =
  let k, ctx = boot () in
  let p1 = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"one" ~cpu:0 in
  let p2 = Ksyscall.spawn_process k ~parent:p1 ~comm:"two" ~cpu:0 in
  let t1 = Ksyscall.spawn_thread k ~leader:p2 ~comm:"two/t" ~cpu:1 in
  Alcotest.(check (list int)) "children of p1" [ p2 ] (Ktask.children ctx p1);
  Alcotest.(check int) "ppid" (Ktask.pid ctx p1)
    (Kcontext.ri32 ctx (Kcontext.r64 ctx p2 "task_struct" "parent") "task_struct" "pid");
  Alcotest.(check int) "tgid of thread" (Ktask.pid ctx p2)
    (Kcontext.ri32 ctx t1 "task_struct" "tgid");
  Alcotest.(check (list int)) "thread group" [ p2; t1 ] (Ktask.threads ctx p2);
  Alcotest.(check bool) "shared mm" true
    (Kcontext.r64 ctx t1 "task_struct" "mm" = Kcontext.r64 ctx p2 "task_struct" "mm");
  Alcotest.(check bool) "find by pid" true (Kstate.find_task k (Ktask.pid ctx p2) = Some p2)

let test_scheduler () =
  let k, ctx = boot () in
  let rq = Kstate.rq_of k 0 in
  let before = Kcontext.r32 ctx rq "rq" "cfs.nr_running" in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"sched" ~cpu:0 in
  Alcotest.(check int) "nr_running bumped" (before + 1) (Kcontext.r32 ctx rq "rq" "cfs.nr_running");
  (* vruntimes increase monotonically -> new task is rightmost *)
  let queued = Ksched.queued_tasks ctx rq in
  Alcotest.(check bool) "queued" true (List.mem p queued);
  Alcotest.(check int) "queue size" (before + 1) (List.length queued);
  (* pick_next = leftmost = smallest vruntime *)
  let next = Ksched.pick_next ctx rq in
  Alcotest.(check bool) "pick_next is head" true (Some next = List.nth_opt queued 0);
  Ksched.dequeue_task ctx rq p;
  Alcotest.(check int) "dequeued" before (Kcontext.r32 ctx rq "rq" "cfs.nr_running");
  let croot = Kcontext.fld ctx rq "rq" "cfs.tasks_timeline" in
  ignore (Krbtree.validate ctx (Krbtree.cached_root ctx croot))

let test_mm_and_vmas () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"mm" ~cpu:0 in
  let mm = Ksyscall.mm_of k p in
  let n0 = List.length (Kmm.vmas k.Kstate.mm mm) in
  Alcotest.(check bool) "standard image has vmas" true (n0 >= 8);
  Alcotest.(check int) "map_count consistent" n0 (Kcontext.ri32 ctx mm "mm_struct" "map_count");
  Alcotest.(check bool) "read side = shadow" true
    (Kmm.read_vmas k.Kstate.mm mm = Kmm.vmas k.Kstate.mm mm);
  let vma = Ksyscall.mmap_anon k p ~start:0x5600_0000_0000 ~npages:2 ~writable:true in
  Alcotest.(check int) "mmap adds" (n0 + 1) (List.length (Kmm.vmas k.Kstate.mm mm));
  Alcotest.(check bool) "find_vma hits" true
    (Kmm.find_vma k.Kstate.mm mm 0x5600_0000_0fff = vma);
  Alcotest.(check bool) "writable" true (Kmm.is_writable ctx vma);
  Ksyscall.munmap k p vma;
  Alcotest.(check int) "munmap removes" n0 (List.length (Kmm.vmas k.Kstate.mm mm));
  (* stack vma flags *)
  let stack = Kmm.find_vma k.Kstate.mm mm (Ksyscall.stack_top - 4096) in
  Alcotest.(check bool) "stack grows down" true
    (Kcontext.r64 ctx stack "vm_area_struct" "vm_flags" land Ktypes.vm_growsdown <> 0)

let test_anon_rmap () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"anon" ~cpu:0 in
  let vma = Ksyscall.mmap_anon k p ~start:0x5700_0000_0000 ~npages:1 ~writable:true in
  let av = Kcontext.r64 ctx vma "vm_area_struct" "anon_vma" in
  Alcotest.(check bool) "anon_vma set" true (av <> 0);
  Alcotest.(check (list int)) "rmap finds the vma" [ vma ] (Kanon.vmas_of ctx av);
  (* clone into same anon_vma (fork-like) *)
  let vma2 = Kmm.vma_alloc k.Kstate.mm (Ksyscall.mm_of k p) ~start:0x5800_0000_0000
      ~end_:0x5800_0000_1000 ~flags:3 ~file:0 ~pgoff:0 in
  ignore (Kanon.clone_into ctx ~anon_vma:av vma2);
  Alcotest.(check int) "two vmas in rmap" 2 (List.length (Kanon.vmas_of ctx av))

let test_vfs_files () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"vfs" ~cpu:0 in
  let fd, file = Ksyscall.openat k p ~name:"data.bin" ~size:8192 in
  Alcotest.(check int) "first free fd" 3 fd;
  let files = Ksyscall.files_of k p in
  Alcotest.(check int) "fd resolves" file (Kvfs.fd_file k.Kstate.vfs files fd);
  Alcotest.(check int) "open fds" 4 (List.length (Kvfs.open_fds k.Kstate.vfs files));
  let ino = Kcontext.r64 ctx file "file" "f_inode" in
  Alcotest.(check int) "size" 8192 (Kcontext.r64 ctx ino "inode" "i_size");
  let d = Kcontext.r64 ctx file "file" "f_path.dentry" in
  Alcotest.(check string) "dentry name" "data.bin" (Kcontext.rstr ctx d "dentry" "d_iname");
  (* inode is on its superblock's list *)
  let sb = Kcontext.r64 ctx ino "inode" "i_sb" in
  let inodes = Klist.containers ctx (Kcontext.fld ctx sb "super_block" "s_inodes") "inode" "i_sb_list" in
  Alcotest.(check bool) "inode listed" true (List.mem ino inodes)

let test_path_lookup () =
  let k, ctx = boot () in
  (* build /etc/ssh/sshd_config *)
  let etc =
    Kvfs.new_dentry k.Kstate.vfs ~parent:k.Kstate.root_dentry ~name:"etc"
      ~inode:(Kvfs.new_inode k.Kstate.vfs k.Kstate.rootfs_sb ~mode:0o40755 ~size:4096)
      ~sb:k.Kstate.rootfs_sb
  in
  let ssh =
    Kvfs.new_dentry k.Kstate.vfs ~parent:etc ~name:"ssh"
      ~inode:(Kvfs.new_inode k.Kstate.vfs k.Kstate.rootfs_sb ~mode:0o40755 ~size:4096)
      ~sb:k.Kstate.rootfs_sb
  in
  let conf = Kvfs.create_file k.Kstate.vfs ~dir:ssh ~name:"sshd_config" ~size:100 in
  (match Kvfs.lookup_path k.Kstate.vfs ~root:k.Kstate.root_dentry "/etc/ssh/sshd_config" with
  | Some d -> Alcotest.(check int) "resolved" conf d
  | None -> Alcotest.fail "path lookup failed");
  Alcotest.(check bool) "root resolves to itself" true
    (Kvfs.lookup_path k.Kstate.vfs ~root:k.Kstate.root_dentry "/" = Some k.Kstate.root_dentry);
  Alcotest.(check bool) "missing component" true
    (Kvfs.lookup_path k.Kstate.vfs ~root:k.Kstate.root_dentry "/etc/nope" = None);
  (* parent links hold *)
  Alcotest.(check int) "d_parent chain" etc (Kcontext.r64 ctx ssh "dentry" "d_parent")

let test_pagecache () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"pgc" ~cpu:0 in
  let _, file = Ksyscall.openat k p ~name:"cached.bin" ~size:(3 * 4096) in
  let mapping = Kcontext.r64 ctx file "file" "f_mapping" in
  Alcotest.(check int) "nrpages" 3 (Kcontext.r64 ctx mapping "address_space" "nrpages");
  let pages = Kpagecache.pages ctx mapping in
  Alcotest.(check int) "three pages" 3 (List.length pages);
  let pg = Kpagecache.lookup ctx mapping 1 in
  Alcotest.(check bool) "indexed lookup" true (List.mem pg pages);
  Alcotest.(check int) "page index" 1 (Kcontext.r64 ctx pg "page" "index");
  Alcotest.(check int) "page mapping backref" mapping (Kcontext.r64 ctx pg "page" "mapping");
  let content = Kmem.read_cstring ctx.Kcontext.mem (Kbuddy.page_address k.Kstate.buddy pg) in
  Alcotest.(check string) "page contents" "cached.bin:data1" content

let test_buddy () =
  let k, _ = boot () in
  let b = k.Kstate.buddy in
  let free0 = Kbuddy.total_free_pages b in
  let p1 = Kbuddy.alloc_pages b 0 in
  let p2 = Kbuddy.alloc_pages b 3 in
  Alcotest.(check int) "accounting" (free0 - 9) (Kbuddy.total_free_pages b);
  Kbuddy.free_pages b p2 3;
  Kbuddy.free_page b p1;
  Alcotest.(check int) "restored after free" free0 (Kbuddy.total_free_pages b);
  (* buddies coalesce: allocating and freeing a split block restores order counts *)
  let pfn1 = Kbuddy.page_to_pfn b p1 in
  Alcotest.(check int) "pfn roundtrip" p1 (Kbuddy.pfn_to_page b pfn1)

let prop_buddy_conservation =
  QCheck.Test.make ~name:"buddy alloc/free conserves pages" ~count:20
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 3))
    (fun orders ->
      let k = Kstate.boot () in
      let b = k.Kstate.buddy in
      let free0 = Kbuddy.total_free_pages b in
      let blocks = List.map (fun o -> (Kbuddy.alloc_pages b o, o)) orders in
      let taken = List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 blocks in
      let mid_ok = Kbuddy.total_free_pages b = free0 - taken in
      List.iter (fun (p, o) -> Kbuddy.free_pages b p o) blocks;
      mid_ok && Kbuddy.total_free_pages b = free0)

let test_slab () =
  let k, ctx = boot () in
  let s = k.Kstate.slab in
  let cache = Kslab.cache_create s "test_cache" ~object_size:100 in
  let o1 = Kslab.cache_alloc s cache in
  let o2 = Kslab.cache_alloc s cache in
  Alcotest.(check bool) "distinct objects" true (o1 <> o2);
  Alcotest.(check int) "spacing >= padded size" 112 (abs (o2 - o1));
  let partial = Klist.containers ctx (Kcontext.fld ctx cache "kmem_cache" "partial") "slab" "slab_list" in
  Alcotest.(check int) "one partial slab" 1 (List.length partial);
  Alcotest.(check int) "inuse" 2 (Kslab.slab_inuse ctx (List.hd partial));
  Kslab.cache_free s cache o1;
  Alcotest.(check int) "inuse after free" 1 (Kslab.slab_inuse ctx (List.hd partial));
  let o3 = Kslab.cache_alloc s cache in
  Alcotest.(check int) "freelist reuse" o1 o3

let test_slab_full_list () =
  let k, ctx = boot () in
  let s = k.Kstate.slab in
  let cache = Kslab.cache_create s "big" ~object_size:2000 in
  (* 2 objects per 4K page -> third alloc fills a slab *)
  let _ = Kslab.cache_alloc s cache and _ = Kslab.cache_alloc s cache in
  let full = Klist.containers ctx (Kcontext.fld ctx cache "kmem_cache" "full") "slab" "slab_list" in
  Alcotest.(check int) "slab moved to full" 1 (List.length full)

let test_pipe_and_splice () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"pipe" ~cpu:0 in
  let pipe, rfd, wfd = Ksyscall.pipe k p in
  Alcotest.(check bool) "fds distinct" true (rfd <> wfd);
  Ksyscall.write_pipe k pipe "hello";
  Alcotest.(check int) "one buffer" 1 (List.length (Kpipe.buffers ctx pipe));
  let buf = List.hd (Kpipe.buffers ctx pipe) in
  Alcotest.(check int) "len" 5 (Kcontext.r32 ctx buf "pipe_buffer" "len");
  let pg = Kcontext.r64 ctx buf "pipe_buffer" "page" in
  Alcotest.(check string) "payload" "hello"
    (Kmem.read_cstring ctx.Kcontext.mem (Kbuddy.page_address k.Kstate.buddy pg));
  (* non-buggy splice clears flags *)
  let _, file = Ksyscall.openat k p ~name:"s.txt" ~size:4096 in
  let sbuf = Ksyscall.splice k ~file ~pipe ~index:0 ~len:10 ~buggy:false in
  Alcotest.(check int) "flags cleared" 0 (Kcontext.r32 ctx sbuf "pipe_buffer" "flags");
  (* the spliced page IS the page-cache page: zero copy *)
  let mapping = Kcontext.r64 ctx file "file" "f_mapping" in
  Alcotest.(check int) "zero copy" (Kpagecache.lookup ctx mapping 0)
    (Kcontext.r64 ctx sbuf "pipe_buffer" "page")

let test_dirty_pipe_bug () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"dp" ~cpu:0 in
  let pipe, _, _ = Ksyscall.pipe k p in
  for i = 1 to 16 do
    Ksyscall.write_pipe k pipe (Printf.sprintf "x%d" i);
    ignore (Kpipe.read ctx pipe)
  done;
  let _, file = Ksyscall.openat k p ~name:"victim.txt" ~size:4096 in
  let buf = Ksyscall.splice k ~file ~pipe ~index:0 ~len:1 ~buggy:true in
  let flags = Kcontext.r32 ctx buf "pipe_buffer" "flags" in
  Alcotest.(check bool) "stale CAN_MERGE inherited" true
    (flags land Ktypes.pipe_buf_flag_can_merge <> 0);
  (match Kpipe.write_merge ctx pipe "EVIL" with
  | Some (page, off, data) ->
      let pa = Kbuddy.page_address k.Kstate.buddy page in
      Kmem.write_bytes ctx.Kcontext.mem (pa + off) data;
      let mapping = Kcontext.r64 ctx file "file" "f_mapping" in
      let cache_page = Kpagecache.lookup ctx mapping 0 in
      Alcotest.(check int) "merge hit the page-cache page" cache_page page;
      let s = Kmem.read_cstring ctx.Kcontext.mem pa in
      Alcotest.(check string) "file content corrupted" "vEVILm.txt:data0" s
  | None -> Alcotest.fail "CAN_MERGE write should merge");
  (* with the fix, no merge happens *)
  let k2 = Kstate.boot () in
  let ctx2 = k2.Kstate.ctx in
  let p2 = Ksyscall.spawn_process k2 ~parent:k2.Kstate.init_task ~comm:"dp2" ~cpu:0 in
  let pipe2, _, _ = Ksyscall.pipe k2 p2 in
  for i = 1 to 16 do
    Ksyscall.write_pipe k2 pipe2 (Printf.sprintf "x%d" i);
    ignore (Kpipe.read ctx2 pipe2)
  done;
  let _, file2 = Ksyscall.openat k2 p2 ~name:"v2.txt" ~size:4096 in
  ignore (Ksyscall.splice k2 ~file:file2 ~pipe:pipe2 ~index:0 ~len:1 ~buggy:false);
  Alcotest.(check bool) "patched kernel refuses merge" true
    (Kpipe.write_merge ctx2 pipe2 "EVIL" = None)

let test_rcu () =
  let k, ctx = boot () in
  let rcu = k.Kstate.rcu in
  let dead = ref [] in
  ignore (Kfuncs.register_impl k.Kstate.funcs "test_cb" (fun a -> dead := a :: !dead));
  let h1 = Kcontext.alloc ctx "callback_head" in
  let h2 = Kcontext.alloc ctx "callback_head" in
  Krcu.call_rcu rcu h1 "test_cb";
  Krcu.call_rcu rcu h2 "test_cb";
  Alcotest.(check (list int)) "queued in order" [ h1; h2 ] (Krcu.pending rcu ());
  Alcotest.(check (list int)) "not yet run" [] !dead;
  Krcu.run_grace_period rcu;
  Alcotest.(check (list int)) "ran in order" [ h2; h1 ] !dead;
  Alcotest.(check (list int)) "drained" [] (Krcu.pending rcu ())

let test_irq () =
  let k, ctx = boot () in
  ignore (Kirq.set_chip k.Kstate.irqs ~irq:5 ~chip_name:"TESTCHIP");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:5 ~name:"eth0" ~handler:"eth_irq");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:5 ~name:"eth1" ~handler:"eth_irq2");
  let acts = Kirq.actions k.Kstate.irqs ~irq:5 in
  Alcotest.(check int) "shared irq chain" 2 (List.length acts);
  let names = List.map (fun a -> Kmem.read_cstring ctx.Kcontext.mem (Kcontext.r64 ctx a "irqaction" "name")) acts in
  Alcotest.(check (list string)) "chain order" [ "eth0"; "eth1" ] names

let test_timers () =
  let k, ctx = boot () in
  let tm = Ktimer.add_timer k.Kstate.timers ~cpu:0 ~delta:100 "my_timer_fn" in
  Alcotest.(check bool) "pending" true (List.mem tm (Ktimer.pending k.Kstate.timers ~cpu:0));
  Alcotest.(check int) "expires" 100 (Kcontext.r64 ctx tm "timer_list" "expires");
  let fn = Kcontext.r64 ctx tm "timer_list" "function" in
  Alcotest.(check (option string)) "function symbol" (Some "my_timer_fn")
    (Kfuncs.name_of k.Kstate.funcs fn)

let test_signals () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"sig" ~cpu:0 in
  Ksyscall.sigaction k p ~signo:10 ~handler:(`Handler "usr1_handler");
  let sh = Kcontext.r64 ctx p "task_struct" "sighand" in
  Alcotest.(check bool) "handler installed" true (Ksignal.handler_of ctx sh 10 <> 0);
  Alcotest.(check int) "others default" 0 (Ksignal.handler_of ctx sh 11);
  Ksyscall.kill k ~target:p ~signo:10 ~from:k.Kstate.init_task;
  let pending = Kcontext.fld ctx p "task_struct" "pending" in
  (match Ksignal.pending_signals ctx pending with
  | [ q ] -> Alcotest.(check int) "queued signo" 10 (Kcontext.ri32 ctx q "sigqueue" "si_signo")
  | l -> Alcotest.failf "expected 1 pending, got %d" (List.length l));
  Alcotest.(check int) "sigset bit" (1 lsl 9)
    (Kcontext.r64 ctx pending "sigpending" "signal.sig")

let test_ipc () =
  let k, ctx = boot () in
  let sma = Kipc.semget k.Kstate.ipc ~key:0xbeef ~nsems:3 in
  Kipc.semop k.Kstate.ipc sma ~idx:1 ~delta:2 ~pid:42;
  let sems = Kcontext.r64 ctx sma "sem_array" "sems" in
  let s1 = sems + Kcontext.sizeof ctx "sem" in
  Alcotest.(check int) "semval" 2 (Kcontext.ri32 ctx s1 "sem" "semval");
  Alcotest.(check int) "sempid" 42 (Kcontext.ri32 ctx s1 "sem" "sempid");
  let q = Kipc.msgget k.Kstate.ipc ~key:0xcafe ~qbytes:8192 in
  ignore (Kipc.msgsnd k.Kstate.ipc q ~mtype:7 ~size:100);
  ignore (Kipc.msgsnd k.Kstate.ipc q ~mtype:8 ~size:50);
  Alcotest.(check int) "qnum" 2 (Kcontext.r64 ctx q "msg_queue" "q_qnum");
  Alcotest.(check int) "cbytes" 150 (Kcontext.r64 ctx q "msg_queue" "q_cbytes");
  Alcotest.(check (option int)) "fifo receive" (Some 100) (Kipc.msgrcv k.Kstate.ipc q);
  Alcotest.(check int) "qnum after rcv" 1 (Kcontext.r64 ctx q "msg_queue" "q_qnum");
  (* both live in the namespace IDR *)
  let ids = Kipc.ids_addr k.Kstate.ipc Kipc.ipc_sem_ids in
  Alcotest.(check int) "sem idr" sma
    (Kxarray.load ctx (Kcontext.fld ctx ids "ipc_ids" "ipcs_idr.idr_rt") 0)

let test_net () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"net" ~cpu:0 in
  let so, sk, fd = Ksyscall.socket k p ~lport:1234 ~rport:80 ~backlog_skbs:3 in
  Alcotest.(check bool) "fd valid" true (fd >= 3);
  Alcotest.(check int) "lport" 1234 (Kcontext.r16 ctx sk "sock" "skc_num");
  let rq = Kcontext.fld ctx sk "sock" "sk_receive_queue" in
  Alcotest.(check int) "qlen" 3 (Kcontext.r32 ctx rq "sk_buff_head" "qlen");
  Alcotest.(check int) "skbs linked" 3 (List.length (Knet.queue_skbs ctx rq));
  Alcotest.(check int) "socket backref" so (Kcontext.r64 ctx sk "sock" "sk_socket")

let test_pid_hash () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"pid" ~cpu:0 in
  let nr = Ktask.pid ctx p in
  (match Kpid.find_pid k.Kstate.pids nr with
  | Some pid ->
      Alcotest.(check int) "upid nr" nr
        (Kcontext.ri32 ctx (Kcontext.fld ctx pid "pid" "numbers") "upid" "nr");
      Alcotest.(check int) "task thread_pid" pid (Kcontext.r64 ctx p "task_struct" "thread_pid")
  | None -> Alcotest.fail "pid not in hash");
  (* also in the namespace IDR *)
  let idr = Kcontext.fld ctx k.Kstate.pids.Kpid.init_pid_ns "pid_namespace" "idr.idr_rt" in
  Alcotest.(check bool) "in idr" true (Kxarray.load ctx idr nr <> 0)

let test_swap_kobj_block () =
  let k, ctx = boot () in
  let d = Kvfs.create_file k.Kstate.vfs ~dir:k.Kstate.root_dentry ~name:"swap" ~size:4096 in
  let f = Kvfs.open_dentry k.Kstate.vfs d ~flags:2 in
  let si = Kswap.swapon k.Kstate.swap ~file:f ~bdev:0 ~pages:32 ~prio:(-1) ~used:5 in
  Alcotest.(check int) "inuse" 5 (Kcontext.r64 ctx si "swap_info_struct" "inuse_pages");
  Alcotest.(check (list int)) "listed" [ si ] (Kswap.areas k.Kstate.swap);
  (* kobject hierarchy *)
  let members = Kobj.kset_members ctx k.Kstate.devices_kset in
  Alcotest.(check bool) "boot populated devices kset later via workload" true
    (List.length members >= 0);
  let bus = Kobj.new_bus ctx ~name:"testbus" in
  let drv = Kobj.new_driver ctx k.Kstate.funcs ~name:"tdrv" ~bus in
  let dev = Kobj.new_device ctx ~name:"tdev" ~parent:0 ~bus ~driver:drv ~kset:k.Kstate.devices_kset in
  Alcotest.(check bool) "device in kset" true
    (List.mem (Kcontext.fld ctx dev "device" "kobj") (Kobj.kset_members ctx k.Kstate.devices_kset));
  (* block device *)
  let disk, bdev = Kblock.add_disk ctx k.Kstate.vfs ~name:"sda" ~major:8 ~minor:0 in
  Alcotest.(check int) "disk backref" disk (Kcontext.r64 ctx bdev "block_device" "bd_disk");
  Alcotest.(check string) "disk name" "sda" (Kcontext.rstr ctx disk "gendisk" "disk_name")

let test_workqueue () =
  let k, ctx = boot () in
  let wq = Kworkqueue.alloc_workqueue k.Kstate.wq "test_wq" in
  Alcotest.(check string) "name" "test_wq" (Kcontext.rstr ctx wq "workqueue_struct" "name");
  let vw = Kworkqueue.new_vmstat_work k.Kstate.wq ~cpu:0 ~interval:5 in
  let lw = Kworkqueue.new_lru_drain_work k.Kstate.wq ~cpu:0 in
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 (Kcontext.fld ctx vw "vmstat_work_s" "work.work");
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 (Kcontext.fld ctx lw "lru_drain_work_s" "work");
  let pending = Kworkqueue.pending k.Kstate.wq ~cpu:0 in
  Alcotest.(check int) "two pending" 2 (List.length pending);
  (* heterogeneous dispatch: recover container types via func pointers *)
  let func_names =
    List.map
      (fun w -> Option.get (Kfuncs.name_of k.Kstate.funcs (Kcontext.r64 ctx w "work_struct" "func")))
      pending
  in
  Alcotest.(check (list string)) "func dispatch" [ "vmstat_update"; "lru_add_drain_per_cpu" ]
    func_names

let test_timer_expiry () =
  let k, ctx = boot () in
  let fired_log = ref [] in
  ignore
    (Kfuncs.register_impl k.Kstate.funcs "logging_timer_fn" (fun tm -> fired_log := tm :: !fired_log));
  let t1 = Ktimer.add_timer k.Kstate.timers ~cpu:0 ~delta:10 "logging_timer_fn" in
  let t2 = Ktimer.add_timer k.Kstate.timers ~cpu:0 ~delta:5 "logging_timer_fn" in
  let t3 = Ktimer.add_timer k.Kstate.timers ~cpu:1 ~delta:100 "logging_timer_fn" in
  let fired = Ktimer.run_timers k.Kstate.timers 20 in
  (* t2 before t1 (expiry order); t3 still pending *)
  Alcotest.(check (list int)) "fired in expiry order" [ t2; t1 ] fired;
  Alcotest.(check (list int)) "impls invoked" [ t2; t1 ] (List.rev !fired_log);
  Alcotest.(check bool) "unlinked from wheel" false
    (List.mem t1 (Ktimer.pending k.Kstate.timers ~cpu:0));
  Alcotest.(check bool) "t3 still armed" true
    (List.mem t3 (Ktimer.pending k.Kstate.timers ~cpu:1));
  ignore ctx;
  let fired2 = Ktimer.run_timers k.Kstate.timers 100 in
  Alcotest.(check (list int)) "second batch" [ t3 ] fired2

let test_workqueue_processing () =
  let k, ctx = boot () in
  let ran = ref 0 in
  ignore (Kfuncs.register_impl k.Kstate.funcs "counting_work" (fun _ -> incr ran));
  let w1 = Kcontext.alloc ctx "work_struct" in
  let w2 = Kcontext.alloc ctx "work_struct" in
  Kworkqueue.init_work k.Kstate.wq w1 "counting_work";
  Kworkqueue.init_work k.Kstate.wq w2 "counting_work";
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 w1;
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 w2;
  let processed = Kworkqueue.process_works k.Kstate.wq ~cpu:0 in
  Alcotest.(check int) "both processed" 2 (List.length processed);
  Alcotest.(check int) "impls ran" 2 !ran;
  Alcotest.(check int) "worklist drained" 0
    (List.length (Kworkqueue.pending k.Kstate.wq ~cpu:0))

let test_task_migration () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"mig" ~cpu:0 in
  let rq0 = Kstate.rq_of k 0 and rq1 = Kstate.rq_of k 1 in
  let n1 = Kcontext.r32 ctx rq1 "rq" "cfs.nr_running" in
  Ksched.migrate_task ctx ~src:rq0 ~dst:rq1 p;
  Alcotest.(check int) "on cpu 1" 1 (Kcontext.r32 ctx p "task_struct" "cpu");
  Alcotest.(check int) "dst grew" (n1 + 1) (Kcontext.r32 ctx rq1 "rq" "cfs.nr_running");
  Alcotest.(check bool) "queued on dst" true (List.mem p (Ksched.queued_tasks ctx rq1));
  Alcotest.(check bool) "gone from src" false (List.mem p (Ksched.queued_tasks ctx rq0));
  ignore (Krbtree.validate ctx (Krbtree.cached_root ctx (Kcontext.fld ctx rq1 "rq" "cfs.tasks_timeline")))

let test_anon_fault_and_rmap () =
  let k, ctx = boot () in
  let p = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"fault" ~cpu:0 in
  let mm = Ksyscall.mm_of k p in
  (* fault inside the heap VMA *)
  let va = Ksyscall.heap_base + 4096 in
  let page = Kmm.handle_anon_fault k.Kstate.mm k.Kstate.buddy mm ~va in
  Alcotest.(check bool) "page allocated" true (page <> 0);
  Alcotest.(check int) "anon mapping tagged" 1
    (Kcontext.r64 ctx page "page" "mapping" land 1);
  (* rmap: page -> VMA(s) *)
  (match Kmm.rmap_walk k.Kstate.mm page with
  | [ vma ] ->
      Alcotest.(check bool) "rmap finds the heap vma" true
        (Kcontext.r64 ctx vma "vm_area_struct" "vm_start" <= va
        && va < Kcontext.r64 ctx vma "vm_area_struct" "vm_end")
  | l -> Alcotest.failf "expected 1 vma, got %d" (List.length l));
  (* a fault in unmapped space is a segfault *)
  Alcotest.(check int) "segfault" 0
    (Kmm.handle_anon_fault k.Kstate.mm k.Kstate.buddy mm ~va:0x1234_5000)

let test_task_lifecycle () =
  let k, ctx = boot () in
  let parent = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"parent" ~cpu:0 in
  let child = Ksyscall.spawn_process k ~parent ~comm:"child" ~cpu:0 in
  let orphan = Ksyscall.spawn_process k ~parent:child ~comm:"orphan" ~cpu:1 in
  let tgt = Khelpers.attach k in
  let state t =
    Target.as_string tgt
      (Target.call_helper tgt "task_state" [ Target.obj (Ctype.Named "task_struct") t ])
  in
  Alcotest.(check string) "running" "RUNNING" (state child);
  let rq = Kstate.rq_of k 0 in
  let nr_before = Kcontext.r32 ctx rq "rq" "cfs.nr_running" in
  Ksyscall.exit_task k child ~code:1;
  Alcotest.(check string) "zombie" "ZOMBIE" (state child);
  Alcotest.(check int) "off the runqueue" (nr_before - 1)
    (Kcontext.r32 ctx rq "rq" "cfs.nr_running");
  (* orphan reparented to init *)
  Alcotest.(check int) "reparented" k.Kstate.init_task
    (Kcontext.r64 ctx orphan "task_struct" "parent");
  Alcotest.(check bool) "in init's children" true
    (List.mem orphan (Ktask.children ctx k.Kstate.init_task));
  (* SIGCHLD queued to the parent *)
  let pending = Kcontext.fld ctx parent "task_struct" "pending" in
  Alcotest.(check bool) "SIGCHLD pending" true
    (List.exists
       (fun q -> Kcontext.ri32 ctx q "sigqueue" "si_signo" = 17)
       (Ksignal.pending_signals ctx pending));
  (* reap: task disappears from the global list and memory *)
  let total_before = List.length (Kstate.all_tasks k) in
  Ksyscall.reap_task k child;
  Alcotest.(check int) "unlinked" (total_before - 1) (List.length (Kstate.all_tasks k));
  Alcotest.(check bool) "freed" false (Kmem.is_live ctx.Kcontext.mem child);
  (* reaping a live task is refused *)
  match Ksyscall.reap_task k parent with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "reap of a live task must fail"

let test_scheduler_tick () =
  let k, ctx = boot () in
  let rq = Kstate.rq_of k 0 in
  let a = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"tick-a" ~cpu:0 in
  let b = Ksyscall.spawn_process k ~parent:k.Kstate.init_task ~comm:"tick-b" ~cpu:0 in
  (* start running the leftmost task *)
  let first = Ksched.task_tick ctx rq ~delta:0 in
  Alcotest.(check bool) "picked a queued task" true
    (first <> k.Kstate.init_task && Kcontext.r32 ctx first "task_struct" "on_cpu" = 1);
  (* burn vruntime until preemption *)
  let rec spin n last =
    if n = 0 then last
    else
      let cur = Ksched.task_tick ctx rq ~delta:2_000_000 in
      if cur <> last then cur else spin (n - 1) cur
  in
  let second = spin 50 first in
  Alcotest.(check bool) "preemption happened" true (second <> first);
  (* the preempted task went back on the timeline *)
  Alcotest.(check bool) "old curr requeued" true
    (List.mem first (Ksched.queued_tasks ctx rq));
  (* rbtree still valid after the churn *)
  ignore
    (Krbtree.validate ctx
       (Krbtree.cached_root ctx (Kcontext.fld ctx rq "rq" "cfs.tasks_timeline")));
  ignore (a, b)

let test_workload_simulated_time () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  let ctx = k.Kstate.ctx in
  (* a zombie exists (worker-4's second thread) *)
  let zombies =
    List.filter
      (fun t -> Kcontext.r32 ctx t "task_struct" "exit_state" land Ktypes.exit_zombie <> 0)
      (Kstate.all_tasks k)
  in
  Alcotest.(check int) "one zombie" 1 (List.length zombies);
  (* something is actually running on each CPU after the ticks *)
  for cpu = 0 to k.Kstate.ncpus - 1 do
    let curr = Kcontext.r64 ctx (Kstate.rq_of k cpu) "rq" "curr" in
    Alcotest.(check bool) (Printf.sprintf "cpu %d busy" cpu) true
      (curr <> 0 && Kcontext.r32 ctx curr "task_struct" "on_cpu" = 1)
  done;
  (* vruntimes diverged: sum_exec_runtime accumulated somewhere *)
  Alcotest.(check bool) "time was charged" true
    (List.exists
       (fun t -> Kcontext.r64 ctx t "task_struct" "se.sum_exec_runtime" > 0)
       (Kstate.all_tasks k));
  (* anonymous faults left rmap-tagged pages *)
  let tagged = ref false in
  for pfn = 0 to k.Kstate.buddy.Kbuddy.npages - 1 do
    let page = Kbuddy.pfn_to_page k.Kstate.buddy pfn in
    if Kcontext.r64 ctx page "page" "mapping" land 1 = 1 then tagged := true
  done;
  Alcotest.(check bool) "anon pages mapped" true !tagged

(* Golden regression: key strings of the rendered CFS figure. *)
let test_figure_golden_fragments () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  let s = Visualinux.attach k in
  let _, res, _ = Visualinux.plot_figure s (Option.get (Scripts.find "7-1")) in
  let out = Render.ascii res.Viewcl.graph in
  let contains needle =
    let lh = String.length out and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub out i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag -> Alcotest.(check bool) ("fragment: " ^ frag) true (contains frag))
    [ "ULK Fig 7-1"; "Rq #"; "CfsRq #"; "RBTree #"; "min_vruntime:"; "comm: worker-";
      "lock: [unlocked]" ]

let test_workload_deterministic () =
  let run () =
    let k = Kstate.boot () in
    let w = Workload.create ~seed:7 k in
    Workload.run w;
    ( List.length (Kstate.all_tasks k),
      List.map (fun t -> Ktask.pid k.Kstate.ctx t) (Workload.leaders w),
      Kmem.live_count k.Kstate.ctx.Kcontext.mem )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two runs identical" true (a = b);
  let tasks, leaders, _ = a in
  Alcotest.(check int) "5 leaders" 5 (List.length leaders);
  Alcotest.(check bool) "rich population" true (tasks >= 20)

let suite =
  [ Alcotest.test_case "boot basics" `Quick test_boot_basics;
    Alcotest.test_case "process tree + threads" `Quick test_process_tree;
    Alcotest.test_case "CFS scheduler" `Quick test_scheduler;
    Alcotest.test_case "mm + maple-tree VMAs" `Quick test_mm_and_vmas;
    Alcotest.test_case "anonymous reverse map" `Quick test_anon_rmap;
    Alcotest.test_case "VFS + fd table" `Quick test_vfs_files;
    Alcotest.test_case "dentry path lookup" `Quick test_path_lookup;
    Alcotest.test_case "page cache" `Quick test_pagecache;
    Alcotest.test_case "buddy allocator" `Quick test_buddy;
    QCheck_alcotest.to_alcotest prop_buddy_conservation;
    Alcotest.test_case "slab allocator" `Quick test_slab;
    Alcotest.test_case "slab full list" `Quick test_slab_full_list;
    Alcotest.test_case "pipes + zero-copy splice" `Quick test_pipe_and_splice;
    Alcotest.test_case "CVE-2022-0847 mechanism" `Quick test_dirty_pipe_bug;
    Alcotest.test_case "RCU callbacks" `Quick test_rcu;
    Alcotest.test_case "IRQ descriptors" `Quick test_irq;
    Alcotest.test_case "timers" `Quick test_timers;
    Alcotest.test_case "signals" `Quick test_signals;
    Alcotest.test_case "SysV IPC" `Quick test_ipc;
    Alcotest.test_case "sockets" `Quick test_net;
    Alcotest.test_case "pid hash + idr" `Quick test_pid_hash;
    Alcotest.test_case "swap + kobjects + block" `Quick test_swap_kobj_block;
    Alcotest.test_case "workqueues (heterogeneous)" `Quick test_workqueue;
    Alcotest.test_case "timer expiry" `Quick test_timer_expiry;
    Alcotest.test_case "workqueue processing" `Quick test_workqueue_processing;
    Alcotest.test_case "task migration" `Quick test_task_migration;
    Alcotest.test_case "anon fault + rmap walk" `Quick test_anon_fault_and_rmap;
    Alcotest.test_case "task exit/zombie/reap" `Quick test_task_lifecycle;
    Alcotest.test_case "scheduler tick + preemption" `Quick test_scheduler_tick;
    Alcotest.test_case "workload simulated time" `Quick test_workload_simulated_time;
    Alcotest.test_case "figure golden fragments" `Quick test_figure_golden_fragments;
    Alcotest.test_case "workload determinism" `Quick test_workload_deterministic ]
