(* Tests for the JSON layer, the front-end protocol, and the HTML
   renderer. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ---------------- Json ---------------- *)

let test_json_parse_basics () =
  let open Json in
  Alcotest.(check bool) "null" true (parse "null" = Null);
  Alcotest.(check bool) "true" true (parse "true" = Bool true);
  Alcotest.(check bool) "int" true (parse "-42" = Int (-42));
  Alcotest.(check bool) "float" true (parse "2.5" = Float 2.5);
  Alcotest.(check bool) "string" true (parse {|"a\nb"|} = String "a\nb");
  Alcotest.(check bool) "empty obj" true (parse "{}" = Obj []);
  Alcotest.(check bool) "empty list" true (parse "[]" = List []);
  Alcotest.(check bool) "nested" true
    (parse {| {"a": [1, {"b": false}], "c": "x"} |}
    = Obj [ ("a", List [ Int 1; Obj [ ("b", Bool false) ] ]); ("c", String "x") ])

let test_json_errors () =
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter fails [ "{"; "[1,"; "\"unterminated"; "{1: 2}"; "truu"; ""; "1 2"; "{\"a\"}" ]

let test_json_accessors () =
  let j = Json.parse {|{"n": 3, "s": "hi", "l": [1,2], "b": true}|} in
  Alcotest.(check int) "int" 3 (Json.to_int (Json.member_exn "n" j));
  Alcotest.(check string) "str" "hi" (Json.to_str (Json.member_exn "s" j));
  Alcotest.(check int) "list" 2 (List.length (Json.to_list (Json.member_exn "l" j)));
  Alcotest.(check bool) "bool" true (Json.to_bool (Json.member_exn "b" j));
  Alcotest.(check bool) "missing" true (Json.member "zzz" j = None)

(* Property: printer output re-parses to the same value. *)
let rec gen_json depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [ return Json.Null; map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) small_signed_int;
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10)) ]
  else
    frequency
      [ (3, gen_json 0);
        (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (gen_json (depth - 1))));
        ( 1,
          map
            (fun kvs ->
              (* unique keys *)
              let kvs = List.mapi (fun i (k, v) -> (Printf.sprintf "%d_%s" i k, v)) kvs in
              Json.Obj kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 0 6)) (gen_json (depth - 1)))) ) ]

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make ~print:Json.to_string (gen_json 3))
    (fun j -> Json.parse (Json.to_string j) = j)

(* The graphs we serialize actually parse. *)
let test_graph_json_parses () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  let s = Visualinux.attach k in
  let _, res, _ = Visualinux.plot_figure s (Option.get (Scripts.find "7-1")) in
  let j = Json.parse (Vgraph.to_json res.Viewcl.graph) in
  let boxes = Json.to_list (Json.member_exn "boxes" j) in
  Alcotest.(check int) "all boxes serialized" (Vgraph.box_count res.Viewcl.graph)
    (List.length boxes)

(* ---------------- Protocol ---------------- *)

let mk_session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  Visualinux.attach k

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let encoded = Protocol.encode_request r in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" encoded)
        true
        (Protocol.decode_request encoded = r))
    [ Protocol.Plot { title = "t"; program = "plot @x" };
      Protocol.Apply { pane = 3; viewql = "UPDATE a WITH collapsed: true" };
      Protocol.Split { pane = 1; dir = `Vertical; program = "p" };
      Protocol.Focus { addr = 0x1234 };
      Protocol.Close { pane = 2 };
      Protocol.Chat { pane = 1; text = "collapse all tasks" };
      Protocol.Get_pane { pane = 7 } ]

let test_dispatch_plot_apply () =
  let s = mk_session () in
  let fig = Option.get (Scripts.find "7-1") in
  (* vplot over the wire *)
  let resp =
    Protocol.handle s (Protocol.encode_request (Protocol.Plot { title = "rq"; program = fig.Scripts.source }))
  in
  (match Protocol.decode_response resp with
  | Protocol.Pane_opened { pane; graph } ->
      Alcotest.(check bool) "pane id" true (pane >= 1);
      Alcotest.(check bool) "graph json parses" true
        (match Json.parse graph with Json.Obj _ -> true | _ -> false);
      (* vctrl apply over the wire *)
      let resp2 =
        Protocol.handle s
          (Protocol.encode_request
             (Protocol.Apply
                { pane; viewql = "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true" }))
      in
      (match Protocol.decode_response resp2 with
      | Protocol.Updated { count; _ } -> Alcotest.(check bool) "updated some" true (count > 5)
      | _ -> Alcotest.fail "expected Updated");
      (* vchat over the wire *)
      let resp3 =
        Protocol.handle s
          (Protocol.encode_request (Protocol.Chat { pane; text = "hide pages" }))
      in
      (match Protocol.decode_response resp3 with
      | Protocol.Synthesized { viewql; _ } ->
          Alcotest.(check bool) "program synthesized" true (contains viewql "SELECT")
      | _ -> Alcotest.fail "expected Synthesized")
  | _ -> Alcotest.fail "expected Pane_opened")

let test_dispatch_errors () =
  let s = mk_session () in
  (match
     Protocol.decode_response
       (Protocol.handle s
          (Protocol.encode_request (Protocol.Plot { title = "x"; program = "plot @bogus" })))
   with
  | Protocol.Error _ -> ()
  | _ -> Alcotest.fail "bad ViewCL should produce a protocol error");
  match
    Protocol.decode_response
      (Protocol.handle s (Protocol.encode_request (Protocol.Get_pane { pane = 999 })))
  with
  | Protocol.Error _ -> ()
  | _ -> Alcotest.fail "missing pane should produce a protocol error"

let test_panel_json_restore () =
  let s = mk_session () in
  let fig = Option.get (Scripts.find "3-4") in
  let pane, _, _ = Visualinux.plot_figure s fig in
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true");
  let json = Panel.to_json s.Visualinux.panel in
  let restored = Panel.programs_of_json json in
  Alcotest.(check int) "one program" 1 (List.length restored);
  let prog, hist = List.hd restored in
  Alcotest.(check string) "program preserved" fig.Scripts.source prog;
  Alcotest.(check int) "history preserved" 1 (List.length hist)

(* ---------------- HTML ---------------- *)

let test_html_renderer () =
  let s = mk_session () in
  let pane, res, _ = Visualinux.plot_figure s (Option.get (Scripts.find "7-1")) in
  let html = Render_html.html res.Viewcl.graph in
  List.iter
    (fun frag -> Alcotest.(check bool) ("has " ^ frag) true (contains html frag))
    [ "<!DOCTYPE html>"; "</html>"; "class=\"box"; "toggle("; "comm:" ];
  (* collapsed attribute survives into markup *)
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "a = SELECT task_struct FROM * WHERE pid == 1\nUPDATE a WITH collapsed: true");
  let html2 = Render_html.html res.Viewcl.graph in
  Alcotest.(check bool) "collapsed class" true (contains html2 "collapsed\"");
  (* trimmed boxes vanish *)
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "b = SELECT task_struct FROM *\nUPDATE b WITH trimmed: true");
  let html3 = Render_html.html res.Viewcl.graph in
  Alcotest.(check bool) "tasks gone" false (contains html3 "comm:")

let test_html_escaping () =
  let g = Vgraph.create ~title:"<script>alert(1)</script>" () in
  let b = Vgraph.add_box g ~btype:"t" ~bdef:"" ~addr:1 ~size:0 ~container:false in
  Vgraph.set_view b "default"
    [ Vgraph.Text { label = "x<y"; value = "\"a\"&b"; raw = Vgraph.Fstr "" } ];
  Vgraph.set_root g b.Vgraph.id;
  let html = Render_html.html g in
  Alcotest.(check bool) "no raw script tag" false (contains html "<script>alert");
  Alcotest.(check bool) "escaped" true (contains html "&lt;script&gt;")

let suite =
  [ Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "graph json parses" `Quick test_graph_json_parses;
    Alcotest.test_case "protocol request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol dispatch plot/apply/chat" `Quick test_dispatch_plot_apply;
    Alcotest.test_case "protocol errors" `Quick test_dispatch_errors;
    Alcotest.test_case "panel json restore" `Quick test_panel_json_restore;
    Alcotest.test_case "html renderer" `Quick test_html_renderer;
    Alcotest.test_case "html escaping" `Quick test_html_escaping ]
