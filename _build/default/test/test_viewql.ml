(* Unit + property tests for ViewQL. *)

(* A hand-built graph for precise assertions. *)
let mk_graph () =
  let g = Vgraph.create ~title:"t" () in
  let mk ty ?(fields = []) () =
    let b = Vgraph.add_box g ~btype:ty ~bdef:"" ~addr:(0x1000 * (Vgraph.box_count g + 1)) ~size:64
        ~container:false in
    List.iter (fun (k, v) -> Vgraph.record_field b k v) fields;
    Vgraph.set_view b "default" [];
    b
  in
  let t1 = mk "task_struct" ~fields:[ ("pid", Vgraph.Fint 1); ("mm", Vgraph.Faddr 0xAAA) ] () in
  let t2 = mk "task_struct" ~fields:[ ("pid", Vgraph.Fint 2); ("mm", Vgraph.Faddr 0) ] () in
  let t3 = mk "task_struct" ~fields:[ ("pid", Vgraph.Fint 3); ("mm", Vgraph.Faddr 0xBBB) ] () in
  let v1 = mk "vm_area_struct" ~fields:[ ("is_writable", Vgraph.Fbool true) ] () in
  let v2 = mk "vm_area_struct" ~fields:[ ("is_writable", Vgraph.Fbool false) ] () in
  (* t1 --mm--> v1; t1 --slots--> container of [v2] *)
  let c = Vgraph.add_box g ~btype:"Array" ~bdef:"" ~addr:0 ~size:0 ~container:true in
  c.Vgraph.members <- [ v2.Vgraph.id ];
  Vgraph.set_view c "default" [];
  Vgraph.set_view t1 "extra" [];
  t1.Vgraph.views <-
    [ ( "default",
        [ Vgraph.Link { label = "mm"; target = Some v1.Vgraph.id };
          Vgraph.Inline { label = "slots"; target = c.Vgraph.id } ] ) ];
  Vgraph.set_root g t1.Vgraph.id;
  Vgraph.set_root g t2.Vgraph.id;
  Vgraph.set_root g t3.Vgraph.id;
  (g, t1, t2, t3, v1, v2, c)

let exec g src =
  let s = Viewql.make_session g in
  let n = Viewql.exec s src in
  (s, n)

let test_select_update () =
  let g, t1, t2, t3, _, _, _ = mk_graph () in
  let _, n = exec g "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true" in
  Alcotest.(check int) "3 updated" 3 n;
  List.iter
    (fun t -> Alcotest.(check bool) "collapsed" true t.Vgraph.attrs.Vgraph.collapsed)
    [ t1; t2; t3 ]

let test_where_ops () =
  let g, t1, t2, t3, _, _, _ = mk_graph () in
  let _, n = exec g "a = SELECT task_struct FROM * WHERE pid == 2\nUPDATE a WITH trimmed: true" in
  Alcotest.(check int) "1 match" 1 n;
  Alcotest.(check bool) "t2 trimmed" true t2.Vgraph.attrs.Vgraph.trimmed;
  Alcotest.(check bool) "t1 not" false t1.Vgraph.attrs.Vgraph.trimmed;
  let _, n = exec g "b = SELECT task_struct FROM * WHERE pid >= 2 AND pid <= 3\nUPDATE b WITH view: sched" in
  Alcotest.(check int) "AND range" 2 n;
  Alcotest.(check string) "view set" "sched" t3.Vgraph.attrs.Vgraph.view;
  let _, n = exec g "c = SELECT task_struct FROM * WHERE pid == 1 OR pid == 3\nUPDATE c WITH direction: vertical" in
  Alcotest.(check int) "OR" 2 n

let test_null_compare () =
  let g, _, t2, _, _, _, _ = mk_graph () in
  let _, n = exec g "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true" in
  Alcotest.(check int) "only t2" 1 n;
  Alcotest.(check bool) "t2" true t2.Vgraph.attrs.Vgraph.collapsed;
  let g2, _, _, _, _, _, _ = mk_graph () in
  let _, n = exec g2 "a = SELECT task_struct FROM * WHERE mm != NULL\nUPDATE a WITH collapsed: true" in
  Alcotest.(check int) "two with mm" 2 n

let test_bool_compare () =
  let g, _, _, _, v1, v2, _ = mk_graph () in
  let _, n = exec g "w = SELECT vm_area_struct FROM * WHERE is_writable == true\nUPDATE w WITH trimmed: true" in
  Alcotest.(check int) "one writable" 1 n;
  Alcotest.(check bool) "v1" true v1.Vgraph.attrs.Vgraph.trimmed;
  Alcotest.(check bool) "v2 untouched" false v2.Vgraph.attrs.Vgraph.trimmed

let test_set_ops () =
  let g, _, t2, _, _, _, _ = mk_graph () in
  let src = {|
all = SELECT task_struct FROM *
two = SELECT task_struct FROM all WHERE pid == 2
UPDATE all \ two WITH collapsed: true
|} in
  let _, n = exec g src in
  Alcotest.(check int) "difference" 2 n;
  Alcotest.(check bool) "t2 spared" false t2.Vgraph.attrs.Vgraph.collapsed

let test_union_intersect () =
  let g, _, _, _, _, _, _ = mk_graph () in
  let src = {|
a = SELECT task_struct FROM * WHERE pid <= 2
b = SELECT task_struct FROM * WHERE pid >= 2
UPDATE a & b WITH collapsed: true
|} in
  let _, n = exec g src in
  Alcotest.(check int) "intersection = {pid 2}" 1 n;
  let g2, _, _, _, _, _, _ = mk_graph () in
  let src2 = {|
a = SELECT task_struct FROM * WHERE pid == 1
b = SELECT task_struct FROM * WHERE pid == 3
UPDATE a UNION b WITH trimmed: true
|} in
  let _, n = exec g2 src2 in
  Alcotest.(check int) "union" 2 n

let test_field_projection () =
  let g, _, _, _, v1, _, c = mk_graph () in
  (* task_struct.mm projects onto linked boxes; .slots onto inline targets *)
  let _, n = exec g "m = SELECT task_struct.mm FROM *\nUPDATE m WITH collapsed: true" in
  Alcotest.(check int) "projected link" 1 n;
  Alcotest.(check bool) "v1 collapsed" true v1.Vgraph.attrs.Vgraph.collapsed;
  let _, n = exec g "s = SELECT task_struct.slots FROM *\nUPDATE s WITH collapsed: true" in
  Alcotest.(check int) "projected inline" 1 n;
  Alcotest.(check bool) "container collapsed" true c.Vgraph.attrs.Vgraph.collapsed

let test_is_inside () =
  let g, t1, _, _, v1, v2, c = mk_graph () in
  (* IS_INSIDE follows container membership and inlines, but NOT links:
     v2 is inside t1's slots container; v1 is only linked. *)
  let src = {|
roots = SELECT task_struct FROM * WHERE pid == 1
inner = SELECT vm_area_struct FROM IS_INSIDE(roots)
UPDATE inner WITH collapsed: true
|} in
  let _, n = exec g src in
  Alcotest.(check int) "only the contained vma" 1 n;
  Alcotest.(check bool) "v2 (member) collapsed" true v2.Vgraph.attrs.Vgraph.collapsed;
  Alcotest.(check bool) "v1 (linked) not" false v1.Vgraph.attrs.Vgraph.collapsed;
  ignore (t1, c)

let test_reachable () =
  let g, t1, _, _, v1, v2, _ = mk_graph () in
  let src = {|
roots = SELECT task_struct FROM * WHERE pid == 1
r = SELECT vm_area_struct FROM REACHABLE(roots)
UPDATE r WITH trimmed: true
|} in
  let _, n = exec g src in
  Alcotest.(check int) "both vmas reachable from t1" 2 n;
  Alcotest.(check bool) "v1" true v1.Vgraph.attrs.Vgraph.trimmed;
  Alcotest.(check bool) "v2 via container" true v2.Vgraph.attrs.Vgraph.trimmed;
  Alcotest.(check bool) "t1 itself untouched" false t1.Vgraph.attrs.Vgraph.trimmed

let test_alias_address_compare () =
  let g, t1, _, _, _, _, _ = mk_graph () in
  let src =
    Printf.sprintf "a = SELECT task_struct FROM * AS t WHERE t != 0x%x\nUPDATE a WITH collapsed: true"
      t1.Vgraph.addr
  in
  let _, n = exec g src in
  Alcotest.(check int) "all but t1" 2 n;
  Alcotest.(check bool) "t1 spared" false t1.Vgraph.attrs.Vgraph.collapsed

let test_multi_attribute_update () =
  let g, t1, _, _, _, _, _ = mk_graph () in
  let s = Viewql.make_session g in
  ignore
    (Viewql.exec s
       "a = SELECT task_struct FROM * WHERE pid == 1\n\
        UPDATE a WITH collapsed: true, view: sched, direction: vertical");
  Alcotest.(check bool) "collapsed" true t1.Vgraph.attrs.Vgraph.collapsed;
  Alcotest.(check string) "view" "sched" t1.Vgraph.attrs.Vgraph.view;
  Alcotest.(check bool) "direction" true (t1.Vgraph.attrs.Vgraph.direction = Vgraph.Vertical);
  (* and back, reusing the named set in the same session *)
  ignore (Viewql.exec s "UPDATE a WITH collapsed: false");
  Alcotest.(check bool) "uncollapsed" false t1.Vgraph.attrs.Vgraph.collapsed

let test_arrow_projection_and_extra_attrs () =
  let g, _, _, _, v1, _, _ = mk_graph () in
  (* '->' is interchangeable with '.' in projections *)
  let _, n = exec g "m = SELECT task_struct->mm FROM *\nUPDATE m WITH highlight: red" in
  Alcotest.(check int) "projected" 1 n;
  Alcotest.(check (option string)) "free-form attr lands in extra" (Some "red")
    (List.assoc_opt "highlight" v1.Vgraph.attrs.Vgraph.extra)

let test_named_sets_persist () =
  let g, _, _, _, _, _, _ = mk_graph () in
  let s = Viewql.make_session g in
  ignore (Viewql.exec s "a = SELECT task_struct FROM *");
  (* second program uses the set from the first: interactive refinement *)
  let n = Viewql.exec s "UPDATE a WITH collapsed: true" in
  Alcotest.(check int) "persisted set" 3 n

let test_errors () =
  let g, _, _, _, _, _, _ = mk_graph () in
  let fails src =
    match exec g src with
    | exception Viewql.Error _ -> ()
    | _ -> Alcotest.failf "expected error: %S" src
  in
  List.iter fails
    [ "UPDATE nosuchset WITH collapsed: true"; "SELECT FROM *"; "a = SELECT t FROM";
      "UPDATE a WITH"; "a = SELECT t FROM * WHERE"; "bogus" ]

(* Property: WHERE filtering agrees with an OCaml predicate model over
   random boxes and random conditions. *)
let prop_where_model =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 20) (pair (int_bound 20) (int_bound 1)))
        (* (threshold, op-code, connective) *)
        (triple (int_bound 20) (int_bound 5) bool))
  in
  let print ((boxes, (thr, op, conj)) : (int * int) list * (int * int * bool)) =
    Printf.sprintf "boxes=%s thr=%d op=%d conj=%b"
      (String.concat ";" (List.map (fun (p, m) -> Printf.sprintf "(%d,%d)" p m) boxes))
      thr op conj
  in
  QCheck.Test.make ~name:"WHERE matches OCaml predicate" ~count:100 (QCheck.make ~print gen)
    (fun (boxes, (thr, opc, conj)) ->
      let g = Vgraph.create () in
      let recs =
        List.mapi
          (fun i (p, m) ->
            let b = Vgraph.add_box g ~btype:"t" ~bdef:"" ~addr:(0x10 + i) ~size:0
                ~container:false in
            Vgraph.record_field b "pid" (Vgraph.Fint p);
            Vgraph.record_field b "mm" (Vgraph.Faddr m);
            Vgraph.set_view b "default" [];
            (b.Vgraph.id, p, m))
          boxes
      in
      let op, f =
        match opc with
        | 0 -> ("==", ( = ))
        | 1 -> ("!=", ( <> ))
        | 2 -> ("<", ( < ))
        | 3 -> (">", ( > ))
        | 4 -> ("<=", ( <= ))
        | _ -> (">=", ( >= ))
      in
      let connective = if conj then "AND" else "OR" in
      let src =
        Printf.sprintf "a = SELECT t FROM * WHERE pid %s %d %s mm != NULL" op thr connective
      in
      let s = Viewql.make_session g in
      ignore (Viewql.exec s src);
      let got = List.sort compare (Viewql.eval_set s (Viewql.Named "a")) in
      let want =
        List.filter_map
          (fun (id, p, m) ->
            let c1 = f p thr and c2 = m <> 0 in
            if (if conj then c1 && c2 else c1 || c2) then Some id else None)
          recs
        |> List.sort compare
      in
      got = want)

(* Property: set algebra laws on random pid-condition selections. *)
let prop_set_algebra =
  QCheck.Test.make ~name:"ViewQL set operators are set algebra" ~count:50
    QCheck.(pair (int_bound 10) (int_bound 10))
    (fun (x, y) ->
      let g = Vgraph.create () in
      for i = 0 to 9 do
        let b = Vgraph.add_box g ~btype:"t" ~bdef:"" ~addr:(0x100 + i) ~size:8 ~container:false in
        Vgraph.record_field b "pid" (Vgraph.Fint i);
        Vgraph.set_view b "default" []
      done;
      let s = Viewql.make_session g in
      ignore
        (Viewql.exec s
           (Printf.sprintf "a = SELECT t FROM * WHERE pid < %d\nb = SELECT t FROM * WHERE pid < %d" x y));
      let ids set = List.sort compare (Viewql.eval_set s set) in
      let a = ids (Viewql.Named "a") and b = ids (Viewql.Named "b") in
      let diff = ids (Viewql.Diff (Viewql.Named "a", Viewql.Named "b")) in
      let inter = ids (Viewql.Inter (Viewql.Named "a", Viewql.Named "b")) in
      let union = ids (Viewql.Union (Viewql.Named "a", Viewql.Named "b")) in
      let mem x l = List.mem x l in
      List.for_all (fun i -> mem i a = (mem i diff || mem i inter)) (a @ b @ diff @ inter @ union)
      && List.for_all (fun i -> mem i inter = (mem i a && mem i b)) union
      && List.for_all (fun i -> mem i union = (mem i a || mem i b)) (a @ b)
      && List.length union = List.length a + List.length b - List.length inter
      && List.length diff = List.length a - List.length inter)

let suite =
  [ Alcotest.test_case "select + update" `Quick test_select_update;
    Alcotest.test_case "WHERE comparisons" `Quick test_where_ops;
    Alcotest.test_case "NULL comparisons" `Quick test_null_compare;
    Alcotest.test_case "bool comparisons" `Quick test_bool_compare;
    Alcotest.test_case "set difference" `Quick test_set_ops;
    Alcotest.test_case "union / intersect" `Quick test_union_intersect;
    Alcotest.test_case "field projection" `Quick test_field_projection;
    Alcotest.test_case "REACHABLE" `Quick test_reachable;
    Alcotest.test_case "IS_INSIDE" `Quick test_is_inside;
    Alcotest.test_case "alias address compare" `Quick test_alias_address_compare;
    Alcotest.test_case "multi-attribute update" `Quick test_multi_attribute_update;
    Alcotest.test_case "arrow projection + extra attrs" `Quick test_arrow_projection_and_extra_attrs;
    Alcotest.test_case "named sets persist in session" `Quick test_named_sets_persist;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_where_model;
    QCheck_alcotest.to_alcotest prop_set_algebra ]
