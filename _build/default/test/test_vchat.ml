(* Tests for the natural-language -> ViewQL synthesizer. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let synth = Vchat.synthesize

let check_has desc fragments =
  let prog = synth desc in
  List.iter
    (fun f ->
      Alcotest.(check bool) (Printf.sprintf "%S in output of %S" f desc) true (contains prog f))
    fragments

let test_collapse_phrases () =
  check_has "collapse all tasks" [ "SELECT task_struct FROM *"; "collapsed: true" ];
  check_has "shrink all processes that have no address space"
    [ "WHERE mm == NULL"; "collapsed: true" ];
  check_has "shrink irq descriptors whose action is not configured"
    [ "SELECT irq_desc"; "action == NULL" ]

let test_trim_phrases () =
  check_has "trim all writable vmas" [ "SELECT vm_area_struct"; "is_writable == true"; "trimmed: true" ];
  check_has "make all non-writable memory areas invisible"
    [ "is_writable != true"; "trimmed: true" ];
  check_has "hide pages" [ "SELECT page"; "trimmed: true" ]

let test_view_phrases () =
  check_has "display view \"sched\" of all tasks" [ "view: sched" ];
  check_has "display the task_structs that have non-null mm members with the show_mm view"
    [ "mm != NULL"; "view: show_mm" ]

let test_direction_phrases () =
  check_has "display the superblock list vertically" [ "SELECT List"; "direction: vertical" ];
  check_has "display the red-black tree top-down" [ "SELECT RBTree"; "direction: vertical" ]

let test_address_pin () =
  (* The paper's StackRot NL instruction. *)
  check_has
    "Find me all vm_area_struct whose address is not 0x40000083aa00, and collapse them"
    [ "SELECT vm_area_struct"; "addr != 0x40000083aa00"; "collapsed: true" ]

let test_projection () =
  check_has "collapse the slots of all maple_nodes" [ "SELECT maple_node.slots"; "collapsed: true" ]

let test_multi_clause () =
  let prog = synth "display view \"sched\" of all tasks, and shrink tasks that have no address space" in
  Alcotest.(check bool) "two selects" true
    (contains prog "s1 = SELECT" && contains prog "s2 = SELECT");
  Alcotest.(check bool) "both actions" true
    (contains prog "view: sched" && contains prog "collapsed: true")

let test_cannot_synthesize () =
  match synth "what is the meaning of life" with
  | exception Vchat.Cannot_synthesize _ -> ()
  | p -> Alcotest.failf "expected failure, got %S" p

let test_llm_hook () =
  let llm _ = "UPDATE x WITH collapsed: true" in
  Alcotest.(check string) "plugged model wins" "UPDATE x WITH collapsed: true"
    (Vchat.synthesize ~llm "anything at all")

let test_prompt_template () =
  let p = Vchat.prompt_for "collapse everything" in
  Alcotest.(check bool) "desc substituted" true (contains p "collapse everything");
  Alcotest.(check bool) "ICL examples present" true (contains p "Example 1");
  Alcotest.(check bool) "syntax described" true (contains p "UPDATE <set-expression>")

(* The paper's §5.2 superblock example, end to end against a live plot. *)
let test_superblock_example_end_to_end () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  let s = Visualinux.attach k in
  let pane, _, _ = Visualinux.plot_figure s (Option.get (Scripts.find "14-3")) in
  let prog, _ =
    Visualinux.vchat s ~pane:pane.Panel.pid
      "display the superblock list vertically, and collapse superblocks that are not \
       connected to any block device"
  in
  (* semantics match the paper's generated program: direction on the list
     container, collapse on s_bdev == NULL superblocks *)
  Alcotest.(check bool) "list vertical" true (contains prog "direction: vertical");
  Alcotest.(check bool) "s_bdev condition" true (contains prog "s_bdev == NULL");
  let g = pane.Panel.graph in
  let rootfs_sb =
    List.find
      (fun b ->
        match Vgraph.field b "s_bdev" with Some (Vgraph.Faddr 0) -> true | _ -> false)
      (Vgraph.of_type g "super_block")
  in
  Alcotest.(check bool) "diskless sb collapsed" true rootfs_sb.Vgraph.attrs.Vgraph.collapsed;
  let ext4_sb =
    List.find
      (fun b ->
        match Vgraph.field b "s_bdev" with Some (Vgraph.Faddr a) -> a <> 0 | _ -> false)
      (Vgraph.of_type g "super_block")
  in
  Alcotest.(check bool) "disk-backed sb kept" false ext4_sb.Vgraph.attrs.Vgraph.collapsed

(* Every Table 3 objective must synthesize into parseable ViewQL. *)
let test_objectives_synthesize_and_parse () =
  List.iter
    (fun (o : Objectives.objective) ->
      let prog = synth o.Objectives.text in
      match Viewql.parse prog with
      | _ -> ()
      | exception Viewql.Error m ->
          Alcotest.failf "objective %s: generated invalid ViewQL (%s): %s" o.Objectives.fig m prog)
    Objectives.all

let suite =
  [ Alcotest.test_case "collapse phrases" `Quick test_collapse_phrases;
    Alcotest.test_case "trim phrases" `Quick test_trim_phrases;
    Alcotest.test_case "view phrases" `Quick test_view_phrases;
    Alcotest.test_case "direction phrases" `Quick test_direction_phrases;
    Alcotest.test_case "address pinning (StackRot NL)" `Quick test_address_pin;
    Alcotest.test_case "field projection" `Quick test_projection;
    Alcotest.test_case "multi-clause" `Quick test_multi_clause;
    Alcotest.test_case "unsynthesizable input" `Quick test_cannot_synthesize;
    Alcotest.test_case "LLM hook" `Quick test_llm_hook;
    Alcotest.test_case "prompt template" `Quick test_prompt_template;
    Alcotest.test_case "superblock example end-to-end (§5.2)" `Quick
      test_superblock_example_end_to_end;
    Alcotest.test_case "all Table-3 objectives parse" `Quick test_objectives_synthesize_and_parse ]
