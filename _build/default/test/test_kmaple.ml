(* Unit + property tests for the maple tree. *)

let mk () =
  let c = Kcontext.create () in
  let mt = Kcontext.alloc c "maple_tree" in
  (c, mt, Kmaple.create c mt)

let entry n = Kmem.kernel_base + 0x100000 + (n * 64)

let test_empty () =
  let c, mt, t = mk () in
  Alcotest.(check (list (triple int int int))) "no entries" [] (Kmaple.entries t);
  Alcotest.(check (list (triple int int int))) "read side empty" [] (Kmaple.read_entries c mt);
  Alcotest.(check int) "walk misses" 0 (Kmaple.walk c mt 42)

let test_single_span_direct_root () =
  let c, mt, t = mk () in
  Kmaple.store_range t ~lo:0 ~hi:Kmaple.mt_max (entry 1);
  (* single full-span entry is stored directly in ma_root, untagged *)
  let root = Kcontext.r64 c mt "maple_tree" "ma_root" in
  Alcotest.(check bool) "not a node" false (Kmaple.is_node root);
  Alcotest.(check int) "direct" (entry 1) root;
  Alcotest.(check int) "walk" (entry 1) (Kmaple.walk c mt 12345)

let test_basic_ranges () =
  let c, mt, t = mk () in
  Kmaple.store_range t ~lo:0x1000 ~hi:0x1fff (entry 1);
  Kmaple.store_range t ~lo:0x3000 ~hi:0x4fff (entry 2);
  Kmaple.store_range t ~lo:0x8000 ~hi:0x8fff (entry 3);
  Alcotest.(check (list (triple int int int))) "shadow"
    [ (0x1000, 0x1fff, entry 1); (0x3000, 0x4fff, entry 2); (0x8000, 0x8fff, entry 3) ]
    (Kmaple.entries t);
  Alcotest.(check (list (triple int int int))) "read side matches shadow" (Kmaple.entries t)
    (Kmaple.read_entries c mt);
  Alcotest.(check int) "walk hit" (entry 2) (Kmaple.walk c mt 0x3500);
  Alcotest.(check int) "walk gap" 0 (Kmaple.walk c mt 0x2500);
  Alcotest.(check int) "walk edge lo" (entry 1) (Kmaple.walk c mt 0x1000);
  Alcotest.(check int) "walk edge hi" (entry 1) (Kmaple.walk c mt 0x1fff)

let test_overwrite_and_split () =
  let _, _, t = mk () in
  Kmaple.store_range t ~lo:100 ~hi:199 (entry 1);
  (* overwrite the middle: the original splits in two *)
  Kmaple.store_range t ~lo:140 ~hi:159 (entry 2);
  Alcotest.(check (list (triple int int int))) "split"
    [ (100, 139, entry 1); (140, 159, entry 2); (160, 199, entry 1) ]
    (Kmaple.entries t);
  (* erase across boundaries *)
  Kmaple.erase_range t ~lo:150 ~hi:170;
  Alcotest.(check (list (triple int int int))) "erased"
    [ (100, 139, entry 1); (140, 149, entry 2); (171, 199, entry 1) ]
    (Kmaple.entries t)

let test_encoded_pointers () =
  let c, mt, t = mk () in
  for i = 0 to 30 do
    Kmaple.store_range t ~lo:(i * 1000) ~hi:((i * 1000) + 500) (entry i)
  done;
  let root = Kcontext.r64 c mt "maple_tree" "ma_root" in
  Alcotest.(check bool) "root is encoded node" true (Kmaple.is_node root);
  (* 31 entries + gaps exceed one leaf: root must be an arange internal *)
  Alcotest.(check int) "root type arange" Kmaple.maple_arange_64 (Kmaple.node_type root);
  Alcotest.(check bool) "not leaf" false (Kmaple.is_leaf root);
  Alcotest.(check int) "decode alignment" 0 (Kmaple.to_node root land 0xff);
  Alcotest.(check int) "height 2" 2 (Kmaple.read_height c mt);
  (* every node reachable is 256-aligned and live *)
  List.iter
    (fun n ->
      Alcotest.(check int) "aligned" 0 (n land 0xff);
      Alcotest.(check bool) "live" true (Kmem.is_live c.Kcontext.mem n))
    (Kmaple.read_nodes c mt)

let test_store_frees_old_generation () =
  let c, mt, t = mk () in
  for i = 0 to 20 do
    Kmaple.store_range t ~lo:(i * 100) ~hi:((i * 100) + 50) (entry i)
  done;
  let old_nodes = Kmaple.read_nodes c mt in
  let freed = ref [] in
  Kmaple.store_range t ~free:(fun n -> freed := n :: !freed) ~lo:5000 ~hi:5100 (entry 99);
  (* all old nodes were handed to free *)
  List.iter
    (fun n -> Alcotest.(check bool) "old node freed" true (List.mem n !freed))
    old_nodes;
  (* and new nodes are live and distinct from freed ones *)
  List.iter
    (fun n -> Alcotest.(check bool) "new node not in freed" false (List.mem n !freed))
    (Kmaple.read_nodes c mt)

let test_rcu_deferred_free_uaf () =
  (* the StackRot mechanism in miniature *)
  let k = Kstate.boot () in
  let c = k.Kstate.ctx in
  let mt = Kcontext.alloc c "maple_tree" in
  let t = Kmaple.create c mt in
  for i = 0 to 20 do
    Kmaple.store_range t ~lo:(i * 100) ~hi:((i * 100) + 50) (entry i)
  done;
  let stale = Kmaple.read_nodes c mt in
  Kmaple.store_range t ~free:(Kstate.ma_free_rcu k) ~lo:0 ~hi:49 0;
  (* before the grace period the stale nodes are still readable *)
  Alcotest.(check bool) "still live" true (List.for_all (Kmem.is_live c.Kcontext.mem) stale);
  Alcotest.(check int) "queued on rcu list" (List.length stale)
    (List.length (Krcu.pending k.Kstate.rcu ()));
  Krcu.run_grace_period k.Kstate.rcu;
  Alcotest.(check bool) "freed after gp" true
    (List.for_all (fun n -> not (Kmem.is_live c.Kcontext.mem n)) stale);
  Kmem.clear_faults c.Kcontext.mem;
  ignore (Kcontext.r64 c (List.hd stale) "maple_node" "parent");
  Alcotest.(check bool) "UAF detected" true (Kmem.faults c.Kcontext.mem <> [])

let test_adjacent_and_edges () =
  let c, mt, t = mk () in
  (* adjacent ranges with no gap *)
  Kmaple.store_range t ~lo:0 ~hi:99 (entry 1);
  Kmaple.store_range t ~lo:100 ~hi:199 (entry 2);
  Alcotest.(check (list (triple int int int))) "adjacent"
    [ (0, 99, entry 1); (100, 199, entry 2) ]
    (Kmaple.read_entries c mt);
  Alcotest.(check int) "walk boundary lo" (entry 1) (Kmaple.walk c mt 99);
  Alcotest.(check int) "walk boundary hi" (entry 2) (Kmaple.walk c mt 100);
  (* a range ending at mt_max *)
  Kmaple.store_range t ~lo:(Kmaple.mt_max - 10) ~hi:Kmaple.mt_max (entry 3);
  Alcotest.(check int) "walk at mt_max" (entry 3) (Kmaple.walk c mt Kmaple.mt_max);
  (* erase everything -> empty tree, all nodes freed *)
  let nodes = Kmaple.read_nodes c mt in
  Kmaple.erase_range t ~lo:0 ~hi:Kmaple.mt_max;
  Alcotest.(check (list (triple int int int))) "empty" [] (Kmaple.read_entries c mt);
  Alcotest.(check int) "root null" 0 (Kcontext.r64 c mt "maple_tree" "ma_root");
  Alcotest.(check bool) "old nodes freed" true
    (List.for_all (fun n -> not (Kmem.is_live c.Kcontext.mem n)) nodes)

let test_invalid_ranges_rejected () =
  let _, _, t = mk () in
  List.iter
    (fun (lo, hi) ->
      match Kmaple.store_range t ~lo ~hi (entry 1) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "range (%d, %d) should be rejected" lo hi)
    [ (10, 5); (-1, 5); (0, Kmaple.mt_max + 1) ]

(* Model-based property: a random sequence of store/erase matches an
   interval-map model, on both the shadow and the read side. *)
let model_store model ~lo ~hi e =
  (* model: sorted (lo, hi, e) list, same semantics *)
  let rec go = function
    | [] -> if e = 0 then [] else [ (lo, hi, e) ]
    | (l, h, v) :: rest when h < lo -> (l, h, v) :: go rest
    | (l, h, v) :: rest when l > hi ->
        (if e = 0 then [] else [ (lo, hi, e) ]) @ ((l, h, v) :: rest)
    | (l, h, v) :: rest ->
        let keep_low = if l < lo then [ (l, lo - 1, v) ] else [] in
        let keep_high = if h > hi then [ (hi + 1, h, v) ] else [] in
        keep_low @ go_overlap rest keep_high
  and go_overlap rest high =
    match rest with
    | (l, h, v) :: rest' when l <= hi ->
        let high' = if h > hi then (hi + 1, h, v) :: high else high in
        go_overlap rest' high'
    | _ -> (if e = 0 then [] else [ (lo, hi, e) ]) @ high @ rest
  in
  go model

let prop_maple_model =
  QCheck.Test.make ~name:"maple tree matches interval-map model" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 30) (triple (int_bound 50) (int_bound 20) (int_bound 5)))
    (fun ops ->
      let c, mt, t = mk () in
      let model = ref [] in
      List.iter
        (fun (lo0, len, ei) ->
          let lo = lo0 * 100 and hi = (lo0 * 100) + ((len + 1) * 50) in
          let e = if ei = 0 then 0 else entry ei in
          Kmaple.store_range t ~lo ~hi e;
          model := model_store !model ~lo ~hi e)
        ops;
      Kmaple.entries t = !model && Kmaple.read_entries c mt = !model)

let prop_maple_walk =
  QCheck.Test.make ~name:"mas_walk agrees with entries" ~count:40
    QCheck.(pair (list_of_size (Gen.int_range 1 15) (pair (int_bound 30) (int_bound 4)))
              (list_of_size (Gen.int_range 1 20) (int_bound 3500)))
    (fun (stores, probes) ->
      let c, mt, t = mk () in
      List.iter
        (fun (lo0, ei) ->
          Kmaple.store_range t ~lo:(lo0 * 100) ~hi:((lo0 * 100) + 99)
            (if ei = 0 then 0 else entry ei))
        stores;
      let ranges = Kmaple.entries t in
      List.for_all
        (fun idx ->
          let expect =
            match List.find_opt (fun (l, h, _) -> idx >= l && idx <= h) ranges with
            | Some (_, _, e) -> e
            | None -> 0
          in
          Kmaple.walk c mt idx = expect)
        probes)

let suite =
  [ Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "single span stored directly" `Quick test_single_span_direct_root;
    Alcotest.test_case "basic ranges + read side" `Quick test_basic_ranges;
    Alcotest.test_case "overwrite splits ranges" `Quick test_overwrite_and_split;
    Alcotest.test_case "encoded node pointers" `Quick test_encoded_pointers;
    Alcotest.test_case "store frees old generation" `Quick test_store_frees_old_generation;
    Alcotest.test_case "RCU deferred free -> UAF (StackRot)" `Quick test_rcu_deferred_free_uaf;
    Alcotest.test_case "adjacent ranges + edges" `Quick test_adjacent_and_edges;
    Alcotest.test_case "invalid ranges rejected" `Quick test_invalid_ranges_rejected;
    QCheck_alcotest.to_alcotest prop_maple_model;
    QCheck_alcotest.to_alcotest prop_maple_walk ]
