(* Unit + property tests for the C type/layout engine. *)

open Ctype

let reg () = create_registry ()

let test_scalar_sizes () =
  let r = reg () in
  List.iter
    (fun (t, sz) -> Alcotest.(check int) (to_string t) sz (sizeof r t))
    [ (char, 1); (short, 2); (int, 4); (long, 8); (u64, 8); (Ptr int, 8); (Bool, 1);
      (Array (int, 10), 40); (fptr "fn", 8) ]

let test_struct_layout () =
  let r = reg () in
  define_struct r "s" [ F ("a", char); F ("b", int); F ("c", char); F ("d", long) ];
  Alcotest.(check int) "a" 0 (offsetof r "s" "a");
  Alcotest.(check int) "b" 4 (offsetof r "s" "b");
  Alcotest.(check int) "c" 8 (offsetof r "s" "c");
  Alcotest.(check int) "d" 16 (offsetof r "s" "d");
  Alcotest.(check int) "sizeof" 24 (sizeof r (Named "s"));
  Alcotest.(check int) "alignof" 8 (alignof r (Named "s"))

let test_nested_offsetof () =
  let r = reg () in
  define_struct r "inner" [ F ("x", int); F ("y", int) ];
  define_struct r "outer" [ F ("pad", long); F ("in", Named "inner") ];
  Alcotest.(check int) "nested path" 12 (offsetof r "outer" "in.y")

let test_union_layout () =
  let r = reg () in
  define_union r "u" [ F ("a", int); F ("b", Array (char, 13)); F ("c", long) ];
  Alcotest.(check int) "all at 0" 0 (offsetof r "u" "b");
  Alcotest.(check int) "size = max padded" 16 (sizeof r (Named "u"));
  Alcotest.(check int) "align" 8 (alignof r (Named "u"))

let test_overlay_fat () =
  let r = reg () in
  define_struct r "base" [ F ("p", Ptr Void); F ("rest", Array (u64, 3)) ];
  define_struct r "node"
    [ Fat ("parent", Ptr Void, 0); Fat ("as_base", Named "base", 0) ];
  Alcotest.(check int) "overlay offsets" 0 (offsetof r "node" "as_base");
  Alcotest.(check int) "size is max" 32 (sizeof r (Named "node"))

let test_bitfields () =
  let r = reg () in
  (* like struct slab: u32 inuse:16, objects:15, frozen:1 — one unit *)
  define_struct r "bf"
    [ Fbits ("inuse", u32, 16); Fbits ("objects", u32, 15); Fbits ("frozen", u32, 1);
      F ("next", u32) ];
  let f n = field r "bf" n in
  Alcotest.(check int) "shared unit offset" 0 (f "inuse").foffset;
  Alcotest.(check int) "objects same unit" 0 (f "objects").foffset;
  Alcotest.(check (option (pair int int))) "inuse bits" (Some (0, 16)) (f "inuse").fbit;
  Alcotest.(check (option (pair int int))) "objects bits" (Some (16, 15)) (f "objects").fbit;
  Alcotest.(check (option (pair int int))) "frozen bits" (Some (31, 1)) (f "frozen").fbit;
  Alcotest.(check int) "next after unit" 4 (f "next").foffset

let test_bitfield_overflow_starts_new_unit () =
  let r = reg () in
  define_struct r "bf2" [ Fbits ("a", u8, 6); Fbits ("b", u8, 6); F ("c", u8) ];
  let f n = field r "bf2" n in
  Alcotest.(check int) "a unit" 0 (f "a").foffset;
  Alcotest.(check int) "b new unit" 1 (f "b").foffset;
  Alcotest.(check int) "c after" 2 (f "c").foffset

let test_enum () =
  let r = reg () in
  define_enum r "e" [ ("A", 0); ("B", 5); ("C", 6) ];
  Alcotest.(check int) "sizeof enum" 4 (sizeof r (Named "e"));
  Alcotest.(check (option string)) "name_of" (Some "B") (enum_name_of r "e" 5);
  Alcotest.(check (option int)) "value_of" (Some 6) (enum_value_of r "e" "C");
  Alcotest.(check (option (pair string int))) "global lookup" (Some ("e", 5))
    (lookup_enum_const r "B")

let test_duplicate_field_rejected () =
  let r = reg () in
  Alcotest.check_raises "dup" (Invalid_argument "Ctype: duplicate field \"x\"") (fun () ->
      define_struct r "dup" [ F ("x", int); F ("x", long) ])

let test_undefined_rejected () =
  let r = reg () in
  Alcotest.check_raises "undefined" (Invalid_argument "Ctype: undefined composite \"nope\"")
    (fun () -> ignore (sizeof r (Named "nope")))

let test_kernel_types_layout () =
  (* The full kernel registry obeys basic invariants everywhere. *)
  let r = reg () in
  Ktypes.define_all r;
  List.iter
    (fun name ->
      match kind_of r name with
      | Struct_kind | Union_kind ->
          let sz = sizeof r (Named name) and al = alignof r (Named name) in
          Alcotest.(check bool) (name ^ " size>0") true (sz > 0);
          Alcotest.(check int) (name ^ " size%align") 0 (sz mod al);
          List.iter
            (fun f ->
              Alcotest.(check int)
                (Printf.sprintf "%s.%s aligned" name f.fname)
                0
                (f.foffset mod alignof r f.ftyp);
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s fits" name f.fname)
                true
                (f.foffset + sizeof r f.ftyp <= sz))
            (fields r name)
      | Enum_kind -> ())
    (composite_names r)

let test_maple_node_is_256_bytes () =
  let r = reg () in
  Ktypes.define_all r;
  Alcotest.(check int) "maple_node size" 256 (sizeof r (Named "maple_node"));
  Alcotest.(check int) "list_head size" 16 (sizeof r (Named "list_head"));
  Alcotest.(check int) "rb_node size" 24 (sizeof r (Named "rb_node"))

(* Property: random struct layouts respect C rules. *)
let gen_fields =
  let open QCheck.Gen in
  let base = oneofl [ Ctype.char; Ctype.short; Ctype.int; Ctype.long; Ctype.u8; Ctype.u16 ] in
  let typ =
    frequency
      [ (4, base); (2, map (fun t -> Ctype.Ptr t) base);
        (1, map2 (fun t n -> Ctype.Array (t, 1 + (n mod 5))) base small_nat) ]
  in
  list_size (int_range 1 12) typ

let prop_layout_laws =
  QCheck.Test.make ~name:"struct layout laws" ~count:100
    (QCheck.make ~print:(fun ts -> String.concat ", " (List.map Ctype.to_string ts)) gen_fields)
    (fun types ->
      let r = reg () in
      let specs = List.mapi (fun i t -> Ctype.F (Printf.sprintf "f%d" i, t)) types in
      Ctype.define_struct r "p" specs;
      let sz = Ctype.sizeof r (Ctype.Named "p") and al = Ctype.alignof r (Ctype.Named "p") in
      let fs = Ctype.fields r "p" in
      (* offsets aligned, non-overlapping, increasing; size covers all *)
      let rec ok prev_end = function
        | [] -> true
        | f :: rest ->
            f.Ctype.foffset mod Ctype.alignof r f.Ctype.ftyp = 0
            && f.Ctype.foffset >= prev_end
            && ok (f.Ctype.foffset + Ctype.sizeof r f.Ctype.ftyp) rest
      in
      sz mod al = 0 && ok 0 fs
      && List.for_all (fun f -> f.Ctype.foffset + Ctype.sizeof r f.Ctype.ftyp <= sz) fs)

let suite =
  [ Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "nested offsetof" `Quick test_nested_offsetof;
    Alcotest.test_case "union layout" `Quick test_union_layout;
    Alcotest.test_case "Fat overlay" `Quick test_overlay_fat;
    Alcotest.test_case "bitfield packing" `Quick test_bitfields;
    Alcotest.test_case "bitfield unit overflow" `Quick test_bitfield_overflow_starts_new_unit;
    Alcotest.test_case "enum" `Quick test_enum;
    Alcotest.test_case "duplicate field rejected" `Quick test_duplicate_field_rejected;
    Alcotest.test_case "undefined composite rejected" `Quick test_undefined_rejected;
    Alcotest.test_case "kernel registry invariants" `Quick test_kernel_types_layout;
    Alcotest.test_case "key kernel struct sizes" `Quick test_maple_node_is_256_bytes;
    QCheck_alcotest.to_alcotest prop_layout_laws ]
