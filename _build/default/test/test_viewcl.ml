(* Unit tests for the ViewCL language: lexing, parsing, evaluation. *)

let boot_session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (k, Visualinux.attach k)

let run s src = Viewcl.run ~cfg:(Visualinux.config ()) s.Visualinux.target src

(* ---------------- parsing ---------------- *)

let test_parse_shapes () =
  let p =
    Viewcl.parse
      {|
define T as Box<task_struct> {
  :default [ Text pid, comm ]
  :default => :more [ Text prio ] where { x = ${1 + 2} }
}
r = ${cpu_rq(0)}
plot T(@r)
|}
  in
  match p with
  | [ Viewcl.Ast.Define d; Viewcl.Ast.Top_bind ("r", _); Viewcl.Ast.Plot _ ] ->
      Alcotest.(check string) "name" "T" d.Viewcl.Ast.bname;
      Alcotest.(check string) "ctype" "task_struct" d.Viewcl.Ast.bctype;
      Alcotest.(check int) "views" 2 (List.length d.Viewcl.Ast.bviews);
      let v2 = List.nth d.Viewcl.Ast.bviews 1 in
      Alcotest.(check (option string)) "inheritance" (Some "default") v2.Viewcl.Ast.vparent;
      Alcotest.(check int) "view where" 1 (List.length v2.Viewcl.Ast.vwhere)
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_errors () =
  let fails src =
    match Viewcl.parse src with
    | exception Viewcl.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  List.iter fails
    [ "define"; "define X as Box task [ ]"; "plot"; "define X as Box<t> [ Text ]";
      "define X as Box<t> [ Link a b ]"; "x = ${unclosed"; "yield ${1}" ]

let test_loc_metric () =
  Alcotest.(check int) "comments and blanks don't count" 2
    (Viewcl.loc_of "// comment\n\nText pid\n\n// more\nplot @x\n")

(* ---------------- evaluation ---------------- *)

let test_simple_box () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<task_struct> [
  Text pid, comm
  Text ppid: parent.pid
]
plot B(${&init_task})
|} in
  let g = res.Viewcl.graph in
  Alcotest.(check int) "one box" 1 (Vgraph.box_count g);
  let b = List.hd (Vgraph.boxes g) in
  Alcotest.(check (option string)) "pid field"
    (Some "0")
    (match Vgraph.field b "pid" with Some (Vgraph.Fint n) -> Some (string_of_int n) | _ -> None);
  (match Vgraph.current_items b with
  | [ Vgraph.Text { label = "pid"; value = "0"; _ };
      Vgraph.Text { label = "comm"; value = "swapper/0"; _ };
      Vgraph.Text { label = "ppid"; _ } ] -> ()
  | items -> Alcotest.failf "unexpected items (%d)" (List.length items))

let test_decorators () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<vm_area_struct> [
  Text<u64:x> vm_start
  Text<flag:vm_flags> vm_flags
  Text<bool> w: ${is_writable(@this)}
  Text<string> n: ${vma_name(@this)}
]
plot B(${mas_walk(&task_of_pid(target_pid)->mm->mm_mt, task_of_pid(target_pid)->mm->start_code)})
|} in
  let b = List.hd (Vgraph.boxes res.Viewcl.graph) in
  (match Vgraph.current_items b with
  | [ Vgraph.Text { label = "vm_start"; value; _ }; Vgraph.Text { value = flags; _ };
      Vgraph.Text { label = "w"; value = w; _ }; Vgraph.Text { label = "n"; value = n; _ } ] ->
      Alcotest.(check string) "hex" "0x400000" value;
      Alcotest.(check bool) "flag names" true (flags = "VM_READ|VM_EXEC");
      Alcotest.(check string) "bool" "false" w;
      Alcotest.(check bool) "backing file name" true (String.length n > 0)
  | _ -> Alcotest.fail "unexpected items")

let test_enum_and_emoji_decorators () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<rq> [
  Text<emoji:lock> l: __lock.locked
]
plot B(${cpu_rq(0)})
|} in
  let b = List.hd (Vgraph.boxes res.Viewcl.graph) in
  match Vgraph.current_items b with
  | [ Vgraph.Text { value = "[unlocked]"; _ } ] -> ()
  | _ -> Alcotest.fail "emoji decorator failed"

let test_numeric_base_decorators () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<vm_area_struct> [
  Text<u64:x> hex: vm_flags
  Text<u64:o> oct: vm_flags
  Text<u64:b> bin: vm_flags
  Text<u64:d> dec: vm_flags
]
plot B(${mas_walk(&task_of_pid(target_pid)->mm->mm_mt, 0x400000)})
|} in
  match Vgraph.current_items (List.hd (Vgraph.boxes res.Viewcl.graph)) with
  | [ Vgraph.Text { value = hex; _ }; Vgraph.Text { value = oct; _ };
      Vgraph.Text { value = bin; _ }; Vgraph.Text { value = dec; _ } ] ->
      (* text VMA: VM_READ | VM_EXEC = 0x5 *)
      Alcotest.(check string) "hex" "0x5" hex;
      Alcotest.(check string) "oct" "0o5" oct;
      Alcotest.(check string) "bin" "0b101" bin;
      Alcotest.(check string) "dec" "5" dec
  | _ -> Alcotest.fail "unexpected items"

let test_views_inheritance () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<task_struct> {
  :default [ Text pid ]
  :default => :sched [ Text prio ]
}
plot B(${&init_task})
|} in
  let b = List.hd (Vgraph.boxes res.Viewcl.graph) in
  Alcotest.(check int) "default has 1 item" 1 (List.length (List.assoc "default" b.Vgraph.views));
  Alcotest.(check int) "sched inherits" 2 (List.length (List.assoc "sched" b.Vgraph.views));
  (* ViewQL-style view switch changes what current_items returns *)
  b.Vgraph.attrs.Vgraph.view <- "sched";
  Alcotest.(check int) "switched" 2 (List.length (Vgraph.current_items b))

let test_containers_and_memoization () =
  let _, s = boot_session () in
  let res = run s {|
define T as Box<task_struct> [ Text pid ]
a = List(${&init_task.children}).forEach |n| { yield T<task_struct.sibling>(@n) }
b = List(${&init_task.children}).forEach |n| { yield T<task_struct.sibling>(@n) }
plot @a
plot @b
|} in
  let g = res.Viewcl.graph in
  let tasks = Vgraph.of_type g "task_struct" in
  let containers = List.filter (fun b -> b.Vgraph.container) (Vgraph.boxes g) in
  Alcotest.(check int) "two containers" 2 (List.length containers);
  (* memoization: same tasks are shared between the two plots *)
  let c1 = List.nth containers 0 and c2 = List.nth containers 1 in
  Alcotest.(check (list int)) "same members" c1.Vgraph.members c2.Vgraph.members;
  Alcotest.(check bool) "non-empty" true (tasks <> [])

let test_switch_and_null () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<task_struct> [
  Text pid
  Link mm -> @m
] where {
  m = switch ${@this->mm != NULL} {
    case ${true}: B(${&init_task})
    otherwise: NULL
  }
}
plot B(${&init_task})
|} in
  let b = List.hd (Vgraph.boxes res.Viewcl.graph) in
  (match Vgraph.current_items b with
  | [ _; Vgraph.Link { target = None; _ } ] -> ()
  | _ -> Alcotest.fail "kernel thread mm should be a NULL link")

let test_anchor_container_of () =
  let _, s = boot_session () in
  (* construct a Task from its embedded run_node, like the paper's intro *)
  let res = run s {|
define T as Box<task_struct> [ Text pid, comm ]
rq = RBTree(${&cpu_rq(0)->cfs.tasks_timeline}).forEach |n| {
  yield T<task_struct.se.run_node>(@n)
}
plot @rq
|} in
  let tasks = Vgraph.of_type res.Viewcl.graph "task_struct" in
  Alcotest.(check bool) "tasks recovered via container_of" true (List.length tasks > 5);
  (* vruntime order: pids are assigned in vruntime order by the workload *)
  List.iter
    (fun b -> Alcotest.(check bool) "valid comm" true (Vgraph.field b "comm" <> None))
    tasks

let test_select_from () =
  let _, s = boot_session () in
  let res = run s {|
define V as Box<vm_area_struct> [ Text<u64:x> vm_start ]
define MN as Box<maple_node> [
  Container slots: @slots
] where {
  node = ${mte_to_node(@this)}
  slots = switch ${mte_is_leaf(@this)} {
    case ${true}:
      Array(${@node->mr64.slot}).forEach |i| {
        yield switch ${@i != NULL} { case ${true}: V(@i) otherwise: NULL }
      }
    otherwise:
      Array(${@node->ma64.slot}).forEach |i| {
        yield switch ${@i != NULL} { case ${true}: MN(@i) otherwise: NULL }
      }
  }
}
define MT as Box<maple_tree> [ Link root -> @r ] where {
  r = switch ${xa_is_node(@this->ma_root)} { case ${true}: MN(${@this->ma_root}) otherwise: NULL }
}
t = MT(${&task_of_pid(target_pid)->mm->mm_mt})
flat = Array.selectFrom(@t, V)
plot @flat
|} in
  let g = res.Viewcl.graph in
  (* the plotted root is the selectFrom result *)
  let flat = Vgraph.get g (List.hd (Vgraph.roots g)) in
  let vmas = Vgraph.of_type g "vm_area_struct" in
  Alcotest.(check int) "distill collects all VMAs" (List.length vmas)
    (List.length flat.Vgraph.members);
  (* ordered: vm_start increasing *)
  let starts =
    List.map
      (fun id ->
        match Vgraph.field (Vgraph.get g id) "vm_start" with
        | Some (Vgraph.Fint v) -> v
        | _ -> -1)
      flat.Vgraph.members
  in
  Alcotest.(check (list int)) "address order" (List.sort compare starts) starts

let test_default_formats () =
  let k, s = boot_session () in
  (* locate the socket fd of the target task (seed-independent) *)
  let ctx = k.Kstate.ctx in
  let target = Option.get (Kstate.find_task k s.Visualinux.target_pid) in
  let sock_fd =
    Kvfs.open_fds k.Kstate.vfs (Ksyscall.files_of k target)
    |> List.find_map (fun (fd, f) ->
           match Kfuncs.name_of k.Kstate.funcs (Kcontext.r64 ctx f "file" "f_op") with
           | Some "socket_file_ops" -> Some fd
           | _ -> None)
    |> Option.get
  in
  (* default formatting without decorators: enums by name, ints plain,
     function pointers by symbol *)
  let res = run s (Printf.sprintf {|
define B as Box<socket> [
  Text state
  Text type
  Text<fptr> ops
]
plot B(${sock_of_file(fd_file(task_of_pid(target_pid)->files, %d))})
|} sock_fd) in
  match Vgraph.current_items (List.hd (Vgraph.boxes res.Viewcl.graph)) with
  | [ Vgraph.Text { label = "state"; value = st; _ }; Vgraph.Text { value = ty; _ };
      Vgraph.Text { value = ops; _ } ] ->
      Alcotest.(check string) "enum field by name" "SS_CONNECTED" st;
      Alcotest.(check string) "plain int" "1" ty;
      Alcotest.(check string) "fptr by symbol" "inet_stream_ops" ops
  | _ -> Alcotest.fail "unexpected items"

let test_range_and_nested_foreach () =
  let _, s = boot_session () in
  let res = run s {|
define B as Box<task_struct> [ Text pid ]
grid = Range(${0}, ${2}).forEach |cpu| {
  rq = RBTree(${&cpu_rq(@cpu)->cfs.tasks_timeline}).forEach |n| {
    yield B<task_struct.se.run_node>(@n)
  }
  yield @rq
}
plot @grid
|} in
  let g = res.Viewcl.graph in
  let outer = Vgraph.get g (List.hd (Vgraph.roots g)) in
  Alcotest.(check int) "one inner container per cpu" 2 (List.length outer.Vgraph.members);
  let tasks = Vgraph.of_type g "task_struct" in
  Alcotest.(check bool) "tasks from both runqueues" true (List.length tasks > 10)

let test_multi_plot_roots () =
  let _, s = boot_session () in
  let res = run s {|
define A as Box<rq> [ Text cpu ]
plot A(${cpu_rq(0)})
plot A(${cpu_rq(1)})
|} in
  Alcotest.(check int) "two roots" 2 (List.length (Vgraph.roots res.Viewcl.graph));
  Alcotest.(check int) "two plots recorded" 2 (List.length res.Viewcl.plots)

let test_anon_box_and_yield_null () =
  let _, s = boot_session () in
  (* anonymous boxes group items; NULL yields are dropped from containers *)
  let res = run s {|
wrap = Range(${0}, ${4}).forEach |i| {
  yield switch ${@i % 2} {
    case ${0}: Box [ Text idx: @i ]
    otherwise: NULL
  }
}
plot @wrap
|} in
  let g = res.Viewcl.graph in
  let c = Vgraph.get g (List.hd (Vgraph.roots g)) in
  Alcotest.(check int) "only even yields kept" 2 (List.length c.Vgraph.members)

let test_eval_errors () =
  let _, s = boot_session () in
  let fails src =
    match run s src with
    | exception Viewcl.Error _ -> ()
    | _ -> Alcotest.failf "expected eval error for %S" src
  in
  List.iter fails
    [ "plot X(${0})";  (* unknown def *)
      "plot @nope";  (* unbound ref *)
      "define B as Box<task_struct> [ Text nofield ]\nplot B(${&init_task})";
      "define B as Box<task_struct> [ Text pid ]\nplot B(${nosym})" ]

let test_box_budget () =
  let _, s = boot_session () in
  (* a self-recursive box on a cyclic structure is fine (memoized), but a
     box that generates fresh virtual boxes forever trips the budget *)
  match
    run s {|
define B as Box<task_struct> [ Link self -> @n ] where {
  n = Box [ Link inner -> B(${&init_task}) ]
}
plot B(${&init_task})
|}
  with
  | _ -> ()  (* memoized: terminates *)
  | exception Viewcl.Error _ -> ()

let suite =
  [ Alcotest.test_case "parse program shapes" `Quick test_parse_shapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "LoC metric" `Quick test_loc_metric;
    Alcotest.test_case "simple box + flatten" `Quick test_simple_box;
    Alcotest.test_case "text decorators" `Quick test_decorators;
    Alcotest.test_case "emoji decorator" `Quick test_enum_and_emoji_decorators;
    Alcotest.test_case "numeric base decorators" `Quick test_numeric_base_decorators;
    Alcotest.test_case "view inheritance" `Quick test_views_inheritance;
    Alcotest.test_case "containers + memoization" `Quick test_containers_and_memoization;
    Alcotest.test_case "switch + NULL links" `Quick test_switch_and_null;
    Alcotest.test_case "anchored construction (container_of)" `Quick test_anchor_container_of;
    Alcotest.test_case "Array.selectFrom distill" `Quick test_select_from;
    Alcotest.test_case "default formats" `Quick test_default_formats;
    Alcotest.test_case "Range + nested forEach" `Quick test_range_and_nested_foreach;
    Alcotest.test_case "multiple plots" `Quick test_multi_plot_roots;
    Alcotest.test_case "anonymous boxes + NULL yields" `Quick test_anon_box_and_yield_null;
    Alcotest.test_case "evaluation errors" `Quick test_eval_errors;
    Alcotest.test_case "cycles terminate via memoization" `Quick test_box_budget ]
