(* Unit + property tests for the simulated kernel memory. *)

let test_alloc_zeroed () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 64 in
  Alcotest.(check bool) "in kernel space" true (a >= Kmem.kernel_base);
  for i = 0 to 63 do
    Alcotest.(check int) "zeroed" 0 (Kmem.read_u8 m (a + i))
  done

let test_alignment () =
  let m = Kmem.create () in
  ignore (Kmem.alloc m ~tag:"pad" 3);
  let a = Kmem.alloc m ~tag:"obj" 8 in
  Alcotest.(check int) "16-aligned" 0 (a land 15);
  ignore (Kmem.alloc m ~tag:"pad" 1);
  let b = Kmem.alloc m ~align:256 ~tag:"node" 256 in
  Alcotest.(check int) "256-aligned" 0 (b land 255)

let test_rw_roundtrip () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 32 in
  Kmem.write_u8 m a 0xab;
  Kmem.write_u16 m (a + 2) 0xbeef;
  Kmem.write_u32 m (a + 4) 0xdeadbeef;
  Kmem.write_u64 m (a + 8) 0x1234_5678_9abc;
  Alcotest.(check int) "u8" 0xab (Kmem.read_u8 m a);
  Alcotest.(check int) "u16" 0xbeef (Kmem.read_u16 m (a + 2));
  Alcotest.(check int) "u32" 0xdeadbeef (Kmem.read_u32 m (a + 4));
  Alcotest.(check int) "u64" 0x1234_5678_9abc (Kmem.read_u64 m (a + 8))

let test_signed_reads () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 8 in
  Kmem.write_u8 m a 0xff;
  Kmem.write_u16 m (a + 2) 0x8000;
  Kmem.write_u32 m (a + 4) 0xffff_ffff;
  Alcotest.(check int) "i8" (-1) (Kmem.read_i8 m a);
  Alcotest.(check int) "i16" (-32768) (Kmem.read_i16 m (a + 2));
  Alcotest.(check int) "i32" (-1) (Kmem.read_i32 m (a + 4))

let test_cstring () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"str" 16 in
  Kmem.write_cstring m a ~field_size:16 "hello";
  Alcotest.(check string) "read back" "hello" (Kmem.read_cstring m a);
  Kmem.write_cstring m a ~field_size:4 "truncated";
  Alcotest.(check string) "truncated" "tru" (Kmem.read_cstring m a)

let test_free_poisons () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 16 in
  Kmem.write_u64 m a 0x1234;
  Kmem.free m a;
  Kmem.clear_faults m;
  Alcotest.(check int) "poisoned" 0x6b (Kmem.read_u8 m a);
  match Kmem.faults m with
  | [ Kmem.Use_after_free { obj; tag; _ } ] ->
      Alcotest.(check int) "fault object" a obj;
      Alcotest.(check string) "fault tag" "obj" tag
  | l -> Alcotest.failf "expected one UAF fault, got %d" (List.length l)

let test_double_free_rejected () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 16 in
  Kmem.free m a;
  Alcotest.check_raises "double free" (Invalid_argument "Kmem.free: double free") (fun () ->
      Kmem.free m a)

let test_free_non_base_rejected () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 16 in
  Alcotest.check_raises "interior free"
    (Invalid_argument "Kmem.free: not an allocation base address") (fun () -> Kmem.free m (a + 8))

let test_wild_free_rejected () =
  let m = Kmem.create () in
  Alcotest.check_raises "wild free" (Invalid_argument "Kmem.free: wild free") (fun () ->
      Kmem.free m (Kmem.kernel_base + 0x100))

let test_live_tracking () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"x" 100 in
  let b = Kmem.alloc m ~tag:"y" 50 in
  Alcotest.(check int) "live count" 2 (Kmem.live_count m);
  Alcotest.(check int) "live bytes" 150 (Kmem.live_bytes m);
  Alcotest.(check bool) "a live" true (Kmem.is_live m (a + 99));
  Kmem.free m a;
  Alcotest.(check int) "after free" 1 (Kmem.live_count m);
  Alcotest.(check bool) "a dead" false (Kmem.is_live m a);
  Alcotest.(check bool) "b live" true (Kmem.is_live m b)

let test_find_alloc () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 40 in
  (match Kmem.find_alloc m (a + 39) with
  | Some (base, size, tag) ->
      Alcotest.(check int) "base" a base;
      Alcotest.(check int) "size" 40 size;
      Alcotest.(check string) "tag" "obj" tag
  | None -> Alcotest.fail "find_alloc failed");
  Alcotest.(check bool) "outside" true (Kmem.find_alloc m (a + 4096) = None)

let test_counters () =
  let m = Kmem.create () in
  let a = Kmem.alloc m ~tag:"obj" 16 in
  Kmem.reset_counters m;
  ignore (Kmem.read_u64 m a);
  ignore (Kmem.read_u32 m a);
  Alcotest.(check int) "reads" 2 (Kmem.read_count m);
  Alcotest.(check int) "bytes" 12 (Kmem.bytes_read m);
  Kmem.reset_counters m;
  Alcotest.(check int) "reset" 0 (Kmem.read_count m)

let test_wild_access_flagged () =
  let m = Kmem.create () in
  Kmem.clear_faults m;
  ignore (Kmem.read_u64 m 0x1000);
  match Kmem.faults m with
  | [ Kmem.Wild_access a ] -> Alcotest.(check int) "addr" 0x1000 a
  | _ -> Alcotest.fail "expected wild access fault"

let test_chunk_boundary () =
  (* Memory is stored in 64 KiB chunks; multi-byte accesses that straddle
     a chunk boundary must still read back correctly. *)
  let m = Kmem.create () in
  (* allocate across the first chunk boundary *)
  let a = Kmem.alloc m ~tag:"straddle" (2 * 65536) in
  let boundary = ((a / 65536) + 1) * 65536 - 3 in
  Kmem.write_u64 m boundary 0x1122_3344_5566;
  Alcotest.(check int) "u64 across chunks" 0x1122_3344_5566 (Kmem.read_u64 m boundary);
  Kmem.write_bytes m boundary "spanning!";
  Alcotest.(check string) "bytes across chunks" "spanning!" (Kmem.read_bytes m boundary 9)

(* Property: allocations never overlap. *)
let prop_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 500))
    (fun sizes ->
      let m = Kmem.create () in
      let allocs = List.map (fun sz -> (Kmem.alloc m ~tag:"o" sz, sz)) sizes in
      let rec pairwise = function
        | [] -> true
        | (a, sa) :: rest ->
            List.for_all (fun (b, sb) -> a + sa <= b || b + sb <= a) rest && pairwise rest
      in
      pairwise allocs)

(* Property: bytes written are read back unchanged while live. *)
let prop_write_read =
  QCheck.Test.make ~name:"write/read roundtrip" ~count:50
    QCheck.(pair (string_of_size (Gen.int_range 1 200)) small_int)
    (fun (data, off) ->
      let off = off mod 64 in
      let m = Kmem.create () in
      let a = Kmem.alloc m ~tag:"buf" (String.length data + off + 1) in
      Kmem.write_bytes m (a + off) data;
      Kmem.read_bytes m (a + off) (String.length data) = data)

(* Property: u64 roundtrip for arbitrary non-negative ints. *)
let prop_u64_roundtrip =
  QCheck.Test.make ~name:"u64 write/read roundtrip" ~count:100
    QCheck.(int_bound max_int)
    (fun v ->
      let m = Kmem.create () in
      let a = Kmem.alloc m ~tag:"w" 8 in
      Kmem.write_u64 m a v;
      Kmem.read_u64 m a = v)

let suite =
  [ Alcotest.test_case "alloc zeroed" `Quick test_alloc_zeroed;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "signed reads" `Quick test_signed_reads;
    Alcotest.test_case "cstring" `Quick test_cstring;
    Alcotest.test_case "free poisons + UAF fault" `Quick test_free_poisons;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "interior free rejected" `Quick test_free_non_base_rejected;
    Alcotest.test_case "wild free rejected" `Quick test_wild_free_rejected;
    Alcotest.test_case "live tracking" `Quick test_live_tracking;
    Alcotest.test_case "find_alloc" `Quick test_find_alloc;
    Alcotest.test_case "access counters" `Quick test_counters;
    Alcotest.test_case "wild access flagged" `Quick test_wild_access_flagged;
    Alcotest.test_case "chunk boundary access" `Quick test_chunk_boundary;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_write_read;
    QCheck_alcotest.to_alcotest prop_u64_roundtrip ]
