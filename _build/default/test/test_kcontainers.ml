(* Unit + property tests for the raw-memory kernel containers:
   list_head, hlist, rbtree, xarray. *)

let ctx () = Kcontext.create ()

(* ------------------------------------------------------------------ *)
(* list_head *)

let new_list_node c = Kcontext.alloc c "list_head"

let test_list_basic () =
  let c = ctx () in
  let head = new_list_node c in
  Klist.init c head;
  Alcotest.(check bool) "empty" true (Klist.is_empty c head);
  let n1 = new_list_node c and n2 = new_list_node c and n3 = new_list_node c in
  Klist.add_tail c head n1;
  Klist.add_tail c head n2;
  Klist.add c head n3;
  (* add = push front *)
  Alcotest.(check (list int)) "order" [ n3; n1; n2 ] (Klist.nodes c head);
  Alcotest.(check int) "length" 3 (Klist.length c head);
  Klist.del c n1;
  Alcotest.(check (list int)) "after del" [ n3; n2 ] (Klist.nodes c head)

let test_list_containers () =
  let c = ctx () in
  (* real kernel usage: tasks hanging off init's children *)
  let t1 = Kcontext.alloc c "task_struct" and t2 = Kcontext.alloc c "task_struct" in
  let head = new_list_node c in
  Klist.init c head;
  Klist.add_tail c head (Kcontext.fld c t1 "task_struct" "sibling");
  Klist.add_tail c head (Kcontext.fld c t2 "task_struct" "sibling");
  Alcotest.(check (list int)) "container_of recovery" [ t1; t2 ]
    (Klist.containers c head "task_struct" "sibling")

let prop_list_model =
  (* random add_tail/add/del sequences match a list model *)
  QCheck.Test.make ~name:"list matches model" ~count:100
    QCheck.(list (pair (int_bound 2) (int_bound 9)))
    (fun ops ->
      let c = ctx () in
      let head = new_list_node c in
      Klist.init c head;
      let nodes = Array.init 10 (fun _ -> new_list_node c) in
      let in_list = Array.make 10 false in
      let model = ref [] in
      List.iter
        (fun (op, i) ->
          match op with
          | 0 when not in_list.(i) ->
              Klist.add_tail c head nodes.(i);
              in_list.(i) <- true;
              model := !model @ [ nodes.(i) ]
          | 1 when not in_list.(i) ->
              Klist.add c head nodes.(i);
              in_list.(i) <- true;
              model := nodes.(i) :: !model
          | 2 when in_list.(i) ->
              Klist.del c nodes.(i);
              in_list.(i) <- false;
              model := List.filter (fun n -> n <> nodes.(i)) !model
          | _ -> ())
        ops;
      Klist.nodes c head = !model)

(* ------------------------------------------------------------------ *)
(* hlist *)

let test_hlist () =
  let c = ctx () in
  let head = Kcontext.alloc c "hlist_head" in
  Khlist.init_head c head;
  let n1 = Kcontext.alloc c "hlist_node" and n2 = Kcontext.alloc c "hlist_node" in
  Khlist.add_head c head n1;
  Khlist.add_head c head n2;
  Alcotest.(check (list int)) "LIFO order" [ n2; n1 ] (Khlist.nodes c head);
  Khlist.del c n2;
  Alcotest.(check (list int)) "after del head" [ n1 ] (Khlist.nodes c head);
  Khlist.del c n1;
  Alcotest.(check (list int)) "empty" [] (Khlist.nodes c head)

let test_hlist_del_middle () =
  let c = ctx () in
  let head = Kcontext.alloc c "hlist_head" in
  Khlist.init_head c head;
  let ns = List.init 5 (fun _ -> Kcontext.alloc c "hlist_node") in
  List.iter (Khlist.add_head c head) ns;
  let middle = List.nth ns 2 in
  Khlist.del c middle;
  Alcotest.(check int) "length" 4 (Khlist.length c head);
  Alcotest.(check bool) "gone" false (List.mem middle (Khlist.nodes c head))

(* ------------------------------------------------------------------ *)
(* rbtree: nodes embedded in sched_entity-like containers with int keys *)

(* We use sched_entity with vruntime as the key. *)
let se_key c se = Kcontext.r64 c se "sched_entity" "vruntime"

let insert_se c root key =
  let se = Kcontext.alloc c "sched_entity" in
  Kcontext.w64 c se "sched_entity" "vruntime" key;
  let node se = Kcontext.fld c se "sched_entity" "run_node" in
  let key_of n = se_key c (n - Kcontext.off c "sched_entity" "run_node") in
  let less a b = key_of a < key_of b in
  ignore (Krbtree.insert c root ~less (node se));
  se

let tree_keys c root =
  List.map (se_key c) (Krbtree.containers c root "sched_entity" "run_node")

let test_rbtree_insert_sorted () =
  let c = ctx () in
  let root = Kcontext.alloc c "rb_root" in
  let keys = [ 50; 20; 80; 10; 30; 70; 90; 25; 15 ] in
  List.iter (fun k -> ignore (insert_se c root k)) keys;
  Alcotest.(check (list int)) "inorder sorted" (List.sort compare keys) (tree_keys c root);
  ignore (Krbtree.validate c root)

let test_rbtree_erase () =
  let c = ctx () in
  let root = Kcontext.alloc c "rb_root" in
  let ses = List.map (fun k -> (k, insert_se c root k)) [ 5; 3; 8; 1; 4; 7; 9; 2; 6 ] in
  List.iter
    (fun (k, se) ->
      if k mod 2 = 0 then Krbtree.erase c root (Kcontext.fld c se "sched_entity" "run_node"))
    ses;
  Alcotest.(check (list int)) "odds remain" [ 1; 3; 5; 7; 9 ] (tree_keys c root);
  ignore (Krbtree.validate c root)

let test_rbtree_cached_leftmost () =
  let c = ctx () in
  let croot = Kcontext.alloc c "rb_root_cached" in
  let root = Krbtree.cached_root c croot in
  let node_of se = Kcontext.fld c se "sched_entity" "run_node" in
  let key_of n = se_key c (n - Kcontext.off c "sched_entity" "run_node") in
  let less a b = key_of a < key_of b in
  let mk k =
    let se = Kcontext.alloc c "sched_entity" in
    Kcontext.w64 c se "sched_entity" "vruntime" k;
    Krbtree.insert_cached c croot ~less (node_of se);
    se
  in
  let s30 = mk 30 in
  let s10 = mk 10 in
  ignore (mk 20);
  Alcotest.(check int) "leftmost = min" (node_of s10) (Krbtree.leftmost c croot);
  Krbtree.erase_cached c croot (node_of s10);
  Alcotest.(check int) "leftmost updated" 20 (key_of (Krbtree.leftmost c croot));
  ignore s30;
  ignore root

let prop_rbtree_model =
  QCheck.Test.make ~name:"rbtree random insert/erase keeps invariants" ~count:60
    QCheck.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let c = ctx () in
      let root = Kcontext.alloc c "rb_root" in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            if not (Hashtbl.mem live k) then Hashtbl.replace live k (insert_se c root k)
          end
          else
            match Hashtbl.find_opt live k with
            | Some se ->
                Krbtree.erase c root (Kcontext.fld c se "sched_entity" "run_node");
                Hashtbl.remove live k
            | None -> ())
        ops;
      let expect = Hashtbl.fold (fun k _ acc -> k :: acc) live [] |> List.sort compare in
      ignore (Krbtree.validate c root);
      tree_keys c root = expect)

(* ------------------------------------------------------------------ *)
(* xarray *)

let test_xarray_direct_entry () =
  let c = ctx () in
  let xa = Kcontext.alloc c "xarray" in
  Kxarray.init c xa;
  Alcotest.(check int) "empty load" 0 (Kxarray.load c xa 0);
  Kxarray.store c xa 0 0x4000_0000_1000;
  Alcotest.(check int) "direct entry" 0x4000_0000_1000 (Kxarray.load c xa 0);
  (* storing at a higher index pushes the direct entry into a node *)
  Kxarray.store c xa 7 0x4000_0000_2000;
  Alcotest.(check int) "old entry kept" 0x4000_0000_1000 (Kxarray.load c xa 0);
  Alcotest.(check int) "new entry" 0x4000_0000_2000 (Kxarray.load c xa 7)

let test_xarray_multilevel () =
  let c = ctx () in
  let xa = Kcontext.alloc c "xarray" in
  Kxarray.init c xa;
  (* index 5000 needs two levels (64 * 64 = 4096 < 5000) *)
  Kxarray.store c xa 5000 0x4000_0000_3000;
  Kxarray.store c xa 3 0x4000_0000_4000;
  Alcotest.(check int) "high index" 0x4000_0000_3000 (Kxarray.load c xa 5000);
  Alcotest.(check int) "low index" 0x4000_0000_4000 (Kxarray.load c xa 3);
  Alcotest.(check int) "miss" 0 (Kxarray.load c xa 4999);
  Alcotest.(check (list (pair int int))) "entries sorted"
    [ (3, 0x4000_0000_4000); (5000, 0x4000_0000_3000) ]
    (Kxarray.entries c xa)

let test_xarray_tagging () =
  Alcotest.(check bool) "node tagged" true (Kxarray.is_node (Kxarray.mk_node 0x4000_0000_0000));
  Alcotest.(check bool) "plain ptr untagged" false (Kxarray.is_node 0x4000_0000_0000);
  Alcotest.(check int) "roundtrip" 0x4000_0000_0000
    (Kxarray.to_node (Kxarray.mk_node 0x4000_0000_0000))

let prop_xarray_model =
  QCheck.Test.make ~name:"xarray matches sparse-map model" ~count:60
    QCheck.(list (pair (int_bound 10_000) (int_bound 5)))
    (fun ops ->
      let c = ctx () in
      let xa = Kcontext.alloc c "xarray" in
      Kxarray.init c xa;
      let model = Hashtbl.create 16 in
      List.iter
        (fun (idx, v) ->
          (* values must look like aligned pointers *)
          let v = if v = 0 then 0 else Kmem.kernel_base + (v * 64) in
          Kxarray.store c xa idx v;
          if v = 0 then Hashtbl.remove model idx else Hashtbl.replace model idx v)
        ops;
      Hashtbl.fold (fun idx v acc -> acc && Kxarray.load c xa idx = v) model true
      && Kxarray.count c xa = Hashtbl.length model)

let suite =
  [ Alcotest.test_case "list basic ops" `Quick test_list_basic;
    Alcotest.test_case "list container_of" `Quick test_list_containers;
    QCheck_alcotest.to_alcotest prop_list_model;
    Alcotest.test_case "hlist" `Quick test_hlist;
    Alcotest.test_case "hlist del middle" `Quick test_hlist_del_middle;
    Alcotest.test_case "rbtree insert sorted" `Quick test_rbtree_insert_sorted;
    Alcotest.test_case "rbtree erase" `Quick test_rbtree_erase;
    Alcotest.test_case "rbtree cached leftmost" `Quick test_rbtree_cached_leftmost;
    QCheck_alcotest.to_alcotest prop_rbtree_model;
    Alcotest.test_case "xarray direct entry" `Quick test_xarray_direct_entry;
    Alcotest.test_case "xarray multilevel" `Quick test_xarray_multilevel;
    Alcotest.test_case "xarray pointer tagging" `Quick test_xarray_tagging;
    QCheck_alcotest.to_alcotest prop_xarray_model ]
