(* Integration tests: the full framework against the booted kernel,
   covering the paper's evaluation claims C1-C4. *)

let session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (k, w, Visualinux.attach k)

(* Every library script is syntactically valid ViewCL (no kernel needed). *)
let test_scripts_parse () =
  List.iter
    (fun (sc : Scripts.script) ->
      match Viewcl.parse sc.Scripts.source with
      | prog ->
          Alcotest.(check bool)
            (Printf.sprintf "fig %s has a plot statement" sc.Scripts.fig)
            true
            (List.exists (function Viewcl.Ast.Plot _ -> true | _ -> false) prog)
      | exception Viewcl.Error m ->
          Alcotest.failf "fig %s does not parse: %s" sc.Scripts.fig m)
    Scripts.table2;
  List.iter
    (fun src ->
      match Viewcl.parse src with
      | _ -> ()
      | exception Viewcl.Error m -> Alcotest.failf "CVE script does not parse: %s" m)
    [ Scripts.cve_stackrot; Scripts.cve_dirtypipe ];
  (* LoC accounting matches the paper's order of magnitude *)
  List.iter
    (fun sc ->
      let loc = Scripts.loc sc in
      Alcotest.(check bool)
        (Printf.sprintf "fig %s LoC in range (%d)" sc.Scripts.fig loc)
        true
        (loc >= 8 && loc <= 160))
    Scripts.table2

(* C1: every Table 2 figure extracts a non-trivial plot. *)
let test_all_figures_plot () =
  let _, _, s = session () in
  List.iter
    (fun (sc : Scripts.script) ->
      let _, res, stats = Visualinux.plot_figure s sc in
      Alcotest.(check bool)
        (Printf.sprintf "fig %s yields boxes" sc.Scripts.fig)
        true
        (stats.Visualinux.boxes > 0);
      Alcotest.(check bool)
        (Printf.sprintf "fig %s reads the target" sc.Scripts.fig)
        true
        (stats.Visualinux.reads > 0);
      Alcotest.(check bool)
        (Printf.sprintf "fig %s has a root" sc.Scripts.fig)
        true
        (Vgraph.roots res.Viewcl.graph <> []))
    Scripts.table2

let expected_types =
  [ ("3-4", "task_struct"); ("3-6", "upid"); ("4-5", "irq_desc"); ("6-1", "timer_base");
    ("7-1", "cfs_rq"); ("8-2", "zone"); ("8-4", "kmem_cache"); ("9-2", "maple_node");
    ("11-1", "sighand_struct"); ("12-3", "fdtable"); ("13-3", "kobject");
    ("14-3", "super_block"); ("15-1", "xa_node"); ("16-2", "address_space");
    ("17-1", "anon_vma"); ("17-6", "swap_info_struct"); ("19-1/2", "sem_array");
    ("workqueue", "worker_pool"); ("proc2vfs", "dentry"); ("socketconn", "sock") ]

let test_figures_contain_expected_types () =
  let _, _, s = session () in
  List.iter
    (fun (fig, ty) ->
      let sc = Option.get (Scripts.find fig) in
      let _, res, _ = Visualinux.plot_figure s sc in
      Alcotest.(check bool)
        (Printf.sprintf "fig %s contains %s" fig ty)
        true
        (Vgraph.of_type res.Viewcl.graph ty <> []))
    expected_types

(* C2: all ten objectives, through vchat, have the intended effect. *)
let test_objectives_end_to_end () =
  let _, _, s = session () in
  List.iter
    (fun (o : Objectives.objective) ->
      let sc = Option.get (Scripts.find o.Objectives.fig) in
      let pane, _, _ = Visualinux.plot_figure s sc in
      let _, _updated = Visualinux.vchat s ~pane:pane.Panel.pid o.Objectives.text in
      let g = pane.Panel.graph in
      List.iter
        (fun (e : Objectives.expect) ->
          let affected =
            List.filter
              (fun b ->
                let a = b.Vgraph.attrs in
                (b.Vgraph.btype = e.Objectives.exp_type || b.Vgraph.bdef = e.Objectives.exp_type)
                && (match e.Objectives.exp_attr with
                   | "view" -> a.Vgraph.view <> "default"
                   | "collapsed" -> a.Vgraph.collapsed
                   | "trimmed" -> a.Vgraph.trimmed
                   | "direction" -> a.Vgraph.direction = Vgraph.Vertical
                   | _ -> false))
              (Vgraph.boxes g)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s on >=%d %s boxes" o.Objectives.fig e.Objectives.exp_attr
               e.Objectives.exp_min e.Objectives.exp_type)
            true
            (List.length affected >= e.Objectives.exp_min))
        o.Objectives.expects)
    Objectives.all

(* C3a: StackRot — deferred free visible on the RCU list, then UAF. *)
let test_stackrot_case_study () =
  let k, _, s = session () in
  let ctx = k.Kstate.ctx in
  let target = Option.get (Kstate.find_task k s.Visualinux.target_pid) in
  let mm = Ksyscall.mm_of k target in
  let mt = Kcontext.fld ctx mm "mm_struct" "mm_mt" in
  Kmm.mmap_read_lock ctx mm ~cpu:1;
  let stale = Kmaple.read_nodes ctx mt in
  let tree = Kmm.tree_of k.Kstate.mm mm in
  let vma = Kmm.vma_alloc k.Kstate.mm mm ~start:0x7fff_0000_0000 ~end_:0x7fff_0001_0000
      ~flags:0x103 ~file:0 ~pgoff:0 in
  Kmaple.store_range ~free:(Kstate.ma_free_rcu k) tree ~lo:0x7fff_0000_0000
    ~hi:0x7fff_0000_ffff vma;
  (* plot shows the RCU waiting list holding the dying nodes, still live *)
  let _, res, _ = Visualinux.vplot s ~title:"stackrot" Scripts.cve_stackrot in
  let heads = Vgraph.of_type res.Viewcl.graph "callback_head" in
  Alcotest.(check int) "RCU list plotted" (List.length stale) (List.length heads);
  List.iter
    (fun b ->
      match Vgraph.field b "node_dead" with
      | Some (Vgraph.Fbool dead) -> Alcotest.(check bool) "not dead yet" false dead
      | _ -> Alcotest.fail "node_dead field missing")
    heads;
  (* grace period -> free -> reader faults *)
  Krcu.run_grace_period k.Kstate.rcu;
  Kmem.clear_faults ctx.Kcontext.mem;
  ignore (Kcontext.r64 ctx (List.hd stale) "maple_node" "parent");
  (match Kmem.faults ctx.Kcontext.mem with
  | Kmem.Use_after_free { tag = "maple_node"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected a maple_node UAF");
  Kmm.mmap_read_unlock ctx mm

(* C3b: Dirty Pipe — ViewQL narrows the plot to the one shared page. *)
let test_dirtypipe_case_study () =
  let k, _, s = session () in
  let ctx = k.Kstate.ctx in
  let target = Option.get (Kstate.find_task k s.Visualinux.target_pid) in
  let _, file = Ksyscall.openat k target ~name:"test.txt" ~size:4096 in
  let pipe, _, _ = Ksyscall.pipe k target in
  for i = 1 to 16 do
    Ksyscall.write_pipe k pipe (Printf.sprintf "j%d" i);
    ignore (Kpipe.read ctx pipe)
  done;
  let buf = Ksyscall.splice k ~file ~pipe ~index:0 ~len:1 ~buggy:true in
  Alcotest.(check bool) "CAN_MERGE leaked" true
    (Kcontext.r32 ctx buf "pipe_buffer" "flags" land Ktypes.pipe_buf_flag_can_merge <> 0);
  let pane, res, _ = Visualinux.vplot s ~title:"dirtypipe" Scripts.cve_dirtypipe in
  let shared_page = Kcontext.r64 ctx buf "pipe_buffer" "page" in
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       {|file_pgc = SELECT file->pagecache FROM *
file_pgs = SELECT page FROM REACHABLE(file_pgc)
pipe_buf = SELECT pipe_inode_info->bufs FROM *
pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
UPDATE pipe_pgs \ file_pgs WITH trimmed: true|});
  (* every pipe-only page is now trimmed; the shared page survives *)
  let g = res.Viewcl.graph in
  let shared_boxes =
    List.filter (fun b -> b.Vgraph.addr = shared_page) (Vgraph.of_type g "page")
  in
  Alcotest.(check int) "shared page plotted once" 1 (List.length shared_boxes);
  Alcotest.(check bool) "shared page survives the trim" false
    (List.hd shared_boxes).Vgraph.attrs.Vgraph.trimmed;
  (* and its pipe_buffer shows the poisonous flag *)
  let bufs = Vgraph.of_type g "pipe_buffer" in
  let flagged =
    List.filter
      (fun b ->
        match Vgraph.field b "flags" with
        | Some (Vgraph.Fint f) -> f land Ktypes.pipe_buf_flag_can_merge <> 0
        | _ -> false)
      bufs
  in
  Alcotest.(check bool) "CAN_MERGE visible in plot" true (flagged <> [])

(* C4: the latency model orders the two scenarios as the paper measures. *)
let test_perf_model_shape () =
  let _, _, s = session () in
  let sc = Option.get (Scripts.find "7-1") in
  let _, _, stats = Visualinux.plot_figure s sc in
  let st = { Target.reads = stats.Visualinux.reads; bytes = stats.Visualinux.read_bytes } in
  let qemu = Target.simulated_ms Target.qemu_local st in
  let kgdb = Target.simulated_ms Target.kgdb_rpi400 st in
  Alcotest.(check bool) "QEMU in human range" true (qemu > 0.1 && qemu < 1000.);
  Alcotest.(check bool) "KGDB ~50x slower" true (kgdb /. qemu > 20. && kgdb /. qemu < 120.)

(* The paper's Fig 2 workflow: two panes + cross-pane focus. *)
let test_focus_workflow () =
  let k, _, s = session () in
  let pane1, _, _ = Visualinux.plot_figure s (Option.get (Scripts.find "3-4")) in
  (match
     Visualinux.vctrl s
       (Visualinux.Split
          { pane = pane1.Panel.pid; dir = `Horizontal;
            program = (Option.get (Scripts.find "7-1")).Scripts.source })
   with
  | Visualinux.Opened _ -> ()
  | _ -> Alcotest.fail "split failed");
  (* pick a task present in both the parent tree and the sched tree *)
  let target = Option.get (Kstate.find_task k s.Visualinux.target_pid) in
  (match Visualinux.vctrl s (Visualinux.Focus { addr = target }) with
  | Visualinux.Found hits ->
      let panes = List.sort_uniq compare (List.map fst hits) in
      Alcotest.(check int) "found in both panes" 2 (List.length panes)
  | _ -> Alcotest.fail "focus failed")

(* Rendering real figures stays consistent under ViewQL updates. *)
let test_render_real_figure () =
  let _, _, s = session () in
  let pane, res, _ = Visualinux.plot_figure s (Option.get (Scripts.find "9-2")) in
  (* expose the maple tree view first, then trim inside it *)
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt");
  let before = List.length (Vgraph.visible res.Viewcl.graph) in
  ignore
    (Panel.refine s.Visualinux.panel ~at:pane.Panel.pid
       "w = SELECT vm_area_struct FROM * WHERE is_writable == true\nUPDATE w WITH trimmed: true");
  let after = List.length (Vgraph.visible res.Viewcl.graph) in
  Alcotest.(check bool) "trim reduces visible set" true (after < before);
  let out = Render.ascii res.Viewcl.graph in
  Alcotest.(check bool) "renders" true (String.length out > 200)

(* vplot's naive ViewCL synthesis (paper §4). *)
let test_vplot_auto () =
  let _, _, s = session () in
  let _, res, _ = Visualinux.vplot_auto s ~typ:"rq" ~expr:"cpu_rq(0)" in
  (match Vgraph.boxes res.Viewcl.graph with
  | [ b ] ->
      Alcotest.(check string) "typed" "rq" b.Vgraph.btype;
      Alcotest.(check bool) "scalar fields shown" true
        (Vgraph.field b "nr_running" <> None && Vgraph.field b "cpu" <> None)
  | l -> Alcotest.failf "expected 1 box, got %d" (List.length l));
  (* unknown type rejected *)
  match Visualinux.vplot_auto s ~typ:"nope" ~expr:"0" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* Session persistence: programs + ViewQL history replay on a fresh boot. *)
let test_session_replay () =
  let _, _, s1 = session () in
  let sc = Option.get (Scripts.find "7-1") in
  let pane, _, _ = Visualinux.plot_figure s1 sc in
  ignore
    (Panel.refine s1.Visualinux.panel ~at:pane.Panel.pid
       "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: true");
  let saved = Visualinux.session_programs s1 in
  Alcotest.(check int) "one pane saved" 1 (List.length saved);
  (* replay on a brand-new kernel *)
  let _, _, s2 = session () in
  (match Visualinux.replay s2 saved with
  | [ (_, res) ] ->
      let tasks = Vgraph.of_type res.Viewcl.graph "task_struct" in
      Alcotest.(check bool) "plot re-extracted" true (tasks <> []);
      Alcotest.(check bool) "history re-applied" true
        (List.for_all (fun b -> b.Vgraph.attrs.Vgraph.collapsed) tasks)
  | _ -> Alcotest.fail "replay failed");
  Alcotest.(check bool) "json serializes" true (String.length (Visualinux.save_session s1) > 50)

(* Extraction is deterministic: same seed, same kernel, same rendered
   figure — byte for byte (addresses included). *)
let test_extraction_deterministic () =
  let render_all () =
    let _, _, s = session () in
    String.concat "\n---\n"
      (List.map
         (fun sc ->
           let _, res, _ = Visualinux.plot_figure s sc in
           Render.ascii res.Viewcl.graph)
         Scripts.table2)
  in
  let a = render_all () and b = render_all () in
  Alcotest.(check bool) "identical output across boots" true (a = b)

(* Re-plotting the same program in one session reuses nothing (fresh
   graph) but produces an isomorphic plot. *)
let test_replot_isomorphic () =
  let _, _, s = session () in
  let sc = Option.get (Scripts.find "7-1") in
  let _, r1, _ = Visualinux.plot_figure s sc in
  let _, r2, _ = Visualinux.plot_figure s sc in
  Alcotest.(check bool) "distinct graphs" true (r1.Viewcl.graph != r2.Viewcl.graph);
  Alcotest.(check string) "same rendering" (Render.ascii r1.Viewcl.graph)
    (Render.ascii r2.Viewcl.graph)

let test_plot_stats_sane () =
  let _, _, s = session () in
  let sc = Option.get (Scripts.find "8-4") in
  let _, res, stats = Visualinux.plot_figure s sc in
  Alcotest.(check int) "box count matches graph" (Vgraph.box_count res.Viewcl.graph)
    stats.Visualinux.boxes;
  Alcotest.(check int) "bytes match sizeof sum" (Vgraph.total_bytes res.Viewcl.graph)
    stats.Visualinux.bytes;
  Alcotest.(check bool) "wall time measured" true (stats.Visualinux.wall_ms >= 0.)

let suite =
  [ Alcotest.test_case "script library parses" `Quick test_scripts_parse;
    Alcotest.test_case "C1: all Table-2 figures plot" `Slow test_all_figures_plot;
    Alcotest.test_case "C1: figures contain expected types" `Slow test_figures_contain_expected_types;
    Alcotest.test_case "C2: objectives via vchat" `Slow test_objectives_end_to_end;
    Alcotest.test_case "C3: StackRot case study" `Quick test_stackrot_case_study;
    Alcotest.test_case "C3: Dirty Pipe case study" `Quick test_dirtypipe_case_study;
    Alcotest.test_case "C4: latency model shape" `Quick test_perf_model_shape;
    Alcotest.test_case "Fig 2: cross-pane focus workflow" `Quick test_focus_workflow;
    Alcotest.test_case "render real figure + refine" `Quick test_render_real_figure;
    Alcotest.test_case "vplot auto-synthesis" `Quick test_vplot_auto;
    Alcotest.test_case "session save + replay" `Quick test_session_replay;
    Alcotest.test_case "extraction determinism" `Slow test_extraction_deterministic;
    Alcotest.test_case "replot isomorphism" `Quick test_replot_isomorphic;
    Alcotest.test_case "plot statistics" `Quick test_plot_stats_sane ]
