test/test_vchat.ml: Alcotest Kstate List Objectives Option Panel Printf Scripts String Vchat Vgraph Viewql Visualinux Workload
