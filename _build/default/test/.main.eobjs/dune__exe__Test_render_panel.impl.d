test/test_render_panel.ml: Alcotest Json List Panel Printf Render String Vgraph
