test/test_kmaple.ml: Alcotest Gen Kcontext Kmaple Kmem Krcu Kstate List QCheck QCheck_alcotest
