test/test_kmem.ml: Alcotest Gen Kmem List QCheck QCheck_alcotest String
