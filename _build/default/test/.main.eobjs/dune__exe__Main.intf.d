test/main.mli:
