test/test_viewql.ml: Alcotest List Printf QCheck QCheck_alcotest String Vgraph Viewql
