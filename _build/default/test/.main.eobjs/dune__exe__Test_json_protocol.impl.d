test/test_json_protocol.ml: Alcotest Json Kstate List Option Panel Printf Protocol QCheck QCheck_alcotest Render_html Scripts String Vgraph Viewcl Visualinux Workload
