test/test_cexpr.ml: Alcotest Cexpr Ctype Kmem List Printf QCheck QCheck_alcotest Target
