test/test_visualinux.ml: Alcotest Kcontext Kmaple Kmem Kmm Kpipe Krcu Kstate Ksyscall Ktypes List Objectives Option Panel Printf Render Scripts String Target Vgraph Viewcl Visualinux Workload
