test/test_kcontainers.ml: Alcotest Array Hashtbl Kcontext Khlist Klist Kmem Krbtree Kxarray List QCheck QCheck_alcotest
