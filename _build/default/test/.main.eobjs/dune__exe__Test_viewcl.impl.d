test/test_viewcl.ml: Alcotest Kcontext Kfuncs Kstate Ksyscall Kvfs List Option Printf String Vgraph Viewcl Visualinux Workload
