test/test_ctype.ml: Alcotest Ctype Ktypes List Printf QCheck QCheck_alcotest String
