test/test_khelpers.ml: Alcotest Cexpr Ctype Kbuddy Kcontext Kpid Kstate Option String Target Visualinux Workload
