test/test_target.ml: Alcotest Ctype Kmem Target
