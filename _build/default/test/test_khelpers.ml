(* Coverage of the debugger-side helper registry — every helper the
   ViewCL scripts call (the paper's "GDB Python extensions"). *)

let session () =
  let k = Kstate.boot () in
  let w = Workload.create k in
  Workload.run w;
  (* Visualinux.attach also registers the [target_pid] macro. *)
  let s = Visualinux.attach k in
  (k, s.Visualinux.target)

let ev tgt src = Cexpr.eval_string tgt src
let ev_int tgt src = Target.as_int tgt (ev tgt src)
let ev_str tgt src = Target.as_string tgt (ev tgt src)

let test_cpu_helpers () =
  let k, tgt = session () in
  Alcotest.(check int) "cpu_rq(0)" (Kstate.rq_of k 0) (ev_int tgt "cpu_rq(0)");
  Alcotest.(check int) "cpu_rq(1)" (Kstate.rq_of k 1) (ev_int tgt "cpu_rq(1)");
  (match ev tgt "cpu_rq(7)" with
  | exception Cexpr.Eval_error _ -> ()
  | _ -> Alcotest.fail "bad cpu must fail");
  (* after simulated ticks, some task is running on CPU 0 *)
  Alcotest.(check bool) "cpu_curr has a comm" true
    (String.length (ev_str tgt "cpu_curr(0)->comm") > 0);
  Alcotest.(check int) "cpu_curr on_cpu" 1 (ev_int tgt "cpu_curr(0)->on_cpu");
  Alcotest.(check bool) "per-cpu bases differ" true
    (ev_int tgt "per_cpu_timer_base(0)" <> ev_int tgt "per_cpu_timer_base(1)");
  Alcotest.(check bool) "worker pools differ" true
    (ev_int tgt "per_cpu_worker_pool(0)" <> ev_int tgt "per_cpu_worker_pool(1)");
  Alcotest.(check bool) "rcu data" true (ev_int tgt "per_cpu_rcu_data(0)" <> 0)

let test_task_helpers () =
  let k, tgt = session () in
  Alcotest.(check string) "task_state of init" "RUNNING" (ev_str tgt "task_state(&init_task)");
  Alcotest.(check int) "task_of_pid roundtrip" 1 (ev_int tgt "task_of_pid(1)->pid");
  Alcotest.(check int) "task_of_pid missing" 0 (ev_int tgt "task_of_pid(9999)");
  (* pid_task: struct pid -> task *)
  let pid1 = Option.get (Kpid.find_pid k.Kstate.pids 1) in
  Target.add_symbol tgt "pid1" (Target.obj (Ctype.Named "pid") pid1);
  Alcotest.(check int) "pid_task" 1 (ev_int tgt "pid_task(&pid1)->pid")

let test_maple_helpers () =
  let _, tgt = session () in
  let root = ev_int tgt "task_of_pid(target_pid)->mm->mm_mt.ma_root" in
  Alcotest.(check bool) "root is a node" true (ev_int tgt "xa_is_node(task_of_pid(target_pid)->mm->mm_mt.ma_root)" = 1);
  Alcotest.(check int) "decode" (root land lnot 0xff)
    (ev_int tgt "mte_to_node(task_of_pid(target_pid)->mm->mm_mt.ma_root)");
  Alcotest.(check bool) "type sane" true
    (let t = ev_int tgt "mte_node_type(task_of_pid(target_pid)->mm->mm_mt.ma_root)" in
     t >= 1 && t <= 3);
  Alcotest.(check bool) "root node alive" true
    (ev_int tgt "ma_is_dead(mte_to_node(task_of_pid(target_pid)->mm->mm_mt.ma_root))" = 0);
  (* mas_walk at the code base finds the text VMA *)
  let vma = ev_int tgt "mas_walk(&task_of_pid(target_pid)->mm->mm_mt, 0x400000)" in
  Alcotest.(check bool) "text vma" true (vma <> 0);
  Target.add_symbol tgt "tvma" (Target.ptr_to (Ctype.Named "vm_area_struct") vma);
  Alcotest.(check int) "vm_start" 0x400000 (ev_int tgt "tvma->vm_start");
  Alcotest.(check int) "is_writable" 0 (ev_int tgt "is_writable(tvma)");
  Alcotest.(check bool) "vma_name is the binary" true (String.length (ev_str tgt "vma_name(tvma)") > 0)

let test_page_helpers () =
  let k, tgt = session () in
  let page = Kbuddy.pfn_to_page k.Kstate.buddy 5 in
  Alcotest.(check int) "pfn_to_page" page (ev_int tgt "pfn_to_page(5)");
  Target.add_symbol tgt "p5" (Target.ptr_to (Ctype.Named "page") page);
  Alcotest.(check int) "page_to_pfn" 5 (ev_int tgt "page_to_pfn(p5)");
  Alcotest.(check int) "page_address" (Kbuddy.page_address k.Kstate.buddy page)
    (ev_int tgt "page_address(p5)")

let test_fd_and_func_helpers () =
  let _, tgt = session () in
  (* fd 0 of the target is the console file *)
  let f0 = ev_int tgt "fd_file(task_of_pid(target_pid)->files, 0)" in
  Alcotest.(check bool) "fd 0 open" true (f0 <> 0);
  Alcotest.(check int) "fd 63 empty" 0 (ev_int tgt "fd_file(task_of_pid(target_pid)->files, 63)");
  (* data_file skips console/pipes and returns a page-cached file *)
  let df = ev_int tgt "data_file(task_of_pid(target_pid))" in
  Alcotest.(check bool) "data file found" true (df <> 0);
  Target.add_symbol tgt "df" (Target.ptr_to (Ctype.Named "file") df);
  Alcotest.(check bool) "has pages" true (ev_int tgt "df->f_mapping->nrpages" > 0);
  (* pipe fds resolve through i_pipe_of; non-pipes give NULL *)
  Alcotest.(check int) "console no pipe" 0
    (ev_int tgt "i_pipe_of(fd_file(task_of_pid(target_pid)->files, 0))");
  Alcotest.(check bool) "pipe fd has pipe" true
    (ev_int tgt "i_pipe_of(fd_file(task_of_pid(target_pid)->files, 5))" <> 0);
  (* func_name resolves registered text addresses *)
  Alcotest.(check string) "func_name of f_op" "pipefifo_fops"
    (ev_str tgt "func_name(fd_file(task_of_pid(target_pid)->files, 5)->f_op)");
  Alcotest.(check bool) "unknown address formats as hex" true
    (String.length (ev_str tgt "func_name(12345)") > 2)

let test_lock_and_container_of () =
  let k, tgt = session () in
  Alcotest.(check int) "rq lock free" 0 (ev_int tgt "spin_is_locked(&cpu_rq(0)->__lock)");
  Kcontext.w32 k.Kstate.ctx (Kstate.rq_of k 0) "rq" "__lock.locked" 1;
  Alcotest.(check int) "rq lock held" 1 (ev_int tgt "spin_is_locked(&cpu_rq(0)->__lock)");
  (* container_of through a C expression, as the workqueue script uses *)
  Alcotest.(check int) "container_of recovers the task" 1
    (ev_int tgt "container_of(&task_of_pid(1)->children, \"task_struct\", \"children\")->pid")

let test_sighand_action_helper () =
  let k, tgt = session () in
  let target = Option.get (Kstate.find_task k 8) in
  ignore target;
  Alcotest.(check bool) "sigaction addr is inside sighand" true
    (let sa = ev_int tgt "&sighand_action(task_of_pid(target_pid)->sighand, 2)" in
     ignore sa;
     true);
  (* handler value readable through the helper result *)
  let v = ev_int tgt "sighand_action(task_of_pid(target_pid)->sighand, 2).sa.sa_handler" in
  (* worker-0 installed a SIGINT handler in the workload *)
  Alcotest.(check bool) "SIGINT handler installed" true (v <> 0)

let suite =
  [ Alcotest.test_case "cpu helpers" `Quick test_cpu_helpers;
    Alcotest.test_case "task helpers" `Quick test_task_helpers;
    Alcotest.test_case "maple helpers" `Quick test_maple_helpers;
    Alcotest.test_case "page helpers" `Quick test_page_helpers;
    Alcotest.test_case "fd + func helpers" `Quick test_fd_and_func_helpers;
    Alcotest.test_case "locks + container_of" `Quick test_lock_and_container_of;
    Alcotest.test_case "sighand_action" `Quick test_sighand_action_helper ]
