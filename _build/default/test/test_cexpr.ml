(* Unit + property tests for the C expression language. *)

let mk_target () =
  let reg = Ctype.create_registry () in
  Ctype.define_struct reg "point"
    [ Ctype.F ("x", Ctype.int); Ctype.F ("y", Ctype.int);
      Ctype.F ("next", Ctype.Ptr (Ctype.Named "point"));
      Ctype.F ("name", Ctype.Array (Ctype.char, 8)) ];
  Ctype.define_enum reg "color" [ ("RED", 0); ("GREEN", 1); ("BLUE", 2) ];
  let mem = Kmem.create () in
  let tgt = Target.create mem reg in
  let p1 = Kmem.alloc mem ~tag:"point" (Ctype.sizeof reg (Ctype.Named "point")) in
  let p2 = Kmem.alloc mem ~tag:"point" (Ctype.sizeof reg (Ctype.Named "point")) in
  Kmem.write_u32 mem p1 10;
  Kmem.write_u32 mem (p1 + 4) 20;
  Kmem.write_u64 mem (p1 + 8) p2;
  Kmem.write_cstring mem (p1 + 16) "origin";
  Kmem.write_u32 mem p2 30;
  Kmem.write_u32 mem (p2 + 4) 40;
  Target.add_symbol tgt "origin" (Target.obj (Ctype.Named "point") p1);
  Target.add_macro tgt "MAGIC" 42;
  Target.add_helper tgt "double" (fun tgt args ->
      match args with
      | [ v ] -> Target.int_value (2 * Target.as_int tgt v)
      | _ -> invalid_arg "double");
  (tgt, p1, p2)

let ev tgt s = Target.as_int tgt (Cexpr.eval_string tgt s)

let test_arithmetic () =
  let tgt, _, _ = mk_target () in
  List.iter
    (fun (src, expected) -> Alcotest.(check int) src expected (ev tgt src))
    [ ("1 + 2 * 3", 7); ("(1 + 2) * 3", 9); ("10 - 4 - 3", 3); ("7 / 2", 3); ("7 % 3", 1);
      ("-5 + 3", -2); ("1 << 4", 16); ("256 >> 4", 16); ("0xff & 0x0f", 0x0f);
      ("0xf0 | 0x0f", 0xff); ("0xff ^ 0x0f", 0xf0); ("~0 & 0xff", 0xff);
      ("1 < 2", 1); ("2 <= 2", 1); ("3 > 4", 0); ("3 != 4", 1); ("3 == 3", 1);
      ("1 && 0", 0); ("1 || 0", 1); ("!0", 1); ("!5", 0);
      ("1 ? 10 : 20", 10); ("0 ? 10 : 20", 20); ("1 ? 2 ? 3 : 4 : 5", 3) ]

let test_members () =
  let tgt, p1, p2 = mk_target () in
  Alcotest.(check int) "x" 10 (ev tgt "origin.x");
  Alcotest.(check int) "next->y" 40 (ev tgt "origin.next->y");
  Alcotest.(check int) "&origin" p1 (ev tgt "&origin");
  Alcotest.(check int) "&origin.y" (p1 + 4) (ev tgt "&origin.y");
  Alcotest.(check int) "deref" 30 (ev tgt "(*origin.next).x");
  ignore p2

let test_strings () =
  let tgt, _, _ = mk_target () in
  let v = Cexpr.eval_string tgt "origin.name" in
  Alcotest.(check string) "char array" "origin" (Target.as_string tgt v);
  let v = Cexpr.eval_string tgt "\"literal\"" in
  Alcotest.(check string) "literal" "literal" (Target.as_string tgt v);
  Alcotest.(check int) "string eq" 1 (ev tgt "\"a\" == \"a\"");
  Alcotest.(check int) "string ne" 1 (ev tgt "\"a\" != \"b\"")

let test_sizeof_casts () =
  let tgt, _, _ = mk_target () in
  Alcotest.(check int) "sizeof type" 24 (ev tgt "sizeof(point)");
  Alcotest.(check int) "sizeof expr" 4 (ev tgt "sizeof(origin.x)");
  Alcotest.(check int) "sizeof ptr" 8 (ev tgt "sizeof(point *)");
  Alcotest.(check int) "cast char truncates" 0x34 (ev tgt "(char)0x1234");
  Alcotest.(check int) "cast signed" (-1) (ev tgt "(char)0xff");
  Alcotest.(check int) "cast unsigned" 255 (ev tgt "(unsigned char)0xff");
  Alcotest.(check int) "cast bool" 1 (ev tgt "(bool)42")

let test_pointer_arith () =
  let tgt, _, p2 = mk_target () in
  (* origin.next + 1 advances by sizeof(point) = 24 *)
  Alcotest.(check int) "ptr + int" (p2 + 24) (ev tgt "origin.next + 1");
  Alcotest.(check int) "ptr - int" (p2 - 48) (ev tgt "origin.next - 2");
  Alcotest.(check int) "ptr - ptr" 1 (ev tgt "(origin.next + 1) - origin.next");
  Alcotest.(check int) "index" 30 (ev tgt "origin.next[0].x")

let test_symbols_macros_helpers_enums () =
  let tgt, _, _ = mk_target () in
  Alcotest.(check int) "macro" 42 (ev tgt "MAGIC");
  Alcotest.(check int) "helper" 84 (ev tgt "double(MAGIC)");
  Alcotest.(check int) "nested call" 168 (ev tgt "double(double(MAGIC))");
  Alcotest.(check int) "enum const" 2 (ev tgt "BLUE");
  Alcotest.(check int) "char lit" 65 (ev tgt "'A'");
  Alcotest.(check int) "escaped char" 10 (ev tgt "'\\n'")

let test_literal_suffixes () =
  let tgt, _, _ = mk_target () in
  List.iter
    (fun (src, expected) -> Alcotest.(check int) src expected (ev tgt src))
    [ ("0x10UL", 16); ("42u", 42); ("100L", 100); ("0xffULL", 255); ("'\\0'", 0) ]

let test_struct_keyword_types () =
  let tgt, _, _ = mk_target () in
  Alcotest.(check int) "struct tag cast" 24 (ev tgt "sizeof(struct point)");
  Alcotest.(check int) "unsigned long" 8 (ev tgt "sizeof(unsigned long)");
  Alcotest.(check int) "unsigned char" 1 (ev tgt "sizeof(unsigned char)");
  Alcotest.(check int) "long long" 8 (ev tgt "sizeof(long long)");
  Alcotest.(check int) "signed char" 1 (ev tgt "sizeof(signed char)");
  (* a cast through a struct pointer then member access *)
  Alcotest.(check int) "cast deref" 10 (ev tgt "((struct point *)&origin)->x")

let test_short_circuit () =
  let tgt, _, _ = mk_target () in
  (* RHS would div-by-zero; short-circuit must avoid evaluating it *)
  Alcotest.(check int) "&& short" 0 (ev tgt "0 && (1 / 0)");
  Alcotest.(check int) "|| short" 1 (ev tgt "1 || (1 / 0)")

let test_env () =
  let tgt, _, _ = mk_target () in
  let env name = if name = "@v" then Some (Target.int_value 99) else None in
  Alcotest.(check int) "env ref" 100 (Target.as_int tgt (Cexpr.eval_string ~env tgt "@v + 1"))

let test_parse_errors () =
  let tgt, _, _ = mk_target () in
  let fails s =
    match Cexpr.eval_string tgt s with
    | exception Cexpr.Parse_error _ -> ()
    | exception Cexpr.Eval_error _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" s
  in
  List.iter fails [ "1 +"; "(1"; "foo"; "1 / 0"; "origin.nofield"; "nosuchfn(1)"; "\"unterminated" ]

let test_pp_roundtrip () =
  let tgt, _, _ = mk_target () in
  List.iter
    (fun src ->
      let reg = Target.types tgt in
      let e = Cexpr.parse reg src in
      let e2 = Cexpr.parse reg (Cexpr.to_string e) in
      Alcotest.(check int)
        (Printf.sprintf "pp roundtrip %s" src)
        (Target.as_int tgt (Cexpr.eval tgt e))
        (Target.as_int tgt (Cexpr.eval tgt e2)))
    [ "1 + 2 * 3 - 4"; "origin.next->x + sizeof(point)"; "MAGIC >> 1 & 0xf";
      "1 < 2 ? origin.x : origin.y"; "double(3) * -2" ]

(* Property: evaluator agrees with an OCaml model on random int expressions. *)
type iexpr = Lit of int | Add of iexpr * iexpr | Sub of iexpr * iexpr | Mul of iexpr * iexpr
           | Neg of iexpr | Andb of iexpr * iexpr | Orb of iexpr * iexpr

let rec model = function
  | Lit n -> n
  | Add (a, b) -> model a + model b
  | Sub (a, b) -> model a - model b
  | Mul (a, b) -> model a * model b
  | Neg a -> -model a
  | Andb (a, b) -> model a land model b
  | Orb (a, b) -> model a lor model b

let rec to_c = function
  | Lit n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_c a) (to_c b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_c a) (to_c b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_c a) (to_c b)
  | Neg a -> Printf.sprintf "(-%s)" (to_c a)
  | Andb (a, b) -> Printf.sprintf "(%s & %s)" (to_c a) (to_c b)
  | Orb (a, b) -> Printf.sprintf "(%s | %s)" (to_c a) (to_c b)

let gen_iexpr =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun v -> Lit (v mod 1000)) small_nat
         else
           let sub = self (n / 2) in
           oneof
             [ map (fun v -> Lit (v mod 1000)) small_nat;
               map2 (fun a b -> Add (a, b)) sub sub;
               map2 (fun a b -> Sub (a, b)) sub sub;
               map2 (fun a b -> Mul (a, b)) sub sub;
               map (fun a -> Neg a) sub;
               map2 (fun a b -> Andb (a, b)) sub sub;
               map2 (fun a b -> Orb (a, b)) sub sub ])

let prop_matches_model =
  QCheck.Test.make ~name:"cexpr matches OCaml model" ~count:200
    (QCheck.make ~print:to_c gen_iexpr)
    (fun e ->
      let tgt, _, _ = mk_target () in
      ev tgt (to_c e) = model e)

let suite =
  [ Alcotest.test_case "arithmetic & precedence" `Quick test_arithmetic;
    Alcotest.test_case "member access" `Quick test_members;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "sizeof & casts" `Quick test_sizeof_casts;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arith;
    Alcotest.test_case "symbols/macros/helpers/enums" `Quick test_symbols_macros_helpers_enums;
    Alcotest.test_case "literal suffixes" `Quick test_literal_suffixes;
    Alcotest.test_case "type keywords" `Quick test_struct_keyword_types;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "environment refs" `Quick test_env;
    Alcotest.test_case "errors" `Quick test_parse_errors;
    Alcotest.test_case "printer roundtrip" `Quick test_pp_roundtrip;
    QCheck_alcotest.to_alcotest prop_matches_model ]
