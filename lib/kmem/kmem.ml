type addr = int

let kernel_base = 0x4000_0000_0000
let null = 0

type fault =
  | Use_after_free of { obj : addr; tag : string; at : addr }
  | Wild_access of addr
  | Injected of addr

type state = Live | Freed

type allocation = { base : addr; size : int; tag : string; mutable state : state }

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
  (* Allocations indexed by 4KiB-page so that point queries are O(pages
     spanned), not O(allocations). *)
  by_page : (int, allocation list ref) Hashtbl.t;
  mutable cursor : addr;
  mutable live : int;
  mutable live_bytes : int;
  (* Write-generation tracking (seqlock discipline): every store bumps a
     global counter plus one counter per 4KiB page touched, so a reader
     can record generations for the ranges it read and re-check them —
     detecting a mutation that raced the read without trapping writes. *)
  mutable gen : int;
  page_gen : (int, int) Hashtbl.t;
  mutable faults_rev : fault list;
  mutable nfaults : int;
  mutable reads : int;
  mutable bytes_read : int;
  (* fault injection (all default-off; extraction is deterministic
     unless a test opts in) *)
  mutable inj_rate : float;
  mutable inj_rng : int;
  mutable inj_seed : int;
  (* forked views draw from a per-lane xorshift64* stream instead of
     the base's shared LCG, so parallel injected runs stay
     deterministic whatever the lane interleaving *)
  inj_split : bool;
  mutable poisoned : (addr * int) list;
  (* Overlay views (parallel extraction): a forked view reads through
     to its parent and copies chunks on first write, so lane-local
     mutation (split chaos) never touches the shared base.  The base
     has [parent = None]. *)
  parent : t option;
}

let create () =
  {
    chunks = Hashtbl.create 64;
    by_page = Hashtbl.create 256;
    cursor = kernel_base;
    live = 0;
    live_bytes = 0;
    gen = 0;
    page_gen = Hashtbl.create 256;
    faults_rev = [];
    nfaults = 0;
    reads = 0;
    bytes_read = 0;
    inj_rate = 0.;
    inj_rng = 0x9e3779b9;
    inj_seed = 0x9e3779b9;
    inj_split = false;
    poisoned = [];
    parent = None;
  }

(* Reads never insert: an absent chunk is all-zero by construction, and
   a non-inserting lookup is what lets forked views on worker domains
   read the shared base concurrently (pure [Hashtbl.find_opt], no
   resize) while the base is quiescent. *)
let rec find_chunk mem idx =
  match Hashtbl.find_opt mem.chunks idx with
  | Some b -> Some b
  | None -> ( match mem.parent with Some p -> find_chunk p idx | None -> None)

(* Writes copy-on-write: a view's first store into a chunk clones the
   deepest ancestor copy (or a zero chunk) into its own overlay. *)
let chunk_for_write mem a =
  let idx = a lsr chunk_bits in
  match Hashtbl.find_opt mem.chunks idx with
  | Some b -> b
  | None ->
      let b =
        match mem.parent with
        | None -> Bytes.make chunk_size '\000'
        | Some p -> (
            match find_chunk p idx with
            | Some src -> Bytes.copy src
            | None -> Bytes.make chunk_size '\000')
      in
      Hashtbl.add mem.chunks idx b;
      b

let page_bits = 12

let pages_of base size =
  let first = base lsr page_bits and last = (base + size - 1) lsr page_bits in
  let rec collect p acc = if p > last then List.rev acc else collect (p + 1) (p :: acc) in
  collect first []

(* ------------------------------------------------------------------ *)
(* Write generations.  [touch] is the single funnel every mutation goes
   through: it bumps the global generation and stamps that generation
   onto every 4KiB page overlapped.  Storing the *stamp* (not a count)
   lets a reader decide both "did this page change since I read it?"
   and "had it already changed since my section began before I first
   read it?" — the second is the snapshot-mixing hazard a plain
   counter cannot see (see Target consistent sections). *)

let touch mem a n =
  mem.gen <- mem.gen + 1;
  let first = a lsr page_bits and last = (a + max n 1 - 1) lsr page_bits in
  for p = first to last do
    Hashtbl.replace mem.page_gen p mem.gen
  done

let generation mem = mem.gen

(* A view's own stamps (taken after the fork, hence strictly newer than
   anything in the parent at fork time) win; otherwise fall through to
   the parent's pre-fork stamp. *)
let rec page_generation mem p =
  match Hashtbl.find_opt mem.page_gen p with
  | Some g -> g
  | None -> ( match mem.parent with Some par -> page_generation par p | None -> 0)

let range_generation mem a n =
  let first = a lsr page_bits and last = (a + max n 1 - 1) lsr page_bits in
  let acc = ref 0 in
  for p = first to last do
    acc := max !acc (page_generation mem p)
  done;
  !acc

let alloc mem ?(align = 16) ~tag size =
  if mem.parent <> None then invalid_arg "Kmem.alloc: forked view";
  let size = max size 1 in
  let base = (mem.cursor + align - 1) land lnot (align - 1) in
  mem.cursor <- base + size;
  let a = { base; size; tag; state = Live } in
  List.iter
    (fun p ->
      let cell =
        match Hashtbl.find_opt mem.by_page p with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add mem.by_page p r;
            r
      in
      cell := a :: !cell)
    (pages_of base size);
  mem.live <- mem.live + 1;
  mem.live_bytes <- mem.live_bytes + size;
  (* the range transitions to live: a freed node reused mid-walk must
     dirty the generations of the pages it spans *)
  touch mem base size;
  base

let alloc_of mem a =
  match Hashtbl.find_opt mem.by_page (a lsr page_bits) with
  | None -> None
  | Some r -> List.find_opt (fun al -> a >= al.base && a < al.base + al.size) !r

let find_alloc mem a =
  match alloc_of mem a with None -> None | Some al -> Some (al.base, al.size, al.tag)

let is_live mem a =
  match alloc_of mem a with Some { state = Live; _ } -> true | _ -> false

let poison_byte = '\x6b'

let free mem a =
  if mem.parent <> None then invalid_arg "Kmem.free: forked view";
  match alloc_of mem a with
  | Some ({ state = Live; _ } as al) when al.base = a ->
      al.state <- Freed;
      mem.live <- mem.live - 1;
      mem.live_bytes <- mem.live_bytes - al.size;
      touch mem a al.size;
      for i = 0 to al.size - 1 do
        let p = a + i in
        Bytes.set (chunk_for_write mem p) (p land (chunk_size - 1)) poison_byte
      done
  | Some { state = Freed; _ } -> invalid_arg "Kmem.free: double free"
  | Some _ -> invalid_arg "Kmem.free: not an allocation base address"
  | None -> invalid_arg "Kmem.free: wild free"

let record_fault mem f =
  mem.nfaults <- mem.nfaults + 1;
  mem.faults_rev <- f :: mem.faults_rev

(* -------------------------------------------------------------------- *)
(* Fault injection.  Three knobs, all off by default:
   - probabilistic read failure (deterministic LCG, so a seeded run is
     reproducible);
   - address-range poisoning: reads overlapping a poisoned range fail;
   - one-shot bit flips, which corrupt the stored byte directly.
   A failing read records an [Injected] fault and returns POISON_FREE
   bytes, the same thing a read of freed memory sees. *)

let inject_read_failures mem ?(seed = 0x9e3779b9) rate =
  mem.inj_rate <- rate;
  mem.inj_rng <- seed;
  mem.inj_seed <- seed

let poison_range mem a len = if len > 0 then mem.poisoned <- (a, len) :: mem.poisoned

let clear_injection mem =
  mem.inj_rate <- 0.;
  mem.inj_rng <- 0x9e3779b9;
  mem.inj_seed <- 0x9e3779b9;
  mem.poisoned <- []

(* The injection LCG advances once per performed read, so any layer that
   wants to *skip* reads (a cache) would change the fault pattern of
   every read after it.  Caches consult this to disable reuse while
   injection is live, keeping injected runs byte-for-byte reproducible. *)
let injection_active mem = mem.inj_rate > 0. || mem.poisoned <> []

(* xorshift64* step, masked into OCaml's positive int range.  The lane
   streams only need determinism + decent mixing, not the full 64-bit
   period. *)
let xs64 x =
  let x = x lxor (x lsr 12) in
  let x = x lxor ((x lsl 25) land 0x3FFF_FFFF_FFFF_FFFF) in
  let x = x lxor (x lsr 27) in
  x * 0x2545F4914F6CDD1D land 0x3FFF_FFFF_FFFF_FFFF

let xs64_seed s =
  let s = (s lxor 0x1E3779B97F4A7C15) land 0x3FFF_FFFF_FFFF_FFFF in
  if s = 0 then 1 else s

let injected mem a n =
  let ranged = List.exists (fun (b, len) -> a < b + len && b < a + n) mem.poisoned in
  let random =
    mem.inj_rate > 0.
    && begin
         (if mem.inj_split then mem.inj_rng <- xs64 mem.inj_rng
          else
            (* Java's 48-bit LCG: fits comfortably in OCaml's 63-bit ints *)
            mem.inj_rng <- ((mem.inj_rng * 25214903917) + 11) land 0xFFFF_FFFF_FFFF);
         float_of_int ((mem.inj_rng lsr 24) land 0xFFFFFF) /. 16777216. < mem.inj_rate
       end
  in
  if ranged || random then begin
    record_fault mem (Injected a);
    true
  end
  else false

(* 0x6b in every byte, like reading freed memory (top byte included: an
   8-byte poison read wraps negative exactly as a real poison load). *)
let rec poison_value n = if n = 0 then 0 else (poison_value (n - 1) lsl 8) lor 0x6b

(* Check an [n]-byte read starting at [a]; UAF and wild reads are recorded
   but do not stop execution — the poison (or zero) bytes are returned, as
   on real hardware. *)
let note_read mem a n =
  mem.reads <- mem.reads + 1;
  mem.bytes_read <- mem.bytes_read + n;
  if a < kernel_base then record_fault mem (Wild_access a)
  else
    match alloc_of mem a with
    | Some { state = Freed; base; tag; _ } ->
        record_fault mem (Use_after_free { obj = base; tag; at = a })
    | Some { state = Live; _ } | None -> ()

let get mem a =
  match find_chunk mem (a lsr chunk_bits) with
  | Some b -> Char.code (Bytes.get b (a land (chunk_size - 1)))
  | None -> 0

let set mem a v =
  Bytes.set (chunk_for_write mem a) (a land (chunk_size - 1)) (Char.chr (v land 0xff))

let read_u8 mem a =
  note_read mem a 1;
  if injected mem a 1 then poison_value 1 else get mem a

let read_le mem a n =
  note_read mem a n;
  if injected mem a n then poison_value n
  else
    let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl 8) lor get mem (a + i)) in
    go (n - 1) 0

let read_u16 mem a = read_le mem a 2
let read_u32 mem a = read_le mem a 4

let read_u64 mem a =
  (* Native ints are 63-bit; our simulated addresses and values stay well
     below 2^62, so a 64-bit field is read as low 62 bits + sign-safe top. *)
  note_read mem a 8;
  if injected mem a 8 then poison_value 8
  else
    let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl 8) lor get mem (a + i)) in
    go 7 0

let sign_extend v bits =
  let m = 1 lsl (bits - 1) in
  (v lxor m) - m

let read_i8 mem a = sign_extend (read_u8 mem a) 8
let read_i16 mem a = sign_extend (read_u16 mem a) 16
let read_i32 mem a = sign_extend (read_u32 mem a) 32

let read_bytes mem a n =
  note_read mem a n;
  if injected mem a n then String.make n poison_byte
  else String.init n (fun i -> Char.chr (get mem (a + i)))

let read_cstring mem ?(max = 256) a =
  note_read mem a max;
  if injected mem a max then String.make (min max 8) poison_byte
  else
  let buf = Buffer.create 16 in
  let rec go i =
    if i < max then
      let c = get mem (a + i) in
      if c <> 0 then (
        Buffer.add_char buf (Char.chr c);
        go (i + 1))
  in
  go 0;
  Buffer.contents buf

let write_u8 mem a v =
  touch mem a 1;
  set mem a v

let write_le mem a n v =
  touch mem a n;
  for i = 0 to n - 1 do
    set mem (a + i) ((v lsr (8 * i)) land 0xff)
  done

let write_u16 mem a v = write_le mem a 2 v
let write_u32 mem a v = write_le mem a 4 v
let write_u64 mem a v = write_le mem a 8 v
let write_bytes mem a s =
  touch mem a (String.length s);
  String.iteri (fun i c -> set mem (a + i) (Char.code c)) s

let write_cstring mem a ?field_size s =
  let s =
    match field_size with
    | Some n when String.length s >= n -> String.sub s 0 (max 0 (n - 1))
    | _ -> s
  in
  write_bytes mem a s;
  write_u8 mem (a + String.length s) 0

let flip_bits mem a ~mask =
  touch mem a 1;
  set mem a (get mem a lxor mask)

let faults mem = List.rev mem.faults_rev
let fault_count mem = mem.nfaults

let faults_since mem c0 =
  let rec take k l =
    if k <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
  in
  List.rev (take (mem.nfaults - c0) mem.faults_rev)

let clear_faults mem =
  mem.faults_rev <- [];
  mem.nfaults <- 0
let read_count mem = mem.reads
let bytes_read mem = mem.bytes_read

let reset_counters mem =
  mem.reads <- 0;
  mem.bytes_read <- 0

let live_count mem = mem.live
let live_bytes mem = mem.live_bytes

(* ------------------------------------------------------------------ *)
(* Overlay forks (parallel extraction).  A fork is a read-through view
   of [mem] with its own generation/fault/counter state and its own
   injection stream: reads fall through the parent chain (never
   inserting), writes copy the containing chunk into the view first.
   The shared allocation map is referenced physically — pure lookups
   only — under the contract that the base is quiescent (no alloc/free,
   no store) while forks of it are live on other domains.  [lane] picks
   the deterministic xorshift64* injection stream ([inj_seed lxor
   lane]), so a lane's fault pattern depends only on its lane id and
   read sequence, not on domain count or steal schedule. *)

let fork ?(lane = 0) mem =
  {
    chunks = Hashtbl.create 16;
    by_page = mem.by_page;
    cursor = mem.cursor;
    live = mem.live;
    live_bytes = mem.live_bytes;
    gen = mem.gen;
    page_gen = Hashtbl.create 64;
    faults_rev = [];
    nfaults = 0;
    reads = 0;
    bytes_read = 0;
    inj_rate = mem.inj_rate;
    inj_rng = xs64_seed (mem.inj_seed lxor lane);
    inj_seed = mem.inj_seed lxor lane;
    inj_split = true;
    poisoned = mem.poisoned;
    parent = Some mem;
  }

let is_fork mem = mem.parent <> None

(* Fold a joined fork's accounting back into [mem], preserving the
   fork's internal fault order (callers absorb forks in lane order, so
   the merged journal is deterministic).  The fork's lane-local page
   writes are deliberately NOT merged: split chaos mutates the view,
   never the base. *)
let absorb mem child =
  mem.reads <- mem.reads + child.reads;
  mem.bytes_read <- mem.bytes_read + child.bytes_read;
  mem.nfaults <- mem.nfaults + child.nfaults;
  mem.faults_rev <- child.faults_rev @ mem.faults_rev;
  child.faults_rev <- [];
  child.nfaults <- 0;
  child.reads <- 0;
  child.bytes_read <- 0

let pp_fault ppf = function
  | Use_after_free { obj; tag; at } ->
      Format.fprintf ppf "use-after-free: read 0x%x inside freed %s@0x%x" at tag obj
  | Wild_access a -> Format.fprintf ppf "wild access: 0x%x" a
  | Injected a -> Format.fprintf ppf "injected fault: read at 0x%x corrupted" a
