(** Simulated kernel memory.

    A byte-addressable, little-endian memory in which all simulated kernel
    objects live. Substitutes for the physical/virtual memory of the
    debugged machine: the debugger side ({!Target}) only ever sees this
    memory through address-based reads, exactly as GDB sees a remote
    target.

    Freed objects are poisoned (every byte set to [0x6b], mirroring the
    kernel's [POISON_FREE]) and reads from them are recorded as
    use-after-free events rather than crashing, so that UAF bugs such as
    CVE-2023-3269 can be observed and visualized. *)

type addr = int
(** A simulated kernel virtual address. Addresses are native ints; the
    "kernel" address space starts at {!kernel_base}. *)

val kernel_base : addr
(** Base of the simulated kernel address space ([0x4000_0000_0000]). *)

val null : addr
(** The NULL pointer (0). *)

type t
(** A memory instance: byte store + allocator + event log. *)

(** Why an access was flagged. *)
type fault =
  | Use_after_free of { obj : addr; tag : string; at : addr }
      (** Read of [at] inside the freed allocation [obj] (tagged [tag]). *)
  | Wild_access of addr  (** Access to an address never allocated. *)
  | Injected of addr
      (** A read the fault-injection layer chose to corrupt (see
          {!inject_read_failures} and {!poison_range}). *)

val create : unit -> t

(** {1 Allocation} *)

val alloc : t -> ?align:int -> tag:string -> int -> addr
(** [alloc mem ~tag size] allocates [size] zeroed bytes, aligned to [align]
    (a power of two, default 16 — maple nodes need 256 so that node
    pointers can carry type tags in their low bits).
    [tag] names the object type for diagnostics (like a slab cache name). *)

val free : t -> addr -> unit
(** Free an allocation made by {!alloc}; poisons its bytes.
    @raise Invalid_argument on double free or a non-allocation address. *)

val is_live : t -> addr -> bool
(** Whether [addr] lies within a currently-live allocation. *)

val find_alloc : t -> addr -> (addr * int * string) option
(** [find_alloc mem a] is [Some (base, size, tag)] when [a] lies within an
    allocation (live or freed). *)

val live_count : t -> int
(** Number of live allocations. *)

val live_bytes : t -> int
(** Total bytes in live allocations. *)

(** {1 Typed access (little-endian)} *)

val read_u8 : t -> addr -> int
val read_u16 : t -> addr -> int
val read_u32 : t -> addr -> int
val read_u64 : t -> addr -> int

val read_i8 : t -> addr -> int
val read_i16 : t -> addr -> int
val read_i32 : t -> addr -> int

val read_bytes : t -> addr -> int -> string

val read_cstring : t -> ?max:int -> addr -> string
(** Read a NUL-terminated string (at most [max] bytes, default 256). *)

val write_u8 : t -> addr -> int -> unit
val write_u16 : t -> addr -> int -> unit
val write_u32 : t -> addr -> int -> unit
val write_u64 : t -> addr -> int -> unit
val write_bytes : t -> addr -> string -> unit

val write_cstring : t -> addr -> ?field_size:int -> string -> unit
(** Write a NUL-terminated string, truncating to [field_size - 1] bytes
    when [field_size] is given. *)

(** {1 Write generations (snapshot consistency)}

    Every mutation — typed writes, [flip_bits], and the allocation-map
    transitions of {!alloc} and {!free} — bumps a global generation
    counter and stamps it onto each 4KiB page overlapped.  A reader
    wanting seqlock-style consistency records the page stamps for the
    ranges it reads and re-checks them afterwards: any change means a
    writer raced the read (a torn snapshot), and a first-read stamp
    newer than the section start means the snapshot already mixes
    before/after state.  Pure reads never bump generations. *)

val generation : t -> int
(** Global write generation: total mutations performed so far. *)

val page_bits : int
(** log2 of the generation-tracking granule (4KiB pages). *)

val page_generation : t -> int -> int
(** [page_generation mem p] — the global generation at the most recent
    mutation touching page index [p] (addresses [a] with
    [a lsr page_bits = p]); [0] if never touched.  Monotone per page. *)

val range_generation : t -> addr -> int -> int
(** [range_generation mem a n] — max of {!page_generation} over the
    pages overlapping [\[a, a+n)]: the generation of the most recent
    store into the range.  Recording it before a read and comparing
    after detects any racing store. *)

(** {1 Fault injection}

    Test hooks for exercising the fault paths of everything above the
    memory. All default-off: extraction over an uninjected memory is
    byte-for-byte deterministic. A read chosen for failure records an
    {!fault.Injected} fault and returns [POISON_FREE] ([0x6b]) bytes —
    indistinguishable from reading freed memory, which is exactly what a
    flaky or lying debug transport produces in practice. *)

val inject_read_failures : t -> ?seed:int -> float -> unit
(** [inject_read_failures mem rate] makes each subsequent read fail
    independently with probability [rate] ([0.] disables). Driven by a
    deterministic LCG seeded with [seed], so runs are reproducible. *)

val poison_range : t -> addr -> int -> unit
(** [poison_range mem a len]: any read overlapping [\[a, a+len)] fails. *)

val flip_bits : t -> addr -> mask:int -> unit
(** One-shot corruption: XOR the stored byte at [addr] with [mask].
    Subsequent reads see the flipped data with no fault recorded —
    silent corruption, the hardest case for the visualizer. *)

val clear_injection : t -> unit
(** Disable probabilistic failure and forget all poisoned ranges. *)

val injection_active : t -> bool
(** Whether any fault injection (probabilistic failure or poisoned
    ranges) is currently armed.  Read caches consult this: the
    injection LCG draws once per performed read, so skipping reads
    while injection is live would change every later fault — caching
    layers disable cross-run reuse instead. *)

(** {1 Access accounting and faults} *)

val faults : t -> fault list
(** Faults recorded so far, oldest first. *)

val fault_count : t -> int
(** [List.length (faults mem)], O(1). *)

val faults_since : t -> int -> fault list
(** [faults_since mem c] is the faults recorded after the point where
    {!fault_count} returned [c], oldest first. *)

val clear_faults : t -> unit

val read_count : t -> int
(** Number of read operations performed so far. *)

val bytes_read : t -> int
(** Number of bytes fetched by reads so far. *)

val reset_counters : t -> unit

(** {1 Overlay forks (parallel extraction)}

    A fork is a read-through view of a base memory for one extraction
    lane: reads fall through to the base (never mutating it, not even
    a cache insert), the first write into a chunk copies it into the
    view (so lane-local chaos mutates the view only), and the view
    carries its own generation stamps, fault journal, read counters
    and fault-injection stream.  Contract: while forks are live on
    other domains the base must be quiescent — no alloc/free and no
    stores to it.  Forks must not allocate or free
    ({!alloc}/{!free} raise [Invalid_argument] on a fork). *)

val fork : ?lane:int -> t -> t
(** [fork ~lane mem] — a fresh overlay view of [mem].  The view
    inherits the current injection rate and poisoned ranges but draws
    from a deterministic per-lane xorshift64* stream seeded with
    [inj_seed lxor lane], so a lane's fault pattern depends only on
    its lane id and its own read sequence — not on the domain count or
    steal schedule. *)

val is_fork : t -> bool

val absorb : t -> t -> unit
(** [absorb base child] folds a joined fork's read counters and fault
    journal back into [base] (appending the child's faults after the
    base's, preserving their internal order) and empties the child's
    accounting.  Callers absorb forks in lane order, making the merged
    journal identical across domain counts.  The child's lane-local
    writes are deliberately discarded. *)

val pp_fault : Format.formatter -> fault -> unit
