(* The GDB-target abstraction: typed access to simulated kernel memory.

   This layer plays the role GDB plays for Visualinux proper — it turns
   "read 8 bytes at 0xffff..." into "the [mm] member of this
   [task_struct]".  Values carry a C type plus a location; navigation
   (member access, indexing, dereference, casts) computes new locations
   without touching memory, while observation ([as_int], [as_string],
   [load], [truthy]) performs checked reads.

   Robustness contract: the kernel under inspection may be CORRUPTED
   (the paper's two case studies plot dangling and low-bit-tagged
   pointers).  Memory-level problems therefore never raise — every
   checked read validates the address against the allocation map and,
   on trouble, records a typed {!fault} in the target's journal and
   yields poison/zero data so extraction can continue.  Only structural
   API misuse (dereferencing an [int], naming a field that does not
   exist) raises [Invalid_argument], mirroring what GDB's expression
   evaluator would reject statically. *)

type addr = int

(** Where a value lives. *)
type location =
  | Lval of addr  (** in target memory, at this address *)
  | Rval of int  (** an immediate (debugger-side) integer *)
  | Rstr of string  (** an immediate (debugger-side) string *)

type value = { typ : Ctype.t; loc : location }

(** Typed memory faults.  Recorded in the journal instead of raised, so
    a plot of a corrupted kernel degrades to broken boxes rather than
    aborting.  *)
type fault =
  | Use_after_free of { obj : addr; tag : string; at : addr }
      (** read inside a freed allocation (its base, slab tag, address read) *)
  | Wild_access of { at : addr }
      (** read outside any allocation ever made *)
  | Null_deref of { at : addr; ctx : string }
      (** read in the null guard page, [ctx] names the operation *)
  | Misaligned of { at : addr; want : int; ctx : string }
      (** dereferenced a pointer whose value is misaligned for its
          pointee — the classic signature of a low-bit-tagged or
          garbage pointer *)
  | Bad_cast of { from_ : string; to_ : string }
      (** a cast with no sensible C meaning (e.g. string to struct) *)
  | Injected of { at : addr }
      (** a read the {!Kmem} fault-injection layer chose to corrupt *)
  | Truncated of { at : addr; ctx : string }
      (** a container traversal stopped early: cycle detected or a
          node/depth budget exhausted at [at] *)
  | Timed_out of { at : addr; ctx : string }
      (** the transport refused the read because the per-plot deadline
          budget was already spent *)
  | Link_lost of { at : addr; ctx : string; detail : string }
      (** the transport could not complete the read — breaker open,
          link disconnected, or every retry's reply dropped; [detail]
          is the {!Transport.error} name *)
  | Torn of { lo : addr; hi : addr }
      (** a writer raced a consistent section: the byte range
          [\[lo, hi)] (page-granular) was mutated between the first
          read that touched it and the section's end check *)

type t

(** Helpers are debugger-side functions (the paper's "GDB Python
    extensions"), callable from C expressions. *)
type helper = t -> value list -> value

val create : Kmem.t -> Ctype.registry -> t
val mem : t -> Kmem.t
val types : t -> Ctype.registry

(* ------------------------------------------------------------------ *)
(* Transport — the (simulated) debugger link *)

val set_transport : t -> Transport.t -> unit
(** Route every checked read through [tr]: reads the transport refuses
    (breaker open, link down, budget spent, retries exhausted) record a
    {!fault.Timed_out} or {!fault.Link_lost} fault and yield zero/empty
    data instead of touching memory. Without a transport (the default)
    reads hit {!Kmem} directly, as before. *)

val transport : t -> Transport.t option

val deadline_exceeded : t -> bool
(** True when an attached transport's per-plot budget is spent — used
    by container iterators to truncate traversals early. *)

(* ------------------------------------------------------------------ *)
(* Value constructors — no memory access, no validation. *)

val obj : Ctype.t -> addr -> value
(** [obj ty a] is the lvalue of type [ty] living at [a]. *)

val ptr_to : Ctype.t -> addr -> value
(** [ptr_to ty a] is an immediate pointer of type [ty *] holding [a]. *)

val int_value : int -> value
val bool_value : bool -> value
val str_value : string -> value
val null_ptr : value

(* ------------------------------------------------------------------ *)
(* Navigation *)

val member : t -> value -> string -> value
(** [member t v f] accesses field [f].  Pointers auto-dereference
    (GDB's [->]); bitfield members are read and extracted immediately
    (an address cannot denote a bit range).  Raises [Invalid_argument]
    if [v] is not (a pointer to) a composite or has no such field. *)

val member_path : t -> value -> string -> value
(** [member_path t v "a.b.c"] folds {!member} over a dot-path. *)

val index : t -> value -> int -> value
(** Array subscript on an array lvalue or a pointer.  Out-of-bounds
    indices are computed anyway (the liveness check on the eventual
    read will record the fault), as GDB does. *)

val deref : t -> value -> value
(** [deref t p] follows pointer [p].  Raises [Invalid_argument] on
    non-pointers and [void*]/function pointers; records {!Misaligned}
    when the pointer value is not aligned for the pointee. *)

val cast : t -> Ctype.t -> value -> value
(** C-style cast: integer casts truncate/sign-extend, [_Bool]
    normalises to 0/1, pointer/composite casts reinterpret the
    location.  Meaningless casts record {!Bad_cast} and retype
    without conversion. *)

val container_of : t -> addr -> string -> string -> value
(** [container_of t a comp field]: the enclosing [comp] given the
    address [a] of its [field] (the kernel macro). *)

val addr_of : value -> addr
(** Address of an lvalue.  Raises [Invalid_argument] on immediates. *)

val load : t -> value -> value
(** Collapse a scalar lvalue to an immediate by reading memory.
    Aggregates (structs, unions, arrays) and immediates pass through
    unchanged. *)

(* ------------------------------------------------------------------ *)
(* Observation — checked reads *)

val as_int : t -> value -> int
(** Integer reading of [v]: immediates as-is; scalar lvalues read with
    the width and signedness of their type; aggregates decay to their
    address.  Raises [Invalid_argument] only for strings. *)

val as_string : t -> value -> string
(** String reading: immediate strings, in-memory [char] arrays
    (NUL-cut), and [char*] (bounded C-string read). *)

val truthy : t -> value -> bool
(** C truth value: nonzero, or a non-empty immediate string. *)

(* ------------------------------------------------------------------ *)
(* Symbols, macros, helpers *)

val add_symbol : t -> string -> value -> unit
val add_macro : t -> string -> int -> unit
val add_helper : t -> string -> helper -> unit

val lookup_symbol : t -> string -> value option
(** Resolution order: symbols, then macros, then enumeration constants
    from the type registry. *)

val lookup_helper : t -> string -> helper option

val call_helper : t -> string -> value list -> value
(** Raises [Invalid_argument] if no such helper is registered. *)

(* ------------------------------------------------------------------ *)
(* Fault journal *)

val faults : t -> fault list
(** Oldest first. *)

val fault_count : t -> int
val clear_faults : t -> unit

val record_fault : t -> fault -> unit
(** Used by traversal code (e.g. the ViewCL interpreter's cycle guards)
    to attribute {!Truncated} faults to the value being extracted. *)

val with_faults : t -> (unit -> 'a) -> 'a * fault list
(** [with_faults t f] runs [f] and returns the faults recorded during
    it.  Nests: an inner [with_faults] keeps its faults to itself, so a
    box build sees exactly the faults of its own reads.  Faults still
    land in the global journal too. *)

val fault_to_string : fault -> string
val pp_fault : Format.formatter -> fault -> unit

(* ------------------------------------------------------------------ *)
(* Consistent sections — seqlock-style torn-read detection *)

type section
(** An open consistent section: the per-page generation stamps observed
    at the first checked read of each page. *)

val begin_consistent : t -> section
(** Open a section.  Sections nest; a checked read registers its pages
    in the {e innermost} open section only, so a nested section (a
    child box's build) owns its reads and a tear there does not dirty
    its ancestors.  With no section open, reads pay one list match. *)

val end_consistent : t -> section -> (addr * addr) list
(** Close [sec] and return the dirty byte ranges [\[lo, hi)]
    (page-granular, adjacent pages coalesced): pages some writer
    mutated after the section first read them, or that had already
    changed since the section opened before their first read (a mixed
    snapshot).  Each range also records a {!fault.Torn} fault, so a
    box built under {!with_faults} sees its own tears.  Empty means
    the reads form a consistent snapshot. *)

val consistent : t -> (unit -> 'a) -> 'a * (addr * addr) list
(** [consistent t f]: run [f] inside its own section; exception-safe. *)

val section_pages : section -> (int * int) list
(** The (page index, first-read generation stamp) pairs [sec] observed,
    sorted by page.  For a section that closed clean these are exactly
    the pages the enclosed build read, each stamp still current — the
    validity key for incremental re-extraction: the snapshot is
    reusable until {!Kmem.page_generation} moves on some page. *)

val set_read_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook fired after every performed checked read
    — the chaos harness's injection point for mutators that race the
    extraction.  Reentrant firing is suppressed: a hook whose own work
    reads through this target does not recurse. *)

val read_hook_armed : t -> bool
(** A read hook is currently installed.  Streamed container walks
    consult this: a hook may mutate shared memory on the walking
    thread's reads, so lanes must not run concurrently with the walk —
    the interpreter falls back to the eager materialize-then-split
    path whenever a hook is armed. *)

val set_hook_fork : t -> (lane:int -> Kmem.t -> (unit -> unit) option) option -> unit
(** Install (or clear) the read-hook forker consulted by {!fork}: given
    the lane id and the lane's own Kmem view, it derives that lane's
    read hook.  Split chaos uses this to give every lane a mutator
    stream that writes only into the lane's view, deterministically in
    the lane id (see [Workload.Chaos.arm_split]). *)

(* ------------------------------------------------------------------ *)
(* Per-lane forks (parallel extraction) *)

val fork : ?lane:int -> t -> t
(** [fork ~lane t] — a lane-local target over a {!Kmem.fork} view of
    [t]'s memory.  Shared physically (read-only during the parallel
    region): type registry, symbols, macros, helpers, allocation map.
    Lane-local: fault journal, sinks, consistent sections, read cache
    (starts cold — a warm copy would depend on when the lane ran),
    cache/read counters, the per-lane injection stream
    ([Kmem.fork ~lane]), a {!Transport.fork} of the transport when one
    is attached, and a read hook derived via {!set_hook_fork}.  A
    lane's execution is thus a deterministic function of its lane id
    and program slice — independent of domain count and schedule. *)

val is_fork : t -> bool

val absorb : t -> t -> unit
(** [absorb t child] — deterministic join: append the lane's fault
    journal after [t]'s (preserving its internal order), sum read /
    cache counters, adopt still-valid page stamps into [t]'s read
    cache, fold the lane transport's accounting into [t]'s, and empty
    the child's accounting.  Call once per lane, from the joining
    thread, in lane order — that makes the merged state identical
    across domain counts. *)

(* ------------------------------------------------------------------ *)
(* Generation-validated read cache + struct-granular coalescing *)

val prefetch : t -> addr -> int -> unit
(** [prefetch t a n]: fetch the object extent [\[a, a+n)] in one
    transport round-trip and stamp its pages in the read cache, so the
    per-field reads that follow hit memory instead of the wire (one
    packet per box instead of one per field).  A refused fetch records
    nothing: each field read then degrades individually, keeping
    [BROKEN]/[TORN] semantics identical to the uncoalesced path.  No-op
    without a transport, with the cache disabled, for empty extents and
    for null-page addresses. *)

type cache_stats = { hits : int; misses : int; coalesced : int }
(** Transport-avoidance accounting: [hits] = checked reads served
    without a round-trip (all pages generation-fresh), [misses] =
    checked reads that went to the wire, [coalesced] = whole-struct
    prefetch fetches.  All zero when no transport is attached — local
    reads bypass the cache entirely. *)

val cache_stats : t -> cache_stats
val reset_cache_stats : t -> unit

val set_read_cache : t -> bool -> unit
(** Enable/disable the read cache (default: enabled).  Disabling also
    drops all cached page stamps, so re-enabling starts cold.  A cache
    {e hit} skips only [Transport.fetch]: the Kmem read, its counters,
    consistent-section registration, fault-injection draws and the
    chaos read hook all still happen, so cached and uncached runs issue
    the same Kmem read sequence. *)

val read_cache_enabled : t -> bool

val clear_read_cache : t -> unit
(** Drop every cached page stamp (the next reads all miss). *)

(* ------------------------------------------------------------------ *)
(* Read accounting and latency models *)

type stats = { reads : int; bytes : int }

val stats : t -> stats
val reset_stats : t -> unit

(** A debugger transport's cost model, per paper Table 5: every read is
    one remote round-trip plus per-byte serial cost.  Owned by
    {!Transport} since the connection layer landed; re-exported here
    for existing callers. *)
type profile = Transport.profile = {
  pname : string;
  rtt_ms : float;
  byte_ms : float;
}

val profile : string -> float -> profile
(** [profile name rtt_ms], per-byte cost pinned to [rtt/1024]. *)

val qemu_local : profile
(** GDB against local QEMU over a unix socket: ~0.05 ms round-trip. *)

val kgdb_rpi : profile
(** KGDB over serial to a Raspberry Pi 3B: ~3.0 ms per RSP round-trip
    (Table 5 reports whole-figure costs 50-100x the QEMU ones). *)

val kgdb_rpi400 : profile
(** KGDB over serial to a Raspberry Pi 400: ~2.5 ms per round-trip —
    the paper's headline "minutes per figure" configuration. *)

val simulated_ms : profile -> stats -> float
(** [simulated_ms p st]: wall-clock the [st] read trace would cost over
    transport [p]. *)
