(* See target.mli for the contract.  The split that matters here:

   - navigation computes locations, observation performs reads;
   - memory trouble (dangling, wild, null, tagged pointers, injected
     corruption) lands in the fault journal and the read yields
     poison/zero — it never raises;
   - structural misuse (deref of an int, unknown field) raises
     [Invalid_argument], which Cexpr turns into [Eval_error]. *)

type addr = int
type location = Lval of addr | Rval of int | Rstr of string
type value = { typ : Ctype.t; loc : location }

type fault =
  | Use_after_free of { obj : addr; tag : string; at : addr }
  | Wild_access of { at : addr }
  | Null_deref of { at : addr; ctx : string }
  | Misaligned of { at : addr; want : int; ctx : string }
  | Bad_cast of { from_ : string; to_ : string }
  | Injected of { at : addr }
  | Truncated of { at : addr; ctx : string }
  | Timed_out of { at : addr; ctx : string }
  | Link_lost of { at : addr; ctx : string; detail : string }
  | Torn of { lo : addr; hi : addr }

(* A consistent section, seqlock-style.  [sec_start] is the global
   write generation when the section opened; [sec_pages] maps each page
   touched by a checked read to the page's generation stamp at its
   *first* read.  At section end a page is dirty when its stamp moved
   since first read (a write raced the walk) or its first-read stamp
   already postdates [sec_start] (the snapshot mixes before/after
   state — the case a plain per-page counter cannot see).  Sections
   nest; a checked read registers its pages in the innermost open
   section only, giving per-box granularity to the retry layer. *)
type section = { sec_start : int; sec_pages : (int, int) Hashtbl.t }

type t = {
  kmem : Kmem.t;
  reg : Ctype.registry;
  symbols : (string, value) Hashtbl.t;
  macros : (string, int) Hashtbl.t;
  helpers : (string, helper) Hashtbl.t;
  mutable journal : fault list;  (* newest first *)
  mutable nfaults : int;
  mutable sinks : fault list ref list;  (* innermost with_faults first *)
  mutable transport : Transport.t option;  (* None: reads are local/free *)
  mutable sections : section list;  (* innermost consistent section first *)
  mutable read_hook : (unit -> unit) option;  (* chaos: fired between reads *)
  mutable in_hook : bool;  (* reentrancy guard for [read_hook] *)
  (* Installed by split-chaos: [fork] consults it to derive a lane-local
     read hook that mutates the lane's own Kmem view (never the shared
     base), keyed by the deterministic lane id. *)
  mutable hook_fork : (lane:int -> Kmem.t -> (unit -> unit) option) option;
  (* Generation-validated read cache (transport-avoidance only): page
     index -> Kmem page generation at fill.  A lookup is a hit when
     every page of the read still carries its fill-time generation; any
     Kmem write bumps the page's generation, invalidating lazily. *)
  rcache : (int, int) Hashtbl.t;
  mutable cache_on : bool;
  mutable ch_hits : int;
  mutable ch_misses : int;
  mutable ch_coalesced : int;
}

and helper = t -> value list -> value

let create kmem reg =
  {
    kmem;
    reg;
    symbols = Hashtbl.create 64;
    macros = Hashtbl.create 64;
    helpers = Hashtbl.create 64;
    journal = [];
    nfaults = 0;
    sinks = [];
    transport = None;
    sections = [];
    read_hook = None;
    in_hook = false;
    hook_fork = None;
    rcache = Hashtbl.create 1024;
    cache_on = true;
    ch_hits = 0;
    ch_misses = 0;
    ch_coalesced = 0;
  }

let mem t = t.kmem
let types t = t.reg
let set_transport t tr = t.transport <- Some tr
let transport t = t.transport

let deadline_exceeded t =
  match t.transport with Some tr -> Transport.deadline_exceeded tr | None -> false

(* ------------------------------------------------------------------ *)
(* Fault journal *)

let fault_to_string = function
  | Use_after_free { obj; tag; at } ->
      Printf.sprintf "use-after-free: %s@0x%x (read at 0x%x)" tag obj at
  | Wild_access { at } -> Printf.sprintf "wild-access: 0x%x" at
  | Null_deref { at; ctx } -> Printf.sprintf "null-deref: 0x%x in %s" at ctx
  | Misaligned { at; want; ctx } ->
      Printf.sprintf "misaligned: 0x%x (need %d-byte alignment) in %s" at want ctx
  | Bad_cast { from_; to_ } -> Printf.sprintf "bad-cast: %s -> %s" from_ to_
  | Injected { at } -> Printf.sprintf "injected-fault: 0x%x" at
  | Truncated { at; ctx } -> Printf.sprintf "truncated %s at 0x%x" ctx at
  | Timed_out { at; ctx } -> Printf.sprintf "deadline-exceeded: 0x%x in %s" at ctx
  | Link_lost { at; ctx; detail } -> Printf.sprintf "link-lost (%s): 0x%x in %s" detail at ctx
  | Torn { lo; hi } -> Printf.sprintf "torn-read: [0x%x,0x%x) mutated during extraction" lo hi

let pp_fault ppf f = Format.pp_print_string ppf (fault_to_string f)

(* Obs is the registry of record for read accounting; [stats] below
   stays as the per-target facade over Kmem's counters. *)
let c_reads = Obs.Counter.make "target.reads"
let c_bytes = Obs.Counter.make "target.bytes"
let c_faults = Obs.Counter.make "target.faults"

let record_fault t f =
  t.nfaults <- t.nfaults + 1;
  t.journal <- f :: t.journal;
  if Obs.enabled () then begin
    Obs.Counter.incr c_faults;
    Obs.instant ~cat:"target" ~attrs:[ ("fault", fault_to_string f) ] "target.fault"
  end;
  match t.sinks with s :: _ -> s := f :: !s | [] -> ()

let faults t = List.rev t.journal
let fault_count t = t.nfaults

let clear_faults t =
  t.journal <- [];
  t.nfaults <- 0

let with_faults t f =
  let sink = ref [] in
  t.sinks <- sink :: t.sinks;
  let pop () = t.sinks <- (match t.sinks with _ :: rest -> rest | [] -> []) in
  match f () with
  | x ->
      pop ();
      (x, List.rev !sink)
  | exception e ->
      pop ();
      raise e

(* ------------------------------------------------------------------ *)
(* Consistent sections and the chaos read hook *)

let begin_consistent t =
  let sec = { sec_start = Kmem.generation t.kmem; sec_pages = Hashtbl.create 16 } in
  t.sections <- sec :: t.sections;
  sec

(* Register the pages of an [n]-byte read at [a] in the innermost open
   section, stamping each page with its current generation the first
   time the section sees it.  Innermost-only gives per-box granularity:
   a nested section (a child box's build) owns its reads, so a tear in
   a child does not dirty — and needlessly re-extract — its ancestors.
   One list match when no section is open. *)
let observe_read t a n =
  match t.sections with
  | [] -> ()
  | sec :: _ ->
      let first = a lsr Kmem.page_bits and last = (a + max n 1 - 1) lsr Kmem.page_bits in
      for p = first to last do
        if not (Hashtbl.mem sec.sec_pages p) then
          Hashtbl.add sec.sec_pages p (Kmem.page_generation t.kmem p)
      done

let c_torn = Obs.Counter.make "target.torn"

let end_consistent t sec =
  t.sections <- List.filter (fun s -> s != sec) t.sections;
  let dirty =
    Hashtbl.fold
      (fun p stamp acc ->
        if stamp > sec.sec_start || Kmem.page_generation t.kmem p <> stamp then p :: acc
        else acc)
      sec.sec_pages []
  in
  (* coalesce adjacent dirty pages into [lo, hi) byte ranges *)
  let rec ranges = function
    | [] -> []
    | p :: rest ->
        let rec extend q = function
          | r :: tl when r = q + 1 -> extend r tl
          | tl -> (q, tl)
        in
        let q, rest = extend p rest in
        (p lsl Kmem.page_bits, (q + 1) lsl Kmem.page_bits) :: ranges rest
  in
  let dirty = ranges (List.sort compare dirty) in
  List.iter
    (fun (lo, hi) ->
      if Obs.enabled () then Obs.Counter.incr c_torn;
      record_fault t (Torn { lo; hi }))
    dirty;
  dirty

let consistent t f =
  let sec = begin_consistent t in
  match f () with
  | x -> (x, end_consistent t sec)
  | exception e ->
      ignore (end_consistent t sec);
      raise e

(* The (page, first-read generation stamp) pairs a section observed.  For
   a section that closed clean these are exactly the pages the build
   read, each with its still-current generation — the validity key an
   incremental re-plot needs: the snapshot is reusable until some page's
   generation moves. *)
let section_pages sec =
  Hashtbl.fold (fun p stamp acc -> (p, stamp) :: acc) sec.sec_pages []
  |> List.sort compare

let set_read_hook t h = t.read_hook <- h
let set_hook_fork t f = t.hook_fork <- f
let read_hook_armed t = t.read_hook <> None

(* Fire the chaos hook after a performed read.  The guard stops a hook
   whose mutators themselves go through this target from recursing. *)
let fire_read_hook t =
  match t.read_hook with
  | Some h when not t.in_hook ->
      t.in_hook <- true;
      Fun.protect ~finally:(fun () -> t.in_hook <- false) h
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Checked reads *)

(* First page is the null guard: reads there are null dereferences and
   are not performed at all. *)
let null_guard = 4096

(* Copy any injection faults Kmem recorded during a read into our own
   journal, so the box being extracted sees them. *)
let mirror_injected t c0 =
  if Kmem.fault_count t.kmem > c0 then
    List.iter
      (function Kmem.Injected at -> record_fault t (Injected { at }) | _ -> ())
      (Kmem.faults_since t.kmem c0)

(* Validate [a] against the allocation map.  Returns false when the
   read must be suppressed entirely (null page); otherwise the read
   proceeds — freed memory yields its poison bytes, wild memory zeros —
   with the matching fault recorded. *)
let validate t ~ctx a =
  if a >= 0 && a < null_guard then begin
    record_fault t (Null_deref { at = a; ctx });
    false
  end
  else begin
    (match Kmem.find_alloc t.kmem a with
    | Some (base, _, tag) ->
        if not (Kmem.is_live t.kmem a) then
          record_fault t (Use_after_free { obj = base; tag; at = a })
    | None -> record_fault t (Wild_access { at = a }));
    true
  end

(* Route one read over the transport (when attached).  The Kmem thunk
   only runs if the transport lets the read through: an open breaker, a
   dead link or an exhausted deadline budget refuses the read entirely,
   records the matching typed fault, and yields [default] — extraction
   degrades to broken boxes instead of blocking on a flaky link. *)
let transported t ~ctx ~at ~bytes ~default perform =
  match t.transport with
  | None -> perform ()
  | Some tr -> (
      match Transport.fetch tr ~bytes perform with
      | Ok v -> v
      | Error err ->
          (match err with
          | Transport.Deadline_exceeded -> record_fault t (Timed_out { at; ctx })
          | err ->
              record_fault t
                (Link_lost { at; ctx; detail = Transport.error_to_string err }));
          default)

(* ------------------------------------------------------------------ *)
(* Generation-validated read cache.

   The cache avoids transport round-trips, nothing else: a hit skips
   [Transport.fetch] but still performs the Kmem read, so read counters,
   consistent-section page registration, injection draws and the chaos
   hook all behave exactly as on the uncached path — a cached run and an
   uncached run issue the same Kmem read sequence.  Without a transport
   reads are local and free, so the cache is bypassed entirely (and
   counts nothing). *)

let c_hits = Obs.Counter.make "cache.hits"
let c_misses = Obs.Counter.make "cache.misses"
let c_coalesced = Obs.Counter.make "cache.coalesced_reads"

let pages_fresh t a n =
  let last = (a + max n 1 - 1) lsr Kmem.page_bits in
  let rec go p =
    p > last
    || (match Hashtbl.find_opt t.rcache p with
       | Some g -> g = Kmem.page_generation t.kmem p && go (p + 1)
       | None -> false)
  in
  go (a lsr Kmem.page_bits)

let fill_pages t a n =
  for p = a lsr Kmem.page_bits to (a + max n 1 - 1) lsr Kmem.page_bits do
    Hashtbl.replace t.rcache p (Kmem.page_generation t.kmem p)
  done

type cache_stats = { hits : int; misses : int; coalesced : int }

let cache_stats t = { hits = t.ch_hits; misses = t.ch_misses; coalesced = t.ch_coalesced }

let reset_cache_stats t =
  t.ch_hits <- 0;
  t.ch_misses <- 0;
  t.ch_coalesced <- 0

let set_read_cache t on =
  t.cache_on <- on;
  if not on then Hashtbl.reset t.rcache

let read_cache_enabled t = t.cache_on
let clear_read_cache t = Hashtbl.reset t.rcache

(* The cache only ever substitutes for fetches the transport would have
   served: while the link is down or the breaker is open, every read
   must go through (and be refused by) the transport, so that crash
   semantics — stale panes, Link_lost faults, frozen read counters —
   are identical with and without caching. *)
let cache_usable t tr =
  t.cache_on && Transport.link tr = Transport.Up && Transport.breaker tr = Transport.Closed

(* The running hit rate as a metrics gauge, refreshed on every cache
   decision while obs is on — so cache effectiveness shows up in the
   gauges registry of any BENCH_*.json, not only as raw counters. *)
let hit_rate_gauge t =
  let total = t.ch_hits + t.ch_misses in
  if total > 0 then
    Obs.Metrics.set_gauge "cache.hit_rate" (float_of_int t.ch_hits /. float_of_int total)

let cache_hit t =
  t.ch_hits <- t.ch_hits + 1;
  if Obs.enabled () then begin
    Obs.Counter.incr c_hits;
    hit_rate_gauge t
  end

let cache_miss t =
  if t.cache_on then begin
    t.ch_misses <- t.ch_misses + 1;
    if Obs.enabled () then begin
      Obs.Counter.incr c_misses;
      hit_rate_gauge t
    end
  end

(* Struct-granular coalescing: fetch a whole object extent in one
   transport round-trip and stamp its pages, so the per-field reads that
   follow are cache hits (one packet per box instead of one per field,
   like GDB's 'g'-packet batching).  On a refused fetch nothing is
   recorded or stamped: each field read then goes through the transport
   individually and degrades per-field, keeping [BROKEN]/[TORN]
   semantics byte-identical to the uncoalesced path.  The prefetch
   performs no Kmem read — no counters, no section registration, no
   injection draw — so it is invisible to everything but the wire. *)
let prefetch t a n =
  match t.transport with
  | None -> ()
  | Some tr ->
      if cache_usable t tr && n > 0
         && not (a >= 0 && a < null_guard)
         && not (pages_fresh t a n)
      then
        match Transport.fetch tr ~bytes:n (fun () -> ()) with
        | Ok () ->
            t.ch_coalesced <- t.ch_coalesced + 1;
            if Obs.enabled () then Obs.Counter.incr c_coalesced;
            fill_pages t a n
        | Error _ -> ()

let read_scalar t ~ctx a size signed =
  if not (validate t ~ctx a) then 0
  else begin
    let perform () =
      Obs.Counter.incr c_reads;
      Obs.Counter.add c_bytes size;
      observe_read t a size;
      let c0 = Kmem.fault_count t.kmem in
      let v =
        match (size, signed) with
        | 1, false -> Kmem.read_u8 t.kmem a
        | 1, true -> Kmem.read_i8 t.kmem a
        | 2, false -> Kmem.read_u16 t.kmem a
        | 2, true -> Kmem.read_i16 t.kmem a
        | 4, false -> Kmem.read_u32 t.kmem a
        | 4, true -> Kmem.read_i32 t.kmem a
        | _ -> Kmem.read_u64 t.kmem a
      in
      mirror_injected t c0;
      v
    in
    let go () =
      match t.transport with
      | None -> perform ()
      | Some tr when cache_usable t tr && pages_fresh t a size ->
          cache_hit t;
          perform ()
      | Some _ ->
          cache_miss t;
          transported t ~ctx ~at:a ~bytes:size ~default:0 (fun () ->
              let v = perform () in
              if t.cache_on then fill_pages t a size;
              v)
    in
    let v = if Obs.enabled () then Obs.with_span ~cat:"target" "target.read" go else go () in
    fire_read_hook t;
    v
  end

let read_str t ~ctx a reader =
  if not (validate t ~ctx a) then ""
  else begin
    let perform () =
      let c0 = Kmem.fault_count t.kmem in
      let s = reader t.kmem a in
      Obs.Counter.incr c_reads;
      Obs.Counter.add c_bytes (String.length s);
      observe_read t a (max 8 (String.length s + 1));
      mirror_injected t c0;
      s
    in
    let go () =
      match t.transport with
      | None -> perform ()
      (* A string's extent is unknown before the read; the hit test
         validates its first 8-byte granule.  Data is always re-read
         from Kmem, so a stale tail page can only mean an extra skipped
         round-trip, never stale bytes. *)
      | Some tr when cache_usable t tr && pages_fresh t a 8 ->
          cache_hit t;
          perform ()
      | Some _ ->
          cache_miss t;
          transported t ~ctx ~at:a ~bytes:8 ~default:"" (fun () ->
              let s = perform () in
              if t.cache_on then fill_pages t a (max 8 (String.length s + 1));
              s)
    in
    let s = if Obs.enabled () then Obs.with_span ~cat:"target" "target.read" go else go () in
    fire_read_hook t;
    s
  end

(* A pointer about to be followed: a value misaligned for its pointee is
   the signature of a low-bit-tagged or garbage pointer (the paper's
   StackRot plot is full of them). *)
let check_align t ~ctx pointee p =
  if p < 0 || p >= null_guard then begin
    let al = try Ctype.alignof t.reg pointee with Invalid_argument _ -> 1 in
    if al > 1 && p land (al - 1) <> 0 then
      record_fault t (Misaligned { at = p; want = al; ctx })
  end

(* ------------------------------------------------------------------ *)
(* Constructors *)

let obj typ a = { typ; loc = Lval a }
let ptr_to typ a = { typ = Ctype.Ptr typ; loc = Rval a }
let int_value n = { typ = Ctype.long; loc = Rval n }
let bool_value b = { typ = Ctype.Bool; loc = Rval (if b then 1 else 0) }
let str_value s = { typ = Ctype.charp; loc = Rstr s }
let null_ptr = { typ = Ctype.voidp; loc = Rval 0 }

(* ------------------------------------------------------------------ *)
(* Observation *)

let as_int t v =
  match v.loc with
  | Rval n -> n
  | Rstr _ -> invalid_arg "Target.as_int: string value has no integer reading"
  | Lval a -> (
      match Ctype.strip t.reg v.typ with
      | Ctype.Ptr _ -> read_scalar t ~ctx:"as_int" a 8 false
      | Ctype.Bool -> read_scalar t ~ctx:"as_int" a 1 false
      | Ctype.Int ik -> read_scalar t ~ctx:"as_int" a ik.Ctype.ik_size ik.Ctype.ik_signed
      (* aggregates (and void/function symbols) decay to their address *)
      | Ctype.Array _ | Ctype.Named _ | Ctype.Func _ | Ctype.Void -> a)

let addr_of v =
  match v.loc with
  | Lval a -> a
  | Rval _ | Rstr _ -> invalid_arg "Target.addr_of: not an lvalue"

(* The integer value of a pointer-typed [v]. *)
let pointer_value t v =
  match v.loc with
  | Rval n -> n
  | Rstr _ -> invalid_arg "Target.deref: string value is not a pointer"
  | Lval a -> read_scalar t ~ctx:"pointer load" a 8 false

let truthy t v =
  match v.loc with Rstr s -> s <> "" | Rval n -> n <> 0 | Lval _ -> as_int t v <> 0

let is_charlike = function
  | Ctype.Int ik -> ik.Ctype.ik_size = 1
  | Ctype.Void -> true
  | _ -> false

let as_string t v =
  match (v.loc, v.typ) with
  | Rstr s, _ -> s
  | _, Ctype.Array (elt, n) when is_charlike elt ->
      let a = addr_of v in
      let raw = read_str t ~ctx:"string read" a (fun m x -> Kmem.read_bytes m x n) in
      (match String.index_opt raw '\000' with
      | Some i -> String.sub raw 0 i
      | None -> raw)
  | _, Ctype.Ptr elt when is_charlike elt ->
      let p = pointer_value t v in
      (* NULL string pointers are routine in kernel structs; read as "" *)
      if p = 0 then ""
      else read_str t ~ctx:"C-string read" p (fun m x -> Kmem.read_cstring m x)
  | _ ->
      invalid_arg
        (Printf.sprintf "Target.as_string: %s has no string reading" (Ctype.to_string v.typ))

let load t v =
  match v.loc with
  | Rval _ | Rstr _ -> v
  | Lval _ -> (
      match Ctype.strip t.reg v.typ with
      | Ctype.Int _ | Ctype.Bool | Ctype.Ptr _ -> { typ = v.typ; loc = Rval (as_int t v) }
      | _ -> v)

(* ------------------------------------------------------------------ *)
(* Navigation *)

let member t v fname =
  let comp, base =
    match v.typ with
    | Ctype.Named n -> (
        match v.loc with
        | Lval a -> (n, a)
        | Rval _ | Rstr _ ->
            invalid_arg
              (Printf.sprintf "Target.member: %S value is not in memory (.%s)" n fname))
    | Ctype.Ptr (Ctype.Named n) ->
        (* GDB-style auto-dereference: p->f *)
        let p = pointer_value t v in
        check_align t ~ctx:("->" ^ fname) (Ctype.Named n) p;
        (n, p)
    | ty ->
        invalid_arg
          (Printf.sprintf "Target.member: %s has no member %S" (Ctype.to_string ty) fname)
  in
  match Ctype.field_opt t.reg comp fname with
  | None -> invalid_arg (Printf.sprintf "Target.member: no field %S in %S" fname comp)
  | Some f -> (
      match f.Ctype.fbit with
      | None -> { typ = f.Ctype.ftyp; loc = Lval (base + f.Ctype.foffset) }
      | Some (bit, width) ->
          (* a bit range has no address: extract immediately *)
          let unit_sz = Ctype.sizeof t.reg f.Ctype.ftyp in
          let raw = read_scalar t ~ctx:("." ^ fname) (base + f.Ctype.foffset) unit_sz false in
          { typ = f.Ctype.ftyp; loc = Rval ((raw lsr bit) land ((1 lsl width) - 1)) })

let member_path t v path =
  List.fold_left (member t) v (String.split_on_char '.' path)

let index t v i =
  match v.typ with
  | Ctype.Array (elt, _) ->
      (* no bounds check: GDB computes the address regardless, and the
         liveness check on the eventual read flags genuine overruns *)
      let base =
        match v.loc with
        | Lval a -> a
        | Rval _ | Rstr _ -> invalid_arg "Target.index: array value is not in memory"
      in
      { typ = elt; loc = Lval (base + (i * Ctype.sizeof t.reg elt)) }
  | Ctype.Ptr ((Ctype.Void | Ctype.Func _) as e) ->
      invalid_arg (Printf.sprintf "Target.index: cannot index %s pointer" (Ctype.to_string e))
  | Ctype.Ptr elt ->
      let p = pointer_value t v in
      check_align t ~ctx:(Printf.sprintf "[%d]" i) elt p;
      { typ = elt; loc = Lval (p + (i * Ctype.sizeof t.reg elt)) }
  | ty -> invalid_arg (Printf.sprintf "Target.index: %s is not indexable" (Ctype.to_string ty))

let deref t v =
  match v.typ with
  | Ctype.Ptr (Ctype.Func _) -> invalid_arg "Target.deref: function pointer"
  | Ctype.Ptr Ctype.Void -> invalid_arg "Target.deref: void pointer"
  | Ctype.Ptr inner ->
      let p = pointer_value t v in
      check_align t ~ctx:"deref" inner p;
      { typ = inner; loc = Lval p }
  | ty -> invalid_arg (Printf.sprintf "Target.deref: %s is not a pointer" (Ctype.to_string ty))

let cast t ty v =
  let bad () =
    record_fault t (Bad_cast { from_ = Ctype.to_string v.typ; to_ = Ctype.to_string ty });
    { typ = ty; loc = v.loc }
  in
  match v.loc with
  | Rstr _ -> ( match Ctype.strip t.reg ty with Ctype.Ptr _ -> { typ = ty; loc = v.loc } | _ -> bad ())
  | Rval _ | Lval _ -> (
      match Ctype.strip t.reg ty with
      | Ctype.Bool -> { typ = ty; loc = Rval (if as_int t v <> 0 then 1 else 0) }
      | Ctype.Int ik ->
          let n = as_int t v in
          let n =
            if ik.Ctype.ik_size >= 8 then n
            else
              let bits = 8 * ik.Ctype.ik_size in
              let m = n land ((1 lsl bits) - 1) in
              if ik.Ctype.ik_signed && m land (1 lsl (bits - 1)) <> 0 then m - (1 lsl bits)
              else m
          in
          { typ = ty; loc = Rval n }
      | Ctype.Ptr _ -> { typ = ty; loc = Rval (as_int t v) }
      | Ctype.Named _ | Ctype.Array _ -> (
          (* reinterpret memory: an integer becomes the address *)
          match v.loc with
          | Lval a | Rval a -> { typ = ty; loc = Lval a }
          | Rstr _ -> bad ())
      | Ctype.Void | Ctype.Func _ -> bad ())

let container_of t a comp field =
  obj (Ctype.Named comp) (a - Ctype.offsetof t.reg comp field)

(* ------------------------------------------------------------------ *)
(* Symbols, macros, helpers *)

let add_symbol t name v = Hashtbl.replace t.symbols name v
let add_macro t name n = Hashtbl.replace t.macros name n
let add_helper t name h = Hashtbl.replace t.helpers name h

let lookup_symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some v -> Some v
  | None -> (
      match Hashtbl.find_opt t.macros name with
      | Some n -> Some (int_value n)
      | None -> (
          match Ctype.lookup_enum_const t.reg name with
          | Some (ename, v) -> Some { typ = Ctype.Named ename; loc = Rval v }
          | None -> None))

let lookup_helper t name = Hashtbl.find_opt t.helpers name

let call_helper t name args =
  match lookup_helper t name with
  | Some h -> h t args
  | None -> invalid_arg (Printf.sprintf "Target.call_helper: unknown helper %S" name)

(* ------------------------------------------------------------------ *)
(* Read accounting and latency models *)

type stats = { reads : int; bytes : int }

let stats t = { reads = Kmem.read_count t.kmem; bytes = Kmem.bytes_read t.kmem }
let reset_stats t = Kmem.reset_counters t.kmem

(* The link cost model now lives in Transport (the connection layer owns
   its own latency profile); re-exported here so existing callers keep
   working unchanged. *)
type profile = Transport.profile = {
  pname : string;
  rtt_ms : float;
  byte_ms : float;
}

let profile = Transport.profile
let qemu_local = Transport.qemu_local
let kgdb_rpi = Transport.kgdb_rpi
let kgdb_rpi400 = Transport.kgdb_rpi400

let simulated_ms p st =
  (float_of_int st.reads *. p.rtt_ms) +. (float_of_int st.bytes *. p.byte_ms)

(* ------------------------------------------------------------------ *)
(* Per-lane forks (parallel extraction).

   A fork is a target over a [Kmem.fork] view of the base memory for
   one extraction lane: the type registry, symbol/macro/helper tables
   and allocation map are shared physically (read-only during a
   parallel region), everything mutable — journal, sinks, sections,
   read cache, counters, hooks — is lane-local.  Combined with the
   per-lane injection/chaos/transport streams, a lane's entire
   execution is a deterministic function of its lane id and program
   slice, independent of domain count and steal schedule. *)

let fork ?(lane = 0) t =
  let kmem = Kmem.fork ~lane t.kmem in
  let ft =
    {
      kmem;
      reg = t.reg;
      symbols = t.symbols;
      macros = t.macros;
      helpers = t.helpers;
      journal = [];
      nfaults = 0;
      sinks = [];
      transport = Option.map (fun tr -> Transport.fork ~lane tr) t.transport;
      sections = [];
      read_hook = None;
      in_hook = false;
      hook_fork = t.hook_fork;
      (* lanes start cold: a warm-start copy of the parent's page cache
         would depend on when the lane actually ran — a schedule
         dependence, exactly what the lane contract forbids *)
      rcache = Hashtbl.create 64;
      cache_on = t.cache_on;
      ch_hits = 0;
      ch_misses = 0;
      ch_coalesced = 0;
    }
  in
  (match t.hook_fork with Some f -> ft.read_hook <- f ~lane kmem | None -> ());
  ft

let is_fork t = Kmem.is_fork t.kmem

(* Deterministic join: fold a lane's accounting back into the parent.
   Callers absorb lanes in lane order, so the merged journal, counters
   and cache statistics are identical across domain counts.  Only page
   stamps still valid against the parent's memory are adopted into the
   read cache (lane-local chaos writes stamp view-only generations that
   must not leak). *)
let absorb t child =
  Kmem.absorb t.kmem child.kmem;
  t.nfaults <- t.nfaults + child.nfaults;
  t.journal <- child.journal @ t.journal;
  child.journal <- [];
  child.nfaults <- 0;
  t.ch_hits <- t.ch_hits + child.ch_hits;
  t.ch_misses <- t.ch_misses + child.ch_misses;
  t.ch_coalesced <- t.ch_coalesced + child.ch_coalesced;
  child.ch_hits <- 0;
  child.ch_misses <- 0;
  child.ch_coalesced <- 0;
  if t.cache_on then
    Hashtbl.iter
      (fun p g -> if Kmem.page_generation t.kmem p = g then Hashtbl.replace t.rcache p g)
      child.rcache;
  match (t.transport, child.transport) with
  | Some tr, Some ctr -> Transport.absorb tr ctr
  | _ -> ()
