(** The paper's evaluation workload (§5.4): five processes, each with two
    extra threads, repeatedly performing IPC and mapping/unmapping files
    and anonymous pages — plus population of every other subsystem that
    Table 2 visualizes (IRQs, timers, workqueues, swap, devices, sockets,
    pipes, signals), so all figures have realistic content.

    Deterministic: a seeded xorshift PRNG drives all choices, so plots,
    tests and benchmarks are reproducible. *)

type t

val create : ?seed:int -> Kstate.t -> t

val populate_system : t -> unit
(** Kernel threads, IRQs, timers, workqueues, swap areas, devices, and
    the shared IPC objects. *)

val spawn_processes : t -> Kmem.addr
(** systemd (pid 1) plus the 5 x (leader + 2 threads) worker population;
    returns the systemd task. *)

val step : t -> unit
(** One iteration of per-process activity: file opens + mmaps, anonymous
    mapping churn, semaphore and message-queue traffic. *)

val populate_userspace : t -> unit
(** Pipes, sockets and signal traffic on the first workers (used by the
    pipe/socket/signal figures). *)

val simulate_time : t -> unit
(** Scheduler ticks (vruntime divergence + preemptions), timer-wheel
    processing, heap page faults, and one worker thread exiting as a
    zombie — so plots show varied, realistic task states. *)

val run : ?iters:int -> t -> unit
(** The full standard workload: {!populate_system}, {!spawn_processes},
    [iters] (default 3) {!step}s, {!populate_userspace},
    {!simulate_time}. *)

val leaders : t -> Kmem.addr list
(** The five worker group leaders, in spawn order. *)

val rand : t -> int -> int
(** The workload's deterministic PRNG (exposed for tests). *)

(** Chaos harness: seeded mutators fired between target reads (via
    {!Target.set_read_hook}), simulating the live kernel changing under
    the debugger mid-plot.  Mutations are weighted toward cheap stores
    (vruntime bumps, comm scribbles) with occasional timer adds and
    mmap/munmap churn — the latter frees and rebuilds maple nodes, the
    StackRot-shaped race.  All writes bypass the target (straight to
    {!Kmem}), so firing from inside a read cannot recurse; an
    independent PRNG keeps the base workload deterministic. *)
module Chaos : sig
  type chaos

  val create : ?seed:int -> t -> rate:float -> chaos
  (** [rate] — probability that one performed read fires one mutation. *)

  val arm : chaos -> Target.t -> unit
  (** Install the chaos hook on the target. *)

  val arm_split : chaos -> Target.t -> unit
  (** Arm for parallel extraction: the classic hook races the base
      target's (serial) reads, and a {!Target.set_hook_fork} forker
      gives every extraction lane its own mutator — an xorshift64*
      stream seeded [seed lxor lane], firing write-only mutations
      (vruntime bumps, comm scribbles, at addresses precomputed here)
      through the lane's own Kmem view.  A lane's mutation sequence is
      a function of its lane id alone, so chaos-storm runs are
      identical across [--domains 1/2/4]; the shared base memory stays
      untouched by lane chaos. *)

  val disarm : Target.t -> unit
  (** Remove the read hook and any lane forker from the target. *)

  val fired : chaos -> int
  (** Mutations performed so far. *)

  val split_fired : chaos -> int
  (** Mutations fired by the per-lane split streams (all lanes summed;
      deterministic across domain counts). *)

  val hook : chaos -> unit -> unit
  (** The raw hook (exposed for tests driving it manually). *)

  val mutate : chaos -> unit
  (** Perform one mutation unconditionally (exposed for tests). *)
end

(** Deterministic chaos campaigns: a scripted fault timeline replacing
    {!Chaos}'s probabilistic firing.  The module is a pure parser —
    text in, script out; {e running} a campaign is the bench driver's
    job ([bench --campaign <file>]), since it owns the server and its
    targets.  Grammar, one directive per line ([#] starts a comment):

    {v
    campaign <name>
    targets <t1> [<t2> ...]          # default: t1
    sessions <n>                     # default: 2
    weights <w1> [<w2> ...]          # per-session priority, pads with 1s
    ops <n>                          # total driven ops, default 100
    at <op> phase <name>             # label ops from <op> onward
    at <op> link_down <target>
    at <op> link_up <target>
    at <op> fault_rate <target> <r>  # base wire weather at rate r
    at <op> bit_flip_storm <target>  # memory-corruption burst
    at <op> recover <target>         # clear faults/injection, reconnect
    expect <key> <float>             # availability/p95/TTR gate
    v} *)
module Campaign : sig
  type event =
    | Phase of string
    | Link_down of string
    | Link_up of string
    | Fault_rate of string * float
    | Bit_flip_storm of string
    | Recover of string
    | Crash
        (** [crash_at <op>]: kill the fleet before that op; the bench
            recovers it from the durable WAL *)
    | Corrupt_journal
        (** [corrupt_journal <op>]: flip a seeded bit in a committed
            WAL record — silent corruption the later crash must survive *)

  type t = {
    cname : string;
    ctargets : string list;
    csessions : int;
    cweights : int list;
    cops : int;
    events : (int * event) list;  (** [(op mark, event)], marks ascending *)
    expects : (string * float) list;
  }

  exception Parse_error of { line : int; msg : string }

  val parse : string -> t
  (** @raise Parse_error with the 1-based line number on bad input. *)

  val event_to_string : event -> string

  val events_at : t -> int -> event list
  (** The events scheduled exactly at (1-based) op [op] — fired by the
      driver before that op runs. *)

  val weight_at : t -> int -> int
  (** Weight for 0-based session index [i]; 1 when unspecified. *)
end
