(** The evaluation workload of the paper (§5.4): five processes, each with
    two extra threads, repeatedly performing IPC, mapping and unmapping
    files and anonymous pages — plus population of every other subsystem
    visualized in Table 2 (sockets, pipes, timers, IRQs, workqueues, swap
    areas, devices, slab caches), so that all figures have realistic
    content.

    Deterministic: a seeded xorshift PRNG drives all choices. *)

type t = {
  kernel : Kstate.t;
  mutable procs : (Kmem.addr * Kmem.addr list) list;  (** leader, threads *)
  mutable pipes : Kmem.addr list;
  mutable files : (int * Kmem.addr) list;
  mutable rng : int;
}

let rand t n =
  (* xorshift64* *)
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x land max_int;
  t.rng mod n

let create ?(seed = 42) kernel = { kernel; procs = []; pipes = []; files = []; rng = seed + 1 }

(* Map bases spread per process so VMAs don't collide. *)
let anon_base pid slot = 0x0000_5500_0000_0000 + (pid * 0x1000_0000) + (slot * 0x10_0000)

(** Boot-time population: kernel threads, devices, IRQs, timers,
    workqueues, swap, IPC objects. *)
let populate_system t =
  let k = t.kernel in
  let ctx = k.Kstate.ctx in
  ignore ctx;
  (* Kernel threads that exist on any Linux box. *)
  List.iteri
    (fun i comm -> ignore (Ksyscall.spawn_kthread k ~comm ~cpu:(i mod k.Kstate.ncpus)))
    [ "kthreadd"; "rcu_gp"; "ksoftirqd/0"; "kworker/0:1"; "kworker/1:0"; "kswapd0" ];
  (* IRQs *)
  ignore (Kirq.set_chip k.Kstate.irqs ~irq:1 ~chip_name:"IO-APIC");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:1 ~name:"i8042" ~handler:"atkbd_interrupt");
  ignore (Kirq.set_chip k.Kstate.irqs ~irq:4 ~chip_name:"IO-APIC");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:4 ~name:"ttyS0" ~handler:"serial8250_interrupt");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:4 ~name:"serial" ~handler:"serial_shared_irq");
  ignore (Kirq.set_chip k.Kstate.irqs ~irq:11 ~chip_name:"PCI-MSI");
  ignore (Kirq.request_irq k.Kstate.irqs ~irq:11 ~name:"virtio0" ~handler:"vring_interrupt");
  (* Timers *)
  List.iter
    (fun (cpu, delta, fn) -> ignore (Ktimer.add_timer k.Kstate.timers ~cpu ~delta fn))
    [ (0, 10, "process_timeout"); (0, 250, "delayed_work_timer_fn"); (0, 999, "tcp_keepalive_timer");
      (1, 100, "process_timeout"); (1, 512, "neigh_timer_handler") ];
  (* Workqueues, incl. the paper's heterogeneous mm_percpu_wq. *)
  let mm_wq = Kworkqueue.alloc_workqueue k.Kstate.wq "mm_percpu_wq" in
  ignore (Kworkqueue.alloc_workqueue k.Kstate.wq "events");
  ignore (Kworkqueue.alloc_workqueue k.Kstate.wq "kblockd");
  ignore mm_wq;
  let vw = Kworkqueue.new_vmstat_work k.Kstate.wq ~cpu:0 ~interval:100 in
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0
    (Kcontext.fld k.Kstate.ctx vw "vmstat_work_s" "work.work");
  let lw = Kworkqueue.new_lru_drain_work k.Kstate.wq ~cpu:0 in
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 (Kcontext.fld k.Kstate.ctx lw "lru_drain_work_s" "work");
  let cw = Kworkqueue.new_compact_work k.Kstate.wq ~zone:k.Kstate.buddy.Kbuddy.zone ~order:2 in
  Kworkqueue.queue_work k.Kstate.wq ~cpu:0 (Kcontext.fld k.Kstate.ctx cw "mm_compact_work_s" "work");
  (* Swap *)
  let swap_dentry = Kvfs.create_file k.Kstate.vfs ~dir:k.Kstate.root_dentry ~name:"swapfile" ~size:(64 * 4096) in
  let swap_file = Kvfs.open_dentry k.Kstate.vfs swap_dentry ~flags:2 in
  ignore (Kswap.swapon k.Kstate.swap ~file:swap_file ~bdev:0 ~pages:64 ~prio:(-2) ~used:13);
  (* Device model *)
  let bus = Kobj.new_bus ctx ~name:"virtio" in
  let drv = Kfuncs.create () |> fun _ -> Kobj.new_driver ctx k.Kstate.funcs ~name:"virtio_blk" ~bus in
  let dev0 = Kobj.new_device ctx ~name:"virtio0" ~parent:0 ~bus ~driver:drv ~kset:k.Kstate.devices_kset in
  ignore (Kobj.new_device ctx ~name:"virtio0p1" ~parent:dev0 ~bus ~driver:drv ~kset:k.Kstate.devices_kset);
  (* IPC objects shared by the worker processes. *)
  ignore (Kipc.semget k.Kstate.ipc ~key:0x5eed ~nsems:4);
  ignore (Kipc.msgget k.Kstate.ipc ~key:0x6eed ~qbytes:16384)

(** Spawn the 5 x (1+2) process/thread population. *)
let spawn_processes t =
  let k = t.kernel in
  let init = k.Kstate.init_task in
  (* pid 1: init/systemd, parent of the workers. *)
  let systemd = Ksyscall.spawn_process k ~parent:init ~comm:"systemd" ~cpu:0 in
  for i = 0 to 4 do
    let cpu = i mod k.Kstate.ncpus in
    let leader = Ksyscall.spawn_process k ~parent:systemd ~comm:(Printf.sprintf "worker-%d" i) ~cpu in
    let threads =
      List.init 2 (fun j ->
          Ksyscall.spawn_thread k ~leader ~comm:(Printf.sprintf "worker-%d/t%d" i j)
            ~cpu:((cpu + j) mod k.Kstate.ncpus))
    in
    t.procs <- (leader, threads) :: t.procs
  done;
  t.procs <- List.rev t.procs;
  systemd

(** One iteration of the per-thread activity: IPC + file/anon mappings. *)
let step t =
  let k = t.kernel in
  List.iteri
    (fun i (leader, _threads) ->
      let pid = Ktask.pid k.Kstate.ctx leader in
      (* File work: open + mmap + page cache population. *)
      if rand t 2 = 0 then begin
        let name = Printf.sprintf "data-%d-%d.bin" i (rand t 100) in
        let fd, file = Ksyscall.openat k leader ~name ~size:(2 * 4096) in
        t.files <- (fd, file) :: t.files;
        ignore
          (Ksyscall.mmap_file k leader ~file
             ~start:(anon_base pid (16 + rand t 8))
             ~npages:2 ~writable:(rand t 2 = 0))
      end;
      (* Anonymous mapping churn. *)
      let vma = Ksyscall.mmap_anon k leader ~start:(anon_base pid (rand t 8)) ~npages:(1 + rand t 4) ~writable:true in
      if rand t 3 = 0 then Ksyscall.munmap k leader vma;
      (* IPC. *)
      (match Kxarray.load k.Kstate.ctx
               (Kcontext.fld k.Kstate.ctx (Kipc.ids_addr k.Kstate.ipc Kipc.ipc_sem_ids)
                  "ipc_ids" "ipcs_idr.idr_rt")
               0
       with
      | 0 -> ()
      | sma -> Kipc.semop k.Kstate.ipc sma ~idx:(rand t 4) ~delta:(if rand t 2 = 0 then 1 else -1) ~pid);
      (match Kxarray.load k.Kstate.ctx
               (Kcontext.fld k.Kstate.ctx (Kipc.ids_addr k.Kstate.ipc Kipc.ipc_msg_ids)
                  "ipc_ids" "ipcs_idr.idr_rt")
               0
       with
      | 0 -> ()
      | q ->
          ignore (Kipc.msgsnd k.Kstate.ipc q ~mtype:(1 + rand t 3) ~size:(64 + rand t 192));
          if rand t 2 = 0 then ignore (Kipc.msgrcv k.Kstate.ipc q)))
    t.procs

(** Extra population used by specific figures: pipes, sockets, signals. *)
let populate_userspace t =
  let k = t.kernel in
  match t.procs with
  | [] -> ()
  | (p0, _) :: rest ->
      (* A page-cached data file on the first worker (deterministic, so
         figures that need one always find it). *)
      ignore (Ksyscall.openat k p0 ~name:"report.txt" ~size:(3 * 4096));
      (* Pipes on the first worker. *)
      let pipe, _, _ = Ksyscall.pipe k p0 in
      Ksyscall.write_pipe k pipe "hello-pipe";
      t.pipes <- pipe :: t.pipes;
      (* Sockets on the first two workers. *)
      ignore (Ksyscall.socket k p0 ~lport:43812 ~rport:443 ~backlog_skbs:2);
      (match rest with
      | (p1, _) :: _ ->
          ignore (Ksyscall.socket k p1 ~lport:51000 ~rport:80 ~backlog_skbs:0);
          (* Signals: p0 installs handlers; p1 signals p0. *)
          Ksyscall.sigaction k p0 ~signo:2 ~handler:(`Handler "sigint_handler");
          Ksyscall.sigaction k p0 ~signo:15 ~handler:(`Handler "sigterm_handler");
          Ksyscall.sigaction k p0 ~signo:17 ~handler:`Ignore;
          Ksyscall.kill k ~target:p0 ~signo:2 ~from:p1
      | [] -> ())

(** Let the simulated kernel "run" for a while: scheduler ticks on every
    CPU (so vruntimes diverge and preemptions happen), timer-wheel
    processing, page faults on the workers' heaps, and one worker thread
    exiting — leaving a reapable zombie so plots show varied task
    states. *)
let simulate_time t =
  let k = t.kernel in
  let ctx = k.Kstate.ctx in
  for _ = 1 to 8 do
    for cpu = 0 to k.Kstate.ncpus - 1 do
      ignore (Ksched.task_tick ctx (Kstate.rq_of k cpu) ~delta:(500_000 + rand t 1_000_000))
    done
  done;
  ignore (Ktimer.run_timers k.Kstate.timers 16);
  List.iteri
    (fun i (leader, threads) ->
      (* touch the heap: anonymous faults populate the rmap *)
      ignore
        (Kmm.handle_anon_fault k.Kstate.mm k.Kstate.buddy (Ksyscall.mm_of k leader)
           ~va:(Ksyscall.heap_base + (rand t 4 * 4096)));
      (* the last worker's second thread exits and stays a zombie *)
      if i = 4 then
        match threads with
        | _ :: t2 :: _ -> Ksyscall.exit_task k t2 ~code:0
        | _ -> ())
    t.procs

(** Run the full standard workload: boot population, processes, [iters]
    activity steps, userspace extras, then a stretch of simulated time. *)
let run ?(iters = 3) t =
  populate_system t;
  ignore (spawn_processes t);
  for _ = 1 to iters do
    step t
  done;
  populate_userspace t;
  simulate_time t

let leaders t = List.map fst t.procs

(* ------------------------------------------------------------------ *)
(* Chaos: interleaved mutators racing an extraction *)

(** Mutators fired between target reads (via {!Target.set_read_hook}) at
    a seeded rate, simulating the live kernel changing under the
    debugger mid-[vplot] — the hazard consistent sections exist to
    catch.  All writes go straight through {!Kcontext}/{!Kmem} (never
    through the target), so firing from inside a read cannot recurse;
    an independent PRNG keeps the base workload's determinism intact. *)
module Chaos = struct
  type chaos = {
    wl : t;
    rate : float;  (** probability a performed read triggers one mutation *)
    cseed : int;  (** the seed, kept for deriving per-lane streams *)
    mutable crng : int;
    mutable fired : int;  (** mutations performed so far *)
    smux : Mutex.t;  (** guards [sfired] (lane hooks fire on any domain) *)
    mutable sfired : int;  (** split-mode mutations fired across all lanes *)
  }

  let create ?(seed = 0xC4405) wl ~rate =
    { wl; rate; cseed = seed; crng = (seed * 2) + 1; fired = 0;
      smux = Mutex.create (); sfired = 0 }

  let crand c n =
    let x = c.crng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    c.crng <- x land max_int;
    c.crng mod n

  (* One small mutation of live kernel state.  Weighted toward cheap
     single-word stores (vruntime bumps, comm scribbles); occasionally a
     timer add or an mmap/munmap — the latter frees and rebuilds maple
     nodes, the StackRot-shaped race.  Must never raise. *)
  let mutate c =
    let k = c.wl.kernel in
    let ctx = k.Kstate.ctx in
    match c.wl.procs with
    | [] -> ()
    | procs -> (
        let leader, _ = List.nth procs (crand c (List.length procs)) in
        match crand c 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            (* scheduler activity: bump the leader's vruntime *)
            let v = Kcontext.r64 ctx leader "task_struct" "se.vruntime" in
            Kcontext.w64 ctx leader "task_struct" "se.vruntime" (v + 1024 + crand c 4096)
        | 6 | 7 ->
            (* rename: scribble the comm field *)
            Kcontext.wstr ctx leader "task_struct" "comm" ~field_size:16
              (Printf.sprintf "chaos-%d" (crand c 1000))
        | 8 ->
            ignore
              (Ktimer.add_timer k.Kstate.timers ~cpu:(crand c k.Kstate.ncpus)
                 ~delta:(1 + crand c 1000) "chaos_timeout")
        | _ ->
            (* VMA churn: mmap (and sometimes munmap) frees + rebuilds
               the whole maple node generation under the walker *)
            let pid = Ktask.pid ctx leader in
            let vma =
              Ksyscall.mmap_anon k leader
                ~start:(anon_base pid (8 + crand c 4))
                ~npages:(1 + crand c 2) ~writable:true
            in
            if crand c 2 = 0 then Ksyscall.munmap k leader vma)

  (* The read hook itself: fire one mutation with probability [rate]. *)
  let hook c () =
    if c.rate > 0. && float_of_int (crand c 1_000_000) /. 1_000_000. < c.rate then begin
      c.fired <- c.fired + 1;
      mutate c
    end

  let arm c tgt = Target.set_read_hook tgt (Some (hook c))

  (* Per-lane chaos streams (parallel extraction).  One xorshift64*
     stream per lane, seeded [seed lxor lane], so a lane's mutation
     sequence is a function of its lane id alone — identical across
     --domains 1/2/4 by construction.  Lane mutations are write-only
     stores (vruntime bumps, comm scribbles) at addresses precomputed
     here through the base, performed through the lane's own Kmem view:
     the shared base stays quiescent while lanes run, and no
     allocation, timer or mmap path (all single-domain structures) is
     ever touched from a worker domain. *)
  let xs_next r =
    let x = !r in
    let x = x lxor (x lsr 12) in
    let x = x lxor ((x lsl 25) land 0x3FFF_FFFF_FFFF_FFFF) in
    let x = x lxor (x lsr 27) in
    let x = x * 0x2545F4914F6CDD1D land 0x3FFF_FFFF_FFFF_FFFF in
    r := x;
    x

  let xs_seed s =
    let s = (s lxor 0x1E3779B97F4A7C15) land 0x3FFF_FFFF_FFFF_FFFF in
    if s = 0 then 1 else s

  let arm_split c tgt =
    let ctx = c.wl.kernel.Kstate.ctx in
    let spots =
      c.wl.procs
      |> List.map (fun (leader, _) ->
             ( Kcontext.fld ctx leader "task_struct" "se.vruntime",
               Kcontext.fld ctx leader "task_struct" "comm" ))
      |> Array.of_list
    in
    (* Serial phases (traversals, merges) still race the classic hook
       on the base target; only lane reads get the split streams. *)
    Target.set_read_hook tgt (Some (hook c));
    Target.set_hook_fork tgt
      (Some
         (fun ~lane view ->
           if c.rate <= 0. || Array.length spots = 0 then None
           else begin
             let rng = ref (xs_seed (c.cseed lxor lane)) in
             let draw n = xs_next rng mod n in
             Some
               (fun () ->
                 if float_of_int (draw 1_000_000) /. 1_000_000. < c.rate then begin
                   Mutex.lock c.smux;
                   c.sfired <- c.sfired + 1;
                   Mutex.unlock c.smux;
                   let va, ca = spots.(draw (Array.length spots)) in
                   match draw 8 with
                   | 0 | 1 | 2 | 3 | 4 | 5 ->
                       Kmem.write_u64 view va
                         (Kmem.read_u64 view va + 1024 + draw 4096)
                   | _ ->
                       Kmem.write_cstring view ca ~field_size:16
                         (Printf.sprintf "chaos-%d" (draw 1000))
                 end)
           end))

  let disarm tgt =
    Target.set_read_hook tgt None;
    Target.set_hook_fork tgt None

  let fired c = c.fired

  let split_fired c =
    Mutex.lock c.smux;
    let n = c.sfired in
    Mutex.unlock c.smux;
    n
end

(* ------------------------------------------------------------------ *)
(* Campaigns: scripted, deterministic fault timelines *)

(** A chaos {e campaign} replaces the purely probabilistic chaos above
    with a scripted timeline: named phases, and fault events fired when
    the op counter reaches their mark.  The parser is pure (text in,
    script out); execution lives in the bench driver, which owns the
    targets.  Grammar (one directive per line, [#] comments):

    {v
    campaign <name>
    targets <t1> [<t2> ...]
    sessions <n>
    weights <w1> [<w2> ...]          # per-session, pads with 1s
    ops <n>                          # total ops driven per run
    at <op> phase <name>             # label the ops from <op> on
    at <op> link_down <target>
    at <op> link_up <target>
    at <op> fault_rate <target> <r>  # base wire weather at rate r
    at <op> bit_flip_storm <target>  # memory corruption burst
    at <op> recover <target>         # clear faults + injection, reconnect
    crash_at <op>                    # kill the fleet; recover from the WAL
    corrupt_journal <op>             # flip a bit in a committed WAL record
    expect <key> <float>             # gate checked by the bench
    v} *)
module Campaign = struct
  type event =
    | Phase of string
    | Link_down of string
    | Link_up of string
    | Fault_rate of string * float
    | Bit_flip_storm of string
    | Recover of string
    | Crash  (* kill the fleet; the bench recovers it from the durable WAL *)
    | Corrupt_journal  (* flip a seeded bit in a committed WAL record *)

  type t = {
    cname : string;
    ctargets : string list;
    csessions : int;
    cweights : int list;  (* padded with 1s at use sites *)
    cops : int;
    events : (int * event) list;  (* (op mark, event), marks ascending *)
    expects : (string * float) list;
  }

  exception Parse_error of { line : int; msg : string }

  let event_to_string = function
    | Phase p -> Printf.sprintf "phase %s" p
    | Link_down t -> Printf.sprintf "link_down %s" t
    | Link_up t -> Printf.sprintf "link_up %s" t
    | Fault_rate (t, r) -> Printf.sprintf "fault_rate %s %g" t r
    | Bit_flip_storm t -> Printf.sprintf "bit_flip_storm %s" t
    | Recover t -> Printf.sprintf "recover %s" t
    | Crash -> "crash (recover from durable WAL)"
    | Corrupt_journal -> "corrupt_journal"

  let parse text =
    let err ln msg = raise (Parse_error { line = ln; msg }) in
    let flt ln s =
      match float_of_string_opt s with
      | Some f -> f
      | None -> err ln (Printf.sprintf "%S is not a number" s)
    in
    let num ln s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> err ln (Printf.sprintf "%S is not a non-negative integer" s)
    in
    let name = ref "campaign" in
    let targets = ref [] in
    let sessions = ref 2 in
    let weights = ref [] in
    let ops = ref 100 in
    let events = ref [] in
    let expects = ref [] in
    String.split_on_char '\n' text
    |> List.iteri (fun i line ->
           let ln = i + 1 in
           let line =
             match String.index_opt line '#' with
             | Some j -> String.sub line 0 j
             | None -> line
           in
           let toks =
             String.split_on_char ' ' line
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun s -> s <> "")
           in
           match toks with
           | [] -> ()
           | [ "campaign"; n ] -> name := n
           | "targets" :: (_ :: _ as ts) -> targets := ts
           | [ "sessions"; n ] -> sessions := num ln n
           | "weights" :: (_ :: _ as ws) -> weights := List.map (num ln) ws
           | [ "ops"; n ] -> ops := num ln n
           | "at" :: mark :: rest ->
               let mark = num ln mark in
               let ev =
                 match rest with
                 | [ "phase"; p ] -> Phase p
                 | [ "link_down"; t ] -> Link_down t
                 | [ "link_up"; t ] -> Link_up t
                 | [ "fault_rate"; t; r ] -> Fault_rate (t, flt ln r)
                 | [ "bit_flip_storm"; t ] -> Bit_flip_storm t
                 | [ "recover"; t ] -> Recover t
                 | _ -> err ln "unknown event (want phase/link_down/link_up/fault_rate/bit_flip_storm/recover)"
               in
               events := (mark, ev) :: !events
           | [ "crash_at"; n ] -> events := (num ln n, Crash) :: !events
           | [ "corrupt_journal"; n ] -> events := (num ln n, Corrupt_journal) :: !events
           | [ "expect"; k; v ] -> expects := (k, flt ln v) :: !expects
           | w :: _ -> err ln (Printf.sprintf "unknown directive %S" w));
    {
      cname = !name;
      ctargets = (match !targets with [] -> [ "t1" ] | ts -> ts);
      csessions = max 1 !sessions;
      cweights = !weights;
      cops = max 1 !ops;
      events = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events);
      expects = List.rev !expects;
    }

  (* Events whose mark is exactly [op]; the bench fires these before
     driving op number [op] (1-based). *)
  let events_at c op = List.filter_map (fun (m, e) -> if m = op then Some e else None) c.events

  (* The session weight for 0-based session index [i] (missing entries
     default to 1, matching [open_session]'s default). *)
  let weight_at c i = match List.nth_opt c.cweights i with Some w -> max 1 w | None -> 1
end
