(** The simplified kernel object graph extracted by ViewCL (§2.2-§2.3 of
    the paper): vertices are Boxes, edges are Links, each box has one or
    more named Views of items, and display-control attributes that ViewQL
    queries update ([view], [trimmed], [collapsed], [direction]). *)

type box_id = int

(** Raw values recorded for ViewQL WHERE filtering. *)
type fval = Fint of int | Fstr of string | Fbool of bool | Faddr of int

type item =
  | Text of { label : string; value : string; raw : fval }
  | Link of { label : string; target : box_id option }
      (** [None] encodes a NULL link *)
  | Inline of { label : string; target : box_id }
      (** a nested box displayed inside this one *)

type direction = Horizontal | Vertical

type attrs = {
  mutable view : string;
  mutable trimmed : bool;
  mutable collapsed : bool;
  mutable direction : direction;
  mutable extra : (string * string) list;
}

let default_attrs () =
  { view = "default"; trimmed = false; collapsed = false; direction = Horizontal; extra = [] }

type box = {
  id : box_id;
  btype : string;  (** C type name ("task_struct"), or "" for virtual boxes *)
  bdef : string;  (** ViewCL Box definition name ("Task"), "" if anonymous *)
  addr : int;  (** address of the underlying object; 0 for virtual boxes *)
  size : int;  (** sizeof the underlying object; 0 for virtual boxes *)
  container : bool;  (** container boxes hold an ordered member sequence *)
  mutable views : (string * item list) list;  (** view name -> items *)
  mutable members : box_id list;  (** members, for containers *)
  fields : (string, fval) Hashtbl.t;  (** raw values for ViewQL *)
  attrs : attrs;
}

type t = {
  boxes : (box_id, box) Hashtbl.t;
  by_name : (string, box_id list ref) Hashtbl.t;
      (* C type name and ViewCL definition name -> ids, newest first;
         maintained by [add_box] so ViewQL typed selects need no scan *)
  mutable roots : box_id list;
  mutable next_id : int;
  mutable title : string;
  parent : t option;
      (* overlay fork (parallel extraction): lookups fall through to the
         parent, new boxes land in this graph under ids disjoint from
         the parent's.  The parent must stay quiescent while forks are
         read from other domains; only {!find}/{!get} walk the chain. *)
}

let create ?(title = "plot") () =
  { boxes = Hashtbl.create 64; by_name = Hashtbl.create 64; roots = []; next_id = 1; title;
    parent = None }

(* Lane-local ids start here: far above anything a real plot allocates
   (the interpreter's box budget is 20k per run), so a fork's ids never
   collide with the parent's and an id below the base seen inside a fork
   is unambiguously a parent reference. *)
let fork_id_base = 1 lsl 40

let fork g =
  { boxes = Hashtbl.create 64; by_name = Hashtbl.create 64; roots = [];
    next_id = max fork_id_base g.next_id; title = g.title; parent = Some g }

let is_local g id = Hashtbl.mem g.boxes id

let title g = g.title
let set_title g s = g.title <- s

let index_name g name id =
  if name <> "" then
    match Hashtbl.find_opt g.by_name name with
    | Some l -> l := id :: !l
    | None -> Hashtbl.add g.by_name name (ref [ id ])

let add_box g ~btype ~bdef ~addr ~size ~container =
  let id = g.next_id in
  g.next_id <- id + 1;
  let b =
    { id; btype; bdef; addr; size; container; views = []; members = [];
      fields = Hashtbl.create 8; attrs = default_attrs () }
  in
  Hashtbl.add b.fields "addr" (Faddr addr);
  Hashtbl.replace g.boxes id b;
  index_name g btype id;
  if bdef <> btype then index_name g bdef id;
  b

let rec find g id =
  match Hashtbl.find_opt g.boxes id with
  | Some b -> Some b
  | None -> ( match g.parent with Some p -> find p id | None -> None)

let get g id =
  match find g id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Vgraph.get: no box %d" id)

let set_root g id = g.roots <- g.roots @ [ id ]
let roots g = g.roots

(* Incremental re-plot runs the program again over the SAME graph: the
   old roots are dropped and the re-run appends the new ones.  Boxes
   stay (reused ones keep their ids); anything the new roots no longer
   reach is swept by the interpreter at the end of the run. *)
let clear_roots g = g.roots <- []

(* Restore a saved root list wholesale — the rollback path of a re-plot
   whose run raised after clear_roots. *)
let set_roots g ids = g.roots <- ids

(* Strip everything a box build produces — views, members, recorded
   fields, broken/torn/suspect verdicts — so the box can be re-extracted
   in place under its existing id.  Display attributes (view, trimmed,
   collapsed, direction, other extras) survive: they belong to the
   user's refinements, not to the extraction. *)
let reset_box b =
  b.views <- [];
  b.members <- [];
  Hashtbl.reset b.fields;
  Hashtbl.replace b.fields "addr" (Faddr b.addr);
  b.attrs.extra <-
    List.filter
      (fun (k, _) ->
        k <> "broken" && k <> "torn"
        && not (String.length k > 8 && String.sub k 0 8 = "suspect:"))
      b.attrs.extra

let set_view b vname items = b.views <- b.views @ [ (vname, items) ]

let record_field b name v = Hashtbl.replace b.fields name v

let field b name = Hashtbl.find_opt b.fields name

(* A box whose extraction hit memory faults: still rendered, visibly
   marked, filterable from ViewQL (WHERE broken == ...). *)
let mark_broken b reason =
  b.attrs.extra <- ("broken", reason) :: List.remove_assoc "broken" b.attrs.extra;
  record_field b "broken" (Fstr reason)

let broken b = List.assoc_opt "broken" b.attrs.extra

(* A box whose consistent-section retries were exhausted: its contents
   mix before/after state of a racing writer (the [reason] names the
   dirtied range).  Same degradation contract as [mark_broken]. *)
let mark_torn b reason =
  b.attrs.extra <- ("torn", reason) :: List.remove_assoc "torn" b.attrs.extra;
  record_field b "torn" (Fstr reason)

let torn b = List.assoc_opt "torn" b.attrs.extra

(* A box that extracted cleanly but violates a structural law of its
   data structure (see Sanity).  Keyed per law, so one box can be
   suspect under several laws at once. *)
let mark_suspect b ~law reason =
  let key = "suspect:" ^ law in
  b.attrs.extra <- (key, reason) :: List.remove_assoc key b.attrs.extra;
  record_field b "suspect" (Fstr law);
  record_field b key (Fstr reason)

let suspects b =
  List.filter_map
    (fun (k, v) ->
      if String.length k > 8 && String.sub k 0 8 = "suspect:" then
        Some (String.sub k 8 (String.length k - 8), v)
      else None)
    b.attrs.extra
  |> List.sort compare

let boxes g = Hashtbl.fold (fun _ b acc -> b :: acc) g.boxes [] |> List.sort (fun a b -> compare a.id b.id)

let box_count g = Hashtbl.length g.boxes

(** Total bytes of underlying kernel objects (for cost-per-KB metrics). *)
let total_bytes g = List.fold_left (fun acc b -> acc + b.size) 0 (boxes g)

(* Ascending ids of the boxes whose C type or definition name is [ty]:
   the [by_name] index maintained by [add_box], so typed lookups cost
   one hash probe instead of a full-graph scan. *)
let ids_of_type g ty =
  match Hashtbl.find_opt g.by_name ty with Some l -> List.rev !l | None -> []

let of_type g ty = List.filter_map (find g) (ids_of_type g ty)

(** Items of the currently selected view (fallback: first view). *)
let current_items b =
  match List.assoc_opt b.attrs.view b.views with
  | Some items -> items
  | None -> ( match b.views with (_, items) :: _ -> items | [] -> [])

(** Outgoing edges of a box under its current view (links + inlines +
    container members). *)
let successors g b =
  let of_item acc = function
    | Link { target = Some t; _ } -> t :: acc
    | Link { target = None; _ } -> acc
    | Inline { target; _ } -> target :: acc
    | Text _ -> acc
  in
  let from_items = List.fold_left of_item [] (current_items b) in
  let ms = if b.container then b.members else [] in
  List.rev_append from_items ms |> List.filter_map (fun id -> find g id) |> List.map (fun b -> b.id)

(** All boxes reachable from [seeds] (inclusive), under current views. *)
let reachable g seeds =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match find g id with
      | Some b -> List.iter go (successors g b)
      | None -> ()
    end
  in
  List.iter go seeds;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

(** Outgoing box references across ALL views (not just the current one)
    plus members: the children whose reuse a cached parent depends on,
    and the edge relation {!renumber} walks. *)
let child_ids b =
  let of_item acc = function
    | Link { target = Some t; _ } -> t :: acc
    | Inline { target; _ } -> target :: acc
    | Link { target = None; _ } | Text _ -> acc
  in
  let from_views =
    List.fold_left (fun acc (_, items) -> List.fold_left of_item acc items) [] b.views
  in
  List.rev_append from_views b.members

(** Drop every box unreachable from the roots and the [keep] seeds over
    {!child_ids}, keeping the [by_name] index coherent.  Returns the
    removed ids, ascending.  The incremental re-plot calls this after
    each run so boxes that fell out of the structure do not accumulate
    (and skew {!box_count}/{!total_bytes}) across refreshes. *)
let sweep g ~keep =
  let live = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem live id) then
      match find g id with
      | Some b ->
          Hashtbl.add live id ();
          List.iter mark (child_ids b)
      | None -> ()
  in
  List.iter mark g.roots;
  List.iter mark keep;
  let dead =
    Hashtbl.fold
      (fun id b acc -> if Hashtbl.mem live id then acc else (id, b) :: acc)
      g.boxes []
  in
  let unindex id name =
    if name <> "" then
      match Hashtbl.find_opt g.by_name name with
      | Some l ->
          l := List.filter (fun i -> i <> id) !l;
          if !l = [] then Hashtbl.remove g.by_name name
      | None -> ()
  in
  List.iter
    (fun (id, b) ->
      unindex id b.btype;
      if b.bdef <> b.btype then unindex id b.bdef;
      Hashtbl.remove g.boxes id)
    dead;
  List.sort compare (List.map fst dead)

(** Rebuild the graph with ids renumbered 1..n in deterministic
    preorder from the roots (over {!child_ids}), dropping unreachable
    boxes.  Two graphs extracted from the same kernel state render
    identically after renumbering even when one reused boxes under
    their old ids — the canonical form the cached-vs-cold identity
    property compares. *)
let renumber g =
  let map = Hashtbl.create 64 in
  let order = ref [] in
  let count = ref 0 in
  let stack = ref g.roots in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | id :: rest -> (
        stack := rest;
        if not (Hashtbl.mem map id) then
          match find g id with
          | None -> ()
          | Some b ->
              incr count;
              Hashtbl.add map id !count;
              order := b :: !order;
              stack := child_ids b @ !stack)
  done;
  let g' = create ~title:g.title () in
  List.iter
    (fun b ->
      let m id = Hashtbl.find map id in
      let nb =
        add_box g' ~btype:b.btype ~bdef:b.bdef ~addr:b.addr ~size:b.size
          ~container:b.container
      in
      nb.views <-
        List.map
          (fun (vn, items) ->
            ( vn,
              List.map
                (function
                  | Text _ as it -> it
                  | Link { label; target } -> Link { label; target = Option.map m target }
                  | Inline { label; target } -> Inline { label; target = m target })
                items ))
          b.views;
      nb.members <- List.map m b.members;
      Hashtbl.iter (fun k v -> Hashtbl.replace nb.fields k v) b.fields;
      nb.attrs.view <- b.attrs.view;
      nb.attrs.trimmed <- b.attrs.trimmed;
      nb.attrs.collapsed <- b.attrs.collapsed;
      nb.attrs.direction <- b.attrs.direction;
      nb.attrs.extra <- b.attrs.extra)
    (List.rev !order);
  g'.roots <- List.filter_map (fun id -> Hashtbl.find_opt map id) g.roots;
  g'

(** Visible boxes: reachable from roots, not under a trimmed ancestor. *)
let visible g =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then
      match find g id with
      | Some b when not b.attrs.trimmed ->
          Hashtbl.add seen id ();
          if not b.attrs.collapsed then List.iter go (successors g b)
      | Some _ | None -> ()
  in
  List.iter go g.roots;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* JSON serialization (for pane persistence and the front-end protocol) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fval_to_json = function
  | Fint n -> string_of_int n
  | Faddr a -> Printf.sprintf "\"0x%x\"" a
  | Fbool b -> string_of_bool b
  | Fstr s -> Printf.sprintf "\"%s\"" (json_escape s)

let item_to_json = function
  | Text { label; value; raw } ->
      Printf.sprintf "{\"kind\":\"text\",\"label\":\"%s\",\"value\":\"%s\",\"raw\":%s}"
        (json_escape label) (json_escape value) (fval_to_json raw)
  | Link { label; target } ->
      Printf.sprintf "{\"kind\":\"link\",\"label\":\"%s\",\"target\":%s}" (json_escape label)
        (match target with Some t -> string_of_int t | None -> "null")
  | Inline { label; target } ->
      Printf.sprintf "{\"kind\":\"inline\",\"label\":\"%s\",\"target\":%d}" (json_escape label)
        target

let box_to_json b =
  let views =
    List.map
      (fun (vn, items) ->
        Printf.sprintf "\"%s\":[%s]" (json_escape vn)
          (String.concat "," (List.map item_to_json items)))
      b.views
  in
  Printf.sprintf
    "{\"id\":%d,\"type\":\"%s\",\"def\":\"%s\",\"addr\":\"0x%x\",\"container\":%b,\"members\":[%s],\"attrs\":{\"view\":\"%s\",\"trimmed\":%b,\"collapsed\":%b,\"direction\":\"%s\"},\"views\":{%s}}"
    b.id (json_escape b.btype) (json_escape b.bdef) b.addr b.container
    (String.concat "," (List.map string_of_int b.members))
    (json_escape b.attrs.view) b.attrs.trimmed b.attrs.collapsed
    (match b.attrs.direction with Horizontal -> "horizontal" | Vertical -> "vertical")
    (String.concat "," views)

let to_json g =
  Printf.sprintf "{\"title\":\"%s\",\"roots\":[%s],\"boxes\":[%s]}" (json_escape g.title)
    (String.concat "," (List.map string_of_int g.roots))
    (String.concat "," (List.map box_to_json (boxes g)))
