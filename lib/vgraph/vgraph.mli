(** The simplified kernel object graph extracted by ViewCL (paper
    §2.2-§2.3).

    Vertices are {!box}es (each standing for one kernel object, or a
    virtual/container box), edges are [Link] items; each box carries one
    or more named {e views} — alternative item layouts — plus the
    display-control {!attrs} that ViewQL updates ([view] / [trimmed] /
    [collapsed] / [direction]). *)

type box_id = int

(** Raw values recorded alongside the formatted text of items, used by
    ViewQL WHERE filtering. *)
type fval = Fint of int | Fstr of string | Fbool of bool | Faddr of int

(** One item of a view. *)
type item =
  | Text of { label : string; value : string; raw : fval }
      (** a formatted field, e.g. [pid: 42] *)
  | Link of { label : string; target : box_id option }
      (** an edge to another box; [None] is a NULL pointer *)
  | Inline of { label : string; target : box_id }
      (** a nested box (typically a container) displayed inside this one *)

type direction = Horizontal | Vertical

(** Display attributes, mutated by ViewQL UPDATE. *)
type attrs = {
  mutable view : string;  (** which view is displayed (default ["default"]) *)
  mutable trimmed : bool;  (** removed from display, with its subtree *)
  mutable collapsed : bool;  (** shown as a click-to-expand stub *)
  mutable direction : direction;  (** container member flow *)
  mutable extra : (string * string) list;  (** free-form attributes *)
}

type box = {
  id : box_id;
  btype : string;  (** C type name ("task_struct"); "" for virtual boxes *)
  bdef : string;  (** ViewCL Box definition name ("Task"); "" if anonymous *)
  addr : int;  (** address of the underlying object; 0 for virtual boxes *)
  size : int;  (** sizeof the underlying object; 0 for virtual boxes *)
  container : bool;  (** container boxes hold an ordered member sequence *)
  mutable views : (string * item list) list;
  mutable members : box_id list;
  fields : (string, fval) Hashtbl.t;
  attrs : attrs;
}

type t
(** A graph: boxes plus the plot roots. *)

val create : ?title:string -> unit -> t
val title : t -> string
val set_title : t -> string -> unit

val fork : t -> t
(** An overlay view for one extraction lane: {!find}/{!get} fall
    through to the parent graph (so values captured before the split —
    environment-bound boxes — still resolve), while {!add_box}
    allocates into the fork under ids disjoint from anything the parent
    will ever use.  The parent must stay quiescent while forks are read
    from other domains.  Whole-graph operations ({!boxes},
    {!box_count}, {!ids_of_type}, {!reachable}, ...) see only the
    fork's own boxes plus whatever parent boxes the walk reaches
    through {!find}; the interpreter merges fork contents back
    deterministically at the join. *)

val is_local : t -> box_id -> bool
(** Does [id] live in this graph itself (not in a {!fork} parent)?
    Inside a fork this separates lane-built boxes (to import at the
    join) from references to pre-split parent boxes (to pass through
    unchanged). *)

val add_box :
  t -> btype:string -> bdef:string -> addr:int -> size:int -> container:bool -> box
(** Allocate a fresh box with a stable id and default attributes. *)

val find : t -> box_id -> box option

val get : t -> box_id -> box
(** @raise Invalid_argument when the id is unknown. *)

val set_root : t -> box_id -> unit
(** Append a plot root (one per [plot] statement). *)

val roots : t -> box_id list

val clear_roots : t -> unit
(** Drop the plot roots, keeping all boxes.  An incremental re-plot
    re-runs the program over the same graph: reused boxes keep their
    ids, the re-run appends fresh roots, and whatever the new roots no
    longer reach is swept (see {!sweep}) at the end of the run. *)

val set_roots : t -> box_id list -> unit
(** Replace the root list wholesale — the rollback path of a re-plot
    whose run raised after {!clear_roots}. *)

val sweep : t -> keep:box_id list -> box_id list
(** [sweep g ~keep] removes every box unreachable from the roots and
    the [keep] seeds over {!child_ids}, keeping the type index
    ({!ids_of_type}) coherent, and returns the removed ids ascending.
    Bounds the persistent re-plot graph: boxes that fell out of the
    structure stop accumulating (and skewing {!box_count} /
    {!total_bytes}) across refreshes. *)

val reset_box : box -> unit
(** Strip everything extraction produced — views, members, recorded
    fields, broken/torn/suspect verdicts — so the box can be rebuilt in
    place under its existing id.  Display attributes ([view], [trimmed],
    [collapsed], [direction], other extras) survive: they belong to the
    user's ViewQL refinements, not to the extraction. *)

val set_view : box -> string -> item list -> unit
(** [set_view box name items] appends a named view to the box. *)

val record_field : box -> string -> fval -> unit
(** Record a raw value for ViewQL WHERE filtering. *)

val field : box -> string -> fval option

val mark_broken : box -> string -> unit
(** [mark_broken b reason] marks [b] as extracted from faulty memory
    (dangling/wild/corrupted object): sets the ["broken"] extra
    attribute and records a ["broken"] field so ViewQL can filter on
    it. The box stays in the graph — a plot of a corrupted kernel
    degrades instead of aborting. *)

val broken : box -> string option
(** The fault description of a broken box. *)

val mark_torn : box -> string -> unit
(** [mark_torn b reason] marks [b] as a torn snapshot: a writer raced
    its extraction and the bounded retry budget ran out, so its
    contents may mix before/after state.  Sets the ["torn"] extra
    attribute and a ["torn"] field (ViewQL-filterable), mirroring
    {!mark_broken}. *)

val torn : box -> string option
(** The dirtied-range description of a torn box. *)

val mark_suspect : box -> law:string -> string -> unit
(** [mark_suspect b ~law reason] records that [b] violates structural
    law [law] (e.g. ["rbtree"], ["maple"]; see the Sanity library).
    Keyed per law — a box can be suspect under several laws at once.
    Records ["suspect"] (last law) and ["suspect:<law>"] fields for
    ViewQL. *)

val suspects : box -> (string * string) list
(** All [(law, reason)] verdicts recorded on [b], sorted by law. *)

val boxes : t -> box list
(** All boxes, in id (construction) order. *)

val box_count : t -> int

val total_bytes : t -> int
(** Sum of [size] over all boxes — the "KB of data structure" denominator
    of the paper's Table 4. *)

val of_type : t -> string -> box list
(** Boxes whose C type or ViewCL definition name matches. *)

val ids_of_type : t -> string -> box_id list
(** Ascending ids of the boxes whose C type or definition name is the
    given name — one probe of the index {!add_box} maintains, not a
    graph scan.  ViewQL's typed [SELECT ... FROM *] path. *)

val current_items : box -> item list
(** Items of the currently selected view (first view as fallback). *)

val successors : t -> box -> box_id list
(** Outgoing edges under the current view: links, inlines, members. *)

val reachable : t -> box_id list -> box_id list
(** Transitive closure of {!successors} from the seeds (inclusive),
    sorted. Implements ViewQL's [REACHABLE]. *)

val visible : t -> box_id list
(** Boxes actually displayed: reachable from the roots under current
    views, stopping at [trimmed] boxes and below [collapsed] ones. *)

val child_ids : box -> box_id list
(** Outgoing box references across ALL views (links and inlines, not
    just the current view's) plus container members: the children a
    cached box's reuse depends on. *)

val renumber : t -> t
(** A copy of the graph with ids renumbered [1..n] in deterministic
    preorder from the roots (over {!child_ids}), unreachable boxes
    dropped.  Two graphs extracted from the same kernel state render
    identically after renumbering even when one of them reused boxes
    under their old ids — the canonical form the cached-vs-cold
    identity property compares. *)

val json_escape : string -> string

val to_json : t -> string
(** Serialize the whole graph (the vplot wire format). *)
