(* See obs.mli for the contract.  Implementation notes:

   - The disabled path of every recording entry point is one branch on
     [!on]; nothing else happens (no clock read, no allocation).
   - Span self-time is computed online: a stack of open frames carries
     a per-frame child-duration accumulator, so no post-processing of
     the ring is ever needed — and the aggregate profile survives ring
     eviction because it is updated at span end, not derived from the
     buffer.
   - The ring is a plain [event option array] with a write cursor;
     overflow overwrites the oldest slot (newest events win).
   - Trace/span ids are process-unique monotone integers minted only
     while enabled; the ambient trace id is a plain ref (the whole
     library is single-domain, like the rest of the stack).  Span
     links are stored out-of-band in a bounded queue so a link can be
     created while either endpoint is still an open frame. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* ------------------------------------------------------------------ *)
(* Clock *)

module Clock = struct
  (* [Unix.gettimeofday] is wall time, which NTP may step backwards;
     clamping every reading to the running maximum makes the clock
     monotone, which is all span/duration arithmetic needs.  The
     running maximum is an [Atomic.t] advanced by a CAS-max loop, so
     concurrent readings from extraction worker domains never regress
     each other: whatever any domain has observed is a floor for every
     later reading on every domain. *)
  let last = Atomic.make 0.

  let rec advance t =
    let cur = Atomic.get last in
    if t > cur && not (Atomic.compare_and_set last cur t) then advance t

  let now_ms () =
    advance (Unix.gettimeofday () *. 1000.);
    Atomic.get last

  let elapsed_ms t0 = now_ms () -. t0
end

let epoch = ref (Clock.now_ms ())
let since_epoch_ms () = Clock.now_ms () -. !epoch

(* ------------------------------------------------------------------ *)
(* Events and the ring buffer *)

type span = {
  sname : string;
  scat : string;
  st0_ms : float;
  sdur_ms : float;
  sself_ms : float;
  sdepth : int;
  sid : int;
  sparent : int;
  strace : int;
  sattrs : (string * string) list;
}

type event =
  | Span of span
  | Instant of {
      iname : string;
      icat : string;
      it_ms : float;
      iattrs : (string * string) list;
    }

let default_capacity = 32768
let ring = ref (Array.make default_capacity None)
let ring_w = ref 0
let ring_n = ref 0
let dropped_n = ref 0

(* Bounded above: the ring is a diagnostic buffer, not a log.  The
   clamp keeps a workload-sized capacity request from allocating
   unbounded memory; tiny rings stay allowed (tests exercise overflow
   with single-digit capacities). *)
let max_capacity = 1 lsl 20

let set_ring_capacity cap =
  ring := Array.make (min max_capacity (max 1 cap)) None;
  ring_w := 0;
  ring_n := 0;
  dropped_n := 0

let push ev =
  let cap = Array.length !ring in
  !ring.(!ring_w) <- Some ev;
  ring_w := (!ring_w + 1) mod cap;
  if !ring_n < cap then incr ring_n else incr dropped_n

let events () =
  let cap = Array.length !ring in
  let start = (!ring_w - !ring_n + cap) mod cap in
  List.init !ring_n (fun i ->
      match !ring.((start + i) mod cap) with Some e -> e | None -> assert false)

let span_events () =
  List.filter_map (function Span s -> Some s | Instant _ -> None) (events ())

let event_count () = !ring_n
let dropped () = !dropped_n
let ring_capacity () = Array.length !ring

(* ------------------------------------------------------------------ *)
(* Span recording: frame stack + per-name aggregation *)

type agg = { mutable acount : int; mutable atotal : float; mutable aself : float }

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64
let spans_seen = ref 0
let spans_total () = !spans_seen

(* Per-(name + selected attrs) aggregates: the fix for span-attribute
   loss on ring eviction.  The by-name table above answers "where does
   the time go per layer"; this one keeps the per-target / per-profile
   split alive after the ring has evicted the spans themselves.  Only
   attrs whose key is in [breakdown_keys] are folded into the aggregate
   key (span attrs also carry high-cardinality values like byte counts,
   which must never key a table), and each base name is capped at
   [max_breakdown] distinct keys — the overflow bucket keeps the totals
   honest without unbounded growth. *)
let breakdown_keys = ref [ "profile"; "target"; "replica"; "sid" ]
let set_breakdown_keys ks = breakdown_keys := ks
let agg_attr_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64
let agg_attr_card : (string, int) Hashtbl.t = Hashtbl.create 16
let max_breakdown = 64

let breakdown_key name attrs =
  match List.filter (fun (k, _) -> List.mem k !breakdown_keys) attrs with
  | [] -> None
  | kvs ->
      let kvs = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
      Some
        (Printf.sprintf "%s{%s}" name
           (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)))

type frame = {
  fname : string;
  fcat : string;
  fattrs : (string * string) list;
  ft0 : float;
  fid : int;
  fparent : int;
  ftrace : int;
  mutable fchild : float;
}

let stack : frame list ref = ref []

(* ------------------------------------------------------------------ *)
(* Trace identity and span links *)

type link = { lkind : string; lfrom : int; lto : int }

(* Trace/span ids are minted from atomics so worker domains can open
   spans concurrently without ever reusing an id.  Ids stay unique but
   not dense: their interleaving across domains is schedule-dependent.
   Nothing renders ids — plot identity is over renders, journals and
   counters, all of which flow through the deterministic lane merge
   below. *)
let trace_ctr = Atomic.make 0
let span_ctr = Atomic.make 0
let cur_trace = ref 0
let links_q : link Queue.t = Queue.create ()
let max_links = 16384

(* ------------------------------------------------------------------ *)
(* Lane buffers: per-domain recording contexts for parallel extraction.

   The global tables (ring, aggregates, metrics registry, links queue)
   are single-domain structures and stay that way.  A worker domain
   never touches them: every task the extraction pool runs is wrapped
   in [Lane.scoped], which installs a domain-local buffer capturing
   events, counter deltas, gauge writes, histogram observations and
   span links.  At the join the *parent* absorbs each child lane in
   shard order — so the merged registry is identical whatever the
   domain count or steal schedule. *)
type lane = {
  mutable lev : event list;  (* newest first *)
  lcnt : (string, int ref) Hashtbl.t;
  mutable lgauges : (string * float) list;  (* newest first *)
  mutable lobs : (string * float * int) list;  (* name, sample, ambient trace *)
  mutable llinks : link list;  (* newest first *)
  mutable lstack : frame list;
  mutable ltrace : int;
}

let lane_key : lane option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let cur_lane () = !(Domain.DLS.get lane_key)

let lane_count l name by =
  match Hashtbl.find_opt l.lcnt name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add l.lcnt name (ref by)

module Trace = struct
  type nonrec link = link = { lkind : string; lfrom : int; lto : int }

  let mint () = if !on then Atomic.fetch_and_add trace_ctr 1 + 1 else 0

  let current () = match cur_lane () with Some l -> l.ltrace | None -> !cur_trace

  let with_trace tid f =
    if tid = 0 then f ()
    else
      match cur_lane () with
      | Some l ->
          let saved = l.ltrace in
          l.ltrace <- tid;
          Fun.protect ~finally:(fun () -> l.ltrace <- saved) f
      | None ->
          let saved = !cur_trace in
          cur_trace := tid;
          Fun.protect ~finally:(fun () -> cur_trace := saved) f

  let current_span () =
    match (match cur_lane () with Some l -> l.lstack | None -> !stack) with
    | fr :: _ -> fr.fid
    | [] -> 0

  let link ~kind ~from_span ~to_span =
    if !on && from_span <> 0 && to_span <> 0 then
      match cur_lane () with
      | Some l -> l.llinks <- { lkind = kind; lfrom = from_span; lto = to_span } :: l.llinks
      | None ->
          if Queue.length links_q >= max_links then ignore (Queue.pop links_q);
          Queue.push { lkind = kind; lfrom = from_span; lto = to_span } links_q

  let links () = List.of_seq (Queue.to_seq links_q)
end

let update_agg tbl key ~dur ~self =
  let a =
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
        let a = { acount = 0; atotal = 0.; aself = 0. } in
        Hashtbl.add tbl key a;
        a
  in
  a.acount <- a.acount + 1;
  a.atotal <- a.atotal +. dur;
  a.aself <- a.aself +. self

let record_span (s : span) =
  push (Span s);
  incr spans_seen;
  let dur = s.sdur_ms and self = s.sself_ms in
  update_agg agg_tbl s.sname ~dur ~self;
  match breakdown_key s.sname s.sattrs with
  | None -> ()
  | Some key ->
      if Hashtbl.mem agg_attr_tbl key then update_agg agg_attr_tbl key ~dur ~self
      else begin
        let card = Option.value ~default:0 (Hashtbl.find_opt agg_attr_card s.sname) in
        if card >= max_breakdown then update_agg agg_attr_tbl (s.sname ^ "{...}") ~dur ~self
        else begin
          Hashtbl.replace agg_attr_card s.sname (card + 1);
          update_agg agg_attr_tbl key ~dur ~self
        end
      end

let with_span ?(cat = "app") ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let lane = cur_lane () in
    let st = match lane with Some l -> l.lstack | None -> !stack in
    let depth = List.length st in
    let fr =
      { fname = name; fcat = cat; fattrs = attrs; ft0 = since_epoch_ms ();
        fid = Atomic.fetch_and_add span_ctr 1 + 1;
        fparent = (match st with p :: _ -> p.fid | [] -> 0);
        ftrace = (match lane with Some l -> l.ltrace | None -> !cur_trace);
        fchild = 0. }
    in
    (match lane with Some l -> l.lstack <- fr :: l.lstack | None -> stack := fr :: !stack);
    Fun.protect
      ~finally:(fun () ->
        match (match lane with Some l -> l.lstack | None -> !stack) with
        | top :: rest when top == fr ->
            (match lane with Some l -> l.lstack <- rest | None -> stack := rest);
            let dur = since_epoch_ms () -. fr.ft0 in
            let self = Float.max 0. (dur -. fr.fchild) in
            (match rest with parent :: _ -> parent.fchild <- parent.fchild +. dur | [] -> ());
            let s =
              { sname = fr.fname; scat = fr.fcat; st0_ms = fr.ft0; sdur_ms = dur;
                sself_ms = self; sdepth = depth; sid = fr.fid; sparent = fr.fparent;
                strace = fr.ftrace; sattrs = fr.fattrs }
            in
            (match lane with Some l -> l.lev <- Span s :: l.lev | None -> record_span s)
        | _ -> () (* a reset () ran inside [f]: the frame is gone, drop it *))
      f
  end

let current_depth () =
  List.length (match cur_lane () with Some l -> l.lstack | None -> !stack)

let instant ?(cat = "app") ?(attrs = []) name =
  if !on then
    let ev = Instant { iname = name; icat = cat; it_ms = since_epoch_ms (); iattrs = attrs } in
    match cur_lane () with Some l -> l.lev <- ev :: l.lev | None -> push ev

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

module Metrics = struct
  let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
  let gauges_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

  let counter_ref name =
    match Hashtbl.find_opt counters_tbl name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add counters_tbl name r;
        r

  let incr ?(by = 1) name =
    if !on then
      match cur_lane () with
      | Some l -> lane_count l name by
      | None ->
          let r = counter_ref name in
          r := !r + by

  let counter name = match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

  let counters () =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let gauge_now name v =
    match Hashtbl.find_opt gauges_tbl name with
    | Some r -> r := v
    | None -> Hashtbl.add gauges_tbl name (ref v)

  let set_gauge name v =
    if !on then
      match cur_lane () with
      | Some l -> l.lgauges <- (name, v) :: l.lgauges
      | None -> gauge_now name v

  let gauge name = Option.map ( ! ) (Hashtbl.find_opt gauges_tbl name)

  let gauges () =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* log2 buckets: 0 -> [0, 2^-32); i in 1..62 -> [2^(i-33), 2^(i-32));
     63 -> [2^30, inf).  frexp gives v = m * 2^e with m in [0.5, 1), so
     floor(log2 v) = e - 1 exactly — the boundaries are exact powers of
     two, no float-log rounding at the edges. *)
  let nbuckets = 64

  let bucket_of v =
    if v < Float.ldexp 1. (-32) then 0
    else if v >= Float.ldexp 1. 30 then nbuckets - 1
    else
      let _, e = Float.frexp v in
      32 + e

  let bucket_lo i = if i <= 0 then 0. else Float.ldexp 1. (i - 33)
  let bucket_hi i = if i >= nbuckets - 1 then Float.infinity else Float.ldexp 1. (i - 32)

  type histo = {
    mutable hcount : int;
    mutable hsum : float;
    mutable hmin : float;
    mutable hmax : float;
    hbuckets : int array;
    hex_trace : int array;  (* per-bucket most recent trace id, 0 = none *)
    hex_val : float array;  (* the exemplar's sample value *)
  }

  let histos_tbl : (string, histo) Hashtbl.t = Hashtbl.create 16

  let observe_trace name v tr =
    let h =
      match Hashtbl.find_opt histos_tbl name with
      | Some h -> h
      | None ->
          let h =
            { hcount = 0; hsum = 0.; hmin = Float.infinity; hmax = Float.neg_infinity;
              hbuckets = Array.make nbuckets 0; hex_trace = Array.make nbuckets 0;
              hex_val = Array.make nbuckets 0. }
          in
          Hashtbl.add histos_tbl name h;
          h
    in
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    let b = h.hbuckets in
    let i = bucket_of v in
    b.(i) <- b.(i) + 1;
    if tr <> 0 then begin
      h.hex_trace.(i) <- tr;
      h.hex_val.(i) <- v
    end

  let observe name v =
    if !on then
      match cur_lane () with
      | Some l -> l.lobs <- (name, v, l.ltrace) :: l.lobs
      | None -> observe_trace name v !cur_trace

  let exemplars name =
    match Hashtbl.find_opt histos_tbl name with
    | None -> []
    | Some h ->
        let acc = ref [] in
        for i = nbuckets - 1 downto 0 do
          if h.hex_trace.(i) <> 0 then acc := (i, h.hex_trace.(i), h.hex_val.(i)) :: !acc
        done;
        !acc

  let top_exemplar name =
    match Hashtbl.find_opt histos_tbl name with
    | None -> None
    | Some h ->
        let rec scan i =
          if i < 0 then None
          else if h.hex_trace.(i) <> 0 then Some (h.hex_trace.(i), h.hex_val.(i))
          else scan (i - 1)
        in
        scan (nbuckets - 1)

  let histo_quantile h q =
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount))) in
    let rec walk i cum =
      if i >= nbuckets then h.hmax
      else
        let cum = cum + h.hbuckets.(i) in
        if cum >= rank then Float.min h.hmax (Float.max h.hmin (bucket_hi i)) else walk (i + 1) cum
    in
    walk 0 0

  let quantile name q =
    match Hashtbl.find_opt histos_tbl name with
    | Some h when h.hcount > 0 -> Some (histo_quantile h q)
    | _ -> None

  type summary = {
    count : int;
    sum : float;
    minv : float;
    maxv : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let summary_of h =
    { count = h.hcount; sum = h.hsum; minv = h.hmin; maxv = h.hmax;
      p50 = histo_quantile h 0.50; p95 = histo_quantile h 0.95; p99 = histo_quantile h 0.99 }

  let summary name =
    match Hashtbl.find_opt histos_tbl name with
    | Some h when h.hcount > 0 -> Some (summary_of h)
    | _ -> None

  let histograms () =
    Hashtbl.fold (fun k h acc -> if h.hcount > 0 then (k, summary_of h) :: acc else acc)
      histos_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

module Counter = struct
  (* The handle keeps its name alongside the resolved ref: inside a
     lane the increment must land in the lane's by-name delta table
     (the global ref is shared across domains), outside it stays the
     pre-resolved single add. *)
  type t = { cname : string; cref : int ref }

  let make name = { cname = name; cref = Metrics.counter_ref name }

  let add c by =
    if !on then
      match cur_lane () with
      | Some l -> lane_count l c.cname by
      | None -> c.cref := !(c.cref) + by

  let incr c = add c 1
  let value c = !(c.cref)
end

(* ------------------------------------------------------------------ *)
(* Lane API *)

module Lane = struct
  type t = lane

  let make () =
    { lev = []; lcnt = Hashtbl.create 16; lgauges = []; lobs = []; llinks = [];
      lstack = []; ltrace = 0 }

  let active () = cur_lane () <> None

  let scoped l f =
    let r = Domain.DLS.get lane_key in
    let saved = !r in
    r := Some l;
    Fun.protect ~finally:(fun () -> r := saved) f

  let clear l =
    l.lev <- [];
    Hashtbl.reset l.lcnt;
    l.lgauges <- [];
    l.lobs <- [];
    l.llinks <- []

  let absorb l =
    (match cur_lane () with
    | Some p ->
        (* nested join: fold into the enclosing lane; both lists are
           newest-first, so prepending the child keeps call order *)
        p.lev <- l.lev @ p.lev;
        Hashtbl.iter (fun name r -> lane_count p name !r) l.lcnt;
        p.lgauges <- l.lgauges @ p.lgauges;
        p.lobs <- l.lobs @ p.lobs;
        p.llinks <- l.llinks @ p.llinks
    | None ->
        List.iter
          (fun ev -> match ev with Span s -> record_span s | Instant _ -> push ev)
          (List.rev l.lev);
        Hashtbl.iter
          (fun name r ->
            let g = Metrics.counter_ref name in
            g := !g + !r)
          l.lcnt;
        List.iter (fun (name, v) -> Metrics.gauge_now name v) (List.rev l.lgauges);
        List.iter (fun (name, v, tr) -> Metrics.observe_trace name v tr) (List.rev l.lobs);
        List.iter
          (fun lk ->
            if Queue.length links_q >= max_links then ignore (Queue.pop links_q);
            Queue.push lk links_q)
          (List.rev l.llinks));
    clear l
end

(* ------------------------------------------------------------------ *)
(* Profile aggregation *)

module Profile = struct
  type row = { pname : string; pcount : int; ptotal_ms : float; pself_ms : float }

  let row_of tbl name =
    Option.map
      (fun a -> { pname = name; pcount = a.acount; ptotal_ms = a.atotal; pself_ms = a.aself })
      (Hashtbl.find_opt tbl name)

  let rows_of tbl =
    Hashtbl.fold
      (fun name a acc ->
        { pname = name; pcount = a.acount; ptotal_ms = a.atotal; pself_ms = a.aself } :: acc)
      tbl []
    |> List.sort (fun a b -> compare b.pself_ms a.pself_ms)

  let rows () = rows_of agg_tbl
  let find name = row_of agg_tbl name

  let total_ms name = match Hashtbl.find_opt agg_tbl name with Some a -> a.atotal | None -> 0.

  let top n =
    let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
    take n (rows ())

  let breakdown () = rows_of agg_attr_tbl
end

(* ------------------------------------------------------------------ *)
(* SLO engine: declarative objectives evaluated over the metrics
   registry with multi-window burn rates.

   An objective declares what fraction of "good" outcomes a metric pair
   must sustain ([otarget], e.g. 0.99); the error budget is the
   complement.  [tick] closes one evaluation epoch: per objective it
   takes the (bad, total) delta since the previous tick, pushes it into
   a ring of the last [slow_epochs] epochs, and computes

     burn = (bad/total) / (1 - target)

   over a fast window (the last epoch) and a slow window (the last 8).
   The alertable burn is min(fast, slow) — the classic multi-window
   rule: the fast window proves the burn is still happening, the slow
   window proves it is material, so a single bad epoch after a quiet
   hour does not page and a long slow bleed does.  Strictly read-only
   with respect to control: nothing here feeds admission or health
   decisions, which stay in lib/session. *)

module Slo = struct
  type kind =
    | Good_bad of { good : string; bad : string }
    | Bad_total of { bad : string; total : string }
    | Histogram_le of { histo : string; threshold_ms : float }
    | Gauge_le of { gauge : string; threshold : float }

  type objective = { oname : string; okind : kind; otarget : float }

  let slow_epochs = 8
  let warn_burn = 1.
  let page_burn = 6.

  type reg = {
    obj : objective;
    win : (float * float) array;  (* per-epoch (bad, total), ring of [slow_epochs] *)
    mutable wi : int;
    mutable wn : int;
    mutable last_bad : float;
    mutable last_total : float;
    mutable cum_bad : float;
    mutable cum_total : float;
    mutable sev : int;  (* 0 ok, 1 warn, 2 page *)
    mutable lfast : float;
    mutable lslow : float;
    mutable lremaining : float;
  }

  let regs : (string, reg) Hashtbl.t = Hashtbl.create 16
  let order : string list ref = ref []  (* registration order, oldest first *)

  (* cumulative "samples above threshold": buckets entirely at or above
     the threshold count as bad — log2-bucket granularity, same as the
     quantile estimator's *)
  let histo_bad_total histo threshold =
    match Hashtbl.find_opt Metrics.histos_tbl histo with
    | None -> (0., 0.)
    | Some h ->
        let bad = ref 0 in
        for i = 0 to Metrics.nbuckets - 1 do
          if Metrics.bucket_lo i >= threshold then bad := !bad + h.Metrics.hbuckets.(i)
        done;
        (float_of_int !bad, float_of_int h.Metrics.hcount)

  let cum obj =
    match obj.okind with
    | Good_bad { good; bad } ->
        let b = float_of_int (Metrics.counter bad) in
        (b, b +. float_of_int (Metrics.counter good))
    | Bad_total { bad; total } ->
        (float_of_int (Metrics.counter bad), float_of_int (Metrics.counter total))
    | Histogram_le { histo; threshold_ms } -> histo_bad_total histo threshold_ms
    | Gauge_le _ -> (0., 0.)  (* sampled per tick, not cumulative *)

  let fresh obj =
    let b, t = cum obj in
    { obj; win = Array.make slow_epochs (0., 0.); wi = 0; wn = 0; last_bad = b;
      last_total = t; cum_bad = 0.; cum_total = 0.; sev = 0; lfast = 0.; lslow = 0.;
      lremaining = 1. }

  let register obj =
    match Hashtbl.find_opt regs obj.oname with
    | Some r when r.obj = obj -> ()  (* keep the accumulated windows *)
    | existing ->
        Hashtbl.replace regs obj.oname (fresh obj);
        if existing = None then order := !order @ [ obj.oname ]

  let clear () =
    Hashtbl.reset regs;
    order := []

  let reset_windows () =
    (* keep the objectives but restart their accounting (Obs.reset) *)
    Hashtbl.iter
      (fun name r -> Hashtbl.replace regs name (fresh r.obj))
      (Hashtbl.copy regs)

  let objectives () = List.filter_map (fun n -> Hashtbl.find_opt regs n) !order
                      |> List.map (fun r -> r.obj)

  let burn obj ~bad ~total =
    if total <= 0. then 0. else bad /. total /. Float.max 1e-9 (1. -. obj.otarget)

  let window_sum r k =
    let b = ref 0. and t = ref 0. in
    for j = 0 to min k r.wn - 1 do
      let bb, tt = r.win.((r.wi - 1 - j + (2 * slow_epochs)) mod slow_epochs) in
      b := !b +. bb;
      t := !t +. tt
    done;
    (!b, !t)

  let sev_name = function 2 -> "page" | 1 -> "warn" | _ -> "ok"

  let tick_one r =
    let db, dt =
      match r.obj.okind with
      | Gauge_le { gauge; threshold } -> (
          match Metrics.gauge gauge with
          | Some v when v > threshold -> (1., 1.)
          | Some _ -> (0., 1.)
          | None -> (0., 0.))
      | _ ->
          let b, t = cum r.obj in
          let db = Float.max 0. (b -. r.last_bad) in
          let dt = Float.max 0. (t -. r.last_total) in
          r.last_bad <- b;
          r.last_total <- t;
          (db, dt)
    in
    r.win.(r.wi) <- (db, dt);
    r.wi <- (r.wi + 1) mod slow_epochs;
    if r.wn < slow_epochs then r.wn <- r.wn + 1;
    r.cum_bad <- r.cum_bad +. db;
    r.cum_total <- r.cum_total +. dt;
    let fast = burn r.obj ~bad:db ~total:dt in
    let sb, st = window_sum r slow_epochs in
    let slow = burn r.obj ~bad:sb ~total:st in
    let b = Float.min fast slow in
    let remaining =
      if r.cum_total <= 0. then 1.
      else 1. -. (r.cum_bad /. (r.cum_total *. Float.max 1e-9 (1. -. r.obj.otarget)))
    in
    r.lfast <- fast;
    r.lslow <- slow;
    r.lremaining <- remaining;
    let name = r.obj.oname in
    Metrics.set_gauge (Printf.sprintf "slo.%s.burn_rate" name) b;
    Metrics.set_gauge (Printf.sprintf "slo.%s.burn_fast" name) fast;
    Metrics.set_gauge (Printf.sprintf "slo.%s.burn_slow" name) slow;
    Metrics.set_gauge (Printf.sprintf "slo.%s.budget_remaining" name) remaining;
    let sev = if b >= page_burn then 2 else if b >= warn_burn then 1 else 0 in
    if sev > r.sev then begin
      Metrics.incr "slo.breaches";
      instant ~cat:"slo"
        ~attrs:
          [ ("slo", name); ("severity", sev_name sev);
            ("burn_fast", Printf.sprintf "%.2f" fast);
            ("burn_slow", Printf.sprintf "%.2f" slow);
            ("budget_remaining", Printf.sprintf "%.3f" remaining) ]
        "slo.breach"
    end
    else if sev = 0 && r.sev > 0 then
      instant ~cat:"slo" ~attrs:[ ("slo", name) ] "slo.clear";
    r.sev <- sev

  let tick () =
    if !on then
      List.iter (fun n -> Option.iter tick_one (Hashtbl.find_opt regs n)) !order

  type status = {
    slo : string;
    target : float;
    burn_fast : float;
    burn_slow : float;
    burn_rate : float;
    budget_remaining : float;
    severity : string;
  }

  let status () =
    List.filter_map
      (fun n ->
        Option.map
          (fun r ->
            { slo = n; target = r.obj.otarget; burn_fast = r.lfast; burn_slow = r.lslow;
              burn_rate = Float.min r.lfast r.lslow; budget_remaining = r.lremaining;
              severity = sev_name r.sev })
          (Hashtbl.find_opt regs n))
      !order

  let report () =
    let buf = Buffer.create 512 in
    let rows = status () in
    if rows = [] then Buffer.add_string buf "(no SLOs registered)\n"
    else begin
      Buffer.add_string buf
        (Printf.sprintf "%-28s %7s %9s %9s %9s %6s\n" "slo" "target" "burn-fast" "burn-slow"
           "budget" "state");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%-28s %7.3f %9.2f %9.2f %9.3f %6s\n" s.slo s.target s.burn_fast
               s.burn_slow s.budget_remaining s.severity))
        rows
    end;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Reset *)

let reset () =
  set_ring_capacity (Array.length !ring);
  Hashtbl.reset agg_tbl;
  Hashtbl.reset agg_attr_tbl;
  Hashtbl.reset agg_attr_card;
  spans_seen := 0;
  stack := [];
  cur_trace := 0;
  Queue.clear links_q;
  Hashtbl.iter (fun _ r -> r := 0) Metrics.counters_tbl;
  Hashtbl.reset Metrics.gauges_tbl;
  Hashtbl.reset Metrics.histos_tbl;
  Slo.reset_windows ();
  epoch := Clock.now_ms ()

(* ------------------------------------------------------------------ *)
(* Exporters *)

(* Obs is below vgraph in the library DAG, so it carries its own tiny
   JSON writer (the reader side round-trips through Vgraph's Json). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.6f" f

let args_json attrs =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          attrs))

(* self-reporting gauges: ring pressure is itself a metric, so artifact
   consumers can see when the event list under-reports the run *)
let ring_gauges () =
  if !on then begin
    Metrics.set_gauge "obs.ring_utilization"
      (float_of_int !ring_n /. float_of_int (Array.length !ring));
    Metrics.set_gauge "obs.dropped_events" (float_of_int !dropped_n)
  end

let chrome_trace () =
  ring_gauges ();
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  let by_id = Hashtbl.create 1024 in
  List.iter
    (fun ev ->
      sep ();
      match ev with
      | Span s ->
          if s.sid <> 0 then Hashtbl.replace by_id s.sid s;
          let ids =
            (if s.strace <> 0 then [ ("trace", string_of_int s.strace) ] else [])
            @ (if s.sid <> 0 then [ ("span", string_of_int s.sid) ] else [])
            @ if s.sparent <> 0 then [ ("parent", string_of_int s.sparent) ] else []
          in
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape s.sname) (json_escape s.scat)
               (json_float (s.st0_ms *. 1000.))
               (json_float (s.sdur_ms *. 1000.))
               (args_json ((("depth", string_of_int s.sdepth) :: ids) @ s.sattrs)))
      | Instant i ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape i.iname) (json_escape i.icat)
               (json_float (i.it_ms *. 1000.))
               (args_json i.iattrs)))
    (events ());
  (* span links as flow events ("s" start / "f" finish pairs sharing an
     id): hedge / canary / retry / probation arrows in Perfetto.  Links
     whose endpoints were evicted from the ring are skipped — the flow
     needs slice coordinates to bind to. *)
  let flow_id = ref 0 in
  Queue.iter
    (fun l ->
      match (Hashtbl.find_opt by_id l.lfrom, Hashtbl.find_opt by_id l.lto) with
      | Some a, Some b ->
          incr flow_id;
          let mid s = (s.st0_ms +. (s.sdur_ms /. 2.)) *. 1000. in
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"link\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":1,\"tid\":1}"
               (json_escape l.lkind) !flow_id (json_float (mid a)));
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"link\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":1,\"tid\":1}"
               (json_escape l.lkind) !flow_id (json_float (Float.max (mid a) (mid b))))
      | _ -> ())
    links_q;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let profile_table () =
  let rows = Profile.rows () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %8s %12s %12s\n" "span" "count" "total ms" "self ms");
  List.iter
    (fun (r : Profile.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %8d %12.3f %12.3f\n" r.Profile.pname r.Profile.pcount
           r.Profile.ptotal_ms r.Profile.pself_ms))
    rows;
  if rows = [] then Buffer.add_string buf "(no spans recorded)\n";
  Buffer.contents buf

let metrics_json ?(extra = []) () =
  ring_gauges ();
  let buf = Buffer.create 4096 in
  let kv_block name body = Printf.sprintf "\"%s\":{%s}" name (String.concat "," body) in
  Buffer.add_char buf '{';
  Buffer.add_string buf
    (kv_block "meta"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          extra));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "counters"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
          (Metrics.counters ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "gauges"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
          (Metrics.gauges ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "histograms"
       (List.map
          (fun (k, (s : Metrics.summary)) ->
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
              (json_escape k) s.Metrics.count (json_float s.Metrics.sum)
              (json_float s.Metrics.minv) (json_float s.Metrics.maxv) (json_float s.Metrics.p50)
              (json_float s.Metrics.p95) (json_float s.Metrics.p99))
          (Metrics.histograms ())));
  Buffer.add_char buf ',';
  (* histogram exemplars: per-bucket most recent trace id, so a p95
     outlier in a bench table can name the trace behind it.  Array
     values (no nested object directly after the histogram name) keep
     the artifact greppable by the bench_compare field extractor. *)
  Buffer.add_string buf
    (kv_block "exemplars"
       (List.filter_map
          (fun (k, _) ->
            match Metrics.exemplars k with
            | [] -> None
            | exs ->
                Some
                  (Printf.sprintf "\"%s\":[%s]" (json_escape k)
                     (String.concat ","
                        (List.map
                           (fun (b, t, v) ->
                             Printf.sprintf "{\"bucket\":%d,\"trace\":%d,\"value\":%s}" b t
                               (json_float v))
                           exs))))
          (Metrics.histograms ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "spans"
       (List.map
          (fun (r : Profile.row) ->
            Printf.sprintf "\"%s\":{\"count\":%d,\"total_ms\":%s,\"self_ms\":%s}"
              (json_escape r.Profile.pname) r.Profile.pcount (json_float r.Profile.ptotal_ms)
              (json_float r.Profile.pself_ms))
          (List.sort (fun (a : Profile.row) b -> compare a.Profile.pname b.Profile.pname)
             (Profile.rows ()))));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf "\"events\":{\"buffered\":%d,\"dropped\":%d,\"spans_total\":%d,\"links\":%d}"
       (event_count ()) (dropped ()) (spans_total ()) (Queue.length links_q));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Prometheus text exposition: counters, gauges, and histograms as
   quantile summaries.  Metric names are mangled to the prometheus
   charset ([a-zA-Z0-9_:]); label values keep the original name. *)
let prom_name s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    s

let prometheus () =
  ring_gauges ();
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) ->
      let n = prom_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (Metrics.counters ());
  List.iter
    (fun (k, v) ->
      let n = prom_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (json_float v)))
    (Metrics.gauges ());
  List.iter
    (fun (k, (s : Metrics.summary)) ->
      let n = prom_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (json_float v)))
        [ ("0.5", s.Metrics.p50); ("0.95", s.Metrics.p95); ("0.99", s.Metrics.p99) ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (json_float s.Metrics.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.Metrics.count))
    (Metrics.histograms ());
  Buffer.contents buf

let report () =
  ring_gauges ();
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "observability: %s | %d events buffered, %d dropped, %d spans total\n"
       (if !on then "on" else "off")
       (event_count ()) (dropped ()) (spans_total ()));
  if !dropped_n > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "*** WARNING: %d events were EVICTED from the ring (capacity %d) ***\n\
          *** the per-name aggregates below are complete, but the event  ***\n\
          *** list / Chrome trace only covers the newest %d events —     ***\n\
          *** raise the capacity with Obs.set_ring_capacity              ***\n"
         !dropped_n (Array.length !ring) !ring_n);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (profile_table ());
  (match Profile.breakdown () with
  | [] -> ()
  | rows ->
      Buffer.add_string buf "\nper-attribute breakdown (eviction-proof aggregates):\n";
      let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
      List.iter
        (fun (r : Profile.row) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-44s %8d %12.3f %12.3f\n" r.Profile.pname r.Profile.pcount
               r.Profile.ptotal_ms r.Profile.pself_ms))
        (take 24 rows));
  (match Metrics.counters () with
  | [] -> ()
  | cs ->
      Buffer.add_string buf "\ncounters:\n";
      List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %12d\n" k v)) cs);
  (match Metrics.gauges () with
  | [] -> ()
  | gs ->
      Buffer.add_string buf "\ngauges:\n";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %12.3f\n" k v))
        gs);
  (match Metrics.histograms () with
  | [] -> ()
  | hs ->
      Buffer.add_string buf "\nhistograms (p50/p95/p99):\n";
      List.iter
        (fun (k, (s : Metrics.summary)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-34s n=%-6d %10.3f %10.3f %10.3f\n" k s.Metrics.count
               s.Metrics.p50 s.Metrics.p95 s.Metrics.p99))
        hs);
  (match Slo.status () with
  | [] -> ()
  | _ ->
      Buffer.add_string buf "\nSLOs (multi-window burn):\n";
      Buffer.add_string buf (Slo.report ()));
  Buffer.contents buf
