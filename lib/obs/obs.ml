(* See obs.mli for the contract.  Implementation notes:

   - The disabled path of every recording entry point is one branch on
     [!on]; nothing else happens (no clock read, no allocation).
   - Span self-time is computed online: a stack of open frames carries
     a per-frame child-duration accumulator, so no post-processing of
     the ring is ever needed — and the aggregate profile survives ring
     eviction because it is updated at span end, not derived from the
     buffer.
   - The ring is a plain [event option array] with a write cursor;
     overflow overwrites the oldest slot (newest events win). *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* ------------------------------------------------------------------ *)
(* Clock *)

module Clock = struct
  (* [Unix.gettimeofday] is wall time, which NTP may step backwards;
     clamping every reading to the running maximum makes the clock
     monotone, which is all span/duration arithmetic needs. *)
  let last = ref 0.

  let now_ms () =
    let t = Unix.gettimeofday () *. 1000. in
    if t > !last then last := t;
    !last

  let elapsed_ms t0 = now_ms () -. t0
end

let epoch = ref (Clock.now_ms ())
let since_epoch_ms () = Clock.now_ms () -. !epoch

(* ------------------------------------------------------------------ *)
(* Events and the ring buffer *)

type span = {
  sname : string;
  scat : string;
  st0_ms : float;
  sdur_ms : float;
  sself_ms : float;
  sdepth : int;
  sattrs : (string * string) list;
}

type event =
  | Span of span
  | Instant of {
      iname : string;
      icat : string;
      it_ms : float;
      iattrs : (string * string) list;
    }

let default_capacity = 32768
let ring = ref (Array.make default_capacity None)
let ring_w = ref 0
let ring_n = ref 0
let dropped_n = ref 0

(* Bounded above: the ring is a diagnostic buffer, not a log.  The
   clamp keeps a workload-sized capacity request from allocating
   unbounded memory; tiny rings stay allowed (tests exercise overflow
   with single-digit capacities). *)
let max_capacity = 1 lsl 20

let set_ring_capacity cap =
  ring := Array.make (min max_capacity (max 1 cap)) None;
  ring_w := 0;
  ring_n := 0;
  dropped_n := 0

let push ev =
  let cap = Array.length !ring in
  !ring.(!ring_w) <- Some ev;
  ring_w := (!ring_w + 1) mod cap;
  if !ring_n < cap then incr ring_n else incr dropped_n

let events () =
  let cap = Array.length !ring in
  let start = (!ring_w - !ring_n + cap) mod cap in
  List.init !ring_n (fun i ->
      match !ring.((start + i) mod cap) with Some e -> e | None -> assert false)

let span_events () =
  List.filter_map (function Span s -> Some s | Instant _ -> None) (events ())

let event_count () = !ring_n
let dropped () = !dropped_n

(* ------------------------------------------------------------------ *)
(* Span recording: frame stack + per-name aggregation *)

type agg = { mutable acount : int; mutable atotal : float; mutable aself : float }

let agg_tbl : (string, agg) Hashtbl.t = Hashtbl.create 64
let spans_seen = ref 0
let spans_total () = !spans_seen

type frame = {
  fname : string;
  fcat : string;
  fattrs : (string * string) list;
  ft0 : float;
  mutable fchild : float;
}

let stack : frame list ref = ref []
let current_depth () = List.length !stack

let record_span ~name ~cat ~attrs ~t0 ~dur ~self ~depth =
  push (Span { sname = name; scat = cat; st0_ms = t0; sdur_ms = dur; sself_ms = self;
               sdepth = depth; sattrs = attrs });
  incr spans_seen;
  let a =
    match Hashtbl.find_opt agg_tbl name with
    | Some a -> a
    | None ->
        let a = { acount = 0; atotal = 0.; aself = 0. } in
        Hashtbl.add agg_tbl name a;
        a
  in
  a.acount <- a.acount + 1;
  a.atotal <- a.atotal +. dur;
  a.aself <- a.aself +. self

let with_span ?(cat = "app") ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let depth = List.length !stack in
    let fr = { fname = name; fcat = cat; fattrs = attrs; ft0 = since_epoch_ms (); fchild = 0. } in
    stack := fr :: !stack;
    Fun.protect
      ~finally:(fun () ->
        match !stack with
        | top :: rest when top == fr ->
            stack := rest;
            let dur = since_epoch_ms () -. fr.ft0 in
            let self = Float.max 0. (dur -. fr.fchild) in
            (match rest with parent :: _ -> parent.fchild <- parent.fchild +. dur | [] -> ());
            record_span ~name:fr.fname ~cat:fr.fcat ~attrs:fr.fattrs ~t0:fr.ft0 ~dur ~self ~depth
        | _ -> () (* a reset () ran inside [f]: the frame is gone, drop it *))
      f
  end

let instant ?(cat = "app") ?(attrs = []) name =
  if !on then
    push (Instant { iname = name; icat = cat; it_ms = since_epoch_ms (); iattrs = attrs })

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

module Metrics = struct
  let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
  let gauges_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

  let counter_ref name =
    match Hashtbl.find_opt counters_tbl name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add counters_tbl name r;
        r

  let incr ?(by = 1) name =
    if !on then begin
      let r = counter_ref name in
      r := !r + by
    end

  let counter name = match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

  let counters () =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let set_gauge name v =
    if !on then
      match Hashtbl.find_opt gauges_tbl name with
      | Some r -> r := v
      | None -> Hashtbl.add gauges_tbl name (ref v)

  let gauge name = Option.map ( ! ) (Hashtbl.find_opt gauges_tbl name)

  let gauges () =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* log2 buckets: 0 -> [0, 2^-32); i in 1..62 -> [2^(i-33), 2^(i-32));
     63 -> [2^30, inf).  frexp gives v = m * 2^e with m in [0.5, 1), so
     floor(log2 v) = e - 1 exactly — the boundaries are exact powers of
     two, no float-log rounding at the edges. *)
  let nbuckets = 64

  let bucket_of v =
    if v < Float.ldexp 1. (-32) then 0
    else if v >= Float.ldexp 1. 30 then nbuckets - 1
    else
      let _, e = Float.frexp v in
      32 + e

  let bucket_lo i = if i <= 0 then 0. else Float.ldexp 1. (i - 33)
  let bucket_hi i = if i >= nbuckets - 1 then Float.infinity else Float.ldexp 1. (i - 32)

  type histo = {
    mutable hcount : int;
    mutable hsum : float;
    mutable hmin : float;
    mutable hmax : float;
    hbuckets : int array;
  }

  let histos_tbl : (string, histo) Hashtbl.t = Hashtbl.create 16

  let observe name v =
    if !on then begin
      let h =
        match Hashtbl.find_opt histos_tbl name with
        | Some h -> h
        | None ->
            let h =
              { hcount = 0; hsum = 0.; hmin = Float.infinity; hmax = Float.neg_infinity;
                hbuckets = Array.make nbuckets 0 }
            in
            Hashtbl.add histos_tbl name h;
            h
      in
      h.hcount <- h.hcount + 1;
      h.hsum <- h.hsum +. v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v;
      let b = h.hbuckets in
      let i = bucket_of v in
      b.(i) <- b.(i) + 1
    end

  let histo_quantile h q =
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount))) in
    let rec walk i cum =
      if i >= nbuckets then h.hmax
      else
        let cum = cum + h.hbuckets.(i) in
        if cum >= rank then Float.min h.hmax (Float.max h.hmin (bucket_hi i)) else walk (i + 1) cum
    in
    walk 0 0

  let quantile name q =
    match Hashtbl.find_opt histos_tbl name with
    | Some h when h.hcount > 0 -> Some (histo_quantile h q)
    | _ -> None

  type summary = {
    count : int;
    sum : float;
    minv : float;
    maxv : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let summary_of h =
    { count = h.hcount; sum = h.hsum; minv = h.hmin; maxv = h.hmax;
      p50 = histo_quantile h 0.50; p95 = histo_quantile h 0.95; p99 = histo_quantile h 0.99 }

  let summary name =
    match Hashtbl.find_opt histos_tbl name with
    | Some h when h.hcount > 0 -> Some (summary_of h)
    | _ -> None

  let histograms () =
    Hashtbl.fold (fun k h acc -> if h.hcount > 0 then (k, summary_of h) :: acc else acc)
      histos_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

module Counter = struct
  type t = int ref

  let make = Metrics.counter_ref

  let add c by = if !on then c := !c + by
  let incr c = add c 1
  let value c = !c
end

(* ------------------------------------------------------------------ *)
(* Profile aggregation *)

module Profile = struct
  type row = { pname : string; pcount : int; ptotal_ms : float; pself_ms : float }

  let rows () =
    Hashtbl.fold
      (fun name a acc ->
        { pname = name; pcount = a.acount; ptotal_ms = a.atotal; pself_ms = a.aself } :: acc)
      agg_tbl []
    |> List.sort (fun a b -> compare b.pself_ms a.pself_ms)

  let find name =
    Option.map
      (fun a -> { pname = name; pcount = a.acount; ptotal_ms = a.atotal; pself_ms = a.aself })
      (Hashtbl.find_opt agg_tbl name)

  let total_ms name = match Hashtbl.find_opt agg_tbl name with Some a -> a.atotal | None -> 0.

  let top n =
    let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
    take n (rows ())
end

(* ------------------------------------------------------------------ *)
(* Reset *)

let reset () =
  set_ring_capacity (Array.length !ring);
  Hashtbl.reset agg_tbl;
  spans_seen := 0;
  stack := [];
  Hashtbl.iter (fun _ r -> r := 0) Metrics.counters_tbl;
  Hashtbl.reset Metrics.gauges_tbl;
  Hashtbl.reset Metrics.histos_tbl;
  epoch := Clock.now_ms ()

(* ------------------------------------------------------------------ *)
(* Exporters *)

(* Obs is below vgraph in the library DAG, so it carries its own tiny
   JSON writer (the reader side round-trips through Vgraph's Json). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.6f" f

let args_json attrs =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          attrs))

let chrome_trace () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun ev ->
      if !first then first := false else Buffer.add_char buf ',';
      match ev with
      | Span s ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape s.sname) (json_escape s.scat)
               (json_float (s.st0_ms *. 1000.))
               (json_float (s.sdur_ms *. 1000.))
               (args_json (("depth", string_of_int s.sdepth) :: s.sattrs)))
      | Instant i ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":1,\"args\":%s}"
               (json_escape i.iname) (json_escape i.icat)
               (json_float (i.it_ms *. 1000.))
               (args_json i.iattrs)))
    (events ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let profile_table () =
  let rows = Profile.rows () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %8s %12s %12s\n" "span" "count" "total ms" "self ms");
  List.iter
    (fun (r : Profile.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %8d %12.3f %12.3f\n" r.Profile.pname r.Profile.pcount
           r.Profile.ptotal_ms r.Profile.pself_ms))
    rows;
  if rows = [] then Buffer.add_string buf "(no spans recorded)\n";
  Buffer.contents buf

let metrics_json ?(extra = []) () =
  let buf = Buffer.create 4096 in
  let kv_block name body = Printf.sprintf "\"%s\":{%s}" name (String.concat "," body) in
  Buffer.add_char buf '{';
  Buffer.add_string buf
    (kv_block "meta"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          extra));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "counters"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
          (Metrics.counters ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "gauges"
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
          (Metrics.gauges ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "histograms"
       (List.map
          (fun (k, (s : Metrics.summary)) ->
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
              (json_escape k) s.Metrics.count (json_float s.Metrics.sum)
              (json_float s.Metrics.minv) (json_float s.Metrics.maxv) (json_float s.Metrics.p50)
              (json_float s.Metrics.p95) (json_float s.Metrics.p99))
          (Metrics.histograms ())));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (kv_block "spans"
       (List.map
          (fun (r : Profile.row) ->
            Printf.sprintf "\"%s\":{\"count\":%d,\"total_ms\":%s,\"self_ms\":%s}"
              (json_escape r.Profile.pname) r.Profile.pcount (json_float r.Profile.ptotal_ms)
              (json_float r.Profile.pself_ms))
          (List.sort (fun (a : Profile.row) b -> compare a.Profile.pname b.Profile.pname)
             (Profile.rows ()))));
  Buffer.add_char buf ',';
  Buffer.add_string buf
    (Printf.sprintf "\"events\":{\"buffered\":%d,\"dropped\":%d,\"spans_total\":%d}"
       (event_count ()) (dropped ()) (spans_total ()));
  Buffer.add_char buf '}';
  Buffer.contents buf

let report () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "observability: %s | %d events buffered, %d dropped, %d spans total\n\n"
       (if !on then "on" else "off")
       (event_count ()) (dropped ()) (spans_total ()));
  Buffer.add_string buf (profile_table ());
  (match Metrics.counters () with
  | [] -> ()
  | cs ->
      Buffer.add_string buf "\ncounters:\n";
      List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %12d\n" k v)) cs);
  (match Metrics.gauges () with
  | [] -> ()
  | gs ->
      Buffer.add_string buf "\ngauges:\n";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-34s %12.3f\n" k v))
        gs);
  (match Metrics.histograms () with
  | [] -> ()
  | hs ->
      Buffer.add_string buf "\nhistograms (p50/p95/p99):\n";
      List.iter
        (fun (k, (s : Metrics.summary)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-34s n=%-6d %10.3f %10.3f %10.3f\n" k s.Metrics.count
               s.Metrics.p50 s.Metrics.p95 s.Metrics.p99))
        hs);
  Buffer.contents buf
