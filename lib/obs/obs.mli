(** Obs — the observability substrate (DESIGN.md §7, extended §12).

    A dependency-free (stdlib + [Unix] only) tracing/metrics/profiling
    library threaded through every layer of the stack: hierarchical
    wall-clock spans emitted into a bounded in-memory ring buffer, a
    registry of named counters/gauges/log2-bucketed histograms with
    per-bucket trace exemplars, causal trace ids with span links, a
    declarative SLO registry with multi-window burn rates, and four
    exporters — Chrome [trace_event] JSON (loadable in
    [about:tracing] / Perfetto, with flow events for the links), a flat
    ASCII profile table (self/total time per span name), a JSON metrics
    dump (the [BENCH_*.json] artifact format) and Prometheus text
    exposition.

    Everything is gated on one global switch ({!set_enabled}); while
    disabled every recording entry point is a single branch — no
    clock reads, no allocation, no events, no counter drift — so
    instrumented hot paths cost (almost) nothing in production. *)

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all buffered events, span aggregates and links, zero every
    counter, clear gauges and histograms, restart every registered
    SLO's windows, and restart the trace epoch. Counter handles made
    with {!Counter.make} stay valid. *)

(** {1 Clock} *)

(** A monotonicized wall clock: readings never decrease, even across
    NTP steps (each reading is clamped to the previous maximum), so
    durations derived from it are never negative. The running maximum
    is an [Atomic.t] advanced with a CAS-max loop, so readings taken
    concurrently from extraction worker domains never regress each
    other either. *)
module Clock : sig
  val now_ms : unit -> float
  (** Milliseconds since the Unix epoch, monotonicized. *)

  val elapsed_ms : float -> float
  (** [elapsed_ms t0] = [now_ms () -. t0]; always >= 0 for a [t0]
      obtained from {!now_ms}. *)
end

val since_epoch_ms : unit -> float
(** Milliseconds since the current trace epoch (process start or the
    last {!reset}) — the timebase of {!span.st0_ms}. *)

(** {1 Spans and events} *)

type span = {
  sname : string;
  scat : string;  (** layer category: target, transport, viewcl, ... *)
  st0_ms : float;  (** start, relative to the trace epoch *)
  sdur_ms : float;  (** total (inclusive) duration *)
  sself_ms : float;  (** duration minus directly-nested child spans *)
  sdepth : int;  (** nesting depth at begin; 0 = top level *)
  sid : int;  (** process-unique span id; 0 never occurs on a recorded span *)
  sparent : int;  (** enclosing span's id; 0 = top level *)
  strace : int;  (** ambient trace id at begin; 0 = no trace *)
  sattrs : (string * string) list;
}

type event =
  | Span of span
  | Instant of {
      iname : string;
      icat : string;
      it_ms : float;
      iattrs : (string * string) list;
    }

val with_span : ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: the span begins before
    [f], ends when [f] returns {e or raises} (the exception is
    re-raised after the span is recorded), so every recorded end
    matches a begin and nesting is structural. Disabled: tail-calls
    [f] directly. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration point event (state changes, journal ops). *)

val current_depth : unit -> int
(** Number of currently-open spans (0 outside any {!with_span}). *)

(** {1 Traces and span links} *)

(** Causal identity that plain nesting cannot express.  A trace id is
    minted per logical operation (e.g. one admitted session op) and
    propagated ambiently: every span begun inside {!Trace.with_trace}
    records it in {!span.strace}.  Span links connect spans across the
    nesting tree — a hedged op to its canary, a retry to the attempt it
    replaces — and are exported as Chrome flow events. *)
module Trace : sig
  type link = { lkind : string; lfrom : int; lto : int }

  val mint : unit -> int
  (** A fresh nonzero trace id; 0 while disabled. *)

  val current : unit -> int
  (** The ambient trace id; 0 outside any {!with_trace}. *)

  val with_trace : int -> (unit -> 'a) -> 'a
  (** [with_trace tid f] runs [f] with [tid] ambient (restored on
      return or raise). [with_trace 0 f] is exactly [f ()]. *)

  val current_span : unit -> int
  (** The innermost open span's id; 0 outside any span (or disabled). *)

  val link : kind:string -> from_span:int -> to_span:int -> unit
  (** Record a causal edge between two spans (by id; either may still
      be open). No-op while disabled or when either id is 0. Bounded:
      the oldest link is dropped beyond 16384. *)

  val links : unit -> link list
  (** All recorded links, oldest first. *)
end

(** {1 The ring buffer} *)

val events : unit -> event list
(** Buffered events, oldest first. At most the ring capacity; once the
    ring overflows the {e oldest} events are evicted first. *)

val span_events : unit -> span list
(** The [Span _] subset of {!events}, oldest first. *)

val event_count : unit -> int
val dropped : unit -> int
(** Events evicted by overflow since the last {!reset}. *)

val spans_total : unit -> int
(** Spans ever recorded since the last {!reset} (survives eviction). *)

val ring_capacity : unit -> int

val set_ring_capacity : int -> unit
(** Resize the ring (default 32768 events), dropping buffered events.
    Bounded: the requested capacity is clamped to at most [2^20]
    events, so callers sizing the ring to a workload (e.g. [bench
    --obs] sizing it to the full suite) cannot allocate unbounded
    memory. *)

(** {1 Metrics registry} *)

module Metrics : sig
  val incr : ?by:int -> string -> unit
  val set_gauge : string -> float -> unit

  val observe : string -> float -> unit
  (** Record one sample into the named log2-bucketed histogram.
      Bucket [0] holds values below [2^-32]; bucket [i] (1..62) holds
      [2^(i-33) <= v < 2^(i-32)]; bucket [63] holds [v >= 2^30].
      When a trace is ambient ({!Trace.current} nonzero) the sample's
      bucket remembers it as that bucket's exemplar. *)

  val counter : string -> int
  (** Current value; 0 for an unknown counter. *)

  val gauge : string -> float option
  val counters : unit -> (string * int) list
  (** All counters, sorted by name. *)

  val gauges : unit -> (string * float) list
  (** All gauges, sorted by name. *)

  type summary = {
    count : int;
    sum : float;
    minv : float;
    maxv : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  val summary : string -> summary option
  val histograms : unit -> (string * summary) list
  (** All non-empty histograms, sorted by name. *)

  val quantile : string -> float -> float option
  (** [quantile name q] estimates the [q]-quantile ([0 <= q <= 1]) as
      the upper edge of the first bucket whose cumulative count covers
      rank [ceil (q * count)], clamped into [[minv, maxv]] — so it is
      monotone in [q] by construction. *)

  val exemplars : string -> (int * int * float) list
  (** [(bucket, trace_id, value)] for every bucket holding an exemplar,
      ascending bucket. Empty for an unknown histogram or when no
      sample was ever observed under an ambient trace. *)

  val top_exemplar : string -> (int * float) option
  (** The exemplar of the highest occupied bucket — the trace behind
      the histogram's tail (e.g. the p95 outlier a bench table names). *)

  (** Bucket geometry, exposed for tests. *)

  val bucket_of : float -> int
  val bucket_lo : int -> float
  val bucket_hi : int -> float
end

(** Pre-resolved counter handles for hot paths: one [enabled] branch
    plus an integer add, no hashtable lookup per increment. *)
module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create; the same name always yields the same counter. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** The {e global} value; lane-buffered deltas not yet absorbed are
      not included. *)
end

(** {1 Parallel extraction lanes} *)

(** Per-domain recording buffers for the parallel extraction engine
    (DESIGN.md §14).  The global tables (event ring, span aggregates,
    metrics registry, links queue) are single-domain structures; a
    worker domain must never touch them.  The pool wraps every task in
    {!Lane.scoped}, which installs a domain-local buffer capturing the
    task's events, counter deltas, gauge writes, histogram samples and
    span links; at the join the parent calls {!Lane.absorb} on each
    child lane {e in shard order}, folding the buffers into either the
    enclosing lane (nested splits) or the global registry — so the
    merged registry is bit-identical whatever the domain count or
    steal schedule. *)
module Lane : sig
  type t

  val make : unit -> t
  (** A fresh, empty lane buffer. *)

  val scoped : t -> (unit -> 'a) -> 'a
  (** [scoped l f] runs [f] with [l] installed as the calling domain's
      recording context (the previous context is restored on return or
      raise; nesting is allowed — the main domain helps execute shard
      tasks too). *)

  val absorb : t -> unit
  (** Fold the lane's buffers into the caller's current context —
      the enclosing lane if one is active, else the global registry —
      preserving intra-lane recording order, then empty the lane.
      Must be called from the (single) joining thread, never
      concurrently with the lane still executing. *)

  val active : unit -> bool
  (** Whether the calling domain currently records into a lane. *)
end

(** {1 Span profile (aggregated)} *)

module Profile : sig
  type row = { pname : string; pcount : int; ptotal_ms : float; pself_ms : float }

  val rows : unit -> row list
  (** All span names ever recorded (independent of ring eviction),
      sorted by self time, highest first. *)

  val find : string -> row option

  val total_ms : string -> float
  (** Aggregate total for a span name; 0 for an unknown name. *)

  val top : int -> row list

  val breakdown : unit -> row list
  (** Per-(name + selected attrs) aggregates — rows named like
      ["transport.fetch{profile=kgdb_rpi400}"] — updated at span end
      like {!rows}, so per-target splits survive ring eviction. Only
      attrs whose key is in the breakdown key set are folded in, and
      each base name is capped at 64 distinct attr combinations (the
      overflow lands in ["name{...}"]). *)
end

val set_breakdown_keys : string list -> unit
(** The attr keys folded into {!Profile.breakdown} aggregate keys
    (default [["profile"; "target"; "replica"; "sid"]]). Never include
    a high-cardinality attr (byte counts, addresses). *)

(** {1 SLO engine} *)

(** Declarative service-level objectives evaluated over the metrics
    registry with multi-window burn rates (DESIGN.md §12).  Strictly
    read-only with respect to control: health/admission decisions stay
    in [lib/session]. *)
module Slo : sig
  type kind =
    | Good_bad of { good : string; bad : string }
        (** availability-style: two counters; total = good + bad *)
    | Bad_total of { bad : string; total : string }
        (** ratio-style: staleness, fault rate — two counters *)
    | Histogram_le of { histo : string; threshold_ms : float }
        (** latency-style: samples in buckets at/above the threshold
            are bad (log2-bucket granularity) *)
    | Gauge_le of { gauge : string; threshold : float }
        (** sampled at each tick: one bad sample when the gauge
            exceeds the threshold *)

  type objective = { oname : string; okind : kind; otarget : float }
  (** [otarget] is the good fraction to sustain (e.g. 0.99); the error
      budget is its complement. *)

  val register : objective -> unit
  (** Idempotent: re-registering an identical objective keeps its
      accumulated windows; a changed objective restarts them. *)

  val clear : unit -> unit
  val objectives : unit -> objective list

  val tick : unit -> unit
  (** Close one evaluation epoch: per objective, take the (bad, total)
      delta since the last tick, compute the burn rate over the fast
      (1-epoch) and slow (8-epoch) windows, export
      [slo.<name>.burn_rate] (min of the two — the multi-window alert
      rule), [.burn_fast], [.burn_slow] and [.budget_remaining]
      gauges, and emit a structured [slo.breach] instant (severity
      warn at burn >= 1, page at >= 6) on escalation and [slo.clear]
      on recovery. No-op while disabled. *)

  type status = {
    slo : string;
    target : float;
    burn_fast : float;
    burn_slow : float;
    burn_rate : float;
    budget_remaining : float;
    severity : string;  (** "ok" | "warn" | "page" *)
  }

  val status : unit -> status list
  (** One row per objective, registration order, as of the last tick. *)

  val report : unit -> string
  (** The {!status} rows as an aligned ASCII table. *)
end

(** {1 Exporters} *)

val chrome_trace : unit -> string
(** The buffered events as Chrome [trace_event] JSON
    ([{"traceEvents": [...]}], complete events [ph:"X"] in
    microseconds, span/trace/parent ids in [args]) — loadable in
    [about:tracing] and Perfetto. Span links are appended as flow
    events ([ph:"s"]/[ph:"f"] pairs named by link kind), so hedge /
    canary / retry / probation arrows render; links whose endpoint
    spans were evicted from the ring are skipped. *)

val profile_table : unit -> string
(** Flat ASCII profile: count / total ms / self ms per span name. *)

val metrics_json : ?extra:(string * string) list -> unit -> string
(** The whole registry as JSON: [meta] (the [extra] pairs), [counters],
    [gauges] (including [slo.*] and the ring-pressure gauges),
    [histograms] (with quantile summaries), [exemplars] (per-bucket
    trace ids), [spans] (aggregated profile rows) and [events] (ring
    statistics). This is the [BENCH_*.json] artifact format. *)

val prometheus : unit -> string
(** Prometheus text exposition: counters, gauges, and histograms as
    quantile summaries ([name{quantile="0.5"}], [_sum], [_count]).
    Names are mangled to the prometheus charset. *)

val report : unit -> string
(** Human-readable report: profile table (+ per-attribute breakdown) +
    counters + gauges + histogram summaries + SLO table + ring
    statistics (the [vprof report] text). Prints a loud warning when
    ring eviction has dropped events. *)
