(** Obs — the observability substrate (DESIGN.md §7).

    A dependency-free (stdlib + [Unix] only) tracing/metrics/profiling
    library threaded through every layer of the stack: hierarchical
    wall-clock spans emitted into a bounded in-memory ring buffer, a
    registry of named counters/gauges/log2-bucketed histograms, and
    three exporters — Chrome [trace_event] JSON (loadable in
    [about:tracing] / Perfetto), a flat ASCII profile table (self/total
    time per span name), and a JSON metrics dump (the [BENCH_*.json]
    artifact format).

    Everything is gated on one global switch ({!set_enabled}); while
    disabled every recording entry point is a single branch — no
    clock reads, no allocation, no events, no counter drift — so
    instrumented hot paths cost (almost) nothing in production. *)

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all buffered events and span aggregates, zero every counter,
    clear gauges and histograms, and restart the trace epoch. Counter
    handles made with {!Counter.make} stay valid. *)

(** {1 Clock} *)

(** A monotonicized wall clock: readings never decrease, even across
    NTP steps (each reading is clamped to the previous maximum), so
    durations derived from it are never negative. *)
module Clock : sig
  val now_ms : unit -> float
  (** Milliseconds since the Unix epoch, monotonicized. *)

  val elapsed_ms : float -> float
  (** [elapsed_ms t0] = [now_ms () -. t0]; always >= 0 for a [t0]
      obtained from {!now_ms}. *)
end

val since_epoch_ms : unit -> float
(** Milliseconds since the current trace epoch (process start or the
    last {!reset}) — the timebase of {!span.st0_ms}. *)

(** {1 Spans and events} *)

type span = {
  sname : string;
  scat : string;  (** layer category: target, transport, viewcl, ... *)
  st0_ms : float;  (** start, relative to the trace epoch *)
  sdur_ms : float;  (** total (inclusive) duration *)
  sself_ms : float;  (** duration minus directly-nested child spans *)
  sdepth : int;  (** nesting depth at begin; 0 = top level *)
  sattrs : (string * string) list;
}

type event =
  | Span of span
  | Instant of {
      iname : string;
      icat : string;
      it_ms : float;
      iattrs : (string * string) list;
    }

val with_span : ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: the span begins before
    [f], ends when [f] returns {e or raises} (the exception is
    re-raised after the span is recorded), so every recorded end
    matches a begin and nesting is structural. Disabled: tail-calls
    [f] directly. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration point event (state changes, journal ops). *)

val current_depth : unit -> int
(** Number of currently-open spans (0 outside any {!with_span}). *)

(** {1 The ring buffer} *)

val events : unit -> event list
(** Buffered events, oldest first. At most the ring capacity; once the
    ring overflows the {e oldest} events are evicted first. *)

val span_events : unit -> span list
(** The [Span _] subset of {!events}, oldest first. *)

val event_count : unit -> int
val dropped : unit -> int
(** Events evicted by overflow since the last {!reset}. *)

val spans_total : unit -> int
(** Spans ever recorded since the last {!reset} (survives eviction). *)

val set_ring_capacity : int -> unit
(** Resize the ring (default 32768 events), dropping buffered events.
    Bounded: the requested capacity is clamped to at most [2^20]
    events, so callers sizing the ring to a workload (e.g. [bench
    --obs] sizing it to the full suite) cannot allocate unbounded
    memory. *)

(** {1 Metrics registry} *)

module Metrics : sig
  val incr : ?by:int -> string -> unit
  val set_gauge : string -> float -> unit

  val observe : string -> float -> unit
  (** Record one sample into the named log2-bucketed histogram.
      Bucket [0] holds values below [2^-32]; bucket [i] (1..62) holds
      [2^(i-33) <= v < 2^(i-32)]; bucket [63] holds [v >= 2^30]. *)

  val counter : string -> int
  (** Current value; 0 for an unknown counter. *)

  val gauge : string -> float option
  val counters : unit -> (string * int) list
  (** All counters, sorted by name. *)

  val gauges : unit -> (string * float) list
  (** All gauges, sorted by name. *)

  type summary = {
    count : int;
    sum : float;
    minv : float;
    maxv : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  val summary : string -> summary option
  val histograms : unit -> (string * summary) list
  (** All non-empty histograms, sorted by name. *)

  val quantile : string -> float -> float option
  (** [quantile name q] estimates the [q]-quantile ([0 <= q <= 1]) as
      the upper edge of the first bucket whose cumulative count covers
      rank [ceil (q * count)], clamped into [[minv, maxv]] — so it is
      monotone in [q] by construction. *)

  (** Bucket geometry, exposed for tests. *)

  val bucket_of : float -> int
  val bucket_lo : int -> float
  val bucket_hi : int -> float
end

(** Pre-resolved counter handles for hot paths: one [enabled] branch
    plus an integer add, no hashtable lookup per increment. *)
module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create; the same name always yields the same counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** {1 Span profile (aggregated)} *)

module Profile : sig
  type row = { pname : string; pcount : int; ptotal_ms : float; pself_ms : float }

  val rows : unit -> row list
  (** All span names ever recorded (independent of ring eviction),
      sorted by self time, highest first. *)

  val find : string -> row option

  val total_ms : string -> float
  (** Aggregate total for a span name; 0 for an unknown name. *)

  val top : int -> row list
end

(** {1 Exporters} *)

val chrome_trace : unit -> string
(** The buffered events as Chrome [trace_event] JSON
    ([{"traceEvents": [...]}], complete events [ph:"X"] in
    microseconds) — loadable in [about:tracing] and Perfetto. *)

val profile_table : unit -> string
(** Flat ASCII profile: count / total ms / self ms per span name. *)

val metrics_json : ?extra:(string * string) list -> unit -> string
(** The whole registry as JSON: [meta] (the [extra] pairs), [counters],
    [gauges], [histograms] (with quantile summaries), [spans]
    (aggregated profile rows) and [events] (ring statistics). This is
    the [BENCH_*.json] artifact format. *)

val report : unit -> string
(** Human-readable report: profile table + counters + gauges +
    histogram summaries + ring statistics (the [vprof report] text). *)
