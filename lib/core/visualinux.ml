(** Visualinux — the framework façade (paper §4).

    A {!session} binds a booted simulated kernel, the debugger target, and
    the pane manager, and exposes the three v-commands:

    - {!vplot}: evaluate a ViewCL program, open the result in a pane;
    - {!vctrl}: pane control — apply ViewQL, split, focus, persist;
    - {!vchat}: natural language -> ViewQL -> apply. *)

module Scripts = Scripts
module Objectives = Objectives

type session = {
  kernel : Kstate.t;
  target : Target.t;
  mutable panel : Panel.t;  (** replaced wholesale by {!recover} *)
  cfg : Viewcl.config;
  mutable target_pid : int;
  caches : (Panel.pane_id, Viewcl.cache) Hashtbl.t;
      (** per-pane plot caches: {!vrefresh} and {!refresh_stale} pass a
          pane's cache back to ViewCL so a re-plot re-extracts only the
          boxes whose pages were written since the last one *)
  pool : Viewcl.Dpool.t option;
      (** domain pool for parallel extraction, sized by
          [VISUALINUX_DOMAINS] at attach; [None] below 2 domains, and
          every extraction then takes the classic sequential path *)
}

(** The EMOJI decorator instances of Table 1: stateful-value glyphs. *)
let emojis =
  [ ("lock", fun v -> if v <> 0 then "[LOCKED]" else "[unlocked]");
    ("onrq", fun v -> if v <> 0 then "[on-rq]" else "[off-rq]");
    ("dead", fun v -> if v <> 0 then "[DEAD]" else "[live]") ]

let config () = { Viewcl.flags = Ktypes.flag_tables; emojis }

(** Attach to a booted kernel. [target_pid] (default: the first user
    process) is exposed to ViewCL scripts as a macro. [transport], when
    given, routes every target read over a simulated debugger link
    (latency accounting, fault injection, retry/backoff, breaker).
    [target], when given, reuses an existing target handle instead of
    building a fresh one — the session server's multiplexing hook: N
    sessions sharing one handle also share its generation-validated
    read cache, so one session's cold plot warms every session's
    refresh of the same structures. *)
let attach ?target_pid ?transport ?target kernel =
  let target = match target with Some t -> t | None -> Khelpers.attach kernel in
  Option.iter (Target.set_transport target) transport;
  let pid =
    match target_pid with
    | Some p -> p
    | None -> (
        (* Prefer a user-space group leader with a populated fd table (the
           workload's first worker); fall back to any user leader. *)
        let ctx = kernel.Kstate.ctx in
        let user t =
          Kcontext.r64 ctx t "task_struct" "mm" <> 0
          && Ktask.pid ctx t > 1
          && Kcontext.r64 ctx t "task_struct" "group_leader" = t
        in
        let fd_count t =
          match Kcontext.r64 ctx t "task_struct" "files" with
          | 0 -> 0
          | files -> List.length (Kvfs.open_fds kernel.Kstate.vfs files)
        in
        let users = List.filter user (Kstate.all_tasks kernel) in
        match List.find_opt (fun t -> fd_count t >= 4) users with
        | Some t -> Ktask.pid ctx t
        | None -> ( match users with t :: _ -> Ktask.pid ctx t | [] -> 1))
  in
  Target.add_macro target "target_pid" pid;
  let pool =
    match Viewcl.Dpool.default_domains () with
    | n when n >= 2 -> Some (Viewcl.Dpool.create n)
    | _ -> None
  in
  { kernel; target; panel = Panel.create (); cfg = config (); target_pid = pid;
    caches = Hashtbl.create 8; pool }

let set_target_pid s pid =
  s.target_pid <- pid;
  Target.add_macro s.target "target_pid" pid

(* ------------------------------------------------------------------ *)
(* v-commands *)

(** Statistics of one extraction, for the Table 4 experiment. *)
type plot_stats = {
  boxes : int;
  bytes : int;  (** total sizeof of plotted kernel objects *)
  reads : int;  (** target read operations during extraction *)
  read_bytes : int;
  wall_ms : float;  (** extraction time on the monotonicized {!Obs.Clock} *)
  link : Transport.snapshot option;  (** transport health, when attached *)
  spans : int;  (** obs spans recorded during this plot (0 when disabled) *)
  trace : Obs.span list option;  (** those spans, oldest first, when tracing *)
  cache_hits : int;  (** boxes adopted from the previous plot of this pane *)
  cache_misses : int;  (** boxes built for the first time *)
  cache_invalidated : int;  (** stale cached boxes re-extracted in place *)
  trace_id : int;  (** causal trace this extraction ran under (0 when off) *)
}

(** vplot: evaluate ViewCL source, open a primary pane with the plot. *)
let vplot s ?(title = "plot") src =
  Target.reset_stats s.target;
  Option.iter Transport.begin_plot (Target.transport s.target);
  let spans0 = Obs.spans_total () in
  let rel0 = Obs.since_epoch_ms () in
  (* thread the ambient trace through the extraction; a standalone plot
     (no session op around it) mints its own root trace *)
  let tid =
    if Obs.Trace.current () <> 0 then Obs.Trace.current () else Obs.Trace.mint ()
  in
  let t0 = Obs.Clock.now_ms () in
  let res =
    Obs.Trace.with_trace tid (fun () ->
        Obs.with_span ~cat:"core" ~attrs:[ ("title", title) ] "core.vplot" (fun () ->
            Viewcl.run ~cfg:s.cfg ?pool:s.pool s.target src))
  in
  let wall_ms = Obs.Clock.elapsed_ms t0 in
  if Obs.enabled () then
    Obs.Trace.with_trace tid (fun () -> Obs.Metrics.observe "core.plot_ms" wall_ms);
  let st = Target.stats s.target in
  Vgraph.set_title res.Viewcl.graph title;
  let pane = Panel.open_primary s.panel ~program:src res.Viewcl.graph in
  let spans = Obs.spans_total () - spans0 in
  let trace =
    if Obs.enabled () then
      Some (List.filter (fun (sp : Obs.span) -> sp.Obs.st0_ms >= rel0) (Obs.span_events ()))
    else None
  in
  Hashtbl.replace s.caches pane.Panel.pid res.Viewcl.cache;
  let stats =
    { boxes = Vgraph.box_count res.Viewcl.graph; bytes = Vgraph.total_bytes res.Viewcl.graph;
      reads = st.Target.reads; read_bytes = st.Target.bytes; wall_ms;
      link = Option.map Transport.snapshot (Target.transport s.target); spans; trace;
      cache_hits = res.Viewcl.cache_hits; cache_misses = res.Viewcl.cache_misses;
      cache_invalidated = res.Viewcl.cache_invalidated; trace_id = tid }
  in
  (pane, res, stats)

(** vctrl subcommands. *)
type vctrl =
  | Apply of { pane : Panel.pane_id; viewql : string }
  | Split of { pane : Panel.pane_id; dir : [ `Horizontal | `Vertical ]; program : string }
  | Focus of { addr : int }
  | Select of { pane : Panel.pane_id; boxes : Vgraph.box_id list }
  | Close of { pane : Panel.pane_id }

type vctrl_result =
  | Updated of int
  | Opened of Panel.pane_id
  | Found of (Panel.pane_id * Vgraph.box_id) list
  | Closed

let vctrl s cmd =
  match cmd with
  | Apply { pane; viewql } -> Updated (Panel.refine s.panel ~at:pane viewql)
  | Split { pane; dir; program } ->
      Option.iter Transport.begin_plot (Target.transport s.target);
      let res = Viewcl.run ~cfg:s.cfg ?pool:s.pool s.target program in
      let p = Panel.split s.panel ~dir ~at:pane ~program res.Viewcl.graph in
      Hashtbl.replace s.caches p.Panel.pid res.Viewcl.cache;
      Opened p.Panel.pid
  | Focus { addr } -> Found (Panel.focus s.panel ~addr)
  | Select { pane; boxes } ->
      let p = Panel.select s.panel ~from:pane boxes in
      Opened p.Panel.pid
  | Close { pane } ->
      Panel.close s.panel pane;
      Closed

(** vchat: natural language -> ViewQL (via the deterministic synthesizer
    or a plugged-in LLM) -> applied to the pane. Returns the synthesized
    program and the number of boxes updated. *)
let vchat s ?llm ~pane text =
  let program = Vchat.synthesize ?llm text in
  let updated = Panel.refine s.panel ~at:pane program in
  (program, updated)

(** vprof: the profiling v-command — toggle tracing, print the profile
    report, or export the buffered events (Chrome trace JSON), the
    metrics registry (JSON) or a Prometheus text scrape to a file. *)
type vprof =
  | Prof_on
  | Prof_off
  | Prof_report
  | Prof_export of string  (** destination file for the Chrome trace *)
  | Prof_export_metrics of string  (** destination file for metrics JSON *)
  | Prof_export_prom of string  (** destination file for Prometheus text *)

type vprof_result =
  | Prof_state of bool  (** tracing now enabled? *)
  | Prof_text of string  (** the report *)
  | Prof_written of string  (** exported trace path *)

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

let vprof _s cmd =
  match cmd with
  | Prof_on ->
      Obs.set_enabled true;
      Prof_state true
  | Prof_off ->
      Obs.set_enabled false;
      Prof_state false
  | Prof_report -> Prof_text (Obs.report ())
  | Prof_export file ->
      write_file file (Obs.chrome_trace ());
      Prof_written file
  | Prof_export_metrics file ->
      write_file file (Obs.metrics_json ());
      Prof_written file
  | Prof_export_prom file ->
      write_file file (Obs.prometheus ());
      Prof_written file

(** vverify: run the structural sanitizer ({!Sanity}) over a pane's
    extracted graph on demand.  Consistent sections guarantee the bytes
    were read atomically; vverify asks whether they form legal
    structures.  Suspect boxes are stamped so the next render of the
    pane shows their [SUSPECT:<law>] tags.  [None] when the pane does
    not exist. *)
let vverify ?(mark = true) s ~pane =
  Option.map
    (fun p -> Sanity.check_graph ~mark s.kernel.Kstate.ctx p.Panel.graph)
    (Panel.pane_opt s.panel pane)

(* ------------------------------------------------------------------ *)
(* Session persistence: save pane programs + refinement histories and
   replay them against a (possibly different) kernel state — "persisting
   the state of panes and plots for reuse across debugging sessions". *)

let save_session s = Panel.to_json s.panel

(** The replayable essence of a session: primary pane programs with their
    refinement histories. *)
let session_programs s = Panel.saved_programs s.panel

(** Replay saved programs into [s] (typically a fresh session on a new
    kernel): re-extracts each plot and re-applies its ViewQL history. *)
let replay s programs =
  List.map
    (fun (program, history) ->
      let pane, res, _ = vplot s program in
      List.iter (fun ql -> ignore (Panel.refine s.panel ~at:pane.Panel.pid ql)) history;
      (pane, res))
    programs

(* ------------------------------------------------------------------ *)
(* Crash recovery: the panel journals every session op; after the link
   dies mid-extraction, [recover] reconnects and replays the journal
   against the same kernel.  Plotting is read-only, so replaying a
   program yields the same graph — and Vgraph box ids are assigned
   per-graph sequentially, so the recovered panes carry the same box
   ids the pre-crash session had. *)

(** Run one ViewCL program for pane recovery; [None] when the link is
    (still) unusable, so the pane comes back [stale] instead of empty.
    With [?cache] (a pane's plot cache) the extraction is incremental:
    only boxes whose pages were written since the cached plot are
    re-extracted, and the updated cache is published through
    [on_cache]. *)
let extract_for ?cache ?(on_cache = fun _ -> ()) ?(on_fail = fun () -> ()) s program =
  match Target.transport s.target with
  | Some tr when Transport.link tr = Transport.Down -> None
  | tr_opt -> (
      Option.iter Transport.begin_plot tr_opt;
      match Viewcl.run ~cfg:s.cfg ?cache ?pool:s.pool s.target program with
      | res ->
          on_cache res.Viewcl.cache;
          Some res.Viewcl.graph
      | exception Viewcl.Error _ ->
          (* Expected extraction failure (bad program against this
             state, budget, eval error).  The failed run may have left
             [cache]'s graph mid-mutation, so the caller must stop
             reusing it — that is what [on_fail] is for. *)
          on_fail ();
          None
      | exception e ->
          (* Unexpected failures surface to the caller rather than
             masquerading as "pane is stale"; the cache is equally
             unusable. *)
          on_fail ();
          raise e)

(** Rebuild the whole pane layout from the session journal (or an
    explicitly supplied one, e.g. loaded from disk).  Reconnects a dead
    link first.  Returns the number of panes that came back stale. *)
let recover ?ops s =
  (match Target.transport s.target with
  | Some tr when Transport.link tr = Transport.Down -> Transport.reconnect tr
  | _ -> ());
  (* Journal replay rebuilds every pane from scratch (and reassigns pane
     ids as the ops are replayed), so the per-pane caches are dead
     weight — drop them rather than risk pairing a cache with the wrong
     pane.  The read-cache hit/miss counters restart with them: a
     recovery opens a fresh cache epoch, so hit-rate reporting never
     mixes pre- and post-recovery traffic. *)
  Hashtbl.reset s.caches;
  Target.reset_cache_stats s.target;
  let ops = match ops with Some o -> o | None -> Panel.journal s.panel in
  let panel, stale = Panel.recover ~extract:(extract_for s) ops in
  s.panel <- panel;
  stale

(** Re-extract every stale pane; returns the ids brought back live.
    Panes plotted in this session refresh incrementally through their
    plot cache. *)
let refresh_stale s =
  List.filter
    (fun id ->
      Panel.refresh s.panel ~at:id
        ~extract:
          (extract_for
             ?cache:(Hashtbl.find_opt s.caches id)
             ~on_cache:(Hashtbl.replace s.caches id)
             ~on_fail:(fun () -> Hashtbl.remove s.caches id)
             s))
    (Panel.stale_ids s.panel)

(** vrefresh: incrementally re-plot a primary pane in place.  The pane's
    plot cache carries every box of the previous extraction stamped with
    the (page, generation) pairs it read; the re-plot adopts boxes whose
    pages are untouched and re-extracts — in place, under the same box
    ids — only those invalidated by kernel writes, then replays the
    pane's ViewQL history.  Returns the ViewCL result and {!plot_stats}
    (same shape as {!vplot}); [None] for unknown/secondary panes or a
    dead link. *)
let vrefresh s ~pane =
  match Panel.pane_opt s.panel pane with
  | None -> None
  | Some { Panel.kind = Panel.Secondary _; _ } -> None
  | Some { Panel.kind = Panel.Primary { program }; _ } -> (
      match Target.transport s.target with
      | Some tr when Transport.link tr = Transport.Down -> None
      | tr_opt -> (
          Target.reset_stats s.target;
          Option.iter Transport.begin_plot tr_opt;
          let spans0 = Obs.spans_total () in
          let rel0 = Obs.since_epoch_ms () in
          let tid =
            if Obs.Trace.current () <> 0 then Obs.Trace.current ()
            else Obs.Trace.mint ()
          in
          let t0 = Obs.Clock.now_ms () in
          (* A failed run can leave the cache's shared graph mid-mutation
             (reset boxes, partial views — run_exn restores the roots but
             not box contents): drop the cache so the next refresh of
             this pane re-extracts cold into a fresh graph, and flag the
             pane stale so its render says the plot predates the failure.
             Only the expected Viewcl failure maps to None; anything else
             surfaces. *)
          let drop_cache () =
            Hashtbl.remove s.caches pane;
            Option.iter (fun p -> p.Panel.stale <- true) (Panel.pane_opt s.panel pane)
          in
          match
            Obs.Trace.with_trace tid (fun () ->
                Obs.with_span ~cat:"core" "core.vrefresh" (fun () ->
                    match
                      Viewcl.run ~cfg:s.cfg
                        ?cache:(Hashtbl.find_opt s.caches pane)
                        ?pool:s.pool s.target program
                    with
                    | res ->
                        Hashtbl.replace s.caches pane res.Viewcl.cache;
                        if
                          Panel.refresh s.panel ~at:pane
                            ~extract:(fun _ -> Some res.Viewcl.graph)
                        then Some res
                        else None
                    | exception Viewcl.Error _ ->
                        drop_cache ();
                        None
                    | exception e ->
                        drop_cache ();
                        raise e))
          with
          | None -> None
          | Some res ->
              let wall_ms = Obs.Clock.elapsed_ms t0 in
              if Obs.enabled () then
                Obs.Trace.with_trace tid (fun () ->
                    Obs.Metrics.observe "core.plot_ms" wall_ms);
              let st = Target.stats s.target in
              let spans = Obs.spans_total () - spans0 in
              let trace =
                if Obs.enabled () then
                  Some
                    (List.filter
                       (fun (sp : Obs.span) -> sp.Obs.st0_ms >= rel0)
                       (Obs.span_events ()))
                else None
              in
              Some
                ( res,
                  { boxes = Vgraph.box_count res.Viewcl.graph;
                    bytes = Vgraph.total_bytes res.Viewcl.graph;
                    reads = st.Target.reads; read_bytes = st.Target.bytes; wall_ms;
                    link = Option.map Transport.snapshot (Target.transport s.target);
                    spans; trace; cache_hits = res.Viewcl.cache_hits;
                    cache_misses = res.Viewcl.cache_misses;
                    cache_invalidated = res.Viewcl.cache_invalidated;
                    trace_id = tid } )))

(** Render one pane as ASCII, with its [STALE] tag and the transport
    health line when a link is attached. *)
let render_pane s id =
  Option.map
    (fun p ->
      let roots =
        match p.Panel.kind with
        | Panel.Secondary { picked; _ } -> Some picked
        | Panel.Primary _ -> None
      in
      Render.ascii ?roots ~stale:p.Panel.stale
        ?transport:(Target.transport s.target) p.Panel.graph)
    (Panel.pane_opt s.panel id)

(* ------------------------------------------------------------------ *)
(* Naive ViewCL synthesis (paper §4: "vplot ... can also synthesize naive
   ViewCL code for trivial debugging objectives"): generate a Box showing
   every scalar field of a registered struct, from the type registry. *)

let synthesize_viewcl reg ~typ ~expr =
  if not (Ctype.is_defined reg typ) then
    invalid_arg (Printf.sprintf "vplot_auto: unknown type %S" typ);
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "define Auto_%s as Box<%s> [\n" typ typ);
  List.iter
    (fun f ->
      let name = f.Ctype.fname in
      match f.Ctype.ftyp with
      | Ctype.Int _ | Ctype.Bool -> Buffer.add_string buf (Printf.sprintf "  Text %s\n" name)
      | Ctype.Array (Ctype.Int { Ctype.ik_size = 1; _ }, _) ->
          Buffer.add_string buf (Printf.sprintf "  Text<string> %s\n" name)
      | Ctype.Ptr (Ctype.Func _) ->
          Buffer.add_string buf (Printf.sprintf "  Text<fptr> %s\n" name)
      | Ctype.Ptr _ -> Buffer.add_string buf (Printf.sprintf "  Text<raw_ptr> %s\n" name)
      | Ctype.Named n when Ctype.is_defined reg n && Ctype.kind_of reg n = Ctype.Enum_kind ->
          Buffer.add_string buf (Printf.sprintf "  Text<enum:%s> %s\n" n name)
      | Ctype.Named _ | Ctype.Array _ | Ctype.Void | Ctype.Func _ ->
          (* embedded aggregates are beyond a naive plot *)
          ())
    (Ctype.fields reg typ);
  Buffer.add_string buf "]\n";
  Buffer.add_string buf (Printf.sprintf "plot Auto_%s(${%s})\n" typ expr);
  Buffer.contents buf

(** vplot with synthesized ViewCL: plot the struct [typ] object denoted by
    the C expression [expr], showing all its scalar fields. *)
let vplot_auto s ~typ ~expr =
  let src = synthesize_viewcl (Target.types s.target) ~typ ~expr in
  vplot s ~title:(Printf.sprintf "auto: %s" typ) src

(* ------------------------------------------------------------------ *)
(* Convenience: run a Table 2 figure end to end. *)

let plot_figure s (sc : Scripts.script) =
  let title = Printf.sprintf "ULK Fig %s: %s" sc.Scripts.fig sc.Scripts.descr in
  vplot s ~title sc.Scripts.source
