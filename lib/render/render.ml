(** Rendering of extracted object graphs.

    Substitutes for the paper's TypeScript/browser visualizer: the same
    semantic content (boxes, views, links, attributes) rendered as ASCII
    cards (for terminals, tests and the bench harness), Graphviz DOT, or
    standalone SVG. Honors the ViewQL display attributes: [trimmed] boxes
    vanish with their subtrees, [collapsed] boxes render as a stub,
    [view] selects which item set is shown, and [direction] controls
    container member flow. *)

let box_ref b = Printf.sprintf "#%d" b.Vgraph.id

(* All status tags a box carries, in one deterministic order — severity
   first ([BROKEN] = faulty memory, [TORN] = raced by a writer, then
   [SUSPECT:<law>] sorted by law) — so tags compose instead of the last
   marker clobbering the rest. *)
let box_tags b =
  (match Vgraph.broken b with Some _ -> [ "[BROKEN]" ] | None -> [])
  @ (match Vgraph.torn b with Some _ -> [ "[TORN]" ] | None -> [])
  @ List.map (fun (law, _) -> Printf.sprintf "[SUSPECT:%s]" law) (Vgraph.suspects b)

let box_title b =
  let name =
    if b.Vgraph.bdef <> "" then b.Vgraph.bdef
    else if b.Vgraph.btype <> "" then b.Vgraph.btype
    else "box"
  in
  let base =
    if b.Vgraph.container then
      Printf.sprintf "%s %s [%d members]" name (box_ref b) (List.length b.Vgraph.members)
    else if b.Vgraph.addr <> 0 then
      Printf.sprintf "%s %s <%s @0x%x>" name (box_ref b) b.Vgraph.btype b.Vgraph.addr
    else Printf.sprintf "%s %s" name (box_ref b)
  in
  match box_tags b with [] -> base | tags -> base ^ " " ^ String.concat " " tags

(* ------------------------------------------------------------------ *)
(* ASCII cards *)

let item_lines g b =
  List.filter_map
    (fun it ->
      match it with
      | Vgraph.Text { label; value; _ } -> Some (Printf.sprintf "%s: %s" label value)
      | Vgraph.Link { label; target = None } -> Some (Printf.sprintf "%s -> NULL" label)
      | Vgraph.Link { label; target = Some t } -> (
          match Vgraph.find g t with
          | Some tb when not tb.Vgraph.attrs.Vgraph.trimmed ->
              Some (Printf.sprintf "%s -> %s" label (box_ref tb))
          | Some _ -> Some (Printf.sprintf "%s -> (trimmed)" label)
          | None -> None)
      | Vgraph.Inline { label; target } -> (
          match Vgraph.find g target with
          | Some tb when not tb.Vgraph.attrs.Vgraph.trimmed ->
              Some (Printf.sprintf "%s: %s" label (box_ref tb))
          | Some _ | None -> None))
    (Vgraph.current_items b)

let members_line g b =
  let shown =
    List.filter_map
      (fun id ->
        match Vgraph.find g id with
        | Some m when not m.Vgraph.attrs.Vgraph.trimmed -> Some (box_ref m)
        | Some _ | None -> None)
      b.Vgraph.members
  in
  let sep = match b.Vgraph.attrs.Vgraph.direction with
    | Vgraph.Horizontal -> ", "
    | Vgraph.Vertical -> ",\n  "
  in
  Printf.sprintf "members: [%s]" (String.concat sep shown)

let card g b =
  let title = box_title b in
  if b.Vgraph.attrs.Vgraph.collapsed then Printf.sprintf "[+] %s (collapsed)" title
  else begin
    let lines = item_lines g b in
    let lines = if b.Vgraph.container then lines @ [ members_line g b ] else lines in
    let lines =
      if b.Vgraph.attrs.Vgraph.view <> "default" then
        Printf.sprintf "(view: %s)" b.Vgraph.attrs.Vgraph.view :: lines
      else lines
    in
    let flat = List.concat_map (String.split_on_char '\n') lines in
    let width =
      List.fold_left (fun w l -> max w (String.length l)) (String.length title) flat
    in
    let bar = String.make width '-' in
    let body =
      List.map (fun l -> Printf.sprintf "| %s%s |" l (String.make (width - String.length l) ' ')) flat
    in
    String.concat "\n"
      ((Printf.sprintf "+-%s-+" bar)
      :: Printf.sprintf "| %s%s |" title (String.make (width - String.length title) ' ')
      :: Printf.sprintf "+-%s-+" bar
      :: body
      @ [ Printf.sprintf "+-%s-+" bar ])
  end

let transport_line tr = Transport.health_line tr

(** Render the visible subgraph as a sequence of ASCII cards in BFS order
    from the roots. Pass [roots] to render from a different seed set —
    e.g. a secondary pane displaying only the boxes picked from a primary
    pane (paper §2.4). [stale] tags the header (pane graph predates a
    target crash); [transport] appends a one-line link-health summary. *)
let ascii ?roots ?(stale = false) ?transport g =
  Obs.with_span ~cat:"render" "render.ascii" @@ fun () ->
  let visible =
    match roots with
    | None -> Vgraph.visible g
    | Some seeds ->
        (* a secondary pane shows the picked boxes and what they reach *)
        List.filter
          (fun id ->
            match Vgraph.find g id with
            | Some b -> not b.Vgraph.attrs.Vgraph.trimmed
            | None -> false)
          (Vgraph.reachable g seeds)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== %s%s ==\n" (Vgraph.title g) (if stale then " [STALE]" else ""));
  let emitted = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun r -> Queue.add r queue) (Option.value roots ~default:(Vgraph.roots g));
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if (not (Hashtbl.mem emitted id)) && List.mem id visible then begin
      Hashtbl.add emitted id ();
      match Vgraph.find g id with
      | None -> ()
      | Some b ->
          Buffer.add_string buf (card g b);
          Buffer.add_char buf '\n';
          if not b.Vgraph.attrs.Vgraph.collapsed then
            List.iter (fun s -> Queue.add s queue) (Vgraph.successors g b)
    end
  done;
  let total = Vgraph.box_count g and vis = List.length visible in
  Buffer.add_string buf (Printf.sprintf "(%d boxes, %d visible)\n" total vis);
  (match transport with
  | Some tr -> Buffer.add_string buf (transport_line tr ^ "\n")
  | None -> ());
  (if Obs.enabled () then
     match Obs.Profile.top 3 with
     | [] -> ()
     | rows ->
         Buffer.add_string buf
           (Printf.sprintf "[obs: %s]\n"
              (String.concat ", "
                 (List.map
                    (fun (r : Obs.Profile.row) ->
                      Printf.sprintf "%s %.1f ms self" r.Obs.Profile.pname r.Obs.Profile.pself_ms)
                    rows))));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Graphviz DOT *)

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let dot g =
  Obs.with_span ~cat:"render" "render.dot" @@ fun () ->
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  node [shape=record, fontname=monospace];\n  rankdir=LR;\n" (dot_escape (Vgraph.title g)));
  let visible = Vgraph.visible g in
  List.iter
    (fun id ->
      match Vgraph.find g id with
      | None -> ()
      | Some b ->
          let label =
            if b.Vgraph.attrs.Vgraph.collapsed then Printf.sprintf "[+] %s" (box_title b)
            else
              String.concat "\\l" (box_title b :: item_lines g b) ^ "\\l"
          in
          Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" id (dot_escape label));
          if not b.Vgraph.attrs.Vgraph.collapsed then begin
            List.iter
              (fun it ->
                match it with
                | Vgraph.Link { label; target = Some t } when List.mem t visible ->
                    Buffer.add_string buf
                      (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" id t (dot_escape label))
                | Vgraph.Inline { label; target } when List.mem target visible ->
                    Buffer.add_string buf
                      (Printf.sprintf "  n%d -> n%d [label=\"%s\", style=dashed];\n" id target
                         (dot_escape label))
                | _ -> ())
              (Vgraph.current_items b);
            List.iter
              (fun m ->
                if List.mem m visible then
                  Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=dotted];\n" id m))
              b.Vgraph.members
          end)
    visible;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SVG (simple BFS-level layout) *)

let svg_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let svg g =
  Obs.with_span ~cat:"render" "render.svg" @@ fun () ->
  let visible = Vgraph.visible g in
  (* BFS levels from roots. *)
  let level = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun r -> if List.mem r visible then (Hashtbl.replace level r 0; Queue.add r queue)) (Vgraph.roots g);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let l = Hashtbl.find level id in
    match Vgraph.find g id with
    | None -> ()
    | Some b ->
        if not b.Vgraph.attrs.Vgraph.collapsed then
          List.iter
            (fun s ->
              if List.mem s visible && not (Hashtbl.mem level s) then begin
                Hashtbl.replace level s (l + 1);
                Queue.add s queue
              end)
            (Vgraph.successors g b)
  done;
  let col_w = 300 and row_h = 26 and pad = 20 in
  (* Position boxes: x by level, y stacked per level. *)
  let next_y = Hashtbl.create 8 in
  let pos = Hashtbl.create 64 in
  let heights = Hashtbl.create 64 in
  List.iter
    (fun id ->
      match (Vgraph.find g id, Hashtbl.find_opt level id) with
      | Some b, Some l ->
          let nlines =
            if b.Vgraph.attrs.Vgraph.collapsed then 1 else 1 + List.length (item_lines g b)
          in
          let h = (nlines * row_h) + 16 in
          let y = Option.value (Hashtbl.find_opt next_y l) ~default:pad in
          Hashtbl.replace pos id ((l * (col_w + pad)) + pad, y);
          Hashtbl.replace heights id h;
          Hashtbl.replace next_y l (y + h + pad)
      | _ -> ())
    visible;
  let width =
    (Hashtbl.fold (fun _ l acc -> max acc l) level 0 + 1) * (col_w + pad) + pad
  in
  let height = Hashtbl.fold (fun _ y acc -> max acc y) next_y pad + pad in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"13\">\n"
       width height);
  (* Edges first. *)
  List.iter
    (fun id ->
      match (Vgraph.find g id, Hashtbl.find_opt pos id) with
      | Some b, Some (x, y) when not b.Vgraph.attrs.Vgraph.collapsed ->
          List.iter
            (fun s ->
              match Hashtbl.find_opt pos s with
              | Some (sx, sy) ->
                  Buffer.add_string buf
                    (Printf.sprintf
                       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888\" marker-end=\"url(#a)\"/>\n"
                       (x + col_w - 20) (y + 12) sx (sy + 12))
              | None -> ())
            (Vgraph.successors g b)
      | _ -> ())
    visible;
  List.iter
    (fun id ->
      match (Vgraph.find g id, Hashtbl.find_opt pos id) with
      | Some b, Some (x, y) ->
          let h = Hashtbl.find heights id in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f8f8ff\" stroke=\"#333\" rx=\"6\"/>\n"
               x y (col_w - 20) h);
          Buffer.add_string buf
            (Printf.sprintf "<text x=\"%d\" y=\"%d\" font-weight=\"bold\">%s</text>\n" (x + 8)
               (y + 18) (svg_escape (box_title b)));
          if not b.Vgraph.attrs.Vgraph.collapsed then
            List.iteri
              (fun i line ->
                Buffer.add_string buf
                  (Printf.sprintf "<text x=\"%d\" y=\"%d\">%s</text>\n" (x + 8)
                     (y + 18 + ((i + 1) * row_h)) (svg_escape line)))
              (item_lines g b)
      | _ -> ())
    visible;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
