(** Rendering of extracted object graphs (the visualizer back-ends).

    All renderers honor the ViewQL display attributes: [trimmed] subtrees
    vanish, [collapsed] boxes render as stubs, [view] selects the item
    set, [direction] controls container member flow. *)

val box_tags : Vgraph.box -> string list
(** The status tags a box carries, in the one deterministic order all
    renderers use: ["[BROKEN]"] (faulty memory), then ["[TORN]"]
    (raced by a writer, retries exhausted), then ["[SUSPECT:<law>]"]
    sorted by law.  Tags compose — a box can carry several at once. *)

val box_title : Vgraph.box -> string
(** e.g. ["Task #3 <task_struct @0x400000823730>"], followed by
    {!box_tags} when any are set. *)

val item_lines : Vgraph.t -> Vgraph.box -> string list
(** The current view's items as display lines. *)

val card : Vgraph.t -> Vgraph.box -> string
(** One ASCII-framed card (or a collapsed stub). *)

val ascii :
  ?roots:Vgraph.box_id list -> ?stale:bool -> ?transport:Transport.t -> Vgraph.t -> string
(** The visible subgraph as ASCII cards in BFS order from the roots,
    with a trailing [(N boxes, M visible)] summary. [roots] overrides the
    seed set — used to render a secondary pane, which displays only the
    boxes picked from another pane (and what they reach). [stale] marks
    the header with a [STALE] tag (the pane's graph predates a target
    crash and awaits re-extraction); [transport] appends the link's
    health line (retries, breaker state, budget spent). *)

val transport_line : Transport.t -> string
(** The transport-health summary appended by {!ascii}. *)

val dot : Vgraph.t -> string
(** Graphviz digraph (record-shaped nodes, labeled edges). *)

val svg : Vgraph.t -> string
(** Standalone SVG with a BFS-level column layout. *)
