(** Interactive HTML rendering of an object graph.

    Produces a single self-contained page — no external assets — with one
    card per box, clickable collapse buttons (mirroring the front-end's
    click-to-expand behaviour for [collapsed] boxes), link navigation, and
    a pane-like column layout by BFS depth. This substitutes for the
    paper's TypeScript visualizer: the semantic content is identical; the
    interactivity is plain inline JavaScript. *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|<style>
body { font-family: ui-monospace, Menlo, monospace; background: #fafafa; margin: 16px; }
h1 { font-size: 16px; }
.columns { display: flex; align-items: flex-start; gap: 24px; overflow-x: auto; }
.col { display: flex; flex-direction: column; gap: 12px; min-width: 260px; }
.box { border: 1.5px solid #334; border-radius: 8px; background: #fff;
       box-shadow: 1px 1px 3px #0002; min-width: 240px; }
.box.container { border-style: dashed; }
.title { background: #eef; padding: 4px 8px; font-weight: 600; border-radius: 8px 8px 0 0;
         display: flex; justify-content: space-between; gap: 8px; }
.items { padding: 4px 8px; }
.item { padding: 1px 0; white-space: pre; }
.link a { color: #06c; text-decoration: none; }
.link a:hover { text-decoration: underline; }
.null { color: #999; }
.addr { color: #777; font-weight: 400; font-size: 11px; }
.members { padding: 4px 8px; color: #555; }
.toggle { cursor: pointer; user-select: none; color: #06c; border: none; background: none;
          font: inherit; }
.collapsed .items, .collapsed .members { display: none; }
.view-tag { color: #a50; font-size: 11px; }
:target { outline: 3px solid #fa0; }
</style>
<script>
function toggle(id) {
  document.getElementById('box' + id).classList.toggle('collapsed');
}
</script>|}

let item_html g it =
  match it with
  | Vgraph.Text { label; value; _ } ->
      Printf.sprintf "<div class=\"item\">%s: <b>%s</b></div>" (esc label) (esc value)
  | Vgraph.Link { label; target = None } ->
      Printf.sprintf "<div class=\"item null\">%s &rarr; NULL</div>" (esc label)
  | Vgraph.Link { label; target = Some t } | Vgraph.Inline { label; target = t } -> (
      match Vgraph.find g t with
      | Some tb when not tb.Vgraph.attrs.Vgraph.trimmed ->
          Printf.sprintf "<div class=\"item link\">%s &rarr; <a href=\"#box%d\">#%d</a></div>"
            (esc label) t t
      | Some _ -> Printf.sprintf "<div class=\"item null\">%s &rarr; (trimmed)</div>" (esc label)
      | None -> "")

let box_html g b =
  let attrs = b.Vgraph.attrs in
  let cls =
    String.concat " "
      ([ "box" ] @ (if b.Vgraph.container then [ "container" ] else [])
      @ if attrs.Vgraph.collapsed then [ "collapsed" ] else [])
  in
  let name = if b.Vgraph.bdef <> "" then b.Vgraph.bdef else b.Vgraph.btype in
  let addr = if b.Vgraph.addr <> 0 then Printf.sprintf "0x%x" b.Vgraph.addr else "" in
  let view_tag =
    if attrs.Vgraph.view <> "default" then
      Printf.sprintf "<span class=\"view-tag\">:%s</span>" (esc attrs.Vgraph.view)
    else ""
  in
  let items = String.concat "\n" (List.map (item_html g) (Vgraph.current_items b)) in
  let members =
    if b.Vgraph.container then
      Printf.sprintf "<div class=\"members\">[%s]</div>"
        (String.concat ", "
           (List.filter_map
              (fun m ->
                match Vgraph.find g m with
                | Some mb when not mb.Vgraph.attrs.Vgraph.trimmed ->
                    Some (Printf.sprintf "<a href=\"#box%d\">#%d</a>" m m)
                | Some _ | None -> None)
              b.Vgraph.members))
    else ""
  in
  Printf.sprintf
    {|<div class="%s" id="box%d">
<div class="title"><span>%s #%d %s <span class="addr">%s</span></span>
<button class="toggle" onclick="toggle(%d)">[&plusmn;]</button></div>
<div class="items">%s</div>%s
</div>|}
    cls b.Vgraph.id (esc name) b.Vgraph.id view_tag (esc addr) b.Vgraph.id items members

(** Render the visible subgraph as a standalone HTML page, boxes arranged
    in columns by BFS depth from the roots (like the paper's panes). *)
let html g =
  Obs.with_span ~cat:"render" "render.html" @@ fun () ->
  let visible = Vgraph.visible g in
  let level = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if List.mem r visible then begin
        Hashtbl.replace level r 0;
        Queue.add r queue
      end)
    (Vgraph.roots g);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let l = Hashtbl.find level id in
    match Vgraph.find g id with
    | None -> ()
    | Some b ->
        if not b.Vgraph.attrs.Vgraph.collapsed then
          List.iter
            (fun s ->
              if List.mem s visible && not (Hashtbl.mem level s) then begin
                Hashtbl.replace level s (l + 1);
                Queue.add s queue
              end)
            (Vgraph.successors g b)
  done;
  let max_level = Hashtbl.fold (fun _ l acc -> max acc l) level 0 in
  let cols =
    List.init (max_level + 1) (fun l ->
        let ids =
          List.filter (fun id -> Hashtbl.find_opt level id = Some l) visible
        in
        let cards =
          List.filter_map
            (fun id -> Option.map (box_html g) (Vgraph.find g id))
            ids
        in
        Printf.sprintf "<div class=\"col\">%s</div>" (String.concat "\n" cards))
  in
  Printf.sprintf
    {|<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>%s</head>
<body><h1>%s</h1>
<div class="columns">
%s
</div>
<p class="addr">%d boxes, %d visible &mdash; generated by visualinux-ocaml</p>
</body></html>|}
    (esc (Vgraph.title g)) style (esc (Vgraph.title g)) (String.concat "\n" cols)
    (Vgraph.box_count g) (List.length visible)
