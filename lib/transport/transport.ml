(* See transport.mli for the contract.  Design notes:

   - One simulated clock per transport, advanced by every charge; the
     per-plot budget is a separate accumulator reset by [begin_plot], so
     breaker cooldowns (absolute clock) and deadlines (per-plot spend)
     do not interfere.
   - The fault model and the backoff jitter are both driven by
     deterministic integer arithmetic seeded at [create]; no
     [Random], no wall clock, so a seeded run replays exactly.
   - The breaker counts *reads*, not attempts: a read that eventually
     succeeds after two dropped replies resets the failure streak. *)

type profile = { pname : string; rtt_ms : float; byte_ms : float }

let profile pname rtt_ms = { pname; rtt_ms; byte_ms = rtt_ms /. 1024. }
let qemu_local = profile "gdb-qemu" 0.05
let kgdb_rpi = profile "kgdb-rpi3b" 3.0
let kgdb_rpi400 = profile "kgdb-rpi400" 2.5

type faults = { stall_rate : float; drop_rate : float; disconnect_rate : float }

let no_faults = { stall_rate = 0.; drop_rate = 0.; disconnect_rate = 0. }

let faults_of_rate r =
  { stall_rate = r; drop_rate = r; disconnect_rate = r /. 20. }

type policy = {
  max_retries : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_max_ms : float;
  jitter : float;
  read_timeout_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
}

(* Timeout on the order of the paper's worst observed round trips
   (10-40 ms on kgdb_rpi); backoff starts near one RTT and caps well
   under a timeout so a retried read stays cheaper than two timeouts. *)
let default_policy =
  { max_retries = 3; backoff_base_ms = 2.0; backoff_factor = 2.0; backoff_max_ms = 24.0;
    jitter = 0.25; read_timeout_ms = 40.0; breaker_threshold = 5;
    breaker_cooldown_ms = 250.0 }

(* splitmix-style integer hash: the jitter source.  Pure in (seed,
   attempt) so the whole backoff schedule is a function of the seed. *)
let mix seed attempt =
  let h = ref (seed lxor (attempt * 0x9e3779b9) land max_int) in
  h := (!h lxor (!h lsr 16)) * 0x45d9f3b land max_int;
  h := (!h lxor (!h lsr 16)) * 0x45d9f3b land max_int;
  !h lxor (!h lsr 16)

let backoff_ms p ~seed ~attempt =
  let raw = p.backoff_base_ms *. (p.backoff_factor ** float_of_int attempt) in
  let capped = Float.min raw p.backoff_max_ms in
  let frac = float_of_int (mix seed attempt land 0xFFFF) /. 65535. in
  capped *. (1. -. p.jitter +. (2. *. p.jitter *. frac))

type link = Up | Down
type breaker = Closed | Open | Half_open

let breaker_to_string = function
  | Closed -> "closed"
  | Open -> "OPEN"
  | Half_open -> "half-open"
type error = Breaker_open | Deadline_exceeded | Disconnected | Retries_exhausted

let error_to_string = function
  | Breaker_open -> "breaker-open"
  | Deadline_exceeded -> "deadline-exceeded"
  | Disconnected -> "disconnected"
  | Retries_exhausted -> "retries-exhausted"

type t = {
  prof : profile;
  seed : int;
  mutable policy : policy;
  mutable faults : faults;  (* per-session overlay (swapped per op) *)
  mutable base_faults : faults;  (* the wire's own weather *)
  mutable rng : int;
  mutable link : link;
  mutable brk : breaker;
  mutable consec_failures : int;
  mutable half_open_at : float;  (* clock time when an Open breaker may probe *)
  mutable clock_ms : float;  (* simulated wire time, whole lifetime *)
  mutable spent_ms : float;  (* simulated wire time, current plot *)
  mutable deadline_ms : float option;
  mutable gate : (bytes:int -> error option) option;
      (* session-server admission hook: consulted (and charged) on every
         fetch before the wire is touched *)
  mutable retry_gate : (unit -> bool) option;
      (* retry-budget hook: consulted before every retry; [false] denies
         the retry and the read degrades like an exhausted deadline *)
  (* wire-health EWMAs: per-attempt fault rate and latency, moved only
     by wire-attributed outcomes (base faults and clean reads) — a
     session's own overlay faults say nothing about the link *)
  mutable ew_fault : float;
  mutable ew_lat : float;
  mutable ew_n : int;
  (* counters *)
  mutable reads_ok : int;
  mutable attempts : int;
  mutable retries : int;
  mutable stalls : int;
  mutable drops : int;
  mutable disconnects : int;
  mutable reconnects : int;
  mutable breaker_trips : int;
  mutable short_circuits : int;
  mutable deadline_hits : int;
  mutable retry_denials : int;
  (* thread-safe fetch gate: a transport's mutable state (rng, clock,
     breaker, counters) is only ever touched under this lock, so a
     transport shared across extraction domains serializes rather than
     corrupts.  Deterministic parallel runs use per-lane forks instead
     (see [fork]); the lock is the safety net, not the fast path. *)
  lock : Mutex.t;
}

let create ?(seed = 0x9e3779b9) ?(policy = default_policy) ?(faults = no_faults) prof =
  { prof; seed; policy; faults; base_faults = no_faults; rng = seed; link = Up;
    brk = Closed; consec_failures = 0;
    half_open_at = 0.; clock_ms = 0.; spent_ms = 0.; deadline_ms = None; gate = None;
    retry_gate = None; ew_fault = 0.; ew_lat = 0.; ew_n = 0;
    reads_ok = 0;
    attempts = 0; retries = 0; stalls = 0; drops = 0; disconnects = 0; reconnects = 0;
    breaker_trips = 0; short_circuits = 0; deadline_hits = 0; retry_denials = 0;
    lock = Mutex.create () }

let profile_of t = t.prof
let link t = t.link
let breaker t = t.brk
let set_faults t f = t.faults <- f
let faults_of t = t.faults
let set_base_faults t f = t.base_faults <- f
let base_faults_of t = t.base_faults
let set_policy t p = t.policy <- p
let set_gate t g = t.gate <- g
let set_retry_gate t g = t.retry_gate <- g

(* ------------------------------------------------------------------ *)
(* Wire-health EWMA *)

let ewma_alpha = 0.1

(* One EWMA step: decay toward 0 on a clean outcome, toward 1 on a
   fault.  Pure, so the decay law is unit-testable. *)
let ewma_step x ~ok = ((1. -. ewma_alpha) *. x) +. (if ok then 0. else ewma_alpha)

type ewma = { ew_fault_rate : float; ew_latency_ms : float; ew_samples : int }

let ewma t = { ew_fault_rate = t.ew_fault; ew_latency_ms = t.ew_lat; ew_samples = t.ew_n }

let note_wire t ~ok ~ms =
  t.ew_fault <- ewma_step t.ew_fault ~ok;
  t.ew_lat <-
    (if t.ew_n = 0 then ms else ((1. -. ewma_alpha) *. t.ew_lat) +. (ewma_alpha *. ms));
  t.ew_n <- t.ew_n + 1

(* Graduated health grades over the fault EWMA, with hysteresis: each
   band is entered at its [_hi] threshold and left at its (lower) [_lo]
   threshold, and no transition fires until [window] observations have
   accumulated since the last one — so the grade cannot flap inside one
   window however the EWMA wiggles. *)
module Health = struct
  type grade = Fine | Degraded | Sick

  type thresholds = {
    degrade_hi : float;
    degrade_lo : float;
    sick_hi : float;
    sick_lo : float;
    window : int;
  }

  let default_thresholds =
    { degrade_hi = 0.15; degrade_lo = 0.05; sick_hi = 0.45; sick_lo = 0.25; window = 8 }

  let grade_to_string = function
    | Fine -> "healthy"
    | Degraded -> "degraded"
    | Sick -> "sick"

  let step th g ~fr ~since =
    if since < th.window then g
    else
      match g with
      | Fine -> if fr >= th.degrade_hi then Degraded else Fine
      | Degraded ->
          if fr >= th.sick_hi then Sick
          else if fr <= th.degrade_lo then Fine
          else Degraded
      | Sick ->
          if fr <= th.degrade_lo then Fine
          else if fr <= th.sick_lo then Degraded
          else Sick
end

let charge t ms =
  t.clock_ms <- t.clock_ms +. ms;
  t.spent_ms <- t.spent_ms +. ms

(* Java's 48-bit LCG, as in Kmem's injection layer. *)
let draw t =
  t.rng <- ((t.rng * 25214903917) + 11) land 0xFFFF_FFFF_FFFF;
  float_of_int ((t.rng lsr 24) land 0xFFFFFF) /. 16777216.

let any_faults f = f.stall_rate > 0. || f.drop_rate > 0. || f.disconnect_rate > 0.

(* ------------------------------------------------------------------ *)
(* Link and breaker state *)

(* Every breaker transition funnels through here so state changes show
   up as instant events in the trace. *)
(* The breaker state as a metrics gauge: 0 closed, 1 half-open, 2 open.
   Exported on every transition (and refreshed by [begin_plot]) so a
   degraded link is visible in any BENCH_*.json, not just in traces. *)
let breaker_gauge = function Closed -> 0. | Half_open -> 1. | Open -> 2.

let set_brk t b =
  if t.brk <> b then begin
    if Obs.enabled () then begin
      Obs.instant ~cat:"transport"
        ~attrs:
          [ ("from", breaker_to_string t.brk); ("to", breaker_to_string b);
            ("profile", t.prof.pname) ]
        "transport.breaker";
      Obs.Metrics.set_gauge "transport.breaker_state" (breaker_gauge b)
    end;
    t.brk <- b
  end

let disconnect t =
  if t.link = Up then begin
    t.link <- Down;
    t.disconnects <- t.disconnects + 1
  end

let reconnect t =
  if t.link = Down then t.reconnects <- t.reconnects + 1;
  t.link <- Up;
  t.consec_failures <- 0;
  (* resync handshake: qSupported + symbol refresh, a few round trips *)
  charge t (5. *. t.prof.rtt_ms);
  if t.brk = Open then set_brk t Half_open

let trip t =
  set_brk t Open;
  t.breaker_trips <- t.breaker_trips + 1;
  t.half_open_at <- t.clock_ms +. t.policy.breaker_cooldown_ms

let read_failed t =
  t.consec_failures <- t.consec_failures + 1;
  match t.brk with
  | Half_open -> trip t  (* the probe failed: back to Open, new cooldown *)
  | Closed -> if t.consec_failures >= t.policy.breaker_threshold then trip t
  | Open -> ()

let read_succeeded t =
  t.consec_failures <- 0;
  if t.brk = Half_open then set_brk t Closed

(* ------------------------------------------------------------------ *)
(* Budget *)

let set_deadline t d = t.deadline_ms <- d
let deadline t = t.deadline_ms

let begin_plot t =
  t.spent_ms <- 0.;
  if Obs.enabled () then
    Obs.Metrics.set_gauge "transport.breaker_state" (breaker_gauge t.brk)

let budget_spent t = t.spent_ms

let deadline_exceeded t =
  match t.deadline_ms with Some d -> t.spent_ms >= d | None -> false

(* ------------------------------------------------------------------ *)
(* The resilient read *)

let fetch_raw t ~bytes perform =
  if deadline_exceeded t then begin
    t.deadline_hits <- t.deadline_hits + 1;
    Error Deadline_exceeded
  end
  else
    match (match t.gate with Some g -> g ~bytes | None -> None) with
    | Some err ->
        (* refused by the session server's admission gate (per-session
           read/deadline budget spent): no wire traffic, no breaker
           accounting — the link itself is fine *)
        t.deadline_hits <- t.deadline_hits + 1;
        Error err
    | None -> begin
    (* breaker gate: Open refuses outright until the cooldown elapses,
       then lets exactly one probe through in Half_open *)
    (if t.brk = Open && t.clock_ms >= t.half_open_at then set_brk t Half_open);
    if t.brk = Open then begin
      t.short_circuits <- t.short_circuits + 1;
      Error Breaker_open
    end
    else
      let fail err =
        read_failed t;
        Error err
      in
      let rec attempt n =
        if t.link = Down then begin
          (* a dead link is detected after one timeout; retrying is
             pointless until an explicit reconnect *)
          charge t t.policy.read_timeout_ms;
          note_wire t ~ok:false ~ms:t.policy.read_timeout_ms;
          fail Disconnected
        end
        else if deadline_exceeded t then begin
          t.deadline_hits <- t.deadline_hits + 1;
          Error Deadline_exceeded
        end
        else begin
          t.attempts <- t.attempts + 1;
          (* one draw decides the attempt's fate across both fault
             configs; the segments put the wire's own (base) rates ahead
             of the session overlay within each fault kind, so each
             fired fault knows who caused it — only wire-attributed
             outcomes feed the health EWMA.  A zero base collapses every
             cutoff to the original single-config thresholds, so seeded
             runs without base faults replay identically. *)
          let bf = t.base_faults and sf = t.faults in
          let r = if any_faults bf || any_faults sf then draw t else 1. in
          let c1 = bf.disconnect_rate in
          let c2 = c1 +. sf.disconnect_rate in
          let c3 = c2 +. bf.drop_rate in
          let c4 = c3 +. sf.drop_rate in
          let c5 = c4 +. bf.stall_rate in
          let c6 = c5 +. sf.stall_rate in
          if r < c2 then begin
            t.link <- Down;
            t.disconnects <- t.disconnects + 1;
            charge t t.policy.read_timeout_ms;
            if r < c1 then note_wire t ~ok:false ~ms:t.policy.read_timeout_ms;
            fail Disconnected
          end
          else if r < c4 then begin
            t.drops <- t.drops + 1;
            charge t t.policy.read_timeout_ms;
            if r < c3 then note_wire t ~ok:false ~ms:t.policy.read_timeout_ms;
            if n >= t.policy.max_retries then fail Retries_exhausted
            else if not (match t.retry_gate with Some g -> g () | None -> true) then begin
              (* the caller's retry budget is spent: degrade exactly like
                 an exhausted deadline (a [Timed_out] fault upstairs, no
                 breaker accounting — the budget refused, not the link),
                 instead of piling more retries onto a sick wire *)
              t.retry_denials <- t.retry_denials + 1;
              t.deadline_hits <- t.deadline_hits + 1;
              Error Deadline_exceeded
            end
            else begin
              t.retries <- t.retries + 1;
              let retry () =
                charge t (backoff_ms t.policy ~seed:t.seed ~attempt:n);
                attempt (n + 1)
              in
              if Obs.enabled () then begin
                (* link the retry to the attempt it replaces: the span we
                   are currently inside (fetch, or the previous retry) *)
                let prev = Obs.Trace.current_span () in
                Obs.with_span ~cat:"transport"
                  ~attrs:[ ("attempt", string_of_int (n + 1)) ]
                  "transport.retry"
                  (fun () ->
                    Obs.Trace.link ~kind:"retry" ~from_span:prev
                      ~to_span:(Obs.Trace.current_span ());
                    retry ())
              end
              else retry ()
            end
          end
          else begin
            let stalled = r < c6 in
            if stalled then begin
              t.stalls <- t.stalls + 1;
              charge t t.policy.read_timeout_ms;
              if r < c5 then note_wire t ~ok:false ~ms:t.policy.read_timeout_ms
            end
            else begin
              let ms = t.prof.rtt_ms +. (float_of_int bytes *. t.prof.byte_ms) in
              charge t ms;
              note_wire t ~ok:true ~ms
            end;
            read_succeeded t;
            t.reads_ok <- t.reads_ok + 1;
            Ok (perform ())
          end
        end
      in
      attempt 0
  end

let c_fetches = Obs.Counter.make "transport.fetches"
let c_errors = Obs.Counter.make "transport.errors"

let fetch t ~bytes perform =
  Mutex.protect t.lock @@ fun () ->
  if not (Obs.enabled ()) then fetch_raw t ~bytes perform
  else
    Obs.with_span ~cat:"transport"
      ~attrs:[ ("profile", t.prof.pname); ("bytes", string_of_int bytes) ]
      "transport.fetch"
      (fun () ->
        Obs.Counter.incr c_fetches;
        match fetch_raw t ~bytes perform with
        | Ok _ as ok -> ok
        | Error e ->
            Obs.Counter.incr c_errors;
            Obs.instant ~cat:"transport"
              ~attrs:[ ("error", error_to_string e) ]
              "transport.error";
            Error e)

(* ------------------------------------------------------------------ *)
(* Per-lane forks (parallel extraction).  A fork is a fresh transport
   over the same simulated wire: profile, policy, fault configs and
   link/breaker state are copied, counters and budget start at zero,
   and the fault/jitter rng is reseeded deterministically from
   [seed lxor lane] — so a lane's wire weather depends only on its lane
   id and fetch sequence, never on how lanes interleave.  The session
   admission and retry gates are deliberately NOT inherited: they close
   over single-domain session state. *)

let fork ?(lane = 0) t =
  Mutex.protect t.lock @@ fun () ->
  let seed = mix t.seed (lane + 1) in
  { prof = t.prof; seed; policy = t.policy; faults = t.faults;
    base_faults = t.base_faults; rng = seed; link = t.link; brk = t.brk;
    consec_failures = 0; half_open_at = 0.; clock_ms = 0.; spent_ms = 0.;
    deadline_ms = t.deadline_ms; gate = None; retry_gate = None; ew_fault = t.ew_fault;
    ew_lat = t.ew_lat; ew_n = 0; reads_ok = 0; attempts = 0; retries = 0; stalls = 0;
    drops = 0; disconnects = 0; reconnects = 0; breaker_trips = 0; short_circuits = 0;
    deadline_hits = 0; retry_denials = 0; lock = Mutex.create () }

(* Fold a joined fork's accounting back into the parent: counters sum,
   simulated wire time accumulates (lanes overlap in wall time but the
   per-lane wire cost is real traffic), the fork's breaker/link state
   is discarded — the parent keeps its own view of the wire. *)
let absorb t child =
  Mutex.protect t.lock @@ fun () ->
  t.reads_ok <- t.reads_ok + child.reads_ok;
  t.attempts <- t.attempts + child.attempts;
  t.retries <- t.retries + child.retries;
  t.stalls <- t.stalls + child.stalls;
  t.drops <- t.drops + child.drops;
  t.disconnects <- t.disconnects + child.disconnects;
  t.reconnects <- t.reconnects + child.reconnects;
  t.breaker_trips <- t.breaker_trips + child.breaker_trips;
  t.short_circuits <- t.short_circuits + child.short_circuits;
  t.deadline_hits <- t.deadline_hits + child.deadline_hits;
  t.retry_denials <- t.retry_denials + child.retry_denials;
  t.clock_ms <- t.clock_ms +. child.clock_ms;
  t.spent_ms <- t.spent_ms +. child.spent_ms

(* ------------------------------------------------------------------ *)
(* Health *)

type snapshot = {
  reads_ok : int;
  attempts : int;
  retries : int;
  stalls : int;
  drops : int;
  disconnects : int;
  reconnects : int;
  breaker_trips : int;
  short_circuits : int;
  deadline_hits : int;
  retry_denials : int;
  sim_ms : float;
  breaker_now : breaker;
  link_now : link;
}

let snapshot (t : t) =
  { reads_ok = t.reads_ok; attempts = t.attempts; retries = t.retries; stalls = t.stalls;
    drops = t.drops; disconnects = t.disconnects; reconnects = t.reconnects;
    breaker_trips = t.breaker_trips; short_circuits = t.short_circuits;
    deadline_hits = t.deadline_hits; retry_denials = t.retry_denials; sim_ms = t.clock_ms;
    breaker_now = t.brk; link_now = t.link }

let reset_counters (t : t) =
  t.reads_ok <- 0;
  t.attempts <- 0;
  t.retries <- 0;
  t.stalls <- 0;
  t.drops <- 0;
  t.disconnects <- 0;
  t.reconnects <- 0;
  t.breaker_trips <- 0;
  t.short_circuits <- 0;
  t.deadline_hits <- 0;
  t.retry_denials <- 0

let health_line t =
  let budget =
    match t.deadline_ms with
    | Some d -> Printf.sprintf ", budget %.1f/%.1f ms" t.spent_ms d
    | None -> ""
  in
  Printf.sprintf
    "[link %s %s, breaker %s | %d reads, %d retries, %d drops, %d stalls, %d refused%s | %.1f ms on the wire]"
    t.prof.pname
    (match t.link with Up -> "up" | Down -> "DOWN")
    (breaker_to_string t.brk) t.reads_ok t.retries t.drops t.stalls
    (t.short_circuits + t.deadline_hits) budget t.clock_ms
