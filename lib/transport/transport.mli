(** The remote-target transport: a model of the debugger's link to the
    kernel (GDB over a unix socket, KGDB over serial) with the failure
    modes a real link exhibits — per-read timeouts, transient stalls,
    dropped replies, full disconnects — and the resilience policy that
    keeps extraction useful on top of them: bounded retries with
    exponential backoff + jitter, a per-plot deadline budget, and a
    circuit breaker that stops hammering a dead link.

    Everything is simulated deterministically: the fault model runs on a
    seeded LCG and all costs are charged to a simulated clock derived
    from the link {!profile}, so a seeded run is byte-for-byte
    reproducible (same constraint as {!Kmem}'s injection layer).

    The transport never performs reads itself: {!fetch} decides whether
    a read may proceed and what it costs, then runs the caller's thunk.
    When it refuses (breaker open, link down, budget exhausted, retries
    exhausted) the thunk is {e never} invoked — a tripped breaker
    really does mean zero underlying reads. *)

(** A link's cost model, per paper Table 5: every read is one remote
    round-trip plus per-byte serial cost. *)
type profile = { pname : string; rtt_ms : float; byte_ms : float }

val profile : string -> float -> profile
(** [profile name rtt_ms] with the per-byte cost pinned to [rtt/1024],
    keeping transport ratios workload-independent (Table 5 shape). *)

val qemu_local : profile
(** GDB against local QEMU over a unix socket: ~0.05 ms round-trip. *)

val kgdb_rpi : profile
(** KGDB over serial to a Raspberry Pi 3B: ~3.0 ms per RSP round-trip. *)

val kgdb_rpi400 : profile
(** KGDB over serial to a Raspberry Pi 400: ~2.5 ms per round-trip —
    the paper's headline "minutes per figure" configuration. *)

(* ------------------------------------------------------------------ *)
(** {1 Fault model} *)

(** Per-read failure probabilities, drawn independently per attempt from
    the transport's seeded LCG. All zero by default. *)
type faults = {
  stall_rate : float;  (** read completes, but only after a timeout-long stall *)
  drop_rate : float;  (** the reply is lost; the client must retry *)
  disconnect_rate : float;  (** the link dies mid-read; reads fail until {!reconnect} *)
}

val no_faults : faults

val faults_of_rate : float -> faults
(** The bench's single-knob mapping: stalls and drops at [r], full
    disconnects at [r/20]. *)

(* ------------------------------------------------------------------ *)
(** {1 Resilience policy} *)

type policy = {
  max_retries : int;  (** retry attempts per read, beyond the first *)
  backoff_base_ms : float;  (** first retry delay *)
  backoff_factor : float;  (** exponential growth per retry *)
  backoff_max_ms : float;  (** backoff cap *)
  jitter : float;  (** +- fraction applied to each backoff, in [0,1] *)
  read_timeout_ms : float;  (** cost charged for a stalled or dropped attempt *)
  breaker_threshold : int;  (** consecutive failed reads that trip the breaker *)
  breaker_cooldown_ms : float;  (** open time before a half-open probe *)
}

val default_policy : policy

val backoff_ms : policy -> seed:int -> attempt:int -> float
(** The delay before retry [attempt] (0-based): [base * factor^attempt]
    capped at [backoff_max_ms], scaled by a deterministic jitter in
    [1-jitter, 1+jitter] hashed from [(seed, attempt)]. Pure — the
    whole schedule is reproducible from the seed. *)

(* ------------------------------------------------------------------ *)
(** {1 The transport} *)

type link = Up | Down

(** Circuit-breaker state machine:
    [Closed] --N consecutive failures--> [Open] --cooldown elapses-->
    [Half_open] --probe succeeds--> [Closed]; probe fails --> [Open]. *)
type breaker = Closed | Open | Half_open

(** Why a read was refused or abandoned. *)
type error =
  | Breaker_open  (** refused without touching the link *)
  | Deadline_exceeded  (** the per-plot budget is spent *)
  | Disconnected  (** the link is down; {!reconnect} to resume *)
  | Retries_exhausted  (** every attempt's reply was dropped *)

val error_to_string : error -> string

type t

val create : ?seed:int -> ?policy:policy -> ?faults:faults -> profile -> t
(** A fresh connected transport. [faults] defaults to {!no_faults}, so a
    default transport only adds (simulated) latency accounting. *)

val profile_of : t -> profile
val link : t -> link
val breaker : t -> breaker
val set_faults : t -> faults -> unit

val faults_of : t -> faults
(** The current fault configuration (a session server swaps it per
    session while that session's traffic runs). *)

val set_base_faults : t -> faults -> unit
(** The wire's {e own} weather, composed with the per-session overlay:
    one draw per attempt decides the outcome across both configs, with
    the base rates ahead of the overlay within each fault kind, so every
    fired fault is attributed to whichever config caused it.  Only
    wire-attributed outcomes (base faults, and clean reads) move the
    health EWMA — a session's synthetic fault storm says nothing about
    the link.  Defaults to {!no_faults}, under which seeded runs replay
    exactly as before this knob existed. *)

val base_faults_of : t -> faults

val set_policy : t -> policy -> unit

val set_retry_gate : t -> (unit -> bool) option -> unit
(** Install (or clear) a retry-budget hook consulted before every retry
    of a dropped reply.  Returning [false] denies the retry: the read
    fails with {!error.Deadline_exceeded} (degrading to a [Timed_out]
    fault at the target, exactly like an exhausted deadline) with no
    breaker accounting — the {e budget} refused, not the link.  Denials
    are counted in [retry_denials].  This is where a session server
    enforces per-session token-bucket retry budgets so a sickening
    target cannot provoke a retry storm. *)

val set_gate : t -> (bytes:int -> error option) option -> unit
(** Install (or clear) an admission gate consulted by {!fetch} before
    any wire attempt. Returning [Some err] refuses the read — the
    perform thunk never runs, nothing is charged, and the breaker's
    failure streak is untouched (the {e link} is healthy; the {e
    caller's budget} is not). This is where a session server enforces
    per-session read/deadline budgets at the fetch boundary. Gate
    refusals are counted as [deadline_hits]. *)

val disconnect : t -> unit
(** Force the link down (what a crashed target or unplugged serial cable
    looks like). Subsequent reads fail with {!error.Disconnected}. *)

val reconnect : t -> unit
(** Bring the link back up and resync: charges a handshake cost, resets
    the consecutive-failure count, and moves an [Open] breaker to
    [Half_open] so the next read probes the link. *)

(* ------------------------------------------------------------------ *)
(** {1 Deadline budget} *)

val set_deadline : t -> float option -> unit
(** Per-plot budget in simulated ms; [None] (default) is unlimited. *)

val deadline : t -> float option

val begin_plot : t -> unit
(** Reset the budget spend for a new plot. *)

val budget_spent : t -> float
(** Simulated ms charged against the current plot's budget. *)

val deadline_exceeded : t -> bool
(** True once the current plot has spent its whole budget — extraction
    should truncate instead of issuing more reads. *)

(* ------------------------------------------------------------------ *)
(** {1 Reads} *)

val fetch : t -> bytes:int -> (unit -> 'a) -> ('a, error) result
(** [fetch t ~bytes perform] performs one resilient read of [bytes]
    bytes. On the success path [perform] is run exactly once and its
    cost ([rtt + bytes * byte_ms], or the read timeout for a stalled
    attempt) is charged; dropped replies are retried up to
    [max_retries] times with backoff charged between attempts. On any
    [Error _] the thunk was never run.

    Thread-safe: the whole fetch (rng draw, clock charge, breaker
    accounting, [perform]) runs under the transport's internal mutex,
    so a transport shared across extraction domains serializes rather
    than corrupts.  Deterministic parallel runs should use per-lane
    {!fork}s instead — serialization keeps the state sound but the
    draw order still depends on lane interleaving. *)

val fork : ?lane:int -> t -> t
(** [fork ~lane t] — a fresh transport over the same simulated wire
    for one extraction lane: profile, policy, fault configs, deadline
    and link/breaker state are copied; counters, budget spend and the
    simulated clock start at zero; the fault/jitter rng is reseeded
    deterministically from [seed] and [lane], so a lane's wire weather
    depends only on its lane id and its own fetch sequence.  The
    session admission and retry gates are not inherited (they close
    over single-domain session state). *)

val absorb : t -> t -> unit
(** [absorb t child] folds a joined fork's counters and simulated wire
    time back into [t] (sums; the fork's breaker/link state is
    discarded). Call once per fork, from the joining thread, in lane
    order. *)

(* ------------------------------------------------------------------ *)
(** {1 Health} *)

type snapshot = {
  reads_ok : int;  (** reads that returned data *)
  attempts : int;  (** wire attempts, including retries *)
  retries : int;
  stalls : int;
  drops : int;
  disconnects : int;  (** times the link died *)
  reconnects : int;
  breaker_trips : int;  (** transitions to [Open] *)
  short_circuits : int;  (** reads refused by an open breaker *)
  deadline_hits : int;  (** reads refused by an exhausted budget *)
  retry_denials : int;  (** retries refused by the retry-budget gate *)
  sim_ms : float;  (** total simulated wire time ever charged *)
  breaker_now : breaker;
  link_now : link;
}

val snapshot : t -> snapshot
val reset_counters : t -> unit

(* ------------------------------------------------------------------ *)
(** {1 Adaptive wire health} *)

(** Exponentially weighted per-attempt health, fed by every
    wire-attributed fetch outcome (see {!set_base_faults} for the
    attribution rule): the fault EWMA steps toward 1 on a fault and
    decays toward 0 on a clean read; the latency EWMA tracks the
    simulated ms each observed attempt charged.  This is the gray-
    failure detector: stalls and drops that never trip the breaker
    (a stalled read still {e succeeds}) still raise the fault EWMA. *)
type ewma = {
  ew_fault_rate : float;  (** in [0,1]; 0 = perfectly clean *)
  ew_latency_ms : float;
  ew_samples : int;  (** observations so far *)
}

val ewma : t -> ewma

val ewma_alpha : float
(** The smoothing factor (0.1: a half-life of ~7 observations). *)

val ewma_step : float -> ok:bool -> float
(** One pure EWMA step: [(1-alpha)*x + alpha*(if ok then 0 else 1)].
    Exposed so the decay law is unit-testable. *)

(** Graduated health grades over the fault EWMA, with hysteresis: a
    band is entered at its [_hi] threshold and only left at its lower
    [_lo] threshold, and {!Health.step} refuses any transition until
    [window] steps have passed since the last one — the grade cannot
    flap within one window however the EWMA wiggles.  The session
    server maps [Fine]/[Degraded]/[Sick] onto its
    Healthy/Degraded/Quarantined target states. *)
module Health : sig
  type grade = Fine | Degraded | Sick

  type thresholds = {
    degrade_hi : float;  (** [Fine -> Degraded] at or above this *)
    degrade_lo : float;  (** back to [Fine] at or below this *)
    sick_hi : float;  (** [Degraded -> Sick] at or above this *)
    sick_lo : float;  (** [Sick -> Degraded] at or below this *)
    window : int;  (** min steps between any two transitions *)
  }

  val default_thresholds : thresholds
  val grade_to_string : grade -> string

  val step : thresholds -> grade -> fr:float -> since:int -> grade
  (** [step th g ~fr ~since]: the next grade given the current fault
      EWMA [fr] and [since] steps elapsed since the last transition.
      Pure; returns [g] unchanged while [since < th.window]. *)
end

val health_line : t -> string
(** One-line health summary for plot output, e.g.
    ["[link kgdb-rpi400 up, breaker closed | 420 reads, 3 retries, 1 drop | 84.2 ms on the wire]"]. *)
