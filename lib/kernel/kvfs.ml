(** The virtual file system: file system types, superblocks (ULK Fig
    14-3), inodes, dentries, files and per-process fd tables (ULK Fig
    12-3, Fig 16-2, "from process to VFS"). *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  super_blocks : addr;  (** global list_head *)
  mutable file_systems : addr;  (** head of the file_system_type chain *)
  mutable next_ino : int;
}

let create ctx =
  let super_blocks = alloc ctx "list_head" in
  Klist.init ctx super_blocks;
  { ctx; super_blocks; file_systems = 0; next_ino = 1 }

let register_filesystem t name =
  let ctx = t.ctx in
  let fst_ = alloc ctx "file_system_type" in
  w64 ctx fst_ "file_system_type" "name" (cstring ctx name);
  w64 ctx fst_ "file_system_type" "next" t.file_systems;
  t.file_systems <- fst_;
  fst_

let new_inode t sb ~mode ~size =
  let ctx = t.ctx in
  let ino = alloc ctx "inode" in
  w16 ctx ino "inode" "i_mode" mode;
  w64 ctx ino "inode" "i_ino" t.next_ino;
  t.next_ino <- t.next_ino + 1;
  w64 ctx ino "inode" "i_size" size;
  w32 ctx ino "inode" "i_nlink" 1;
  w64 ctx ino "inode" "i_sb" sb;
  w32 ctx (fld ctx ino "inode" "i_count") "atomic_t" "counter" 1;
  (* i_mapping points at the embedded i_data address_space. *)
  let mapping = fld ctx ino "inode" "i_data" in
  w64 ctx mapping "address_space" "host" ino;
  Kxarray.init ctx (fld ctx mapping "address_space" "i_pages");
  w64 ctx ino "inode" "i_mapping" mapping;
  if sb <> 0 then
    Klist.add_tail ctx (fld ctx sb "super_block" "s_inodes") (fld ctx ino "inode" "i_sb_list");
  ino

let new_dentry t ~parent ~name ~inode ~sb =
  let ctx = t.ctx in
  let d = alloc ctx "dentry" in
  w64 ctx d "dentry" "d_parent" (if parent = 0 then d else parent);
  wstr ctx d "dentry" "d_iname" ~field_size:32 name;
  w64 ctx (fld ctx d "dentry" "d_name") "qstr" "hash_len" (String.length name);
  w64 ctx (fld ctx d "dentry" "d_name") "qstr" "name" (fld ctx d "dentry" "d_iname");
  w64 ctx d "dentry" "d_inode" inode;
  w64 ctx d "dentry" "d_sb" sb;
  Klist.init ctx (fld ctx d "dentry" "d_child");
  Klist.init ctx (fld ctx d "dentry" "d_subdirs");
  if parent <> 0 then
    Klist.add_tail ctx (fld ctx parent "dentry" "d_subdirs") (fld ctx d "dentry" "d_child");
  d

(** Mount: create a superblock of [fstype] with a root dentry. *)
let mount t ~fstype ~s_id ~bdev =
  let ctx = t.ctx in
  let sb = alloc ctx "super_block" in
  w64 ctx sb "super_block" "s_type" fstype;
  w64 ctx sb "super_block" "s_blocksize" 4096;
  w64 ctx sb "super_block" "s_bdev" bdev;
  wstr ctx sb "super_block" "s_id" ~field_size:32 s_id;
  Klist.init ctx (fld ctx sb "super_block" "s_inodes");
  let root_ino = new_inode t sb ~mode:0o40755 ~size:4096 in
  let root = new_dentry t ~parent:0 ~name:"/" ~inode:root_ino ~sb in
  w64 ctx sb "super_block" "s_root" root;
  (if bdev <> 0 then begin
     w64 ctx sb "super_block" "s_dev" (r32 ctx bdev "block_device" "bd_dev");
     w64 ctx bdev "block_device" "bd_super" sb
   end);
  Klist.add_tail ctx t.super_blocks (fld ctx sb "super_block" "s_list");
  sb

(** Create a regular file [name] under [dir] (a dentry) of [size] bytes. *)
let create_file t ~dir ~name ~size =
  let ctx = t.ctx in
  let sb = r64 ctx dir "dentry" "d_sb" in
  let ino = new_inode t sb ~mode:0o100644 ~size in
  new_dentry t ~parent:dir ~name ~inode:ino ~sb

(** Open a dentry: returns a [struct file]. *)
let open_dentry t dentry ~flags =
  let ctx = t.ctx in
  let f = alloc ctx "file" in
  let ino = r64 ctx dentry "dentry" "d_inode" in
  w64 ctx (fld ctx f "file" "f_path") "path" "dentry" dentry;
  w64 ctx f "file" "f_inode" ino;
  w64 ctx f "file" "f_mapping" (r64 ctx ino "inode" "i_mapping");
  w32 ctx f "file" "f_flags" flags;
  w32 ctx f "file" "f_mode" 0o3;
  w64 ctx (fld ctx f "file" "f_count") "atomic64_t" "counter" 1;
  f

(* -------------------------------------------------------------- *)
(* fd tables *)

let new_files_struct t =
  let ctx = t.ctx in
  let fs = alloc ctx "files_struct" in
  w32 ctx (fld ctx fs "files_struct" "count") "atomic_t" "counter" 1;
  let fdt = fld ctx fs "files_struct" "fdtab" in
  w32 ctx fdt "fdtable" "max_fds" Ktypes.fdtable_size;
  let fd_array = alloc_raw ctx "file*[]" (8 * Ktypes.fdtable_size) in
  w64 ctx fdt "fdtable" "fd" fd_array;
  let open_bits = alloc_raw ctx "open_fds" 8 in
  w64 ctx fdt "fdtable" "open_fds" open_bits;
  w64 ctx fs "files_struct" "fdt" fdt;
  fs

(** Install [file] in the lowest free fd slot; returns the fd. *)
let install_fd t files file =
  let ctx = t.ctx in
  let fdt = r64 ctx files "files_struct" "fdt" in
  let fd_array = r64 ctx fdt "fdtable" "fd" in
  let max_fds = r32 ctx fdt "fdtable" "max_fds" in
  let open_bits_addr = r64 ctx fdt "fdtable" "open_fds" in
  let bits = Kmem.read_u64 ctx.mem open_bits_addr in
  let rec find fd = if fd >= max_fds then failwith "fd table full"
    else if bits land (1 lsl fd) = 0 then fd else find (fd + 1)
  in
  let fd = find 0 in
  Kmem.write_u64 ctx.mem (fd_array + (8 * fd)) file;
  Kmem.write_u64 ctx.mem open_bits_addr (bits lor (1 lsl fd));
  w32 ctx files "files_struct" "next_fd" (fd + 1);
  fd

(* [?ctx] as in [Kstate.all_tasks]: debugger-side callers supply their
   own memory view (a lane's Kmem fork) for deterministic parallel
   fault injection. *)
let fd_file ?ctx t files fd =
  let ctx = Option.value ctx ~default:t.ctx in
  let fdt = r64 ctx files "files_struct" "fdt" in
  let fd_array = r64 ctx fdt "fdtable" "fd" in
  Kmem.read_u64 ctx.Kcontext.mem (fd_array + (8 * fd))

(** Open fds of a files_struct as (fd, file) pairs. *)
let open_fds t files =
  let ctx = t.ctx in
  let fdt = r64 ctx files "files_struct" "fdt" in
  let open_bits_addr = r64 ctx fdt "fdtable" "open_fds" in
  let bits = Kmem.read_u64 ctx.mem open_bits_addr in
  let rec go fd acc =
    if fd >= 64 then List.rev acc
    else if bits land (1 lsl fd) <> 0 then go (fd + 1) ((fd, fd_file t files fd) :: acc)
    else go (fd + 1) acc
  in
  go 0 []

let superblocks t = Klist.containers t.ctx t.super_blocks "super_block" "s_list"

(** Children of a directory dentry, in creation order. *)
let dentry_children t dir =
  Klist.containers t.ctx (fld t.ctx dir "dentry" "d_subdirs") "dentry" "d_child"

let dentry_name t d = rstr t.ctx d "dentry" "d_iname"

(** Resolve a path like ["/etc/passwd"] from [root] by walking the dentry
    tree component by component (a minimal [path_lookup]). *)
let lookup_path t ~root path =
  let parts = String.split_on_char '/' path |> List.filter (fun p -> p <> "") in
  let rec walk dir = function
    | [] -> Some dir
    | p :: rest -> (
        match List.find_opt (fun d -> dentry_name t d = p) (dentry_children t dir) with
        | Some d -> walk d rest
        | None -> None)
  in
  walk root parts
