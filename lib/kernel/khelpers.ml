(** Debugger-side bindings: creates a {!Target} over a booted kernel and
    registers the symbols, macro constants and helper functions that the
    paper's ViewCL programs call — the equivalent of Visualinux's ~500
    lines of GDB scripts exposing static-inline kernel functions
    ([cpu_rq], [mte_to_node], [task_state], ...). *)

open Kcontext


let named_ptr name a = Target.ptr_to (Ctype.Named name) a
let int_v = Target.int_value
let bool_v = Target.bool_value

let arg1 = function
  | [ v ] -> v
  | args -> invalid_arg (Printf.sprintf "helper: expected 1 argument, got %d" (List.length args))

(* Address denoted by a value: for aggregate lvalues their own address
   (GDB-style decay), for pointers/integers their contents. *)
let obj_addr tgt (v : Target.value) =
  match v.Target.loc with
  | Target.Lval a when not (Ctype.is_pointer v.Target.typ || Ctype.is_integer v.Target.typ) -> a
  | _ -> Target.as_int tgt v

let task_state_string st exit_state =
  if exit_state land Ktypes.exit_zombie <> 0 then "ZOMBIE"
  else if st = Ktypes.task_running then "RUNNING"
  else if st land Ktypes.task_interruptible <> 0 then "SLEEPING"
  else if st land Ktypes.task_uninterruptible <> 0 then "DISK-SLEEP"
  else if st land Ktypes.task_stopped <> 0 then "STOPPED"
  else "UNKNOWN"

(** Build a target attached to the kernel and register everything. *)
let attach (k : Kstate.t) =
  let tgt = Target.create k.ctx.mem k.ctx.reg in
  let reg = k.ctx.reg in

  (* ------------------------------------------------------------ *)
  (* Symbols *)
  Target.add_symbol tgt "init_task" (Target.obj (Ctype.Named "task_struct") k.init_task);
  Target.add_symbol tgt "runqueues"
    (Target.obj (Ctype.Array (Ctype.Named "rq", k.ncpus)) k.runqueues);
  Target.add_symbol tgt "pid_hash"
    (Target.obj (Ctype.Array (Ctype.Named "hlist_head", Kpid.hash_sz)) k.pids.Kpid.pid_hash);
  Target.add_symbol tgt "init_pid_ns"
    (Target.obj (Ctype.Named "pid_namespace") k.pids.Kpid.init_pid_ns);
  Target.add_symbol tgt "super_blocks"
    (Target.obj (Ctype.Named "list_head") k.vfs.Kvfs.super_blocks);
  Target.add_symbol tgt "file_systems"
    (named_ptr "file_system_type" k.vfs.Kvfs.file_systems);
  Target.add_symbol tgt "workqueues" (Target.obj (Ctype.Named "list_head") k.wq.Kworkqueue.workqueues);
  Target.add_symbol tgt "slab_caches" (Target.obj (Ctype.Named "list_head") k.slab.Kslab.slab_caches);
  Target.add_symbol tgt "node_zones" (Target.obj (Ctype.Named "zone") k.buddy.Kbuddy.zone);
  Target.add_symbol tgt "mem_map"
    (Target.obj (Ctype.Array (Ctype.Named "page", k.buddy.Kbuddy.npages)) k.buddy.Kbuddy.mem_map);
  Target.add_symbol tgt "swap_info"
    (Target.obj (Ctype.Array (Ctype.Ptr (Ctype.Named "swap_info_struct"), Ktypes.max_swapfiles))
       k.swap.Kswap.swap_info);
  Target.add_symbol tgt "irq_desc"
    (Target.obj (Ctype.Array (Ctype.Named "irq_desc", Ktypes.nr_irqs)) k.irqs.Kirq.descs);
  Target.add_symbol tgt "ipc_namespace"
    (Target.obj (Ctype.Named "ipc_namespace") k.ipc.Kipc.ns);
  Target.add_symbol tgt "rcu_state" (Target.obj (Ctype.Named "rcu_state") k.rcu.Krcu.rcu_state);
  Array.iteri
    (fun cpu rd ->
      Target.add_symbol tgt (Printf.sprintf "rcu_data_%d" cpu)
        (Target.obj (Ctype.Named "rcu_data") rd))
    k.rcu.Krcu.rcu_data;
  Target.add_symbol tgt "devices_kset" (Target.obj (Ctype.Named "kset") k.devices_kset);

  (* ------------------------------------------------------------ *)
  (* Macros *)
  List.iter (fun (name, v) -> Target.add_macro tgt name v) Ktypes.macros;

  (* ------------------------------------------------------------ *)
  (* Helpers *)
  let add name f = Target.add_helper tgt name f in

  (* Raw reads inside a helper must go through the *calling* target's
     memory view, not the base kernel's: a parallel extraction lane
     calls helpers through its Target fork, whose Kmem overlay carries
     the lane's private fault-injection stream — reads on the shared
     base would race its injection RNG across domains and break the
     cross-domain identity contract.  A fork also gets a private field
     offset memo, so concurrent misses never mutate the shared one.
     On the base target this is [k.ctx] itself, unchanged. *)
  let cx tgt =
    if Target.is_fork tgt then
      { k.ctx with mem = Target.mem tgt; off_cache = Hashtbl.create 16 }
    else k.ctx
  in

  add "cpu_rq" (fun tgt args ->
      let cpu = Target.as_int tgt (arg1 args) in
      if cpu < 0 || cpu >= k.ncpus then invalid_arg "cpu_rq: bad cpu";
      named_ptr "rq" (Kstate.rq_of k cpu));
  add "cpu_curr" (fun tgt args ->
      let cpu = Target.as_int tgt (arg1 args) in
      named_ptr "task_struct" (r64 (cx tgt) (Kstate.rq_of k cpu) "rq" "curr"));
  add "per_cpu_timer_base" (fun tgt args ->
      let cpu = Target.as_int tgt (arg1 args) in
      named_ptr "timer_base" k.timers.Ktimer.bases.(cpu));
  add "per_cpu_worker_pool" (fun tgt args ->
      let cpu = Target.as_int tgt (arg1 args) in
      named_ptr "worker_pool" k.wq.Kworkqueue.pools.(cpu));
  add "per_cpu_rcu_data" (fun tgt args ->
      let cpu = Target.as_int tgt (arg1 args) in
      named_ptr "rcu_data" k.rcu.Krcu.rcu_data.(cpu));

  add "task_state" (fun tgt args ->
      let task = arg1 args in
      let st = Target.as_int tgt (Target.member tgt task "__state") in
      let ex = Target.as_int tgt (Target.member tgt task "exit_state") in
      Target.str_value (task_state_string st ex));
  add "task_of_pid" (fun tgt args ->
      let nr = Target.as_int tgt (arg1 args) in
      match Kstate.find_task ~ctx:(cx tgt) k nr with
      | Some task -> named_ptr "task_struct" task
      | None -> Target.null_ptr);
  add "pid_task" (fun tgt args ->
      (* struct pid -> its task, via the pid number *)
      let pid = arg1 args in
      let numbers = Target.member tgt pid "numbers" in
      let nr = Target.as_int tgt (Target.member tgt (Target.index tgt numbers 0) "nr") in
      match Kstate.find_task ~ctx:(cx tgt) k nr with
      | Some task -> named_ptr "task_struct" task
      | None -> Target.null_ptr);

  (* Maple tree node decoding, as in the kernel's maple_tree.h. *)
  add "mte_to_node" (fun tgt args ->
      named_ptr "maple_node" (Kmaple.to_node (obj_addr tgt (arg1 args))));
  add "mte_node_type" (fun tgt args ->
      let v = Kmaple.node_type (obj_addr tgt (arg1 args)) in
      { Target.typ = Ctype.Named "maple_type"; loc = Target.Rval v });
  add "mte_is_leaf" (fun tgt args -> bool_v (Kmaple.is_leaf (obj_addr tgt (arg1 args))));
  add "xa_is_node" (fun tgt args -> bool_v (Kxarray.is_node (Target.as_int tgt (arg1 args))));
  add "xa_to_node" (fun tgt args ->
      named_ptr "xa_node" (Kxarray.to_node (Target.as_int tgt (arg1 args))));
  add "mt_node_max" (fun tgt args ->
      ignore (Target.as_int tgt (arg1 args));
      int_v Kmaple.mt_max);
  add "ma_is_dead" (fun tgt args ->
      (* A node whose memory has been freed (poisoned parent word). *)
      let node = obj_addr tgt (arg1 args) in
      bool_v (not (Kmem.is_live k.ctx.mem node)));
  add "mas_walk" (fun tgt args ->
      match args with
      | [ mt; idx ] ->
          let entry = Kmaple.walk (cx tgt) (obj_addr tgt mt) (Target.as_int tgt idx) in
          named_ptr "vm_area_struct" entry
      | _ -> invalid_arg "mas_walk(mt, index)");

  add "is_writable" (fun tgt args ->
      let vma = arg1 args in
      let f = Target.as_int tgt (Target.member tgt vma "vm_flags") in
      bool_v (f land Ktypes.vm_write <> 0));
  add "vma_name" (fun tgt args ->
      let vma = arg1 args in
      let file = Target.as_int tgt (Target.member tgt vma "vm_file") in
      if file = 0 then Target.str_value "[anon]"
      else
        let cx0 = cx tgt in
        let d = r64 cx0 file "file" "f_path.dentry" in
        Target.str_value (rstr cx0 d "dentry" "d_iname"));

  add "page_to_pfn" (fun tgt args ->
      int_v (Kbuddy.page_to_pfn k.buddy (obj_addr tgt (arg1 args))));
  add "pfn_to_page" (fun tgt args ->
      named_ptr "page" (Kbuddy.pfn_to_page k.buddy (Target.as_int tgt (arg1 args))));
  add "page_address" (fun tgt args ->
      let page = obj_addr tgt (arg1 args) in
      int_v (Kbuddy.page_address k.buddy page));
  add "page_content" (fun tgt args ->
      let page = obj_addr tgt (arg1 args) in
      Target.str_value (Kmem.read_cstring ~max:32 (Target.mem tgt) (Kbuddy.page_address k.buddy page)));

  add "func_name" (fun tgt args ->
      let a = Target.as_int tgt (arg1 args) in
      Target.str_value (Option.value (Kfuncs.name_of k.funcs a) ~default:(Printf.sprintf "0x%x" a)));
  add "spin_is_locked" (fun tgt args ->
      let l = arg1 args in
      bool_v (Target.as_int tgt (Target.member tgt l "locked") <> 0));

  add "fd_file" (fun tgt args ->
      match args with
      | [ files; fd ] ->
          named_ptr "file"
            (Kvfs.fd_file ~ctx:(cx tgt) k.vfs (Target.addr_of (Target.deref tgt files)) (Target.as_int tgt fd))
      | _ -> invalid_arg "fd_file(files, fd)");
  add "i_pipe_of" (fun tgt args ->
      let file = arg1 args in
      let ino = Target.as_int tgt (Target.member tgt file "f_inode") in
      named_ptr "pipe_inode_info" (if ino = 0 then 0 else r64 (cx tgt) ino "inode" "i_pipe"));
  add "sock_of_file" (fun tgt args ->
      let file = arg1 args in
      let priv = Target.as_int tgt (Target.member tgt file "private_data") in
      named_ptr "socket" priv);

  add "container_of" (fun tgt args ->
      match args with
      | [ p; comp; field ] ->
          let a = obj_addr tgt p in
          Target.container_of tgt a (Target.as_string tgt comp) (Target.as_string tgt field)
      | _ -> invalid_arg "container_of(ptr, \"type\", \"member\")");

  add "sighand_action" (fun tgt args ->
      match args with
      | [ sighand; signo ] ->
          let sh = Target.as_int tgt sighand in
          Target.obj (Ctype.Named "k_sigaction")
            (Ksignal.action_addr k.ctx sh (Target.as_int tgt signo))
      | _ -> invalid_arg "sighand_action(sighand, signo)");

  add "data_file" (fun tgt args ->
      (* First open fd > 2 of the task that is a page-cached regular file
         (not a pipe or socket). *)
      let task = arg1 args in
      let files = Target.as_int tgt (Target.member tgt task "files") in
      if files = 0 then Target.null_ptr
      else begin
        let cx0 = cx tgt in
        let rec scan fd =
          if fd >= 16 then Target.null_ptr
          else
            let f = Kvfs.fd_file ~ctx:cx0 k.vfs files fd in
            if f = 0 then scan (fd + 1)
            else
              let ino = r64 cx0 f "file" "f_inode" in
              let mapping = r64 cx0 f "file" "f_mapping" in
              let is_pipe = ino <> 0 && r64 cx0 ino "inode" "i_pipe" <> 0 in
              let nrpages = if mapping = 0 then 0 else r64 cx0 mapping "address_space" "nrpages" in
              if (not is_pipe) && nrpages > 0 then named_ptr "file" f else scan (fd + 1)
        in
        scan 3
      end);

  ignore reg;
  tgt
