(** The booted simulated kernel: every subsystem wired together, per-CPU
    runqueues, the init task, a mounted rootfs, and the global tables a
    debugger expects to find behind symbols.

    This is the "machine being debugged". The debugger side attaches to
    it with {!Khelpers.attach}. *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  rcu : Krcu.t;
  buddy : Kbuddy.t;
  slab : Kslab.t;
  vfs : Kvfs.t;
  mm : Kmm.t;
  pids : Kpid.t;
  swap : Kswap.t;
  wq : Kworkqueue.t;
  timers : Ktimer.t;
  irqs : Kirq.t;
  ipc : Kipc.t;
  ncpus : int;
  runqueues : addr;  (** rq[NR_CPUS] array *)
  init_task : addr;  (** swapper/0 *)
  tasks_head : addr;  (** init_task.tasks: anchor of the global task list *)
  rootfs_sb : addr;
  root_dentry : addr;
  devices_kset : addr;
  named : (string, addr) Hashtbl.t;
      (** registry of named singleton objects (binaries, consoles, ...) *)
  mutable next_pid : int;
  mutable vclock : int;  (** monotonically growing vruntime source *)
}

val boot : ?ncpus:int -> ?npages:int -> unit -> t
(** Boot: init task and per-CPU idle tasks, runqueues, rootfs + an ext4
    mount on a virtual disk, standard slab caches, RCU machinery, and the
    [mt_free_rcu] callback used for maple-node freeing. Defaults: 2 CPUs,
    2048 page frames. *)

val rq_of : t -> int -> addr
(** The [struct rq] of a CPU. *)

val alloc_pid_nr : t -> int
(** Next free pid number. *)

val next_vruntime : t -> int
(** Next virtual-runtime stamp for a freshly woken task (per-kernel, so
    booting several kernels stays deterministic). *)

val attach_pid : t -> addr -> addr
(** Register a task's pid in the hash table and namespace IDR; links
    [task->thread_pid] and returns the [struct pid]. *)

val ma_free_rcu : t -> addr -> unit
(** Deferred maple-node free through RCU — the StackRot flow: the node is
    queued on the CPU-0 callback list and only actually freed by the next
    {!Krcu.run_grace_period}. *)

val task_rq : t -> addr -> addr
(** The runqueue of a task's CPU. *)

val all_tasks : ?ctx:Kcontext.t -> t -> addr list
(** Every task on the global list (init first).  [?ctx] walks the list
    through the given context's memory instead of the kernel's own — a
    parallel extraction lane passes its forked view so the reads draw
    from the lane's private fault-injection stream. *)

val find_task : ?ctx:Kcontext.t -> t -> int -> addr option
(** Look a task up by pid number ([?ctx] as in {!all_tasks}). *)
