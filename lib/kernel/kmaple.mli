(** The maple tree ([struct maple_tree]) — the Linux 6.1 VMA container
    (paper §3.1, motivating example).

    Layout in simulated memory is faithful to the kernel: leaves are
    [maple_leaf_64]-typed [maple_range_64] nodes (16 slots / 15 pivots),
    internal nodes are [maple_arange_64] (10 slots / 9 pivots + gap
    tracking, as in the MT_FLAGS_ALLOC_RANGE trees mm uses), and node
    pointers are {e encoded}: [node | (type << 3) | 0x2].

    The {b write side} keeps a shadow sorted range list per tree and
    materializes fresh nodes on every update, releasing the previous node
    generation through a caller-supplied [free] callback — mirroring how
    readers experience mas_store + [ma_free_rcu] under RCU, which is
    exactly the behaviour CVE-2023-3269 (StackRot) exploits. The
    {b read side} ({!walk}, {!read_entries}, {!read_nodes}) only traverses
    the real in-memory nodes, as a debugger would. *)

type addr = Kmem.addr

(** {1 Node encoding (as maple_tree.h)} *)

val maple_leaf_64 : int
val maple_range_64 : int
val maple_arange_64 : int

val mt_max : int
(** Upper bound of the index space (2{^56} - 1 in this simulation). *)

val mk_enc : addr -> int -> int
(** [mk_enc node typ] tags a 256-aligned node address with its type. *)

val is_node : int -> bool
(** Kernel [xa_is_node]: is this root/slot value an internal node pointer
    (vs. a direct entry)? *)

val to_node : int -> addr
(** Kernel [mte_to_node]: strip the tag bits. *)

val node_type : int -> int
(** Kernel [mte_node_type]. *)

val is_leaf : int -> bool
(** Kernel [mte_is_leaf]. *)

(** {1 Trees} *)

type range = { lo : int; hi : int; entry : addr }

type tree = {
  ctx : Kcontext.t;
  mt : addr;  (** address of the [maple_tree] struct *)
  mutable ranges : range list;  (** the write-side shadow: sorted, disjoint *)
  mutable live_nodes : addr list;
}

val create : Kcontext.t -> addr -> tree
(** Initialize the [maple_tree] struct at [addr] (flags = ALLOC_RANGE). *)

val entries : tree -> (int * int * addr) list
(** Shadow view: the (lo, hi, entry) ranges, sorted. *)

val store_range : ?free:(addr -> unit) -> tree -> lo:int -> hi:int -> addr -> unit
(** Store [entry] over the inclusive range (0 erases). Overlapped ranges
    are split/replaced; the whole previous node generation is passed to
    [free] (default: immediate {!Kmem.free}; pass an RCU-deferring
    callback to reproduce StackRot).
    @raise Invalid_argument on an invalid range. *)

val erase_range : ?free:(addr -> unit) -> tree -> lo:int -> hi:int -> unit

(** {1 Read side (debugger view, real memory only)} *)

val walk : Kcontext.t -> addr -> int -> addr
(** [walk ctx mt index] — mas_walk: the entry containing [index], or 0. *)

val read_entries : Kcontext.t -> addr -> (int * int * addr) list
(** Non-NULL leaf ranges in order, from the real nodes. *)

val read_nodes : Kcontext.t -> addr -> addr list
(** Live node addresses of the current tree shape. *)

val read_height : Kcontext.t -> addr -> int
(** Node levels (0 for empty, 1 for a direct-entry root). *)

val check : ?max_nodes:int -> Kcontext.t -> addr -> (int, string) result
(** Structural sanity of the real in-memory tree, for the sanitizer
    (Sanity): pivot monotonicity (every slot range non-empty and inside
    its parent's bound) and encoded-pointer tag validity (known node
    types, internal slots hold node pointers).  [Ok node_count], or
    [Error reason] naming the first violation.  Cycle-safe and bounded
    by [max_nodes] (default 65536). *)

(** {1 Low-level node access (used by tests and helpers)} *)

val leaf_pivot : Kcontext.t -> addr -> int -> int
val leaf_slot : Kcontext.t -> addr -> int -> int
val ar_pivot : Kcontext.t -> addr -> int -> int
val ar_slot : Kcontext.t -> addr -> int -> int
val ar_gap : Kcontext.t -> addr -> int -> int
val ar_meta_end : Kcontext.t -> addr -> int
