(** Kernel red-black trees ([struct rb_node]) on raw simulated memory.

    As in the kernel's [rbtree.h], a node's parent pointer and color
    share one word ([__rb_parent_color], RB_RED = 0 / RB_BLACK = 1).
    Nodes are embedded in enclosing objects (e.g.
    [sched_entity.run_node]) and ordered by a caller-supplied comparison
    on node addresses. The [rb_root_cached] variants maintain the
    leftmost pointer the way CFS expects for O(1) pick-next. *)

type addr = Kmem.addr

val red : int
val black : int

(** {1 Raw node access} *)

val parent : Kcontext.t -> addr -> addr
val color : Kcontext.t -> addr -> int
val left : Kcontext.t -> addr -> addr
val right : Kcontext.t -> addr -> addr
val root_node : Kcontext.t -> addr -> addr
(** The [rb_node] pointer of an [rb_root] struct. *)

val is_empty : Kcontext.t -> addr -> bool

(** {1 Operations on [rb_root]} *)

val insert : Kcontext.t -> addr -> less:(addr -> addr -> bool) -> addr -> bool
(** Insert a node into the tree at the [rb_root] address, with standard
    rebalancing. Returns [true] when the node became leftmost. *)

val erase : Kcontext.t -> addr -> addr -> unit
(** Remove a node, rebalancing. *)

val first : Kcontext.t -> addr -> addr
(** Leftmost node (0 when empty). *)

val last : Kcontext.t -> addr -> addr
val next : Kcontext.t -> addr -> addr
(** In-order successor (0 at the end). *)

val nodes : Kcontext.t -> addr -> addr list
(** All nodes in increasing order. *)

val containers : Kcontext.t -> addr -> string -> string -> addr list
(** [containers ctx root comp field] — enclosing objects of each node,
    via [container_of]. *)

(** {1 Operations on [rb_root_cached]} *)

val cached_root : Kcontext.t -> addr -> addr
(** Address of the embedded [rb_root]. *)

val leftmost : Kcontext.t -> addr -> addr
val insert_cached : Kcontext.t -> addr -> less:(addr -> addr -> bool) -> addr -> unit
val erase_cached : Kcontext.t -> addr -> addr -> unit

(** {1 Validation} *)

val validate : Kcontext.t -> addr -> int
(** Check the red-black invariants (red-red freedom, equal black heights,
    parent-pointer consistency, black root); returns the black height.
    @raise Failure on violation. Used by the property tests. *)

val check : ?max_nodes:int -> Kcontext.t -> addr -> (int, string) result
(** Non-raising, cycle-safe {!validate} for the structural sanitizer
    (Sanity): [Ok black_height], or [Error reason] naming the first
    violated law.  Safe on arbitrarily corrupted trees — a visited set
    catches cycles and [max_nodes] (default 65536) bounds the walk. *)
