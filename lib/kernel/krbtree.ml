(** Kernel red-black trees ([struct rb_node]) on raw simulated memory.

    As in the kernel's [rbtree.h], a node's parent pointer and color share
    one word: [__rb_parent_color = parent | color] with RB_RED = 0 and
    RB_BLACK = 1. Nodes are embedded in enclosing objects (e.g.
    [sched_entity.run_node]) and ordered by a caller-provided comparison
    on node addresses. Insert and erase implement the standard rebalancing
    algorithm; [rb_root_cached] variants maintain the leftmost pointer the
    way CFS expects. *)

open Kcontext

type addr = Kmem.addr

let red = 0
let black = 1

let pc ctx n = r64 ctx n "rb_node" "__rb_parent_color"
let parent ctx n = pc ctx n land lnot 3
let color ctx n = if n = 0 then black else pc ctx n land 1
let left ctx n = r64 ctx n "rb_node" "rb_left"
let right ctx n = r64 ctx n "rb_node" "rb_right"
let set_left ctx n v = w64 ctx n "rb_node" "rb_left" v
let set_right ctx n v = w64 ctx n "rb_node" "rb_right" v
let set_pc ctx n p c = w64 ctx n "rb_node" "__rb_parent_color" (p lor c)
let set_parent ctx n p = set_pc ctx n p (color ctx n)
let set_color ctx n c = set_pc ctx n (parent ctx n) c

let root_node ctx root = r64 ctx root "rb_root" "rb_node"
let set_root_node ctx root n = w64 ctx root "rb_root" "rb_node" n

let is_empty ctx root = root_node ctx root = 0

(* Replace the child link of [p] that pointed to [old] with [n]; if p = 0,
   [old] was the root. *)
let change_child ctx root p old n =
  if p = 0 then set_root_node ctx root n
  else if left ctx p = old then set_left ctx p n
  else set_right ctx p n

let rotate_left ctx root x =
  let y = right ctx x in
  let p = parent ctx x in
  set_right ctx x (left ctx y);
  if left ctx y <> 0 then set_parent ctx (left ctx y) x;
  set_left ctx y x;
  set_parent ctx y p;
  change_child ctx root p x y;
  set_parent ctx x y

let rotate_right ctx root x =
  let y = left ctx x in
  let p = parent ctx x in
  set_left ctx x (right ctx y);
  if right ctx y <> 0 then set_parent ctx (right ctx y) x;
  set_right ctx y x;
  set_parent ctx y p;
  change_child ctx root p x y;
  set_parent ctx x y

let rec insert_fixup ctx root n =
  let p = parent ctx n in
  if p = 0 then set_color ctx n black
  else if color ctx p = red then begin
    let g = parent ctx p in
    let u = if left ctx g = p then right ctx g else left ctx g in
    if color ctx u = red then begin
      set_color ctx p black;
      set_color ctx u black;
      set_color ctx g red;
      insert_fixup ctx root g
    end
    else if left ctx g = p then begin
      let n = if right ctx p = n then (rotate_left ctx root p; p) else n in
      let p = parent ctx n in
      let g = parent ctx p in
      set_color ctx p black;
      set_color ctx g red;
      rotate_right ctx root g
    end
    else begin
      let n = if left ctx p = n then (rotate_right ctx root p; p) else n in
      let p = parent ctx n in
      let g = parent ctx p in
      set_color ctx p black;
      set_color ctx g red;
      rotate_left ctx root g
    end
  end

(** Insert [node] into the tree rooted at the [rb_root] struct [root],
    ordered by [less] on node addresses. Returns [true] when the node
    became the leftmost node. *)
let insert ctx root ~less node =
  set_left ctx node 0;
  set_right ctx node 0;
  let rec descend cur lm =
    if less node cur then begin
      let l = left ctx cur in
      if l = 0 then begin
        set_left ctx cur node;
        (cur, lm)
      end
      else descend l lm
    end
    else begin
      let r = right ctx cur in
      if r = 0 then begin
        set_right ctx cur node;
        (cur, false)
      end
      else descend r false
    end
  in
  let leftmost =
    let r = root_node ctx root in
    if r = 0 then begin
      set_root_node ctx root node;
      set_pc ctx node 0 red;
      true
    end
    else begin
      let p, lm = descend r true in
      set_pc ctx node p red;
      lm
    end
  in
  insert_fixup ctx root node;
  leftmost

let rec leftmost_of ctx n = if n = 0 || left ctx n = 0 then n else leftmost_of ctx (left ctx n)
let rec rightmost_of ctx n = if n = 0 || right ctx n = 0 then n else rightmost_of ctx (right ctx n)

let first ctx root = leftmost_of ctx (root_node ctx root)
let last ctx root = rightmost_of ctx (root_node ctx root)

let next ctx n =
  if right ctx n <> 0 then leftmost_of ctx (right ctx n)
  else
    let rec up n =
      let p = parent ctx n in
      if p = 0 || left ctx p = n then p else up p
    in
    up n

(** Nodes in increasing order. *)
let nodes ctx root =
  let rec go n acc = if n = 0 then List.rev acc else go (next ctx n) (n :: acc) in
  go (first ctx root) []

let containers ctx root comp field =
  let o = off ctx comp field in
  List.map (fun n -> n - o) (nodes ctx root)

let rec erase_fixup ctx root x xp =
  (* [x] (possibly nil=0) carries an extra black; [xp] is its parent. *)
  if xp = 0 then (if x <> 0 then set_color ctx x black)
  else if color ctx x = red then set_color ctx x black
  else if left ctx xp = x then begin
    let w = right ctx xp in
    let w =
      if color ctx w = red then begin
        set_color ctx w black;
        set_color ctx xp red;
        rotate_left ctx root xp;
        right ctx xp
      end
      else w
    in
    if color ctx (left ctx w) = black && color ctx (right ctx w) = black then begin
      set_color ctx w red;
      erase_fixup ctx root xp (parent ctx xp)
    end
    else begin
      let w =
        if color ctx (right ctx w) = black then begin
          set_color ctx (left ctx w) black;
          set_color ctx w red;
          rotate_right ctx root w;
          right ctx xp
        end
        else w
      in
      set_color ctx w (color ctx xp);
      set_color ctx xp black;
      if right ctx w <> 0 then set_color ctx (right ctx w) black;
      rotate_left ctx root xp
    end
  end
  else begin
    let w = left ctx xp in
    let w =
      if color ctx w = red then begin
        set_color ctx w black;
        set_color ctx xp red;
        rotate_right ctx root xp;
        left ctx xp
      end
      else w
    in
    if color ctx (right ctx w) = black && color ctx (left ctx w) = black then begin
      set_color ctx w red;
      erase_fixup ctx root xp (parent ctx xp)
    end
    else begin
      let w =
        if color ctx (left ctx w) = black then begin
          set_color ctx (right ctx w) black;
          set_color ctx w red;
          rotate_left ctx root w;
          left ctx xp
        end
        else w
      in
      set_color ctx w (color ctx xp);
      set_color ctx xp black;
      if left ctx w <> 0 then set_color ctx (left ctx w) black;
      rotate_right ctx root xp
    end
  end

(** Remove [node] from the tree. *)
let erase ctx root node =
  let transplant u v =
    let p = parent ctx u in
    change_child ctx root p u v;
    if v <> 0 then set_parent ctx v p
  in
  let orig_color = ref (color ctx node) in
  let x, xp =
    if left ctx node = 0 then begin
      let x = right ctx node and xp = parent ctx node in
      transplant node x;
      (x, xp)
    end
    else if right ctx node = 0 then begin
      let x = left ctx node and xp = parent ctx node in
      transplant node x;
      (x, xp)
    end
    else begin
      let y = leftmost_of ctx (right ctx node) in
      orig_color := color ctx y;
      let x = right ctx y in
      let xp = if parent ctx y = node then y else parent ctx y in
      if parent ctx y <> node then begin
        transplant y x;
        set_right ctx y (right ctx node);
        set_parent ctx (right ctx y) y
      end;
      transplant node y;
      set_left ctx y (left ctx node);
      if left ctx y <> 0 then set_parent ctx (left ctx y) y;
      set_color ctx y (color ctx node);
      (x, xp)
    end
  in
  if !orig_color = black then erase_fixup ctx root x xp;
  set_pc ctx node 0 red;
  set_left ctx node 0;
  set_right ctx node 0

(* --------------------------------------------------------------- *)
(* rb_root_cached: the leftmost pointer CFS keeps for O(1) pick-next *)

let cached_root ctx croot = croot + off ctx "rb_root_cached" "rb_root"
let leftmost ctx croot = r64 ctx croot "rb_root_cached" "rb_leftmost"
let set_leftmost ctx croot v = w64 ctx croot "rb_root_cached" "rb_leftmost" v

let insert_cached ctx croot ~less node =
  let lm = insert ctx (cached_root ctx croot) ~less node in
  if lm then set_leftmost ctx croot node

let erase_cached ctx croot node =
  if leftmost ctx croot = node then set_leftmost ctx croot (next ctx node);
  erase ctx (cached_root ctx croot) node

(* --------------------------------------------------------------- *)
(* Validation (used by property tests) *)

(** Check red-black invariants; returns the black-height or raises. *)
let validate ctx root =
  let rec go n =
    if n = 0 then 1
    else begin
      if color ctx n = red && (color ctx (left ctx n) = red || color ctx (right ctx n) = red)
      then failwith "rbtree: red node with red child";
      if left ctx n <> 0 && parent ctx (left ctx n) <> n then failwith "rbtree: bad parent";
      if right ctx n <> 0 && parent ctx (right ctx n) <> n then failwith "rbtree: bad parent";
      let bl = go (left ctx n) and br = go (right ctx n) in
      if bl <> br then failwith "rbtree: black-height mismatch";
      bl + if color ctx n = black then 1 else 0
    end
  in
  let r = root_node ctx root in
  if r <> 0 && color ctx r <> black then failwith "rbtree: red root";
  go r

(* Non-raising, cycle-safe variant for the structural sanitizer: the
   tree under inspection may be arbitrarily corrupted (a child pointer
   looping back up, poison bytes as colors), so the walk carries a
   visited set and a node budget and reports instead of diverging. *)
let check ?(max_nodes = 65536) ctx root =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let seen = Hashtbl.create 64 in
  let budget = ref max_nodes in
  let rec go n =
    if n = 0 then 1
    else begin
      if Hashtbl.mem seen n then bad "rbtree: cycle through node 0x%x" n;
      Hashtbl.add seen n ();
      decr budget;
      if !budget < 0 then bad "rbtree: more than %d nodes (runaway structure)" max_nodes;
      if color ctx n = red && (color ctx (left ctx n) = red || color ctx (right ctx n) = red)
      then bad "rbtree: red node 0x%x has a red child" n;
      if left ctx n <> 0 && parent ctx (left ctx n) <> n then
        bad "rbtree: node 0x%x does not parent its left child" n;
      if right ctx n <> 0 && parent ctx (right ctx n) <> n then
        bad "rbtree: node 0x%x does not parent its right child" n;
      let bl = go (left ctx n) and br = go (right ctx n) in
      if bl <> br then bad "rbtree: black-height mismatch under 0x%x (%d vs %d)" n bl br;
      bl + if color ctx n = black then 1 else 0
    end
  in
  match
    let r = root_node ctx root in
    if r <> 0 && color ctx r <> black then bad "rbtree: red root 0x%x" r;
    go r
  with
  | bh -> Ok bh
  | exception Bad m -> Error m
