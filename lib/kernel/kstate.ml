(** The booted simulated kernel: every subsystem wired together, per-CPU
    runqueues, the init task, a mounted rootfs, and the global tables a
    debugger expects to find behind symbols. *)

open Kcontext

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  funcs : Kfuncs.t;
  rcu : Krcu.t;
  buddy : Kbuddy.t;
  slab : Kslab.t;
  vfs : Kvfs.t;
  mm : Kmm.t;
  pids : Kpid.t;
  swap : Kswap.t;
  wq : Kworkqueue.t;
  timers : Ktimer.t;
  irqs : Kirq.t;
  ipc : Kipc.t;
  ncpus : int;
  runqueues : addr;  (** rq[NR_CPUS] *)
  init_task : addr;
  tasks_head : addr;  (** init_task.tasks: anchor of the global task list *)
  rootfs_sb : addr;
  root_dentry : addr;
  devices_kset : addr;
  named : (string, addr) Hashtbl.t;
      (** registry of named singleton objects (binaries, consoles, ...) *)
  mutable next_pid : int;
  mutable vclock : int;  (** monotonically growing vruntime source *)
}

let rq_of t cpu = t.runqueues + (cpu * sizeof t.ctx "rq")

let alloc_pid_nr t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

(** Next virtual-runtime stamp for a freshly woken task. *)
let next_vruntime t =
  t.vclock <- t.vclock + 1_000_000;
  t.vclock

(** Register a task's pid number in the hash/IDR and link task.thread_pid. *)
let attach_pid t task =
  let nr = ri32 t.ctx task "task_struct" "pid" in
  let pid = Kpid.alloc_pid t.pids nr in
  w64 t.ctx task "task_struct" "thread_pid" pid;
  let sg = r64 t.ctx task "task_struct" "signal" in
  if sg <> 0 then
    Kmem.write_u64 t.ctx.mem (fld t.ctx sg "signal_struct" "pids") pid;
  pid

let boot ?(ncpus = Ktypes.nr_cpus) ?(npages = 2048) () =
  let ctx = Kcontext.create () in
  let funcs = Kfuncs.create () in
  let rcu = Krcu.create ctx funcs ~ncpus in
  let buddy = Kbuddy.create ctx ~npages in
  let slab = Kslab.create ctx buddy in
  let vfs = Kvfs.create ctx in
  let mm = Kmm.create ctx in
  let pids = Kpid.create ctx in
  let swap = Kswap.create ctx in
  let wq = Kworkqueue.create ctx funcs ~ncpus in
  let timers = Ktimer.create ctx funcs ~ncpus in
  let irqs = Kirq.create ctx funcs in
  let ipc = Kipc.create ctx in
  let runqueues = alloc_n ctx "rq" ncpus in

  (* swapper/0 is the init task: pid 0, parent of itself. *)
  let init_signal = Ksignal.new_signal ctx in
  let init_sighand = Ksignal.new_sighand ctx funcs in
  let init_task =
    Ktask.create ctx ~tasks_head:0
      { Ktask.default_spec with pid = 0; comm = "swapper/0"; signal = init_signal;
        sighand = init_sighand; kthread = true }
  in
  let tasks_head = fld ctx init_task "task_struct" "tasks" in

  (* rootfs *)
  let fstype = Kvfs.register_filesystem vfs "rootfs" in
  ignore (Kvfs.register_filesystem vfs "proc");
  ignore (Kvfs.register_filesystem vfs "sysfs");
  let ext4 = Kvfs.register_filesystem vfs "ext4" in
  let _disk, bdev = Kblock.add_disk ctx vfs ~name:"vda" ~major:254 ~minor:0 in
  let rootfs_sb = Kvfs.mount vfs ~fstype ~s_id:"rootfs" ~bdev:0 in
  let _ext4_sb = Kvfs.mount vfs ~fstype:ext4 ~s_id:"vda1" ~bdev in
  let root_dentry = r64 ctx rootfs_sb "super_block" "s_root" in

  let devices_kset = Kobj.new_kset ctx ~name:"devices" ~parent:0 in

  let t =
    { ctx; funcs; rcu; buddy; slab; vfs; mm; pids; swap; wq; timers; irqs; ipc; ncpus;
      runqueues; init_task; tasks_head; rootfs_sb; root_dentry; devices_kset;
      named = Hashtbl.create 16; next_pid = 1; vclock = 0 }
  in

  (* Per-CPU idle tasks and runqueues. *)
  for cpu = 0 to ncpus - 1 do
    let idle =
      if cpu = 0 then init_task
      else
        Ktask.create ctx ~tasks_head:0
          { Ktask.default_spec with pid = 0; comm = Printf.sprintf "swapper/%d" cpu;
            signal = init_signal; sighand = init_sighand; cpu; kthread = true }
    in
    Ksched.init_rq ctx (rq_of t cpu) ~cpu ~idle
  done;
  attach_pid t init_task |> ignore;

  (* Standard kernel caches, so slab plots have content. *)
  List.iter
    (fun (name, comp) -> ignore (Kslab.cache_create slab name ~object_size:(sizeof ctx comp)))
    [ ("task_struct", "task_struct"); ("mm_struct", "mm_struct");
      ("vm_area_struct", "vm_area_struct"); ("maple_node", "maple_node");
      ("inode_cache", "inode"); ("dentry", "dentry"); ("filp", "file");
      ("sighand_cache", "sighand_struct"); ("signal_cache", "signal_struct") ];

  (* RCU frees a maple node by address: the callback_head is the node's
     first word, as in the kernel's union with [maple_node.parent]. *)
  ignore
    (Kfuncs.register_impl funcs "mt_free_rcu" (fun head -> Kmem.free ctx.mem head));

  t

(** Deferred maple-node free through RCU (ma_free_rcu): the StackRot flow. *)
let ma_free_rcu t node = Krcu.call_rcu t.rcu node "mt_free_rcu"

(** A task's CPU runqueue. *)
let task_rq t task = rq_of t (r32 t.ctx task "task_struct" "cpu")

(** Tasks on the global list (init included). *)
(* [?ctx] lets debugger-side callers walk through their own memory view
   (a parallel extraction lane's Kmem fork with its private injection
   stream) instead of the kernel's base context. *)
let all_tasks ?ctx t =
  let cx = Option.value ctx ~default:t.ctx in
  t.init_task :: Ktask.all_tasks cx ~tasks_head:t.tasks_head

let find_task ?ctx t pid =
  let cx = Option.value ctx ~default:t.ctx in
  List.find_opt (fun task -> Ktask.pid cx task = pid) (all_tasks ?ctx t)
