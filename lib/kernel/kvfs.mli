(** The virtual file system: file system types, superblocks (ULK Fig
    14-3), inodes, dentries, files, and per-process fd tables (ULK Fig
    12-3 / 16-2 / "from process to VFS"). *)

type addr = Kmem.addr

type t = {
  ctx : Kcontext.t;
  super_blocks : addr;  (** the global [super_blocks] list_head *)
  mutable file_systems : addr;  (** head of the file_system_type chain *)
  mutable next_ino : int;
}

val create : Kcontext.t -> t

val register_filesystem : t -> string -> addr
(** Prepend a [file_system_type] to the global chain; returns it. *)

val new_inode : t -> addr -> mode:int -> size:int -> addr
(** An inode on superblock [sb] (0 for anonymous inodes): fresh ino,
    embedded [i_data] address space with an empty page-cache XArray,
    linked on the superblock's [s_inodes] list. *)

val new_dentry : t -> parent:addr -> name:string -> inode:addr -> sb:addr -> addr
(** A dentry linked under [parent] (0 for roots/anonymous). *)

val mount : t -> fstype:addr -> s_id:string -> bdev:addr -> addr
(** A superblock with a root dentry, linked on [super_blocks]; ties the
    block device when given. *)

val create_file : t -> dir:addr -> name:string -> size:int -> addr
(** A regular file under directory dentry [dir]; returns its dentry. *)

val open_dentry : t -> addr -> flags:int -> addr
(** Open: a [struct file] with [f_inode]/[f_mapping] wired. *)

(** {1 Path walking} *)

val dentry_children : t -> addr -> addr list
val dentry_name : t -> addr -> string

val lookup_path : t -> root:addr -> string -> addr option
(** Resolve ["/a/b/c"] from [root], component by component. *)

(** {1 fd tables} *)

val new_files_struct : t -> addr
(** A [files_struct] with an embedded fdtable (64 slots + open bitmap). *)

val install_fd : t -> addr -> addr -> int
(** Install a file in the lowest free slot; returns the fd.
    @raise Failure when the table is full. *)

val fd_file : ?ctx:Kcontext.t -> t -> addr -> int -> addr
(** The file at an fd (0 when closed).  [?ctx] reads through the given
    context's memory (a parallel lane's forked view) instead of the
    filesystem's own. *)

val open_fds : t -> addr -> (int * addr) list
(** All open (fd, file) pairs. *)

val superblocks : t -> addr list
