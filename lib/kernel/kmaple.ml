(** The maple tree ([struct maple_tree]) — the Linux 6.1 VMA container.

    Layout in simulated memory is faithful to the kernel: leaves are
    [maple_leaf_64]-typed [maple_range_64] nodes (16 slots / 15 pivots),
    internal nodes are [maple_arange_64] (10 slots / 9 pivots, with
    per-subtree gap tracking as in MT_FLAGS_ALLOC_RANGE trees used by mm),
    and node pointers are *encoded*: [node | (type << 3) | 0x2], decoded by
    the [mte_to_node] / [mte_node_type] helpers the paper's ViewCL code
    calls.

    The *write side* keeps a shadow sorted range list per tree and
    materializes fresh nodes on every update, releasing the previous
    generation of nodes through a caller-supplied [free] callback. This is
    how the kernel behaves under RCU from a reader's perspective —
    mas_store builds replacement nodes and frees old ones with
    [ma_free_rcu] — which is exactly the behaviour CVE-2023-3269
    (StackRot) depends on. The *read side* ([walk], [read_entries]) only
    traverses the real in-memory nodes. *)

open Kcontext

type addr = Kmem.addr

(* Node types, as enum maple_type. *)
let maple_leaf_64 = 1
let maple_range_64 = 2
let maple_arange_64 = 3

let mt_max = (1 lsl 56) - 1

(* Encoded node pointers. *)
let mk_enc node typ = node lor (typ lsl 3) lor 0x2
let is_node e = e land 0x2 <> 0 && e > 4096
let to_node e = e land lnot 0xff
let node_type e = (e lsr 3) land 0xf
let is_leaf e = node_type e = maple_leaf_64

let leaf_slots = Ktypes.maple_range64_slots (* 16 *)
let arange_slots = Ktypes.maple_arange64_slots (* 10 *)

type range = { lo : int; hi : int; entry : addr }

type tree = {
  ctx : Kcontext.t;
  mt : addr;  (** address of the [maple_tree] struct *)
  mutable ranges : range list;  (** shadow: sorted, disjoint *)
  mutable live_nodes : addr list;
}

let set_ma_root t v = w64 t.ctx t.mt "maple_tree" "ma_root" v

let create ctx mt =
  w64 ctx mt "maple_tree" "ma_root" 0;
  w32 ctx mt "maple_tree" "ma_flags" 0x1 (* MT_FLAGS_ALLOC_RANGE *);
  { ctx; mt; ranges = []; live_nodes = [] }

let entries t = List.map (fun r -> (r.lo, r.hi, r.entry)) t.ranges

(* ------------------------------------------------------------------ *)
(* Node field access *)

let leaf_pivot ctx n i = Kmem.read_u64 ctx.mem (fld ctx n "maple_node" "mr64" + off ctx "maple_range_64" "pivot" + (8 * i))
let leaf_slot ctx n i = Kmem.read_u64 ctx.mem (fld ctx n "maple_node" "mr64" + off ctx "maple_range_64" "slot" + (8 * i))
let ar_pivot ctx n i = Kmem.read_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "pivot" + (8 * i))
let ar_slot ctx n i = Kmem.read_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "slot" + (8 * i))
let ar_gap ctx n i = Kmem.read_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "gap" + (8 * i))
let ar_meta_end ctx n = Kmem.read_u8 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "meta" + off ctx "maple_metadata" "end")

let set_leaf_pivot ctx n i v = Kmem.write_u64 ctx.mem (fld ctx n "maple_node" "mr64" + off ctx "maple_range_64" "pivot" + (8 * i)) v
let set_leaf_slot ctx n i v = Kmem.write_u64 ctx.mem (fld ctx n "maple_node" "mr64" + off ctx "maple_range_64" "slot" + (8 * i)) v
let set_ar_pivot ctx n i v = Kmem.write_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "pivot" + (8 * i)) v
let set_ar_slot ctx n i v = Kmem.write_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "slot" + (8 * i)) v
let set_ar_gap ctx n i v = Kmem.write_u64 ctx.mem (fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "gap" + (8 * i)) v
let set_ar_meta ctx n ~end_ ~gap =
  let meta = fld ctx n "maple_node" "ma64" + off ctx "maple_arange_64" "meta" in
  Kmem.write_u8 ctx.mem (meta + off ctx "maple_metadata" "end") end_;
  Kmem.write_u8 ctx.mem (meta + off ctx "maple_metadata" "gap") gap

let set_parent ctx n p = w64 ctx n "maple_node" "parent" p

(* ------------------------------------------------------------------ *)
(* Write side: shadow update + materialization *)

(* Overwrite [lo, hi] with [entry] (0 = erase) in a sorted disjoint list. *)
let shadow_store ranges ~lo ~hi entry =
  let keep_low r = if r.lo < lo then [ { r with hi = min r.hi (lo - 1) } ] else [] in
  let keep_high r = if r.hi > hi then [ { r with lo = max r.lo (hi + 1) } ] else [] in
  let rec go = function
    | [] -> if entry = 0 then [] else [ { lo; hi; entry } ]
    | r :: rest when r.hi < lo -> r :: go rest
    | r :: rest when r.lo > hi ->
        (if entry = 0 then [] else [ { lo; hi; entry } ]) @ (r :: rest)
    | r :: rest ->
        (* r overlaps [lo, hi]: split it. *)
        keep_low r @ go_overlap rest (keep_high r)
  and go_overlap rest high_part =
    match rest with
    | r :: rest' when r.lo <= hi -> go_overlap rest' (keep_high r @ high_part)
    | _ -> (if entry = 0 then [] else [ { lo; hi; entry } ]) @ high_part @ rest
  in
  go ranges

(* Split [items] into balanced chunks of at most [cap]. *)
let chunk cap items =
  let n = List.length items in
  if n = 0 then []
  else begin
    let groups = (n + cap - 1) / cap in
    let base = n / groups and extra = n mod groups in
    let rec take k xs acc = if k = 0 then (List.rev acc, xs) else
      match xs with [] -> (List.rev acc, []) | x :: r -> take (k - 1) r (x :: acc)
    in
    let rec go g xs =
      if g = 0 then []
      else
        let sz = base + if g <= extra then 1 else 0 in
        let grp, rest = take sz xs [] in
        grp :: go (g - 1) rest
    in
    go groups items
  end

(* An item is a (hi, entry) pair: the region from the previous item's hi+1
   (or the subtree min) up to [hi], holding [entry] (0 = gap). *)
let items_of_ranges ranges =
  let rec go pos = function
    | [] -> if pos <= mt_max then [ (mt_max, 0) ] else []
    | r :: rest ->
        let gap = if r.lo > pos then [ (r.lo - 1, 0) ] else [] in
        gap @ ((r.hi, r.entry) :: go (r.hi + 1) rest)
  in
  go 0 ranges

(* Build one leaf node for items covering [node_max]; returns encoded ptr
   and the node's max gap. *)
let build_leaf t items node_min node_max =
  let ctx = t.ctx in
  let n = Kcontext.alloc ~align:256 ctx "maple_node" in
  t.live_nodes <- n :: t.live_nodes;
  let rec fill i lo gap = function
    | [] -> gap
    | (hi, entry) :: rest ->
        set_leaf_slot ctx n i entry;
        if i < leaf_slots - 1 then
          set_leaf_pivot ctx n i (if hi = node_max then 0 else hi);
        let gap = if entry = 0 then max gap (hi - lo + 1) else gap in
        fill (i + 1) (hi + 1) gap rest
  in
  let gap = fill 0 node_min 0 items in
  (mk_enc n maple_leaf_64, gap)

(* Build an internal (arange) node over encoded children. *)
let build_arange t children node_max =
  let ctx = t.ctx in
  let n = Kcontext.alloc ~align:256 ctx "maple_node" in
  t.live_nodes <- n :: t.live_nodes;
  let count = List.length children in
  let max_gap = ref 0 and max_gap_i = ref 0 in
  List.iteri
    (fun i (enc, child_max, child_gap) ->
      set_ar_slot ctx n i enc;
      if i < arange_slots - 1 then
        set_ar_pivot ctx n i (if child_max = node_max then 0 else child_max);
      set_ar_gap ctx n i child_gap;
      if child_gap > !max_gap then begin
        max_gap := child_gap;
        max_gap_i := i
      end;
      set_parent ctx (to_node enc) (mk_enc n maple_arange_64))
    children;
  set_ar_meta ctx n ~end_:(count - 1) ~gap:!max_gap_i;
  (mk_enc n maple_arange_64, node_max, !max_gap)

(* Materialize the whole tree from the shadow; returns newly built root. *)
let materialize t =
  let items = items_of_ranges t.ranges in
  match t.ranges with
  | [] ->
      set_ma_root t 0;
      0
  | [ { lo = 0; hi; entry } ] when hi = mt_max ->
      (* Single entry spanning everything: stored directly in ma_root. *)
      set_ma_root t entry;
      entry
  | _ ->
      (* Leaves first. *)
      let leaf_groups = chunk (leaf_slots - 2) items in
      let leaves =
        let rec go min_pos = function
          | [] -> []
          | grp :: rest ->
              let node_max = fst (List.nth grp (List.length grp - 1)) in
              let enc, gap = build_leaf t grp min_pos node_max in
              (enc, node_max, gap) :: go (node_max + 1) rest
        in
        go 0 leaf_groups
      in
      (* Stack internal levels until a single root remains. *)
      let rec build level =
        match level with
        | [ (enc, _, _) ] ->
            set_parent t.ctx (to_node enc) (t.mt lor 0x1);
            enc
        | _ ->
            let groups = chunk (arange_slots - 2) level in
            let parents =
              List.map
                (fun grp ->
                  let _, node_max, _ = List.nth grp (List.length grp - 1) in
                  build_arange t grp node_max)
                groups
            in
            build parents
      in
      let root = build leaves in
      set_ma_root t root;
      root

let default_free t a = Kcontext.free t.ctx a

(** Store [entry] over [lo, hi]. Old nodes of the previous tree shape are
    handed to [free] (defaults to immediate [Kmem.free]); pass
    [Krcu.call_rcu]-based deferral to reproduce StackRot. *)
let store_range ?free t ~lo ~hi entry =
  if lo < 0 || hi > mt_max || lo > hi then invalid_arg "Kmaple.store_range";
  let free = Option.value free ~default:(default_free t) in
  let old_nodes = t.live_nodes in
  t.live_nodes <- [];
  t.ranges <- shadow_store t.ranges ~lo ~hi entry;
  let _root = materialize t in
  List.iter free old_nodes

let erase_range ?free t ~lo ~hi = store_range ?free t ~lo ~hi 0

(* ------------------------------------------------------------------ *)
(* Read side: walks the real nodes (what a debugger would do) *)

(* Iterate the used slots of an encoded node spanning [node_min,node_max]:
   yields (lo, hi, raw_slot_value). *)
let iter_node ctx enc node_min node_max f =
  let n = to_node enc in
  let leafp = is_leaf enc in
  let nslots = if leafp then leaf_slots else arange_slots in
  let pivot i = if leafp then leaf_pivot ctx n i else ar_pivot ctx n i in
  let slot i = if leafp then leaf_slot ctx n i else ar_slot ctx n i in
  let rec go i lo =
    if i < nslots && lo <= node_max then begin
      let hi =
        if i >= nslots - 1 then node_max
        else
          let p = pivot i in
          if p = 0 then node_max else p
      in
      f lo hi (slot i);
      if hi < node_max then go (i + 1) (hi + 1)
    end
  in
  go 0 node_min

(** mas_walk: find the entry containing [index], reading real memory. *)
let walk ctx mt index =
  let root = r64 ctx mt "maple_tree" "ma_root" in
  if root = 0 then 0
  else if not (is_node root) then
    (* a direct root entry spans the whole space *)
    root
  else begin
    let result = ref 0 in
    let rec descend enc node_min node_max =
      iter_node ctx enc node_min node_max (fun lo hi v ->
          if index >= lo && index <= hi then
            if is_leaf enc then result := v
            else if is_node v then descend v lo hi
            else result := 0)
    in
    descend root 0 mt_max;
    !result
  end

(** All (lo, hi, entry) leaf ranges with non-NULL entries, in order,
    reading real memory. *)
let read_entries ctx mt =
  let root = r64 ctx mt "maple_tree" "ma_root" in
  if root = 0 then []
  else if not (is_node root) then [ (0, mt_max, root) ]
  else begin
    let acc = ref [] in
    let rec descend enc node_min node_max =
      iter_node ctx enc node_min node_max (fun lo hi v ->
          if is_leaf enc then (if v <> 0 then acc := (lo, hi, v) :: !acc)
          else if is_node v then descend v lo hi)
    in
    descend root 0 mt_max;
    List.rev !acc
  end

(** All live node addresses of the current tree, reading real memory. *)
let read_nodes ctx mt =
  let root = r64 ctx mt "maple_tree" "ma_root" in
  if not (is_node root) then []
  else begin
    let acc = ref [] in
    let rec descend enc node_min node_max =
      acc := to_node enc :: !acc;
      if not (is_leaf enc) then
        iter_node ctx enc node_min node_max (fun lo hi v ->
            if is_node v then descend v lo hi)
    in
    descend root 0 mt_max;
    List.rev !acc
  end

(* Structural sanity over the real nodes: pivot monotonicity (every
   slot's range is non-empty and inside its parent's bound) and encoded
   pointer tag validity (known node type, internal slots hold node
   pointers).  Non-raising and cycle-safe — a freed-and-reused node can
   point anywhere, which is exactly when this check matters. *)
let check ?(max_nodes = 65536) ctx mt =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let root = r64 ctx mt "maple_tree" "ma_root" in
  if root = 0 || not (is_node root) then Ok 0
  else begin
    let seen = Hashtbl.create 64 in
    let count = ref 0 in
    let rec descend enc node_min node_max =
      let na = to_node enc in
      if Hashtbl.mem seen na then bad "maple: node cycle through 0x%x" na;
      Hashtbl.add seen na ();
      incr count;
      if !count > max_nodes then bad "maple: more than %d nodes (runaway structure)" max_nodes;
      let ty = node_type enc in
      if ty <> maple_leaf_64 && ty <> maple_range_64 && ty <> maple_arange_64 then
        bad "maple: encoded pointer 0x%x has invalid node type %d" enc ty;
      let leafp = is_leaf enc in
      iter_node ctx enc node_min node_max (fun lo hi v ->
          if hi < lo || hi > node_max then
            bad "maple: pivot order violated in node 0x%x (slot range [0x%x,0x%x], bound 0x%x)"
              na lo hi node_max;
          if not leafp then
            if v = 0 then ()
            else if not (is_node v) then
              bad "maple: internal node 0x%x slot holds non-node value 0x%x" na v
            else descend v lo hi)
    in
    match descend root 0 mt_max with
    | () -> Ok !count
    | exception Bad m -> Error m
  end

(** Tree height (number of node levels), reading real memory. *)
let read_height ctx mt =
  let root = r64 ctx mt "maple_tree" "ma_root" in
  if not (is_node root) then if root = 0 then 0 else 1
  else begin
    let rec go enc = if is_leaf enc then 1 else 1 + go (ar_slot ctx (to_node enc) 0) in
    go root
  end
