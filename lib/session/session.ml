(** Multi-session server implementation.  See session.mli for the
    contract; the mechanics in one paragraph: every session op (a) is
    admission-checked against capacity, budgets and the target's
    quarantine state, (b) swaps the session's fault config, per-plot
    deadline and a budget gate onto the shared transport, (c) runs the
    underlying {!Visualinux} command, (d) captures the op's fault,
    read, cache-stat and wire-time deltas into the session's private
    accounting, and (e) advances the target's Healthy -> Quarantine ->
    Probation state machine from the breaker/link state the op left
    behind. *)

type sid = int

(* ------------------------------------------------------------------ *)
(* Budgets *)

type budget = {
  max_reads : int option;
  max_sim_ms : float option;
  plot_deadline_ms : float option;
  retry_burst : int option;
}

let unlimited =
  { max_reads = None; max_sim_ms = None; plot_deadline_ms = None; retry_burst = None }

let budget ?max_reads ?max_sim_ms ?plot_deadline_ms ?retry_burst () =
  { max_reads; max_sim_ms; plot_deadline_ms; retry_burst }

(* ------------------------------------------------------------------ *)
(* Admission *)

type reason =
  | Capacity of { limit : int }
  | Unknown_session of sid
  | Unknown_target of string
  | Reads_exhausted of { used : int; limit : int }
  | Budget_exhausted of { used_ms : float; limit_ms : float }
  | Quarantined of { target : string; prober : sid }
  | Shed of { target : string; deficit : int }

let reason_to_string = function
  | Capacity { limit } -> Printf.sprintf "capacity: server full (%d sessions)" limit
  | Unknown_session sid -> Printf.sprintf "unknown session %d" sid
  | Unknown_target t -> Printf.sprintf "unknown target %S" t
  | Reads_exhausted { used; limit } ->
      Printf.sprintf "read budget exhausted (%d/%d this epoch)" used limit
  | Budget_exhausted { used_ms; limit_ms } ->
      Printf.sprintf "wire budget exhausted (%.1f/%.1f ms this epoch)" used_ms limit_ms
  | Quarantined { target; prober } ->
      Printf.sprintf "target %S quarantined; session %d is probing" target prober
  | Shed { target; deficit } ->
      Printf.sprintf "target %S degraded; load shed (%d credit short)" target deficit

type 'a outcome = Admitted of 'a | Rejected of { reason : reason }

(* ------------------------------------------------------------------ *)
(* Server state *)

(* Quarantine/probation/degradation bookkeeping for one shared target. *)
type qstate = { mutable prober : sid; mutable probes : int }
type pstate = { mutable waiting : sid list; mutable skips : int }

(* Degraded: the wire's fault EWMA crossed the degrade threshold but the
   target is still serving.  Without a replica, load is shed by weighted
   credits (see [degradation_route]); [credits] holds each session's
   accumulated deficit counter. *)
type dstate = { credits : (sid, int) Hashtbl.t }

type tstate = Healthy | Degraded of dstate | Quarantine of qstate | Probation of pstate

type shared = {
  tname : string;
  target : Target.t;
  mutable state : tstate;
  mutable rr : int;  (* round-robin cursor for prober election *)
  mutable hsince : int;  (* admitted ops since the last state transition *)
  mutable qspan : int;  (* op span that parked the target in quarantine *)
}

type sess = {
  sid : sid;
  name : string;
  vis : Visualinux.session;
  shared : shared;
  mutable sfaults : Transport.faults;  (* swapped onto the link per op *)
  mutable sbudget : budget;
  mutable weight : int;  (* fair-admission priority weight, >= 1 *)
  mutable rb_tokens : int;  (* retry-budget tokens left (when capped) *)
  mutable sreads : int;  (* reads charged this epoch *)
  mutable ssim_ms : float;  (* wire ms charged this epoch *)
  mutable flog_rev : Target.fault list;  (* per-session fault journal, newest first *)
  mutable opno : int;  (* panel ops journaled to the WAL, a per-session chain *)
  tab : (string, int) Hashtbl.t;  (* private counter namespace *)
}

(* How a session came through durable recovery (see recover_durable):
   its op chain replayed whole, a damaged chain replayed up to the
   break, or its very identity lost to corruption — quarantined on
   arrival, panes rebuilt [STALE] with ids preserved. *)
type salvage = Replayed | Salvaged of { dropped : int } | Quarantined_stale

type srecovery = {
  rsid : sid;
  rname : string;
  rtarget : string;
  rsalvage : salvage;
  rops : int;  (* ops replayed into the session *)
  rstale : int;  (* panes stale after recovery *)
}

type recovery = { rreport : Durable.report; rsessions : srecovery list; rms : float }

type server = {
  kernel : Kstate.t;
  cap : int;
  mutable next_sid : sid;
  sessions : (sid, sess) Hashtbl.t;
  targets : (string, shared) Hashtbl.t;
  mutable torder : string list;  (* registration order, oldest first *)
  mutable wal : Durable.t option;  (* attached durable journal, if any *)
  mutable wal_limit : int;  (* tail records that trigger a snapshot compaction *)
  mutable last_recovery : recovery option;
}

let capacity srv = srv.cap

(* After this many fruitless probe ops the quarantined target elects
   the next session round-robin — a sick prober must not hold the
   recovery slot forever. *)
let probe_rounds = 3

let default_target = "t0"

let create ?(capacity = 8) kernel =
  let srv =
    { kernel; cap = capacity; next_sid = 1; sessions = Hashtbl.create 8;
      targets = Hashtbl.create 4; torder = []; wal = None; wal_limit = 256;
      last_recovery = None }
  in
  Hashtbl.replace srv.targets default_target
    { tname = default_target; target = Khelpers.attach kernel; state = Healthy; rr = 0;
      hsince = 0; qspan = 0 };
  srv.torder <- [ default_target ];
  srv

let add_target srv ?transport name =
  if Hashtbl.mem srv.targets name then
    invalid_arg (Printf.sprintf "Session.add_target: duplicate target %S" name);
  let target = Khelpers.attach srv.kernel in
  Option.iter (Target.set_transport target) transport;
  Hashtbl.replace srv.targets name
    { tname = name; target; state = Healthy; rr = 0; hsince = 0; qspan = 0 };
  srv.torder <- srv.torder @ [ name ]

let target_names srv = srv.torder

type health = [ `Healthy | `Degraded | `Quarantine of sid | `Probation of sid list ]

let shared_of srv name =
  match Hashtbl.find_opt srv.targets name with
  | Some sh -> sh
  | None -> invalid_arg (Printf.sprintf "Session: unknown target %S" name)

let target_health srv name : health =
  match (shared_of srv name).state with
  | Healthy -> `Healthy
  | Degraded _ -> `Degraded
  | Quarantine q -> `Quarantine q.prober
  | Probation p -> `Probation p.waiting

(* ------------------------------------------------------------------ *)
(* Per-session counters *)

let ns sess key = Printf.sprintf "session.%d.%s" sess.sid key

let bump ?(by = 1) sess key =
  if by <> 0 then begin
    Hashtbl.replace sess.tab key (by + Option.value ~default:0 (Hashtbl.find_opt sess.tab key));
    if Obs.enabled () then Obs.Metrics.incr ~by (ns sess key)
  end

let counters srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> []
  | Some sess ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) sess.tab []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter srv sid key =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> 0
  | Some sess -> Option.value ~default:0 (Hashtbl.find_opt sess.tab key)

let fault_journal srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> []
  | Some sess -> List.rev sess.flog_rev

let wire_ms srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0. | Some s -> s.ssim_ms

let reads_used srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0 | Some s -> s.sreads

(* ------------------------------------------------------------------ *)
(* Durable WAL journaling.

   When a Durable store is attached, every fleet lifecycle event
   (open/close/budget/quarantine) and every checkpointed panel op is
   appended as a typed record; past [wal_limit] tail records the stream
   compacts into a snapshot segment (a save_fleet image — its journals
   already Jreserve-compacted by the panel layer) plus a fresh tail.
   Recovery (recover_durable, further down) fsck's the image and
   replays per-session op chains. *)

let faults_json (f : Transport.faults) =
  Printf.sprintf "{\"stall\":%g,\"drop\":%g,\"disconnect\":%g}" f.Transport.stall_rate
    f.Transport.drop_rate f.Transport.disconnect_rate

let budget_json b =
  let opt_i = function None -> "null" | Some n -> string_of_int n in
  let opt_f = function None -> "null" | Some x -> Printf.sprintf "%g" x in
  Printf.sprintf "{\"max_reads\":%s,\"max_sim_ms\":%s,\"plot_deadline_ms\":%s,\"retry_burst\":%s}"
    (opt_i b.max_reads) (opt_f b.max_sim_ms) (opt_f b.plot_deadline_ms)
    (opt_i b.retry_burst)

(* Record kinds.  The payloads are JSON; the framing/checksums live in
   {!Durable}, which treats both kind and payload as opaque. *)
let k_open = 1
let k_close = 2
let k_budget = 3
let k_quarantine = 4
let k_op = 5
let k_snapshot = 6

let wal_append srv ~kind payload =
  match srv.wal with
  | None -> ()
  | Some d -> ignore (Durable.append d ~kind ~payload)

(* save_fleet is defined with the rest of the snapshot code below; the
   journaling hooks only need to call it *)
let wal_snapshot_ref : (server -> unit) ref = ref (fun _ -> ())

let maybe_snapshot srv =
  match srv.wal with
  | Some d when Durable.tail_records d > srv.wal_limit -> !wal_snapshot_ref srv
  | _ -> ()

(* Mirror the session's panel-op stream into the WAL.  Re-armed after
   every admitted op because an in-session recovery replaces the panel
   object (and with it the hook). *)
let arm_wal_hook srv sess =
  if srv.wal <> None then
    Panel.set_op_hook sess.vis.Visualinux.panel
      (Some
         (fun op ->
           sess.opno <- sess.opno + 1;
           wal_append srv ~kind:k_op
             (Printf.sprintf "{\"sid\":%d,\"opno\":%d,\"op\":%s}" sess.sid sess.opno
                (Panel.op_to_json op));
           maybe_snapshot srv))

let wal_open_payload sess =
  Printf.sprintf "{\"sid\":%d,\"name\":\"%s\",\"target\":\"%s\",\"weight\":%d,\"budget\":%s,\"faults\":%s}"
    sess.sid (Vgraph.json_escape sess.name)
    (Vgraph.json_escape sess.shared.tname)
    sess.weight (budget_json sess.sbudget) (faults_json sess.sfaults)

let attach_wal srv d =
  srv.wal <- Some d;
  !wal_snapshot_ref srv;
  Hashtbl.iter (fun _ sess -> arm_wal_hook srv sess) srv.sessions

let detach_wal srv =
  Hashtbl.iter (fun _ sess -> Panel.set_op_hook sess.vis.Visualinux.panel None) srv.sessions;
  srv.wal <- None

let wal_of srv = srv.wal
let set_wal_snapshot_limit srv n = srv.wal_limit <- max 1 n
let last_recovery srv = srv.last_recovery

let corrupt_wal srv =
  match srv.wal with
  | None -> false
  | Some d ->
      (* prefer a journaled op whose owner has a {e later} op on record:
         the fsck gap then surfaces as a hole in that session's opno
         chain and the salvage is typed.  Corrupting a session's final
         op is indistinguishable from a (legitimately lossy) torn tail. *)
      let sid_of payload =
        try Scanf.sscanf payload "{\"sid\":%d" (fun s -> s) with _ -> -1
      in
      let ops =
        List.filter_map
          (fun (k, p) -> if k = k_op then Some (sid_of p) else None)
          (Durable.record_log d)
      in
      let rec pick i = function
        | [] -> None
        | s :: rest -> if List.mem s rest then Some i else pick (i + 1) rest
      in
      Durable.corrupt ~kind:k_op ?victim:(pick 0 ops) d

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let live_sids_on srv sh =
  Hashtbl.fold (fun sid s acc -> if s.shared == sh then sid :: acc else acc) srv.sessions []
  |> List.sort compare

let sessions_gauge srv =
  if Obs.enabled () then
    Obs.Metrics.set_gauge "server.sessions" (float_of_int (Hashtbl.length srv.sessions))

let mk_session srv ~sid ~budget ~faults ~weight ~tname name =
  let sh = shared_of srv tname in
  let vis = Visualinux.attach ~target:sh.target srv.kernel in
  let sess =
    { sid; name; vis; shared = sh; sfaults = faults; sbudget = budget;
      weight = max 1 weight; rb_tokens = Option.value ~default:0 budget.retry_burst;
      sreads = 0; ssim_ms = 0.; flog_rev = []; opno = 0; tab = Hashtbl.create 16 }
  in
  Hashtbl.replace srv.sessions sid sess;
  if sid >= srv.next_sid then srv.next_sid <- sid + 1;
  sessions_gauge srv;
  sess

let open_session ?(budget = unlimited) ?(faults = Transport.no_faults) ?(weight = 1)
    ?(target = default_target) srv name =
  if not (Hashtbl.mem srv.targets target) then Rejected { reason = Unknown_target target }
  else if Hashtbl.length srv.sessions >= srv.cap then
    Rejected { reason = Capacity { limit = srv.cap } }
  else begin
    let sess = mk_session srv ~sid:srv.next_sid ~budget ~faults ~weight ~tname:target name in
    if Obs.enabled () then
      Obs.instant ~cat:"session"
        ~attrs:[ ("sid", string_of_int sess.sid); ("name", name); ("target", target) ]
        "session.open";
    if srv.wal <> None then begin
      wal_append srv ~kind:k_open (wal_open_payload sess);
      arm_wal_hook srv sess
    end;
    Admitted sess.sid
  end

let close_session srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> ()
  | Some sess ->
      wal_append srv ~kind:k_close (Printf.sprintf "{\"sid\":%d}" sid);
      Panel.set_op_hook sess.vis.Visualinux.panel None;
      Hashtbl.remove srv.sessions sid;
      sessions_gauge srv;
      let sh = sess.shared in
      (* drop the departed session from recovery bookkeeping *)
      (match sh.state with
      | Healthy -> ()
      | Degraded d -> Hashtbl.remove d.credits sid
      | Quarantine q when q.prober = sid -> (
          match live_sids_on srv sh with
          | [] -> sh.state <- Healthy
          | s :: _ ->
              q.prober <- s;
              q.probes <- 0)
      | Quarantine _ -> ()
      | Probation p -> (
          p.waiting <- List.filter (fun s -> s <> sid) p.waiting;
          match p.waiting with [] -> sh.state <- Healthy | _ -> ()))

let session_ids srv =
  Hashtbl.fold (fun sid _ acc -> sid :: acc) srv.sessions [] |> List.sort compare

let session_name srv sid =
  Option.map (fun s -> s.name) (Hashtbl.find_opt srv.sessions sid)

let vis srv sid = Option.map (fun s -> s.vis) (Hashtbl.find_opt srv.sessions sid)

let set_budget srv sid b =
  Option.iter
    (fun s ->
      s.sbudget <- b;
      s.rb_tokens <- Option.value ~default:0 b.retry_burst;
      wal_append srv ~kind:k_budget
        (Printf.sprintf "{\"sid\":%d,\"budget\":%s}" sid (budget_json b)))
    (Hashtbl.find_opt srv.sessions sid)

let budget_of srv sid =
  Option.map (fun s -> s.sbudget) (Hashtbl.find_opt srv.sessions sid)

let set_faults srv sid f =
  Option.iter (fun s -> s.sfaults <- f) (Hashtbl.find_opt srv.sessions sid)

let set_weight srv sid w =
  Option.iter (fun s -> s.weight <- max 1 w) (Hashtbl.find_opt srv.sessions sid)

let weight_of srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 1 | Some s -> s.weight

let retry_tokens srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0 | Some s -> s.rb_tokens

let begin_epoch srv sid =
  Option.iter
    (fun s ->
      s.sreads <- 0;
      s.ssim_ms <- 0.;
      s.rb_tokens <- Option.value ~default:0 s.sbudget.retry_burst;
      List.iter (Hashtbl.remove s.tab) [ "cache.hits"; "cache.misses"; "cache.coalesced" ];
      bump s "epochs")
    (Hashtbl.find_opt srv.sessions sid)

(* ------------------------------------------------------------------ *)
(* Degradation state machine *)

let elect srv sh =
  match live_sids_on srv sh with
  | [] -> None
  | sids ->
      let n = List.length sids in
      let pick = List.nth sids (sh.rr mod n) in
      sh.rr <- sh.rr + 1;
      Some pick

let obs_state sh label =
  if Obs.enabled () then begin
    Obs.instant ~cat:"session" ~attrs:[ ("target", sh.tname) ] label;
    Obs.Metrics.incr (Printf.sprintf "server.%s" label)
  end

(* Enter quarantine: elect a prober round-robin; every other session on
   the target falls back to serving [STALE] panes from its caches. *)
let enter_quarantine srv sh =
  match elect srv sh with
  | None -> sh.state <- Healthy
  | Some prober ->
      sh.state <- Quarantine { prober; probes = 0 };
      sh.hsince <- 0;
      (* remember which op parked the target, so the probation
         re-admission that eventually follows can link back to it *)
      sh.qspan <- Obs.Trace.current_span ();
      obs_state sh "quarantine.enter";
      wal_append srv ~kind:k_quarantine
        (Printf.sprintf "{\"target\":\"%s\",\"prober\":%d}" (Vgraph.json_escape sh.tname)
           prober);
      Hashtbl.iter
        (fun sid s ->
          if s.shared == sh && sid <> prober then begin
            Panel.mark_all_stale s.vis.Visualinux.panel;
            bump s "stale.epochs"
          end)
        srv.sessions

let enter_degraded sh =
  sh.state <- Degraded { credits = Hashtbl.create 8 };
  sh.hsince <- 0;
  obs_state sh "degrade.enter"

let link_bad tr = Transport.link tr = Transport.Down || Transport.breaker tr = Transport.Open

let link_recovered tr =
  Transport.link tr = Transport.Up && Transport.breaker tr = Transport.Closed

let th = Transport.Health.default_thresholds

(* Advance the target's state from what [sess]'s (admitted) op left on
   the shared link: the hard breaker/link signals still force
   quarantine, but the graduated path is driven by the wire's fault
   EWMA through {!Transport.Health.step} — Healthy -> Degraded when the
   EWMA crosses [degrade_hi], Degraded -> Quarantine at [sick_hi] with
   the breaker still Closed (the proactive shed the gray-failure regime
   needs), and quarantine is only left once the EWMA has decayed back
   under [sick_lo], so one lucky probe cannot re-admit the herd. *)
let update_health srv sh sess =
  match Target.transport sh.target with
  | None -> ()
  | Some tr -> (
      sh.hsince <- sh.hsince + 1;
      let fr = (Transport.ewma tr).Transport.ew_fault_rate in
      match sh.state with
      | Healthy ->
          if link_bad tr then enter_quarantine srv sh
          else if
            Transport.Health.step th Transport.Health.Fine ~fr ~since:sh.hsince
            <> Transport.Health.Fine
          then enter_degraded sh
      | Degraded _ ->
          if link_bad tr then enter_quarantine srv sh
          else (
            match Transport.Health.step th Transport.Health.Degraded ~fr ~since:sh.hsince with
            | Transport.Health.Fine ->
                sh.state <- Healthy;
                sh.hsince <- 0;
                obs_state sh "degrade.exit"
            | Transport.Health.Sick -> enter_quarantine srv sh
            | Transport.Health.Degraded -> ())
      | Quarantine q ->
          if link_recovered tr && fr <= th.Transport.Health.sick_lo then begin
            (* recovered: re-admit the waiting sessions one op at a
               time, in sid order — fair, staggered, no herd *)
            let others = List.filter (fun s -> s <> q.prober) (live_sids_on srv sh) in
            (match others with
            | [] -> sh.state <- Healthy
            | waiting -> sh.state <- Probation { waiting; skips = 0 });
            sh.hsince <- 0;
            obs_state sh "quarantine.exit"
          end
          else if sess.sid = q.prober then begin
            q.probes <- q.probes + 1;
            bump sess "probes";
            if q.probes >= probe_rounds then begin
              (* the prober is not making progress (it may be the sick
                 session itself): pass the probe slot on *)
              (match elect srv sh with Some p -> q.prober <- p | None -> ());
              q.probes <- 0
            end
          end
      | Probation p ->
          if link_bad tr then enter_quarantine srv sh
          else (
            (* every admitted op on the target re-admits one waiter *)
            match p.waiting with
            | [] | [ _ ] ->
                sh.state <- Healthy;
                sh.hsince <- 0
            | _ :: rest -> p.waiting <- rest))

(* A healthy stand-in for a sick target: another registered target with
   a live wire (transportless locals are never hedge candidates).  All
   targets attach the same kernel image, so a hedged read returns the
   exact bytes the home target would have — the campaign bench asserts
   the rendered panes byte-identical. *)
let healthy_replica srv sh =
  List.find_map
    (fun name ->
      let cand = Hashtbl.find srv.targets name in
      if
        cand != sh && cand.state = Healthy
        &&
        match Target.transport cand.target with
        | Some tr -> link_recovered tr
        | None -> false
      then Some cand
      else None)
    srv.torder

(* The probe read, charged to the acting session: bring a dead link /
   open breaker back to Half_open first (a refused fetch charges
   nothing, so cooldown alone never elapses), then fire one 8-byte
   canary under the session's own fault config.  The canary's reads and
   wire ms land on the session's epoch budget — a Half_open breaker's
   probe is real traffic, not free — and its outcome feeds the wire's
   health EWMA, which is what eventually satisfies the quarantine-exit
   decay gate. *)
let fire_canary sess sh =
  match Target.transport sh.target with
  | None -> ()
  | Some tr ->
      if link_bad tr then Transport.reconnect tr;
      let saved = Transport.faults_of tr in
      let s0 = Transport.snapshot tr in
      Transport.set_faults tr sess.sfaults;
      Transport.set_deadline tr None;
      Transport.begin_plot tr;
      ignore (Transport.fetch tr ~bytes:8 (fun () -> ()));
      Transport.set_faults tr saved;
      let s1 = Transport.snapshot tr in
      let dr = s1.Transport.reads_ok - s0.Transport.reads_ok in
      sess.sreads <- sess.sreads + dr;
      sess.ssim_ms <- sess.ssim_ms +. (s1.Transport.sim_ms -. s0.Transport.sim_ms);
      bump ~by:dr sess "reads";
      bump sess "canaries"

(* Weighted fair shedding on a degraded target with no replica: each
   knock earns the session [weight] credits and an op is admitted when
   the balance covers the stride (twice the mean weight across the
   target's sessions), so a weight-w session is refused at most
   [ceil(stride/w)] times in a row — the starvation bound the tests
   pin — while admission frequency stays proportional to weight. *)
let shed_stride srv sh =
  let sids = live_sids_on srv sh in
  let total =
    List.fold_left
      (fun acc sid ->
        acc + match Hashtbl.find_opt srv.sessions sid with None -> 1 | Some s -> s.weight)
      0 sids
  in
  max 1 (2 * total / max 1 (List.length sids))

(* Where an admitted op's wire traffic goes. *)
type route = Home | Hedged of shared

(* What [degradation_route] decided, for [admit] to act on: the route,
   whether a canary must be fired through the sick home wire before the
   op runs, and — for a probation re-admission — the span id of the op
   that parked the target in quarantine (0 otherwise), so the op span
   can link back to its cause. *)
type decision = { droute : route; dcanary : bool; dqspan : int }

let go ?(canary = false) ?(qspan = 0) droute = Ok { droute; dcanary = canary; dqspan = qspan }

(* Admission + routing against the target's degradation state.  Healthy
   serves at home; Degraded hedges to a healthy replica when one exists
   (asking [admit] to fire a canary through the sick wire so its EWMA
   keeps learning) and weight-fair-sheds when none does; Quarantine
   serves everyone from the replica if there is one, else only the
   elected prober passes; Probation re-admits one waiter per op as
   before. *)
let degradation_route srv sh sess : (decision, reason) result =
  match sh.state with
  | Healthy -> go Home
  | Degraded d -> (
      match healthy_replica srv sh with
      | Some rep -> go ~canary:true (Hedged rep)
      | None ->
          let bal =
            sess.weight + Option.value ~default:0 (Hashtbl.find_opt d.credits sess.sid)
          in
          let stride = shed_stride srv sh in
          if bal >= stride then begin
            Hashtbl.replace d.credits sess.sid (bal - stride);
            go Home
          end
          else begin
            Hashtbl.replace d.credits sess.sid bal;
            Error (Shed { target = sh.tname; deficit = stride - bal })
          end)
  | Quarantine q ->
      if sess.sid = q.prober then
        (* the prober's op rides the replica when one exists — the
           canary is the probe; no need to risk the whole op on the
           sick wire *)
        match healthy_replica srv sh with
        | Some rep -> go ~canary:true (Hedged rep)
        | None -> go ~canary:true Home
      else (
        match healthy_replica srv sh with
        | Some rep -> go (Hedged rep)
        | None -> Error (Quarantined { target = sh.tname; prober = q.prober }))
  | Probation p -> (
      match p.waiting with
      | [] ->
          sh.state <- Healthy;
          go Home
      | head :: rest ->
          if sess.sid = head then go ~qspan:sh.qspan Home
          else if not (List.mem sess.sid p.waiting) then go Home
          else (
            match healthy_replica srv sh with
            | Some rep -> go (Hedged rep)
            | None ->
                (* a non-head waiter knocked: count it, and once every
                   waiter has been turned away rotate the head so a
                   silent head cannot starve the queue *)
                p.skips <- p.skips + 1;
                if p.skips > List.length p.waiting then begin
                  p.waiting <- rest @ [ head ];
                  p.skips <- 0
                end;
                Error (Quarantined { target = sh.tname; prober = List.hd p.waiting })))

let budget_block sess =
  match sess.sbudget.max_reads with
  | Some limit when sess.sreads >= limit ->
      Some (Reads_exhausted { used = sess.sreads; limit })
  | _ -> (
      match sess.sbudget.max_sim_ms with
      | Some limit_ms when sess.ssim_ms >= limit_ms ->
          Some (Budget_exhausted { used_ms = sess.ssim_ms; limit_ms })
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The isolated op wrapper *)

let health_gauges sh =
  if Obs.enabled () then begin
    (match Target.transport sh.target with
    | Some tr ->
        let e = Transport.ewma tr in
        Obs.Metrics.set_gauge
          (Printf.sprintf "health.%s.ewma_fault_rate" sh.tname)
          e.Transport.ew_fault_rate;
        Obs.Metrics.set_gauge
          (Printf.sprintf "health.%s.ewma_latency_ms" sh.tname)
          e.Transport.ew_latency_ms
    | None -> ());
    Obs.Metrics.set_gauge
      (Printf.sprintf "health.%s.state" sh.tname)
      (match sh.state with
      | Healthy -> 0.
      | Degraded _ -> 1.
      | Quarantine _ -> 2.
      | Probation _ -> 3.)
  end

let quarantined_gauge srv =
  if Obs.enabled () then begin
    let n =
      Hashtbl.fold
        (fun _ sh acc -> match sh.state with Quarantine _ -> acc + 1 | _ -> acc)
        srv.targets 0
    in
    Obs.Metrics.set_gauge "session.quarantined_targets" (float_of_int n)
  end

(* Swap the session's fault config, deadline, budget gate and retry
   budget onto the op's transport (the home link, or — when [route] says
   [Hedged] — the healthy replica's), run [f], then capture this op's
   deltas (faults, reads, wire ms, cache stats) into the session's
   private accounting — restoring the link's config, and the home
   transport on a hedged op, on every path {e before} the health update
   reads the home wire's state. *)
let run_isolated srv ~route sess f =
  let sh = sess.shared in
  let tgt = sh.target in
  let home_tr = Target.transport tgt in
  (match route with
  | Hedged rep -> Option.iter (Target.set_transport tgt) (Target.transport rep.target)
  | Home -> ());
  let tr_opt = Target.transport tgt in
  let saved_faults = Option.map Transport.faults_of tr_opt in
  (* token-bucket refill: one retry token earned per op, up to the cap *)
  (match sess.sbudget.retry_burst with
  | Some cap -> if sess.rb_tokens < cap then sess.rb_tokens <- sess.rb_tokens + 1
  | None -> ());
  let snap0 =
    match tr_opt with Some tr -> Some (Transport.snapshot tr) | None -> None
  in
  let cs0 = Target.cache_stats tgt in
  (* the global fault journal is drained per op (see below), so the op's
     faults are exactly [Target.faults tgt] afterwards *)
  Target.clear_faults tgt;
  Option.iter
    (fun tr ->
      Transport.set_faults tr sess.sfaults;
      Transport.set_deadline tr sess.sbudget.plot_deadline_ms;
      Transport.set_retry_gate tr
        (match sess.sbudget.retry_burst with
        | None -> None
        | Some _ ->
            Some
              (fun () ->
                if sess.rb_tokens > 0 then begin
                  sess.rb_tokens <- sess.rb_tokens - 1;
                  true
                end
                else begin
                  bump sess "retry.denied";
                  false
                end));
      let op_reads = ref 0 in
      let sim0 = (Transport.snapshot tr).Transport.sim_ms in
      Transport.set_gate tr
        (Some
           (fun ~bytes:_ ->
             match sess.sbudget.max_reads with
             | Some lim when sess.sreads + !op_reads >= lim ->
                 Some Transport.Deadline_exceeded
             | _ -> (
                 match sess.sbudget.max_sim_ms with
                 | Some lim
                   when sess.ssim_ms +. ((Transport.snapshot tr).Transport.sim_ms -. sim0)
                        >= lim ->
                     Some Transport.Deadline_exceeded
                 | _ ->
                     incr op_reads;
                     None))))
    tr_opt;
  let t0 = Obs.Clock.now_ms () in
  let finish () =
    (* accounting first, then restore the link for the next session *)
    let wall = Obs.Clock.elapsed_ms t0 in
    let faults = Target.faults tgt in
    Target.clear_faults tgt;
    sess.flog_rev <- List.rev_append faults sess.flog_rev;
    bump ~by:(List.length faults) sess "faults";
    let cs1 = Target.cache_stats tgt in
    bump ~by:(cs1.Target.hits - cs0.Target.hits) sess "cache.hits";
    bump ~by:(cs1.Target.misses - cs0.Target.misses) sess "cache.misses";
    bump ~by:(cs1.Target.coalesced - cs0.Target.coalesced) sess "cache.coalesced";
    bump sess "ops";
    let sim_delta =
      match (tr_opt, snap0) with
      | Some tr, Some s0 ->
          let s1 = Transport.snapshot tr in
          bump ~by:(s1.Transport.reads_ok - s0.Transport.reads_ok) sess "reads";
          bump ~by:(s1.Transport.deadline_hits - s0.Transport.deadline_hits) sess
            "budget.refusals";
          sess.sreads <- sess.sreads + (s1.Transport.reads_ok - s0.Transport.reads_ok);
          let d = s1.Transport.sim_ms -. s0.Transport.sim_ms in
          sess.ssim_ms <- sess.ssim_ms +. d;
          d
      | _ -> 0.
    in
    if Obs.enabled () then Obs.Metrics.observe (ns sess "op_ms") (wall +. sim_delta);
    Option.iter
      (fun tr ->
        Transport.set_gate tr None;
        Transport.set_retry_gate tr None;
        Option.iter (Transport.set_faults tr) saved_faults)
      tr_opt;
    (match route with
    | Hedged _ ->
        bump sess "hedged.ops";
        Option.iter (Target.set_transport tgt) home_tr
    | Home -> ());
    update_health srv sh sess;
    health_gauges sh;
    quarantined_gauge srv
  in
  (* a hedged op's wire work runs under its own span, linked from the
     ambient op span so Perfetto draws the op -> replica-wire arrow *)
  let f =
    match route with
    | Hedged rep when Obs.enabled () ->
        let op = Obs.Trace.current_span () in
        fun () ->
          Obs.with_span ~cat:"session"
            ~attrs:[ ("replica", rep.tname); ("target", sh.tname) ]
            "session.hedge"
            (fun () ->
              Obs.Trace.link ~kind:"hedge" ~from_span:op
                ~to_span:(Obs.Trace.current_span ());
              f ())
    | _ -> f
  in
  match f () with
  | x ->
      finish ();
      x
  | exception e ->
      finish ();
      raise e

let reason_label = function
  | Capacity _ -> "capacity"
  | Unknown_session _ -> "unknown_session"
  | Unknown_target _ -> "unknown_target"
  | Reads_exhausted _ -> "reads_exhausted"
  | Budget_exhausted _ -> "budget_exhausted"
  | Quarantined _ -> "quarantined"
  | Shed _ -> "shed"

(* Full admission pipeline for one v-command.  Every attempt mints a
   trace id up front; an admitted op runs inside a root [session.op]
   span carrying it (the ambient trace then flows into every transport/
   target/viewcl span the op opens), and a refusal emits a typed
   [session.refused] instant carrying the would-be trace id so shed
   traffic is still attributable. *)
let admit srv sid kind f =
  let tid = Obs.Trace.mint () in
  let refused sess_opt reason =
    Option.iter (fun sess -> bump sess "rejections") sess_opt;
    if Obs.enabled () then
      Obs.instant ~cat:"session"
        ~attrs:
          [ ("sid", string_of_int sid); ("kind", kind);
            ("trace", string_of_int tid); ("reason", reason_label reason) ]
        "session.refused";
    Rejected { reason }
  in
  match Hashtbl.find_opt srv.sessions sid with
  | None -> refused None (Unknown_session sid)
  | Some sess -> (
      match budget_block sess with
      | Some reason -> refused (Some sess) reason
      | None -> (
          match degradation_route srv sess.shared sess with
          | Error reason -> refused (Some sess) reason
          | Ok { droute = route; dcanary; dqspan } ->
              let r =
                Obs.Trace.with_trace tid (fun () ->
                    Obs.with_span ~cat:"session"
                      ~attrs:
                        [ ("sid", string_of_int sid); ("kind", kind);
                          ("target", sess.shared.tname);
                          ("route",
                           match route with
                           | Home -> "home"
                           | Hedged rep -> "hedged:" ^ rep.tname) ]
                      "session.op"
                      (fun () ->
                        let op = Obs.Trace.current_span () in
                        if dqspan <> 0 then
                          Obs.Trace.link ~kind:"probation" ~from_span:dqspan
                            ~to_span:op;
                        if dcanary then
                          Obs.with_span ~cat:"session"
                            ~attrs:[ ("target", sess.shared.tname) ]
                            "session.canary"
                            (fun () ->
                              Obs.Trace.link ~kind:"canary" ~from_span:op
                                ~to_span:(Obs.Trace.current_span ());
                              fire_canary sess sess.shared);
                        run_isolated srv ~route sess (fun () -> f sess)))
              in
              bump sess kind;
              (* an in-session recovery replaces the panel object; keep
                 the WAL tap on whatever panel the op left behind *)
              arm_wal_hook srv sess;
              Admitted r))

(* ------------------------------------------------------------------ *)
(* v-commands *)

let vplot srv sid ?title src =
  admit srv sid "plots" (fun sess -> Visualinux.vplot sess.vis ?title src)

let vrefresh srv sid ~pane =
  admit srv sid "refreshes" (fun sess -> Visualinux.vrefresh sess.vis ~pane)

let vctrl srv sid cmd = admit srv sid "ctrls" (fun sess -> Visualinux.vctrl sess.vis cmd)

let render srv sid pane =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> None
  | Some sess ->
      let r = Visualinux.render_pane sess.vis pane in
      if r <> None then begin
        bump sess "renders";
        match Panel.pane_opt sess.vis.Visualinux.panel pane with
        | Some p when p.Panel.stale -> bump sess "stale.renders"
        | _ -> ()
      end;
      r

let recover_session srv sid =
  admit srv sid "recovers" (fun sess -> Visualinux.recover sess.vis)

let refresh_stale srv sid =
  admit srv sid "refreshes" (fun sess -> Visualinux.refresh_stale sess.vis)

(* ------------------------------------------------------------------ *)
(* Fleet snapshot / recovery *)

let save_fleet srv =
  let one sid =
    let sess = Hashtbl.find srv.sessions sid in
    Printf.sprintf
      "{\"sid\":%d,\"name\":\"%s\",\"target\":\"%s\",\"weight\":%d,\"opno\":%d,\"budget\":%s,\"faults\":%s,\"jn\":%s}"
      sid (Vgraph.json_escape sess.name)
      (Vgraph.json_escape sess.shared.tname)
      sess.weight sess.opno (budget_json sess.sbudget) (faults_json sess.sfaults)
      (Panel.journal_to_json sess.vis.Visualinux.panel)
  in
  Printf.sprintf "{\"fleet\":[%s]}"
    (String.concat "," (List.map one (session_ids srv)))

let wal_snapshot srv =
  match srv.wal with
  | None -> ()
  | Some d -> Durable.compact d ~kind:k_snapshot ~payload:(save_fleet srv)

let () = wal_snapshot_ref := wal_snapshot

let fleet_image srv =
  let d = Durable.create () in
  ignore (Durable.append d ~kind:k_snapshot ~payload:(save_fleet srv));
  Durable.contents d

let budget_of_json j =
  let f k = match Json.member k j with Some (Json.Float x) -> Some x
    | Some (Json.Int n) -> Some (float_of_int n) | _ -> None in
  let i k = match Json.member k j with Some (Json.Int n) -> Some n | _ -> None in
  { max_reads = i "max_reads"; max_sim_ms = f "max_sim_ms";
    plot_deadline_ms = f "plot_deadline_ms"; retry_burst = i "retry_burst" }

let faults_of_json j =
  let f k d =
    match Json.member k j with
    | Some (Json.Float x) -> x
    | Some (Json.Int n) -> float_of_int n
    | _ -> d
  in
  { Transport.stall_rate = f "stall" 0.; drop_rate = f "drop" 0.;
    disconnect_rate = f "disconnect" 0. }

(* One saved session, as parsed from a save_fleet snapshot entry or a
   WAL k_open payload (which just lacks "opno" and "jn"). *)
type fleet_entry = {
  fe_sid : int;
  fe_name : string;
  fe_target : string;
  fe_weight : int;
  fe_budget : budget;
  fe_faults : Transport.faults;
  fe_ops : Panel.op list;
  fe_opno : int;
}

let fleet_entry_of_json e =
  let str k = Option.map Json.to_str (Json.member k e) in
  let int k d = match Json.member k e with Some (Json.Int n) -> n | _ -> d in
  let ops =
    match Json.member "jn" e with
    | Some jn -> Panel.journal_of_json (Json.to_string jn)
    | None -> []
  in
  { fe_sid = int "sid" 0;
    fe_name = Option.value ~default:"?" (str "name");
    fe_target = Option.value ~default:default_target (str "target");
    fe_weight = int "weight" 1;
    fe_budget =
      (match Json.member "budget" e with Some b -> budget_of_json b | None -> unlimited);
    fe_faults =
      (match Json.member "faults" e with
      | Some f -> faults_of_json f
      | None -> Transport.no_faults);
    fe_ops = ops;
    fe_opno = int "opno" (List.length ops) }

let recover_fleet srv json =
  let j = Json.parse json in
  let entries =
    match Json.member "fleet" j with Some (Json.List l) -> l | _ -> []
  in
  List.map
    (fun e ->
      let fe = fleet_entry_of_json e in
      match
        open_session ~budget:fe.fe_budget ~faults:fe.fe_faults ~weight:fe.fe_weight
          ~target:fe.fe_target srv fe.fe_name
      with
      | Rejected r -> Rejected r
      | Admitted sid -> (
          match
            admit srv sid "recovers" (fun sess ->
                Visualinux.recover ~ops:fe.fe_ops sess.vis)
          with
          | Rejected r -> Rejected r
          | Admitted stale -> Admitted (sid, stale)))
    entries

(* ------------------------------------------------------------------ *)
(* Durable recovery: fsck the image, then replay per-session op chains.

   The plan phase is pure: start from the last intact snapshot record,
   apply the tail events, and track each session's opno chain.  A
   contiguous chain replays whole; a chain with a hole (fsck skipped
   the record) is cut at the break — replaying past a missing
   pane-creating op would shift every later pane id, so the intact
   prefix is replayed and the rest dropped, panes marked [STALE].  Ops
   whose open/snapshot record was itself destroyed belong to a "ghost"
   session: identity lost, it comes back quarantined with stale panes
   while its neighbours recover bit-identically. *)

type plan_entry = {
  mutable e_cfg : fleet_entry;
  mutable e_ops_rev : Panel.op list;  (* chain-intact ops, newest first *)
  mutable e_next : int;  (* next expected opno *)
  mutable e_dropped : int;  (* ops dropped: gap, duplicate, post-break *)
  mutable e_ghost : bool;  (* config lost to corruption *)
  mutable e_broken : bool;  (* opno chain broke mid-stream *)
}

let plan_image image =
  let report, recs = Durable.fsck image in
  let snap_idx = ref (-1) in
  List.iteri
    (fun i (r : Durable.record) -> if r.Durable.rkind = k_snapshot then snap_idx := i)
    recs;
  let entries : (int, plan_entry) Hashtbl.t = Hashtbl.create 8 in
  let add_entry ?(ghost = false) fe =
    Hashtbl.replace entries fe.fe_sid
      { e_cfg = fe; e_ops_rev = List.rev fe.fe_ops; e_next = fe.fe_opno + 1;
        e_dropped = 0; e_ghost = ghost; e_broken = false }
  in
  let ghost sid =
    add_entry ~ghost:true
      { fe_sid = sid; fe_name = Printf.sprintf "sid%d?" sid;
        fe_target = default_target; fe_weight = 1; fe_budget = unlimited;
        fe_faults = Transport.no_faults; fe_ops = []; fe_opno = 0 };
    Hashtbl.find entries sid
  in
  (* base state: the last snapshot that survived fsck (if any) *)
  (if !snap_idx >= 0 then
     let snap = List.nth recs !snap_idx in
     try
       match Json.member "fleet" (Json.parse snap.Durable.rpayload) with
       | Some (Json.List l) -> List.iter (fun e -> add_entry (fleet_entry_of_json e)) l
       | _ -> ()
     with _ -> ());
  (* tail events *)
  let sid_of j = match Json.member "sid" j with Some (Json.Int s) -> Some s | _ -> None in
  let apply_op payload =
    let j = Json.parse payload in
    match sid_of j with
    | None -> ()
    | Some sid -> (
        let opno = match Json.member "opno" j with Some (Json.Int n) -> n | _ -> 0 in
        let op =
          match Json.member "op" j with
          | Some o -> (
              match
                Panel.journal_of_json
                  (Printf.sprintf "{\"journal\":[%s]}" (Json.to_string o))
              with
              | [ op ] -> Some op
              | _ -> None)
          | None -> None
        in
        let e = match Hashtbl.find_opt entries sid with Some e -> e | None -> ghost sid in
        if e.e_ghost then (
          (* a ghost's ids are untrustworthy anyway: keep what we have *)
          match op with
          | Some op -> e.e_ops_rev <- op :: e.e_ops_rev
          | None -> e.e_dropped <- e.e_dropped + 1)
        else if e.e_broken then e.e_dropped <- e.e_dropped + 1
        else
          match op with
          | Some op when opno = e.e_next ->
              e.e_ops_rev <- op :: e.e_ops_rev;
              e.e_next <- e.e_next + 1
          | _ ->
              (* hole or duplicate in the chain: cut here *)
              e.e_broken <- true;
              e.e_dropped <- e.e_dropped + 1)
  in
  List.iteri
    (fun i (r : Durable.record) ->
      if i > !snap_idx then
        try
          if r.Durable.rkind = k_open then
            add_entry (fleet_entry_of_json (Json.parse r.Durable.rpayload))
          else if r.Durable.rkind = k_close then (
            match sid_of (Json.parse r.Durable.rpayload) with
            | Some sid -> Hashtbl.remove entries sid
            | None -> ())
          else if r.Durable.rkind = k_budget then (
            let j = Json.parse r.Durable.rpayload in
            match (sid_of j, Json.member "budget" j) with
            | Some sid, Some b ->
                Option.iter
                  (fun e -> e.e_cfg <- { e.e_cfg with fe_budget = budget_of_json b })
                  (Hashtbl.find_opt entries sid)
            | _ -> ())
          else if r.Durable.rkind = k_op then apply_op r.Durable.rpayload
          (* k_quarantine and unknown kinds are informational *)
        with _ -> ())
    recs;
  let plan = Hashtbl.fold (fun _ e acc -> e :: acc) entries [] in
  (report, List.sort (fun a b -> compare a.e_cfg.fe_sid b.e_cfg.fe_sid) plan)

let classify e =
  if e.e_ghost then Quarantined_stale
  else if e.e_broken || e.e_dropped > 0 then Salvaged { dropped = e.e_dropped }
  else Replayed

let fsck_image image =
  let report, plan = plan_image image in
  ( report,
    List.map
      (fun e ->
        { rsid = e.e_cfg.fe_sid; rname = e.e_cfg.fe_name; rtarget = e.e_cfg.fe_target;
          rsalvage = classify e; rops = List.length e.e_ops_rev; rstale = 0 })
      plan )

let recover_durable srv image =
  let t0 = Obs.Clock.now_ms () in
  let report, plan = plan_image image in
  (* rebuild a layout with every extraction refused: panes exist, ids
     preserved by replay order, all [STALE] — no admission, no wire *)
  let stale_rebuild sid ops =
    match Hashtbl.find_opt srv.sessions sid with
    | None -> 0
    | Some sess ->
        let panel, _ = Panel.recover ~extract:(fun _ -> None) ops in
        sess.vis.Visualinux.panel <- panel;
        Panel.mark_all_stale panel;
        bump sess "recovers";
        bump sess "stale.epochs";
        List.length (Panel.stale_ids panel)
  in
  let run_entry e =
    let fe = e.e_cfg in
    let ops = List.rev e.e_ops_rev in
    let target =
      if Hashtbl.mem srv.targets fe.fe_target then fe.fe_target else default_target
    in
    Obs.with_span ~cat:"session"
      ~attrs:[ ("name", fe.fe_name); ("target", target) ]
      "session.recovered"
      (fun () ->
        match
          open_session ~budget:fe.fe_budget ~faults:fe.fe_faults ~weight:fe.fe_weight
            ~target srv fe.fe_name
        with
        | Rejected _ ->
            (* capacity: the entry cannot come back at all *)
            { rsid = 0; rname = fe.fe_name; rtarget = target;
              rsalvage = Quarantined_stale; rops = 0; rstale = 0 }
        | Admitted sid ->
            Option.iter
              (fun s -> s.opno <- (if e.e_ghost then List.length ops else e.e_next - 1))
              (Hashtbl.find_opt srv.sessions sid);
            let salv = classify e in
            let rstale =
              if e.e_ghost then stale_rebuild sid ops
              else
                match
                  admit srv sid "recovers" (fun sess -> Visualinux.recover ~ops sess.vis)
                with
                | Admitted stale ->
                    if salv <> Replayed then (
                      match Hashtbl.find_opt srv.sessions sid with
                      | Some sess ->
                          (* data was lost: every surviving pane may
                             predate the crash point — say so *)
                          Panel.mark_all_stale sess.vis.Visualinux.panel;
                          bump sess "stale.epochs";
                          List.length (Panel.stale_ids sess.vis.Visualinux.panel)
                      | None -> stale)
                    else stale
                | Rejected _ ->
                    (* the target is quarantined mid-recovery: serve the
                       layout [STALE] like any other quarantined session *)
                    stale_rebuild sid ops
            in
            { rsid = sid; rname = fe.fe_name; rtarget = target; rsalvage = salv;
              rops = List.length ops; rstale })
  in
  let rsessions = List.map run_entry plan in
  let rms = Obs.Clock.elapsed_ms t0 in
  let rcv = { rreport = report; rsessions; rms } in
  srv.last_recovery <- Some rcv;
  if Obs.enabled () then begin
    let sum f = List.fold_left (fun a r -> a + f r) 0 rsessions in
    let replayed_ops = sum (fun r -> match r.rsalvage with Replayed -> r.rops | _ -> 0) in
    let salvaged_ops = sum (fun r -> match r.rsalvage with Replayed -> 0 | _ -> r.rops) in
    let dropped = List.fold_left (fun a e -> a + e.e_dropped) 0 plan in
    let degraded = sum (fun r -> if r.rsalvage = Replayed then 0 else 1) in
    Obs.Metrics.incr ~by:replayed_ops "recovery.records_replayed";
    Obs.Metrics.incr ~by:(report.Durable.records_skipped + dropped) "recovery.records_skipped";
    Obs.Metrics.incr ~by:salvaged_ops "recovery.records_salvaged";
    Obs.Metrics.incr ~by:(List.length rsessions) "recovery.sessions_total";
    Obs.Metrics.incr ~by:(List.length rsessions - degraded) "recovery.sessions_replayed";
    Obs.Metrics.incr ~by:degraded "recovery.sessions_degraded";
    Obs.Metrics.observe "recovery.ms" rms
  end;
  rcv

let salvage_label = function
  | Replayed -> "replayed"
  | Salvaged { dropped } ->
      Printf.sprintf "salvaged (%d op%s dropped)" dropped (if dropped = 1 then "" else "s")
  | Quarantined_stale -> "quarantined [STALE]"

let recovery_to_string r =
  let b = Buffer.create 256 in
  Printf.bprintf b "%s\n" (Durable.report_to_string r.rreport);
  List.iter
    (fun s ->
      Printf.bprintf b "session %d %-12s on %-6s: %-24s %d op%s, %d stale pane%s\n" s.rsid
        (Printf.sprintf "%S" s.rname)
        s.rtarget (salvage_label s.rsalvage) s.rops
        (if s.rops = 1 then "" else "s")
        s.rstale
        (if s.rstale = 1 then "" else "s"))
    r.rsessions;
  Printf.bprintf b "%d session%s recovered in %.1f ms\n" (List.length r.rsessions)
    (if List.length r.rsessions = 1 then "" else "s")
    r.rms;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Status *)

let status srv =
  let b = Buffer.create 256 in
  Printf.bprintf b "server: %d/%d sessions, %d target%s\n"
    (Hashtbl.length srv.sessions) srv.cap
    (List.length srv.torder)
    (if List.length srv.torder = 1 then "" else "s");
  List.iter
    (fun tname ->
      let sh = shared_of srv tname in
      let link =
        match Target.transport sh.target with
        | None -> "local"
        | Some tr ->
            Printf.sprintf "%s %s, breaker %s"
              (Transport.profile_of tr).Transport.pname
              (match Transport.link tr with Transport.Up -> "up" | Transport.Down -> "down")
              (match Transport.breaker tr with
              | Transport.Closed -> "closed"
              | Transport.Open -> "open"
              | Transport.Half_open -> "half-open")
      in
      let state =
        match sh.state with
        | Healthy -> "healthy"
        | Degraded _ -> "DEGRADED (shedding/hedging)"
        | Quarantine q -> Printf.sprintf "QUARANTINE (session %d probing)" q.prober
        | Probation p ->
            Printf.sprintf "probation (waiting: %s)"
              (String.concat "," (List.map string_of_int p.waiting))
      in
      let ewma_s =
        match Target.transport sh.target with
        | None -> ""
        | Some tr ->
            let e = Transport.ewma tr in
            Printf.sprintf " | ewma fault %.3f, lat %.2f ms" e.Transport.ew_fault_rate
              e.Transport.ew_latency_ms
      in
      let cs = Target.cache_stats sh.target in
      Printf.bprintf b "target %-8s [%s] %s | cache %d hit / %d miss%s\n" tname link state
        cs.Target.hits cs.Target.misses ewma_s)
    srv.torder;
  List.iter
    (fun sid ->
      let sess = Hashtbl.find srv.sessions sid in
      let budget_s =
        match (sess.sbudget.max_reads, sess.sbudget.max_sim_ms) with
        | None, None -> "unlimited"
        | r, m ->
            String.concat ", "
              (List.filter_map Fun.id
                 [ Option.map (fun l -> Printf.sprintf "%d/%d reads" sess.sreads l) r;
                   Option.map (fun l -> Printf.sprintf "%.1f/%.1f ms" sess.ssim_ms l) m ])
      in
      Printf.bprintf b
        "session %d %-10s on %s w%d | %d plots, %d faults, %d rejections | budget %s\n" sid
        (Printf.sprintf "%S" sess.name)
        sess.shared.tname sess.weight
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "plots"))
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "faults"))
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "rejections"))
        budget_s)
    (session_ids srv);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* SLOs + the vtop dashboard *)

(* The fleet's declarative objectives, one set per live session plus
   one per target, all evaluated from counters/gauges the admission
   path already maintains — registration is idempotent, so calling
   this again after opening more sessions only adds the new ones. *)
let register_slos srv =
  List.iter
    (fun sid ->
      let n fmt = Printf.sprintf fmt sid in
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.availability";
          okind = Obs.Slo.Good_bad { good = n "session.%d.ops"; bad = n "session.%d.rejections" };
          otarget = 0.95 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.clean_reads";
          okind = Obs.Slo.Bad_total { bad = n "session.%d.faults"; total = n "session.%d.reads" };
          otarget = 0.99 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.op_p95";
          okind = Obs.Slo.Histogram_le { histo = n "session.%d.op_ms"; threshold_ms = 100. };
          otarget = 0.95 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.staleness";
          okind =
            Obs.Slo.Bad_total
              { bad = n "session.%d.stale.renders"; total = n "session.%d.renders" };
          otarget = 0.90 })
    (session_ids srv);
  List.iter
    (fun tname ->
      Obs.Slo.register
        { Obs.Slo.oname = Printf.sprintf "t.%s.healthy" tname;
          okind =
            Obs.Slo.Gauge_le
              { gauge = Printf.sprintf "health.%s.state" tname; threshold = 0.5 };
          otarget = 0.90 })
    srv.torder;
  (* fleet-wide: recoveries must bring sessions back whole, not
     salvaged or quarantined *)
  Obs.Slo.register
    { Obs.Slo.oname = "fleet.recovery";
      okind =
        Obs.Slo.Bad_total
          { bad = "recovery.sessions_degraded"; total = "recovery.sessions_total" };
      otarget = 0.90 }

(* The worst SLO row for one session: (max burn, worst severity). *)
let slo_worst_for prefix =
  List.fold_left
    (fun (burn, sev) (r : Obs.Slo.status) ->
      if String.length r.Obs.Slo.slo >= String.length prefix
         && String.sub r.Obs.Slo.slo 0 (String.length prefix) = prefix
      then
        ( Float.max burn r.Obs.Slo.burn_rate,
          if r.Obs.Slo.severity = "page" || sev = "page" then "page"
          else if r.Obs.Slo.severity = "warn" || sev = "warn" then "warn"
          else sev )
      else (burn, sev))
    (0., "ok")

(* Live ASCII fleet dashboard: one render of everything the fleet
   knows about itself — target health, per-session vitals, SLO burn,
   and the slowest recent traces with their causal links. *)
let vtop ?(top = 5) srv =
  Obs.Slo.tick ();
  let b = Buffer.create 2048 in
  let nsess = Hashtbl.length srv.sessions in
  Printf.bprintf b "vtop — %d/%d session%s, %d target%s" nsess srv.cap
    (if nsess = 1 then "" else "s")
    (List.length srv.torder)
    (if List.length srv.torder = 1 then "" else "s");
  if Obs.enabled () then
    Printf.bprintf b " | obs ring %d/%d (%d dropped)" (Obs.event_count ())
      (Obs.ring_capacity ()) (Obs.dropped ())
  else Buffer.add_string b " | observability OFF (vctrl obs on)";
  Buffer.add_char b '\n';
  (* --- targets --- *)
  Printf.bprintf b "%-8s %-10s %-7s %-7s %-9s %s\n" "TARGET" "STATE" "FAULT"
    "LAT_MS" "WIRE" "CACHE";
  List.iter
    (fun tname ->
      let sh = shared_of srv tname in
      let state =
        match sh.state with
        | Healthy -> "healthy"
        | Degraded _ -> "DEGRADED"
        | Quarantine q -> Printf.sprintf "QUAR(p%d)" q.prober
        | Probation p -> Printf.sprintf "prob(%d)" (List.length p.waiting)
      in
      let fault, lat, wire =
        match Target.transport sh.target with
        | None -> ("-", "-", "local")
        | Some tr ->
            let e = Transport.ewma tr in
            ( Printf.sprintf "%.3f" e.Transport.ew_fault_rate,
              Printf.sprintf "%.2f" e.Transport.ew_latency_ms,
              Printf.sprintf "%s/%s"
                (match Transport.link tr with Transport.Up -> "up" | Transport.Down -> "down")
                (match Transport.breaker tr with
                | Transport.Closed -> "cl"
                | Transport.Open -> "OPEN"
                | Transport.Half_open -> "half") )
      in
      let cs = Target.cache_stats sh.target in
      let tot = cs.Target.hits + cs.Target.misses in
      Printf.bprintf b "%-8s %-10s %-7s %-7s %-9s %d/%d hit%s\n" tname state fault
        lat wire cs.Target.hits tot
        (if tot = 0 then "" else Printf.sprintf " (%.0f%%)" (100. *. float_of_int cs.Target.hits /. float_of_int tot)))
    srv.torder;
  (* --- last durable recovery, if any --- *)
  (match srv.last_recovery with
  | None -> ()
  | Some r ->
      let n l = List.length (List.filter l r.rsessions) in
      Printf.bprintf b
        "recovery: %d replayed / %d salvaged / %d quarantined | %d records ok, %d skipped, %d torn bytes | %.1f ms\n"
        (n (fun s -> s.rsalvage = Replayed))
        (n (fun s -> match s.rsalvage with Salvaged _ -> true | _ -> false))
        (n (fun s -> s.rsalvage = Quarantined_stale))
        r.rreport.Durable.records_ok r.rreport.Durable.records_skipped
        r.rreport.Durable.torn_bytes r.rms);
  (* --- sessions --- *)
  let slo_rows = Obs.Slo.status () in
  Printf.bprintf b "%-4s %-10s %-6s %-2s %-6s %-6s %-5s %-12s %-6s %s\n" "SID"
    "NAME" "TGT" "W" "OPS" "FAULTS" "RTOK" "BUDGET" "HIT%" "SLO";
  List.iter
    (fun sid ->
      let sess = Hashtbl.find srv.sessions sid in
      let c k = Option.value ~default:0 (Hashtbl.find_opt sess.tab k) in
      let hits = c "cache.hits" and misses = c "cache.misses" in
      let hitp =
        if hits + misses = 0 then "-"
        else Printf.sprintf "%.0f" (100. *. float_of_int hits /. float_of_int (hits + misses))
      in
      let budget_s =
        match (sess.sbudget.max_reads, sess.sbudget.max_sim_ms) with
        | None, None -> "unlim"
        | Some l, _ -> Printf.sprintf "%d/%dr" sess.sreads l
        | None, Some m -> Printf.sprintf "%.0f/%.0fms" sess.ssim_ms m
      in
      let burn, sev = slo_worst_for (Printf.sprintf "s%d." sid) slo_rows in
      let slo_s =
        if slo_rows = [] then "-"
        else Printf.sprintf "%.2fx %s" burn (if sev = "ok" then "" else String.uppercase_ascii sev)
      in
      Printf.bprintf b "%-4d %-10s %-6s %-2d %-6d %-6d %-5d %-12s %-6s %s\n" sid
        sess.name sess.shared.tname sess.weight (c "ops") (c "faults")
        sess.rb_tokens budget_s hitp (String.trim slo_s))
    (session_ids srv);
  (* --- SLO table + slowest traces (observability on only) --- *)
  if Obs.enabled () then begin
    if slo_rows <> [] then begin
      Buffer.add_string b (Obs.Slo.report ());
      Buffer.add_char b '\n'
    end;
    (* span id -> trace id, from the surviving ring, to attribute links *)
    let span_trace = Hashtbl.create 256 in
    let ops =
      List.filter
        (fun (s : Obs.span) ->
          Hashtbl.replace span_trace s.Obs.sid s.Obs.strace;
          s.Obs.sname = "session.op")
        (Obs.span_events ())
    in
    let links_of tid =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (l : Obs.Trace.link) ->
          let owner id = Option.value ~default:0 (Hashtbl.find_opt span_trace id) in
          if owner l.Obs.Trace.lfrom = tid || owner l.Obs.Trace.lto = tid then
            Hashtbl.replace tbl l.Obs.Trace.lkind
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l.Obs.Trace.lkind)))
        (Obs.Trace.links ());
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (k, v) -> if v = 1 then k else Printf.sprintf "%s x%d" k v)
    in
    let slowest =
      List.sort (fun (a : Obs.span) bs -> compare bs.Obs.sdur_ms a.Obs.sdur_ms) ops
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    (match take top slowest with
    | [] -> ()
    | rows ->
        Printf.bprintf b "slowest traces (of %d op spans in ring):\n" (List.length ops);
        List.iter
          (fun (s : Obs.span) ->
            let attr k = Option.value ~default:"?" (List.assoc_opt k s.Obs.sattrs) in
            let links = links_of s.Obs.strace in
            Printf.bprintf b "  trace %-5d %7.2f ms  sid %-3s %-5s route %-10s%s\n"
              s.Obs.strace s.Obs.sdur_ms (attr "sid") (attr "kind") (attr "route")
              (if links = [] then "" else "  links: " ^ String.concat ", " links))
          rows)
  end;
  Buffer.contents b
