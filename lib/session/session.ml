(** Multi-session server implementation.  See session.mli for the
    contract; the mechanics in one paragraph: every session op (a) is
    admission-checked against capacity, budgets and the target's
    quarantine state, (b) swaps the session's fault config, per-plot
    deadline and a budget gate onto the shared transport, (c) runs the
    underlying {!Visualinux} command, (d) captures the op's fault,
    read, cache-stat and wire-time deltas into the session's private
    accounting, and (e) advances the target's Healthy -> Quarantine ->
    Probation state machine from the breaker/link state the op left
    behind. *)

type sid = int

(* ------------------------------------------------------------------ *)
(* Budgets *)

type budget = {
  max_reads : int option;
  max_sim_ms : float option;
  plot_deadline_ms : float option;
  retry_burst : int option;
}

let unlimited =
  { max_reads = None; max_sim_ms = None; plot_deadline_ms = None; retry_burst = None }

let budget ?max_reads ?max_sim_ms ?plot_deadline_ms ?retry_burst () =
  { max_reads; max_sim_ms; plot_deadline_ms; retry_burst }

(* ------------------------------------------------------------------ *)
(* Admission *)

type reason =
  | Capacity of { limit : int }
  | Unknown_session of sid
  | Unknown_target of string
  | Reads_exhausted of { used : int; limit : int }
  | Budget_exhausted of { used_ms : float; limit_ms : float }
  | Quarantined of { target : string; prober : sid }
  | Shed of { target : string; deficit : int }

let reason_to_string = function
  | Capacity { limit } -> Printf.sprintf "capacity: server full (%d sessions)" limit
  | Unknown_session sid -> Printf.sprintf "unknown session %d" sid
  | Unknown_target t -> Printf.sprintf "unknown target %S" t
  | Reads_exhausted { used; limit } ->
      Printf.sprintf "read budget exhausted (%d/%d this epoch)" used limit
  | Budget_exhausted { used_ms; limit_ms } ->
      Printf.sprintf "wire budget exhausted (%.1f/%.1f ms this epoch)" used_ms limit_ms
  | Quarantined { target; prober } ->
      Printf.sprintf "target %S quarantined; session %d is probing" target prober
  | Shed { target; deficit } ->
      Printf.sprintf "target %S degraded; load shed (%d credit short)" target deficit

type 'a outcome = Admitted of 'a | Rejected of { reason : reason }

(* ------------------------------------------------------------------ *)
(* Server state *)

(* Quarantine/probation/degradation bookkeeping for one shared target. *)
type qstate = { mutable prober : sid; mutable probes : int }
type pstate = { mutable waiting : sid list; mutable skips : int }

(* Degraded: the wire's fault EWMA crossed the degrade threshold but the
   target is still serving.  Without a replica, load is shed by weighted
   credits (see [degradation_route]); [credits] holds each session's
   accumulated deficit counter. *)
type dstate = { credits : (sid, int) Hashtbl.t }

type tstate = Healthy | Degraded of dstate | Quarantine of qstate | Probation of pstate

type shared = {
  tname : string;
  target : Target.t;
  mutable state : tstate;
  mutable rr : int;  (* round-robin cursor for prober election *)
  mutable hsince : int;  (* admitted ops since the last state transition *)
  mutable qspan : int;  (* op span that parked the target in quarantine *)
}

type sess = {
  sid : sid;
  name : string;
  vis : Visualinux.session;
  shared : shared;
  mutable sfaults : Transport.faults;  (* swapped onto the link per op *)
  mutable sbudget : budget;
  mutable weight : int;  (* fair-admission priority weight, >= 1 *)
  mutable rb_tokens : int;  (* retry-budget tokens left (when capped) *)
  mutable sreads : int;  (* reads charged this epoch *)
  mutable ssim_ms : float;  (* wire ms charged this epoch *)
  mutable flog_rev : Target.fault list;  (* per-session fault journal, newest first *)
  tab : (string, int) Hashtbl.t;  (* private counter namespace *)
}

type server = {
  kernel : Kstate.t;
  cap : int;
  mutable next_sid : sid;
  sessions : (sid, sess) Hashtbl.t;
  targets : (string, shared) Hashtbl.t;
  mutable torder : string list;  (* registration order, oldest first *)
}

let capacity srv = srv.cap

(* After this many fruitless probe ops the quarantined target elects
   the next session round-robin — a sick prober must not hold the
   recovery slot forever. *)
let probe_rounds = 3

let default_target = "t0"

let create ?(capacity = 8) kernel =
  let srv =
    { kernel; cap = capacity; next_sid = 1; sessions = Hashtbl.create 8;
      targets = Hashtbl.create 4; torder = [] }
  in
  Hashtbl.replace srv.targets default_target
    { tname = default_target; target = Khelpers.attach kernel; state = Healthy; rr = 0;
      hsince = 0; qspan = 0 };
  srv.torder <- [ default_target ];
  srv

let add_target srv ?transport name =
  if Hashtbl.mem srv.targets name then
    invalid_arg (Printf.sprintf "Session.add_target: duplicate target %S" name);
  let target = Khelpers.attach srv.kernel in
  Option.iter (Target.set_transport target) transport;
  Hashtbl.replace srv.targets name
    { tname = name; target; state = Healthy; rr = 0; hsince = 0; qspan = 0 };
  srv.torder <- srv.torder @ [ name ]

let target_names srv = srv.torder

type health = [ `Healthy | `Degraded | `Quarantine of sid | `Probation of sid list ]

let shared_of srv name =
  match Hashtbl.find_opt srv.targets name with
  | Some sh -> sh
  | None -> invalid_arg (Printf.sprintf "Session: unknown target %S" name)

let target_health srv name : health =
  match (shared_of srv name).state with
  | Healthy -> `Healthy
  | Degraded _ -> `Degraded
  | Quarantine q -> `Quarantine q.prober
  | Probation p -> `Probation p.waiting

(* ------------------------------------------------------------------ *)
(* Per-session counters *)

let ns sess key = Printf.sprintf "session.%d.%s" sess.sid key

let bump ?(by = 1) sess key =
  if by <> 0 then begin
    Hashtbl.replace sess.tab key (by + Option.value ~default:0 (Hashtbl.find_opt sess.tab key));
    if Obs.enabled () then Obs.Metrics.incr ~by (ns sess key)
  end

let counters srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> []
  | Some sess ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) sess.tab []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter srv sid key =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> 0
  | Some sess -> Option.value ~default:0 (Hashtbl.find_opt sess.tab key)

let fault_journal srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> []
  | Some sess -> List.rev sess.flog_rev

let wire_ms srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0. | Some s -> s.ssim_ms

let reads_used srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0 | Some s -> s.sreads

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let live_sids_on srv sh =
  Hashtbl.fold (fun sid s acc -> if s.shared == sh then sid :: acc else acc) srv.sessions []
  |> List.sort compare

let sessions_gauge srv =
  if Obs.enabled () then
    Obs.Metrics.set_gauge "server.sessions" (float_of_int (Hashtbl.length srv.sessions))

let mk_session srv ~sid ~budget ~faults ~weight ~tname name =
  let sh = shared_of srv tname in
  let vis = Visualinux.attach ~target:sh.target srv.kernel in
  let sess =
    { sid; name; vis; shared = sh; sfaults = faults; sbudget = budget;
      weight = max 1 weight; rb_tokens = Option.value ~default:0 budget.retry_burst;
      sreads = 0; ssim_ms = 0.; flog_rev = []; tab = Hashtbl.create 16 }
  in
  Hashtbl.replace srv.sessions sid sess;
  if sid >= srv.next_sid then srv.next_sid <- sid + 1;
  sessions_gauge srv;
  sess

let open_session ?(budget = unlimited) ?(faults = Transport.no_faults) ?(weight = 1)
    ?(target = default_target) srv name =
  if not (Hashtbl.mem srv.targets target) then Rejected { reason = Unknown_target target }
  else if Hashtbl.length srv.sessions >= srv.cap then
    Rejected { reason = Capacity { limit = srv.cap } }
  else begin
    let sess = mk_session srv ~sid:srv.next_sid ~budget ~faults ~weight ~tname:target name in
    if Obs.enabled () then
      Obs.instant ~cat:"session"
        ~attrs:[ ("sid", string_of_int sess.sid); ("name", name); ("target", target) ]
        "session.open";
    Admitted sess.sid
  end

let close_session srv sid =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> ()
  | Some sess ->
      Hashtbl.remove srv.sessions sid;
      sessions_gauge srv;
      let sh = sess.shared in
      (* drop the departed session from recovery bookkeeping *)
      (match sh.state with
      | Healthy -> ()
      | Degraded d -> Hashtbl.remove d.credits sid
      | Quarantine q when q.prober = sid -> (
          match live_sids_on srv sh with
          | [] -> sh.state <- Healthy
          | s :: _ ->
              q.prober <- s;
              q.probes <- 0)
      | Quarantine _ -> ()
      | Probation p -> (
          p.waiting <- List.filter (fun s -> s <> sid) p.waiting;
          match p.waiting with [] -> sh.state <- Healthy | _ -> ()))

let session_ids srv =
  Hashtbl.fold (fun sid _ acc -> sid :: acc) srv.sessions [] |> List.sort compare

let session_name srv sid =
  Option.map (fun s -> s.name) (Hashtbl.find_opt srv.sessions sid)

let vis srv sid = Option.map (fun s -> s.vis) (Hashtbl.find_opt srv.sessions sid)

let set_budget srv sid b =
  Option.iter
    (fun s ->
      s.sbudget <- b;
      s.rb_tokens <- Option.value ~default:0 b.retry_burst)
    (Hashtbl.find_opt srv.sessions sid)

let budget_of srv sid =
  Option.map (fun s -> s.sbudget) (Hashtbl.find_opt srv.sessions sid)

let set_faults srv sid f =
  Option.iter (fun s -> s.sfaults <- f) (Hashtbl.find_opt srv.sessions sid)

let set_weight srv sid w =
  Option.iter (fun s -> s.weight <- max 1 w) (Hashtbl.find_opt srv.sessions sid)

let weight_of srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 1 | Some s -> s.weight

let retry_tokens srv sid =
  match Hashtbl.find_opt srv.sessions sid with None -> 0 | Some s -> s.rb_tokens

let begin_epoch srv sid =
  Option.iter
    (fun s ->
      s.sreads <- 0;
      s.ssim_ms <- 0.;
      s.rb_tokens <- Option.value ~default:0 s.sbudget.retry_burst;
      List.iter (Hashtbl.remove s.tab) [ "cache.hits"; "cache.misses"; "cache.coalesced" ];
      bump s "epochs")
    (Hashtbl.find_opt srv.sessions sid)

(* ------------------------------------------------------------------ *)
(* Degradation state machine *)

let elect srv sh =
  match live_sids_on srv sh with
  | [] -> None
  | sids ->
      let n = List.length sids in
      let pick = List.nth sids (sh.rr mod n) in
      sh.rr <- sh.rr + 1;
      Some pick

let obs_state sh label =
  if Obs.enabled () then begin
    Obs.instant ~cat:"session" ~attrs:[ ("target", sh.tname) ] label;
    Obs.Metrics.incr (Printf.sprintf "server.%s" label)
  end

(* Enter quarantine: elect a prober round-robin; every other session on
   the target falls back to serving [STALE] panes from its caches. *)
let enter_quarantine srv sh =
  match elect srv sh with
  | None -> sh.state <- Healthy
  | Some prober ->
      sh.state <- Quarantine { prober; probes = 0 };
      sh.hsince <- 0;
      (* remember which op parked the target, so the probation
         re-admission that eventually follows can link back to it *)
      sh.qspan <- Obs.Trace.current_span ();
      obs_state sh "quarantine.enter";
      Hashtbl.iter
        (fun sid s ->
          if s.shared == sh && sid <> prober then begin
            Panel.mark_all_stale s.vis.Visualinux.panel;
            bump s "stale.epochs"
          end)
        srv.sessions

let enter_degraded sh =
  sh.state <- Degraded { credits = Hashtbl.create 8 };
  sh.hsince <- 0;
  obs_state sh "degrade.enter"

let link_bad tr = Transport.link tr = Transport.Down || Transport.breaker tr = Transport.Open

let link_recovered tr =
  Transport.link tr = Transport.Up && Transport.breaker tr = Transport.Closed

let th = Transport.Health.default_thresholds

(* Advance the target's state from what [sess]'s (admitted) op left on
   the shared link: the hard breaker/link signals still force
   quarantine, but the graduated path is driven by the wire's fault
   EWMA through {!Transport.Health.step} — Healthy -> Degraded when the
   EWMA crosses [degrade_hi], Degraded -> Quarantine at [sick_hi] with
   the breaker still Closed (the proactive shed the gray-failure regime
   needs), and quarantine is only left once the EWMA has decayed back
   under [sick_lo], so one lucky probe cannot re-admit the herd. *)
let update_health srv sh sess =
  match Target.transport sh.target with
  | None -> ()
  | Some tr -> (
      sh.hsince <- sh.hsince + 1;
      let fr = (Transport.ewma tr).Transport.ew_fault_rate in
      match sh.state with
      | Healthy ->
          if link_bad tr then enter_quarantine srv sh
          else if
            Transport.Health.step th Transport.Health.Fine ~fr ~since:sh.hsince
            <> Transport.Health.Fine
          then enter_degraded sh
      | Degraded _ ->
          if link_bad tr then enter_quarantine srv sh
          else (
            match Transport.Health.step th Transport.Health.Degraded ~fr ~since:sh.hsince with
            | Transport.Health.Fine ->
                sh.state <- Healthy;
                sh.hsince <- 0;
                obs_state sh "degrade.exit"
            | Transport.Health.Sick -> enter_quarantine srv sh
            | Transport.Health.Degraded -> ())
      | Quarantine q ->
          if link_recovered tr && fr <= th.Transport.Health.sick_lo then begin
            (* recovered: re-admit the waiting sessions one op at a
               time, in sid order — fair, staggered, no herd *)
            let others = List.filter (fun s -> s <> q.prober) (live_sids_on srv sh) in
            (match others with
            | [] -> sh.state <- Healthy
            | waiting -> sh.state <- Probation { waiting; skips = 0 });
            sh.hsince <- 0;
            obs_state sh "quarantine.exit"
          end
          else if sess.sid = q.prober then begin
            q.probes <- q.probes + 1;
            bump sess "probes";
            if q.probes >= probe_rounds then begin
              (* the prober is not making progress (it may be the sick
                 session itself): pass the probe slot on *)
              (match elect srv sh with Some p -> q.prober <- p | None -> ());
              q.probes <- 0
            end
          end
      | Probation p ->
          if link_bad tr then enter_quarantine srv sh
          else (
            (* every admitted op on the target re-admits one waiter *)
            match p.waiting with
            | [] | [ _ ] ->
                sh.state <- Healthy;
                sh.hsince <- 0
            | _ :: rest -> p.waiting <- rest))

(* A healthy stand-in for a sick target: another registered target with
   a live wire (transportless locals are never hedge candidates).  All
   targets attach the same kernel image, so a hedged read returns the
   exact bytes the home target would have — the campaign bench asserts
   the rendered panes byte-identical. *)
let healthy_replica srv sh =
  List.find_map
    (fun name ->
      let cand = Hashtbl.find srv.targets name in
      if
        cand != sh && cand.state = Healthy
        &&
        match Target.transport cand.target with
        | Some tr -> link_recovered tr
        | None -> false
      then Some cand
      else None)
    srv.torder

(* The probe read, charged to the acting session: bring a dead link /
   open breaker back to Half_open first (a refused fetch charges
   nothing, so cooldown alone never elapses), then fire one 8-byte
   canary under the session's own fault config.  The canary's reads and
   wire ms land on the session's epoch budget — a Half_open breaker's
   probe is real traffic, not free — and its outcome feeds the wire's
   health EWMA, which is what eventually satisfies the quarantine-exit
   decay gate. *)
let fire_canary sess sh =
  match Target.transport sh.target with
  | None -> ()
  | Some tr ->
      if link_bad tr then Transport.reconnect tr;
      let saved = Transport.faults_of tr in
      let s0 = Transport.snapshot tr in
      Transport.set_faults tr sess.sfaults;
      Transport.set_deadline tr None;
      Transport.begin_plot tr;
      ignore (Transport.fetch tr ~bytes:8 (fun () -> ()));
      Transport.set_faults tr saved;
      let s1 = Transport.snapshot tr in
      let dr = s1.Transport.reads_ok - s0.Transport.reads_ok in
      sess.sreads <- sess.sreads + dr;
      sess.ssim_ms <- sess.ssim_ms +. (s1.Transport.sim_ms -. s0.Transport.sim_ms);
      bump ~by:dr sess "reads";
      bump sess "canaries"

(* Weighted fair shedding on a degraded target with no replica: each
   knock earns the session [weight] credits and an op is admitted when
   the balance covers the stride (twice the mean weight across the
   target's sessions), so a weight-w session is refused at most
   [ceil(stride/w)] times in a row — the starvation bound the tests
   pin — while admission frequency stays proportional to weight. *)
let shed_stride srv sh =
  let sids = live_sids_on srv sh in
  let total =
    List.fold_left
      (fun acc sid ->
        acc + match Hashtbl.find_opt srv.sessions sid with None -> 1 | Some s -> s.weight)
      0 sids
  in
  max 1 (2 * total / max 1 (List.length sids))

(* Where an admitted op's wire traffic goes. *)
type route = Home | Hedged of shared

(* What [degradation_route] decided, for [admit] to act on: the route,
   whether a canary must be fired through the sick home wire before the
   op runs, and — for a probation re-admission — the span id of the op
   that parked the target in quarantine (0 otherwise), so the op span
   can link back to its cause. *)
type decision = { droute : route; dcanary : bool; dqspan : int }

let go ?(canary = false) ?(qspan = 0) droute = Ok { droute; dcanary = canary; dqspan = qspan }

(* Admission + routing against the target's degradation state.  Healthy
   serves at home; Degraded hedges to a healthy replica when one exists
   (asking [admit] to fire a canary through the sick wire so its EWMA
   keeps learning) and weight-fair-sheds when none does; Quarantine
   serves everyone from the replica if there is one, else only the
   elected prober passes; Probation re-admits one waiter per op as
   before. *)
let degradation_route srv sh sess : (decision, reason) result =
  match sh.state with
  | Healthy -> go Home
  | Degraded d -> (
      match healthy_replica srv sh with
      | Some rep -> go ~canary:true (Hedged rep)
      | None ->
          let bal =
            sess.weight + Option.value ~default:0 (Hashtbl.find_opt d.credits sess.sid)
          in
          let stride = shed_stride srv sh in
          if bal >= stride then begin
            Hashtbl.replace d.credits sess.sid (bal - stride);
            go Home
          end
          else begin
            Hashtbl.replace d.credits sess.sid bal;
            Error (Shed { target = sh.tname; deficit = stride - bal })
          end)
  | Quarantine q ->
      if sess.sid = q.prober then
        (* the prober's op rides the replica when one exists — the
           canary is the probe; no need to risk the whole op on the
           sick wire *)
        match healthy_replica srv sh with
        | Some rep -> go ~canary:true (Hedged rep)
        | None -> go ~canary:true Home
      else (
        match healthy_replica srv sh with
        | Some rep -> go (Hedged rep)
        | None -> Error (Quarantined { target = sh.tname; prober = q.prober }))
  | Probation p -> (
      match p.waiting with
      | [] ->
          sh.state <- Healthy;
          go Home
      | head :: rest ->
          if sess.sid = head then go ~qspan:sh.qspan Home
          else if not (List.mem sess.sid p.waiting) then go Home
          else (
            match healthy_replica srv sh with
            | Some rep -> go (Hedged rep)
            | None ->
                (* a non-head waiter knocked: count it, and once every
                   waiter has been turned away rotate the head so a
                   silent head cannot starve the queue *)
                p.skips <- p.skips + 1;
                if p.skips > List.length p.waiting then begin
                  p.waiting <- rest @ [ head ];
                  p.skips <- 0
                end;
                Error (Quarantined { target = sh.tname; prober = List.hd p.waiting })))

let budget_block sess =
  match sess.sbudget.max_reads with
  | Some limit when sess.sreads >= limit ->
      Some (Reads_exhausted { used = sess.sreads; limit })
  | _ -> (
      match sess.sbudget.max_sim_ms with
      | Some limit_ms when sess.ssim_ms >= limit_ms ->
          Some (Budget_exhausted { used_ms = sess.ssim_ms; limit_ms })
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The isolated op wrapper *)

let health_gauges sh =
  if Obs.enabled () then begin
    (match Target.transport sh.target with
    | Some tr ->
        let e = Transport.ewma tr in
        Obs.Metrics.set_gauge
          (Printf.sprintf "health.%s.ewma_fault_rate" sh.tname)
          e.Transport.ew_fault_rate;
        Obs.Metrics.set_gauge
          (Printf.sprintf "health.%s.ewma_latency_ms" sh.tname)
          e.Transport.ew_latency_ms
    | None -> ());
    Obs.Metrics.set_gauge
      (Printf.sprintf "health.%s.state" sh.tname)
      (match sh.state with
      | Healthy -> 0.
      | Degraded _ -> 1.
      | Quarantine _ -> 2.
      | Probation _ -> 3.)
  end

let quarantined_gauge srv =
  if Obs.enabled () then begin
    let n =
      Hashtbl.fold
        (fun _ sh acc -> match sh.state with Quarantine _ -> acc + 1 | _ -> acc)
        srv.targets 0
    in
    Obs.Metrics.set_gauge "session.quarantined_targets" (float_of_int n)
  end

(* Swap the session's fault config, deadline, budget gate and retry
   budget onto the op's transport (the home link, or — when [route] says
   [Hedged] — the healthy replica's), run [f], then capture this op's
   deltas (faults, reads, wire ms, cache stats) into the session's
   private accounting — restoring the link's config, and the home
   transport on a hedged op, on every path {e before} the health update
   reads the home wire's state. *)
let run_isolated srv ~route sess f =
  let sh = sess.shared in
  let tgt = sh.target in
  let home_tr = Target.transport tgt in
  (match route with
  | Hedged rep -> Option.iter (Target.set_transport tgt) (Target.transport rep.target)
  | Home -> ());
  let tr_opt = Target.transport tgt in
  let saved_faults = Option.map Transport.faults_of tr_opt in
  (* token-bucket refill: one retry token earned per op, up to the cap *)
  (match sess.sbudget.retry_burst with
  | Some cap -> if sess.rb_tokens < cap then sess.rb_tokens <- sess.rb_tokens + 1
  | None -> ());
  let snap0 =
    match tr_opt with Some tr -> Some (Transport.snapshot tr) | None -> None
  in
  let cs0 = Target.cache_stats tgt in
  (* the global fault journal is drained per op (see below), so the op's
     faults are exactly [Target.faults tgt] afterwards *)
  Target.clear_faults tgt;
  Option.iter
    (fun tr ->
      Transport.set_faults tr sess.sfaults;
      Transport.set_deadline tr sess.sbudget.plot_deadline_ms;
      Transport.set_retry_gate tr
        (match sess.sbudget.retry_burst with
        | None -> None
        | Some _ ->
            Some
              (fun () ->
                if sess.rb_tokens > 0 then begin
                  sess.rb_tokens <- sess.rb_tokens - 1;
                  true
                end
                else begin
                  bump sess "retry.denied";
                  false
                end));
      let op_reads = ref 0 in
      let sim0 = (Transport.snapshot tr).Transport.sim_ms in
      Transport.set_gate tr
        (Some
           (fun ~bytes:_ ->
             match sess.sbudget.max_reads with
             | Some lim when sess.sreads + !op_reads >= lim ->
                 Some Transport.Deadline_exceeded
             | _ -> (
                 match sess.sbudget.max_sim_ms with
                 | Some lim
                   when sess.ssim_ms +. ((Transport.snapshot tr).Transport.sim_ms -. sim0)
                        >= lim ->
                     Some Transport.Deadline_exceeded
                 | _ ->
                     incr op_reads;
                     None))))
    tr_opt;
  let t0 = Obs.Clock.now_ms () in
  let finish () =
    (* accounting first, then restore the link for the next session *)
    let wall = Obs.Clock.elapsed_ms t0 in
    let faults = Target.faults tgt in
    Target.clear_faults tgt;
    sess.flog_rev <- List.rev_append faults sess.flog_rev;
    bump ~by:(List.length faults) sess "faults";
    let cs1 = Target.cache_stats tgt in
    bump ~by:(cs1.Target.hits - cs0.Target.hits) sess "cache.hits";
    bump ~by:(cs1.Target.misses - cs0.Target.misses) sess "cache.misses";
    bump ~by:(cs1.Target.coalesced - cs0.Target.coalesced) sess "cache.coalesced";
    bump sess "ops";
    let sim_delta =
      match (tr_opt, snap0) with
      | Some tr, Some s0 ->
          let s1 = Transport.snapshot tr in
          bump ~by:(s1.Transport.reads_ok - s0.Transport.reads_ok) sess "reads";
          bump ~by:(s1.Transport.deadline_hits - s0.Transport.deadline_hits) sess
            "budget.refusals";
          sess.sreads <- sess.sreads + (s1.Transport.reads_ok - s0.Transport.reads_ok);
          let d = s1.Transport.sim_ms -. s0.Transport.sim_ms in
          sess.ssim_ms <- sess.ssim_ms +. d;
          d
      | _ -> 0.
    in
    if Obs.enabled () then Obs.Metrics.observe (ns sess "op_ms") (wall +. sim_delta);
    Option.iter
      (fun tr ->
        Transport.set_gate tr None;
        Transport.set_retry_gate tr None;
        Option.iter (Transport.set_faults tr) saved_faults)
      tr_opt;
    (match route with
    | Hedged _ ->
        bump sess "hedged.ops";
        Option.iter (Target.set_transport tgt) home_tr
    | Home -> ());
    update_health srv sh sess;
    health_gauges sh;
    quarantined_gauge srv
  in
  (* a hedged op's wire work runs under its own span, linked from the
     ambient op span so Perfetto draws the op -> replica-wire arrow *)
  let f =
    match route with
    | Hedged rep when Obs.enabled () ->
        let op = Obs.Trace.current_span () in
        fun () ->
          Obs.with_span ~cat:"session"
            ~attrs:[ ("replica", rep.tname); ("target", sh.tname) ]
            "session.hedge"
            (fun () ->
              Obs.Trace.link ~kind:"hedge" ~from_span:op
                ~to_span:(Obs.Trace.current_span ());
              f ())
    | _ -> f
  in
  match f () with
  | x ->
      finish ();
      x
  | exception e ->
      finish ();
      raise e

let reason_label = function
  | Capacity _ -> "capacity"
  | Unknown_session _ -> "unknown_session"
  | Unknown_target _ -> "unknown_target"
  | Reads_exhausted _ -> "reads_exhausted"
  | Budget_exhausted _ -> "budget_exhausted"
  | Quarantined _ -> "quarantined"
  | Shed _ -> "shed"

(* Full admission pipeline for one v-command.  Every attempt mints a
   trace id up front; an admitted op runs inside a root [session.op]
   span carrying it (the ambient trace then flows into every transport/
   target/viewcl span the op opens), and a refusal emits a typed
   [session.refused] instant carrying the would-be trace id so shed
   traffic is still attributable. *)
let admit srv sid kind f =
  let tid = Obs.Trace.mint () in
  let refused sess_opt reason =
    Option.iter (fun sess -> bump sess "rejections") sess_opt;
    if Obs.enabled () then
      Obs.instant ~cat:"session"
        ~attrs:
          [ ("sid", string_of_int sid); ("kind", kind);
            ("trace", string_of_int tid); ("reason", reason_label reason) ]
        "session.refused";
    Rejected { reason }
  in
  match Hashtbl.find_opt srv.sessions sid with
  | None -> refused None (Unknown_session sid)
  | Some sess -> (
      match budget_block sess with
      | Some reason -> refused (Some sess) reason
      | None -> (
          match degradation_route srv sess.shared sess with
          | Error reason -> refused (Some sess) reason
          | Ok { droute = route; dcanary; dqspan } ->
              let r =
                Obs.Trace.with_trace tid (fun () ->
                    Obs.with_span ~cat:"session"
                      ~attrs:
                        [ ("sid", string_of_int sid); ("kind", kind);
                          ("target", sess.shared.tname);
                          ("route",
                           match route with
                           | Home -> "home"
                           | Hedged rep -> "hedged:" ^ rep.tname) ]
                      "session.op"
                      (fun () ->
                        let op = Obs.Trace.current_span () in
                        if dqspan <> 0 then
                          Obs.Trace.link ~kind:"probation" ~from_span:dqspan
                            ~to_span:op;
                        if dcanary then
                          Obs.with_span ~cat:"session"
                            ~attrs:[ ("target", sess.shared.tname) ]
                            "session.canary"
                            (fun () ->
                              Obs.Trace.link ~kind:"canary" ~from_span:op
                                ~to_span:(Obs.Trace.current_span ());
                              fire_canary sess sess.shared);
                        run_isolated srv ~route sess (fun () -> f sess)))
              in
              bump sess kind;
              Admitted r))

(* ------------------------------------------------------------------ *)
(* v-commands *)

let vplot srv sid ?title src =
  admit srv sid "plots" (fun sess -> Visualinux.vplot sess.vis ?title src)

let vrefresh srv sid ~pane =
  admit srv sid "refreshes" (fun sess -> Visualinux.vrefresh sess.vis ~pane)

let vctrl srv sid cmd = admit srv sid "ctrls" (fun sess -> Visualinux.vctrl sess.vis cmd)

let render srv sid pane =
  match Hashtbl.find_opt srv.sessions sid with
  | None -> None
  | Some sess ->
      let r = Visualinux.render_pane sess.vis pane in
      if r <> None then begin
        bump sess "renders";
        match Panel.pane_opt sess.vis.Visualinux.panel pane with
        | Some p when p.Panel.stale -> bump sess "stale.renders"
        | _ -> ()
      end;
      r

let recover_session srv sid =
  admit srv sid "recovers" (fun sess -> Visualinux.recover sess.vis)

let refresh_stale srv sid =
  admit srv sid "refreshes" (fun sess -> Visualinux.refresh_stale sess.vis)

(* ------------------------------------------------------------------ *)
(* Fleet snapshot / recovery *)

let faults_json (f : Transport.faults) =
  Printf.sprintf "{\"stall\":%g,\"drop\":%g,\"disconnect\":%g}" f.Transport.stall_rate
    f.Transport.drop_rate f.Transport.disconnect_rate

let budget_json b =
  let opt_i = function None -> "null" | Some n -> string_of_int n in
  let opt_f = function None -> "null" | Some x -> Printf.sprintf "%g" x in
  Printf.sprintf "{\"max_reads\":%s,\"max_sim_ms\":%s,\"plot_deadline_ms\":%s,\"retry_burst\":%s}"
    (opt_i b.max_reads) (opt_f b.max_sim_ms) (opt_f b.plot_deadline_ms)
    (opt_i b.retry_burst)

let save_fleet srv =
  let one sid =
    let sess = Hashtbl.find srv.sessions sid in
    Printf.sprintf
      "{\"sid\":%d,\"name\":\"%s\",\"target\":\"%s\",\"weight\":%d,\"budget\":%s,\"faults\":%s,\"jn\":%s}"
      sid (Vgraph.json_escape sess.name)
      (Vgraph.json_escape sess.shared.tname)
      sess.weight (budget_json sess.sbudget) (faults_json sess.sfaults)
      (Panel.journal_to_json sess.vis.Visualinux.panel)
  in
  Printf.sprintf "{\"fleet\":[%s]}"
    (String.concat "," (List.map one (session_ids srv)))

let budget_of_json j =
  let f k = match Json.member k j with Some (Json.Float x) -> Some x
    | Some (Json.Int n) -> Some (float_of_int n) | _ -> None in
  let i k = match Json.member k j with Some (Json.Int n) -> Some n | _ -> None in
  { max_reads = i "max_reads"; max_sim_ms = f "max_sim_ms";
    plot_deadline_ms = f "plot_deadline_ms"; retry_burst = i "retry_burst" }

let faults_of_json j =
  let f k d =
    match Json.member k j with
    | Some (Json.Float x) -> x
    | Some (Json.Int n) -> float_of_int n
    | _ -> d
  in
  { Transport.stall_rate = f "stall" 0.; drop_rate = f "drop" 0.;
    disconnect_rate = f "disconnect" 0. }

let recover_fleet srv json =
  let j = Json.parse json in
  let entries =
    match Json.member "fleet" j with Some (Json.List l) -> l | _ -> []
  in
  List.map
    (fun e ->
      let str k = Option.map Json.to_str (Json.member k e) in
      let name = Option.value ~default:"?" (str "name") in
      let tname = Option.value ~default:default_target (str "target") in
      let budget =
        match Json.member "budget" e with Some b -> budget_of_json b | None -> unlimited
      in
      let faults =
        match Json.member "faults" e with
        | Some f -> faults_of_json f
        | None -> Transport.no_faults
      in
      let weight =
        match Json.member "weight" e with Some (Json.Int w) -> w | _ -> 1
      in
      let ops =
        match Json.member "jn" e with
        | Some jn -> Panel.journal_of_json (Json.to_string jn)
        | None -> []
      in
      match open_session ~budget ~faults ~weight ~target:tname srv name with
      | Rejected r -> Rejected r
      | Admitted sid -> (
          match
            admit srv sid "recovers" (fun sess -> Visualinux.recover ~ops sess.vis)
          with
          | Rejected r -> Rejected r
          | Admitted stale -> Admitted (sid, stale)))
    entries

(* ------------------------------------------------------------------ *)
(* Status *)

let status srv =
  let b = Buffer.create 256 in
  Printf.bprintf b "server: %d/%d sessions, %d target%s\n"
    (Hashtbl.length srv.sessions) srv.cap
    (List.length srv.torder)
    (if List.length srv.torder = 1 then "" else "s");
  List.iter
    (fun tname ->
      let sh = shared_of srv tname in
      let link =
        match Target.transport sh.target with
        | None -> "local"
        | Some tr ->
            Printf.sprintf "%s %s, breaker %s"
              (Transport.profile_of tr).Transport.pname
              (match Transport.link tr with Transport.Up -> "up" | Transport.Down -> "down")
              (match Transport.breaker tr with
              | Transport.Closed -> "closed"
              | Transport.Open -> "open"
              | Transport.Half_open -> "half-open")
      in
      let state =
        match sh.state with
        | Healthy -> "healthy"
        | Degraded _ -> "DEGRADED (shedding/hedging)"
        | Quarantine q -> Printf.sprintf "QUARANTINE (session %d probing)" q.prober
        | Probation p ->
            Printf.sprintf "probation (waiting: %s)"
              (String.concat "," (List.map string_of_int p.waiting))
      in
      let ewma_s =
        match Target.transport sh.target with
        | None -> ""
        | Some tr ->
            let e = Transport.ewma tr in
            Printf.sprintf " | ewma fault %.3f, lat %.2f ms" e.Transport.ew_fault_rate
              e.Transport.ew_latency_ms
      in
      let cs = Target.cache_stats sh.target in
      Printf.bprintf b "target %-8s [%s] %s | cache %d hit / %d miss%s\n" tname link state
        cs.Target.hits cs.Target.misses ewma_s)
    srv.torder;
  List.iter
    (fun sid ->
      let sess = Hashtbl.find srv.sessions sid in
      let budget_s =
        match (sess.sbudget.max_reads, sess.sbudget.max_sim_ms) with
        | None, None -> "unlimited"
        | r, m ->
            String.concat ", "
              (List.filter_map Fun.id
                 [ Option.map (fun l -> Printf.sprintf "%d/%d reads" sess.sreads l) r;
                   Option.map (fun l -> Printf.sprintf "%.1f/%.1f ms" sess.ssim_ms l) m ])
      in
      Printf.bprintf b
        "session %d %-10s on %s w%d | %d plots, %d faults, %d rejections | budget %s\n" sid
        (Printf.sprintf "%S" sess.name)
        sess.shared.tname sess.weight
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "plots"))
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "faults"))
        (Option.value ~default:0 (Hashtbl.find_opt sess.tab "rejections"))
        budget_s)
    (session_ids srv);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* SLOs + the vtop dashboard *)

(* The fleet's declarative objectives, one set per live session plus
   one per target, all evaluated from counters/gauges the admission
   path already maintains — registration is idempotent, so calling
   this again after opening more sessions only adds the new ones. *)
let register_slos srv =
  List.iter
    (fun sid ->
      let n fmt = Printf.sprintf fmt sid in
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.availability";
          okind = Obs.Slo.Good_bad { good = n "session.%d.ops"; bad = n "session.%d.rejections" };
          otarget = 0.95 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.clean_reads";
          okind = Obs.Slo.Bad_total { bad = n "session.%d.faults"; total = n "session.%d.reads" };
          otarget = 0.99 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.op_p95";
          okind = Obs.Slo.Histogram_le { histo = n "session.%d.op_ms"; threshold_ms = 100. };
          otarget = 0.95 };
      Obs.Slo.register
        { Obs.Slo.oname = n "s%d.staleness";
          okind =
            Obs.Slo.Bad_total
              { bad = n "session.%d.stale.renders"; total = n "session.%d.renders" };
          otarget = 0.90 })
    (session_ids srv);
  List.iter
    (fun tname ->
      Obs.Slo.register
        { Obs.Slo.oname = Printf.sprintf "t.%s.healthy" tname;
          okind =
            Obs.Slo.Gauge_le
              { gauge = Printf.sprintf "health.%s.state" tname; threshold = 0.5 };
          otarget = 0.90 })
    srv.torder

(* The worst SLO row for one session: (max burn, worst severity). *)
let slo_worst_for prefix =
  List.fold_left
    (fun (burn, sev) (r : Obs.Slo.status) ->
      if String.length r.Obs.Slo.slo >= String.length prefix
         && String.sub r.Obs.Slo.slo 0 (String.length prefix) = prefix
      then
        ( Float.max burn r.Obs.Slo.burn_rate,
          if r.Obs.Slo.severity = "page" || sev = "page" then "page"
          else if r.Obs.Slo.severity = "warn" || sev = "warn" then "warn"
          else sev )
      else (burn, sev))
    (0., "ok")

(* Live ASCII fleet dashboard: one render of everything the fleet
   knows about itself — target health, per-session vitals, SLO burn,
   and the slowest recent traces with their causal links. *)
let vtop ?(top = 5) srv =
  Obs.Slo.tick ();
  let b = Buffer.create 2048 in
  let nsess = Hashtbl.length srv.sessions in
  Printf.bprintf b "vtop — %d/%d session%s, %d target%s" nsess srv.cap
    (if nsess = 1 then "" else "s")
    (List.length srv.torder)
    (if List.length srv.torder = 1 then "" else "s");
  if Obs.enabled () then
    Printf.bprintf b " | obs ring %d/%d (%d dropped)" (Obs.event_count ())
      (Obs.ring_capacity ()) (Obs.dropped ())
  else Buffer.add_string b " | observability OFF (vctrl obs on)";
  Buffer.add_char b '\n';
  (* --- targets --- *)
  Printf.bprintf b "%-8s %-10s %-7s %-7s %-9s %s\n" "TARGET" "STATE" "FAULT"
    "LAT_MS" "WIRE" "CACHE";
  List.iter
    (fun tname ->
      let sh = shared_of srv tname in
      let state =
        match sh.state with
        | Healthy -> "healthy"
        | Degraded _ -> "DEGRADED"
        | Quarantine q -> Printf.sprintf "QUAR(p%d)" q.prober
        | Probation p -> Printf.sprintf "prob(%d)" (List.length p.waiting)
      in
      let fault, lat, wire =
        match Target.transport sh.target with
        | None -> ("-", "-", "local")
        | Some tr ->
            let e = Transport.ewma tr in
            ( Printf.sprintf "%.3f" e.Transport.ew_fault_rate,
              Printf.sprintf "%.2f" e.Transport.ew_latency_ms,
              Printf.sprintf "%s/%s"
                (match Transport.link tr with Transport.Up -> "up" | Transport.Down -> "down")
                (match Transport.breaker tr with
                | Transport.Closed -> "cl"
                | Transport.Open -> "OPEN"
                | Transport.Half_open -> "half") )
      in
      let cs = Target.cache_stats sh.target in
      let tot = cs.Target.hits + cs.Target.misses in
      Printf.bprintf b "%-8s %-10s %-7s %-7s %-9s %d/%d hit%s\n" tname state fault
        lat wire cs.Target.hits tot
        (if tot = 0 then "" else Printf.sprintf " (%.0f%%)" (100. *. float_of_int cs.Target.hits /. float_of_int tot)))
    srv.torder;
  (* --- sessions --- *)
  let slo_rows = Obs.Slo.status () in
  Printf.bprintf b "%-4s %-10s %-6s %-2s %-6s %-6s %-5s %-12s %-6s %s\n" "SID"
    "NAME" "TGT" "W" "OPS" "FAULTS" "RTOK" "BUDGET" "HIT%" "SLO";
  List.iter
    (fun sid ->
      let sess = Hashtbl.find srv.sessions sid in
      let c k = Option.value ~default:0 (Hashtbl.find_opt sess.tab k) in
      let hits = c "cache.hits" and misses = c "cache.misses" in
      let hitp =
        if hits + misses = 0 then "-"
        else Printf.sprintf "%.0f" (100. *. float_of_int hits /. float_of_int (hits + misses))
      in
      let budget_s =
        match (sess.sbudget.max_reads, sess.sbudget.max_sim_ms) with
        | None, None -> "unlim"
        | Some l, _ -> Printf.sprintf "%d/%dr" sess.sreads l
        | None, Some m -> Printf.sprintf "%.0f/%.0fms" sess.ssim_ms m
      in
      let burn, sev = slo_worst_for (Printf.sprintf "s%d." sid) slo_rows in
      let slo_s =
        if slo_rows = [] then "-"
        else Printf.sprintf "%.2fx %s" burn (if sev = "ok" then "" else String.uppercase_ascii sev)
      in
      Printf.bprintf b "%-4d %-10s %-6s %-2d %-6d %-6d %-5d %-12s %-6s %s\n" sid
        sess.name sess.shared.tname sess.weight (c "ops") (c "faults")
        sess.rb_tokens budget_s hitp (String.trim slo_s))
    (session_ids srv);
  (* --- SLO table + slowest traces (observability on only) --- *)
  if Obs.enabled () then begin
    if slo_rows <> [] then begin
      Buffer.add_string b (Obs.Slo.report ());
      Buffer.add_char b '\n'
    end;
    (* span id -> trace id, from the surviving ring, to attribute links *)
    let span_trace = Hashtbl.create 256 in
    let ops =
      List.filter
        (fun (s : Obs.span) ->
          Hashtbl.replace span_trace s.Obs.sid s.Obs.strace;
          s.Obs.sname = "session.op")
        (Obs.span_events ())
    in
    let links_of tid =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (l : Obs.Trace.link) ->
          let owner id = Option.value ~default:0 (Hashtbl.find_opt span_trace id) in
          if owner l.Obs.Trace.lfrom = tid || owner l.Obs.Trace.lto = tid then
            Hashtbl.replace tbl l.Obs.Trace.lkind
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l.Obs.Trace.lkind)))
        (Obs.Trace.links ());
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (k, v) -> if v = 1 then k else Printf.sprintf "%s x%d" k v)
    in
    let slowest =
      List.sort (fun (a : Obs.span) bs -> compare bs.Obs.sdur_ms a.Obs.sdur_ms) ops
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    (match take top slowest with
    | [] -> ()
    | rows ->
        Printf.bprintf b "slowest traces (of %d op spans in ring):\n" (List.length ops);
        List.iter
          (fun (s : Obs.span) ->
            let attr k = Option.value ~default:"?" (List.assoc_opt k s.Obs.sattrs) in
            let links = links_of s.Obs.strace in
            Printf.bprintf b "  trace %-5d %7.2f ms  sid %-3s %-5s route %-10s%s\n"
              s.Obs.strace s.Obs.sdur_ms (attr "sid") (attr "kind") (attr "route")
              (if links = [] then "" else "  links: " ^ String.concat ", " links))
          rows)
  end;
  Buffer.contents b
