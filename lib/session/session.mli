(** The multi-session server: N concurrent debugging sessions over one
    booted kernel, multiplexed over shared {!Target} handles.

    Sessions are interleaved, not threaded — every v-command runs to
    completion before the next — which makes exact per-session
    accounting possible: the server swaps each session's transport
    fault configuration, per-plot deadline and admission gate onto the
    shared link for the duration of its op, then captures the fault
    journal, read, cache and wire-time deltas that op produced.  The
    result is {e fault isolation}: one session's fault storm, torn-read
    burst or breaker-Open never shows up in another session's rendered
    bytes, per-session counters or recovery state, while the sessions
    still share the target's generation-validated read cache (one
    session's cold plot warms every session's refresh of the same
    structures).

    {e Admission control}: capacity, per-session read/wire budgets and
    target quarantine refuse work with a typed {!outcome.Rejected}
    rather than an exception; budget refusals mid-plot are enforced at
    the {!Transport.fetch} boundary (the read degrades to a
    [Timed_out] fault, never an abort).

    {e Degradation-fair scheduling}: when a shared target's breaker
    opens (or its link dies), the target enters quarantine — one
    elected session probes the link while the others serve [STALE]
    panes from their caches; once the probe succeeds the waiting
    sessions are re-admitted one per op (no thundering herd).

    {e Adaptive health} (this layer): the wire's fault EWMA
    ({!Transport.ewma}) drives a {e graduated} Healthy -> Degraded ->
    Quarantined state machine with hysteresis
    ({!Transport.Health.step}), so a gray-failing target is shed or
    rerouted {e before} its breaker ever opens.  On a Degraded target,
    load is shed by weighted fair credits (high-{!set_weight} sessions
    degrade last, with a [ceil(stride/weight)] starvation bound); when
    another registered target exposes the same kernel image over a
    healthy wire, ops are {e hedged} to it instead — byte-identical
    renders, asserted by the campaign bench.  Retries are governed by a
    per-session token bucket ([retry_burst]), so a sickening target
    cannot provoke a retry storm; an exhausted bucket degrades the read
    to a [Timed_out] fault, never an exception.

    {e Crash-safe fleet recovery}: {!save_fleet} serializes every
    session's op journal; {!recover_fleet} replays them into a fresh
    server, reproducing each session's pane and box ids. *)

type sid = int

(* ------------------------------------------------------------------ *)
(** {1 Budgets} *)

(** Per-session, per-epoch resource limits.  All unlimited by default. *)
type budget = {
  max_reads : int option;  (** transport reads per epoch *)
  max_sim_ms : float option;  (** simulated wire ms per epoch *)
  plot_deadline_ms : float option;  (** per-plot transport deadline *)
  retry_burst : int option;
      (** retry-token bucket capacity: each op earns one token (up to
          the cap, refilled in full by {!begin_epoch}) and every retry
          of a dropped reply spends one; an empty bucket degrades the
          read to a [Timed_out] fault via
          {!Transport.error.Deadline_exceeded}.  [None] = unlimited
          retries (the pre-budget behaviour). *)
}

val unlimited : budget

val budget :
  ?max_reads:int -> ?max_sim_ms:float -> ?plot_deadline_ms:float -> ?retry_burst:int ->
  unit -> budget

(* ------------------------------------------------------------------ *)
(** {1 Admission} *)

(** Why the server refused an operation. *)
type reason =
  | Capacity of { limit : int }  (** the session table is full *)
  | Unknown_session of sid
  | Unknown_target of string
  | Reads_exhausted of { used : int; limit : int }
      (** the session spent its per-epoch read budget *)
  | Budget_exhausted of { used_ms : float; limit_ms : float }
      (** the session spent its per-epoch wire-time budget *)
  | Quarantined of { target : string; prober : sid }
      (** the target is quarantined and this session is not the elected
          prober (or not yet re-admitted from probation) *)
  | Shed of { target : string; deficit : int }
      (** the target is degraded with no healthy replica to hedge to,
          and this session's fair-share credits don't yet cover the
          stride; [deficit] is how far short — it shrinks by [weight]
          per knock, bounding refusals at [ceil(stride/weight)] *)

val reason_to_string : reason -> string

(** Every server entry point returns [Admitted]/[Rejected], never an
    admission exception. *)
type 'a outcome = Admitted of 'a | Rejected of { reason : reason }

(* ------------------------------------------------------------------ *)
(** {1 The server} *)

type server

val create : ?capacity:int -> Kstate.t -> server
(** A server over one booted kernel with a default local (transportless)
    target ["t0"].  [capacity] (default 8) bounds concurrent sessions. *)

val capacity : server -> int

val add_target : server -> ?transport:Transport.t -> string -> unit
(** Register a named shared target handle (its own link, breaker and
    read cache).  @raise Invalid_argument on duplicate names. *)

val target_names : server -> string list

(** A shared target's degradation state, as seen from outside.
    [`Degraded] is the graduated middle state: still serving, but
    shedding load (or hedging to a replica) while the fault EWMA is
    above the degrade threshold. *)
type health = [ `Healthy | `Degraded | `Quarantine of sid | `Probation of sid list ]

val target_health : server -> string -> health
(** @raise Invalid_argument on unknown targets. *)

(* ------------------------------------------------------------------ *)
(** {1 Session lifecycle} *)

val open_session :
  ?budget:budget -> ?faults:Transport.faults -> ?weight:int -> ?target:string ->
  server -> string -> sid outcome
(** Admit a named session onto [target] (default ["t0"]).  [faults] is
    the fault configuration {e this session's} traffic runs under on
    the shared link (default {!Transport.no_faults}); [weight]
    (default 1, clamped to >= 1) is its fair-admission priority —
    higher-weight sessions are shed later and less often on a degraded
    target. *)

val close_session : server -> sid -> unit
(** Idempotent; a closed prober or probation entry is dropped from its
    target's recovery bookkeeping. *)

val session_ids : server -> sid list
val session_name : server -> sid -> string option

val vis : server -> sid -> Visualinux.session option
(** The underlying per-session façade, for read-only uses (rendering,
    pane inspection).  Driving v-commands through it directly bypasses
    the server's accounting and isolation; use the wrappers below. *)

val set_budget : server -> sid -> budget -> unit
(** Also resets the retry-token bucket to the new [retry_burst]. *)

val budget_of : server -> sid -> budget option
val set_faults : server -> sid -> Transport.faults -> unit

val set_weight : server -> sid -> int -> unit
(** Clamped to >= 1. *)

val weight_of : server -> sid -> int

val retry_tokens : server -> sid -> int
(** Retry-budget tokens left (0 when unlimited or unknown). *)

val begin_epoch : server -> sid -> unit
(** Open a fresh budget/cache-stat epoch for the session: resets its
    read and wire-time spend, refills its retry-token bucket, and
    resets its [cache.*] counters, bumps the [epochs] counter.
    Cumulative counters ([plots], [faults], ...) survive. *)

(* ------------------------------------------------------------------ *)
(** {1 v-commands, isolated and accounted} *)

val vplot :
  server -> sid -> ?title:string -> string ->
  (Panel.pane * Viewcl.result * Visualinux.plot_stats) outcome
(** {!Visualinux.vplot} under the session's fault config, deadline and
    admission gate.  @raise Viewcl.Error on malformed programs (a
    program error is the caller's bug, not an admission decision). *)

val vrefresh :
  server -> sid -> pane:Panel.pane_id ->
  (Viewcl.result * Visualinux.plot_stats) option outcome
(** Incremental re-plot of one pane (see {!Visualinux.vrefresh}). *)

val vctrl : server -> sid -> Visualinux.vctrl -> Visualinux.vctrl_result outcome

val render : server -> sid -> Panel.pane_id -> string option
(** Render a pane from the session's cached graph.  Never [Rejected] —
    serving [STALE] panes without touching the link {e is} the degraded
    mode a quarantined target leaves its other sessions in.  [None] for
    unknown sessions or panes. *)

val recover_session : server -> sid -> int outcome
(** Replay this session's own journal (see {!Visualinux.recover});
    returns the number of panes that came back stale. *)

val refresh_stale : server -> sid -> Panel.pane_id list outcome
(** Re-extract the session's stale panes; returns the ids brought back
    live. *)

(* ------------------------------------------------------------------ *)
(** {1 Per-session accounting} *)

val counters : server -> sid -> (string * int) list
(** The session's private counter namespace, sorted by name: [plots],
    [refreshes], [ctrls], [reads], [faults], [cache.hits],
    [cache.misses], [cache.coalesced], [rejections], [budget.refusals],
    [probes], [canaries], [hedged.ops], [retry.denied],
    [stale.renders], [epochs], [recovers].  Only this session's ops
    move them.  Mirrored as Obs counters [session.<sid>.<name>] when
    profiling is on.  Per-target health is mirrored as Obs {e gauges}:
    [health.<target>.ewma_fault_rate], [health.<target>.ewma_latency_ms],
    [health.<target>.state] (0 healthy / 1 degraded / 2 quarantine /
    3 probation) and [session.quarantined_targets]. *)

val counter : server -> sid -> string -> int
(** 0 when absent (or the session is unknown). *)

val fault_journal : server -> sid -> Target.fault list
(** The faults recorded during this session's ops, oldest first — the
    per-session view of {!Target.faults} (whose global journal the
    server drains after each op). *)

val wire_ms : server -> sid -> float
(** Simulated wire ms this session charged in the current epoch. *)

val reads_used : server -> sid -> int

(* ------------------------------------------------------------------ *)
(** {1 Fleet recovery} *)

val save_fleet : server -> string
(** JSON snapshot of every open session: name, target, budget, fault
    config and full op journal. *)

val recover_fleet : server -> string -> (sid * int) outcome list
(** Rebuild the fleet from a {!save_fleet} snapshot into [server]
    (typically a fresh one over the same kernel, with the same target
    names registered).  Each session is re-admitted — capacity applies —
    and its journal replayed under its own fault config and budget;
    pane ids are reproduced by replay order and box ids by
    deterministic re-extraction.  Returns, per saved session, the new
    sid and its stale-pane count. *)

(* ------------------------------------------------------------------ *)
(** {1 Durable fleet state (crash consistency)}

    Attach a {!Durable} store and every fleet lifecycle event
    (open/close/budget/quarantine) plus every checkpointed panel op is
    appended as a checksummed, generation-stamped WAL record; past the
    snapshot limit the stream compacts into a snapshot segment (a
    {!save_fleet} image, its journals already [Jreserve]-compacted)
    plus a fresh tail.  {!recover_durable} is the fsck-style inverse:
    it scans whatever bytes survived a crash, replays each session's
    intact op chain, and degrades the rest to a {e typed} per-session
    outcome — never an exception, never cross-session contamination. *)

val attach_wal : server -> Durable.t -> unit
(** Start journaling into [d]: writes a snapshot of the current fleet
    as the first segment (dropping any prior store contents), then taps
    every session's panel-op stream. *)

val detach_wal : server -> unit
val wal_of : server -> Durable.t option

val set_wal_snapshot_limit : server -> int -> unit
(** Tail records that trigger a snapshot compaction (default 256,
    clamped to >= 1). *)

val wal_snapshot : server -> unit
(** Force a snapshot compaction now (no-op without an attached WAL). *)

val fleet_image : server -> string
(** A one-record durable image of the fleet (a snapshot, framed and
    checksummed) — what [server save] writes to disk. *)

val corrupt_wal : server -> bool
(** Flip one seeded bit inside an attached WAL's op record — the
    campaign DSL's [corrupt_journal] fault.  [false] without a WAL. *)

(** How a session came through durable recovery: its op chain replayed
    whole; a damaged chain cut at the first hole (replaying past a
    missing pane-creating op would shift every later pane id) with
    [dropped] ops lost and panes marked [STALE]; or its open/snapshot
    record destroyed outright — identity lost, the session returns
    quarantined with [STALE] panes rebuilt without touching the wire. *)
type salvage = Replayed | Salvaged of { dropped : int } | Quarantined_stale

type srecovery = {
  rsid : sid;
  rname : string;
  rtarget : string;
  rsalvage : salvage;
  rops : int;  (** ops replayed into the session *)
  rstale : int;  (** panes stale after recovery *)
}

type recovery = { rreport : Durable.report; rsessions : srecovery list; rms : float }

val recover_durable : server -> string -> recovery
(** Fsck [image] and rebuild the fleet into [server] (a fresh one over
    the same kernel, same target names).  Emits a [session.recovered]
    span per session and the [recovery.*] counters; never raises on
    corrupt input. *)

val fsck_image : string -> Durable.report * srecovery list
(** The dry run: fsck + the per-session plan, nothing replayed
    ([rstale] is 0).  What [server fsck] prints. *)

val recovery_to_string : recovery -> string
val last_recovery : server -> recovery option

val status : server -> string
(** Human-readable multi-line server summary (targets, health,
    sessions, budgets) for the repl. *)

(* ------------------------------------------------------------------ *)
(** {1 SLOs and the vtop dashboard} *)

val register_slos : server -> unit
(** Register the fleet's standard objectives with {!Obs.Slo}: per live
    session [s<sid>.availability] (ops vs rejections, 99.5th-style
    target 0.95), [s<sid>.clean_reads] (faults per read, 0.99),
    [s<sid>.op_p95] (op latency <= 100 ms, 0.95) and [s<sid>.staleness]
    (stale renders, 0.90); per target [t.<name>.healthy] (health-state
    gauge at Healthy, 0.90).  Idempotent — safe to call again after
    opening more sessions.  The SLO engine stays read-only: burn only
    drives gauges and events, never admission. *)

val vtop : ?top:int -> server -> string
(** One render of the live fleet dashboard: a header with obs ring
    pressure, a per-target table (state, fault/latency EWMAs, wire and
    cache), a per-session table (ops, faults, retry tokens, budget
    spend, cache hit rate, worst SLO burn), the {!Obs.Slo.report}
    table, and the [top] (default 5) slowest [session.op] traces still
    in the ring with their causal links (hedge/canary/retry/probation).
    Ticks one SLO evaluation epoch ({!Obs.Slo.tick}) per call — vtop
    {e is} the fleet's heartbeat when the repl drives it.  Degrades
    gracefully to the static tables when observability is off. *)
