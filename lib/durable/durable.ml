(** Segmented WAL + fsck implementation.  See durable.mli for the
    contract; the framing in one line:

    MAGIC(2) | KIND(1) | GEN(8 LE) | LEN(4 LE) | PAYLOAD | CRC32(4 LE)

    with the CRC covering KIND..PAYLOAD.  The store itself is a
    deterministic in-memory simulator: segments are plain buffers, the
    durability watermark is a byte count, and the injected crash/fault
    machinery renders "what a reboot would find" as a string. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, poly 0xEDB88320), table-driven, stdlib only *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Record codec *)

let magic0 = '\xD7'
let magic1 = '\x4A'
let header_len = 15 (* magic 2 + kind 1 + gen 8 + len 4 *)
let trailer_len = 4 (* crc *)

(* A corrupted length field must not swallow the rest of the image as
   "one giant torn record": anything past this bound is treated as
   corruption, not as a plausible payload. *)
let max_payload = 1 lsl 26

let put_le b v n =
  for i = 0 to n - 1 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le s pos n =
  let v = ref 0 in
  for i = n - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let encode_record ~gen ~kind payload =
  let body = Buffer.create (13 + String.length payload) in
  Buffer.add_char body (Char.chr (kind land 0xff));
  put_le body gen 8;
  put_le body (String.length payload) 4;
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 6) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_string b body;
  put_le b (crc32 body) 4;
  Buffer.contents b

type record = { rgen : int; rkind : int; rpayload : string }

(* Parse one record at [pos].  [`Overrun] means the bytes run out
   mid-record (a torn tail, if nothing parseable follows); [`Bad] means
   the bytes are there but wrong (magic, CRC, bogus length, or a
   generation that does not advance past [last_gen]). *)
let parse_at s pos ~last_gen =
  let len = String.length s in
  if pos + header_len + trailer_len > len then `Overrun
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then `Bad
  else
    let kind = Char.code s.[pos + 2] in
    let gen = get_le s (pos + 3) 8 in
    let plen = get_le s (pos + 11) 4 in
    if plen > max_payload then `Bad
    else if pos + header_len + plen + trailer_len > len then `Overrun
    else
      let body = String.sub s (pos + 2) (13 + plen) in
      let crc = get_le s (pos + header_len + plen) 4 in
      if crc32 body <> crc then `Bad
      else if gen <= last_gen then `Bad
      else
        `Ok
          ( { rgen = gen; rkind = kind; rpayload = String.sub s (pos + header_len) plen },
            pos + header_len + plen + trailer_len )

(* ------------------------------------------------------------------ *)
(* fsck *)

type report = {
  bytes_scanned : int;
  records_ok : int;
  records_skipped : int;
  torn_bytes : int;
  resyncs : int;
  gen_gaps : int;
}

let report_to_string r =
  Printf.sprintf
    "fsck: %d bytes, %d records ok, %d corrupt run%s skipped, %d gen gap%s, %d torn tail byte%s"
    r.bytes_scanned r.records_ok r.records_skipped
    (if r.records_skipped = 1 then "" else "s")
    r.gen_gaps
    (if r.gen_gaps = 1 then "" else "s")
    r.torn_bytes
    (if r.torn_bytes = 1 then "" else "s")

let fsck s =
  let len = String.length s in
  let recs = ref [] in
  let ok = ref 0 and skipped = ref 0 and torn = ref 0 and resyncs = ref 0 in
  let gaps = ref 0 in
  let last_gen = ref 0 in
  (* hunt forward for the next position where a whole record parses
     with a valid CRC and an advancing generation *)
  let resync from =
    let rec hunt p =
      if p >= len then None
      else if
        s.[p] = magic0
        && p + 1 < len
        && s.[p + 1] = magic1
        &&
        match parse_at s p ~last_gen:!last_gen with `Ok _ -> true | _ -> false
      then Some p
      else hunt (p + 1)
    in
    hunt from
  in
  let rec scan pos =
    if pos < len then
      match parse_at s pos ~last_gen:!last_gen with
      | `Ok (r, next) ->
          if r.rgen > !last_gen + 1 then gaps := !gaps + (r.rgen - !last_gen - 1);
          last_gen := r.rgen;
          incr ok;
          recs := r :: !recs;
          scan next
      | `Bad | `Overrun -> (
          match resync (pos + 1) with
          | Some p ->
              incr resyncs;
              incr skipped;
              scan p
          | None ->
              (* nothing parseable remains: the rest is a torn tail *)
              torn := len - pos)
  in
  scan 0;
  ( { bytes_scanned = len; records_ok = !ok; records_skipped = !skipped;
      torn_bytes = !torn; resyncs = !resyncs; gen_gaps = !gaps },
    List.rev !recs )

(* ------------------------------------------------------------------ *)
(* The store *)

type fault = Torn_tail | Bit_flip | Lost_flush

type t = {
  mutable sealed : string list;  (* closed segments, oldest first *)
  act : Buffer.t;  (* active tail segment *)
  mutable gen : int;  (* last generation stamped *)
  mutable stored : int;  (* records stored since creation *)
  mutable tail : int;  (* records since the last compact *)
  mutable flushed : int;  (* durable byte watermark over sealed+act *)
  mutable crash_after : int option;
  mutable crash_fault : fault option;
  mutable is_crashed : bool;
  mutable rlog_rev : (int * string * string) list;  (* kind, payload, raw; newest first *)
  mutable recs_rev : (int * int * int) list;  (* kind, offset, total len; newest first *)
  mutable rstate : int;  (* seeded PRNG state for fault injection *)
}

(* Segments seal at a fixed size so the on-disk shape really is a
   chain of bounded segments plus a tail, not one unbounded buffer. *)
let seg_limit = 1 lsl 16

let create ?(seed = 1) () =
  { sealed = []; act = Buffer.create 256; gen = 0; stored = 0; tail = 0;
    flushed = 0; crash_after = None; crash_fault = None; is_crashed = false;
    rlog_rev = []; recs_rev = []; rstate = (seed * 2654435761) lor 1 }

let rand t n =
  t.rstate <- (t.rstate * 0x5DEECE66D) + 0xB;
  let v = (t.rstate lsr 33) land max_int in
  if n <= 0 then 0 else v mod n

let total_len t =
  List.fold_left (fun acc s -> acc + String.length s) (Buffer.length t.act) t.sealed

let contents t = String.concat "" (List.rev (Buffer.contents t.act :: List.rev t.sealed))

let append t ~kind ~payload =
  (match t.crash_after with
  | Some n when t.stored >= n -> t.is_crashed <- true
  | _ -> ());
  if t.is_crashed then t.gen
  else begin
    let gen = t.gen + 1 in
    t.gen <- gen;
    let raw = encode_record ~gen ~kind payload in
    t.recs_rev <- (kind, total_len t, String.length raw) :: t.recs_rev;
    Buffer.add_string t.act raw;
    if Buffer.length t.act >= seg_limit then begin
      t.sealed <- t.sealed @ [ Buffer.contents t.act ];
      Buffer.clear t.act
    end;
    t.stored <- t.stored + 1;
    t.tail <- t.tail + 1;
    t.rlog_rev <- (kind, payload, raw) :: t.rlog_rev;
    gen
  end

let flush t = if not t.is_crashed then t.flushed <- total_len t

let compact t ~kind ~payload =
  if not t.is_crashed then begin
    t.sealed <- [];
    Buffer.clear t.act;
    t.recs_rev <- [];
    t.tail <- 0;
    ignore (append t ~kind ~payload);
    (* the snapshot write is fsynced by contract *)
    t.flushed <- total_len t
  end

let appended t = t.stored
let tail_records t = t.tail
let last_gen t = t.gen

let set_crash ?fault t ~after =
  t.crash_after <- Some after;
  t.crash_fault <- fault

let clear_crash t =
  t.crash_after <- None;
  t.crash_fault <- None;
  t.is_crashed <- false

let crashed t = t.is_crashed

let flip_bit s i =
  if String.length s = 0 then s
  else begin
    let i = i mod (8 * String.length s) in
    let b = Bytes.of_string s in
    Bytes.set b (i / 8) (Char.chr (Char.code (Bytes.get b (i / 8)) lxor (1 lsl (i mod 8))));
    Bytes.to_string b
  end

let disk_image t =
  let base = contents t in
  (* a pure draw from the current PRNG state: reading the image twice
     must find the same wreckage, so the state is not advanced *)
  let peek n =
    let v = (((t.rstate * 0x5DEECE66D) + 0xB) lsr 33) land max_int in
    v mod n
  in
  if not t.is_crashed then base
  else
    match t.crash_fault with
    | None -> base
    | Some Lost_flush -> String.sub base 0 (min t.flushed (String.length base))
    | Some Torn_tail ->
        let len = String.length base in
        if len <= 1 then base
        else
          (* cut into (usually) the final record: header+crc alone is
             19 bytes, so a cut this shallow lands mid-record *)
          let c = 1 + peek (min (len - 1) (header_len + trailer_len + 5)) in
          String.sub base 0 (len - c)
    | Some Bit_flip ->
        let len = String.length base in
        if len = 0 then base else flip_bit base (peek (len * 8))

(* In-place silent corruption: rebuild the stored bytes with one bit
   flipped inside a victim record's payload (or its generation stamp
   when the payload is empty) — either way the CRC no longer verifies. *)
let corrupt ?kind ?victim t =
  let cands =
    match kind with
    | None -> List.rev t.recs_rev
    | Some k -> (
        match List.rev (List.filter (fun (rk, _, _) -> rk = k) t.recs_rev) with
        | [] -> List.rev t.recs_rev
        | l -> l)
  in
  (* when drawing at random, never pick the final record: corrupting it
     is indistinguishable from a torn tail, and this knob exists to
     exercise the mid-stream resync path (skip the bad run, recover
     everything after it).  An explicit [victim] index overrides. *)
  let cands =
    match victim with
    | Some _ -> cands
    | None -> (
        let last_off =
          List.fold_left (fun a (_, off, _) -> max a off) (-1) t.recs_rev
        in
        match List.filter (fun (_, off, _) -> off < last_off) cands with
        | [] -> cands
        | l -> l)
  in
  match cands with
  | [] -> false
  | _ ->
      let pick =
        match victim with
        | Some v -> min (max 0 v) (List.length cands - 1)
        | None -> rand t (List.length cands)
      in
      let _, off, rlen = List.nth cands pick in
      let plen = rlen - header_len - trailer_len in
      let lo, span =
        if plen > 0 then (off + header_len, plen) (* payload *)
        else (off + 3, 8) (* generation stamp *)
      in
      let bit = (lo * 8) + rand t (span * 8) in
      let flipped = flip_bit (contents t) bit in
      t.sealed <- [];
      Buffer.clear t.act;
      Buffer.add_string t.act flipped;
      true

let record_log t = List.rev_map (fun (k, p, _) -> (k, p)) t.rlog_rev
let record_bytes t = List.rev_map (fun (_, _, raw) -> raw) t.rlog_rev

(* ------------------------------------------------------------------ *)
(* File round-trip *)

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b
