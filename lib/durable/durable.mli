(** Crash-consistent storage for fleet state: a segmented write-ahead
    journal of length-prefixed, CRC-checksummed, generation-stamped
    records, plus the fsck-style scanner that recovers whatever a
    crash, a torn write or a flipped bit left behind.

    The layer is deliberately ignorant of what it stores: a record is
    an opaque [payload] tagged with a small integer [kind]; the session
    layer defines the kinds (lifecycle events, panel ops, snapshots)
    and their JSON payloads.  What this layer owns is the framing:

    {v
      MAGIC(2) | KIND(1) | GEN(8 LE) | LEN(4 LE) | PAYLOAD | CRC32(4 LE)
    v}

    [GEN] is a strictly increasing generation stamp (one per record),
    so recovery can detect holes; [CRC32] covers KIND..PAYLOAD, so a
    single flipped bit anywhere in a record is always caught.

    {e The store is a deterministic simulator}, not a file descriptor:
    appends land in memory, [flush] moves the durability watermark, and
    a configured crash ({!set_crash}) silently drops every later append
    — exactly the discipline a real WAL lives under, minus the fsync.
    {!disk_image} then renders what a reboot would find, optionally
    mangled by an injected fault (torn final record, flipped bit, lost
    unflushed tail).  Everything is seeded and reproducible. *)

type t

(** What the injected crash does to the bytes a reboot finds.
    [Torn_tail] cuts mid-record at the end of the image (an interrupted
    write); [Bit_flip] flips one seeded bit anywhere (media corruption);
    [Lost_flush] drops everything after the last {!flush} (a volatile
    write cache that never made it). *)
type fault = Torn_tail | Bit_flip | Lost_flush

(** One record recovered by {!fsck}. *)
type record = { rgen : int; rkind : int; rpayload : string }

(** The typed fsck report: what the scan found, skipped and truncated.
    [records_skipped] counts distinct corrupt runs passed over by magic
    resync; [gen_gaps] sums the generation holes they left; [torn_bytes]
    is the unparseable tail truncated at the end of the image. *)
type report = {
  bytes_scanned : int;
  records_ok : int;
  records_skipped : int;
  torn_bytes : int;
  resyncs : int;
  gen_gaps : int;
}

val report_to_string : report -> string

(* ------------------------------------------------------------------ *)
(** {1 The store} *)

val create : ?seed:int -> unit -> t
(** A fresh in-memory store.  [seed] (default 1) drives every injected
    fault, so a given (appends, crash config) pair is reproducible. *)

val append : t -> kind:int -> payload:string -> int
(** Append one record; returns its generation stamp.  After the
    configured crash point the append is silently dropped (the process
    is dead) and the last stamped generation is returned. *)

val flush : t -> unit
(** Advance the durability watermark to everything appended so far —
    what a [Lost_flush] crash preserves. *)

val compact : t -> kind:int -> payload:string -> unit
(** Drop every stored segment and start a fresh one whose first record
    is [payload] (the caller's snapshot).  Generations keep increasing
    across the compaction, and the snapshot is treated as flushed. *)

val appended : t -> int
(** Records actually stored since creation (dropped post-crash appends
    excluded, compacted-away records included). *)

val tail_records : t -> int
(** Records currently stored, i.e. since the last {!compact} — the
    session layer's snapshot trigger. *)

val last_gen : t -> int

val contents : t -> string
(** The raw stored bytes, crash and faults {e not} applied. *)

(* ------------------------------------------------------------------ *)
(** {1 Crash & fault injection (the [Sim] side)} *)

val set_crash : ?fault:fault -> t -> after:int -> unit
(** Arm the crash: appends numbered [<= after] (counting from creation)
    are stored, all later ones dropped.  [fault] additionally mangles
    the {!disk_image}. *)

val clear_crash : t -> unit
val crashed : t -> bool

val disk_image : t -> string
(** What a reboot finds: {!contents} with the armed crash's fault
    applied (seeded, deterministic).  Identity when no crash fired. *)

val corrupt : ?kind:int -> ?victim:int -> t -> bool
(** Flip one seeded bit inside a stored record's payload, in place —
    silent corruption of committed state.  [kind] restricts the victim
    to records of that kind; falls back over all records.  [victim]
    picks the n-th eligible record (oldest first, clamped) instead of a
    seeded draw; the random draw avoids the final record, whose
    corruption is indistinguishable from a torn tail.  Returns [false]
    when the store has no eligible record. *)

val record_log : t -> (int * string) list
(** Every stored record since creation as [(kind, payload)], oldest
    first — replay fodder for building twin stores. *)

val record_bytes : t -> string list
(** The same records as raw encoded bytes, oldest first.  Concatenating
    the first [k] yields the exact disk image of a clean crash after
    [k] writes — the torture bench's crash-point constructor. *)

(* ------------------------------------------------------------------ *)
(** {1 Codec & fsck} *)

val encode_record : gen:int -> kind:int -> string -> string
(** Frame one payload (exposed for the fuzz tests). *)

val crc32 : string -> int
val flip_bit : string -> int -> string
(** [flip_bit s i] flips bit [i mod (8 * length s)]. *)

val fsck : string -> report * record list
(** Scan an image: verify checksums, truncate the torn tail, resync on
    record magic past mid-stream corruption, drop stale/duplicate
    generations.  Never raises, never returns a record whose CRC did
    not verify; the surviving records come back oldest first. *)

(* ------------------------------------------------------------------ *)
(** {1 File round-trip (for the repl)} *)

val write_file : string -> string -> unit
val read_file : string -> string
(** @raise Sys_error on unreadable paths (the repl turns it into a
    printed error). *)
