(** ViewQL — the View Query Language (paper §2.3).

    An SQL-like language over an extracted {!Vgraph}: [SELECT] picks box
    sets (by type, by [type.field] projection, from [*], a named set, or
    [REACHABLE(set)], optionally filtered by [WHERE]); [UPDATE ... WITH]
    assigns display attributes ([view], [trimmed], [collapsed],
    [direction]). Set operators [\ ] (difference), [&] (intersection) and
    [UNION] combine named sets. Nested queries are (deliberately) not
    supported, mirroring the paper's design. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* AST *)

type value = Vint of int | Vstr of string | Vbool of bool | Vnull

type cmp = Eq | Ne | Lt | Gt | Le | Ge

type cond =
  | Cmp of string * cmp * value  (** member op literal *)
  | And of cond * cond
  | Or of cond * cond

type set_expr =
  | Named of string
  | Diff of set_expr * set_expr
  | Inter of set_expr * set_expr
  | Union of set_expr * set_expr

type source =
  | All
  | From_set of set_expr
  | Reachable of set_expr  (** everything reachable through links + members *)
  | Is_inside of set_expr
      (** the paper's object-set operator: boxes *contained* in a set's
          boxes — container members and inlined boxes, transitively, but
          not boxes merely pointed at by links *)

type select_spec = {
  bind : string;
  sel_type : string;
  sel_field : string option;  (** [maple_node.slots] / [file->pagecache] *)
  src : source;
  alias : string option;
  where : cond option;
}

type stmt =
  | Select of select_spec
  | Update of { target : set_expr; attrs : (string * string) list }

type program = stmt list

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token = Tid of string | Tint of int | Tstr of string | Tpunct of string | Teof

let keywords = [ "SELECT"; "FROM"; "WHERE"; "UPDATE"; "WITH"; "AS"; "AND"; "OR"; "UNION";
                 "INTERSECT"; "REACHABLE"; "IS_INSIDE"; "NULL" ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if (c >= '0' && c <= '9')
            || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9') then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && (is_id src.[!j] || src.[!j] = 'x' || src.[!j] = 'X')
      do incr j done;
      (match int_of_string_opt (String.sub src !i (!j - !i)) with
      | Some v -> push (Tint v)
      | None -> fail "bad number in ViewQL near %S" (String.sub src !i (!j - !i)));
      i := !j
    end
    else if is_id c then begin
      let j = ref (!i + 1) in
      while !j < n && is_id src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      let upper = String.uppercase_ascii word in
      push (Tid (if List.mem upper keywords then upper else word));
      i := !j
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      while !j < n && src.[!j] <> quote do
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then fail "unterminated string in ViewQL";
      push (Tstr (Buffer.contents buf));
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "->" ->
          push (Tpunct two);
          i := !i + 2
      | _ ->
          (match c with
          | '=' | '<' | '>' | '\\' | '&' | '|' | '(' | ')' | ':' | ',' | '*' | '.' ->
              push (Tpunct (String.make 1 c))
          | c -> fail "unexpected character %C in ViewQL" c);
          incr i
    end
  done;
  push Teof;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let next2 st = match st.toks with _ :: t :: _ -> t | _ -> Teof
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect_punct st p =
  match peek st with
  | Tpunct q when q = p -> advance st
  | _ -> fail "ViewQL: expected %S" p

let expect_id st =
  match peek st with
  | Tid s -> advance st; s
  | _ -> fail "ViewQL: expected identifier"

let rec parse_set st =
  let lhs =
    match peek st with
    | Tid name when not (List.mem name keywords) ->
        advance st;
        Named name
    | Tpunct "(" ->
        advance st;
        let s = parse_set st in
        expect_punct st ")";
        s
    | _ -> fail "ViewQL: expected a set name"
  in
  match peek st with
  | Tpunct "\\" -> advance st; Diff (lhs, parse_set st)
  | Tpunct "&" | Tid "INTERSECT" -> advance st; Inter (lhs, parse_set st)
  | Tpunct "|" | Tid "UNION" -> advance st; Union (lhs, parse_set st)
  | _ -> lhs

let parse_value st =
  match peek st with
  | Tint v -> advance st; Vint v
  | Tstr s -> advance st; Vstr s
  | Tid "NULL" -> advance st; Vnull
  | Tid "true" -> advance st; Vbool true
  | Tid "false" -> advance st; Vbool false
  | Tid s -> advance st; Vstr s
  | _ -> fail "ViewQL: expected a literal value"

let parse_cmp st =
  match peek st with
  | Tpunct "==" | Tpunct "=" -> advance st; Eq
  | Tpunct "!=" -> advance st; Ne
  | Tpunct "<" -> advance st; Lt
  | Tpunct ">" -> advance st; Gt
  | Tpunct "<=" -> advance st; Le
  | Tpunct ">=" -> advance st; Ge
  | _ -> fail "ViewQL: expected comparison operator"

let rec parse_cond st =
  let rec parse_and () =
    let lhs = parse_atom () in
    if peek st = Tid "AND" then begin
      advance st;
      And (lhs, parse_and ())
    end
    else lhs
  and parse_atom () =
    match peek st with
    | Tpunct "(" ->
        advance st;
        let c = parse_cond st in
        expect_punct st ")";
        c
    | Tid member when not (List.mem member keywords) ->
        advance st;
        let op = parse_cmp st in
        let v = parse_value st in
        Cmp (member, op, v)
    | _ -> fail "ViewQL: expected condition"
  in
  let lhs = parse_and () in
  if peek st = Tid "OR" then begin
    advance st;
    Or (lhs, parse_cond st)
  end
  else lhs

let parse_select st bind =
  (* at SELECT *)
  advance st;
  let sel_type = expect_id st in
  let sel_field =
    match peek st with
    | Tpunct "." | Tpunct "->" ->
        advance st;
        Some (expect_id st)
    | _ -> None
  in
  (match peek st with Tid "FROM" -> advance st | _ -> fail "ViewQL: expected FROM");
  let src =
    match peek st with
    | Tpunct "*" ->
        advance st;
        All
    | Tid "REACHABLE" ->
        advance st;
        expect_punct st "(";
        let s = parse_set st in
        expect_punct st ")";
        Reachable s
    | Tid "IS_INSIDE" ->
        advance st;
        expect_punct st "(";
        let s = parse_set st in
        expect_punct st ")";
        Is_inside s
    | _ -> From_set (parse_set st)
  in
  let alias =
    match peek st with
    | Tid "AS" ->
        advance st;
        Some (expect_id st)
    | _ -> None
  in
  let where =
    match peek st with
    | Tid "WHERE" ->
        advance st;
        Some (parse_cond st)
    | _ -> None
  in
  Select { bind; sel_type; sel_field; src; alias; where }

let parse_update st =
  (* at UPDATE *)
  advance st;
  let target = parse_set st in
  (match peek st with Tid "WITH" -> advance st | _ -> fail "ViewQL: expected WITH");
  let rec attrs acc =
    let name = expect_id st in
    expect_punct st ":";
    let v =
      match peek st with
      | Tid s -> advance st; s
      | Tstr s -> advance st; s
      | Tint n -> advance st; string_of_int n
      | _ -> fail "ViewQL: expected attribute value"
    in
    if peek st = Tpunct "," then begin
      advance st;
      attrs ((name, v) :: acc)
    end
    else List.rev ((name, v) :: acc)
  in
  Update { target; attrs = attrs [] }

let parse src =
  let st = { toks = tokenize src } in
  let rec go acc =
    match peek st with
    | Teof -> List.rev acc
    | Tid "UPDATE" -> go (parse_update st :: acc)
    | Tid name when not (List.mem name keywords) && next2 st = Tpunct "=" ->
        advance st;
        advance st;
        if peek st <> Tid "SELECT" then fail "ViewQL: expected SELECT after '%s ='" name;
        go (parse_select st name :: acc)
    | Tid "SELECT" -> go (parse_select st "_" :: acc)
    | _ -> fail "ViewQL: expected statement"
  in
  go []

(* ------------------------------------------------------------------ *)
(* Engine *)

type session = { graph : Vgraph.t; sets : (string, Vgraph.box_id list) Hashtbl.t }

let make_session graph = { graph; sets = Hashtbl.create 16 }

let get_set s name =
  match Hashtbl.find_opt s.sets name with
  | Some ids -> ids
  | None -> fail "ViewQL: unknown set %S" name

(* Set operators test membership through a hashtable of the right-hand
   side (and, for UNION, of the left), not [List.mem] — interactive sets
   over big plots made the old quadratic versions the dominant exec
   cost. *)
let id_set ids =
  let h = Hashtbl.create (List.length ids * 2) in
  List.iter (fun id -> Hashtbl.replace h id ()) ids;
  h

let rec eval_set s = function
  | Named n -> get_set s n
  | Diff (a, b) ->
      let bs = id_set (eval_set s b) in
      List.filter (fun id -> not (Hashtbl.mem bs id)) (eval_set s a)
  | Inter (a, b) ->
      let bs = id_set (eval_set s b) in
      List.filter (fun id -> Hashtbl.mem bs id) (eval_set s a)
  | Union (a, b) ->
      let as_ = eval_set s a in
      let seen = id_set as_ in
      as_ @ List.filter (fun id -> not (Hashtbl.mem seen id)) (eval_set s b)

let fval_matches op (fv : Vgraph.fval) (v : value) =
  let cmp_int a b =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Gt -> a > b
    | Le -> a <= b
    | Ge -> a >= b
  in
  match (fv, v) with
  | Vgraph.Fint a, Vint b -> cmp_int a b
  | Vgraph.Faddr a, Vint b -> cmp_int a b
  | Vgraph.Faddr a, Vnull -> cmp_int a 0
  | Vgraph.Fint a, Vnull -> cmp_int a 0
  | Vgraph.Fbool a, Vbool b -> cmp_int (Bool.to_int a) (Bool.to_int b)
  | Vgraph.Fbool a, Vint b -> cmp_int (Bool.to_int a) b
  | Vgraph.Fstr a, Vstr b -> (
      match op with
      | Eq -> a = b
      | Ne -> a <> b
      | Lt -> a < b
      | Gt -> a > b
      | Le -> a <= b
      | Ge -> a >= b)
  | Vgraph.Fstr a, Vnull -> ( match op with Eq -> a = "" | Ne -> a <> "" | _ -> false)
  | Vgraph.Fint a, Vbool b -> cmp_int a (Bool.to_int b)
  | Vgraph.Faddr _, (Vstr _ | Vbool _)
  | Vgraph.Fint _, Vstr _
  | Vgraph.Fbool _, (Vstr _ | Vnull)
  | Vgraph.Fstr _, (Vint _ | Vbool _) -> false

let rec eval_cond s alias (b : Vgraph.box) = function
  | And (x, y) -> eval_cond s alias b x && eval_cond s alias b y
  | Or (x, y) -> eval_cond s alias b x || eval_cond s alias b y
  | Cmp (member, op, v) -> (
      (* The alias (or the box's own type/def name) compares the box's
         address: WHERE vma != 0x55... *)
      if Some member = alias || member = b.Vgraph.btype || member = b.Vgraph.bdef then
        fval_matches op (Vgraph.Faddr b.Vgraph.addr) v
      else
        match Vgraph.field b member with
        | Some fv -> fval_matches op fv v
        | None -> false)

(* Containment closure: members of containers and inlined boxes, links
   excluded. *)
let inside g seeds =
  let seen = Hashtbl.create 32 in
  let rec go id =
    match Vgraph.find g id with
    | None -> ()
    | Some b ->
        let kids =
          b.Vgraph.members
          @ List.filter_map
              (function Vgraph.Inline { target; _ } -> Some target | _ -> None)
              (Vgraph.current_items b)
        in
        List.iter
          (fun kid ->
            if not (Hashtbl.mem seen kid) then begin
              Hashtbl.add seen kid ();
              go kid
            end)
          kids
  in
  List.iter go seeds;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

let select_boxes s { sel_type; sel_field; src; alias; where; _ } =
  let of_type =
    match src with
    (* [FROM *] answers straight from the graph's name index instead of
       scanning every box: one bucket probe, ids already ascending. *)
    | All when sel_type <> "*" -> Vgraph.ids_of_type s.graph sel_type
    | All -> List.map (fun b -> b.Vgraph.id) (Vgraph.boxes s.graph)
    | From_set se | Reachable se | Is_inside se ->
        let candidates =
          match src with
          | From_set _ -> eval_set s se
          | Reachable _ -> Vgraph.reachable s.graph (eval_set s se)
          | _ -> inside s.graph (eval_set s se)
        in
        List.filter
          (fun id ->
            let b = Vgraph.get s.graph id in
            sel_type = "*" || b.Vgraph.btype = sel_type || b.Vgraph.bdef = sel_type)
          candidates
  in
  let projected =
    match sel_field with
    | None -> of_type
    | Some f ->
        (* project: the boxes referenced by item [f] of each selected box *)
        List.concat_map
          (fun id ->
            let b = Vgraph.get s.graph id in
            List.filter_map
              (function
                | Vgraph.Link { label; target = Some t } when label = f -> Some t
                | Vgraph.Inline { label; target } when label = f -> Some target
                | _ -> None)
              (Vgraph.current_items b))
          of_type
  in
  match where with
  | None -> projected
  | Some c -> List.filter (fun id -> eval_cond s alias (Vgraph.get s.graph id) c) projected

let apply_attr g id (name, v) =
  let b = Vgraph.get g id in
  let a = b.Vgraph.attrs in
  match name with
  | "view" -> a.Vgraph.view <- v
  | "trimmed" -> a.Vgraph.trimmed <- v = "true"
  | "collapsed" -> a.Vgraph.collapsed <- v = "true"
  | "shrinked" | "shrunk" -> a.Vgraph.collapsed <- v = "true"
  | "direction" ->
      a.Vgraph.direction <- (if v = "vertical" then Vgraph.Vertical else Vgraph.Horizontal)
  | other -> a.Vgraph.extra <- (other, v) :: a.Vgraph.extra

(** Execute a parsed program; returns the number of boxes updated. *)
let exec_program s prog =
  let updated = ref 0 in
  List.iter
    (function
      | Select ({ bind; _ } as sel) -> Hashtbl.replace s.sets bind (select_boxes s sel)
      | Update { target; attrs } ->
          let ids = eval_set s target in
          updated := !updated + List.length ids;
          List.iter (fun id -> List.iter (apply_attr s.graph id) attrs) ids)
    prog;
  !updated

(** Parse and execute [src] against [graph]. Named sets persist in the
    session across calls (interactive refinement). *)
let exec s src =
  Obs.with_span ~cat:"viewql" "viewql.exec" (fun () -> exec_program s (parse src))

let run graph src =
  let s = make_session graph in
  let n = exec s src in
  (s, n)
