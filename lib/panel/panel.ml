(** The pane-based interactive debugger front-end (paper §2.4, Fig. 2).

    Panes form a tree built by horizontal/vertical splits (an idea the
    paper borrows from tmux). A *primary* pane displays a ViewCL-extracted
    object graph, refinable with ViewQL; a *secondary* pane displays a
    set of boxes picked from another pane. The cross-pane [focus]
    operation finds an object in every displayed graph at once. *)

type pane_id = int

type kind =
  | Primary of { program : string }  (** ViewCL source that produced the graph *)
  | Secondary of { source : pane_id; picked : Vgraph.box_id list }

type pane = {
  pid : pane_id;
  kind : kind;
  graph : Vgraph.t;
  session : Viewql.session;  (** named ViewQL sets persist per pane *)
  mutable history : string list;  (** ViewQL programs applied, oldest first *)
  mutable stale : bool;  (** graph predates the last target crash *)
}

type layout =
  | Leaf of pane_id
  | Hsplit of layout * layout  (** side by side *)
  | Vsplit of layout * layout  (** stacked *)

(** The crash-safe session journal: every layout-mutating operation, in
    order. Replaying it against a (reconnected) target reconstructs the
    whole layout — pane ids are assigned by the same sequence, so they
    come out identical to the pre-crash session. *)
type op =
  | Jopen of { program : string }
  | Jsplit of { dir : [ `Horizontal | `Vertical ]; at : pane_id; program : string }
  | Jselect of { from_ : pane_id; picked : Vgraph.box_id list }
  | Jrefine of { at : pane_id; viewql : string }
  | Jclose of { id : pane_id }
  | Jreserve of { n : int }
      (** emitted by {!compact_journal} in place of dropped
          pane-creating ops: replay skips [n] pane ids, so the panes
          that survive compaction keep their pre-compaction numbering *)

type t = {
  panes : (pane_id, pane) Hashtbl.t;
  mutable layout : layout option;
  mutable next_id : int;
  mutable journal_rev : op list;  (** newest first; checkpointed per op *)
  mutable jlen : int;  (** length of [journal_rev] *)
  mutable compact_base : int option;  (** auto-compact threshold; [None] = off *)
  mutable compact_next : int;  (** next length that triggers a compaction *)
  mutable op_hook : (op -> unit) option;
      (** fired once per checkpointed op — the session layer's WAL tap *)
}

let default_compact_threshold = 512

let create () =
  { panes = Hashtbl.create 8; layout = None; next_id = 1; journal_rev = [];
    jlen = 0; compact_base = Some default_compact_threshold;
    compact_next = default_compact_threshold; op_hook = None }

let pane t id =
  match Hashtbl.find_opt t.panes id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Panel: no pane %d" id)

let pane_opt t id = Hashtbl.find_opt t.panes id
let pane_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.panes [] |> List.sort compare
let journal t = List.rev t.journal_rev

let op_label = function
  | Jopen _ -> "open"
  | Jsplit _ -> "split"
  | Jselect _ -> "select"
  | Jrefine _ -> "refine"
  | Jclose _ -> "close"
  | Jreserve _ -> "reserve"

(* ------------------------------------------------------------------ *)
(* Journal compaction.

   A long-lived session accumulates open/refine/close churn whose panes
   are gone by the time anyone replays the journal; replaying them is
   pure waste.  [compact_journal] drops every op belonging to a pane
   that is closed by the journal's end — its creating op, its refines,
   its close — provided no surviving op ever observed the pane live (a
   split anchored at it, a select picking from it: those change layout
   or id assignment if the pane vanishes, so their targets are kept).
   Dropped creating ops leave a [Jreserve] in their place so replay
   skips exactly the ids they would have consumed: the surviving panes
   come back under their original numbering, byte-for-byte the same
   panel as an uncompacted replay. *)

(* Mirror of [recover]'s replay semantics, tracking only id assignment
   and liveness: which ops create a pane (and which id), which ops
   observed which live pane. *)
type sim_op = {
  op : op;
  created : pane_id option;  (** id this op allocated during replay *)
  observed : pane_id list;  (** panes this op saw live when it ran *)
}

let simulate ops =
  let next = ref 1 in
  let live = Hashtbl.create 16 in
  let fresh_id () =
    let id = !next in
    incr next;
    Hashtbl.replace live id ();
    Some id
  in
  List.map
    (fun op ->
      match op with
      | Jopen _ -> { op; created = fresh_id (); observed = [] }
      | Jsplit { at; _ } ->
          (* splits fall back to open_primary when [at] is gone, so the
             pane is created either way; [at] only counts as observed
             when it was actually live *)
          let obs = if Hashtbl.mem live at then [ at ] else [] in
          { op; created = fresh_id (); observed = obs }
      | Jselect { from_; _ } ->
          if Hashtbl.mem live from_ then
            { op; created = fresh_id (); observed = [ from_ ] }
          else { op; created = None; observed = [] }
      | Jrefine { at; _ } ->
          { op; created = None; observed = (if Hashtbl.mem live at then [ at ] else []) }
      | Jclose { id } ->
          let obs = if Hashtbl.mem live id then [ id ] else [] in
          Hashtbl.remove live id;
          { op; created = None; observed = obs }
      | Jreserve { n } ->
          next := !next + n;
          { op; created = None; observed = [] })
    ops
  |> fun sims -> (sims, live)

let compact_journal ops =
  let sims, live = simulate ops in
  (* candidate panes: created in this journal, closed by its end *)
  let droppable = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.created with
      | Some id when not (Hashtbl.mem live id) -> Hashtbl.replace droppable id ()
      | _ -> ())
    sims;
  (* fixpoint: a pane stays droppable only while every op that observed
     it live is itself dropped.  An op is dropped when it belongs to a
     droppable pane: its creating op, or a refine/close addressed to it. *)
  let op_dropped s =
    match s.created with
    | Some id -> Hashtbl.mem droppable id
    | None -> (
        match s.op with
        | Jrefine { at; _ } -> Hashtbl.mem droppable at
        | Jclose { id } -> Hashtbl.mem droppable id
        | _ -> false)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if not (op_dropped s) then
          List.iter
            (fun id ->
              if Hashtbl.mem droppable id then begin
                Hashtbl.remove droppable id;
                changed := true
              end)
            s.observed)
      sims
  done;
  (* rebuild: dropped creating ops become reserves (coalesced); dropped
     refines/closes vanish *)
  let out = ref [] in
  let reserve n =
    match !out with
    | Jreserve { n = m } :: rest -> out := Jreserve { n = m + n } :: rest
    | l -> out := Jreserve { n } :: l
  in
  List.iter
    (fun s ->
      if op_dropped s then (match s.created with Some _ -> reserve 1 | None -> ())
      else
        match s.op with
        | Jreserve { n } -> reserve n
        | op -> out := op :: !out)
    sims;
  List.rev !out

(* The op journal doubles as an observability event stream: every
   checkpointed op shows up as an instant in the trace. *)
let set_journal_limit t limit =
  t.compact_base <- limit;
  t.compact_next <- (match limit with Some n -> max 1 n | None -> max_int)

let set_op_hook t h = t.op_hook <- h

let checkpoint t op =
  if Obs.enabled () then
    Obs.instant ~cat:"panel" ~attrs:[ ("op", op_label op) ] "panel.op";
  t.journal_rev <- op :: t.journal_rev;
  t.jlen <- t.jlen + 1;
  (match t.op_hook with Some h -> h op | None -> ());
  match t.compact_base with
  | Some base when t.jlen > t.compact_next ->
      let compacted = compact_journal (List.rev t.journal_rev) in
      t.journal_rev <- List.rev compacted;
      t.jlen <- List.length compacted;
      (* churn-free journals (nothing closed) compact to themselves:
         double the trigger so a stubborn journal costs O(log) passes,
         not one pass per op *)
      t.compact_next <- max base (2 * t.jlen)
  | _ -> ()

let fresh ?(stale = false) t kind graph =
  let id = t.next_id in
  t.next_id <- id + 1;
  let p =
    { pid = id; kind; graph; session = Viewql.make_session graph; history = []; stale }
  in
  Hashtbl.replace t.panes id p;
  p

let mark_all_stale t = Hashtbl.iter (fun _ p -> p.stale <- true) t.panes
let stale_ids t = List.filter (fun id -> (pane t id).stale) (pane_ids t)

(* Replace [Leaf old] in the layout with [mk (Leaf old) (Leaf new)]. *)
let rec splice layout old mk fresh_leaf =
  match layout with
  | Leaf id when id = old -> mk (Leaf id) fresh_leaf
  | Leaf id -> Leaf id
  | Hsplit (a, b) -> Hsplit (splice a old mk fresh_leaf, splice b old mk fresh_leaf)
  | Vsplit (a, b) -> Vsplit (splice a old mk fresh_leaf, splice b old mk fresh_leaf)

(** Open the first primary pane. *)
let open_primary ?stale t ~program graph =
  let p = fresh ?stale t (Primary { program }) graph in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (Hsplit (l, Leaf p.pid)));
  checkpoint t (Jopen { program });
  p

(** Split an existing pane, placing a new primary pane next to it. *)
let split ?stale t ~dir ~at ~program graph =
  ignore (pane t at);
  let p = fresh ?stale t (Primary { program }) graph in
  let mk a b = match dir with `Horizontal -> Hsplit (a, b) | `Vertical -> Vsplit (a, b) in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (splice l at mk (Leaf p.pid)));
  checkpoint t (Jsplit { dir; at; program });
  p

(** Select boxes from [src] into a new secondary pane (shares the graph:
    the secondary pane is a focused window onto the same object graph,
    with everything else trimmed in its own rendering set). *)
let select t ~from:src ids =
  let sp = pane t src in
  let p = fresh ~stale:sp.stale t (Secondary { source = src; picked = ids }) sp.graph in
  (match t.layout with
  | None -> t.layout <- Some (Leaf p.pid)
  | Some l -> t.layout <- Some (splice l src (fun a b -> Vsplit (a, b)) (Leaf p.pid)));
  checkpoint t (Jselect { from_ = src; picked = ids });
  p

(** Refine a pane by a ViewQL program; returns #boxes updated. *)
let refine t ~at src =
  Obs.with_span ~cat:"panel" ~attrs:[ ("at", string_of_int at) ] "panel.refine"
  @@ fun () ->
  let p = pane t at in
  let n = Viewql.exec p.session src in
  p.history <- p.history @ [ src ];
  checkpoint t (Jrefine { at; viewql = src });
  n

(** Cross-pane focus: find the object at [addr] in every pane. *)
let focus t ~addr =
  List.concat_map
    (fun id ->
      let p = pane t id in
      List.filter_map
        (fun b -> if b.Vgraph.addr = addr && addr <> 0 then Some (id, b.Vgraph.id) else None)
        (Vgraph.boxes p.graph))
    (pane_ids t)

let close t id =
  if Hashtbl.mem t.panes id then checkpoint t (Jclose { id });
  Hashtbl.remove t.panes id;
  let rec prune = function
    | Leaf x when x = id -> None
    | Leaf x -> Some (Leaf x)
    | Hsplit (a, b) -> join (prune a) (prune b) (fun a b -> Hsplit (a, b))
    | Vsplit (a, b) -> join (prune a) (prune b) (fun a b -> Vsplit (a, b))
  and join a b mk =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (mk a b)
  in
  t.layout <- Option.join (Option.map prune t.layout)

(* ------------------------------------------------------------------ *)
(* Persistence: serialize programs + refinement history, so a debugging
   session's views can be re-created against a (new) kernel state. *)

let rec layout_to_json = function
  | Leaf id -> Printf.sprintf "{\"leaf\":%d}" id
  | Hsplit (a, b) -> Printf.sprintf "{\"h\":[%s,%s]}" (layout_to_json a) (layout_to_json b)
  | Vsplit (a, b) -> Printf.sprintf "{\"v\":[%s,%s]}" (layout_to_json a) (layout_to_json b)

let pane_to_json p =
  let kind =
    match p.kind with
    | Primary { program } -> Printf.sprintf "\"program\":\"%s\"" (Vgraph.json_escape program)
    | Secondary { source; picked } ->
        Printf.sprintf "\"source\":%d,\"picked\":[%s]" source
          (String.concat "," (List.map string_of_int picked))
  in
  Printf.sprintf "{\"id\":%d,%s,\"history\":[%s]}" p.pid kind
    (String.concat "," (List.map (fun h -> Printf.sprintf "\"%s\"" (Vgraph.json_escape h)) p.history))

let to_json t =
  Printf.sprintf "{\"layout\":%s,\"panes\":[%s]}"
    (match t.layout with Some l -> layout_to_json l | None -> "null")
    (String.concat "," (List.map (fun id -> pane_to_json (pane t id)) (pane_ids t)))

(** Recover the replayable (program, history) pairs from a session JSON
    produced by {!to_json}. *)
let programs_of_json json =
  let j = Json.parse json in
  match Json.member "panes" j with
  | Some (Json.List panes) ->
      List.filter_map
        (fun p ->
          match Json.member "program" p with
          | Some (Json.String program) ->
              let history =
                match Json.member "history" p with
                | Some (Json.List hs) ->
                    List.filter_map (function Json.String h -> Some h | _ -> None) hs
                | _ -> []
              in
              Some (program, history)
          | _ -> None)
        panes
  | _ -> []

(** The (program, history) pairs of all primary panes — enough to replay a
    session against a fresh target. *)
let saved_programs t =
  List.filter_map
    (fun id ->
      let p = pane t id in
      match p.kind with
      | Primary { program } -> Some (program, p.history)
      | Secondary _ -> None)
    (pane_ids t)

(* ------------------------------------------------------------------ *)
(* Crash-safe recovery: the journal is the session.  Serialize it after
   every op (it is cheap: one record per user action) and a crashed
   session can be rebuilt against a reconnected target by replaying. *)

let op_to_json = function
  | Jopen { program } ->
      Printf.sprintf "{\"op\":\"open\",\"program\":\"%s\"}" (Vgraph.json_escape program)
  | Jsplit { dir; at; program } ->
      Printf.sprintf "{\"op\":\"split\",\"dir\":\"%s\",\"at\":%d,\"program\":\"%s\"}"
        (match dir with `Horizontal -> "h" | `Vertical -> "v")
        at (Vgraph.json_escape program)
  | Jselect { from_; picked } ->
      Printf.sprintf "{\"op\":\"select\",\"from\":%d,\"picked\":[%s]}" from_
        (String.concat "," (List.map string_of_int picked))
  | Jrefine { at; viewql } ->
      Printf.sprintf "{\"op\":\"refine\",\"at\":%d,\"viewql\":\"%s\"}" at
        (Vgraph.json_escape viewql)
  | Jclose { id } -> Printf.sprintf "{\"op\":\"close\",\"id\":%d}" id
  | Jreserve { n } -> Printf.sprintf "{\"op\":\"reserve\",\"n\":%d}" n

let journal_to_json t =
  Printf.sprintf "{\"journal\":[%s]}"
    (String.concat "," (List.map op_to_json (journal t)))

let journal_of_json json =
  let j = Json.parse json in
  match Json.member "journal" j with
  | Some (Json.List ops) ->
      List.filter_map
        (fun o ->
          let str k = Option.map Json.to_str (Json.member k o) in
          let int k = Option.map Json.to_int (Json.member k o) in
          match str "op" with
          | Some "open" ->
              Option.map (fun program -> Jopen { program }) (str "program")
          | Some "split" -> (
              match (str "dir", int "at", str "program") with
              | Some d, Some at, Some program ->
                  Some
                    (Jsplit
                       { dir = (if d = "v" then `Vertical else `Horizontal);
                         at; program })
              | _ -> None)
          | Some "select" -> (
              match (int "from", Json.member "picked" o) with
              | Some from_, Some (Json.List ps) ->
                  Some (Jselect { from_; picked = List.map Json.to_int ps })
              | _ -> None)
          | Some "refine" -> (
              match (int "at", str "viewql") with
              | Some at, Some viewql -> Some (Jrefine { at; viewql })
              | _ -> None)
          | Some "close" -> Option.map (fun id -> Jclose { id }) (int "id")
          | Some "reserve" -> Option.map (fun n -> Jreserve { n }) (int "n")
          | _ -> None)
        ops
  | _ -> []

(** Replay a journal against a reconnected target.  [extract] runs a
    pane's ViewCL program against the new target; when it fails (link
    still down, budget spent) the pane is created anyway — empty graph,
    [stale] flag set — so pane ids keep the pre-crash numbering and a
    later {!refresh} can fill it in.  Ops referencing panes that no
    longer resolve are skipped, never raised: recovery of a damaged
    journal degrades to a partial layout.  Returns the rebuilt panel
    and the number of panes that came back stale. *)
let recover ~extract ops =
  Obs.with_span ~cat:"panel"
    ~attrs:[ ("ops", string_of_int (List.length ops)) ]
    "panel.recover"
  @@ fun () ->
  let t = create () in
  let failed = ref 0 in
  let graph_for program =
    match (try extract program with _ -> None) with
    | Some g -> (g, false)
    | None ->
        incr failed;
        (Vgraph.create (), true)
  in
  List.iter
    (fun op ->
      try
        match op with
        | Jopen { program } ->
            let g, stale = graph_for program in
            ignore (open_primary ~stale t ~program g)
        | Jsplit { dir; at; program } ->
            let g, stale = graph_for program in
            if Hashtbl.mem t.panes at then ignore (split ~stale t ~dir ~at ~program g)
            else ignore (open_primary ~stale t ~program g)
        | Jselect { from_; picked } ->
            if Hashtbl.mem t.panes from_ then ignore (select t ~from:from_ picked)
        | Jrefine { at; viewql } ->
            if Hashtbl.mem t.panes at then ignore (refine t ~at viewql)
        | Jclose { id } -> close t id
        | Jreserve { n } ->
            (* skip the ids the dropped ops would have consumed, and keep
               the reserve in the rebuilt journal so a *second* recovery
               numbers panes identically *)
            t.next_id <- t.next_id + n;
            checkpoint t (Jreserve { n })
      with _ -> ())
    ops;
  (t, !failed)

(** Re-extract one stale primary pane against a (recovered) target and
    replay its ViewQL history onto the fresh graph.  Secondary panes
    refresh implicitly: they share their source's graph object only at
    creation, so the caller re-selects if needed.  Returns [true] when
    the pane is live again. *)
let refresh t ~at ~extract =
  match pane_opt t at with
  | None -> false
  | Some p -> (
      match p.kind with
      | Secondary _ -> false
      | Primary { program } -> (
          match (try extract program with _ -> None) with
          | None -> false
          | Some graph ->
              let session = Viewql.make_session graph in
              List.iter
                (fun h -> try ignore (Viewql.exec session h) with _ -> ())
                p.history;
              Hashtbl.replace t.panes at
                { p with graph; session; stale = false };
              true))
