(** The pane-based interactive debugger front-end (paper §2.4, Fig. 2).

    Panes form a tree built by horizontal/vertical splits (borrowed from
    tmux). A {e primary} pane displays a ViewCL-extracted object graph
    refinable with ViewQL; a {e secondary} pane displays boxes picked
    from another pane. The cross-pane {!focus} operation locates an
    object in every displayed graph at once — the paper's workflow for
    understanding how one object is simultaneously managed by several
    data structures. *)

type pane_id = int

type kind =
  | Primary of { program : string }  (** the ViewCL source that produced the graph *)
  | Secondary of { source : pane_id; picked : Vgraph.box_id list }

type pane = {
  pid : pane_id;
  kind : kind;
  graph : Vgraph.t;
  session : Viewql.session;  (** named ViewQL sets persist per pane *)
  mutable history : string list;  (** ViewQL programs applied, oldest first *)
  mutable stale : bool;
      (** the graph predates the last target crash; rendered with a
          [STALE] tag until re-extracted via {!refresh} *)
}

(** The split tree. *)
type layout = Leaf of pane_id | Hsplit of layout * layout | Vsplit of layout * layout

(** One journaled session operation (see {!journal}). *)
type op =
  | Jopen of { program : string }
  | Jsplit of { dir : [ `Horizontal | `Vertical ]; at : pane_id; program : string }
  | Jselect of { from_ : pane_id; picked : Vgraph.box_id list }
  | Jrefine of { at : pane_id; viewql : string }
  | Jclose of { id : pane_id }
  | Jreserve of { n : int }
      (** emitted by {!compact_journal} in place of dropped
          pane-creating ops: replay skips [n] pane ids, keeping the
          surviving panes' pre-compaction numbering *)

type t

val create : unit -> t

val pane : t -> pane_id -> pane
(** @raise Invalid_argument on unknown ids. *)

val pane_opt : t -> pane_id -> pane option
(** Total lookup, for command boundaries that must not raise. *)

val pane_ids : t -> pane_id list

val open_primary : ?stale:bool -> t -> program:string -> Vgraph.t -> pane
(** Open a primary pane (splitting the root horizontally if the layout is
    non-empty). *)

val split :
  ?stale:bool ->
  t -> dir:[ `Horizontal | `Vertical ] -> at:pane_id -> program:string -> Vgraph.t -> pane
(** Split pane [at], placing a new primary pane beside/below it. *)

val select : t -> from:pane_id -> Vgraph.box_id list -> pane
(** Pick boxes from a pane into a new secondary pane (sharing the graph). *)

val refine : t -> at:pane_id -> string -> int
(** Apply a ViewQL program to a pane; returns #box updates and appends to
    the pane's replay history.
    @raise Viewql.Error on malformed programs. *)

val focus : t -> addr:int -> (pane_id * Vgraph.box_id) list
(** Find the object at [addr] in every pane's graph. *)

val close : t -> pane_id -> unit
(** Remove a pane and prune the layout tree. *)

(** {1 Persistence} *)

val layout_to_json : layout -> string
val pane_to_json : pane -> string

val to_json : t -> string
(** Serialize layout + per-pane programs and refinement histories. *)

val programs_of_json : string -> (string * string list) list
(** Recover the replayable (program, history) pairs from {!to_json}
    output. *)

val saved_programs : t -> (string * string list) list
(** Same, from a live session: every primary pane's ViewCL program and
    its ViewQL history — enough to replay against a fresh target. *)

(** {1 Crash-safe sessions}

    Every layout-mutating operation ({!open_primary}, {!split},
    {!select}, {!refine}, {!close}) checkpoints itself into an in-order
    journal. Pane ids are assigned by replay order, so {!recover}
    rebuilds the exact pre-crash layout — same ids, same histories —
    against a reconnected target. *)

val journal : t -> op list
(** The session's ops, oldest first. *)

val compact_journal : op list -> op list
(** Drop ops belonging to panes that are closed by the journal's end and
    never observed live by a surviving op (no split anchored at them, no
    select picking from them); dropped pane-creating ops are replaced by
    coalesced {!op.Jreserve} markers. Replaying the compacted journal
    yields the same panel — same surviving pane ids, same layout — as
    replaying the original. *)

val set_journal_limit : t -> int option -> unit
(** Auto-compaction threshold: once the journal exceeds the limit, each
    checkpoint compacts it in place (doubling the trigger when
    compaction cannot shrink churn-free journals). [None] disables
    auto-compaction; the default is 512. *)

val set_op_hook : t -> (op -> unit) option -> unit
(** Tap every checkpointed op, {e before} any in-place auto-compaction
    rewrites the journal — the session layer mirrors the stream into
    its durable WAL.  Replay ({!recover}) builds a fresh panel with no
    hook, so recovered ops are never re-journaled. *)

val journal_to_json : t -> string
val journal_of_json : string -> op list
val op_to_json : op -> string

val mark_all_stale : t -> unit
(** Called when the target link drops: every pane's graph is now of
    unknown freshness. *)

val stale_ids : t -> pane_id list

val recover : extract:(string -> Vgraph.t option) -> op list -> t * int
(** [recover ~extract ops] replays a journal against a reconnected
    target; [extract] runs a ViewCL program on it.  Panes whose
    extraction fails are still created (empty graph, [stale] set) so
    ids keep the pre-crash numbering; ops that no longer resolve are
    skipped rather than raised.  Returns the rebuilt panel and the
    number of stale panes. *)

val refresh : t -> at:pane_id -> extract:(string -> Vgraph.t option) -> bool
(** Re-extract one stale primary pane and replay its ViewQL history on
    the fresh graph; [true] when the pane is live again. *)
