(** ViewCL — the View Construction Language (paper §2.2).

    [parse] turns program text into an AST; [run] evaluates it against a
    live target and returns the extracted object graph. Programs are lists
    of [define]d Box types, top-level bindings and [plot] statements; see
    {!Ast} for the full syntax. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Interp = Interp
module Dpool = Dpool

exception Error = Ast.Error

type config = Interp.config = {
  flags : (string * (int * string) list) list;
  emojis : (string * (int -> string)) list;
}

let default_config = Interp.default_config

let parse = Parser.parse_program

type cache = Interp.plot_cache

type result = Interp.result = {
  graph : Vgraph.t;
  plots : Vgraph.box_id list;
  torn : int;
  retried : int;
  repaired : int;
  torn_boxes : int;
  cache : cache;
  cache_hits : int;
  cache_misses : int;
  cache_invalidated : int;
  rebuilt : Vgraph.box_id list;
}

let create_cache = Interp.create_cache
let cache_boxes = Interp.cache_boxes
let cache_pages = Interp.cache_pages

(** Evaluate [src] against [tgt]. [prelude] supplies predefined Box
    definitions (the "standard library" of common kernel structures). *)
let run ?cfg ?limits ?cache ?pool ?(prelude = []) tgt src =
  let defs =
    List.concat_map
      (fun p -> List.filter_map (function Ast.Define d -> Some d | _ -> None) p)
      prelude
  in
  Interp.run ?cfg ?limits ?cache ?pool ~defs tgt (parse src)

(** Count non-blank, non-comment source lines (the paper's Table 2 LoC
    metric for ViewCL programs). *)
let loc_of src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l >= 2 && l.[0] = '/' && l.[1] = '/'))
  |> List.length
