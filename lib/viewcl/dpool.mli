(** A work-stealing pool of OCaml 5 domains for parallel extraction.

    The pool has [n] members: the caller (slot 0) plus [n-1] spawned
    domains.  {!run} pushes a batch of thunks onto the submitting
    member's own deque and the caller {e helps}: it executes its own
    deque LIFO while idle members steal FIFO from the tails, and it
    returns only when the whole batch has drained — results in
    submission order, first raised exception (by submission index)
    re-raised.  [create 1] spawns nothing; {!run} then executes the
    batch on the caller, making one pool the identity baseline that
    [--domains N] runs are compared against.

    The pool schedules; it does not make lane execution deterministic.
    That is the submitted tasks' contract: each must depend only on its
    own lane id and inputs (per-lane Kmem views, targets, rng streams —
    see {!Interp}), never on which domain ran it or in what order. *)

type t

val create : int -> t
(** [create n] — a pool of [max 1 n] members ([n-1] spawned domains).
    Spawned domains idle on a condition until work arrives; call
    {!shutdown} when done with the pool. *)

val size : t -> int
(** Members, including the caller. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute a batch; blocks (helping) until every task finished.
    Results in submission order.  If tasks raised, the lowest-index
    exception is re-raised after the batch drains.  Reentrant: a task
    may itself call [run] on the same pool (it pushes to the deque of
    the member executing it and helps the nested batch drain). *)

type 'a batch
(** An open, incrementally-fed batch: tasks become runnable the moment
    they are {!add}ed, so idle members execute early tasks while the
    submitter is still producing later ones.  This is how a streamed
    container walk overlaps its (inherently serial) pointer chase with
    the lane box builds it feeds. *)

val batch : t -> 'a batch
val add : 'a batch -> (unit -> 'a) -> unit
(** Publish one task.  Returns immediately; any member may pick the
    task up at once. *)

val join : 'a batch -> 'a list
(** Help drain until every added task finished; results in submission
    order, lowest-index exception re-raised after the drain, exactly
    like {!run}.  The batch must not be {!add}ed to afterwards. *)

val record : t -> float -> unit
(** Fold an externally measured duration into {!timings} as one
    pseudo-task: a streamed walk reports its own wall + wire cost this
    way, so the schedule model packs the walk as lane-0 work that
    overlaps the builds it feeds instead of counting it as
    unparallelizable serial remainder. *)

val timings : t -> float list
(** Per-task cost in ms of every task completed since the last
    {!reset_timings}, in completion order — wall clock plus whatever
    the task {!charge}d — the per-lane busy times {!model_speedup}
    schedules. *)

val charge : float -> unit
(** Add [ms] to the recorded duration of the task currently executing
    on this domain.  Lane tasks report the simulated wire time of
    their per-lane transport fork this way, so the schedule model
    packs compute {e plus} wire cost — the plot-ms a per-lane debug
    channel spends.  No-op outside a task (the accumulator is reset at
    every task start). *)

val reset_timings : t -> unit

val executed : t -> int
(** Tasks completed over the pool's lifetime. *)

val steals : t -> int
(** Tasks taken from another member's deque — 0 on a 1-pool. *)

val shutdown : t -> unit
(** Stop and join the spawned domains.  Idempotent. *)

val default_domains : unit -> int
(** [VISUALINUX_DOMAINS] (clamped to [1..64]), or 1 when unset or
    unparsable — the pool size ambient consumers (session boot, cold
    vplot) use. *)

val model_speedup : domains:int -> serial_ms:float -> float list -> float
(** [model_speedup ~domains ~serial_ms busy] — the plot-level speedup
    an LPT greedy schedule of the measured lane busy times [busy] onto
    [domains] bins predicts, with the un-sharded remainder
    [serial_ms - sum busy] kept serial:
    [serial_ms / (serial_ms - sum busy + makespan)].  Pure; 1.0 for
    [domains <= 1] or an empty batch.  This is the machine-independent
    figure the par gate checks — measured wall time on a host with
    fewer cores than domains says nothing about the schedule, the busy
    times still do. *)
