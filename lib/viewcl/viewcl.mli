(** ViewCL — the View Construction Language (paper §2.2).

    Programs are lists of [define]d Box types, top-level bindings and
    [plot] statements:

    {v
    define Task as Box<task_struct> {
      :default [ Text pid, comm ]
      :default => :sched [ Text se.vruntime ]     // view inheritance
    } where { ... }

    root = ${&cpu_rq(0)->cfs.tasks_timeline}      // ${...}: C expression
    tree = RBTree(@root).forEach |node| {         // container + closure
      yield Task<task_struct.se.run_node>(@node)  // anchored: container_of
    }
    plot @tree
    v}

    The three simplification operators of §2.1 appear as: {e prune} — a
    Box declares exactly the items to keep; {e flatten} — dot-paths
    ([parent.pid]) chase pointers across intermediate objects; {e distill}
    — container constructors ([List], [HList], [RBTree], [Array],
    [XArray], [MapleEntries], [Range]) and the converter
    [Array.selectFrom(box, Def)] turn linked structures into ordered
    sequences. [switch ${e} { case ${v}: ... otherwise: ... }] handles
    unions and polymorphic pointers; Text decorators (Table 1) control
    formatting ([<u64:x>], [<string>], [<enum:t>], [<flag:id>], [<fptr>],
    [<emoji:id>], ...). *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Interp = Interp
module Dpool = Dpool

exception Error of string
(** Raised by {!parse} and {!run} on any lexical, syntactic or evaluation
    failure (same exception as [Ast.Error]). *)

(** Formatting configuration for the [flag:<id>] and [emoji:<id>]
    decorators. *)
type config = Interp.config = {
  flags : (string * (int * string) list) list;
  emojis : (string * (int -> string)) list;
}

val default_config : config

val parse : string -> Ast.program
(** @raise Error on malformed input. *)

type cache = Interp.plot_cache
(** The cross-run box memo behind incremental re-plots: boxes keyed by
    (definition name, address), each stamped with the (page, Kmem
    generation) pairs its consistent section read.  Pass the cache of a
    previous {!run} back in to re-extract only the boxes whose pages
    were written since, adopting the rest of the graph as-is. *)

type result = Interp.result = {
  graph : Vgraph.t;
  plots : Vgraph.box_id list;
  torn : int;  (** consistent sections that closed dirty (a writer raced the walk) *)
  retried : int;  (** box re-extraction attempts performed *)
  repaired : int;  (** boxes whose retry produced a clean snapshot *)
  torn_boxes : int;  (** boxes degraded to [TORN] after the retry budget *)
  cache : cache;  (** pass back to {!run} for an incremental re-plot *)
  cache_hits : int;  (** boxes adopted from the previous run with zero reads *)
  cache_misses : int;  (** (definition, address) keys never built before *)
  cache_invalidated : int;  (** stale entries re-extracted in place *)
  rebuilt : Vgraph.box_id list;  (** memoized boxes extracted this run, ascending *)
}

val create_cache : unit -> cache
(** A fresh, empty cache (equivalently: omit [?cache] on the first
    {!run} and keep the one the result carries). *)

val cache_boxes : cache -> Vgraph.box_id list
(** Ids of all memoized boxes, ascending. *)

val cache_pages : cache -> Vgraph.box_id -> (int * int) list
(** The (page, generation-at-build) stamps recorded for a memoized box —
    the exact invalidation footprint a Kmem write is tested against.
    Empty for unknown ids. *)

val run :
  ?cfg:config -> ?limits:Interp.limits -> ?cache:cache -> ?pool:Dpool.t ->
  ?prelude:Ast.program list -> Target.t -> string -> result
(** Evaluate a program against a live target. [prelude] supplies
    predefined Box definitions. Box construction is memoized per
    (definition, address), so shared objects become shared boxes and
    cyclic structures terminate. Every box builds inside a consistent
    section (seqlock-style) and is retried up to [limits.max_retries]
    times when a writer races it, then degrades to a [TORN] box.

    With [?cache] (from a previous run of the same program), the run is
    an {e incremental re-plot}: a box whose subtree's page stamps all
    match live memory is adopted with zero target reads ([cache_hits]);
    a box whose pages moved — or that degraded last time — is
    re-extracted in place under its existing id ([cache_invalidated]).
    Cross-run reuse disables itself while Kmem fault injection is armed,
    keeping injected runs byte-for-byte reproducible.

    With [?pool] (see {!Dpool}), wide top-level [forEach] loops are
    split into contiguous shards fanned out over the pool's domains:
    each shard extracts against a fully lane-local world (forked
    target, overlay graph, own rng streams) and the shards merge back
    deterministically in lane order, so the resulting graph, fault
    journal and counters are byte-identical whatever the pool size — a
    1-pool executes the same lane structure on the caller and is the
    identity baseline.  Omitting [?pool] keeps the classic unsharded
    sequential path.
    @raise Error on failure. *)

val loc_of : string -> int
(** Non-blank, non-comment source lines — the paper's Table 2 LoC
    metric. *)
