(** ViewCL — the View Construction Language (paper §2.2).

    Programs are lists of [define]d Box types, top-level bindings and
    [plot] statements:

    {v
    define Task as Box<task_struct> {
      :default [ Text pid, comm ]
      :default => :sched [ Text se.vruntime ]     // view inheritance
    } where { ... }

    root = ${&cpu_rq(0)->cfs.tasks_timeline}      // ${...}: C expression
    tree = RBTree(@root).forEach |node| {         // container + closure
      yield Task<task_struct.se.run_node>(@node)  // anchored: container_of
    }
    plot @tree
    v}

    The three simplification operators of §2.1 appear as: {e prune} — a
    Box declares exactly the items to keep; {e flatten} — dot-paths
    ([parent.pid]) chase pointers across intermediate objects; {e distill}
    — container constructors ([List], [HList], [RBTree], [Array],
    [XArray], [MapleEntries], [Range]) and the converter
    [Array.selectFrom(box, Def)] turn linked structures into ordered
    sequences. [switch ${e} { case ${v}: ... otherwise: ... }] handles
    unions and polymorphic pointers; Text decorators (Table 1) control
    formatting ([<u64:x>], [<string>], [<enum:t>], [<flag:id>], [<fptr>],
    [<emoji:id>], ...). *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Interp = Interp

exception Error of string
(** Raised by {!parse} and {!run} on any lexical, syntactic or evaluation
    failure (same exception as [Ast.Error]). *)

(** Formatting configuration for the [flag:<id>] and [emoji:<id>]
    decorators. *)
type config = Interp.config = {
  flags : (string * (int * string) list) list;
  emojis : (string * (int -> string)) list;
}

val default_config : config

val parse : string -> Ast.program
(** @raise Error on malformed input. *)

type result = Interp.result = {
  graph : Vgraph.t;
  plots : Vgraph.box_id list;
  torn : int;  (** consistent sections that closed dirty (a writer raced the walk) *)
  retried : int;  (** box re-extraction attempts performed *)
  repaired : int;  (** boxes whose retry produced a clean snapshot *)
  torn_boxes : int;  (** boxes degraded to [TORN] after the retry budget *)
}

val run :
  ?cfg:config -> ?limits:Interp.limits -> ?prelude:Ast.program list -> Target.t -> string -> result
(** Evaluate a program against a live target. [prelude] supplies
    predefined Box definitions. Box construction is memoized per
    (definition, address), so shared objects become shared boxes and
    cyclic structures terminate. Every box builds inside a consistent
    section (seqlock-style) and is retried up to [limits.max_retries]
    times when a writer races it, then degrades to a [TORN] box.
    @raise Error on failure. *)

val loc_of : string -> int
(** Non-blank, non-comment source lines — the paper's Table 2 LoC
    metric. *)
