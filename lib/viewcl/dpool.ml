(* A small work-stealing pool of OCaml 5 domains for parallel
   extraction.  One deque per member (slot 0 is the caller, who helps
   drain every batch it submits); push and LIFO pop happen at a
   member's own deque, idle members steal FIFO from the others' tails.
   All deque traffic runs under one pool mutex — batches are tens of
   coarse lane tasks, so lock-free deques would buy nothing here —
   and a single condition carries both "work arrived" and "a task
   finished".  Determinism is the caller's contract, not the pool's:
   results come back in submission order whatever the interleaving,
   and lane tasks must depend only on their lane id (see Interp). *)

let wid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

type t = {
  size : int; (* members, including the caller *)
  mutex : Mutex.t;
  cond : Condition.t;
  deques : (unit -> unit) list ref array; (* head = bottom (LIFO end) *)
  mutable live : bool;
  mutable domains : unit Domain.t list;
  mutable times_ms : float list; (* per-task wall ms, newest first *)
  mutable executed : int;
  mutable stolen : int;
}

let pop_own dq =
  match !dq with [] -> None | f :: rest -> dq := rest; Some f

let steal_tail dq =
  match List.rev !dq with
  | [] -> None
  | f :: rest -> dq := List.rev rest; Some f

(* With [t.mutex] held: own deque bottom first, then scan the others
   round-robin from [wid+1] and steal from the tail. *)
let take t wid =
  match pop_own t.deques.(wid) with
  | Some f -> Some f
  | None ->
      let n = Array.length t.deques in
      let rec scan k =
        if k = n then None
        else
          match steal_tail t.deques.((wid + k) mod n) with
          | Some f -> t.stolen <- t.stolen + 1; Some f
          | None -> scan (k + 1)
      in
      scan 1

let rec worker t wid =
  Mutex.lock t.mutex;
  let next =
    match take t wid with
    | Some f -> Mutex.unlock t.mutex; f (); true
    | None ->
        if t.live then (Condition.wait t.cond t.mutex; Mutex.unlock t.mutex; true)
        else (Mutex.unlock t.mutex; false)
  in
  if next then worker t wid

let create n =
  let size = max 1 n in
  let t =
    { size; mutex = Mutex.create (); cond = Condition.create ();
      deques = Array.init size (fun _ -> ref []); live = true; domains = [];
      times_ms = []; executed = 0; stolen = 0 }
  in
  t.domains <-
    List.init (size - 1) (fun i ->
        let wid = i + 1 in
        Domain.spawn (fun () -> Domain.DLS.set wid_key wid; worker t wid));
  t

let size t = t.size

(* Self-reported extra cost of the current task (simulated wire
   milliseconds of the lane's transport fork): accumulated domain-local
   while the task runs, folded into that task's recorded duration.  The
   schedule model then packs compute + wire cost per lane, which is the
   plot-ms a real per-lane debug channel would spend. *)
let charge_key : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.)

let charge ms =
  let r = Domain.DLS.get charge_key in
  r := !r +. ms

(* A batch is an open set of tasks on the pool: {!add} publishes a task
   immediately (idle members start on it while the submitter keeps
   producing — the pipelining streamed container walks rely on), {!join}
   helps drain and settles results in submission order. *)
type 'a batch = {
  bp : t;
  mutable bn : int; (* tasks submitted *)
  mutable bdone : int;
  mutable bout : (int * ('a, exn) result) list; (* completion order *)
}

let batch t = { bp = t; bn = 0; bdone = 0; bout = [] }

let add b thunk =
  let t = b.bp in
  Mutex.lock t.mutex;
  let i = b.bn in
  b.bn <- b.bn + 1;
  let task () =
    let cr = Domain.DLS.get charge_key in
    cr := 0.;
    let t0 = Unix.gettimeofday () in
    let r = try Ok (thunk ()) with e -> Error e in
    let dt = ((Unix.gettimeofday () -. t0) *. 1000.) +. !cr in
    Mutex.lock t.mutex;
    b.bout <- (i, r) :: b.bout;
    b.bdone <- b.bdone + 1;
    t.times_ms <- dt :: t.times_ms;
    t.executed <- t.executed + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  in
  let wid = Domain.DLS.get wid_key in
  t.deques.(wid) := task :: !(t.deques.(wid));
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let join b =
  let t = b.bp in
  let wid = Domain.DLS.get wid_key in
  Mutex.lock t.mutex;
  let rec help () =
    if b.bdone < b.bn then
      match take t wid with
      | Some f -> Mutex.unlock t.mutex; f (); Mutex.lock t.mutex; help ()
      | None -> Condition.wait t.cond t.mutex; help ()
  in
  help ();
  let out = b.bout in
  b.bout <- [];
  Mutex.unlock t.mutex;
  let sorted = List.sort (fun (i, _) (j, _) -> compare i j) out in
  List.map (function _, Ok v -> v | _, Error e -> raise e) sorted

let run t thunks =
  let b = batch t in
  List.iter (add b) thunks;
  join b

let record t ms =
  Mutex.lock t.mutex;
  t.times_ms <- ms :: t.times_ms;
  Mutex.unlock t.mutex

let timings t =
  Mutex.lock t.mutex;
  let l = List.rev t.times_ms in
  Mutex.unlock t.mutex;
  l

let reset_timings t =
  Mutex.lock t.mutex;
  t.times_ms <- [];
  Mutex.unlock t.mutex

let executed t = t.executed
let steals t = t.stolen

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let default_domains () =
  match Sys.getenv_opt "VISUALINUX_DOMAINS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | _ -> 1)
  | None -> 1

(* LPT (longest-processing-time-first) greedy schedule of the measured
   lane busy times onto [domains] bins.  [serial_ms] is the whole
   plot's wall time at one domain; the un-sharded remainder
   [serial_ms - sum durations] stays serial in the model.  This is the
   machine-independent speedup the par gate uses: on a box with fewer
   cores than domains, measured wall time says nothing about the
   schedule, but the busy times still do. *)
let model_speedup ~domains ~serial_ms durations =
  let total = List.fold_left ( +. ) 0. durations in
  let serial_ms = Float.max serial_ms total in
  if domains <= 1 || total <= 0. || serial_ms <= 0. then 1.0
  else begin
    let bins = Array.make domains 0. in
    List.iter
      (fun d ->
        let m = ref 0 in
        Array.iteri (fun i v -> if v < bins.(!m) then m := i) bins;
        bins.(!m) <- bins.(!m) +. d)
      (List.sort (fun a b -> Float.compare b a) durations);
    let makespan = Array.fold_left Float.max 0. bins in
    serial_ms /. (serial_ms -. total +. makespan)
  end
